//! Wall-clock benchmarks of the dirty-page data path (host time, not
//! simulated time): the drain → collect → diff pipeline that every tracking
//! technique funnels through, measured on the word-packed [`DirtyBitmap`]
//! against the `BTreeSet<u64>` representation it replaced.
//!
//! The virtual-clock cost model is untouched by the bitmap refactor — these
//! benches exist to quantify the *simulator's own* speed, which is what lets
//! the fleet driver and the figure benches sweep multi-GiB working sets.
//!
//! Working sets span 256 MiB to 16 GiB (as page-number ranges; nothing here
//! allocates guest memory — the pipeline cost depends only on how many dirty
//! page numbers flow through it). Three dirty patterns per size:
//!
//! * `sparse`    — 0.1% density, isolated random pages (worst case for the
//!   chunked bitmap: ~1 bit per 512-byte chunk);
//! * `clustered` — 1% density in 64-page runs (checkpoint-interval locality,
//!   the shape the acceptance bar is measured on);
//! * `dense`     — 12.5% density in 8 large extents (GC heap sweeps).
//!
//! Drain streams model what a PML ring actually records: writes in program
//! order. A tracked workload sweeps its working set, so the stream is
//! [`DUP_FACTOR`] passes over the round's dirty pages in ascending sweep
//! order with local jitter (out-of-order retirement), each pass starting at
//! a rotated offset — duplicates and near-misses included, a global shuffle
//! excluded (no real ring looks like one).
//!
//! The pipeline is the tracker's real multi-round loop ([`ROUNDS`] rounds):
//! every round drains its stream, retains within the registered VMAs, diffs
//! against the previous round (CRIU's incremental dump) and merges into the
//! accumulated union (migration's dirty superset). The baseline reproduces
//! the pre-bitmap code exactly: `sort_unstable` + `dedup` on the raw log,
//! `BTreeSet` membership, an O(pages × ranges) retain, tree-walk difference
//! and per-page `extend` merge.
//!
//! Besides the per-stage criterion benches, `main` prints explicit
//! `speedup ...` lines (best-of-5 wall clock, btree/bitmap ratio) — those
//! lines are the numbers committed to `bench_results/dirty_path.txt` and
//! the ≥5× acceptance check at 4 GiB / ≥1% density reads them directly.
//!
//! Knobs: `OOH_BENCH_QUICK=1` caps the sweep at 256 MiB (CI smoke);
//! `OOH_BENCH_FULL=1` adds the 16 GiB working set.

#![allow(clippy::print_stdout)] // bench binaries print their results

use criterion::{criterion_group, Criterion};
use ooh_machine::{DirtyBitmap, Gva, GvaRange};
use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// 4 KiB pages per MiB of working set.
const PAGES_PER_MIB: u64 = 256;
/// How many times each dirty page appears in one round's raw drain stream.
const DUP_FACTOR: usize = 4;
/// Tracking rounds per pipeline run (checkpoint intervals).
const ROUNDS: usize = 4;
/// First page of the simulated VMA (an arbitrary non-zero GVA page, so the
/// bitmap's sparse chunk keying is exercised, not index-0 luck).
const BASE_PAGE: u64 = 0x0010_0000;

// ---------------------------------------------------------------------------
// Deterministic input generation (seeded splitmix64, no OS randomness)
// ---------------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone, Copy)]
enum Pattern {
    Sparse,
    Clustered,
    Dense,
}

impl Pattern {
    const ALL: [Pattern; 3] = [Pattern::Sparse, Pattern::Clustered, Pattern::Dense];

    fn name(self) -> &'static str {
        match self {
            Pattern::Sparse => "sparse",
            Pattern::Clustered => "clustered",
            Pattern::Dense => "dense",
        }
    }

    /// Dirty density in 1/1000ths of the working set.
    fn permille(self) -> u64 {
        match self {
            Pattern::Sparse => 1,
            Pattern::Clustered => 10,
            Pattern::Dense => 125,
        }
    }

    /// Distinct dirty pages for this pattern over `ws_pages`, ascending
    /// (sweep order), duplicate-free.
    fn dirty_pages(self, ws_pages: u64, seed: u64) -> Vec<u64> {
        let mut rng = seed;
        let target = (ws_pages * self.permille() / 1000).max(1);
        let mut seen = BTreeSet::new();
        let run_len: u64 = match self {
            Pattern::Sparse => 1,
            Pattern::Clustered => 64,
            Pattern::Dense => (target / 8).max(1),
        };
        while (seen.len() as u64) < target {
            let start = BASE_PAGE + splitmix64(&mut rng) % ws_pages;
            for p in start..(start + run_len).min(BASE_PAGE + ws_pages) {
                if seen.len() as u64 >= target {
                    break;
                }
                seen.insert(p);
            }
        }
        seen.into_iter().collect()
    }
}

/// One round's raw drain stream: [`DUP_FACTOR`] sweeps over the round's
/// dirty pages in ascending program order, each sweep starting at a rotated
/// offset, with ~1/8 of adjacent entries swapped (store-buffer jitter).
fn drain_stream(dirty: &[u64], seed: u64) -> Vec<u64> {
    let n = dirty.len();
    let mut stream = Vec::with_capacity(n * DUP_FACTOR);
    let mut rng = seed ^ 0xDEAD_BEEF;
    for pass in 0..DUP_FACTOR {
        let rot = pass * n / DUP_FACTOR;
        let start = stream.len();
        stream.extend(dirty[rot..].iter().chain(dirty[..rot].iter()).copied());
        let pass_slice = &mut stream[start..];
        let mut i = 0;
        while i + 1 < pass_slice.len() {
            if splitmix64(&mut rng).is_multiple_of(8) {
                pass_slice.swap(i, i + 1);
                i += 2;
            } else {
                i += 1;
            }
        }
    }
    stream
}

/// One size+pattern scenario: per-round drain streams over rotating subsets
/// of the dirty pages (~5/8 of the master set each round, so round-over-round
/// diffs and the accumulated union are all nontrivial), plus the registered
/// VMA ranges the tracker retains within.
struct Scenario {
    ws_mib: u64,
    pattern: Pattern,
    /// Distinct dirty pages across all rounds.
    dirty_total: usize,
    rounds: Vec<Vec<u64>>,
    /// Ranges as (first_page, one-past-last_page) for the baseline retain.
    ranges_raw: Vec<(u64, u64)>,
    ranges: Vec<GvaRange>,
}

impl Scenario {
    fn build(ws_mib: u64, pattern: Pattern) -> Scenario {
        let ws_pages = ws_mib * PAGES_PER_MIB;
        let seed = 0x00D1_57E5 ^ (ws_mib << 8) ^ pattern.permille();
        let dirty = pattern.dirty_pages(ws_pages, seed);
        let n = dirty.len();
        let window = (n * 5 / 8).max(1);
        let rounds: Vec<Vec<u64>> = (0..ROUNDS)
            .map(|r| {
                let lo = r * n / ROUNDS;
                let mut round_pages: Vec<u64> = (lo..lo + window).map(|i| dirty[i % n]).collect();
                round_pages.sort_unstable();
                drain_stream(&round_pages, seed ^ (r as u64) << 32)
            })
            .collect();
        // Three registered VMAs covering ~3/4 of the working set, so the
        // retain step has real work (pages outside any range are dropped).
        let q = ws_pages / 4;
        let ranges_raw = vec![
            (BASE_PAGE, BASE_PAGE + q),
            (BASE_PAGE + q + q / 2, BASE_PAGE + 2 * q + q / 2),
            (BASE_PAGE + 3 * q, BASE_PAGE + ws_pages),
        ];
        let ranges = ranges_raw
            .iter()
            .map(|&(lo, hi)| GvaRange::new(Gva::from_page(lo), hi - lo))
            .collect();
        Scenario {
            ws_mib,
            pattern,
            dirty_total: n,
            rounds,
            ranges_raw,
            ranges,
        }
    }

    fn label(&self) -> String {
        let mib = self.ws_mib;
        let ws = if mib >= 1024 {
            format!("{}GiB", mib / 1024)
        } else {
            format!("{mib}MiB")
        };
        format!("{ws}/{}", self.pattern.name())
    }
}

// ---------------------------------------------------------------------------
// The two pipelines under test
// ---------------------------------------------------------------------------

/// Pre-refactor data path, all [`ROUNDS`] rounds: sort+dedup each raw log,
/// tree-set membership, per-page × per-range retain, tree-walk difference
/// against the previous round, per-page extend into the union. Returns
/// (union size, last round's newly-dirty count) as the black-box payload.
fn btree_pipeline(sc: &Scenario) -> (usize, usize) {
    let mut prev: BTreeSet<u64> = BTreeSet::new();
    let mut union: BTreeSet<u64> = BTreeSet::new();
    let mut last_newly = 0usize;
    for stream in &sc.rounds {
        let mut raw = stream.clone();
        raw.sort_unstable();
        raw.dedup();
        let mut set: BTreeSet<u64> = raw.into_iter().collect();
        set.retain(|p| sc.ranges_raw.iter().any(|&(lo, hi)| (lo..hi).contains(p)));
        let newly: BTreeSet<u64> = set.difference(&prev).copied().collect();
        last_newly = newly.len();
        union.extend(set.iter().copied());
        prev = set;
    }
    (union.len(), last_newly)
}

/// Word-packed data path, same rounds: bulk bit-set insert dedups for free,
/// wordwise retain/ANDNOT/OR for the set algebra.
fn bitmap_pipeline(sc: &Scenario) -> (usize, usize) {
    let mut prev = DirtyBitmap::new();
    let mut union = DirtyBitmap::new();
    let mut last_newly = 0usize;
    for stream in &sc.rounds {
        let mut set: DirtyBitmap = stream.iter().copied().collect();
        set.retain_within(&sc.ranges);
        let newly = set.difference(&prev);
        last_newly = newly.len();
        union.merge(&set);
        prev = set;
    }
    (union.len(), last_newly)
}

// ---------------------------------------------------------------------------
// Criterion benches: per-stage at the acceptance point, end-to-end per cell
// ---------------------------------------------------------------------------

fn sizes_mib() -> Vec<u64> {
    if std::env::var_os("OOH_BENCH_QUICK").is_some() {
        return vec![256];
    }
    let mut v = vec![256, 1024, 4096];
    if std::env::var_os("OOH_BENCH_FULL").is_some() {
        v.push(16 * 1024);
    }
    v
}

/// Stage-by-stage timings at the acceptance point: 4 GiB working set,
/// clustered 1% density (256 MiB under `OOH_BENCH_QUICK`).
fn bench_stages(c: &mut Criterion) {
    let mib = if std::env::var_os("OOH_BENCH_QUICK").is_some() {
        256
    } else {
        4096
    };
    let sc = Scenario::build(mib, Pattern::Clustered);
    let stream = &sc.rounds[0];
    let prev_stream = &sc.rounds[1];
    let prev_bt: BTreeSet<u64> = prev_stream.iter().copied().collect();
    let prev_bm: DirtyBitmap = prev_stream.iter().copied().collect();
    let full_bt: BTreeSet<u64> = stream.iter().copied().collect();
    let full_bm: DirtyBitmap = stream.iter().copied().collect();

    let mut group = c.benchmark_group(&format!("stages/{}", sc.label()));

    group.bench_function("drain/btree", |b| {
        b.iter(|| {
            let mut raw = stream.clone();
            raw.sort_unstable();
            raw.dedup();
            black_box(raw.into_iter().collect::<BTreeSet<u64>>())
        })
    });
    group.bench_function("drain/bitmap", |b| {
        b.iter(|| black_box(stream.iter().copied().collect::<DirtyBitmap>()))
    });

    group.bench_function("collect_retain/btree", |b| {
        b.iter(|| {
            let mut set = full_bt.clone();
            set.retain(|p| sc.ranges_raw.iter().any(|&(lo, hi)| (lo..hi).contains(p)));
            black_box(set)
        })
    });
    group.bench_function("collect_retain/bitmap", |b| {
        b.iter(|| {
            let mut bm = full_bm.clone();
            bm.retain_within(&sc.ranges);
            black_box(bm)
        })
    });

    group.bench_function("merge/btree", |b| {
        b.iter(|| {
            let mut acc = prev_bt.clone();
            acc.extend(full_bt.iter().copied());
            black_box(acc)
        })
    });
    group.bench_function("merge/bitmap", |b| {
        b.iter(|| {
            let mut acc = prev_bm.clone();
            acc.merge(&full_bm);
            black_box(acc)
        })
    });

    group.bench_function("diff/btree", |b| {
        b.iter(|| black_box(full_bt.difference(&prev_bt).copied().collect::<BTreeSet<u64>>()))
    });
    group.bench_function("diff/bitmap", |b| {
        b.iter(|| black_box(full_bm.difference(&prev_bm)))
    });

    group.finish();
}

/// End-to-end pipeline across the size × pattern grid.
fn bench_pipeline(c: &mut Criterion) {
    for mib in sizes_mib() {
        for pattern in Pattern::ALL {
            let sc = Scenario::build(mib, pattern);
            let mut group = c.benchmark_group(&format!("pipeline/{}", sc.label()));
            group.bench_function("btree", |b| b.iter(|| black_box(btree_pipeline(&sc))));
            group.bench_function("bitmap", |b| b.iter(|| black_box(bitmap_pipeline(&sc))));
            group.finish();
        }
    }
}

criterion_group!(benches, bench_stages, bench_pipeline);

// ---------------------------------------------------------------------------
// Explicit speedup report (what bench_results/dirty_path.txt records)
// ---------------------------------------------------------------------------

fn best_of<F: FnMut() -> (usize, usize)>(reps: u32, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn speedup_report() {
    println!(
        "speedup report: btree vs bitmap, {ROUNDS}-round drain->collect->diff->merge (best of 5)"
    );
    for mib in sizes_mib() {
        for pattern in Pattern::ALL {
            let sc = Scenario::build(mib, pattern);
            // Sanity: both pipelines agree on union size and last diff.
            assert_eq!(
                btree_pipeline(&sc),
                bitmap_pipeline(&sc),
                "pipelines diverged on {}",
                sc.label()
            );
            let t_bt = best_of(5, || btree_pipeline(&sc));
            let t_bm = best_of(5, || bitmap_pipeline(&sc));
            let ratio = t_bt.as_secs_f64() / t_bm.as_secs_f64().max(1e-12);
            println!(
                "speedup {} density={}permille dirty_pages={} btree={:?} bitmap={:?} ratio={:.1}x",
                sc.label(),
                sc.pattern.permille(),
                sc.dirty_total,
                t_bt,
                t_bm,
                ratio,
            );
        }
    }
}

// A custom `main` instead of `criterion_main!`: run the criterion groups,
// then append the explicit speedup lines the acceptance check reads.
fn main() {
    benches();
    speedup_report();
}
