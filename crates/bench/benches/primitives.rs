//! Criterion microbenchmarks of the hot primitives (host-time, not
//! simulated-time): the page-walk path, PML log/drain, the shared ring,
//! pagemap scans, tracker collect rounds, and the guest-memory B-tree.
//! These double as the ablation benches for DESIGN.md's design choices
//! (TLB suppression of re-logging, batched drains, per-process rings).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ooh_core::{OohSession, Technique};
use ooh_guest::{GuestKernel, Pid, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{Gva, MachineConfig, PmlBuffer, RingView, PAGE_SIZE};
use ooh_sim::{Lane, SimCtx};
use ooh_workloads::{Arena, WorkEnv};
use std::hint::black_box;

fn boot() -> (Hypervisor, GuestKernel, Pid) {
    let mut hv = Hypervisor::new(
        MachineConfig::epml(512 * 1024 * PAGE_SIZE),
        SimCtx::new(),
    );
    let vm = hv.create_vm(128 * 1024 * PAGE_SIZE, 1).unwrap();
    let mut kernel = GuestKernel::new(vm);
    let pid = kernel.spawn(&mut hv).unwrap();
    (hv, kernel, pid)
}

fn bench_access_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("access");

    // TLB-hit store: the fast path every non-first write takes.
    {
        let (mut hv, mut kernel, pid) = boot();
        let region = kernel.mmap(pid, 1, true, VmaKind::Anon).unwrap();
        kernel.write_u64(&mut hv, pid, region.start, 0, Lane::Tracked).unwrap();
        group.bench_function("store_tlb_hit", |b| {
            b.iter(|| {
                kernel
                    .write_u64(&mut hv, pid, black_box(region.start.add(8)), 1, Lane::Tracked)
                    .unwrap()
            })
        });
    }

    // Full nested walk: flush the TLB before every store.
    {
        let (mut hv, mut kernel, pid) = boot();
        let region = kernel.mmap(pid, 1, true, VmaKind::Anon).unwrap();
        kernel.write_u64(&mut hv, pid, region.start, 0, Lane::Tracked).unwrap();
        group.bench_function("store_full_walk", |b| {
            b.iter(|| {
                kernel.flush_tlb(&mut hv);
                kernel
                    .write_u64(&mut hv, pid, black_box(region.start.add(8)), 1, Lane::Tracked)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pml(c: &mut Criterion) {
    let mut group = c.benchmark_group("pml");
    // Log 512 entries + drain: one full hardware buffer cycle.
    group.bench_function("log512_drain", |b| {
        let mut phys = ooh_machine::HostPhys::new(16 * PAGE_SIZE);
        let page = phys.alloc_frame().unwrap();
        let mut buf = PmlBuffer::new(page);
        b.iter(|| {
            for i in 0..512u64 {
                buf.log(&mut phys, i << 12).unwrap();
            }
            black_box(buf.drain(&phys).unwrap())
        })
    });
    group.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring");
    group.bench_function("push_pop_4096", |b| {
        let mut phys = ooh_machine::HostPhys::new(64 * PAGE_SIZE);
        let header = phys.alloc_frame().unwrap();
        let data: Vec<_> = (0..16).map(|_| phys.alloc_frame().unwrap()).collect();
        let ring = RingView::create(&mut phys, header, data).unwrap();
        b.iter(|| {
            for i in 0..4096u64 {
                ring.push(&mut phys, i).unwrap();
            }
            while let Some(v) = ring.pop(&mut phys).unwrap() {
                black_box(v);
            }
        })
    });
    group.finish();
}

fn bench_trackers(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracker_round");
    group.sample_size(20);
    for technique in Technique::ALL {
        group.bench_function(technique.name().replace('/', ""), |b| {
            b.iter_batched(
                || {
                    let (mut hv, mut kernel, pid) = boot();
                    let region = kernel.mmap(pid, 256, true, VmaKind::Anon).unwrap();
                    for g in region.iter_pages().collect::<Vec<_>>() {
                        kernel.write_u64(&mut hv, pid, g, 0, Lane::Tracked).unwrap();
                    }
                    let session =
                        OohSession::start(&mut hv, &mut kernel, pid, technique).unwrap();
                    (hv, kernel, pid, region, session)
                },
                |(mut hv, mut kernel, pid, region, mut session)| {
                    for i in (0..256u64).step_by(4) {
                        kernel
                            .write_u64(&mut hv, pid, region.start.add(i * PAGE_SIZE), i, Lane::Tracked)
                            .unwrap();
                    }
                    let dirty = session.fetch_dirty(&mut hv, &mut kernel).unwrap();
                    assert_eq!(dirty.len(), 64);
                    black_box(dirty)
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_pagemap(c: &mut Criterion) {
    let mut group = c.benchmark_group("procfs");
    group.bench_function("pagemap_scan_1024", |b| {
        let (mut hv, mut kernel, pid) = boot();
        let region = kernel.mmap(pid, 1024, true, VmaKind::Anon).unwrap();
        for g in region.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 0, Lane::Tracked).unwrap();
        }
        b.iter(|| {
            black_box(
                kernel
                    .read_pagemap(&mut hv, pid, region, Lane::Tracker)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("guest_btree");
    group.sample_size(20);
    group.bench_function("set_1000", |b| {
        b.iter_batched(
            || {
                let (mut hv, mut kernel, pid) = boot();
                let (tree, arena) = {
                    let mut env = WorkEnv::new(&mut hv, &mut kernel, pid);
                    let mut arena = Arena::new(&mut env, 512).unwrap();
                    let tree =
                        ooh_workloads::tkrzw::GuestBTree::create(&mut env, &mut arena, 8).unwrap();
                    (tree, arena)
                };
                (hv, kernel, pid, tree, arena)
            },
            |(mut hv, mut kernel, pid, mut tree, mut arena)| {
                let mut env = WorkEnv::new(&mut hv, &mut kernel, pid);
                for k in 0..1000u64 {
                    tree.set(&mut env, &mut arena, (k * 2654435761) % 4096, k)
                        .unwrap();
                }
                black_box(tree.len())
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_gva(c: &mut Criterion) {
    // Sanity microbench: address decomposition must be branch-free cheap.
    c.bench_function("gva_pt_indices", |b| {
        b.iter(|| {
            let g = Gva(black_box(0x7f83_4567_8123));
            black_box((g.pt_index(3), g.pt_index(2), g.pt_index(1), g.pt_index(0)))
        })
    });
}

criterion_group!(
    benches,
    bench_access_paths,
    bench_pml,
    bench_ring,
    bench_trackers,
    bench_pagemap,
    bench_btree,
    bench_gva,
);
criterion_main!(benches);
