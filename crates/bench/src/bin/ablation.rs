//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Ring buffer sizing** — the paper uses a 512 KiB ring; smaller rings
//!    overflow under bursty dirtying and force conservative full rescans.
//! 2. **EPML drain invalidation policy** — per-page `invlpg` vs full TLB
//!    flush: the flush is cheap itself but taxes the application with
//!    re-walks; always-invlpg taxes large drains.
//! 3. **SPML reverse-map caching (paper footnote 2)** — Boehm's
//!    cache-after-first-cycle vs re-resolving every cycle.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::gc_scenarios::run_gcbench;
use ooh_bench::{report, Stack};
use ooh_core::{OohSession, Technique};
use ooh_gc::{BoehmGc, GcMode};
use ooh_guest::{OohMode, OohModule};
use ooh_sim::{Event, TextTable};
use ooh_workloads::{gcbench_config, gcbench_heap_pages, micro, SizeClass, WorkEnv, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    study: &'static str,
    variant: String,
    metric: &'static str,
    value: f64,
}

/// Study 1: SPML with ring sizes under a bursty writer.
fn ring_sizing() {
    println!("-- ablation 1: ring buffer sizing (SPML, 50 MiB array parser) --");
    let mut tbl = TextTable::new([
        "ring (pages)",
        "capacity (entries)",
        "overflow fallbacks",
        "collect time (ms)",
    ]);
    for ring_pages in [8usize, 32, 128] {
        let mut stack = Stack::boot();
        let ctx = stack.ctx();
        let pid = stack.pid;
        let mut w = micro(50, 2);
        {
            let mut env = stack.env();
            w.setup(&mut env).unwrap();
        }
        // Load the module with the ablated ring size, then run SPML on top.
        let mut module =
            OohModule::load_with(&mut stack.kernel, &mut stack.hv, OohMode::Spml, ring_pages)
                .unwrap();
        module.track(&mut stack.kernel, &mut stack.hv, pid).unwrap();
        stack.kernel.ooh = Some(module);
        let mut session =
            OohSession::start(&mut stack.hv, &mut stack.kernel, pid, Technique::Spml).unwrap();

        let mut env = WorkEnv::new(&mut stack.hv, &mut stack.kernel, pid);
        while !w.step(&mut env).unwrap() {
            env.timer_tick().unwrap();
        }
        let c0 = ctx.now_ns();
        let fallbacks_before = ctx.counters().get(Event::RingBufferOverflow);
        let dirty = session.fetch_dirty(&mut stack.hv, &mut stack.kernel).unwrap();
        assert_eq!(dirty.len(), 50 * 256, "no pages lost whatever the ring size");
        let collect_ms = (ctx.now_ns() - c0) as f64 / 1e6;
        let overflowed = ctx.counters().get(Event::RingBufferOverflow) - fallbacks_before;
        session.stop(&mut stack.hv, &mut stack.kernel).unwrap();

        tbl.row([
            ring_pages.to_string(),
            (ring_pages * 512).to_string(),
            if overflowed > 0 { "yes" } else { "no" }.to_string(),
            format!("{collect_ms:.2}"),
        ]);
        report::json_row(&Row {
            study: "ring_sizing",
            variant: format!("{ring_pages}p"),
            metric: "collect_ms",
            value: collect_ms,
        });
    }
    println!("{tbl}");
}

/// Study 2: EPML drain invalidation policy.
fn invlpg_policy() {
    println!("-- ablation 2: EPML drain TLB policy (10 MiB array parser) --");
    let mut tbl = TextTable::new(["policy", "threshold", "tracked overhead"]);
    let baseline = {
        let mut w = micro(10, 4);
        ooh_bench::run_baseline(&mut w).unwrap()
    };
    for (name, threshold) in [
        ("always full flush", 0u64),
        ("hybrid (64)", 64),
        ("always invlpg", u64::MAX),
    ] {
        let mut stack = Stack::boot();
        let ctx = stack.ctx();
        let pid = stack.pid;
        let mut w = micro(10, 4);
        {
            let mut env = stack.env();
            w.setup(&mut env).unwrap();
        }
        let mut module =
            OohModule::load(&mut stack.kernel, &mut stack.hv, OohMode::Epml).unwrap();
        module.invlpg_threshold = threshold;
        module.track(&mut stack.kernel, &mut stack.hv, pid).unwrap();
        stack.kernel.ooh = Some(module);
        let session =
            OohSession::start(&mut stack.hv, &mut stack.kernel, pid, Technique::Epml).unwrap();
        let t0 = ctx.now_ns();
        {
            let mut env = WorkEnv::new(&mut stack.hv, &mut stack.kernel, pid);
            while !w.step(&mut env).unwrap() {
                env.timer_tick().unwrap();
            }
        }
        let run_ns = ctx.now_ns() - t0;
        session.stop(&mut stack.hv, &mut stack.kernel).unwrap();
        let overhead = 100.0 * (run_ns as f64 / baseline as f64 - 1.0);
        tbl.row([
            name.to_string(),
            if threshold == u64::MAX {
                "inf".into()
            } else {
                threshold.to_string()
            },
            format!("{overhead:.1}%"),
        ]);
        report::json_row(&Row {
            study: "invlpg_policy",
            variant: name.to_string(),
            metric: "tracked_overhead_pct",
            value: overhead,
        });
    }
    println!("{tbl}");
}

/// Study 3: the footnote-2 reverse-map cache.
fn revmap_cache() {
    println!("-- ablation 3: SPML reverse-map cache (GCBench medium) --");
    let mut tbl = TextTable::new(["variant", "GC total (ms)", "first cycle (ms)"]);
    // Cached (the default Boehm integration): via the gc scenario.
    let cached = run_gcbench(SizeClass::Medium, Some(Technique::Spml)).unwrap();
    // Uncached: same run but without enable_collection_cache.
    let uncached = {
        let mut stack = Stack::boot();
        let pid = stack.pid;
        let session =
            OohSession::start(&mut stack.hv, &mut stack.kernel, pid, Technique::Spml).unwrap();
        let mut gc = BoehmGc::new(
            &mut stack.hv,
            &mut stack.kernel,
            pid,
            gcbench_heap_pages(SizeClass::Medium),
            512,
            GcMode::Incremental {
                session,
                major_every: 64,
            },
        )
        .unwrap();
        let bench = gcbench_config(SizeClass::Medium);
        {
            let mut env = WorkEnv::new(&mut stack.hv, &mut stack.kernel, pid);
            bench.run(&mut env, &mut gc).unwrap();
        }
        
        gc.shutdown(&mut stack.hv, &mut stack.kernel).unwrap()
    };
    let unc_total: u64 = uncached.iter().map(|c| c.total_ns).sum();
    let unc_first = uncached.first().map(|c| c.total_ns).unwrap_or(0);
    let cached_first = cached.cycles.first().map(|c| c.total_ns).unwrap_or(0);
    tbl.row([
        "cached (footnote 2)".to_string(),
        format!("{:.2}", cached.gc_total_ns as f64 / 1e6),
        format!("{:.2}", cached_first as f64 / 1e6),
    ]);
    tbl.row([
        "uncached".to_string(),
        format!("{:.2}", unc_total as f64 / 1e6),
        format!("{:.2}", unc_first as f64 / 1e6),
    ]);
    println!("{tbl}");
    report::json_row(&Row {
        study: "revmap_cache",
        variant: "cached".into(),
        metric: "gc_total_ms",
        value: cached.gc_total_ns as f64 / 1e6,
    });
    report::json_row(&Row {
        study: "revmap_cache",
        variant: "uncached".into(),
        metric: "gc_total_ms",
        value: unc_total as f64 / 1e6,
    });
}

fn main() {
    report::header("ablation", "design-choice ablations: ring size, TLB policy, revmap cache");
    ring_sizing();
    invlpg_policy();
    revmap_cache();
}
