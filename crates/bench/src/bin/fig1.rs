//! Figure 1 analog — the *mechanism timeline* of one tracking round per
//! technique. The paper's Figure 1 is conceptual (suspensions of Tracked,
//! world transitions, collection phases); this binary derives the same
//! story from measured event counts and lane times on a fixed round:
//! 64 pages dirtied, one collection.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{counter, report, run_tracked};
use ooh_core::Technique;
use ooh_sim::{Event, TextTable};
use ooh_workloads::micro;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    technique: &'static str,
    event: String,
    count: u64,
}

fn main() {
    report::header(
        "fig1",
        "mechanism timeline per technique (one round, 64 dirty pages)",
    );
    let mut tbl = TextTable::new([
        "technique",
        "#PF kern",
        "#PF user",
        "ctx sw",
        "vmexits",
        "hypercalls",
        "vmrd/vmwr",
        "PML logs",
        "ring copies",
        "revmap",
        "pagemap entries",
    ]);
    for technique in Technique::ALL {
        let mut w = micro(1, 2); // 256 pages x 2 passes, collect per pass
        let run = run_tracked(technique, &mut w, 1).expect("run");
        let c = |e: Event| counter(&run, e);
        tbl.row([
            technique.name().to_string(),
            c(Event::PageFaultKernel).to_string(),
            c(Event::PageFaultUser).to_string(),
            c(Event::ContextSwitch).to_string(),
            (c(Event::VmExit) + c(Event::PmlBufferFullExit)).to_string(),
            c(Event::Hypercall).to_string(),
            (c(Event::Vmread) + c(Event::Vmwrite)).to_string(),
            (c(Event::PmlLogGpa) + c(Event::PmlLogGva)).to_string(),
            c(Event::RingBufferCopyEntry).to_string(),
            c(Event::ReverseMapLookup).to_string(),
            c(Event::PagemapReadEntry).to_string(),
        ]);
        for e in [
            Event::PageFaultKernel,
            Event::PageFaultUser,
            Event::ContextSwitch,
            Event::Hypercall,
            Event::Vmread,
            Event::Vmwrite,
            Event::PmlLogGpa,
            Event::PmlLogGva,
            Event::RingBufferCopyEntry,
            Event::ReverseMapLookup,
            Event::PagemapReadEntry,
        ] {
            report::json_row(&Row {
                technique: technique.name(),
                event: e.name().to_string(),
                count: c(e),
            });
        }
    }
    println!("{tbl}");
    println!(
        "The Figure-1 story, in counts: /proc and ufd suspend Tracked once per\n\
         page (#PF columns); SPML replaces faults with hypercalls + revmap;\n\
         EPML leaves only vmwrites and PML hardware logs on the timeline."
    );
}
