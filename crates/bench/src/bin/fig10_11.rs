//! Figures 10 & 11 — scalability with the number of tenant VMs: 1–5 VMs,
//! each running Boehm GC over the Phoenix histogram (Large config),
//! tracked with /proc, SPML or EPML.
//!
//! Paper result: per-VM Tracker and Tracked performance is the same as the
//! single-VM case and stays constant as VMs are added (PML state is
//! per-vCPU; the ring is per-process). The VMs time-share one physical CPU
//! round-robin, as tenants on one core would.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::report;
use ooh_core::{OohSession, Technique};
use ooh_gc::{BoehmGc, GcMode};
use ooh_guest::GuestKernel;
use ooh_hypervisor::Hypervisor;
use ooh_machine::MachineConfig;
use ooh_sim::{SimCtx, TextTable};
use ooh_workloads::{phoenix, SizeClass, WorkEnv, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n_vms: usize,
    vm: usize,
    technique: &'static str,
    gc_total_ms: f64,
    app_total_ms: f64,
}

struct Tenant {
    kernel: GuestKernel,
    pid: ooh_guest::Pid,
    workload: Box<dyn Workload>,
    gc: Option<BoehmGc>,
    app_ns: u64,
    gc_ns: u64,
    steps: u32,
    done: bool,
}

const STEPS_PER_CYCLE: u32 = 48;

fn run_fleet(n_vms: usize, technique: Technique) -> Vec<(u64, u64)> {
    let ctx = SimCtx::new();
    let mut hv = Hypervisor::new(MachineConfig::epml(16 * 1024 * 1024 * 1024), ctx.clone());
    let mut tenants = Vec::new();
    for i in 0..n_vms {
        let vm = hv.create_vm(512 * 1024 * 1024, 1).expect("vm");
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).expect("spawn");
        let mut workload = phoenix("histogram", SizeClass::Large, 1000 + i as u64);
        {
            let mut env = WorkEnv::new(&mut hv, &mut kernel, pid);
            workload.setup(&mut env).expect("setup");
        }
        let mut session = OohSession::start(&mut hv, &mut kernel, pid, technique).expect("session");
        session.enable_collection_cache();
        let gc = BoehmGc::new(
            &mut hv,
            &mut kernel,
            pid,
            2048,
            64,
            GcMode::Incremental {
                session,
                major_every: 64,
            },
        )
        .expect("gc");
        tenants.push(Tenant {
            kernel,
            pid,
            workload,
            gc: Some(gc),
            app_ns: 0,
            gc_ns: 0,
            steps: 0,
            done: false,
        });
    }

    // Round-robin: one workload quantum per tenant per turn, with each
    // tenant's GC cycle on its own cadence.
    loop {
        let mut all_done = true;
        for t in tenants.iter_mut() {
            if t.done {
                continue;
            }
            all_done = false;
            let t0 = ctx.now_ns();
            {
                let mut env = WorkEnv::new(&mut hv, &mut t.kernel, t.pid);
                t.done = t.workload.step(&mut env).expect("step");
                env.timer_tick().expect("tick");
            }
            t.app_ns += ctx.now_ns() - t0;
            t.steps += 1;
            if t.steps % STEPS_PER_CYCLE == 0 || t.done {
                let g0 = ctx.now_ns();
                t.gc
                    .as_mut()
                    .expect("gc present")
                    .collect(&mut hv, &mut t.kernel)
                    .expect("collect");
                t.gc_ns += ctx.now_ns() - g0;
            }
        }
        if all_done {
            break;
        }
    }
    tenants
        .into_iter()
        .map(|mut t| {
            t.gc
                .take()
                .expect("gc present")
                .shutdown(&mut hv, &mut t.kernel)
                .expect("shutdown");
            (t.gc_ns, t.app_ns)
        })
        .collect()
}

fn main() {
    report::header(
        "fig10_11",
        "multi-VM scalability: per-VM GC (Fig.10) and app (Fig.11) time, 1-5 VMs",
    );
    let mut t10 = TextTable::new(["technique", "VMs", "per-VM GC time (ms)"]);
    let mut t11 = TextTable::new(["technique", "VMs", "per-VM app time (ms)"]);
    for technique in [Technique::Proc, Technique::Spml, Technique::Epml] {
        for n in 1..=5usize {
            let per_vm = run_fleet(n, technique);
            let gcs: Vec<String> = per_vm
                .iter()
                .map(|(g, _)| format!("{:.2}", report::ms(*g)))
                .collect();
            let apps: Vec<String> = per_vm
                .iter()
                .map(|(_, a)| format!("{:.2}", report::ms(*a)))
                .collect();
            t10.row([technique.name().to_string(), n.to_string(), gcs.join(" ")]);
            t11.row([technique.name().to_string(), n.to_string(), apps.join(" ")]);
            for (i, (g, a)) in per_vm.iter().enumerate() {
                report::json_row(&Row {
                    n_vms: n,
                    vm: i,
                    technique: technique.name(),
                    gc_total_ms: report::ms(*g),
                    app_total_ms: report::ms(*a),
                });
            }
        }
    }
    println!("Figure 10: Tracker (GC) time per VM\n{t10}");
    println!("Figure 11: Tracked (application) time per VM\n{t11}");
}
