//! Figure 3 — breakdown of SPML's collection phase into *reverse mapping*,
//! *PT walk* (the library's pagemap scan) and *ring buffer copy*, across
//! region sizes.
//!
//! Paper shape: reverse mapping is the bottleneck, >68% of collection time
//! on average and growing with memory size; ring copy is negligible.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{counter, report, run_tracked};
use ooh_core::Technique;
use ooh_sim::table::fpct;
use ooh_sim::{Event, SimCtx, TextTable};
use ooh_workloads::{micro, microbench_sizes_mib};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mib: u64,
    revmap_ms: f64,
    pt_walk_ms: f64,
    ring_copy_ms: f64,
    revmap_share_pct: f64,
}

fn main() {
    report::header(
        "fig3",
        "SPML collection-phase time: reverse mapping vs PT walk vs ring copy",
    );
    let cost = SimCtx::new().cost().clone();
    let mut tbl = TextTable::new([
        "size", "revmap(ms)", "ptwalk(ms)", "rbcopy(ms)", "revmap share",
    ]);
    for mib in microbench_sizes_mib() {
        let mut w = micro(mib, 2);
        let pages = w.num_pages;
        let steps_per_pass = pages.div_ceil(256) as u32;
        let run = run_tracked(Technique::Spml, &mut w, steps_per_pass).expect("spml run");

        let lookups = counter(&run, Event::ReverseMapLookup);
        let revmap_ns = lookups * cost.reverse_map_lookup_ns(pages);
        let pt_walk_ns = counter(&run, Event::PagemapReadEntry) * cost.pagemap_entry_ns
            + counter(&run, Event::PagemapReadChunk) * cost.pagemap_chunk_ns;
        let ring_ns = counter(&run, Event::RingBufferCopyEntry) * cost.ring_copy_entry_ns;
        let total = (revmap_ns + pt_walk_ns + ring_ns) as f64;
        let share = 100.0 * revmap_ns as f64 / total;

        tbl.row([
            format!("{mib}MB"),
            format!("{:.2}", report::ms(revmap_ns)),
            format!("{:.2}", report::ms(pt_walk_ns)),
            format!("{:.3}", report::ms(ring_ns)),
            fpct(share),
        ]);
        report::json_row(&Row {
            mib,
            revmap_ms: report::ms(revmap_ns),
            pt_walk_ms: report::ms(pt_walk_ns),
            ring_copy_ms: report::ms(ring_ns),
            revmap_share_pct: share,
        });
    }
    println!("{tbl}");
}
