//! Figure 3 — breakdown of SPML's collection phase into *reverse mapping*,
//! *PT walk* (the library's pagemap scan) and *ring buffer copy*, across
//! region sizes.
//!
//! Paper shape: reverse mapping is the bottleneck, >68% of collection time
//! on average and growing with memory size; ring copy is negligible.
//!
//! With `OOH_TRACE=1`, each run boots with an `ooh_trace::Tracer` installed;
//! the row is rebuilt from the trace's event counts, serialized, and
//! asserted byte-identical to the counter-based row; the per-lane
//! conservation invariant is checked; and the largest size's profile /
//! folded stacks / Chrome trace are written into `OOH_TRACE_OUT` (default
//! `bench_results/`). Stdout is byte-identical with and without `OOH_TRACE`.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{counter, report, run_tracked, run_tracked_on, Stack, TrackedRun};
use ooh_core::Technique;
use ooh_sim::table::fpct;
use ooh_sim::{Event, SimCtx, TextTable};
use ooh_trace::Tracer;
use ooh_workloads::{micro, microbench_sizes_mib};
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    mib: u64,
    revmap_ms: f64,
    pt_walk_ms: f64,
    ring_copy_ms: f64,
    revmap_share_pct: f64,
}

fn trace_mode() -> bool {
    std::env::var_os("OOH_TRACE").is_some_and(|v| !v.is_empty() && v != "0")
}

fn trace_out_dir() -> std::path::PathBuf {
    std::env::var_os("OOH_TRACE_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("bench_results"))
}

fn make_row(mib: u64, cost: &ooh_sim::CostModel, pages: u64, count: impl Fn(Event) -> u64) -> Row {
    let revmap_ns = count(Event::ReverseMapLookup) * cost.reverse_map_lookup_ns(pages);
    let pt_walk_ns = count(Event::PagemapReadEntry) * cost.pagemap_entry_ns
        + count(Event::PagemapReadChunk) * cost.pagemap_chunk_ns;
    let ring_ns = count(Event::RingBufferCopyEntry) * cost.ring_copy_entry_ns;
    let total = (revmap_ns + pt_walk_ns + ring_ns) as f64;
    Row {
        mib,
        revmap_ms: report::ms(revmap_ns),
        pt_walk_ms: report::ms(pt_walk_ns),
        ring_copy_ms: report::ms(ring_ns),
        revmap_share_pct: 100.0 * revmap_ns as f64 / total,
    }
}

fn main() {
    report::header(
        "fig3",
        "SPML collection-phase time: reverse mapping vs PT walk vs ring copy",
    );
    let cost = SimCtx::new().cost().clone();
    let mut tbl = TextTable::new([
        "size", "revmap(ms)", "ptwalk(ms)", "rbcopy(ms)", "revmap share",
    ]);
    let sizes = microbench_sizes_mib();
    let largest = *sizes.last().expect("nonempty size list");
    for mib in sizes {
        let mut w = micro(mib, 2);
        let pages = w.num_pages;
        let steps_per_pass = pages.div_ceil(256) as u32;

        let (run, tracer): (TrackedRun, Option<Arc<Tracer>>) = if trace_mode() {
            // Boot with the tracer installed before the first charge so the
            // conservation invariant covers the whole stack lifetime.
            let ctx = SimCtx::new();
            let tracer = Tracer::install(&ctx);
            let mut stack = Stack::boot_with_ctx(8 * 1024, ctx);
            let run = run_tracked_on(&mut stack, Technique::Spml, &mut w, steps_per_pass)
                .expect("spml run");
            tracer
                .check_conservation(stack.ctx().clock())
                .expect("fig3: trace conservation");
            (run, Some(tracer))
        } else {
            (
                run_tracked(Technique::Spml, &mut w, steps_per_pass).expect("spml run"),
                None,
            )
        };

        let row = make_row(mib, &cost, pages, |e| counter(&run, e));

        if let Some(t) = &tracer {
            // `TrackedRun::counters` snapshots the context's counters over
            // the stack's whole life; the trace journal covers the same
            // window, so its event totals must regenerate the row exactly.
            let trace_row = make_row(mib, &cost, pages, |e| t.event_units(e));
            let a = serde_json::to_string(&row).expect("serialize row");
            let b = serde_json::to_string(&trace_row).expect("serialize trace row");
            assert_eq!(
                a, b,
                "fig3: trace-regenerated row for {mib}MB diverged from counter-based row"
            );
            if mib == largest {
                let dir = trace_out_dir();
                std::fs::create_dir_all(&dir).expect("create trace output dir");
                let rows_json =
                    serde_json::to_string(&t.profile_rows()).expect("serialize profile");
                std::fs::write(dir.join("fig3_profile.json"), rows_json)
                    .expect("write profile json");
                std::fs::write(dir.join("fig3.folded"), t.folded())
                    .expect("write folded stacks");
                std::fs::write(dir.join("fig3_chrome_trace.json"), t.chrome_trace())
                    .expect("write chrome trace");
                eprintln!(
                    "fig3: trace cross-check passed; profile artifacts in {}",
                    dir.display()
                );
            }
        }

        tbl.row([
            format!("{}MB", row.mib),
            format!("{:.2}", row.revmap_ms),
            format!("{:.2}", row.pt_walk_ms),
            format!("{:.3}", row.ring_copy_ms),
            fpct(row.revmap_share_pct),
        ]);
        report::json_row(&row);
    }
    println!("{tbl}");
}
