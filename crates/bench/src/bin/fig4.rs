//! Figure 4 — slowdown incurred by each tracking technique on the
//! micro-benchmark (array parser), as a function of region size.
//!
//! Paper shape: SPML worst overall (up to 66×, driven by reverse mapping),
//! ufd next (up to 15×, worst below 250 MB), /proc up to ~4×, EPML
//! negligible (≤0.6%) at every size.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{report, run_baseline, run_tracked};
use ooh_core::Technique;
use ooh_sim::table::fnum;
use ooh_sim::TextTable;
use ooh_workloads::{micro, microbench_sizes_mib};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    technique: &'static str,
    mib: u64,
    slowdown_x: f64,
    tracked_overhead_pct: f64,
}

const PASSES: u32 = 4;

fn main() {
    report::header("fig4", "micro-benchmark slowdown per tracking technique");
    let sizes = microbench_sizes_mib();

    let mut baselines = Vec::new();
    for &mib in &sizes {
        let mut w = micro(mib, PASSES);
        baselines.push(run_baseline(&mut w).expect("baseline"));
    }

    let mut tbl = TextTable::new(
        std::iter::once("Slowdown (x)".to_string()).chain(sizes.iter().map(|s| format!("{s}MB"))),
    );
    for technique in Technique::ALL {
        let mut row = vec![technique.name().to_string()];
        for (i, &mib) in sizes.iter().enumerate() {
            let mut w = micro(mib, PASSES);
            let steps_per_pass = w.num_pages.div_ceil(256) as u32;
            let run = run_tracked(technique, &mut w, steps_per_pass).expect("tracked");
            let slowdown = run.tracked_done_ns as f64 / baselines[i] as f64;
            row.push(fnum(slowdown, 2));
            report::json_row(&Row {
                technique: technique.name(),
                mib,
                slowdown_x: slowdown,
                tracked_overhead_pct: 100.0 * (slowdown - 1.0),
            });
        }
        tbl.row(row);
    }
    println!("{tbl}");
}
