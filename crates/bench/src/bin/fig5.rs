//! Figure 5 — execution time of Boehm GC when implemented with /proc, SPML
//! and EPML: per-cycle collection times, with the first cycle highlighted
//! (under SPML it carries the reverse mapping; later cycles reuse the
//! cached addresses, paper footnote 2).
//!
//! Paper shape: ignoring the first cycle, SPML ≤ /proc; EPML best (up to
//! 58% faster than /proc and 47% than SPML on GCBench Medium).

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::gc_scenarios::{run_gcbench, run_phoenix_gc, GcAppRun};
use ooh_bench::report;
use ooh_core::Technique;
use ooh_sim::TextTable;
use ooh_workloads::SizeClass;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: String,
    size: &'static str,
    technique: String,
    cycles: usize,
    first_cycle_ms: f64,
    rest_avg_ms: f64,
    gc_total_ms: f64,
}

fn emit(tbl: &mut TextTable, run: &GcAppRun) {
    let first = run.cycles.first().map(|c| c.total_ns).unwrap_or(0);
    let rest: Vec<u64> = run.cycles.iter().skip(1).map(|c| c.total_ns).collect();
    let rest_avg = if rest.is_empty() {
        0.0
    } else {
        rest.iter().sum::<u64>() as f64 / rest.len() as f64
    };
    tbl.row([
        run.app.clone(),
        run.size.to_string(),
        run.technique.clone(),
        run.cycles.len().to_string(),
        format!("{:.3}", report::ms(first)),
        format!("{:.3}", rest_avg / 1e6),
        format!("{:.3}", report::ms(run.gc_total_ns)),
    ]);
    report::json_row(&Row {
        app: run.app.clone(),
        size: run.size,
        technique: run.technique.clone(),
        cycles: run.cycles.len(),
        first_cycle_ms: report::ms(first),
        rest_avg_ms: rest_avg / 1e6,
        gc_total_ms: report::ms(run.gc_total_ns),
    });
}

fn main() {
    report::header("fig5", "Boehm GC cycle times per technique (first cycle highlighted)");
    let mut tbl = TextTable::new([
        "app",
        "size",
        "technique",
        "cycles",
        "1st cycle (ms)",
        "rest avg (ms)",
        "GC total (ms)",
    ]);
    let techniques = [Technique::Proc, Technique::Spml, Technique::Epml];

    for size in [SizeClass::Medium, SizeClass::Large] {
        for &t in &techniques {
            let run = run_gcbench(size, Some(t)).expect("gcbench run");
            emit(&mut tbl, &run);
        }
    }
    for app in ["histogram", "word-count", "string-match"] {
        for size in [SizeClass::Medium, SizeClass::Large] {
            for &t in &techniques {
                let run = run_phoenix_gc(app, size, Some(t)).expect("phoenix gc run");
                emit(&mut tbl, &run);
            }
        }
    }
    println!("{tbl}");
}
