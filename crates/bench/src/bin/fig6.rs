//! Figure 6 — impact of Boehm GC's tracking technique on the *application*
//! (Tracked): execution time under /proc, SPML and EPML relative to the
//! untracked ideal (stop-the-world GC without dirty tracking).
//!
//! Paper shape: SPML ≥ /proc on most apps (up to 273% on string-match);
//! EPML cuts the overhead to single digits (up to 62% better than /proc).

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::gc_scenarios::run_phoenix_gc;
use ooh_bench::report;
use ooh_core::Technique;
use ooh_sim::{overhead_pct, TextTable};
use ooh_workloads::SizeClass;
use rayon::par_map_ordered;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: String,
    size: &'static str,
    technique: String,
    overhead_pct: f64,
    total_ms: f64,
    baseline_ms: f64,
}

fn main() {
    report::header("fig6", "impact of Boehm's tracking technique on the application");
    let mut tbl = TextTable::new(["app", "size", "/proc", "SPML", "EPML"]);
    let apps = [
        "histogram",
        "kmeans",
        "matrix-multiply",
        "pca",
        "string-match",
        "word-count",
    ];
    // Every (app, size) cell is an independent deterministic simulation:
    // fan the grid out across cores (the rayon use DESIGN.md §5 justifies).
    let grid: Vec<(&str, SizeClass)> = apps
        .iter()
        .flat_map(|&a| [SizeClass::Medium, SizeClass::Large].map(|s| (a, s)))
        .collect();
    let results = par_map_ordered(&grid, rayon::default_threads(), |&(app, size)| {
        let base = run_phoenix_gc(app, size, None).expect("baseline");
        let runs: Vec<_> = [Technique::Proc, Technique::Spml, Technique::Epml]
            .into_iter()
            .map(|t| (t, run_phoenix_gc(app, size, Some(t)).expect("tracked")))
            .collect();
        (app, size, base, runs)
    });
    for (app, size, base, runs) in results {
        let mut cells = vec![app.to_string(), size.name().to_string()];
        for (t, run) in runs {
            let ov = overhead_pct(run.total_ns as f64, base.total_ns as f64);
            cells.push(format!("{ov:.1}%"));
            report::json_row(&Row {
                app: app.to_string(),
                size: size.name(),
                technique: t.name().to_string(),
                overhead_pct: ov,
                total_ms: report::ms(run.total_ns),
                baseline_ms: report::ms(base.total_ns),
            });
        }
        tbl.row(cells);
    }
    println!("{tbl}");
}
