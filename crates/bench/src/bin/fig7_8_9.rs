//! Figures 7, 8 and 9 — CRIU checkpointing with /proc, SPML and EPML:
//!
//! * Fig. 7 — memory-write (MW) time: with /proc the pagemap walk is folded
//!   into MW (pages are written as found), so MW is big and size-dependent;
//!   the PML designs write a precollected batch (paper: up to 26× better,
//!   nearly constant).
//! * Fig. 8 — complete checkpoint time with the MD (collection) phase
//!   highlighted: SPML's MD carries the reverse mapping (paper: up to 5×
//!   slower than /proc); EPML is fastest (up to 4× vs /proc, 13× vs SPML).
//! * Fig. 9 — overhead on the checkpointed application (paper: /proc up to
//!   ~102%, SPML up to ~114%, EPML ≤14%, avg 3%).

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::criu_scenarios::{criu_baseline, run_criu, App};
use ooh_bench::report;
use ooh_core::Technique;
use ooh_sim::{overhead_pct, TextTable};
use ooh_workloads::SizeClass;
use rayon::par_map_ordered;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: String,
    technique: String,
    md_ms: f64,
    mw_ms: f64,
    checkpoint_ms: f64,
    pages: u64,
    tracked_overhead_pct: f64,
}

fn main() {
    report::header("fig7_8_9", "CRIU: MW time, checkpoint time (MD highlighted), app overhead");
    let size = SizeClass::Large;
    let techniques = [Technique::Proc, Technique::Spml, Technique::Epml];

    let mut t7 = TextTable::new(["app", "/proc MW(ms)", "SPML MW(ms)", "EPML MW(ms)"]);
    let mut t8 = TextTable::new([
        "app",
        "/proc MD/total(ms)",
        "SPML MD/total(ms)",
        "EPML MD/total(ms)",
    ]);
    let mut t9 = TextTable::new(["app", "/proc ovh", "SPML ovh", "EPML ovh"]);

    // Independent simulations: sweep the app grid in parallel.
    let results = par_map_ordered(&App::ALL, rayon::default_threads(), |&app| {
        let baseline = criu_baseline(app, size).expect("baseline");
        let runs: Vec<_> = techniques
            .iter()
            .map(|&t| run_criu(app, size, t).expect("criu run"))
            .collect();
        (app, baseline, runs)
    });
    for (app, baseline, runs) in results {
        let mut r7 = vec![app.name()];
        let mut r8 = vec![app.name()];
        let mut r9 = vec![app.name()];
        for run in runs {
            let ovh = overhead_pct(run.total_ns as f64, baseline as f64);
            r7.push(format!("{:.2}", report::ms(run.mw_ns)));

            r8.push(format!(
                "{:.2}/{:.2}",
                report::ms(run.md_ns),
                report::ms(run.checkpoint_ns)
            ));
            r9.push(format!("{ovh:.1}%"));
            report::json_row(&Row {
                app: run.app.clone(),
                technique: run.technique.clone(),
                md_ms: report::ms(run.md_ns),
                mw_ms: report::ms(run.mw_ns),
                checkpoint_ms: report::ms(run.checkpoint_ns),
                pages: run.pages_dumped,
                tracked_overhead_pct: ovh,
            });
        }
        t7.row(r7);
        t8.row(r8);
        t9.row(r9);
    }
    println!("Figure 7: memory-write time\n{t7}");
    println!("Figure 8: checkpoint time (MD/total)\n{t8}");
    println!("Figure 9: overhead on Tracked\n{t9}");
}
