//! Fleet driver — N independent VM simulations in parallel.
//!
//! The first real throughput story for ROADMAP's fleet scenario: every VM
//! is a fully independent stack (own `SimCtx`, own hypervisor, own guest),
//! so the grid fans out across cores with `rayon::par_map_ordered` and the
//! per-VM results merge back **in VM-index order**. The output is therefore
//! byte-identical at 1 thread and N threads — CI diffs exactly that.
//!
//! Knobs (all env, all deterministic):
//! * `OOH_FLEET_VMS`     — number of VMs to simulate (default 8);
//! * `OOH_FLEET_THREADS` — worker threads (default: available cores).
//!
//! Each VM's scenario is derived from its index alone: technique cycles
//! through all four, the working set cycles through 1/2/4/8 MiB, and the
//! write schedule is the seeded micro array parser. Nothing reads the host
//! clock or thread identity, so a fleet of N is exactly N reproducible
//! single-VM simulations plus an ordered reduce.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::scenario::{run_tracked, TrackedRun};
use ooh_bench::report;
use ooh_core::Technique;
use ooh_sim::TextTable;
use ooh_workloads::micro;
use rayon::par_map_ordered;
use serde::Serialize;

#[derive(Serialize)]
struct VmRow {
    vm: usize,
    technique: String,
    size_mib: u64,
    init_ns: u64,
    tracked_done_ns: u64,
    tracker_done_ns: u64,
    union_dirty_pages: u64,
    context_switches: u64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

const SIZES_MIB: [u64; 4] = [1, 2, 4, 8];

/// One VM's whole simulation: boot, run the seeded workload under the
/// index-derived technique, return the tracked run. Pure function of `vm`.
fn simulate_vm(vm: usize) -> (usize, Technique, u64, TrackedRun) {
    let technique = Technique::ALL[vm % Technique::ALL.len()];
    let size_mib = SIZES_MIB[(vm / Technique::ALL.len()) % SIZES_MIB.len()];
    let mut w = micro(size_mib, 2);
    let steps_per_pass = w.num_pages.div_ceil(256) as u32;
    let run = run_tracked(technique, &mut w, steps_per_pass).expect("fleet vm run");
    (vm, technique, size_mib, run)
}

fn main() {
    let n_vms = env_usize("OOH_FLEET_VMS", 8);
    let threads = env_usize("OOH_FLEET_THREADS", rayon::default_threads());
    report::header(
        "fleet",
        "N independent tracked VMs, parallel fan-out with ordered merge",
    );
    println!("vms={n_vms}");

    let ids: Vec<usize> = (0..n_vms).collect();
    let results = par_map_ordered(&ids, threads, |&vm| simulate_vm(vm));

    // Ordered reduce: fold in VM-index order (the merge rule DESIGN.md §11
    // requires), so the summary is thread-count-independent too.
    let mut tbl = TextTable::new(["vm", "technique", "mib", "tracker(ms)", "dirty pages"]);
    let mut total_dirty = 0u64;
    let mut total_tracker_ns = 0u64;
    for (vm, technique, size_mib, run) in &results {
        total_dirty += run.union_dirty_pages;
        total_tracker_ns += run.tracker_done_ns;
        tbl.row([
            vm.to_string(),
            technique.name().to_string(),
            size_mib.to_string(),
            format!("{:.3}", report::ms(run.tracker_done_ns)),
            run.union_dirty_pages.to_string(),
        ]);
        report::json_row(&VmRow {
            vm: *vm,
            technique: technique.name().to_string(),
            size_mib: *size_mib,
            init_ns: run.init_ns,
            tracked_done_ns: run.tracked_done_ns,
            tracker_done_ns: run.tracker_done_ns,
            union_dirty_pages: run.union_dirty_pages,
            context_switches: run.context_switches,
        });
    }
    println!("{tbl}");
    println!(
        "fleet: vms={n_vms} union_dirty_pages={total_dirty} tracker_ns_sum={total_tracker_ns}"
    );
}
