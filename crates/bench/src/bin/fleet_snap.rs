//! Fleet checkpoint/migration driver — snapshot chains under the
//! convergence policy, at fleet scale.
//!
//! Every VM runs the full control-plane scenario from `ooh_bench::fleet`:
//! base snapshot → policy-controlled pre-copy rounds growing a diff chain
//! (hot writers throttled, hopeless ones stopped) → stop-and-copy →
//! restore-and-verify against a full-snapshot oracle. The table shows
//! per-VM dirty rates and convergence outcomes; the summary reports how
//! many pages the diff chains shipped versus repeated full snapshots.
//!
//! Knobs (all env, all deterministic):
//! * `OOH_FLEET_VMS`     — number of VMs (default 32);
//! * `OOH_FLEET_THREADS` — worker threads (default: available cores);
//! * `OOH_FLEET_PAGES`   — tracked pages per VM (default 1024);
//! * `OOH_FLEET_OUT`     — if set, write the full report JSON to this path
//!   (the CI fleet-smoke artifact).
//!
//! Output is byte-identical across reruns and thread counts — CI diffs it.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::fleet::{run_fleet, FleetConfig};
use ooh_bench::report;
use ooh_sim::TextTable;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn main() {
    let config = FleetConfig {
        n_vms: env_usize("OOH_FLEET_VMS", 32),
        threads: env_usize("OOH_FLEET_THREADS", rayon::default_threads()),
        pages_per_vm: env_usize("OOH_FLEET_PAGES", 1024) as u64,
        ..FleetConfig::default()
    };
    report::header(
        "fleet_snap",
        "checkpoint/migration control plane: diff-snapshot chains under the convergence policy",
    );
    println!(
        "vms={} pages_per_vm={} policy: max_rounds={} stop<=|{}|pg bandwidth={}pps",
        config.n_vms,
        config.pages_per_vm,
        config.policy.max_rounds,
        config.policy.stop_threshold_pages,
        config.policy.bandwidth_pps,
    );

    let fleet = run_fleet(&config);

    let mut tbl = TextTable::new([
        "vm",
        "technique",
        "profile",
        "vcpus",
        "rounds",
        "peak pps",
        "outcome",
        "thr",
        "shipped",
        "vs full",
        "verified",
    ]);
    for v in &fleet.vms {
        let peak_pps = v.rounds.iter().map(|r| r.dirty_pps).max().unwrap_or(0);
        let outcome = v
            .rounds
            .last()
            .map(|r| r.decision.clone())
            .unwrap_or_default();
        tbl.row([
            v.vm.to_string(),
            v.technique.clone(),
            format!("{:?}", v.profile),
            v.vcpus.to_string(),
            v.rounds.len().to_string(),
            peak_pps.to_string(),
            outcome,
            v.throttled_rounds.to_string(),
            v.pages_shipped.to_string(),
            v.full_snapshot_pages.to_string(),
            v.restore_verified_pages.to_string(),
        ]);
        report::json_row(v);
    }
    println!("{tbl}");
    println!(
        "fleet_snap: vms={} converged={} throttled={} shipped={} full_equiv={} savings={}.{:02}x",
        fleet.n_vms,
        fleet.converged_vms,
        fleet.throttled_vms,
        fleet.total_pages_shipped,
        fleet.total_full_snapshot_pages,
        fleet.diff_savings_x100 / 100,
        fleet.diff_savings_x100 % 100,
    );

    if let Ok(path) = std::env::var("OOH_FLEET_OUT") {
        let json = serde_json::to_string(&fleet).expect("serializable fleet report");
        std::fs::write(&path, &json).expect("write fleet report");
        println!("report written to {path}");
    }
}
