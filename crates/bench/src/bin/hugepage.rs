//! hugepage — the four tracking techniques under three mapping regimes:
//! plain 4K pages, 2M huge pages kept huge (dirty entries expand to the
//! covering 512-page range at drain time), and 2M with split-on-dirty
//! (the first logged write demotes the region back to 4K precision).
//!
//! The interesting columns are the dirty-page unions: keep-huge trades
//! fault/walk savings for conservative over-reporting (every touched 2M
//! region counts as 512 dirty pages), while split-on-dirty recovers the
//! exact 4K dirty set at the cost of one demotion per written region.
//! Proc and Ufd demote on their protection sweeps regardless (soft-dirty
//! write-protection and uffd-wp are PTE-granular), so their unions match
//! the 4K run in every mode.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{report, run_tracked_on, Stack};
use ooh_core::Technique;
use ooh_sim::TextTable;
use ooh_workloads::{phoenix, EngineKind, KvWorkload, SizeClass, Workload};
use serde::Serialize;

/// tkrzw baby with an arena big enough (>512 pages) to earn 2M mappings;
/// the table-III size classes all stay under 2M after scaling.
const TKRZW_OPS: u64 = 40_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
enum Mode {
    FourK,
    KeepHuge,
    SplitOnDirty,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::FourK, Mode::KeepHuge, Mode::SplitOnDirty];

    fn name(self) -> &'static str {
        match self {
            Mode::FourK => "4K",
            Mode::KeepHuge => "2M",
            Mode::SplitOnDirty => "2M+split",
        }
    }
}

#[derive(Serialize)]
struct Row {
    workload: &'static str,
    technique: &'static str,
    mode: &'static str,
    total_ms: f64,
    union_dirty_pages: u64,
}

fn workload(which: &str) -> Box<dyn Workload> {
    match which {
        "phoenix-histogram" => phoenix("histogram", SizeClass::Medium, 42),
        "tkrzw-baby" => Box::new(KvWorkload::new(EngineKind::Baby, TKRZW_OPS, 3, 42)),
        other => panic!("unknown workload {other:?}"),
    }
}

fn run_one(which: &'static str, technique: Technique, mode: Mode) -> Row {
    let mut stack = Stack::boot();
    if mode != Mode::FourK {
        // Both switches act before the workload's setup mmaps, so eligible
        // regions are huge-mapped from the first fault.
        stack.kernel.huge_policy = true;
        stack
            .hv
            .set_split_on_dirty(stack.kernel.vm, mode == Mode::SplitOnDirty);
    }
    let mut w = workload(which);
    let run = run_tracked_on(&mut stack, technique, w.as_mut(), 16).expect("tracked run");
    Row {
        workload: which,
        technique: technique.name(),
        mode: mode.name(),
        total_ms: report::ms(run.tracker_done_ns),
        union_dirty_pages: run.union_dirty_pages,
    }
}

fn main() {
    report::header(
        "hugepage",
        "four techniques x {4K, 2M keep-huge, 2M split-on-dirty}",
    );
    report::scaling_note(
        "tkrzw-baby runs 40K ops so its arena crosses the 2M threshold; \
         phoenix-histogram uses the medium (4 MB datafile) class",
    );
    for which in ["phoenix-histogram", "tkrzw-baby"] {
        let mut tbl = TextTable::new([
            "technique",
            "4K total (ms)",
            "4K dirty",
            "2M total (ms)",
            "2M dirty",
            "2M+split total (ms)",
            "2M+split dirty",
        ]);
        println!("-- {which} --");
        for technique in [
            Technique::Proc,
            Technique::Ufd,
            Technique::Spml,
            Technique::Epml,
        ] {
            let rows: Vec<Row> = Mode::ALL
                .iter()
                .map(|&m| run_one(which, technique, m))
                .collect();
            for r in &rows {
                report::json_row(r);
            }
            tbl.row([
                technique.name().to_string(),
                format!("{:.2}", rows[0].total_ms),
                rows[0].union_dirty_pages.to_string(),
                format!("{:.2}", rows[1].total_ms),
                rows[1].union_dirty_pages.to_string(),
                format!("{:.2}", rows[2].total_ms),
                rows[2].union_dirty_pages.to_string(),
            ]);
        }
        print!("{}", tbl.render());
    }
}
