//! SMP scenario — dirty tracking on a multi-vCPU guest.
//!
//! The paper's measurements are single-core; this binary shows what the
//! simulator charges once the guest schedules across several vCPUs: every
//! PTE teardown (munmap, soft-dirty clear, D-bit clear on EPML drain)
//! broadcasts TLB shootdown IPIs to the remote cores, and the per-vCPU
//! PML/EPML buffers are drained independently. Usage:
//!
//! ```text
//! cargo run --release -p ooh-bench --bin smp            # sweep 1, 2, 4 vCPUs
//! cargo run --release -p ooh-bench --bin smp -- --vcpus 2
//! ```

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{counter, report, run_tracked_on, Stack};
use ooh_core::Technique;
use ooh_sim::{Event, TextTable};
use ooh_workloads::micro;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    technique: &'static str,
    vcpus: u32,
    tracked_done_ms: f64,
    tracker_done_ms: f64,
    shootdown_ipis: u64,
    context_switches: u64,
    union_dirty_pages: u64,
}

fn parse_vcpus() -> Vec<u32> {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--vcpus" {
            let v = it
                .next()
                .and_then(|v| v.parse::<u32>().ok())
                .filter(|&n| n >= 1)
                .expect("--vcpus needs a count >= 1");
            return vec![v];
        }
    }
    vec![1, 2, 4]
}

fn main() {
    report::header(
        "smp",
        "multi-vCPU tracking: cross-vCPU shootdown cost per technique",
    );
    let mut tbl = TextTable::new([
        "technique",
        "vcpus",
        "tracked (ms)",
        "tracker (ms)",
        "shootdown IPIs",
        "ctx sw",
        "dirty pages",
    ]);
    for vcpus in parse_vcpus() {
        for technique in Technique::ALL {
            let mut stack = Stack::boot_with_vcpus(1024, vcpus);
            // Populate the other cores: one background process per extra
            // vCPU (round-robin placement puts them on vCPUs 1..n), so the
            // shootdown broadcasts hit cores that are actually scheduling.
            for _ in 1..vcpus {
                stack
                    .kernel
                    .spawn(&mut stack.hv)
                    .expect("background spawn");
            }
            let mut w = micro(1, 2);
            let run = run_tracked_on(&mut stack, technique, &mut w, 1).expect("run");
            let ipis = counter(&run, Event::TlbShootdownIpi);
            tbl.row([
                technique.name().to_string(),
                vcpus.to_string(),
                format!("{:.3}", report::ms(run.tracked_done_ns)),
                format!("{:.3}", report::ms(run.tracker_done_ns)),
                ipis.to_string(),
                run.context_switches.to_string(),
                run.union_dirty_pages.to_string(),
            ]);
            report::json_row(&Row {
                technique: technique.name(),
                vcpus,
                tracked_done_ms: report::ms(run.tracked_done_ns),
                tracker_done_ms: report::ms(run.tracker_done_ns),
                shootdown_ipis: ipis,
                context_switches: run.context_switches,
                union_dirty_pages: run.union_dirty_pages,
            });
        }
    }
    println!("{tbl}");
    println!(
        "At 1 vCPU no shootdown IPIs fire (invalidations are core-local) and\n\
         the times match the single-core scenarios byte-for-byte; each extra\n\
         vCPU adds one IPI per remote core to every PTE-teardown broadcast."
    );
}
