//! Table I — overhead (%) of ufd- and /proc-based dirty page tracking on
//! Tracked and on Tracker, for the Listing-1 array parser at increasing
//! region sizes.
//!
//! Paper reference points (1 GB): ufd 1463% / 1349%, /proc 335% / 147%.
//! Run with `OOH_FULL=1` to extend the sweep to 500 MB and 1 GB.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{report, run_baseline, run_tracked};
use ooh_core::Technique;
use ooh_sim::{overhead_pct, TextTable};
use ooh_workloads::{micro, microbench_sizes_mib};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    technique: &'static str,
    mib: u64,
    tracked_overhead_pct: f64,
    tracker_overhead_pct: f64,
    baseline_ms: f64,
    dirty_pages: u64,
}

/// Passes over the region per run; collection happens between passes, as a
/// checkpoint-style tracker would.
const PASSES: u32 = 4;

fn main() {
    report::header("table1", "overhead of ufd and /proc on Tracked and Tracker");
    report::scaling_note(
        "sizes are true region sizes; default sweep stops at 250 MiB (OOH_FULL=1 for 1 GiB)",
    );
    let sizes = microbench_sizes_mib();

    let mut tracked_tbl = TextTable::new(
        std::iter::once("On Tracked (%)".to_string())
            .chain(sizes.iter().map(|s| format!("{s}MB"))),
    );
    let mut tracker_tbl = TextTable::new(
        std::iter::once("On Tracker (%)".to_string())
            .chain(sizes.iter().map(|s| format!("{s}MB"))),
    );

    let mut baselines = Vec::new();
    for &mib in &sizes {
        let mut w = micro(mib, PASSES);
        baselines.push(run_baseline(&mut w).expect("baseline"));
    }

    for technique in [Technique::Ufd, Technique::Proc] {
        let mut tracked_row = vec![technique.name().to_string()];
        let mut tracker_row = vec![technique.name().to_string()];
        for (i, &mib) in sizes.iter().enumerate() {
            let mut w = micro(mib, PASSES);
            // Collect once per pass (the array parser's natural round).
            let steps_per_pass = (w.num_pages).div_ceil(256) as u32;
            let run = run_tracked(technique, &mut w, steps_per_pass).expect("tracked run");
            let base = baselines[i] as f64;
            let on_tracked = overhead_pct(run.tracked_done_ns as f64, base);
            let on_tracker = overhead_pct(run.tracker_done_ns as f64, base);
            tracked_row.push(format!("{on_tracked:.0}"));
            tracker_row.push(format!("{on_tracker:.0}"));
            report::json_row(&Row {
                technique: technique.name(),
                mib,
                tracked_overhead_pct: on_tracked,
                tracker_overhead_pct: on_tracker,
                baseline_ms: report::ms(baselines[i]),
                dirty_pages: run.union_dirty_pages,
            });
        }
        tracked_tbl.row(tracked_row);
        tracker_tbl.row(tracker_row);
    }
    println!("{tracked_tbl}");
    println!("{tracker_tbl}");
}
