//! Table II analog — implementation inventory. The paper reports the lines
//! it changed in Xen/Linux/BOCHS/CRIU/Boehm; we report the size of each
//! from-scratch subsystem in this reproduction, split into code and tests,
//! counted from the workspace sources at run time.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::report;
use ooh_sim::TextTable;
use serde::Serialize;
use std::path::{Path, PathBuf};

#[derive(Serialize)]
struct Row {
    subsystem: String,
    files: usize,
    lines: usize,
    test_lines: usize,
}

/// Count (files, total lines, lines inside `#[cfg(test)]`-ish regions) for
/// all .rs files under `dir`. The test-line heuristic counts everything
/// from a `mod tests` line to end-of-file, which matches this codebase's
/// layout (tests always trail the module).
fn count(dir: &Path) -> (usize, usize, usize) {
    let mut files = 0;
    let mut lines = 0;
    let mut test_lines = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if !p.ends_with("target") {
                    stack.push(p);
                }
            } else if p.extension().map(|x| x == "rs").unwrap_or(false) {
                files += 1;
                let Ok(src) = std::fs::read_to_string(&p) else {
                    continue;
                };
                let mut in_tests = false;
                for line in src.lines() {
                    lines += 1;
                    if line.trim_start().starts_with("mod tests") {
                        in_tests = true;
                    }
                    if in_tests {
                        test_lines += 1;
                    }
                }
            }
        }
    }
    (files, lines, test_lines)
}

fn main() {
    report::header("table2", "implementation inventory (paper Table II analog)");
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let subsystems: [(&str, &str); 13] = [
        ("ooh-sim (clock/costs)", "crates/sim/src"),
        ("ooh-machine (VT-x model)", "crates/machine/src"),
        ("ooh-hypervisor (Xen slice)", "crates/hypervisor/src"),
        ("ooh-guest (Linux slice)", "crates/guest/src"),
        ("ooh-core (OoH library)", "crates/core/src"),
        ("ooh-criu (checkpointing)", "crates/criu/src"),
        ("ooh-gc (Boehm GC)", "crates/gc/src"),
        ("ooh-workloads", "crates/workloads/src"),
        ("ooh-bench (harness)", "crates/bench/src"),
        ("facade crate (src)", "src"),
        ("examples", "examples"),
        ("integration tests", "tests"),
        ("criterion benches", "crates/bench/benches"),
    ];
    let mut tbl = TextTable::new(["subsystem", "files", "lines", "of which tests"]);
    let mut total = (0, 0, 0);
    for (name, rel) in subsystems {
        let (f, l, t) = count(&root.join(rel));
        total = (total.0 + f, total.1 + l, total.2 + t);
        tbl.row([name.to_string(), f.to_string(), l.to_string(), t.to_string()]);
        report::json_row(&Row {
            subsystem: name.to_string(),
            files: f,
            lines: l,
            test_lines: t,
        });
    }
    tbl.row([
        "TOTAL".to_string(),
        total.0.to_string(),
        total.1.to_string(),
        total.2.to_string(),
    ]);
    println!("{tbl}");
}
