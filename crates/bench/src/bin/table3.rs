//! Table III — configuration setup and memory consumption for each
//! workload at each size class. The paper lists its parameters and measured
//! memory; we print ours (scaled, see config.rs) with the memory actually
//! resident after a run.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{report, Stack};
use ooh_machine::PAGE_SIZE;
use ooh_sim::TextTable;
use ooh_workloads::{
    gcbench_config, gcbench_heap_pages, phoenix, tkrzw_config, EngineKind, SizeClass, Workload,
    PHOENIX_APPS,
};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    app: String,
    size: &'static str,
    resident_mib: f64,
}

fn mib(pages: u64) -> f64 {
    (pages * PAGE_SIZE) as f64 / (1 << 20) as f64
}

fn main() {
    report::header("table3", "workload configurations and memory consumption");
    report::scaling_note("working sets scaled ~1/16 of the paper's (see DESIGN.md)");
    let mut tbl = TextTable::new(["application", "small (MiB)", "medium (MiB)", "large (MiB)"]);

    // GCBench: report the configured heap, which bounds its footprint.
    {
        let mut row = vec!["GCbench".to_string()];
        for size in SizeClass::ALL {
            let cfg = gcbench_config(size).config;
            let pages = gcbench_heap_pages(size);
            row.push(format!(
                "{:.2} (arr {}K, depth {}/{})",
                mib(pages),
                cfg.array_words / 1024,
                cfg.lived_depth,
                cfg.stretch_depth
            ));
        }
        tbl.row(row);
    }

    for app in PHOENIX_APPS {
        let mut row = vec![app.to_string()];
        for size in SizeClass::ALL {
            let mut stack = Stack::boot();
            let mut w = phoenix(app, size, 7);
            {
                let mut env = stack.env();
                w.run(&mut env).expect("workload");
            }
            let pages = stack.kernel.process(stack.pid).unwrap().resident_pages();
            row.push(format!("{:.2}", mib(pages)));
            report::json_row(&Row {
                app: app.to_string(),
                size: size.name(),
                resident_mib: mib(pages),
            });
        }
        tbl.row(row);
    }

    for kind in EngineKind::ALL {
        let mut row = vec![kind.name().to_string()];
        for size in SizeClass::ALL {
            let mut stack = Stack::boot();
            let mut w = tkrzw_config(kind, size, 7);
            {
                let mut env = stack.env();
                w.run(&mut env).expect("workload");
            }
            let pages = stack.kernel.process(stack.pid).unwrap().resident_pages();
            row.push(format!(
                "{:.2} ({} ops, {} thr)",
                mib(pages),
                w.n_ops,
                w.threads
            ));
            report::json_row(&Row {
                app: kind.name().to_string(),
                size: size.name(),
                resident_mib: mib(pages),
            });
        }
        tbl.row(row);
    }
    println!("{tbl}");
}
