//! Table IV — validation of the analytical model: measured vs estimated
//! E(C_tker) and E(C_tked_tker) for SPML and /proc, with CRIU as Tracker
//! and tkrzw `baby` as Tracked.
//!
//! Paper result: the formulas estimate E(C_tker) with ~96% average accuracy
//! and E(C_tked_tker) with ~99%.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{accuracy_pct, estimate_tracked_impact_ns, estimate_tracker_ns, report, Stack};
use ooh_core::Technique;
use ooh_criu::{Criu, CriuConfig};
use ooh_sim::{Event, SimCtx, TextTable};
use ooh_workloads::{tkrzw_config, EngineKind, SizeClass, Workload};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    technique: &'static str,
    measured_tracker_ms: f64,
    estimated_tracker_ms: f64,
    tracker_accuracy_pct: f64,
    measured_total_ms: f64,
    estimated_total_ms: f64,
    total_accuracy_pct: f64,
    n_context_switches: u64,
}

fn main() {
    report::header(
        "table4",
        "formula validation: measured vs estimated, CRIU x tkrzw-baby",
    );
    let cost = SimCtx::new().cost().clone();
    let mut tbl = TextTable::new([
        "technique",
        "E(Ctker) meas (ms)",
        "E(Ctker) est (ms)",
        "acc",
        "E(Ctked_tker) meas (ms)",
        "est (ms)",
        "acc",
    ]);

    for technique in [Technique::Spml, Technique::Proc, Technique::Ufd, Technique::Epml] {
        let mut stack = Stack::boot();
        let ctx = stack.ctx();
        let mut w = tkrzw_config(EngineKind::Baby, SizeClass::Medium, 42);
        {
            let mut env = stack.env();
            w.setup(&mut env).unwrap();
        }
        let snap0: std::collections::HashMap<&'static str, u64> = Event::ALL
            .iter()
            .map(|&e| (e.name(), ctx.counters().get(e)))
            .collect();
        let lane0 = ctx.clock().snapshot();
        let t0 = ctx.now_ns();

        // Tracker = CRIU: attach, run Tracked with periodic pre-dumps,
        // final dump at the end.
        let mut criu =
            Criu::attach(&mut stack.hv, &mut stack.kernel, stack.pid, CriuConfig::new(technique))
                .unwrap();
        let mut cp_ns = 0u64; // E(C_p): the dump-write routine
        let mut steps = 0u32;
        let mut done = false;
        while !done {
            {
                let mut env = stack.env();
                done = w.step(&mut env).unwrap();
                env.timer_tick().unwrap();
            }
            steps += 1;
            if steps.is_multiple_of(16) && !done {
                let (_, st) = criu.pre_dump(&mut stack.hv, &mut stack.kernel, stack.pid).unwrap();
                cp_ns += st.write_ns;
            }
        }
        let (_, st) = criu.final_dump(&mut stack.hv, &mut stack.kernel, stack.pid).unwrap();
        cp_ns += st.write_ns;
        criu.detach(&mut stack.hv, &mut stack.kernel).unwrap();
        let total_ns = ctx.now_ns() - t0;
        let resident = stack.kernel.process(stack.pid).unwrap().resident_pages();
        // Measured E(C_tker): everything the tracking side consumed — the
        // Tracker lane (CRIU phases, ufd fault handling, revmap) plus the
        // Hypervisor lane (PML service work is tracker-induced; it is zero
        // in an untracked run).
        let lane1 = ctx.clock().snapshot();
        let lanes = lane1.since(&lane0);
        let tracker_ns = lanes.tracker_ns + lanes.hypervisor_ns;

        // Estimates from event-count deltas.
        let counts = |e: Event| ctx.counters().get(e) - snap0[e.name()];
        let est_tracker = estimate_tracker_ns(technique, &counts, &cost, resident);
        let est_impact = estimate_tracked_impact_ns(technique, &counts, &cost);

        // Formula 1: E(C_tker) = E(C_x) + E(C_p); Formula 3:
        // E(C_tked_tker) = E(C_tked) + E(C_tker) + I(C_x, C_tked).
        let baseline_ns = {
            let mut stack2 = Stack::boot();
            let ctx2 = stack2.ctx();
            let mut w2 = tkrzw_config(EngineKind::Baby, SizeClass::Medium, 42);
            let mut env = stack2.env();
            w2.setup(&mut env).unwrap();
            let b0 = ctx2.now_ns();
            while !w2.step(&mut env).unwrap() {
                env.timer_tick().unwrap();
            }
            ctx2.now_ns() - b0
        };
        let est_tracker_total = est_tracker.tracker_ns + cp_ns;
        let est_total = baseline_ns + est_tracker_total + est_impact.tracked_impact_ns;

        let acc_tracker = accuracy_pct(est_tracker_total as f64, tracker_ns as f64);
        let acc_total = accuracy_pct(est_total as f64, total_ns as f64);

        tbl.row([
            technique.name().to_string(),
            format!("{:.2}", report::ms(tracker_ns)),
            format!("{:.2}", report::ms(est_tracker_total)),
            format!("{acc_tracker:.1}%"),
            format!("{:.2}", report::ms(total_ns)),
            format!("{:.2}", report::ms(est_total)),
            format!("{acc_total:.1}%"),
        ]);
        report::json_row(&Row {
            technique: technique.name(),
            measured_tracker_ms: report::ms(tracker_ns),
            estimated_tracker_ms: report::ms(est_tracker_total),
            tracker_accuracy_pct: acc_tracker,
            measured_total_ms: report::ms(total_ns),
            estimated_total_ms: report::ms(est_total),
            total_accuracy_pct: acc_total,
            n_context_switches: counts(Event::SchedOut),
        });
    }
    println!("{tbl}");
}
