//! Table V — the basic costs of the internal metrics M1–M18.
//!
//! Part (a): size-agnostic unit costs, measured by invoking each mechanism
//! directly on the simulated stack and timing it (which also validates that
//! the charged costs equal the calibrated model).
//! Part (b): size-dependent totals for the array parser at each region
//! size, measured with clock deltas around the mechanism.
//!
//! With `OOH_TRACE=1`, every stack boots with an `ooh_trace::Tracer`
//! installed and each measured metric is wrapped in a trace scope. The
//! table is then regenerated a second time *from the trace* (scope sums for
//! the clock-delta metrics, scope event counts × unit costs for the
//! counter-derived ones) and asserted byte-identical to the counter-based
//! rows; the per-lane conservation invariant is checked on every stack; and
//! the attribution profile / folded stacks / Chrome trace of the largest
//! size are written into `OOH_TRACE_OUT` (default `bench_results/`).
//! Stdout is byte-identical with and without `OOH_TRACE` — trace-mode
//! notices go to stderr.
//!
//! M1 and M9–M13 are printed straight from the cost-model constants (their
//! mechanisms are either not exercised here or exercised only inside M3/M4),
//! so the trace cross-check covers the *measured* metrics: M3, M4, M7, M8
//! and all of part (b).

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{report, Stack};
use ooh_core::{OohSession, Technique};
use ooh_guest::{OohMode, OohModule, UfdMode, VmaKind};
use ooh_machine::Field;
use ooh_sim::{Lane, ScopeKind, SimCtx, TextTable};
use ooh_trace::Tracer;
use ooh_workloads::microbench_sizes_mib;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct UnitRow {
    metric: &'static str,
    cost_us: f64,
    technique: &'static str,
}

#[derive(Serialize)]
struct SizeRow {
    metric: &'static str,
    mib: u64,
    total_ms: f64,
}

fn trace_mode() -> bool {
    std::env::var_os("OOH_TRACE").is_some_and(|v| !v.is_empty() && v != "0")
}

fn trace_out_dir() -> std::path::PathBuf {
    std::env::var_os("OOH_TRACE_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("bench_results"))
}

/// Boot a stack; in trace mode, with a tracer installed before the first
/// charge so conservation covers boot time too.
fn boot_traced() -> (Stack, Option<Arc<Tracer>>) {
    if trace_mode() {
        let ctx = SimCtx::new();
        let tracer = Tracer::install(&ctx);
        (Stack::boot_with_ctx(8 * 1024, ctx), Some(tracer))
    } else {
        (Stack::boot(), None)
    }
}

/// Clock-delta measurement of one mechanism, wrapped in a same-named trace
/// scope so the delta can be regenerated from the trace (`scope_ns(label)`).
fn measure<F: FnOnce(&mut Stack)>(stack: &mut Stack, label: &'static str, f: F) -> u64 {
    let ctx = stack.ctx();
    let _span = ctx.span(ScopeKind::Phase, label, 0);
    let t0 = ctx.now_ns();
    f(stack);
    ctx.now_ns() - t0
}

/// Assert that the counter-derived and trace-derived renderings of a row
/// value are byte-identical.
fn assert_same_cell(metric: &str, counter_cell: &str, trace_cell: &str) {
    assert_eq!(
        counter_cell, trace_cell,
        "trace-regenerated cell for {metric} diverged from the counter-based one"
    );
}

fn check_conservation(tracer: &Option<Arc<Tracer>>, stack: &Stack) {
    if let Some(t) = tracer {
        t.check_conservation(stack.ctx().clock())
            .expect("table5: trace conservation");
    }
}

fn main() {
    report::header("table5", "basic costs of internal metrics M1-M18");

    // ---- (a) size-agnostic metrics -------------------------------------
    let mut a = TextTable::new(["metric", "cost (us)", "technique"]);
    let mut unit = |name: &'static str, ns: u64, tech: &'static str| {
        a.row([
            name.to_string(),
            format!("{:.3}", ns as f64 / 1e3),
            tech.to_string(),
        ]);
        report::json_row(&UnitRow {
            metric: name,
            cost_us: ns as f64 / 1e3,
            technique: tech,
        });
    };
    // In trace mode, re-derive each measured unit cost from the trace and
    // assert the formatted cell matches.
    let cross_check_unit = |tracer: &Option<Arc<Tracer>>, name: &'static str, ns: u64| {
        if let Some(t) = tracer {
            let trace_ns = t.scope_ns(name);
            assert_same_cell(
                name,
                &format!("{:.3}", ns as f64 / 1e3),
                &format!("{:.3}", trace_ns as f64 / 1e3),
            );
        }
    };

    // M1: context switch (the pure user/kernel crossing; the address-space
    // switch's TLB flush is charged separately as a TlbFlush).
    {
        let cost = ooh_sim::SimCtx::new().cost().clone();
        unit("M1 context switch", cost.context_switch_ns, "all");
    }
    // M3/M4: OoH module ioctls (wrapping the M9/M11 hypercalls).
    {
        let (mut stack, tracer) = boot_traced();
        let mut module = None;
        let ns3 = measure(&mut stack, "M3 ioctl init PML", |s| {
            module = Some(OohModule::load(&mut s.kernel, &mut s.hv, OohMode::Spml).unwrap());
        });
        let ns4 = measure(&mut stack, "M4 ioctl deactivate PML", |s| {
            module.take().unwrap().unload(&mut s.kernel, &mut s.hv).unwrap();
        });
        unit("M3 ioctl init PML", ns3, "SPML & EPML");
        unit("M4 ioctl deactivate PML", ns4, "SPML & EPML");
        cross_check_unit(&tracer, "M3 ioctl init PML", ns3);
        cross_check_unit(&tracer, "M4 ioctl deactivate PML", ns4);
        check_conservation(&tracer, &stack);
    }
    // M7/M8: shadow vmread/vmwrite.
    {
        let (mut stack, tracer) = boot_traced();
        let module = OohModule::load(&mut stack.kernel, &mut stack.hv, OohMode::Epml).unwrap();
        stack.kernel.ooh = Some(module);
        let vm = stack.kernel.vm;
        let ns7 = measure(&mut stack, "M7 vmread", |s| {
            s.hv.guest_vmread(vm, 0, Field::GuestPmlIndex, Lane::Kernel)
                .unwrap();
        });
        let ns8 = measure(&mut stack, "M8 vmwrite", |s| {
            s.hv.guest_vmwrite(vm, 0, Field::EpmlControl, 0, Lane::Kernel)
                .unwrap();
        });
        unit("M7 vmread", ns7, "EPML");
        unit("M8 vmwrite", ns8, "EPML");
        cross_check_unit(&tracer, "M7 vmread", ns7);
        cross_check_unit(&tracer, "M8 vmwrite", ns8);
        check_conservation(&tracer, &stack);
    }
    // M9-M12 from the cost model (measured inside M3/M4 above).
    {
        let cost = ooh_sim::SimCtx::new().cost().clone();
        unit("M9 hypercall init PML", cost.hypercall_init_pml_ns, "SPML");
        unit(
            "M10 + init VMCS shadowing",
            cost.hypercall_init_pml_shadow_ns,
            "EPML",
        );
        unit("M11 PML deactivation", cost.hypercall_deactivate_pml_ns, "SPML");
        unit(
            "M12 + VMCS shadowing deact.",
            cost.hypercall_deactivate_shadow_ns,
            "EPML",
        );
        unit("M13 enable PML logging", cost.enable_logging_ns, "SPML");
    }
    println!("{a}");

    // ---- (b) size-dependent metrics ---------------------------------------
    let sizes = microbench_sizes_mib();
    let largest = *sizes.last().expect("nonempty size list");
    let mut b = TextTable::new(
        std::iter::once("total (ms)".to_string()).chain(sizes.iter().map(|s| format!("{s}MB"))),
    );
    let mut rows: std::collections::BTreeMap<&'static str, Vec<f64>> = Default::default();
    for &mib in &sizes {
        let pages = mib * 256;

        // A pre-faulted region.
        let (mut stack, tracer) = boot_traced();
        let pid = stack.pid;
        let region = stack.kernel.mmap(pid, pages, true, VmaKind::Anon).unwrap();
        for g in region.iter_pages().collect::<Vec<_>>() {
            stack
                .kernel
                .write_u64(&mut stack.hv, pid, g, 1, Lane::Tracked)
                .unwrap();
        }

        // M15: clear_refs.
        let m15 = measure(&mut stack, "M15 clear_refs", |s| {
            s.kernel.clear_refs(&mut s.hv, pid, Lane::Tracker).unwrap();
        });
        // M5: kernel PFH — re-dirty every page after clear_refs.
        let m5 = {
            let ctx = stack.ctx();
            let _span = ctx.span(ScopeKind::Phase, "M5 PFH kernel", 0);
            let before = ctx.counters().get(ooh_sim::Event::PageFaultKernel);
            for g in region.iter_pages().collect::<Vec<_>>() {
                stack
                    .kernel
                    .write_u64(&mut stack.hv, pid, g, 2, Lane::Tracked)
                    .unwrap();
            }
            let n = ctx.counters().get(ooh_sim::Event::PageFaultKernel) - before;
            n * ctx.cost().page_fault_kernel_ns
        };
        // M16: pagemap walk.
        let m16 = measure(&mut stack, "M16 PT walk (userspace)", |s| {
            s.kernel
                .read_pagemap(&mut s.hv, pid, region, Lane::Tracker)
                .unwrap();
        });
        // M6: userspace PFH via uffd-wp over the whole region.
        let m6 = {
            let ufd = stack.kernel.ufd_create(pid, UfdMode::WriteProtect);
            stack.kernel.ufd_register(&mut stack.hv, ufd, region);
            stack
                .kernel
                .ufd_writeprotect(&mut stack.hv, ufd, region, true)
                .unwrap();
            let ctx = stack.ctx();
            let _span = ctx.span(ScopeKind::Phase, "M6 PFH user", 0);
            let before = ctx.counters().get(ooh_sim::Event::PageFaultUser);
            for g in region.iter_pages().collect::<Vec<_>>() {
                stack
                    .kernel
                    .write_u64(&mut stack.hv, pid, g, 3, Lane::Tracked)
                    .unwrap();
            }
            let n = ctx.counters().get(ooh_sim::Event::PageFaultUser) - before;
            n * ctx.cost().page_fault_user_ns
        };
        // M17 + M18 + M14: one SPML round over the whole region.
        let (m14, m17, m18) = {
            let ctx = stack.ctx();
            let round_span = ctx.span(ScopeKind::Phase, "spml round", 0);
            let rb_before = ctx.counters().get(ooh_sim::Event::RingBufferCopyEntry);
            let rm_before = ctx.counters().get(ooh_sim::Event::ReverseMapLookup);
            let dis_before = ctx.counters().get(ooh_sim::Event::HypercallDisableLogging);
            let mut session =
                OohSession::start(&mut stack.hv, &mut stack.kernel, pid, Technique::Spml)
                    .unwrap();
            for g in region.iter_pages().collect::<Vec<_>>() {
                stack
                    .kernel
                    .write_u64(&mut stack.hv, pid, g, 4, Lane::Tracked)
                    .unwrap();
            }
            // Periodic preemptions so disable_logging (M14) fires.
            for _ in 0..16 {
                stack.kernel.preemption_round_trip(&mut stack.hv).unwrap();
            }
            session.fetch_dirty(&mut stack.hv, &mut stack.kernel).unwrap();
            drop(round_span);
            let rb = ctx.counters().get(ooh_sim::Event::RingBufferCopyEntry) - rb_before;
            let rm = ctx.counters().get(ooh_sim::Event::ReverseMapLookup) - rm_before;
            let dis = ctx.counters().get(ooh_sim::Event::HypercallDisableLogging) - dis_before;
            session.stop(&mut stack.hv, &mut stack.kernel).unwrap();
            let resident = pages;
            (
                dis * ctx.cost().disable_logging_base_ns + rb * ctx.cost().ring_copy_entry_ns,
                rm * ctx.cost().reverse_map_lookup_ns(resident),
                rb * ctx.cost().ring_copy_entry_ns,
            )
        };

        // Trace-side regeneration of the same row, from scope sums (M15,
        // M16) and scope event counts × unit costs (M5, M6, M14, M17, M18).
        let trace_row: Option<Vec<(&'static str, u64)>> = tracer.as_ref().map(|t| {
            let ctx = stack.ctx();
            let ev = |label: &str, event: ooh_sim::Event| t.scope_event_units(label, event);
            let rb = ev("spml round", ooh_sim::Event::RingBufferCopyEntry);
            let rm = ev("spml round", ooh_sim::Event::ReverseMapLookup);
            let dis = ev("spml round", ooh_sim::Event::HypercallDisableLogging);
            vec![
                ("M15 clear_refs", t.scope_ns("M15 clear_refs")),
                ("M16 PT walk (userspace)", t.scope_ns("M16 PT walk (userspace)")),
                (
                    "M5 PFH kernel",
                    ev("M5 PFH kernel", ooh_sim::Event::PageFaultKernel)
                        * ctx.cost().page_fault_kernel_ns,
                ),
                (
                    "M6 PFH user",
                    ev("M6 PFH user", ooh_sim::Event::PageFaultUser)
                        * ctx.cost().page_fault_user_ns,
                ),
                (
                    "M14 disable PML logging",
                    dis * ctx.cost().disable_logging_base_ns
                        + rb * ctx.cost().ring_copy_entry_ns,
                ),
                ("M18 ring buffer copy", rb * ctx.cost().ring_copy_entry_ns),
                ("M17 reverse mapping", rm * ctx.cost().reverse_map_lookup_ns(pages)),
            ]
        });

        for (name, ns) in [
            ("M15 clear_refs", m15),
            ("M16 PT walk (userspace)", m16),
            ("M5 PFH kernel", m5),
            ("M6 PFH user", m6),
            ("M14 disable PML logging", m14),
            ("M18 ring buffer copy", m18),
            ("M17 reverse mapping", m17),
        ] {
            if let Some(trow) = &trace_row {
                let (_, tns) = trow
                    .iter()
                    .find(|(n, _)| *n == name)
                    .expect("trace row covers every metric");
                assert_same_cell(
                    name,
                    &format!("{:.3}", report::ms(ns)),
                    &format!("{:.3}", report::ms(*tns)),
                );
            }
            rows.entry(name).or_default().push(report::ms(ns));
            report::json_row(&SizeRow {
                metric: name,
                mib,
                total_ms: report::ms(ns),
            });
        }

        check_conservation(&tracer, &stack);
        if let Some(t) = &tracer {
            if mib == largest {
                let dir = trace_out_dir();
                std::fs::create_dir_all(&dir).expect("create trace output dir");
                let rows_json =
                    serde_json::to_string(&t.profile_rows()).expect("serialize profile");
                std::fs::write(dir.join("table5_profile.json"), rows_json)
                    .expect("write profile json");
                std::fs::write(dir.join("table5.folded"), t.folded())
                    .expect("write folded stacks");
                std::fs::write(dir.join("table5_chrome_trace.json"), t.chrome_trace())
                    .expect("write chrome trace");
                eprintln!(
                    "table5: trace cross-check passed; profile artifacts in {}",
                    dir.display()
                );
            }
        }
    }
    for (name, vals) in rows {
        let mut row = vec![name.to_string()];
        row.extend(vals.iter().map(|v| format!("{v:.3}")));
        b.row(row);
    }
    println!("{b}");
}
