//! Table V — the basic costs of the internal metrics M1–M18.
//!
//! Part (a): size-agnostic unit costs, measured by invoking each mechanism
//! directly on the simulated stack and timing it (which also validates that
//! the charged costs equal the calibrated model).
//! Part (b): size-dependent totals for the array parser at each region
//! size, measured with clock deltas around the mechanism.

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{report, Stack};
use ooh_core::{OohSession, Technique};
use ooh_guest::{OohMode, OohModule, UfdMode, VmaKind};
use ooh_machine::Field;
use ooh_sim::{Lane, TextTable};
use ooh_workloads::microbench_sizes_mib;
use serde::Serialize;

#[derive(Serialize)]
struct UnitRow {
    metric: &'static str,
    cost_us: f64,
    technique: &'static str,
}

#[derive(Serialize)]
struct SizeRow {
    metric: &'static str,
    mib: u64,
    total_ms: f64,
}

fn measure<F: FnOnce(&mut Stack)>(stack: &mut Stack, f: F) -> u64 {
    let ctx = stack.ctx();
    let t0 = ctx.now_ns();
    f(stack);
    ctx.now_ns() - t0
}

fn main() {
    report::header("table5", "basic costs of internal metrics M1-M18");

    // ---- (a) size-agnostic metrics -------------------------------------
    let mut a = TextTable::new(["metric", "cost (us)", "technique"]);
    let mut unit = |name: &'static str, ns: u64, tech: &'static str| {
        a.row([
            name.to_string(),
            format!("{:.3}", ns as f64 / 1e3),
            tech.to_string(),
        ]);
        report::json_row(&UnitRow {
            metric: name,
            cost_us: ns as f64 / 1e3,
            technique: tech,
        });
    };

    // M1: context switch (the pure user/kernel crossing; the address-space
    // switch's TLB flush is charged separately as a TlbFlush).
    {
        let cost = ooh_sim::SimCtx::new().cost().clone();
        unit("M1 context switch", cost.context_switch_ns, "all");
    }
    // M3/M4: OoH module ioctls (wrapping the M9/M11 hypercalls).
    {
        let mut stack = Stack::boot();
        let mut module = None;
        let ns3 = measure(&mut stack, |s| {
            module = Some(OohModule::load(&mut s.kernel, &mut s.hv, OohMode::Spml).unwrap());
        });
        let ns4 = measure(&mut stack, |s| {
            module.take().unwrap().unload(&mut s.kernel, &mut s.hv).unwrap();
        });
        unit("M3 ioctl init PML", ns3, "SPML & EPML");
        unit("M4 ioctl deactivate PML", ns4, "SPML & EPML");
    }
    // M7/M8: shadow vmread/vmwrite.
    {
        let mut stack = Stack::boot();
        let module = OohModule::load(&mut stack.kernel, &mut stack.hv, OohMode::Epml).unwrap();
        stack.kernel.ooh = Some(module);
        let vm = stack.kernel.vm;
        let ns7 = measure(&mut stack, |s| {
            s.hv.guest_vmread(vm, 0, Field::GuestPmlIndex, Lane::Kernel)
                .unwrap();
        });
        let ns8 = measure(&mut stack, |s| {
            s.hv.guest_vmwrite(vm, 0, Field::EpmlControl, 0, Lane::Kernel)
                .unwrap();
        });
        unit("M7 vmread", ns7, "EPML");
        unit("M8 vmwrite", ns8, "EPML");
    }
    // M9-M12 from the cost model (measured inside M3/M4 above).
    {
        let cost = ooh_sim::SimCtx::new().cost().clone();
        unit("M9 hypercall init PML", cost.hypercall_init_pml_ns, "SPML");
        unit(
            "M10 + init VMCS shadowing",
            cost.hypercall_init_pml_shadow_ns,
            "EPML",
        );
        unit("M11 PML deactivation", cost.hypercall_deactivate_pml_ns, "SPML");
        unit(
            "M12 + VMCS shadowing deact.",
            cost.hypercall_deactivate_shadow_ns,
            "EPML",
        );
        unit("M13 enable PML logging", cost.enable_logging_ns, "SPML");
    }
    println!("{a}");

    // ---- (b) size-dependent metrics ---------------------------------------
    let sizes = microbench_sizes_mib();
    let mut b = TextTable::new(
        std::iter::once("total (ms)".to_string()).chain(sizes.iter().map(|s| format!("{s}MB"))),
    );
    let mut rows: std::collections::BTreeMap<&'static str, Vec<f64>> = Default::default();
    for &mib in &sizes {
        let pages = mib * 256;

        // A pre-faulted region.
        let mut stack = Stack::boot();
        let pid = stack.pid;
        let region = stack.kernel.mmap(pid, pages, true, VmaKind::Anon).unwrap();
        for g in region.iter_pages().collect::<Vec<_>>() {
            stack
                .kernel
                .write_u64(&mut stack.hv, pid, g, 1, Lane::Tracked)
                .unwrap();
        }

        // M15: clear_refs.
        let m15 = measure(&mut stack, |s| {
            s.kernel.clear_refs(&mut s.hv, pid, Lane::Tracker).unwrap();
        });
        // M5: kernel PFH — re-dirty every page after clear_refs.
        let m5 = {
            let ctx = stack.ctx();
            let before = ctx.counters().get(ooh_sim::Event::PageFaultKernel);
            for g in region.iter_pages().collect::<Vec<_>>() {
                stack
                    .kernel
                    .write_u64(&mut stack.hv, pid, g, 2, Lane::Tracked)
                    .unwrap();
            }
            let n = ctx.counters().get(ooh_sim::Event::PageFaultKernel) - before;
            n * ctx.cost().page_fault_kernel_ns
        };
        // M16: pagemap walk.
        let m16 = measure(&mut stack, |s| {
            s.kernel
                .read_pagemap(&mut s.hv, pid, region, Lane::Tracker)
                .unwrap();
        });
        // M6: userspace PFH via uffd-wp over the whole region.
        let m6 = {
            let ufd = stack.kernel.ufd_create(pid, UfdMode::WriteProtect);
            stack.kernel.ufd_register(&mut stack.hv, ufd, region);
            stack
                .kernel
                .ufd_writeprotect(&mut stack.hv, ufd, region, true)
                .unwrap();
            let ctx = stack.ctx();
            let before = ctx.counters().get(ooh_sim::Event::PageFaultUser);
            for g in region.iter_pages().collect::<Vec<_>>() {
                stack
                    .kernel
                    .write_u64(&mut stack.hv, pid, g, 3, Lane::Tracked)
                    .unwrap();
            }
            let n = ctx.counters().get(ooh_sim::Event::PageFaultUser) - before;
            n * ctx.cost().page_fault_user_ns
        };
        // M17 + M18 + M14: one SPML round over the whole region.
        let (m14, m17, m18) = {
            let ctx = stack.ctx();
            let rb_before = ctx.counters().get(ooh_sim::Event::RingBufferCopyEntry);
            let rm_before = ctx.counters().get(ooh_sim::Event::ReverseMapLookup);
            let dis_before = ctx.counters().get(ooh_sim::Event::HypercallDisableLogging);
            let mut session =
                OohSession::start(&mut stack.hv, &mut stack.kernel, pid, Technique::Spml)
                    .unwrap();
            for g in region.iter_pages().collect::<Vec<_>>() {
                stack
                    .kernel
                    .write_u64(&mut stack.hv, pid, g, 4, Lane::Tracked)
                    .unwrap();
            }
            // Periodic preemptions so disable_logging (M14) fires.
            for _ in 0..16 {
                stack.kernel.preemption_round_trip(&mut stack.hv).unwrap();
            }
            session.fetch_dirty(&mut stack.hv, &mut stack.kernel).unwrap();
            let rb = ctx.counters().get(ooh_sim::Event::RingBufferCopyEntry) - rb_before;
            let rm = ctx.counters().get(ooh_sim::Event::ReverseMapLookup) - rm_before;
            let dis = ctx.counters().get(ooh_sim::Event::HypercallDisableLogging) - dis_before;
            session.stop(&mut stack.hv, &mut stack.kernel).unwrap();
            let resident = pages;
            (
                dis * ctx.cost().disable_logging_base_ns + rb * ctx.cost().ring_copy_entry_ns,
                rm * ctx.cost().reverse_map_lookup_ns(resident),
                rb * ctx.cost().ring_copy_entry_ns,
            )
        };

        for (name, ns) in [
            ("M15 clear_refs", m15),
            ("M16 PT walk (userspace)", m16),
            ("M5 PFH kernel", m5),
            ("M6 PFH user", m6),
            ("M14 disable PML logging", m14),
            ("M18 ring buffer copy", m18),
            ("M17 reverse mapping", m17),
        ] {
            rows.entry(name).or_default().push(report::ms(ns));
            report::json_row(&SizeRow {
                metric: name,
                mib,
                total_ms: report::ms(ns),
            });
        }
    }
    for (name, vals) in rows {
        let mut row = vec![name.to_string()];
        row.extend(vals.iter().map(|v| format!("{v:.3}")));
        b.row(row);
    }
    println!("{b}");
}
