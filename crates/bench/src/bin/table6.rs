//! Table VI — influence of each technique on the internal metrics: which
//! metrics it involves, which depend on memory size, which run during the
//! monitoring phase, and which dominate. Derived from the mechanism
//! structure plus a measured probe run per technique (the counts prove the
//! associations rather than asserting them).

#![allow(clippy::print_stdout)] // bench/example binaries print their results

use ooh_bench::{counter, report, run_tracked};
use ooh_core::Technique;
use ooh_sim::{Event, TextTable};
use ooh_workloads::micro;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    technique: &'static str,
    associated_metrics: Vec<&'static str>,
    size_dependent: Vec<&'static str>,
    monitoring_phase: Vec<&'static str>,
    two_most_costly: Vec<&'static str>,
}

fn main() {
    report::header("table6", "influence of each technique on the internal metrics");

    let associations: [(Technique, &[(&str, Event)]); 4] = [
        (
            Technique::Proc,
            &[
                ("M1", Event::ContextSwitch),
                ("M5", Event::PageFaultKernel),
                ("M15", Event::ClearRefsPte),
                ("M16", Event::PagemapReadEntry),
            ],
        ),
        (
            Technique::Ufd,
            &[
                ("M1", Event::ContextSwitch),
                ("M2", Event::UfdWriteProtectPage),
                ("M6", Event::PageFaultUser),
            ],
        ),
        (
            Technique::Spml,
            &[
                ("M1", Event::ContextSwitch),
                ("M3", Event::IoctlInitPml),
                ("M9", Event::HypercallInitPml),
                ("M13", Event::HypercallEnableLogging),
                ("M14", Event::HypercallDisableLogging),
                ("M16", Event::PagemapReadEntry),
                ("M17", Event::ReverseMapLookup),
                ("M18", Event::RingBufferCopyEntry),
            ],
        ),
        (
            Technique::Epml,
            &[
                ("M1", Event::ContextSwitch),
                ("M3", Event::IoctlInitPml),
                ("M7", Event::Vmread),
                ("M8", Event::Vmwrite),
                ("M10", Event::HypercallInitPmlShadow),
                ("M18", Event::RingBufferCopyEntry),
            ],
        ),
    ];

    type MetricLists = (Technique, &'static [&'static str], &'static [&'static str], &'static [&'static str]);
    let static_info: [MetricLists; 4] = [
        (Technique::Proc, &["M5", "M15", "M16"], &["M5"], &["M16", "M5"]),
        (Technique::Ufd, &["M2", "M5", "M6"], &["M5", "M6"], &["M6", "M5"]),
        (
            Technique::Spml,
            &["M14", "M16", "M17", "M18"],
            &["M13", "M14"],
            &["M17", "M16"],
        ),
        (Technique::Epml, &["M18"], &["M7", "M8"], &["M10", "M12"]),
    ];

    let mut tbl = TextTable::new([
        "technique",
        "associated (verified by probe)",
        "size-dependent",
        "monitoring-phase",
        "two most costly",
    ]);

    for ((technique, assoc), (_, size_dep, monitoring, costly)) in
        associations.iter().zip(static_info.iter())
    {
        // Probe: run the micro-benchmark once and verify every associated
        // metric actually fired (counts > 0).
        let mut w = micro(4, 2);
        let run = run_tracked(*technique, &mut w, 4).expect("probe run");
        let verified: Vec<&'static str> = assoc
            .iter()
            .map(|&(m, ev)| {
                let n = counter(&run, ev);
                assert!(n > 0, "{}: metric {m} ({ev:?}) never fired", technique.name());
                m
            })
            .collect();

        tbl.row([
            technique.name().to_string(),
            verified.join(","),
            size_dep.join(","),
            monitoring.join(","),
            costly.join(","),
        ]);
        report::json_row(&Row {
            technique: technique.name(),
            associated_metrics: verified,
            size_dependent: size_dep.to_vec(),
            monitoring_phase: monitoring.to_vec(),
            two_most_costly: costly.to_vec(),
        });
    }
    println!("{tbl}");
    println!(
        "scalability: EPML has 1 size-dependent metric (M18); SPML has 4; \
         ufd and /proc have 3 each — Table VI's conclusion."
    );
}
