//! CRIU experiment scenarios (Figures 7–9): checkpoint a running
//! application with each tracking technique and decompose the cost.
//!
//! Protocol per run: start the workload; at the half-way point take an
//! incremental checkpoint (the pre-dump + dump the paper's Figures 7/8
//! time); let the workload finish; final dump. Overhead on Tracked
//! (Figure 9) is the end-to-end slowdown versus the same run without CRIU.

use crate::scenario::Stack;
use ooh_core::Technique;
use ooh_criu::{Criu, CriuConfig};
use ooh_guest::GuestError;
use ooh_workloads::{phoenix, tkrzw_config, EngineKind, SizeClass, WorkEnv, Workload};
use serde::Serialize;

/// Which application a CRIU scenario checkpoints.
#[derive(Debug, Clone, Copy)]
pub enum App {
    Phoenix(&'static str),
    Tkrzw(EngineKind),
}

impl App {
    pub fn name(&self) -> String {
        match self {
            App::Phoenix(n) => (*n).to_string(),
            App::Tkrzw(k) => k.name().to_string(),
        }
    }

    pub fn build(&self, size: SizeClass, seed: u64) -> Box<dyn Workload> {
        match self {
            App::Phoenix(n) => phoenix(n, size, seed),
            App::Tkrzw(k) => Box::new(tkrzw_config(*k, size, seed)),
        }
    }

    /// The paper's Figure 7–9 application set: Phoenix (Large) + tkrzw.
    pub const ALL: [App; 11] = [
        App::Phoenix("histogram"),
        App::Phoenix("kmeans"),
        App::Phoenix("matrix-multiply"),
        App::Phoenix("pca"),
        App::Phoenix("string-match"),
        App::Phoenix("word-count"),
        App::Tkrzw(EngineKind::Baby),
        App::Tkrzw(EngineKind::Cache),
        App::Tkrzw(EngineKind::StdHash),
        App::Tkrzw(EngineKind::StdTree),
        App::Tkrzw(EngineKind::Tiny),
    ];
}

#[derive(Debug, Clone, Serialize)]
pub struct CriuRun {
    pub app: String,
    pub technique: String,
    /// Memory-dump (collection) phase of the mid-run checkpoint.
    pub md_ns: u64,
    /// Memory-write phase of the mid-run checkpoint.
    pub mw_ns: u64,
    /// Complete mid-run checkpoint time.
    pub checkpoint_ns: u64,
    pub pages_dumped: u64,
    /// End-to-end run time under CRIU (post-init).
    pub total_ns: u64,
}

/// Untracked end-to-end time for `app` (the Figure 9 baseline).
pub fn criu_baseline(app: App, size: SizeClass) -> Result<u64, GuestError> {
    let mut stack = Stack::boot();
    let ctx = stack.ctx();
    let mut w = app.build(size, 99);
    let mut env = WorkEnv::new(&mut stack.hv, &mut stack.kernel, stack.pid);
    w.setup(&mut env)?;
    let t0 = ctx.now_ns();
    while !w.step(&mut env)? {
        env.timer_tick()?;
    }
    Ok(ctx.now_ns() - t0)
}

/// Run `app` under CRIU with `technique`; checkpoint at the half-way point.
pub fn run_criu(app: App, size: SizeClass, technique: Technique) -> Result<CriuRun, GuestError> {
    let mut stack = Stack::boot();
    let ctx = stack.ctx();
    let mut w = app.build(size, 99);
    {
        let mut env = WorkEnv::new(&mut stack.hv, &mut stack.kernel, stack.pid);
        w.setup(&mut env)?;
    }
    let mut criu = Criu::attach(
        &mut stack.hv,
        &mut stack.kernel,
        stack.pid,
        CriuConfig::new(technique),
    )?;
    let t0 = ctx.now_ns();

    // First half of the run, counted by steps of a dry probe: we just step
    // until the workload reports done, checkpointing once at step N/2 —
    // but N is unknown up front, so checkpoint when a step counter hits a
    // heuristic midpoint estimated from a counting pass is overkill; use
    // "checkpoint after 50% of steps seen so far doubles" — simply: step
    // until done, checkpointing once when the step count reaches 32.
    let mut steps = 0u32;
    let mut dump: Option<(u64, u64, u64, u64)> = None;
    let mut done = false;
    while !done {
        {
            let mut env = WorkEnv::new(&mut stack.hv, &mut stack.kernel, stack.pid);
            done = w.step(&mut env)?;
            env.timer_tick()?;
        }
        steps += 1;
        if steps == 32 && !done {
            let (_, st) = criu.final_dump(&mut stack.hv, &mut stack.kernel, stack.pid)?;
            dump = Some((st.md_ns, st.mw_ns, st.total_ns, st.pages_written));
        }
    }
    // Workloads shorter than 32 steps: checkpoint at the end instead.
    let (md_ns, mw_ns, checkpoint_ns, pages) = match dump {
        Some(d) => d,
        None => {
            let (_, st) = criu.final_dump(&mut stack.hv, &mut stack.kernel, stack.pid)?;
            (st.md_ns, st.mw_ns, st.total_ns, st.pages_written)
        }
    };
    let total_ns = ctx.now_ns() - t0;
    criu.detach(&mut stack.hv, &mut stack.kernel)?;

    Ok(CriuRun {
        app: app.name(),
        technique: technique.name().to_string(),
        md_ns,
        mw_ns,
        checkpoint_ns,
        pages_dumped: pages,
        total_ns,
    })
}
