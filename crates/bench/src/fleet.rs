//! Fleet checkpoint/migration control plane.
//!
//! Tracks tens-to-hundreds of VMs concurrently: each VM is one fully
//! independent stack (own [`SimCtx`], own hypervisor, guest, tracker and
//! [`Criu`] engine) running a pre-copy loop that grows a
//! [`SnapshotChain`] — a full base image plus one diff layer per round —
//! under the [`ConvergencePolicy`]'s control. A VM whose dirty rate
//! exceeds the copy bandwidth gets throttled (its writer slows, QEMU
//! auto-converge style) and, if the throttle ladder runs out or the round
//! cap hits, falls back to stop-and-copy.
//!
//! Every VM's chain is restored into a fresh process and byte-verified
//! against a **full-snapshot oracle** taken at the same virtual instant,
//! so a fleet run is an end-to-end correctness check, not just a
//! throughput number.
//!
//! Determinism contract: [`simulate_vm`] is a pure function of
//! `(FleetConfig, vm_index)` — profiles, write schedules and policy
//! inputs all derive from the index and the seed. The fleet fans out with
//! `rayon::par_map_ordered` and merges in index order, so reports are
//! byte-identical across reruns *and* across worker thread counts.

use crate::scenario::Stack;
use ooh_core::{dirty_rate_pps, ConvergencePolicy, Decision, PolicyState, Technique};
use ooh_criu::{restore, verify, Criu, CriuConfig, SnapshotChain};
use ooh_guest::VmaKind;
use ooh_machine::PAGE_SIZE;
use ooh_sim::{Lane, SimCtx, SimRng};
use ooh_trace::Tracer;
use rayon::par_map_ordered;
use serde::Serialize;

/// Fleet-wide tunables. Everything per-VM derives from these plus the VM
/// index.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of VMs to schedule.
    pub n_vms: usize,
    /// Worker threads for the fan-out (output is invariant to this).
    pub threads: usize,
    /// Tracked region size per VM, in pages.
    pub pages_per_vm: u64,
    /// The convergence/throttling policy every VM runs under.
    pub policy: ConvergencePolicy,
    /// Seed feeding each VM's write schedule (forked per VM index).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            n_vms: 8,
            threads: rayon::default_threads(),
            pages_per_vm: 1024,
            policy: ConvergencePolicy {
                max_rounds: 8,
                stop_threshold_pages: 8,
                bandwidth_pps: 100_000,
                patience_rounds: 2,
                max_throttle_level: 3,
            },
            seed: 0x00A0_F1EE_7000_0001,
        }
    }
}

/// Dirtying behaviour class, derived from the VM index. The mix is the
/// point: a fleet is never uniformly well-behaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Profile {
    /// Shrinking working set: converges within a few rounds, must never
    /// be throttled.
    Cold,
    /// Steady writer under the copy bandwidth: neither converges nor
    /// throttles; the round cap ends it.
    Warm,
    /// Writer out-dirtying the channel: climbs the throttle ladder and
    /// stops (converged if throttling tamed it, bailed otherwise).
    Hot,
}

impl Profile {
    pub fn of_vm(vm: usize) -> Profile {
        match vm % 3 {
            0 => Profile::Cold,
            1 => Profile::Warm,
            _ => Profile::Hot,
        }
    }

    /// (initial pages written per round, think-time ns per round,
    /// does the working set halve each round).
    fn writer_params(self, pages: u64) -> (u64, u64, bool) {
        match self {
            Profile::Cold => ((pages / 32).max(4), 1_000_000, true),
            Profile::Warm => ((pages / 16).max(8), 2_000_000, false),
            Profile::Hot => ((pages / 4).max(16), 250_000, false),
        }
    }
}

/// vCPU counts cycle so the fleet covers the SMP paths too.
const VCPU_CYCLE: [u32; 3] = [1, 2, 4];

/// One pre-copy round as the fleet saw it.
#[derive(Debug, Clone, Serialize)]
pub struct FleetRound {
    pub round: u32,
    /// Pages this round's diff layer shipped.
    pub pages: u64,
    /// Guest-run virtual time since the previous layer (rate denominator).
    pub interval_ns: u64,
    /// Dirty rate in pages per virtual second.
    pub dirty_pps: u64,
    /// Policy decision token: "cont", "thrN", "stop", "bail".
    pub decision: String,
}

/// One VM's complete outcome.
#[derive(Debug, Clone, Serialize)]
pub struct VmReport {
    pub vm: usize,
    pub technique: String,
    pub profile: Profile,
    pub vcpus: u32,
    pub resident_pages: u64,
    pub rounds: Vec<FleetRound>,
    /// Did pre-copy converge (dirty set under threshold) vs. bail?
    pub converged: bool,
    /// Rounds that ran with a throttle in force.
    pub throttled_rounds: u32,
    /// Final throttle level when the loop ended.
    pub throttle_level: u32,
    /// Pages shipped across every chain layer (base + diffs + final).
    pub pages_shipped: u64,
    /// What shipping a full snapshot per layer would have cost.
    pub full_snapshot_pages: u64,
    /// Encoded chain size on the wire.
    pub chain_bytes: u64,
    /// FNV-1a fingerprint of the encoded chain — the byte-diffable
    /// artifact CI compares across reruns and thread counts.
    pub chain_fingerprint: u64,
    /// Pages byte-verified after restoring the chain against the
    /// full-snapshot oracle (== resident_pages on success).
    pub restore_verified_pages: u64,
    /// Virtual ns attributed per lane by the per-VM tracer, in
    /// [`Lane`] order (Tracked, Tracker, Kernel, Hypervisor).
    pub lane_ns: Vec<(String, u64)>,
    /// Total virtual time of the VM's whole scenario.
    pub total_ns: u64,
}

/// The fleet's merged, index-ordered outcome.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    pub n_vms: usize,
    pub pages_per_vm: u64,
    pub vms: Vec<VmReport>,
    pub converged_vms: usize,
    pub throttled_vms: usize,
    pub total_pages_shipped: u64,
    pub total_full_snapshot_pages: u64,
    /// `total_full_snapshot_pages / total_pages_shipped`, ×100 (integer so
    /// reports stay platform-stable).
    pub diff_savings_x100: u64,
}

/// Simulate one VM end to end. Pure function of `(config, vm)`: no host
/// clock, no thread identity, no global state.
///
/// The scenario: boot (vCPUs cycle 1/2/4), prefault a `pages_per_vm`
/// region, attach CRIU under the index-cycled technique, take the base
/// snapshot, then run pre-copy rounds — write a seeded batch, think, cut
/// a diff layer, ask the policy — until stop-and-copy. The chain is then
/// restored into a new process and verified against a full-dump oracle
/// taken at the same virtual instant.
pub fn simulate_vm(config: &FleetConfig, vm: usize) -> VmReport {
    let technique = Technique::ALL[vm % Technique::ALL.len()];
    let profile = Profile::of_vm(vm);
    let vcpus = VCPU_CYCLE[(vm / 3) % VCPU_CYCLE.len()];
    let pages = config.pages_per_vm;
    let mut rng = SimRng::new(config.seed ^ (vm as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

    let ctx = SimCtx::new();
    let tracer = Tracer::install(&ctx);
    let mut stack = Stack::boot_with_ctx_vcpus(64, ctx.clone(), vcpus);
    let region = stack
        .kernel
        .mmap(stack.pid, pages, true, VmaKind::Anon)
        .expect("fleet vm mmap");
    for (i, g) in region.iter_pages().enumerate().collect::<Vec<_>>() {
        stack
            .kernel
            .write_u64(&mut stack.hv, stack.pid, g, (i as u64) | 1, Lane::Tracked)
            .expect("prefault");
    }

    let mut criu = Criu::attach(
        &mut stack.hv,
        &mut stack.kernel,
        stack.pid,
        CriuConfig::new(technique),
    )
    .expect("criu attach");
    let (base, base_stats) = criu
        .full_dump(&mut stack.hv, &mut stack.kernel, stack.pid)
        .expect("base snapshot");
    let resident_pages = base_stats.pages_written;
    let mut chain = SnapshotChain::new(base);

    let (mut writes, think_ns, decays) = profile.writer_params(pages);
    let mut state = PolicyState::default();
    let mut rounds = Vec::new();
    let converged;
    let mut last_cut_ns = ctx.now_ns();
    loop {
        // The guest runs: one seeded batch of distinct page writes plus
        // think time. Throttle level L halves the batch L times (the
        // auto-converge contract: the controller decides, the driver slows
        // the writer).
        let w = (writes >> state.throttle_level.min(16)).max(1).min(pages);
        let start = rng.next_below(pages);
        for i in 0..w {
            let page = (start + i) % pages;
            stack
                .kernel
                .write_u64(
                    &mut stack.hv,
                    stack.pid,
                    region.start.add(page * PAGE_SIZE),
                    rng.next_u64() | 1,
                    Lane::Tracked,
                )
                .expect("fleet write");
        }
        ctx.advance(Lane::Tracked, think_ns);

        // Cut a diff layer: collect + ship this round's dirty set.
        let interval_ns = ctx.now_ns() - last_cut_ns;
        let (delta, stats) = criu
            .pre_dump(&mut stack.hv, &mut stack.kernel, stack.pid)
            .expect("pre dump");
        last_cut_ns = ctx.now_ns();
        chain.push_diff(delta);

        let decision = config.policy.decide(&mut state, stats.pages_written, interval_ns);
        rounds.push(FleetRound {
            round: rounds.len() as u32,
            pages: stats.pages_written,
            interval_ns,
            dirty_pps: dirty_rate_pps(stats.pages_written, interval_ns),
            decision: decision.token(),
        });
        match decision {
            Decision::Continue | Decision::Throttle { .. } => {
                if decays {
                    writes = (writes / 2).max(1);
                }
            }
            Decision::StopAndCopy { converged: c } => {
                converged = c;
                break;
            }
        }
    }

    // Stop-and-copy: the writer is paused; ship whatever it dirtied after
    // the last cut (nothing here — the decision came right after a cut, so
    // this layer is the empty downtime marker closing the chain).
    let (fin, _) = criu
        .final_dump(&mut stack.hv, &mut stack.kernel, stack.pid)
        .expect("final dump");
    chain.push_diff(fin);
    criu.detach(&mut stack.hv, &mut stack.kernel).expect("detach");
    chain.validate().expect("chain invariants");

    // Oracle: a full snapshot of the paused guest at the same virtual
    // instant. Restoring the chain must reproduce it byte for byte.
    let mut oracle_criu = Criu::attach(
        &mut stack.hv,
        &mut stack.kernel,
        stack.pid,
        CriuConfig::new(technique),
    )
    .expect("oracle attach");
    let (oracle, _) = oracle_criu
        .full_dump(&mut stack.hv, &mut stack.kernel, stack.pid)
        .expect("oracle snapshot");
    oracle_criu
        .detach(&mut stack.hv, &mut stack.kernel)
        .expect("oracle detach");

    let new_pid = restore(&mut stack.hv, &mut stack.kernel, &chain.flatten())
        .expect("chain restore");
    let restore_verified_pages =
        verify(&mut stack.hv, &mut stack.kernel, new_pid, &oracle).expect("oracle verify") as u64;
    assert_eq!(
        restore_verified_pages, resident_pages,
        "vm {vm}: chain restore diverged from the full-snapshot oracle"
    );

    let layers = chain.len() as u64;
    let wire = chain.encode();
    let lane_ns = [Lane::Tracked, Lane::Tracker, Lane::Kernel, Lane::Hypervisor]
        .iter()
        .map(|&l| (format!("{l:?}"), tracer.lane_attributed_ns(l)))
        .collect();
    VmReport {
        vm,
        technique: technique.name().to_string(),
        profile,
        vcpus,
        resident_pages,
        rounds,
        converged,
        throttled_rounds: state.throttled_rounds,
        throttle_level: state.throttle_level,
        pages_shipped: chain.pages_shipped(),
        full_snapshot_pages: layers * resident_pages,
        chain_bytes: wire.len() as u64,
        chain_fingerprint: fnv1a(wire.as_ref()),
        restore_verified_pages,
        lane_ns,
        total_ns: ctx.now_ns(),
    }
}

/// FNV-1a over a byte string (the workspace's standard fingerprint for
/// binary artifacts in golden tests).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Run the whole fleet: fan out across `config.threads` workers, merge in
/// VM-index order.
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    let ids: Vec<usize> = (0..config.n_vms).collect();
    let vms = par_map_ordered(&ids, config.threads, |&vm| simulate_vm(config, vm));

    let converged_vms = vms.iter().filter(|v| v.converged).count();
    let throttled_vms = vms.iter().filter(|v| v.throttled_rounds > 0).count();
    let total_pages_shipped: u64 = vms.iter().map(|v| v.pages_shipped).sum();
    let total_full_snapshot_pages: u64 = vms.iter().map(|v| v.full_snapshot_pages).sum();
    FleetReport {
        n_vms: config.n_vms,
        pages_per_vm: config.pages_per_vm,
        converged_vms,
        throttled_vms,
        diff_savings_x100: total_full_snapshot_pages * 100 / total_pages_shipped.max(1),
        total_pages_shipped,
        total_full_snapshot_pages,
        vms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig {
            n_vms: 6,
            threads: 2,
            pages_per_vm: 256,
            ..FleetConfig::default()
        }
    }

    /// A hot VM must climb the throttle ladder and reach stop-and-copy
    /// within the policy's round cap.
    #[test]
    fn hot_vm_throttles_then_stops_within_round_cap() {
        let cfg = small_config();
        let report = simulate_vm(&cfg, 2); // vm 2: Hot profile
        assert_eq!(report.profile, Profile::Hot);
        assert!(
            report.rounds.iter().any(|r| r.decision.starts_with("thr")),
            "hot writer must be throttled: {:?}",
            report.rounds
        );
        assert!(report.throttled_rounds > 0);
        assert!(report.throttle_level >= 1);
        assert!(
            report.rounds.len() as u32 <= cfg.policy.max_rounds,
            "stop-and-copy must land within the round cap"
        );
        let last = report.rounds.last().unwrap();
        assert!(
            last.decision == "stop" || last.decision == "bail",
            "the loop must end in stop-and-copy, got {:?}",
            last.decision
        );
        // The throttled writer's dirty rate was genuinely above bandwidth.
        assert!(report.rounds[0].dirty_pps > cfg.policy.bandwidth_pps);
    }

    /// A converging (cold) VM must never be throttled and must stop
    /// converged.
    #[test]
    fn converging_vm_never_throttles() {
        let cfg = small_config();
        let report = simulate_vm(&cfg, 0); // vm 0: Cold profile
        assert_eq!(report.profile, Profile::Cold);
        assert!(report.converged, "cold VM must converge");
        assert_eq!(report.throttled_rounds, 0);
        assert_eq!(report.throttle_level, 0);
        assert!(
            report.rounds.iter().all(|r| !r.decision.starts_with("thr")),
            "no round may throttle a converging writer: {:?}",
            report.rounds
        );
        assert_eq!(report.rounds.last().unwrap().decision, "stop");
    }

    /// A warm VM (steady, under bandwidth) neither converges nor
    /// throttles: the round cap ends it.
    #[test]
    fn warm_vm_is_ended_by_the_round_cap() {
        let cfg = small_config();
        let report = simulate_vm(&cfg, 1); // vm 1: Warm profile
        assert_eq!(report.profile, Profile::Warm);
        assert_eq!(report.throttled_rounds, 0);
        assert_eq!(report.rounds.len() as u32, cfg.policy.max_rounds);
        assert_eq!(report.rounds.last().unwrap().decision, "bail");
        assert!(!report.converged);
    }

    /// Every VM restores byte-identically against its oracle, and diff
    /// layers undercut repeated full snapshots.
    #[test]
    fn fleet_restores_and_ships_fewer_pages_than_full_snapshots() {
        let cfg = small_config();
        let report = run_fleet(&cfg);
        assert_eq!(report.vms.len(), cfg.n_vms);
        for v in &report.vms {
            assert_eq!(v.restore_verified_pages, v.resident_pages, "vm {}", v.vm);
            assert!(
                v.pages_shipped < v.full_snapshot_pages,
                "vm {}: chain must beat repeated fulls",
                v.vm
            );
        }
        assert!(report.total_pages_shipped < report.total_full_snapshot_pages);
        assert!(report.diff_savings_x100 > 100);
    }

    /// The fleet fan-out is thread-count invariant: 1 worker and 4 workers
    /// must produce identical reports.
    #[test]
    fn fleet_report_is_thread_count_invariant() {
        let mut cfg = small_config();
        cfg.threads = 1;
        let one = serde_json::to_string(&run_fleet(&cfg)).unwrap();
        cfg.threads = 4;
        let four = serde_json::to_string(&run_fleet(&cfg)).unwrap();
        assert_eq!(one, four);
    }

    /// Per-VM lane attribution is present and the Tracked lane dominated
    /// (the writer runs far longer than the tracker's dump phases for cold
    /// profiles).
    #[test]
    fn lane_attribution_covers_all_lanes() {
        let cfg = small_config();
        let report = simulate_vm(&cfg, 0);
        assert_eq!(report.lane_ns.len(), 4);
        let tracked = report.lane_ns[0].1;
        assert!(tracked > 0, "Tracked lane must accumulate time");
        let total: u64 = report.lane_ns.iter().map(|(_, n)| n).sum();
        assert!(total <= report.total_ns, "lanes cannot exceed the clock");
    }
}
