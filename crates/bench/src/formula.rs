//! The paper's analytical model (§VI-B, Formulas 1–4): estimate the
//! tracker-side cost E(C_x) and the Tracked-side disruption I(C_x, C_tked)
//! of each technique from *event counts × unit costs*, then validate the
//! estimates against the simulator's measured times (Table IV).
//!
//! The formulas, per technique:
//!
//! ```text
//! E(C_/proc) = E(clear_refs) + E(pagemap walk)
//! E(C_ufd)   = E(writeprotect) + E(register) + E(write-unprotect)
//! E(C_SPML)  = E(ring copy) + E(reverse mapping) + E(enable/disable PML)
//! E(C_EPML)  = E(ring copy) + E(enable/disable PML)
//!
//! I(C_/proc) = E(kernel PFH) + E(ctx switches)
//! I(C_ufd)   = E(user PFH) + E(ctx switches)
//! I(C_SPML)  = E(vmexits) + N·E(enable/disable hypercalls)
//! I(C_EPML)  = N·E(vmread/vmwrite)
//! ```

use ooh_core::Technique;
use ooh_sim::{CostModel, Event};
use serde::Serialize;

/// Source of event counts: any function Event → count (a [`TrackedRun`]'s
/// counters, or deltas of raw [`ooh_sim::EventCounters`]).
///
/// [`TrackedRun`]: crate::scenario::TrackedRun
pub type Counts<'a> = &'a dyn Fn(Event) -> u64;

/// An estimate with its inputs, for reporting.
#[derive(Debug, Clone, Serialize)]
pub struct Estimate {
    pub technique: Technique,
    /// Estimated tracker-side cost E(C_x), ns.
    pub tracker_ns: u64,
    /// Estimated Tracked-side disruption I(C_x, C_tked), ns.
    pub tracked_impact_ns: u64,
    /// The event terms that fed the estimate: (event, count, total ns).
    pub terms: Vec<(String, u64, u64)>,
}

fn term(counts: Counts<'_>, cost: &CostModel, ev: Event) -> (String, u64, u64) {
    let n = counts(ev);
    (ev.name().to_string(), n, n * cost.unit_ns(ev))
}

/// Variable-cost terms need the run's own charged time; we recover them
/// from counts × the *average* unit cost implied by the run, falling back
/// to the flat unit cost. For the reverse-mapping term the model uses the
/// calibrated size-dependent cost directly.
fn revmap_term(counts: Counts<'_>, cost: &CostModel, resident_pages: u64) -> (String, u64, u64) {
    let n = counts(Event::ReverseMapLookup);
    let ns = n * cost.reverse_map_lookup_ns(resident_pages);
    ("ReverseMapLookup".to_string(), n, ns)
}

/// Estimate E(C_x) (tracker side) per Formula 2.
pub fn estimate_tracker_ns(
    technique: Technique,
    counts: Counts<'_>,
    cost: &CostModel,
    resident_pages: u64,
) -> Estimate {
    let mut terms: Vec<(String, u64, u64)> = Vec::new();
    match technique {
        Technique::Proc => {
            terms.push(term(counts, cost, Event::ClearRefsPte));
            terms.push(term(counts, cost, Event::PagemapReadEntry));
            terms.push(term(counts, cost, Event::PagemapReadChunk));
            terms.push(term(counts, cost, Event::TlbFlush));
        }
        Technique::Ufd => {
            terms.push(term(counts, cost, Event::UfdRegister));
            terms.push(term(counts, cost, Event::UfdWriteProtectPage));
            terms.push(term(counts, cost, Event::UfdWriteUnprotectPage));
            terms.push(term(counts, cost, Event::PageFaultUser));
        }
        Technique::Spml => {
            terms.push(term(counts, cost, Event::RingBufferCopyEntry));
            terms.push(revmap_term(counts, cost, resident_pages));
            // The library's pagemap scan that builds its address index
            // (M16 — Table VI lists it among SPML's associated metrics).
            terms.push(term(counts, cost, Event::PagemapReadEntry));
            terms.push(term(counts, cost, Event::PagemapReadChunk));
            terms.push(term(counts, cost, Event::HypercallEnableLogging));
            terms.push(term(counts, cost, Event::HypercallDisableLogging));
            terms.push(term(counts, cost, Event::HypercallInitPml));
            terms.push(term(counts, cost, Event::HypercallDeactivatePml));
            terms.push(term(counts, cost, Event::IoctlInitPml));
            terms.push(term(counts, cost, Event::IoctlDeactivatePml));
        }
        Technique::Epml => {
            terms.push(term(counts, cost, Event::RingBufferCopyEntry));
            terms.push(term(counts, cost, Event::Vmread));
            terms.push(term(counts, cost, Event::Vmwrite));
            terms.push(term(counts, cost, Event::HypercallInitPmlShadow));
            terms.push(term(counts, cost, Event::HypercallDeactivateShadow));
            terms.push(term(counts, cost, Event::IoctlInitPml));
            terms.push(term(counts, cost, Event::IoctlDeactivatePml));
        }
    }
    let tracker_ns = terms.iter().map(|(_, _, ns)| ns).sum();
    Estimate {
        technique,
        tracker_ns,
        tracked_impact_ns: 0,
        terms,
    }
}

/// Estimate I(C_x, C_tked) (Tracked-side disruption) per Formula 4.
pub fn estimate_tracked_impact_ns(technique: Technique, counts: Counts<'_>, cost: &CostModel) -> Estimate {
    let mut terms: Vec<(String, u64, u64)> = Vec::new();
    match technique {
        Technique::Proc => {
            terms.push(term(counts, cost, Event::PageFaultKernel));
            terms.push(term(counts, cost, Event::ContextSwitch));
        }
        Technique::Ufd => {
            // The userspace fault handling itself is tracker work and is
            // accounted once, in E(C_ufd); the disruption left for I() is
            // the world-switch traffic around each fault.
            terms.push(term(counts, cost, Event::ContextSwitch));
            terms.push(term(counts, cost, Event::UfdEventDelivered));
        }
        Technique::Spml => {
            // Enable/disable hypercalls are accounted once, in E(C_SPML);
            // the residual disruption is the PML-full vmexit traffic.
            terms.push(term(counts, cost, Event::PmlBufferFullExit));
            terms.push(term(counts, cost, Event::VmEntry));
        }
        Technique::Epml => {
            terms.push(term(counts, cost, Event::Vmread));
            terms.push(term(counts, cost, Event::Vmwrite));
            terms.push(term(counts, cost, Event::PmlSelfIpi));
        }
    }
    let tracked_impact_ns = terms.iter().map(|(_, _, ns)| ns).sum();
    Estimate {
        technique,
        tracker_ns: 0,
        tracked_impact_ns,
        terms,
    }
}

/// Accuracy of an estimate vs a measurement, as the paper reports it
/// (percentage of the measured value the estimate reaches).
pub fn accuracy_pct(estimated: f64, measured: f64) -> f64 {
    if measured <= 0.0 {
        return f64::NAN;
    }
    100.0 * (1.0 - (estimated - measured).abs() / measured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_is_symmetric_around_perfect() {
        assert_eq!(accuracy_pct(100.0, 100.0), 100.0);
        assert!((accuracy_pct(96.0, 100.0) - 96.0).abs() < 1e-9);
        assert!((accuracy_pct(104.0, 100.0) - 96.0).abs() < 1e-9);
    }
}
