//! Boehm-GC experiment scenarios (Figures 5 and 6): an application running
//! with the collector in incremental mode, its mark phase driven by a
//! dirty-page tracking technique — or in stop-the-world mode for the
//! untracked baseline.
//!
//! For Phoenix applications the process hosts both the application's
//! mmapped working set and a GC-managed object graph the mutator keeps
//! churning (the paper's applications are *linked against* Boehm, so their
//! allocations live in its heap; our split preserves the load the tracker
//! sees — the whole address space — and the load the collector sees — the
//! heap graph).

use crate::scenario::Stack;
use ooh_core::{OohSession, Technique};
use ooh_gc::{BoehmGc, CycleStats, GcMode, WORD};
use ooh_guest::GuestError;
use ooh_machine::Gva;
use ooh_sim::Lane;
use ooh_workloads::{gcbench_config, gcbench_heap_pages, phoenix, SizeClass, WorkEnv};
use serde::Serialize;

/// Result of one GC-application run.
#[derive(Debug, Clone, Serialize)]
pub struct GcAppRun {
    pub app: String,
    pub size: &'static str,
    /// "none" for the stop-the-world baseline.
    pub technique: String,
    pub cycles: Vec<CycleStats>,
    pub total_ns: u64,
    pub gc_total_ns: u64,
}

/// GC collection cadence for Phoenix runs (workload quanta per cycle).
/// Tuned so runs do 2–8 cycles, the band the paper reports (2–23), keeping
/// per-cycle cost amortized over a realistic amount of mutator work.
const STEPS_PER_CYCLE: u32 = 48;
/// Live objects the mutator maintains.
const LIVE_OBJECTS: usize = 256;
/// Object payload size in words.
const OBJ_WORDS: u32 = 16;

fn make_gc(
    stack: &mut Stack,
    technique: Option<Technique>,
    heap_pages: u64,
) -> Result<BoehmGc, GuestError> {
    let mode = match technique {
        None => GcMode::StopTheWorld,
        Some(t) => {
            let mut session = OohSession::start(&mut stack.hv, &mut stack.kernel, stack.pid, t)?;
            // Boehm's integration caches SPML's reverse mapping after the
            // first cycle (paper footnote 2).
            session.enable_collection_cache();
            GcMode::Incremental {
                session,
                major_every: 64,
            }
        }
    };
    BoehmGc::new(&mut stack.hv, &mut stack.kernel, stack.pid, heap_pages, 512, mode)
}

/// Run GCBench under the given technique (None = STW baseline).
pub fn run_gcbench(
    size: SizeClass,
    technique: Option<Technique>,
) -> Result<GcAppRun, GuestError> {
    let mut stack = Stack::boot();
    let ctx = stack.ctx();
    let mut gc = make_gc(&mut stack, technique, gcbench_heap_pages(size))?;
    let bench = gcbench_config(size);
    let t0 = ctx.now_ns();
    {
        let mut env = WorkEnv::new(&mut stack.hv, &mut stack.kernel, stack.pid);
        bench.run(&mut env, &mut gc)?;
    }
    let total_ns = ctx.now_ns() - t0;
    let cycles = gc.stats.clone();
    gc.shutdown(&mut stack.hv, &mut stack.kernel)?;
    Ok(GcAppRun {
        app: "GCBench".to_string(),
        size: size.name(),
        technique: technique.map(|t| t.name().to_string()).unwrap_or("none".into()),
        gc_total_ns: cycles.iter().map(|c| c.total_ns).sum(),
        cycles,
        total_ns,
    })
}

/// Run a Phoenix app with a concurrently-mutated GC heap.
pub fn run_phoenix_gc(
    app: &str,
    size: SizeClass,
    technique: Option<Technique>,
) -> Result<GcAppRun, GuestError> {
    let mut stack = Stack::boot();
    let ctx = stack.ctx();
    let mut w = phoenix(app, size, 1234);
    {
        let mut env = WorkEnv::new(&mut stack.hv, &mut stack.kernel, stack.pid);
        w.setup(&mut env)?;
    }
    let mut gc = make_gc(&mut stack, technique, 2048)?;

    // The mutator's live set: a ring of objects, each pointing to the next.
    let root = gc.add_root_slot();
    let mut objs: Vec<Gva> = Vec::with_capacity(LIVE_OBJECTS);
    for _ in 0..LIVE_OBJECTS {
        let o = gc
            .alloc(&mut stack.hv, &mut stack.kernel, OBJ_WORDS)?
            .expect("heap sized for the live set");
        objs.push(o);
    }
    for i in 0..LIVE_OBJECTS {
        let next = objs[(i + 1) % LIVE_OBJECTS];
        stack
            .kernel
            .write_u64(&mut stack.hv, stack.pid, objs[i], next.raw(), Lane::Tracked)?;
    }
    stack
        .kernel
        .write_u64(&mut stack.hv, stack.pid, root, objs[0].raw(), Lane::Tracked)?;

    let t0 = ctx.now_ns();
    let mut step = 0u32;
    let mut mutate_at = 0usize;
    loop {
        let done = {
            let mut env = WorkEnv::new(&mut stack.hv, &mut stack.kernel, stack.pid);
            let done = w.step(&mut env)?;
            env.timer_tick()?;
            done
        };
        step += 1;
        if step.is_multiple_of(STEPS_PER_CYCLE) || done {
            // Mutator activity: update a few live objects, allocate garbage.
            for k in 0..8 {
                let o = objs[(mutate_at + k * 31) % LIVE_OBJECTS];
                stack.kernel.write_u64(
                    &mut stack.hv,
                    stack.pid,
                    o.add(8 * WORD),
                    step as u64,
                    Lane::Tracked,
                )?;
            }
            mutate_at += 1;
            for _ in 0..16 {
                let _ = gc.alloc(&mut stack.hv, &mut stack.kernel, OBJ_WORDS)?;
            }
            gc.collect(&mut stack.hv, &mut stack.kernel)?;
        }
        if done {
            break;
        }
    }
    let total_ns = ctx.now_ns() - t0;
    let cycles = gc.stats.clone();
    gc.shutdown(&mut stack.hv, &mut stack.kernel)?;
    Ok(GcAppRun {
        app: app.to_string(),
        size: size.name(),
        technique: technique.map(|t| t.name().to_string()).unwrap_or("none".into()),
        gc_total_ns: cycles.iter().map(|c| c.total_ns).sum(),
        cycles,
        total_ns,
    })
}
