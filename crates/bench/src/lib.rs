//! # ooh-bench — the harness that regenerates every table and figure
//!
//! One binary per experiment (see DESIGN.md §4 for the index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — ufd & /proc overhead on Tracked/Tracker, size sweep |
//! | `table3` | Table III — workload configurations + measured memory |
//! | `table4` | Table IV — formula validation (measured vs estimated) |
//! | `table5` | Table V — unit costs of metrics M1–M18 |
//! | `table6` | Table VI — per-technique metric analysis |
//! | `fig3`   | Figure 3 — SPML collection-phase breakdown |
//! | `fig4`   | Figure 4 — micro-benchmark slowdown, all techniques |
//! | `fig5`   | Figure 5 — Boehm GC cycle times per technique |
//! | `fig6`   | Figure 6 — Boehm overhead on Tracked |
//! | `fig7`   | Figure 7 — CRIU memory-write (MW) time |
//! | `fig8`   | Figure 8 — CRIU checkpoint time with MD highlighted |
//! | `fig9`   | Figure 9 — CRIU overhead on Tracked |
//! | `fig10_11` | Figures 10 & 11 — multi-VM scalability |
//!
//! Criterion microbenches for the hot primitives live in `benches/`.

#![forbid(unsafe_code)]

pub mod criu_scenarios;
pub mod fleet;
pub mod formula;
pub mod gc_scenarios;
pub mod report;
pub mod scenario;

pub use formula::{accuracy_pct, estimate_tracked_impact_ns, estimate_tracker_ns, Estimate};
pub use scenario::{
    counter, resident_bytes, run_baseline, run_tracked, run_tracked_on, RoundInfo, Stack,
    TrackedRun,
};
