//! Output conventions shared by every table/figure binary: a rendered text
//! table on stdout plus one JSON line per row (prefixed `#json `), so
//! results are both human-readable and machine-checkable.

// stdout IS this module's job — it renders the bench binaries' results.
#![allow(clippy::print_stdout)]

use serde::Serialize;

/// Print the experiment header.
pub fn header(id: &str, title: &str) {
    println!("== {id}: {title} ==");
}

/// Print one machine-readable row.
pub fn json_row<T: Serialize>(row: &T) {
    println!(
        "#json {}",
        serde_json::to_string(row).expect("serializable row")
    );
}

/// Print a scaling note once per experiment.
pub fn scaling_note(note: &str) {
    println!("note: {note}");
}

/// ns → milliseconds for display.
pub fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// ns → seconds for display.
pub fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}
