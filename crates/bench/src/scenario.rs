//! The experiment runner: boot a stack, run a workload untracked (the
//! paper's "ideal execution time") or under a tracking technique with
//! periodic collection rounds, and report the timing decomposition.

use ooh_core::{DirtySet, OohSession, Technique};
use ooh_guest::{GuestError, GuestKernel, Pid};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{MachineConfig, PAGE_SIZE};
use ooh_sim::{Event, SimCtx};
use ooh_workloads::{WorkEnv, Workload};
use serde::Serialize;

/// A booted single-VM stack.
pub struct Stack {
    pub hv: Hypervisor,
    pub kernel: GuestKernel,
    pub pid: Pid,
}

impl Stack {
    /// Boot with EPML-capable hardware (the BOCHS-analog machine) — every
    /// technique runs there, so comparisons share one substrate.
    pub fn boot() -> Self {
        Self::boot_with_ram(8 * 1024) // 8 GiB host default
    }

    /// Boot with `host_mib` of host RAM (guest gets half).
    pub fn boot_with_ram(host_mib: u64) -> Self {
        Self::boot_with_ctx(host_mib, SimCtx::new())
    }

    /// Boot against a caller-provided context — the hook the trace mode
    /// uses to install an `ooh_trace::Tracer` *before* the first charge, so
    /// the conservation invariant covers boot time too.
    pub fn boot_with_ctx(host_mib: u64, ctx: SimCtx) -> Self {
        Self::boot_with_ctx_vcpus(host_mib, ctx, 1)
    }

    /// Boot an SMP stack: the VM gets `n_vcpus` vCPUs and the guest kernel
    /// schedules across all of them (processes are placed round-robin).
    pub fn boot_with_vcpus(host_mib: u64, n_vcpus: u32) -> Self {
        Self::boot_with_ctx_vcpus(host_mib, SimCtx::new(), n_vcpus)
    }

    /// The fully-general boot: host size, context, and vCPU count.
    pub fn boot_with_ctx_vcpus(host_mib: u64, ctx: SimCtx, n_vcpus: u32) -> Self {
        let n_vcpus = n_vcpus.max(1);
        let mut hv = Hypervisor::new(MachineConfig::epml(host_mib * 1024 * 1024), ctx);
        let vm = hv
            .create_vm(host_mib / 2 * 1024 * 1024, n_vcpus)
            .expect("VM creation");
        let mut kernel = GuestKernel::with_vcpus(vm, n_vcpus);
        let pid = kernel.spawn(&mut hv).expect("spawn");
        Stack { hv, kernel, pid }
    }

    pub fn ctx(&self) -> SimCtx {
        self.hv.ctx.clone()
    }

    pub fn env(&mut self) -> WorkEnv<'_> {
        WorkEnv::new(&mut self.hv, &mut self.kernel, self.pid)
    }
}

/// One collection round's record.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RoundInfo {
    pub round: u32,
    pub dirty_pages: u64,
    pub collect_ns: u64,
}

/// Result of a tracked run.
#[derive(Debug, Clone, Serialize)]
pub struct TrackedRun {
    pub technique: Technique,
    /// Technique initialization time (phase 1). Reported separately, as
    /// the paper does (M3/M9/M10 are one-time and size-independent); the
    /// `*_done_ns` windows below start after init.
    pub init_ns: u64,
    /// Virtual time from post-init until the workload finished.
    pub tracked_done_ns: u64,
    /// Virtual time until the tracker's final collection finished.
    pub tracker_done_ns: u64,
    pub rounds: Vec<RoundInfo>,
    /// Total distinct pages reported dirty across rounds.
    pub union_dirty_pages: u64,
    /// Guest context switches during the run (the paper's N).
    pub context_switches: u64,
    /// Selected event counts for the formula validation.
    pub counters: Vec<(String, u64)>,
}

/// Run `workload` to completion with no tracking: the ideal time.
/// Setup (input generation) is excluded, matching the tracked runs' window.
pub fn run_baseline(workload: &mut dyn Workload) -> Result<u64, GuestError> {
    let mut stack = Stack::boot();
    let ctx = stack.ctx();
    let mut env = stack.env();
    workload.setup(&mut env)?;
    let t0 = ctx.now_ns();
    while !workload.step(&mut env)? {
        env.timer_tick()?;
    }
    Ok(ctx.now_ns() - t0)
}

/// Run `workload` under `technique`, collecting every `collect_every`
/// workload quanta (0 = collect only once at the end).
pub fn run_tracked(
    technique: Technique,
    workload: &mut dyn Workload,
    collect_every: u32,
) -> Result<TrackedRun, GuestError> {
    let mut stack = Stack::boot();
    run_tracked_on(&mut stack, technique, workload, collect_every)
}

/// As [`run_tracked`], against a caller-provided stack (multi-VM studies).
pub fn run_tracked_on(
    stack: &mut Stack,
    technique: Technique,
    workload: &mut dyn Workload,
    collect_every: u32,
) -> Result<TrackedRun, GuestError> {
    let ctx = stack.ctx();

    // Setup runs untracked (input generation is not part of tracking).
    {
        let mut env = stack.env();
        workload.setup(&mut env)?;
    }

    let t_init0 = ctx.now_ns();
    let mut session = OohSession::start(&mut stack.hv, &mut stack.kernel, stack.pid, technique)?;
    let init_ns = ctx.now_ns() - t_init0;
    let t0 = ctx.now_ns();

    let mut rounds = Vec::new();
    let mut union = DirtySet::new();
    let mut steps_since_collect = 0u32;
    let mut done = false;
    while !done {
        {
            let mut env = stack.env();
            done = workload.step(&mut env)?;
            env.timer_tick()?;
        }
        steps_since_collect += 1;
        if collect_every > 0 && steps_since_collect >= collect_every && !done {
            let c0 = ctx.now_ns();
            let dirty = session.fetch_dirty(&mut stack.hv, &mut stack.kernel)?;
            rounds.push(RoundInfo {
                round: rounds.len() as u32,
                dirty_pages: dirty.len() as u64,
                collect_ns: ctx.now_ns() - c0,
            });
            union.merge(&dirty);
            steps_since_collect = 0;
        }
    }
    let tracked_done_ns = ctx.now_ns() - t0;

    // Final collection (the tracker drains what is left).
    let c0 = ctx.now_ns();
    let dirty = session.fetch_dirty(&mut stack.hv, &mut stack.kernel)?;
    rounds.push(RoundInfo {
        round: rounds.len() as u32,
        dirty_pages: dirty.len() as u64,
        collect_ns: ctx.now_ns() - c0,
    });
    union.merge(&dirty);
    session.stop(&mut stack.hv, &mut stack.kernel)?;
    let tracker_done_ns = ctx.now_ns() - t0;

    let counters = ctx
        .counters()
        .snapshot()
        .into_iter()
        .map(|(e, n)| (e.name().to_string(), n))
        .collect();

    Ok(TrackedRun {
        technique,
        init_ns,
        tracked_done_ns,
        tracker_done_ns,
        rounds,
        union_dirty_pages: union.len() as u64,
        context_switches: stack.kernel.context_switches,
        counters,
    })
}

/// Convenience: count of a named event in a [`TrackedRun`].
pub fn counter(run: &TrackedRun, event: Event) -> u64 {
    run.counters
        .iter()
        .find(|(n, _)| n == event.name())
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Bytes of guest memory a process has resident (reporting helper).
pub fn resident_bytes(stack: &Stack) -> u64 {
    stack
        .kernel
        .process(stack.pid)
        .map(|p| p.resident_pages() * PAGE_SIZE)
        .unwrap_or(0)
}
