//! Dirty-page sets: what every tracking technique ultimately produces.
//!
//! Backed by the word-packed [`DirtyBitmap`] from `ooh-machine` rather than
//! a `BTreeSet<u64>`: inserts set one bit, merge/difference are wordwise
//! OR/ANDNOT, and `retain_within` clips bitmap words to range bounds —
//! O(words) instead of O(pages × ranges). Iteration order (ascending page
//! number) and the public API are unchanged, so every virtual-clock
//! observable downstream stays byte-identical; only the simulator's own
//! wall-clock speed changes.

use ooh_machine::{DirtyBitmap, Gva, GvaRange};

/// A set of dirty guest-virtual pages (stored as page numbers, ordered).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    pages: DirtyBitmap,
}

impl DirtySet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert the page containing `gva`. Returns true if newly inserted.
    pub fn insert(&mut self, gva: Gva) -> bool {
        self.pages.insert(gva.page())
    }

    pub fn insert_page(&mut self, page: u64) -> bool {
        self.pages.insert(page)
    }

    pub fn contains(&self, gva: Gva) -> bool {
        self.pages.contains(gva.page())
    }

    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Page-base GVAs, ascending.
    pub fn iter(&self) -> impl Iterator<Item = Gva> + '_ {
        self.pages.pages().map(Gva::from_page)
    }

    /// Raw page numbers, ascending.
    pub fn pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.pages.pages()
    }

    /// Union with another set — O(words of `other`).
    pub fn merge(&mut self, other: &DirtySet) {
        self.pages.merge(&other.pages);
    }

    /// Keep only pages inside `ranges` (the tracker's registered region) —
    /// O(bitmap words overlapping the ranges).
    pub fn retain_within(&mut self, ranges: &[GvaRange]) {
        self.pages.retain_within(ranges);
    }

    /// Set difference: pages in self but not in `other` — O(words of self).
    pub fn difference(&self, other: &DirtySet) -> DirtySet {
        DirtySet {
            pages: self.pages.difference(&other.pages),
        }
    }

    /// The underlying word-packed bitmap.
    pub fn bitmap(&self) -> &DirtyBitmap {
        &self.pages
    }

    /// Consume into the underlying bitmap.
    pub fn into_bitmap(self) -> DirtyBitmap {
        self.pages
    }
}

impl FromIterator<Gva> for DirtySet {
    fn from_iter<I: IntoIterator<Item = Gva>>(iter: I) -> Self {
        let mut s = DirtySet::new();
        for g in iter {
            s.insert(g);
        }
        s
    }
}

impl From<DirtyBitmap> for DirtySet {
    fn from(pages: DirtyBitmap) -> Self {
        DirtySet { pages }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooh_machine::PAGE_SIZE;

    #[test]
    fn insert_dedupes_within_page() {
        let mut s = DirtySet::new();
        assert!(s.insert(Gva(0x1000)));
        assert!(!s.insert(Gva(0x1fff)));
        assert!(s.insert(Gva(0x2000)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Gva(0x1234)));
        assert!(!s.contains(Gva(0x3000)));
    }

    #[test]
    fn iter_is_sorted_page_bases() {
        let s: DirtySet = [Gva(0x5123), Gva(0x1fff), Gva(0x3000)]
            .into_iter()
            .collect();
        let v: Vec<Gva> = s.iter().collect();
        assert_eq!(v, vec![Gva(0x1000), Gva(0x3000), Gva(0x5000)]);
    }

    #[test]
    fn retain_within_filters() {
        let mut s: DirtySet = (0..10u64).map(|i| Gva(i * PAGE_SIZE)).collect();
        let keep = [GvaRange::new(Gva(2 * PAGE_SIZE), 3)];
        s.retain_within(&keep);
        assert_eq!(s.len(), 3);
        assert!(s.contains(Gva(2 * PAGE_SIZE)));
        assert!(s.contains(Gva(4 * PAGE_SIZE)));
        assert!(!s.contains(Gva(5 * PAGE_SIZE)));
    }

    proptest::proptest! {
        /// DirtySet behaves exactly like a BTreeSet of page numbers under
        /// arbitrary insert/merge/difference/retain sequences.
        #[test]
        fn matches_reference_set(
            a in proptest::collection::vec(0u64..128, 0..60),
            b in proptest::collection::vec(0u64..128, 0..60),
            keep_lo in 0u64..64,
            keep_pages in 1u64..64,
        ) {
            use std::collections::BTreeSet;
            let mk = |xs: &[u64]| -> (DirtySet, BTreeSet<u64>) {
                let ds: DirtySet = xs.iter().map(|&p| Gva::from_page(p)).collect();
                let rf: BTreeSet<u64> = xs.iter().copied().collect();
                (ds, rf)
            };
            let (mut da, mut ra) = mk(&a);
            let (db, rb) = mk(&b);
            proptest::prop_assert_eq!(da.len(), ra.len());

            // merge
            da.merge(&db);
            ra.extend(rb.iter().copied());
            proptest::prop_assert_eq!(da.pages().collect::<Vec<_>>(), ra.iter().copied().collect::<Vec<_>>());

            // difference
            let diff = da.difference(&db);
            let rdiff: BTreeSet<u64> = ra.difference(&rb).copied().collect();
            proptest::prop_assert_eq!(diff.pages().collect::<Vec<_>>(), rdiff.iter().copied().collect::<Vec<_>>());

            // retain_within one window
            let window = [GvaRange::new(Gva::from_page(keep_lo), keep_pages)];
            da.retain_within(&window);
            ra.retain(|&p| p >= keep_lo && p < keep_lo + keep_pages);
            proptest::prop_assert_eq!(da.pages().collect::<Vec<_>>(), ra.iter().copied().collect::<Vec<_>>());
        }
    }

    proptest::proptest! {
        /// Sparse and wide page numbers (full 52-bit space): the chunked
        /// bitmap must handle far-apart pages without memory blowup.
        #[test]
        fn sparse_wide_pages(
            pages in proptest::collection::vec(0u64..(1 << 40), 0..40),
        ) {
            use std::collections::BTreeSet;
            let ds: DirtySet = pages.iter().map(|&p| Gva::from_page(p)).collect();
            let rf: BTreeSet<u64> = pages.iter().copied().collect();
            proptest::prop_assert_eq!(ds.len(), rf.len());
            proptest::prop_assert_eq!(
                ds.pages().collect::<Vec<_>>(),
                rf.iter().copied().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn merge_and_difference() {
        let a: DirtySet = [Gva(0x1000), Gva(0x2000)].into_iter().collect();
        let b: DirtySet = [Gva(0x2000), Gva(0x3000)].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.len(), 3);
        let d = m.difference(&a);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![Gva(0x3000)]);
    }
}
