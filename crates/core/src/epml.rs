//! The EPML tracker: the paper's hardware-extended PML.
//!
//! The page-walk circuit logs **GVAs** straight into the guest-level buffer;
//! the OoH module drains them into the per-process ring on self-IPIs and
//! schedule-outs. Collection is therefore just a ring drain — no reverse
//! mapping, no hypercalls, no hypervisor on the critical path. The only
//! memory-size-dependent cost left is the ring copy itself (M18), which is
//! why EPML scales where everything else does not.

use crate::dirtyset::DirtySet;
use crate::spml::{conservative_full_scan, drain_ring, ensure_module, ring_dropped, with_module};
use crate::tracker::{DirtyPageTracker, TrackEnv, Technique};
use ooh_guest::{GuestError, OohMode};
use ooh_machine::{Gva, GvaRange};

#[derive(Debug, Default)]
pub struct EpmlTracker {
    registered: Vec<GvaRange>,
    pub raw_entries_last_round: u64,
    last_dropped: u64,
    /// Rounds that had to fall back to a conservative full scan.
    pub overflow_fallbacks: u64,
}

impl EpmlTracker {
    pub fn new() -> Self {
        Self::default()
    }
}

impl DirtyPageTracker for EpmlTracker {
    fn technique(&self) -> Technique {
        Technique::Epml
    }

    fn init(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        ensure_module(env, OohMode::Epml)?;
        let pid = env.pid;
        with_module(env, |m, env| m.track(env.kernel, env.hv, pid))?;
        self.registered = env
            .kernel
            .vmas(env.pid)?
            .iter()
            .filter(|v| v.writable)
            .map(|v| v.range)
            .collect();
        Ok(())
    }

    fn begin_round(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        with_module(env, |m, env| m.flush(env.kernel, env.hv))?;
        drain_ring(env)?;
        Ok(())
    }

    fn collect(&mut self, env: &mut TrackEnv<'_>) -> Result<DirtySet, GuestError> {
        // Refresh the registered region (see SpmlTracker::collect).
        self.registered = env
            .kernel
            .vmas(env.pid)?
            .iter()
            .filter(|v| v.writable)
            .map(|v| v.range)
            .collect();
        with_module(env, |m, env| m.flush(env.kernel, env.hv))?;
        let raw = drain_ring(env)?;
        self.raw_entries_last_round = raw.len() as u64;
        let dropped = ring_dropped(env)?;
        if dropped != self.last_dropped {
            self.last_dropped = dropped;
            self.overflow_fallbacks += 1;
            return conservative_full_scan(env, &self.registered);
        }
        let mut set: DirtySet = raw.into_iter().map(Gva).collect();
        set.retain_within(&self.registered);
        Ok(set)
    }

    fn finish(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        with_module(env, |m, env| m.untrack(env.kernel, env.hv))
    }
}
