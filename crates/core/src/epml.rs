//! The EPML tracker: the paper's hardware-extended PML.
//!
//! The page-walk circuit logs **GVAs** straight into the guest-level buffer;
//! the OoH module drains them into the per-process ring on self-IPIs and
//! schedule-outs. Collection is therefore just a ring drain — no reverse
//! mapping, no hypercalls, no hypervisor on the critical path. The only
//! memory-size-dependent cost left is the ring copy itself (M18), which is
//! why EPML scales where everything else does not.

use crate::dirtyset::DirtySet;
use crate::spml::{conservative_full_scan, drain_ring, ensure_module, ring_dropped, with_module};
use crate::tracker::{DirtyPageTracker, TrackEnv, Technique};
use ooh_guest::{GuestError, OohMode};
use ooh_machine::{Gva, GvaRange};

#[derive(Debug, Default)]
pub struct EpmlTracker {
    registered: Vec<GvaRange>,
    pub raw_entries_last_round: u64,
    last_dropped: u64,
    /// Rounds that had to fall back to a conservative full scan.
    pub overflow_fallbacks: u64,
}

impl EpmlTracker {
    pub fn new() -> Self {
        Self::default()
    }
}

impl DirtyPageTracker for EpmlTracker {
    fn technique(&self) -> Technique {
        Technique::Epml
    }

    fn init(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        ensure_module(env, OohMode::Epml)?;
        let pid = env.pid;
        with_module(env, |m, env| m.track(env.kernel, env.hv, pid))?;
        self.registered = env
            .kernel
            .vmas(env.pid)?
            .iter()
            .filter(|v| v.writable)
            .map(|v| v.range)
            .collect();
        Ok(())
    }

    fn begin_round(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        with_module(env, |m, env| m.flush(env.kernel, env.hv))?;
        drain_ring(env)?;
        Ok(())
    }

    fn collect(&mut self, env: &mut TrackEnv<'_>) -> Result<DirtySet, GuestError> {
        // Refresh the registered region (see SpmlTracker::collect).
        self.registered = env
            .kernel
            .vmas(env.pid)?
            .iter()
            .filter(|v| v.writable)
            .map(|v| v.range)
            .collect();
        with_module(env, |m, env| m.flush(env.kernel, env.hv))?;
        let raw = drain_ring(env)?;
        self.raw_entries_last_round = raw.len() as u64;
        let dropped = ring_dropped(env)?;
        if dropped != self.last_dropped {
            self.last_dropped = dropped;
            self.overflow_fallbacks += 1;
            // Entries were lost; the pre-overflow raw count describes a
            // round that never completed and must not leak into the next.
            self.raw_entries_last_round = 0;
            return conservative_full_scan(env, &self.registered);
        }
        let mut set: DirtySet = raw.into_iter().map(Gva).collect();
        set.retain_within(&self.registered);
        Ok(set)
    }

    fn finish(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        with_module(env, |m, env| m.untrack(env.kernel, env.hv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::DirtyPageTracker;
    use ooh_guest::{GuestKernel, OohModule, VmaKind};
    use ooh_hypervisor::Hypervisor;
    use ooh_machine::{MachineConfig, PAGE_SIZE};
    use ooh_sim::{Lane, SimCtx};

    /// EPML twin of the SPML overflow regression test: the fallback must
    /// reset `raw_entries_last_round` instead of leaking the pre-overflow
    /// count of a round that never completed.
    #[test]
    fn overflow_fallback_resets_raw_count() {
        let mut hv = Hypervisor::new(MachineConfig::epml(64 * 1024 * PAGE_SIZE), SimCtx::new());
        let vm = hv.create_vm(16 * 1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        let pages = 600u64;
        let range = kernel.mmap(pid, pages, true, VmaKind::Anon).unwrap();

        let module = OohModule::load_with(&mut kernel, &mut hv, OohMode::Epml, 1).unwrap();
        kernel.ooh = Some(module);

        let mut tracker = EpmlTracker::new();
        let mut env = crate::tracker::TrackEnv::new(&mut hv, &mut kernel, pid);
        tracker.init(&mut env).unwrap();
        tracker.begin_round(&mut env).unwrap();
        for gva in range.iter_pages().collect::<Vec<_>>() {
            env.kernel
                .write_u64(env.hv, pid, gva, 7, Lane::Tracked)
                .unwrap();
        }
        let set = tracker.collect(&mut env).unwrap();

        assert_eq!(tracker.overflow_fallbacks, 1, "the tiny ring must overflow");
        assert_eq!(
            tracker.raw_entries_last_round, 0,
            "pre-overflow raw count must not leak out of the failed round"
        );
        for gva in range.iter_pages() {
            assert!(set.contains(gva));
        }
    }
}
