//! Cross-tracker runtime invariant checker (`debug-invariants` builds only).
//!
//! The load-bearing claim of the whole library is that the four techniques
//! are *interchangeable*: for the same write pattern they must report the
//! same dirty set, round after round. The unit tests spot-check this for a
//! handful of patterns; this module packages the check as a reusable harness
//! so deeper builds (CI with `--features debug-invariants`, fuzzing drivers,
//! future soak tests) can throw arbitrary write schedules at all four
//! trackers and fail loudly on the first divergence.
//!
//! Alongside the agreement check, running any scenario under
//! `debug-invariants` also exercises the machine-level shadow invariants
//! (PML one-log-per-dirty-transition, SPSC ring structure, no stale-TLB
//! logging suppression) on every simulated instruction, because the
//! `ooh-machine/debug-invariants` feature is enabled transitively.

use crate::{DirtySet, OohSession, Technique};
use ooh_guest::{GuestError, GuestKernel, Pid, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{GvaRange, MachineConfig, PAGE_SIZE};
use ooh_sim::{Lane, SimCtx};

/// One booted EPML-capable stack with a single tracked process.
struct Rig {
    hv: Hypervisor,
    kernel: GuestKernel,
    pid: Pid,
    region: GvaRange,
}

/// Boot a fresh stack with `pages` pre-faulted pages (mlockall-style, like
/// the paper's Listing 1). Each technique gets its own rig so a stateful bug
/// in one cannot mask a divergence in another.
fn boot(pages: u64) -> Result<Rig, GuestError> {
    let mut hv = Hypervisor::new(MachineConfig::epml(64 * 1024 * PAGE_SIZE), SimCtx::new());
    let vm = hv.create_vm(16 * 1024 * PAGE_SIZE, 1)?;
    let mut kernel = GuestKernel::new(vm);
    let pid = kernel.spawn(&mut hv)?;
    let region = kernel.mmap(pid, pages, true, VmaKind::Anon)?;
    for g in region.iter_pages().collect::<Vec<_>>() {
        kernel.write_u64(&mut hv, pid, g, 0, Lane::Tracked)?;
    }
    Ok(Rig {
        hv,
        kernel,
        pid,
        region,
    })
}

/// Run `rounds` (each a list of page indices into the tracked region to
/// write) through one technique, returning the dirty set it reported for
/// each round.
fn run_schedule(
    technique: Technique,
    pages: u64,
    rounds: &[Vec<u64>],
) -> Result<Vec<DirtySet>, GuestError> {
    let mut rig = boot(pages)?;
    let mut session = OohSession::start(&mut rig.hv, &mut rig.kernel, rig.pid, technique)?;
    let mut reported = Vec::with_capacity(rounds.len());
    for round in rounds {
        for &i in round {
            assert!(
                i < pages,
                "invariant-checker misuse: page index {i} outside the {pages}-page region"
            );
            rig.kernel.write_u64(
                &mut rig.hv,
                rig.pid,
                rig.region.start.add(i * PAGE_SIZE),
                i + 1,
                Lane::Tracked,
            )?;
        }
        reported.push(session.fetch_dirty(&mut rig.hv, &mut rig.kernel)?);
    }
    session.stop(&mut rig.hv, &mut rig.kernel)?;
    Ok(reported)
}

/// Drive all four techniques through the identical write schedule and assert
/// they report identical dirty sets for every round. Panics with a
/// round-and-technique diagnostic on the first divergence; returns the
/// agreed per-round sets on success so callers can make further assertions.
///
/// `rounds[r]` lists the page indices (relative to a `pages`-page tracked
/// region) written during round `r`; duplicates are fine and model repeated
/// writes to a hot page within one round.
pub fn check_cross_tracker_agreement(
    pages: u64,
    rounds: &[Vec<u64>],
) -> Result<Vec<DirtySet>, GuestError> {
    let baseline_technique = Technique::ALL[0];
    let baseline = run_schedule(baseline_technique, pages, rounds)?;
    for &technique in &Technique::ALL[1..] {
        let sets = run_schedule(technique, pages, rounds)?;
        for (round, (got, want)) in sets.iter().zip(baseline.iter()).enumerate() {
            assert_eq!(
                got,
                want,
                "cross-tracker invariant violated: round {round} dirty set from {} \
                 disagrees with {} — extra pages {:?}, missing pages {:?}",
                technique.name(),
                baseline_technique.name(),
                got.difference(want).pages().collect::<Vec<_>>(),
                want.difference(got).pages().collect::<Vec<_>>(),
            );
        }
    }
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_holds_on_a_mixed_schedule() {
        let rounds = vec![
            vec![0, 3, 7, 7, 15],
            vec![],
            vec![3, 4],
            vec![15, 14, 13, 12, 11, 10, 9, 8],
        ];
        let sets = check_cross_tracker_agreement(16, &rounds).unwrap();
        assert_eq!(sets.len(), rounds.len());
        assert_eq!(sets[0].len(), 4, "round 0: duplicates collapse to one page");
        assert!(sets[1].is_empty(), "round 1: nothing written");
        assert_eq!(sets[3].len(), 8);
    }

    #[test]
    fn agreement_holds_past_pml_buffer_capacity() {
        // >512 writes in one round forces a PML buffer-full episode for the
        // PML techniques; agreement must survive the fallback path.
        let rounds = vec![(0..600).collect::<Vec<u64>>()];
        let sets = check_cross_tracker_agreement(600, &rounds).unwrap();
        assert_eq!(sets[0].len(), 600);
    }

    #[test]
    #[should_panic(expected = "invariant-checker misuse")]
    fn out_of_region_index_is_rejected() {
        let _ = check_cross_tracker_agreement(4, &[vec![4]]);
    }
}
