//! # ooh-core — the OoH userspace library
//!
//! The paper's primary contribution, as a library: a single
//! [`DirtyPageTracker`] abstraction with four interchangeable
//! implementations —
//!
//! | technique | mechanism | logs | bottleneck |
//! |---|---|---|---|
//! | [`ProcTracker`] | soft-dirty bits (`clear_refs`/`pagemap`) | PTE bits | pagemap scan (M16) + write faults (M5) |
//! | [`UfdTracker`] | userfaultfd write-protect | fault events | userspace fault handling (M6) |
//! | [`SpmlTracker`] | hypervisor-emulated PML (OoH software design) | GPAs | reverse mapping (M17) + hypercalls |
//! | [`EpmlTracker`] | hardware-extended PML (OoH hardware design) | GVAs | nothing size-dependent but the ring copy (M18) |
//!
//! plus [`OohSession`], the application-facing facade, and the
//! [`revmap`] module implementing SPML's GPA→GVA resolution.

#![forbid(unsafe_code)]

pub mod dirtyset;
pub mod epml;
#[cfg(feature = "debug-invariants")]
pub mod invariants;
pub mod model_port;
pub mod policy;
pub mod proc_tracker;
pub mod revmap;
pub mod session;
pub mod spml;
pub mod tracker;
pub mod ufd_tracker;

pub use dirtyset::DirtySet;
pub use epml::EpmlTracker;
pub use model_port::{
    technique_from_token, technique_token, ModelError, ModelPort, ModelSession, ModelViolation,
    Mutation, Scenario, Step,
};
pub use policy::{dirty_rate_pps, ConvergencePolicy, Decision, PolicyState};
pub use proc_tracker::ProcTracker;
pub use session::OohSession;
pub use spml::SpmlTracker;
pub use tracker::{make_tracker, DirtyPageTracker, TrackEnv, Technique};
pub use ufd_tracker::UfdTracker;

#[cfg(test)]
mod tests {
    use super::*;
    use ooh_guest::{GuestKernel, Pid, VmaKind};
    use ooh_hypervisor::Hypervisor;
    use ooh_machine::{Gva, GvaRange, MachineConfig, PAGE_SIZE};
    use ooh_sim::{Lane, SimCtx};

    struct Rig {
        hv: Hypervisor,
        kernel: GuestKernel,
        pid: Pid,
        region: GvaRange,
    }

    /// Boot an EPML-capable stack with one process owning `pages`
    /// pre-faulted pages (mlockall-style, like the paper's Listing 1).
    fn boot(pages: u64) -> Rig {
        let mut hv = Hypervisor::new(
            MachineConfig::epml(64 * 1024 * PAGE_SIZE),
            SimCtx::new(),
        );
        let vm = hv.create_vm(16 * 1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        let region = kernel.mmap(pid, pages, true, VmaKind::Anon).unwrap();
        for g in region.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 0, Lane::Tracked).unwrap();
        }
        Rig {
            hv,
            kernel,
            pid,
            region,
        }
    }

    fn write_pages(rig: &mut Rig, pages: &[u64]) {
        for &i in pages {
            rig.kernel
                .write_u64(
                    &mut rig.hv,
                    rig.pid,
                    rig.region.start.add(i * PAGE_SIZE),
                    i + 1,
                    Lane::Tracked,
                )
                .unwrap();
        }
    }

    fn expected(rig: &Rig, pages: &[u64]) -> DirtySet {
        pages
            .iter()
            .map(|&i| rig.region.start.add(i * PAGE_SIZE))
            .collect()
    }

    /// The core correctness property: every technique reports exactly the
    /// written pages.
    #[test]
    fn all_techniques_report_the_same_dirty_set() {
        let dirtied = [1u64, 5, 6, 13, 31];
        for technique in Technique::ALL {
            let mut rig = boot(32);
            let mut session =
                OohSession::start(&mut rig.hv, &mut rig.kernel, rig.pid, technique).unwrap();
            write_pages(&mut rig, &dirtied);
            let set = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
            assert_eq!(
                set,
                expected(&rig, &dirtied),
                "technique {} reported a wrong dirty set",
                technique.name()
            );
            session.stop(&mut rig.hv, &mut rig.kernel).unwrap();
        }
    }

    /// Rounds are independent: a page dirtied in round 1 must not reappear
    /// in round 2 unless rewritten.
    #[test]
    fn rounds_are_disjoint_for_all_techniques() {
        for technique in Technique::ALL {
            let mut rig = boot(16);
            let mut session =
                OohSession::start(&mut rig.hv, &mut rig.kernel, rig.pid, technique).unwrap();

            write_pages(&mut rig, &[2, 3]);
            let r1 = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
            assert_eq!(r1, expected(&rig, &[2, 3]), "{}", technique.name());

            write_pages(&mut rig, &[3, 9]);
            let r2 = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
            assert_eq!(r2, expected(&rig, &[3, 9]), "{}", technique.name());

            // Nothing written: empty round.
            let r3 = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
            assert!(r3.is_empty(), "{}: {:?}", technique.name(), r3);
            session.stop(&mut rig.hv, &mut rig.kernel).unwrap();
        }
    }

    /// Preemptions (scheduler activity) during the round must not lose or
    /// duplicate pages — this exercises the SPML hypercall hooks and the
    /// EPML vmwrite hooks.
    #[test]
    fn preemption_during_round_preserves_the_set() {
        for technique in Technique::ALL {
            let mut rig = boot(16);
            let mut session =
                OohSession::start(&mut rig.hv, &mut rig.kernel, rig.pid, technique).unwrap();
            write_pages(&mut rig, &[0, 1]);
            rig.kernel.preemption_round_trip(&mut rig.hv).unwrap();
            write_pages(&mut rig, &[1, 2]);
            rig.kernel.preemption_round_trip(&mut rig.hv).unwrap();
            write_pages(&mut rig, &[8]);
            let set = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
            assert_eq!(
                set,
                expected(&rig, &[0, 1, 2, 8]),
                "technique {}",
                technique.name()
            );
            session.stop(&mut rig.hv, &mut rig.kernel).unwrap();
        }
    }

    /// Reads must never be reported as dirty.
    #[test]
    fn reads_are_not_dirty() {
        for technique in Technique::ALL {
            let mut rig = boot(8);
            let mut session =
                OohSession::start(&mut rig.hv, &mut rig.kernel, rig.pid, technique).unwrap();
            for i in 0..8u64 {
                rig.kernel
                    .read_u64(
                        &mut rig.hv,
                        rig.pid,
                        rig.region.start.add(i * PAGE_SIZE),
                        Lane::Tracked,
                    )
                    .unwrap();
            }
            write_pages(&mut rig, &[4]);
            let set = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
            assert_eq!(set, expected(&rig, &[4]), "{}", technique.name());
            session.stop(&mut rig.hv, &mut rig.kernel).unwrap();
        }
    }

    /// A buffer-full episode (>512 dirty pages in one quantum) must not lose
    /// pages under the PML techniques.
    #[test]
    fn pml_buffer_overflow_loses_nothing() {
        for technique in [Technique::Spml, Technique::Epml] {
            let mut rig = boot(600);
            let mut session =
                OohSession::start(&mut rig.hv, &mut rig.kernel, rig.pid, technique).unwrap();
            let all: Vec<u64> = (0..600).collect();
            write_pages(&mut rig, &all);
            let set = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
            assert_eq!(set.len(), 600, "technique {}", technique.name());
            session.stop(&mut rig.hv, &mut rig.kernel).unwrap();
        }
    }

    /// The cost ordering the whole paper is about: on a write-heavy round,
    /// Tracker-side time is SPML > /proc > EPML, and EPML's Tracked
    /// disruption is the smallest.
    #[test]
    fn cost_ordering_matches_the_paper() {
        let mut total = std::collections::BTreeMap::new();
        for technique in Technique::ALL {
            let mut rig = boot(256);
            let mut session =
                OohSession::start(&mut rig.hv, &mut rig.kernel, rig.pid, technique).unwrap();
            // Per-round cost only: init/teardown are one-time and — as the
            // paper notes for EPML's M10 — do not affect scalability.
            let t0 = rig.hv.ctx.now_ns();
            let all: Vec<u64> = (0..256).collect();
            write_pages(&mut rig, &all);
            let set = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
            assert_eq!(set.len(), 256);
            total.insert(technique, rig.hv.ctx.now_ns() - t0);
            session.stop(&mut rig.hv, &mut rig.kernel).unwrap();
        }
        let spml = total[&Technique::Spml];
        let proc = total[&Technique::Proc];
        let epml = total[&Technique::Epml];
        let ufd = total[&Technique::Ufd];
        assert!(spml > proc, "SPML ({spml}) must cost more than /proc ({proc})");
        assert!(proc > epml, "/proc ({proc}) must cost more than EPML ({epml})");
        assert!(ufd > epml, "ufd ({ufd}) must cost more than EPML ({epml})");
    }

    /// EPML must be unavailable on stock hardware.
    #[test]
    fn epml_requires_the_hardware_extension() {
        let mut hv = Hypervisor::new(
            MachineConfig::stock(16 * 1024 * PAGE_SIZE),
            SimCtx::new(),
        );
        let vm = hv.create_vm(4096 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
        let r = OohSession::start(&mut hv, &mut kernel, pid, Technique::Epml);
        assert!(r.is_err(), "EPML on stock hardware must fail");
    }

    /// SPML's ring carries GPAs that reverse-map correctly even after the
    /// tracked region grows mid-session.
    #[test]
    fn spml_handles_region_growth() {
        let mut rig = boot(8);
        let mut session =
            OohSession::start(&mut rig.hv, &mut rig.kernel, rig.pid, Technique::Spml).unwrap();
        write_pages(&mut rig, &[1]);
        let r1 = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
        assert_eq!(r1.len(), 1);
        // Fault in a brand-new page mid-session: demand-zero write.
        let extra = rig.kernel.mmap(rig.pid, 2, true, VmaKind::Anon).unwrap();
        rig.kernel
            .write_u64(&mut rig.hv, rig.pid, extra.start, 42, Lane::Tracked)
            .unwrap();
        let r2 = session.fetch_dirty(&mut rig.hv, &mut rig.kernel).unwrap();
        // The new page is dirty but lies outside the region registered at
        // init — SPML filters to the registered VMAs, like the paper's
        // per-process ring registration.
        assert!(r2.is_empty() || r2.contains(Gva(extra.start.raw())));
        session.stop(&mut rig.hv, &mut rig.kernel).unwrap();
    }
}
