//! Schedulable step surface for the `ooh-model` interleaving explorer.
//!
//! The simulator's protocols (SPML hypercalls, EPML guest-buffer appends and
//! self-IPIs, ring drains, tracker collects, TLB invalidations) are logically
//! concurrent even though the simulation itself is single-threaded: the
//! hardware-posted IPI sits queued while the guest keeps executing, the
//! scheduler can preempt the tracked process between any two writes, and the
//! tracker's collect races the producer side of the ring. This module
//! reifies each atomic protocol action as a [`Step`] value and packages a
//! booted stack as a [`ModelSession`] implementing [`ModelPort`], so the
//! `ooh-model` crate can enumerate interleavings exhaustively. Normal
//! (non-model) runs never construct these types and are unaffected.

use crate::dirtyset::DirtySet;
use crate::session::OohSession;
use crate::tracker::Technique;
use ooh_guest::{GuestError, GuestKernel, Pid, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{Gva, GvaRange, MachineConfig, Pte, StateHasher, PAGE_SIZE};
use ooh_sim::{Event, Lane, SimCtx};
use std::collections::BTreeSet;

/// One schedulable atomic action. The explorer enumerates these in `Ord`
/// order, so the variant order here fixes the (deterministic) search order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Step {
    /// The tracked process writes one u64 into target page `k` of its
    /// region (a guest write burst of length one — the finest grain at
    /// which the hardware interleaves with the protocols).
    WriteTracked(u64),
    /// The untracked background process writes into target page `k` of its
    /// own region. Under EPML both regions start at the same GVA, so a
    /// misattribution bug shows up as a ghost page in the tracked set.
    WriteOther(u64),
    /// Scheduler preempts the tracked process (runs the sched-out hook:
    /// SPML DisableLogging hypercall / EPML control vmwrite + drain).
    SchedOut,
    /// Scheduler resumes the tracked process (sched-in hook).
    SchedIn,
    /// Deliver the oldest pending virtual interrupt (the EPML buffer-full
    /// self-IPI). Posting and delivery are separate events on real
    /// hardware; this step is the delivery half.
    DeliverIpi,
    /// Guest executes a full TLB flush (e.g. an unrelated munmap elsewhere).
    FlushTlb,
    /// Tracker ends the round: collect + compare against the oracle.
    FetchDirty,
}

impl Step {
    /// Stable token used in serialized schedule files.
    pub fn token(self) -> &'static str {
        match self {
            Step::WriteTracked(_) => "write-tracked",
            Step::WriteOther(_) => "write-other",
            Step::SchedOut => "sched-out",
            Step::SchedIn => "sched-in",
            Step::DeliverIpi => "deliver-ipi",
            Step::FlushTlb => "flush-tlb",
            Step::FetchDirty => "fetch-dirty",
        }
    }

    /// The step's argument, if its token carries one.
    pub fn arg(self) -> Option<u64> {
        match self {
            Step::WriteTracked(k) | Step::WriteOther(k) => Some(k),
            _ => None,
        }
    }

    /// Inverse of [`Self::token`]/[`Self::arg`] for schedule-file parsing.
    pub fn from_parts(token: &str, arg: Option<u64>) -> Option<Step> {
        match (token, arg) {
            ("write-tracked", Some(k)) => Some(Step::WriteTracked(k)),
            ("write-other", Some(k)) => Some(Step::WriteOther(k)),
            ("sched-out", None) => Some(Step::SchedOut),
            ("sched-in", None) => Some(Step::SchedIn),
            ("deliver-ipi", None) => Some(Step::DeliverIpi),
            ("flush-tlb", None) => Some(Step::FlushTlb),
            ("fetch-dirty", None) => Some(Step::FetchDirty),
            _ => None,
        }
    }
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.arg() {
            Some(k) => write!(f, "{} {}", self.token(), k),
            None => f.write_str(self.token()),
        }
    }
}

/// Seeded protocol bugs for the explorer's self-validation: each must be
/// caught by a safety property with a short counterexample, proving the
/// model actually has teeth. Production code paths never enable these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mutation {
    None,
    /// The posted buffer-full self-IPI is silently discarded instead of
    /// delivered (lost interrupt): the buffer never drains and subsequent
    /// full-path writes lose their log entries.
    DropIpi,
    /// The drain resets the hardware index before copying entries out.
    ClearBeforeDrain,
    /// The sched-out hook forgets to disable logging, so the next process's
    /// writes keep logging into the tracked buffer.
    SkipDisableLogging,
}

impl Mutation {
    pub const ALL: [Mutation; 4] = [
        Mutation::None,
        Mutation::DropIpi,
        Mutation::ClearBeforeDrain,
        Mutation::SkipDisableLogging,
    ];

    pub fn token(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::DropIpi => "drop-ipi",
            Mutation::ClearBeforeDrain => "clear-before-drain",
            Mutation::SkipDisableLogging => "skip-disable-logging",
        }
    }

    pub fn from_token(s: &str) -> Option<Mutation> {
        Mutation::ALL.into_iter().find(|m| m.token() == s)
    }
}

/// Initial-state shape explored. Scenarios bound the branching factor so
/// bounded-exhaustive search stays tractable while still covering the
/// protocol's interesting regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scenario {
    /// A handful of pages, empty log buffers: exercises the common path
    /// (transitions, drains, preemption hooks).
    Small,
    /// The EPML guest buffer is pre-filled to one-slot-from-full, so the
    /// very next tracked write triggers the buffer-full self-IPI: exercises
    /// the post/deliver/drain race the protocol exists to get right.
    NearFull,
}

impl Scenario {
    pub fn token(self) -> &'static str {
        match self {
            Scenario::Small => "small",
            Scenario::NearFull => "near-full",
        }
    }

    pub fn from_token(s: &str) -> Option<Scenario> {
        match s {
            "small" => Some(Scenario::Small),
            "near-full" => Some(Scenario::NearFull),
            _ => None,
        }
    }

    /// Search depth at which the default exhaustive run bounds this
    /// scenario (chosen so a full sweep stays in CI budget).
    pub fn default_depth(self) -> usize {
        match self {
            Scenario::Small => 5,
            Scenario::NearFull => 4,
        }
    }

    fn params(self) -> ScenarioParams {
        match self {
            Scenario::Small => ScenarioParams {
                tracked_pages: 4,
                tracked_targets: 3,
                other_pages: 2,
                other_targets: 2,
                warm_writes: 0,
            },
            Scenario::NearFull => ScenarioParams {
                // 511 warm pages fill the EPML guest buffer to one slot
                // from full; the two remaining pages are the live targets.
                tracked_pages: 513,
                tracked_targets: 2,
                other_pages: 2,
                other_targets: 1,
                warm_writes: 511,
            },
        }
    }
}

struct ScenarioParams {
    tracked_pages: u64,
    tracked_targets: u64,
    other_pages: u64,
    other_targets: u64,
    warm_writes: u64,
}

/// Stable lowercase token for a technique in schedule files / CLI args
/// (`Technique::name` uses display forms like "/proc" that are awkward in
/// file formats).
pub fn technique_token(t: Technique) -> &'static str {
    match t {
        Technique::Proc => "soft-dirty",
        Technique::Ufd => "ufd",
        Technique::Spml => "spml",
        Technique::Epml => "epml",
    }
}

pub fn technique_from_token(s: &str) -> Option<Technique> {
    Technique::ALL.into_iter().find(|&t| technique_token(t) == s)
}

/// Errors from constructing a [`ModelSession`] (as opposed to
/// [`ModelViolation`]s found while exploring one).
#[derive(Debug)]
pub enum ModelError {
    /// The simulator stack failed to boot.
    Guest(GuestError),
    /// The requested mutation lives in the OoH guest module, which the
    /// requested technique does not load.
    UnsupportedMutation {
        mutation: Mutation,
        technique: Technique,
    },
}

impl From<GuestError> for ModelError {
    fn from(e: GuestError) -> Self {
        ModelError::Guest(e)
    }
}

impl From<ooh_machine::MachineError> for ModelError {
    fn from(e: ooh_machine::MachineError) -> Self {
        ModelError::Guest(GuestError::Machine(e))
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Guest(e) => write!(f, "boot failed: {e}"),
            ModelError::UnsupportedMutation {
                mutation,
                technique,
            } => write!(
                f,
                "mutation {} needs a module-based technique, not {}",
                mutation.token(),
                technique.name()
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// A safety-property violation found on some interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelViolation {
    /// P1: a page the oracle knows was written is missing from the
    /// reported dirty set (page numbers, i.e. GVA >> 12).
    LostPage { page: u64 },
    /// P1: the reported set contains a page the oracle never saw written
    /// (and the ring reported no drops that would justify a superset).
    ExtraPage { page: u64 },
    /// P3: the shared ring's queue depth exceeded its capacity, or entries
    /// vanished without the dropped counter accounting for them.
    RingOverflow { detail: String },
    /// P4: a page with a clear PTE dirty bit still has a TLB entry carrying
    /// a set guest-dirty flag — the cached entry would suppress re-logging.
    StaleTlb { page: u64 },
    /// P5: a per-lane virtual clock moved backwards.
    ClockRegression { lane: &'static str },
    /// P2 (and the machine's other shadow invariants): a `debug-invariants`
    /// assertion fired inside the simulator during the step.
    InvariantPanic { message: String },
    /// The simulator returned an error the model did not expect (treated as
    /// a failure of the path, with the error preserved verbatim).
    Internal { message: String },
}

impl std::fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelViolation::LostPage { page } => {
                write!(f, "lost dirty page {page:#x} (written but not reported)")
            }
            ModelViolation::ExtraPage { page } => {
                write!(f, "ghost dirty page {page:#x} (reported but never written)")
            }
            ModelViolation::RingOverflow { detail } => {
                write!(f, "ring overflow accounting broken: {detail}")
            }
            ModelViolation::StaleTlb { page } => write!(
                f,
                "stale TLB entry for page {page:#x} still suppresses logging after its \
                 dirty bit was cleared"
            ),
            ModelViolation::ClockRegression { lane } => {
                write!(f, "virtual clock for lane {lane} moved backwards")
            }
            ModelViolation::InvariantPanic { message } => {
                write!(f, "simulator invariant panic: {message}")
            }
            ModelViolation::Internal { message } => {
                write!(f, "unexpected simulator error: {message}")
            }
        }
    }
}

/// What the explorer needs from a system under test: enumerate the enabled
/// steps, apply one, hash the state, and advise on step independence.
/// [`ModelSession`] is the production implementation over the real
/// simulator stack; the trait exists so the explorer can be exercised
/// against toy systems in its own unit tests.
pub trait ModelPort {
    /// Steps enabled in the current state, in deterministic (sorted) order.
    fn enabled_steps(&mut self) -> Vec<Step>;

    /// Apply one step, checking every safety property it can affect.
    fn apply(&mut self, step: Step) -> Result<(), ModelViolation>;

    /// Hash of the protocol-relevant state (clocks and statistics
    /// excluded), used for interleaving deduplication.
    fn digest(&mut self) -> u64;

    /// Conservative independence: `true` only if applying `a` then `b`
    /// provably reaches the same state as `b` then `a` AND neither enables
    /// or disables the other. Used for sleep-set pruning; when unsure,
    /// return `false` (sound, merely slower).
    fn commutes(&mut self, a: Step, b: Step) -> bool;
}

/// A booted simulator stack wrapped as a model-checkable system: one
/// tracked process, one background process, a live [`OohSession`], and a
/// ground-truth oracle of written pages.
pub struct ModelSession {
    hv: Hypervisor,
    kernel: GuestKernel,
    tracked: Pid,
    other: Pid,
    tracked_region: GvaRange,
    other_region: GvaRange,
    session: OohSession,
    technique: Technique,
    mutation: Mutation,
    /// Page numbers (GVA >> 12) written into the tracked region since the
    /// last fetch — the ground truth every collect is compared against.
    oracle: BTreeSet<u64>,
    /// Monotonically increasing write payload, so repeated writes to one
    /// page stay distinguishable in memory (not part of the digest).
    seq: u64,
    /// Per-lane clock readings from after the previous step (P5).
    lane_ns: [u64; 4],
    /// Ring drop count at the last fetch, to tell fresh drops from old.
    dropped_at_last_fetch: u64,
    tracked_targets: u64,
    other_targets: u64,
    warm_writes: u64,
}

impl ModelSession {
    /// Boot a fresh stack in `scenario` shape with `mutation` armed.
    ///
    /// Mutations that live in the OoH guest module
    /// ([`Mutation::ClearBeforeDrain`], [`Mutation::SkipDisableLogging`])
    /// require a module-based technique (SPML/EPML); booting them under
    /// soft-dirty or ufd is an error.
    pub fn boot(
        technique: Technique,
        scenario: Scenario,
        mutation: Mutation,
    ) -> Result<ModelSession, ModelError> {
        Self::boot_with_vcpus(technique, scenario, mutation, 1)
    }

    /// [`Self::boot`] on an SMP guest: the VM gets `vcpus` vCPUs, and both
    /// model processes are pinned to vCPU 0 so the schedule alphabet keeps
    /// its single-core meaning (SchedOut really hands the core over). The
    /// extra cores exercise the cross-vCPU shootdown and per-vCPU shadow
    /// paths, and every per-vCPU property (P4, digest) ranges over all of
    /// them.
    pub fn boot_with_vcpus(
        technique: Technique,
        scenario: Scenario,
        mutation: Mutation,
        vcpus: u32,
    ) -> Result<ModelSession, ModelError> {
        let vcpus = vcpus.max(1);
        let p = scenario.params();
        let mut hv = Hypervisor::new(MachineConfig::epml(64 * 1024 * PAGE_SIZE), SimCtx::new());
        let vm = hv.create_vm(16 * 1024 * PAGE_SIZE, vcpus)?;
        let mut kernel = GuestKernel::with_vcpus(vm, vcpus);

        let tracked = kernel.spawn_on(&mut hv, 0)?;
        let other = kernel.spawn_on(&mut hv, 0)?;
        let tracked_region = kernel.mmap(tracked, p.tracked_pages, true, VmaKind::Anon)?;
        let other_region = kernel.mmap(other, p.other_pages, true, VmaKind::Anon)?;

        // Pre-fault both regions (mlockall-style, like the paper's
        // Listing 1) so model steps never take the demand-zero path.
        kernel.context_switch(&mut hv, tracked)?;
        for g in tracked_region.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, tracked, g, 0, Lane::Tracked)?;
        }
        kernel.context_switch(&mut hv, other)?;
        for g in other_region.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, other, g, 0, Lane::Tracked)?;
        }

        // Clear the background process's accumulated PTE dirty bits: the
        // session start only resets the *tracked* process, and the ghost-
        // page property needs the other process's writes to be fresh 0→1
        // transitions.
        for g in other_region.iter_pages().collect::<Vec<_>>() {
            if let Some((slot, pte)) = kernel.pte_lookup(&mut hv, other, g)? {
                if pte.is_dirty() {
                    kernel.kernel_phys_write(&mut hv, slot, pte.without(Pte::DIRTY).0)?;
                    for v in 0..kernel.n_vcpus() {
                        hv.note_guest_pte_dirty_cleared(kernel.vm, v, g);
                    }
                }
            }
        }
        kernel.shootdown_all(&mut hv);

        kernel.context_switch(&mut hv, tracked)?;
        let session = OohSession::start(&mut hv, &mut kernel, tracked, technique)?;

        match mutation {
            Mutation::None | Mutation::DropIpi => {}
            Mutation::ClearBeforeDrain | Mutation::SkipDisableLogging => {
                let module = kernel
                    .ooh
                    .as_mut()
                    .ok_or(ModelError::UnsupportedMutation {
                        mutation,
                        technique,
                    })?;
                match mutation {
                    Mutation::ClearBeforeDrain => module.mutate_clear_before_drain = true,
                    Mutation::SkipDisableLogging => module.mutate_skip_disable_logging = true,
                    _ => unreachable!(),
                }
            }
        }

        let mut this = ModelSession {
            hv,
            kernel,
            tracked,
            other,
            tracked_region,
            other_region,
            session,
            technique,
            mutation,
            oracle: BTreeSet::new(),
            seq: 0,
            lane_ns: [0; 4],
            dropped_at_last_fetch: 0,
            tracked_targets: p.tracked_targets,
            other_targets: p.other_targets,
            warm_writes: p.warm_writes,
        };

        // Warm phase: fill the log buffer to one slot from full. Uses the
        // no-IRQ write path so a buffer-full IPI posted here (there should
        // be none with exactly PML_ENTRIES - 1 writes) would stay pending
        // rather than being delivered behind the model's back.
        for i in 0..this.warm_writes {
            let gva = this.tracked_region.start.add(i * PAGE_SIZE);
            this.seq += 1;
            let seq = this.seq;
            this.kernel
                .write_u64_no_irq(&mut this.hv, this.tracked, gva, seq, Lane::Tracked)?;
            this.oracle.insert(gva.page());
        }

        this.lane_ns = this.read_lane_ns();
        this.dropped_at_last_fetch = this.ring_dropped()?;
        Ok(this)
    }

    pub fn technique(&self) -> Technique {
        self.technique
    }

    pub fn mutation(&self) -> Mutation {
        self.mutation
    }

    fn read_lane_ns(&self) -> [u64; 4] {
        let clock = self.hv.ctx.clock();
        [
            clock.lane_ns(Lane::Tracked),
            clock.lane_ns(Lane::Tracker),
            clock.lane_ns(Lane::Kernel),
            clock.lane_ns(Lane::Hypervisor),
        ]
    }

    fn ring_dropped(&self) -> Result<u64, ooh_machine::MachineError> {
        match self.kernel.ooh.as_ref() {
            Some(module) => self.hv.ring_dropped(module.ring()),
            None => Ok(0),
        }
    }

    /// Is the EPML guest buffer full with its wake-up IPI still pending?
    /// Real hardware delivers a posted interrupt at the next instruction
    /// boundary, so the guest cannot slip more writes in between; the model
    /// mirrors that by gating guest-execution steps until delivery (or
    /// until the fault-injection mutation discards the vector).
    fn execution_gated(&self) -> bool {
        self.hv
            .guest_pml_free_slots(self.kernel.vm, self.kernel.vcpu)
            == Some(0)
            && self.hv.pending_vector_count(self.kernel.vm, self.kernel.vcpu) > 0
    }

    fn tracked_target_gva(&self, k: u64) -> Gva {
        self.tracked_region
            .start
            .add((self.warm_writes + k) * PAGE_SIZE)
    }

    fn other_target_gva(&self, k: u64) -> Gva {
        self.other_region.start.add(k * PAGE_SIZE)
    }

    /// Free slots in whichever log buffer the active technique appends to
    /// (`None` when the technique has no buffer).
    fn active_buffer_free_slots(&self) -> Option<u64> {
        match self.technique {
            Technique::Epml => self
                .hv
                .guest_pml_free_slots(self.kernel.vm, self.kernel.vcpu),
            Technique::Spml => self.hv.hyp_pml_free_slots(self.kernel.vm, self.kernel.vcpu),
            Technique::Proc | Technique::Ufd => None,
        }
    }

    /// P1 at fetch time: the reported set must equal the oracle exactly —
    /// except that a ring overflow since the last fetch entitles the
    /// tracker to a conservative superset (never a subset).
    fn check_fetch(&mut self, reported: &DirtySet) -> Result<(), ModelViolation> {
        let dropped = self
            .ring_dropped()
            .map_err(|e| ModelViolation::Internal { message: e.to_string() })?;
        let superset_ok = dropped > self.dropped_at_last_fetch;
        self.dropped_at_last_fetch = dropped;

        let got: BTreeSet<u64> = reported.pages().collect();
        for &page in &self.oracle {
            if !got.contains(&page) {
                return Err(ModelViolation::LostPage { page });
            }
        }
        if !superset_ok {
            for &page in &got {
                if !self.oracle.contains(&page) {
                    return Err(ModelViolation::ExtraPage { page });
                }
            }
        }
        self.oracle.clear();
        Ok(())
    }

    /// Properties checked after every step: P3 (ring accounting), P5 (lane
    /// clock monotonicity), and — in `debug-invariants` builds — P4 (no
    /// logging-suppressing stale TLB entry).
    fn check_after_step(&mut self) -> Result<(), ModelViolation> {
        // P3: queue depth bounded by capacity; drops accounted by the
        // overflow event counter (a silent drop breaks the tracker's
        // "fall back to full rescan" contract).
        if let Some(module) = self.kernel.ooh.as_ref() {
            let ring = module.ring();
            let len = self
                .hv
                .ring_len(ring)
                .map_err(|e| ModelViolation::Internal { message: e.to_string() })?;
            if len > ring.capacity() {
                return Err(ModelViolation::RingOverflow {
                    detail: format!("queue depth {len} exceeds capacity {}", ring.capacity()),
                });
            }
            let dropped = self
                .hv
                .ring_dropped(ring)
                .map_err(|e| ModelViolation::Internal { message: e.to_string() })?;
            let counted = self.hv.ctx.counters().get(Event::RingBufferOverflow);
            if dropped != counted {
                return Err(ModelViolation::RingOverflow {
                    detail: format!(
                        "header says {dropped} dropped but {counted} overflow events charged"
                    ),
                });
            }
        }

        // P5: virtual time never runs backwards on any lane.
        let now = self.read_lane_ns();
        for (i, lane) in Lane::ALL.iter().enumerate() {
            if now[i] < self.lane_ns[i] {
                return Err(ModelViolation::ClockRegression { lane: lane.label() });
            }
        }
        self.lane_ns = now;

        self.check_step_invariants()
    }

    /// P4, `debug-invariants` builds only: a tracked-region page whose PTE
    /// dirty bit is clear must not retain a TLB entry with the guest-dirty
    /// flag set — such an entry lets the fast path skip the page-walk that
    /// would log the next write, losing the page for the following round.
    /// Checked on *every* vCPU: a dirty-bit clear is only correct if the
    /// shootdown reached all cores, so a stale entry anywhere violates P4.
    fn check_step_invariants(&mut self) -> Result<(), ModelViolation> {
        if cfg!(feature = "debug-invariants") {
            if self.technique != Technique::Epml {
                return Ok(());
            }
            let cr3 = self
                .kernel
                .process(self.tracked)
                .map_err(|e| ModelViolation::Internal { message: e.to_string() })?
                .cr3;
            for gva in self.tracked_region.iter_pages().collect::<Vec<_>>() {
                let Some((_, pte)) = self
                    .kernel
                    .pte_lookup(&mut self.hv, self.tracked, gva)
                    .map_err(|e| ModelViolation::Internal { message: e.to_string() })?
                else {
                    continue;
                };
                if !pte.is_present() || pte.is_dirty() {
                    continue;
                }
                for vc in &self.hv.vm(self.kernel.vm).vcpus {
                    if let Some(entry) = vc.tlb.peek(cr3, gva) {
                        if entry.guest_dirty {
                            return Err(ModelViolation::StaleTlb { page: gva.page() });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl ModelPort for ModelSession {
    fn enabled_steps(&mut self) -> Vec<Step> {
        let mut steps = Vec::new();
        let gated = self.execution_gated();
        if !gated {
            if self.kernel.current() == Some(self.tracked) {
                for k in 0..self.tracked_targets {
                    steps.push(Step::WriteTracked(k));
                }
                steps.push(Step::SchedOut);
            } else {
                for k in 0..self.other_targets {
                    steps.push(Step::WriteOther(k));
                }
                steps.push(Step::SchedIn);
            }
        }
        if self.hv.pending_vector_count(self.kernel.vm, self.kernel.vcpu) > 0 {
            steps.push(Step::DeliverIpi);
        }
        steps.push(Step::FlushTlb);
        steps.push(Step::FetchDirty);
        steps.sort();
        steps
    }

    fn apply(&mut self, step: Step) -> Result<(), ModelViolation> {
        let internal = |e: GuestError| ModelViolation::Internal { message: e.to_string() };
        match step {
            Step::WriteTracked(k) => {
                let gva = self.tracked_target_gva(k);
                self.seq += 1;
                let seq = self.seq;
                self.kernel
                    .write_u64_no_irq(&mut self.hv, self.tracked, gva, seq, Lane::Tracked)
                    .map_err(internal)?;
                self.oracle.insert(gva.page());
            }
            Step::WriteOther(k) => {
                let gva = self.other_target_gva(k);
                self.seq += 1;
                let seq = self.seq;
                self.kernel
                    .write_u64_no_irq(&mut self.hv, self.other, gva, seq, Lane::Tracked)
                    .map_err(internal)?;
            }
            Step::SchedOut => {
                let other = self.other;
                self.kernel
                    .context_switch(&mut self.hv, other)
                    .map_err(internal)?;
            }
            Step::SchedIn => {
                let tracked = self.tracked;
                self.kernel
                    .context_switch(&mut self.hv, tracked)
                    .map_err(internal)?;
            }
            Step::DeliverIpi => {
                if self.mutation == Mutation::DropIpi {
                    self.hv
                        .discard_pending_interrupts(self.kernel.vm, self.kernel.vcpu);
                } else {
                    self.kernel.poll_interrupts(&mut self.hv).map_err(internal)?;
                }
            }
            Step::FlushTlb => {
                self.kernel.flush_tlb(&mut self.hv);
            }
            Step::FetchDirty => {
                let reported = self
                    .session
                    .fetch_dirty(&mut self.hv, &mut self.kernel)
                    .map_err(internal)?;
                self.check_fetch(&reported)?;
            }
        }
        self.check_after_step()
    }

    fn digest(&mut self) -> u64 {
        let mut h = StateHasher::new();
        h.write_u64(match self.kernel.current() {
            Some(pid) => u64::from(pid.0),
            None => u64::MAX,
        });
        h.write_u64(self.session.rounds());
        h.write_sorted(&self.oracle.iter().copied().collect::<Vec<_>>());
        for v in 0..self.kernel.n_vcpus() {
            self.hv
                .hash_vm_state(self.kernel.vm, v, &mut h)
                .expect("state hash must not fault");
        }
        if let Some(module) = self.kernel.ooh.as_ref() {
            h.write_bool(true);
            self.hv
                .hash_ring(module.ring(), &mut h)
                .expect("ring hash must not fault");
        } else {
            h.write_bool(false);
        }
        // PTE protocol bits (present/writable/dirty/soft-dirty/uffd-wp) for
        // every page the model can touch.
        let pages: Vec<(Pid, Gva)> = self
            .tracked_region
            .iter_pages()
            .map(|g| (self.tracked, g))
            .chain(self.other_region.iter_pages().map(|g| (self.other, g)))
            .collect();
        for (pid, gva) in pages {
            match self
                .kernel
                .pte_lookup(&mut self.hv, pid, gva)
                .expect("pte walk must not fault")
            {
                Some((_, pte)) => {
                    h.write_bool(true);
                    h.write_u64(
                        pte.0
                            & (Pte::PRESENT
                                | Pte::WRITABLE
                                | Pte::DIRTY
                                | Pte::SOFT_DIRTY
                                | Pte::UFFD_WP),
                    );
                }
                None => h.write_bool(false),
            }
        }
        // Pending userfaultfd events (order-insensitive: the tracker folds
        // them into a set).
        h.write_u64(self.kernel.ufds.len() as u64);
        for ufd in &self.kernel.ufds {
            let mut evs: Vec<u64> = ufd
                .pending_events()
                .iter()
                .map(|e| e.gva.page() << 1 | u64::from(e.write))
                .collect();
            evs.sort_unstable();
            h.write_sorted(&evs);
        }
        h.finish()
    }

    fn commutes(&mut self, a: Step, b: Step) -> bool {
        // Only same-kind writes to distinct pages are claimed independent,
        // and only while nothing can overflow: both PTEs present (no fault
        // path), at least two free slots in the active log buffer (neither
        // write can trip buffer-full), and two free ring slots. Everything
        // else — scheduler hooks, IPI delivery, drains, collects, TLB
        // flushes — is treated as dependent, which is always sound.
        let (pid, ga, gb) = match (a, b) {
            (Step::WriteTracked(x), Step::WriteTracked(y)) if x != y => {
                (self.tracked, self.tracked_target_gva(x), self.tracked_target_gva(y))
            }
            (Step::WriteOther(x), Step::WriteOther(y)) if x != y => {
                (self.other, self.other_target_gva(x), self.other_target_gva(y))
            }
            _ => return false,
        };
        for gva in [ga, gb] {
            match self.kernel.pte_lookup(&mut self.hv, pid, gva) {
                Ok(Some((_, pte))) if pte.is_present() => {}
                _ => return false,
            }
        }
        if let Some(free) = self.active_buffer_free_slots() {
            if free < 2 {
                return false;
            }
        }
        if let Some(module) = self.kernel.ooh.as_ref() {
            let ring = module.ring();
            match self.hv.ring_len(ring) {
                Ok(len) if ring.capacity() - len >= 2 => {}
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_tokens_round_trip() {
        let steps = [
            Step::WriteTracked(2),
            Step::WriteOther(0),
            Step::SchedOut,
            Step::SchedIn,
            Step::DeliverIpi,
            Step::FlushTlb,
            Step::FetchDirty,
        ];
        for s in steps {
            assert_eq!(Step::from_parts(s.token(), s.arg()), Some(s), "{s}");
        }
        assert_eq!(Step::from_parts("write-tracked", None), None);
        assert_eq!(Step::from_parts("fetch-dirty", Some(1)), None);
        assert_eq!(Step::from_parts("nonsense", None), None);
    }

    #[test]
    fn technique_tokens_round_trip() {
        for t in Technique::ALL {
            assert_eq!(technique_from_token(technique_token(t)), Some(t));
        }
        assert_eq!(technique_from_token("/proc"), None);
    }

    #[test]
    fn boot_enables_the_expected_steps() {
        for t in Technique::ALL {
            let mut m = ModelSession::boot(t, Scenario::Small, Mutation::None).unwrap();
            let steps = m.enabled_steps();
            assert!(steps.contains(&Step::WriteTracked(0)), "{}", t.name());
            assert!(steps.contains(&Step::SchedOut), "{}", t.name());
            assert!(steps.contains(&Step::FetchDirty), "{}", t.name());
            assert!(!steps.contains(&Step::SchedIn), "{}", t.name());
            // Sorted and duplicate-free.
            let mut sorted = steps.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(steps, sorted);
        }
    }

    #[test]
    fn write_then_fetch_satisfies_p1() {
        for t in Technique::ALL {
            let mut m = ModelSession::boot(t, Scenario::Small, Mutation::None).unwrap();
            m.apply(Step::WriteTracked(0)).unwrap();
            m.apply(Step::WriteTracked(2)).unwrap();
            m.apply(Step::FetchDirty).unwrap();
            // Round 2: nothing written, empty fetch must also pass.
            m.apply(Step::FetchDirty).unwrap();
        }
    }

    #[test]
    fn near_full_buffer_gates_execution_after_the_tipping_write() {
        let mut m = ModelSession::boot(Technique::Epml, Scenario::NearFull, Mutation::None)
            .unwrap();
        assert!(!m.execution_gated());
        // One slot left: this write fills the buffer and posts the IPI.
        m.apply(Step::WriteTracked(0)).unwrap();
        assert!(m.execution_gated());
        let steps = m.enabled_steps();
        assert!(steps.contains(&Step::DeliverIpi));
        assert!(!steps.iter().any(|s| matches!(s, Step::WriteTracked(_))));
        // Delivery drains the buffer and reopens execution.
        m.apply(Step::DeliverIpi).unwrap();
        assert!(!m.execution_gated());
        m.apply(Step::FetchDirty).unwrap();
    }

    #[test]
    fn digest_is_deterministic_and_state_sensitive() {
        let mut a = ModelSession::boot(Technique::Epml, Scenario::Small, Mutation::None).unwrap();
        let mut b = ModelSession::boot(Technique::Epml, Scenario::Small, Mutation::None).unwrap();
        assert_eq!(a.digest(), b.digest(), "identical boots must hash alike");
        a.apply(Step::WriteTracked(0)).unwrap();
        assert_ne!(a.digest(), b.digest(), "a write must change the digest");
        b.apply(Step::WriteTracked(0)).unwrap();
        assert_eq!(a.digest(), b.digest(), "same history, same digest");
    }

    #[test]
    fn independent_writes_commute_and_dependent_steps_do_not() {
        let mut m = ModelSession::boot(Technique::Epml, Scenario::Small, Mutation::None).unwrap();
        assert!(m.commutes(Step::WriteTracked(0), Step::WriteTracked(1)));
        assert!(!m.commutes(Step::WriteTracked(0), Step::WriteTracked(0)));
        assert!(!m.commutes(Step::WriteTracked(0), Step::FetchDirty));
        assert!(!m.commutes(Step::SchedOut, Step::FetchDirty));
        assert!(!m.commutes(Step::DeliverIpi, Step::WriteTracked(0)));
        // Near the buffer-full edge even distinct writes stop commuting.
        let mut nf =
            ModelSession::boot(Technique::Epml, Scenario::NearFull, Mutation::None).unwrap();
        assert!(!nf.commutes(Step::WriteTracked(0), Step::WriteTracked(1)));
    }

    #[test]
    fn module_mutations_require_a_module_technique() {
        assert!(
            ModelSession::boot(Technique::Proc, Scenario::Small, Mutation::ClearBeforeDrain)
                .is_err()
        );
        assert!(ModelSession::boot(
            Technique::Ufd,
            Scenario::Small,
            Mutation::SkipDisableLogging
        )
        .is_err());
    }
}
