//! Convergence/throttling policy for pre-copy loops.
//!
//! Every pre-copy consumer in the workspace — the hypervisor's
//! whole-VM [`PreCopyMigration`](../../hypervisor) loop and the
//! CRIU-chain fleet scheduler in `ooh-bench` — faces the same control
//! problem: a guest that dirties pages faster than the copy channel can
//! ship them never converges, and an unbounded loop just burns rounds.
//! The standard datacenter answer (Xen, QEMU auto-converge, Firecracker)
//! is a three-state policy:
//!
//! 1. **Continue** while the dirty set is shrinking toward the
//!    stop-and-copy threshold;
//! 2. **Throttle** the writer (inject think-time / reduce its quantum)
//!    once its dirty *rate* has exceeded the copy bandwidth for a few
//!    consecutive rounds;
//! 3. **Stop-and-copy** when the dirty set is small enough (converged) or
//!    when the round cap / throttle ladder is exhausted (forced).
//!
//! All inputs are virtual-clock quantities, so decisions are a pure
//! function of the round history — the same seeded scenario always takes
//! the same decision sequence, which is what lets the fleet determinism
//! tests cover policy behaviour byte-for-byte.

use serde::Serialize;

/// Nanoseconds per virtual second (rate conversions).
const NS_PER_SEC: u64 = 1_000_000_000;

/// What the policy tells the pre-copy driver to do after a round.
/// (Reports serialize the [`token`](Decision::token) string — the offline
/// serde shim only derives unit enums.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Dirty set trending down and rate under bandwidth: run another round.
    Continue,
    /// Dirty rate has exceeded copy bandwidth for too long: slow the
    /// writer. `level` is the cumulative throttle step (each step halves
    /// the writer's quantum in the reference drivers).
    Throttle { level: u32 },
    /// Pause the writer and ship the remainder. `converged` is true when
    /// the dirty set fell under the stop threshold, false when the policy
    /// gave up (round cap or throttle ladder exhausted).
    StopAndCopy { converged: bool },
}

impl Decision {
    /// Short token used in report tables ("cont", "thr1", "stop", "bail").
    pub fn token(&self) -> String {
        match self {
            Decision::Continue => "cont".to_string(),
            Decision::Throttle { level } => format!("thr{level}"),
            Decision::StopAndCopy { converged: true } => "stop".to_string(),
            Decision::StopAndCopy { converged: false } => "bail".to_string(),
        }
    }
}

/// Tunables of the convergence policy.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ConvergencePolicy {
    /// Hard cap on pre-copy rounds (base/full copy excluded).
    pub max_rounds: u32,
    /// Stop-and-copy when a round's dirty set is at or below this many
    /// pages — shipping them while paused costs acceptable downtime.
    pub stop_threshold_pages: u64,
    /// Copy-channel bandwidth in pages per virtual second; a writer
    /// dirtying faster than this can never converge un-throttled.
    pub bandwidth_pps: u64,
    /// Consecutive over-bandwidth rounds tolerated before throttling.
    pub patience_rounds: u32,
    /// Throttle-ladder height; past it the policy stops-and-copies.
    pub max_throttle_level: u32,
}

impl Default for ConvergencePolicy {
    fn default() -> Self {
        Self {
            max_rounds: 16,
            stop_threshold_pages: 64,
            // 4 KiB over ~10 Gb/s with protocol overhead ≈ 4 µs/page.
            bandwidth_pps: 250_000,
            patience_rounds: 2,
            max_throttle_level: 3,
        }
    }
}

/// Mutable per-migration policy state: the round counter, the
/// over-bandwidth streak and the current throttle level.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PolicyState {
    /// Pre-copy rounds observed so far.
    pub rounds: u32,
    /// Consecutive rounds whose dirty rate exceeded bandwidth.
    pub hot_streak: u32,
    /// Current throttle level (0 = unthrottled).
    pub throttle_level: u32,
    /// Rounds during which a throttle was in force.
    pub throttled_rounds: u32,
}

/// Dirty rate in pages per virtual second; a zero interval (nothing ran
/// between drains) with dirty pages counts as unbounded rate.
pub fn dirty_rate_pps(pages: u64, interval_ns: u64) -> u64 {
    if interval_ns == 0 {
        return if pages == 0 { 0 } else { u64::MAX };
    }
    u128::from(pages)
        .saturating_mul(u128::from(NS_PER_SEC))
        .checked_div(u128::from(interval_ns))
        .map_or(u64::MAX, |r| u64::try_from(r).unwrap_or(u64::MAX))
}

impl ConvergencePolicy {
    /// Observe one pre-copy round (`pages` dirtied over `interval_ns` of
    /// virtual time since the previous drain) and decide what to do next.
    /// Pure function of `(self, *state, pages, interval_ns)`; mutates
    /// `state` to carry the streak/level across rounds.
    pub fn decide(&self, state: &mut PolicyState, pages: u64, interval_ns: u64) -> Decision {
        state.rounds += 1;
        if state.throttle_level > 0 {
            state.throttled_rounds += 1;
        }
        if pages <= self.stop_threshold_pages {
            return Decision::StopAndCopy { converged: true };
        }
        if state.rounds >= self.max_rounds {
            return Decision::StopAndCopy { converged: false };
        }
        if dirty_rate_pps(pages, interval_ns) > self.bandwidth_pps {
            state.hot_streak += 1;
        } else {
            state.hot_streak = 0;
        }
        if state.hot_streak >= self.patience_rounds {
            if state.throttle_level >= self.max_throttle_level {
                // The ladder is exhausted and the writer is still out-running
                // the channel: further rounds only ship the same pages again.
                return Decision::StopAndCopy { converged: false };
            }
            state.hot_streak = 0;
            state.throttle_level += 1;
            return Decision::Throttle {
                level: state.throttle_level,
            };
        }
        Decision::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = NS_PER_SEC;

    fn policy() -> ConvergencePolicy {
        ConvergencePolicy {
            max_rounds: 10,
            stop_threshold_pages: 8,
            bandwidth_pps: 1_000,
            patience_rounds: 2,
            max_throttle_level: 2,
        }
    }

    #[test]
    fn converging_vm_never_throttles() {
        let p = policy();
        let mut st = PolicyState::default();
        // Shrinking dirty sets, always under bandwidth (1000 pps).
        for pages in [400u64, 120, 40, 16] {
            assert_eq!(p.decide(&mut st, pages, SEC), Decision::Continue);
        }
        assert_eq!(
            p.decide(&mut st, 6, SEC),
            Decision::StopAndCopy { converged: true }
        );
        assert_eq!(st.throttle_level, 0);
        assert_eq!(st.throttled_rounds, 0);
    }

    #[test]
    fn hot_writer_climbs_the_throttle_ladder_then_bails() {
        let p = policy();
        let mut st = PolicyState::default();
        let mut decisions = Vec::new();
        // 5000 pages/sec against a 1000 pps channel, forever.
        for _ in 0..p.max_rounds {
            let d = p.decide(&mut st, 5_000, SEC);
            decisions.push(d);
            if matches!(d, Decision::StopAndCopy { .. }) {
                break;
            }
        }
        assert_eq!(
            decisions,
            vec![
                Decision::Continue,               // streak 1
                Decision::Throttle { level: 1 },  // streak hits patience
                Decision::Continue,               // streak 1 again
                Decision::Throttle { level: 2 },  // ladder top
                Decision::Continue,
                Decision::StopAndCopy { converged: false }, // ladder exhausted
            ]
        );
        assert!(st.rounds <= p.max_rounds, "decided within the round cap");
    }

    #[test]
    fn round_cap_forces_stop() {
        let p = policy();
        let mut st = PolicyState::default();
        // Over threshold but *under* bandwidth: never throttles, never
        // converges — the cap must end it.
        let mut last = Decision::Continue;
        for _ in 0..p.max_rounds {
            last = p.decide(&mut st, 500, SEC);
            if matches!(last, Decision::StopAndCopy { .. }) {
                break;
            }
        }
        assert_eq!(last, Decision::StopAndCopy { converged: false });
        assert_eq!(st.rounds, p.max_rounds);
        assert_eq!(st.throttle_level, 0);
    }

    #[test]
    fn dirty_rate_edge_cases() {
        assert_eq!(dirty_rate_pps(0, 0), 0);
        assert_eq!(dirty_rate_pps(10, 0), u64::MAX);
        assert_eq!(dirty_rate_pps(1_000, SEC), 1_000);
        assert_eq!(dirty_rate_pps(1, 2 * SEC), 0); // rounds down
        assert_eq!(dirty_rate_pps(u64::MAX, 1), u64::MAX); // saturates
    }

    #[test]
    fn throttled_rounds_are_counted() {
        let p = policy();
        let mut st = PolicyState::default();
        for _ in 0..4 {
            let _ = p.decide(&mut st, 5_000, SEC);
        }
        // Rounds 3 and 4 ran with a throttle in force (level set in round 2).
        assert_eq!(st.throttled_rounds, 2);
    }
}
