//! The `/proc` technique: soft-dirty bits via `clear_refs` + `pagemap`.
//!
//! This is what stock CRIU and Boehm use. Costs: the clear_refs PTE sweep
//! and TLB flush per round (M15), one kernel-handled write fault per
//! re-dirtied page during monitoring (M5), and the big pagemap scan at
//! collection (M16).

use crate::dirtyset::DirtySet;
use crate::tracker::{DirtyPageTracker, TrackEnv, Technique};
use ooh_guest::GuestError;
use ooh_sim::Lane;

#[derive(Debug, Default)]
pub struct ProcTracker {
    rounds: u64,
}

impl ProcTracker {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

impl DirtyPageTracker for ProcTracker {
    fn technique(&self) -> Technique {
        Technique::Proc
    }

    fn init(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        // No mechanism to arm; the first round starts with clear_refs.
        self.begin_round(env)
    }

    fn begin_round(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        env.kernel.clear_refs(env.hv, env.pid, Lane::Tracker)?;
        self.rounds += 1;
        Ok(())
    }

    fn collect(&mut self, env: &mut TrackEnv<'_>) -> Result<DirtySet, GuestError> {
        let dirty = env
            .kernel
            .soft_dirty_pages(env.hv, env.pid, Lane::Tracker)?;
        Ok(dirty.into())
    }

    fn finish(&mut self, _env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        Ok(())
    }
}
