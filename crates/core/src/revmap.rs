//! GPA→GVA reverse mapping — SPML's Achilles heel.
//!
//! The PML hardware logs guest-*physical* addresses, but trackers need
//! guest-*virtual* ones. The paper's OoH Lib resolves each GPA by parsing
//! `/proc/PID/pagemap` to find the virtual page whose PFN matches — a scan
//! whose cost grows with the process's resident set, measured in Table Vb
//! as M17 (6 ms at 1 MB, 15.7 s at 1 GB — more than 68% of SPML's total
//! collection time, Figure 3). We perform the lookup mechanically against
//! the kernel's resident map and charge the calibrated cost per logged GPA.

use crate::dirtyset::DirtySet;
use ooh_guest::{GuestError, GuestKernel, Pid};
use ooh_hypervisor::Hypervisor;
use ooh_machine::DirtyBitmap;
use ooh_sim::{Event, Lane, ScopeKind};

/// A GPA→GVA cache, used by Boehm's integration: the paper's footnote 2
/// observes that Boehm reverse-maps during its *first* GC cycle and reuses
/// the addresses afterwards, because a process's physical placement is
/// stable. Entries are `Option<GVA page>` so "this GPA has no userspace
/// mapping" (page-table noise) is cached too.
///
/// "Stable" is an assumption, not a guarantee: a munmap frees frames back
/// to the guest allocator and the next mmap's faults recycle them, so a
/// cached translation — or a cached negative — can silently go stale. The
/// cache therefore records the kernel map generation it was built at, and
/// [`reverse_map_batch_cached`] drops every entry when the process's
/// GPA↔GVA mapping has changed since.
#[derive(Debug, Default, Clone)]
pub struct RevMapCache {
    entries: std::collections::BTreeMap<u64, Option<u64>>,
    /// Kernel map generation the entries were resolved against.
    generation: u64,
}

impl RevMapCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every cached translation (overflow fallback, invalidation).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Cost of a cache hit (one hash probe in the library).
const CACHE_HIT_NS: u64 = 50;

/// Reverse-map a batch of logged GPA pages (a deduplicated word-packed
/// bitmap, iterated ascending) to GVAs for `pid`.
///
/// Returns the successfully mapped GVA pages as a [`DirtySet`]; GPAs with
/// no userspace mapping (page-table pages the hardware logged, pages freed
/// since logging) are dropped — each still pays the scan cost, as the real
/// library's failed pagemap scans do.
pub fn reverse_map_batch(
    hv: &mut Hypervisor,
    kernel: &GuestKernel,
    pid: Pid,
    gpa_pages: &DirtyBitmap,
) -> Result<DirtySet, GuestError> {
    let ctx = hv.ctx.clone();
    let _span = ctx.span(ScopeKind::Op, "reverse_map", gpa_pages.len() as u64);
    let proc = kernel.process(pid)?;
    let resident_pages = proc.resident_pages();

    // The real implementation scans pagemap per GPA. The kernel maintains
    // the GPA→GVA inverse incrementally on its map/unmap path, so each
    // simulated lookup is O(log n) *wall* time — but we still charge the
    // modeled per-lookup scan cost, so the virtual clock behaves like the
    // paper's measurements (guarded by the determinism tests).
    let mut out = DirtySet::new();
    for page in gpa_pages.pages() {
        let cost = ctx.cost().reverse_map_lookup_ns(resident_pages);
        ctx.charge_ns(Lane::Tracker, Event::ReverseMapLookup, cost);
        if let Some(gva_page) = proc.gva_for_gpa_page(page) {
            out.insert_page(gva_page);
        }
    }
    Ok(out)
}

/// Cached variant (Boehm's integration, footnote 2): cache hits cost one
/// hash probe; misses pay the full pagemap scan and populate the cache.
pub fn reverse_map_batch_cached(
    hv: &mut Hypervisor,
    kernel: &GuestKernel,
    pid: Pid,
    gpa_pages: &DirtyBitmap,
    cache: &mut RevMapCache,
) -> Result<DirtySet, GuestError> {
    let ctx = hv.ctx.clone();
    let _span = ctx.span(ScopeKind::Op, "reverse_map", gpa_pages.len() as u64);

    // Invalidate before trusting anything: if the process mapped or
    // unmapped pages since the cache was built, frames may have been
    // recycled under it and both positive and negative entries are suspect.
    let generation = kernel.map_generation(pid)?;
    if generation != cache.generation {
        cache.entries.clear();
        cache.generation = generation;
    }

    let proc = kernel.process(pid)?;
    let resident_pages = proc.resident_pages();

    let mut out = DirtySet::new();
    for page in gpa_pages.pages() {
        let hit = cache.entries.get(&page).copied();
        let resolved = match hit {
            Some(cached) => {
                ctx.charge_ns(Lane::Tracker, Event::ReverseMapLookup, CACHE_HIT_NS);
                cached
            }
            None => {
                let cost = ctx.cost().reverse_map_lookup_ns(resident_pages);
                ctx.charge_ns(Lane::Tracker, Event::ReverseMapLookup, cost);
                let r = proc.gva_for_gpa_page(page);
                cache.entries.insert(page, r);
                r
            }
        };
        if let Some(gva_page) = resolved {
            out.insert_page(gva_page);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revmap::{reverse_map_batch_cached, RevMapCache};
    use ooh_guest::VmaKind;
    use ooh_machine::{Gpa, Gva, MachineConfig, PAGE_SIZE};
    use ooh_sim::SimCtx;

    #[test]
    fn maps_resident_pages_and_drops_unknown() {
        let mut hv = Hypervisor::new(MachineConfig::stock(4096 * PAGE_SIZE), SimCtx::new());
        let vm = hv.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        let range = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel
                .write_u64(&mut hv, pid, g, 1, Lane::Tracked)
                .unwrap();
        }
        let proc = kernel.process(pid).unwrap();
        let gva0 = range.start;
        let gpa_pages: DirtyBitmap =
            [proc.resident[&gva0.page()], Gpa(0xdead000).page()].into_iter().collect();

        let mapped = reverse_map_batch(&mut hv, &kernel, pid, &gpa_pages).unwrap();
        assert_eq!(mapped.iter().collect::<Vec<_>>(), vec![gva0]);
        // Both lookups were charged.
        assert_eq!(hv.ctx.counters().get(Event::ReverseMapLookup), 2);
    }

    #[test]
    fn cached_lookups_are_cheap_and_correct() {
        let mut hv = Hypervisor::new(MachineConfig::stock(4096 * PAGE_SIZE), SimCtx::new());
        let vm = hv.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        let range = kernel.mmap(pid, 8, true, VmaKind::Anon).unwrap();
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 1, Lane::Tracked).unwrap();
        }
        let proc = kernel.process(pid).unwrap();
        let gpas: DirtyBitmap = range
            .iter_pages()
            .map(|g| proc.resident[&g.page()])
            .collect();

        let mut cache = RevMapCache::new();
        let t0 = hv.ctx.now_ns();
        let first = reverse_map_batch_cached(&mut hv, &kernel, pid, &gpas, &mut cache).unwrap();
        let cold_ns = hv.ctx.now_ns() - t0;
        let t1 = hv.ctx.now_ns();
        let second = reverse_map_batch_cached(&mut hv, &kernel, pid, &gpas, &mut cache).unwrap();
        let warm_ns = hv.ctx.now_ns() - t1;

        assert_eq!(first, second, "cache must not change results");
        assert_eq!(first.len(), 8);
        assert!(
            warm_ns * 10 < cold_ns,
            "warm pass ({warm_ns}ns) must be <10% of cold ({cold_ns}ns)"
        );
        // Negative results are cached too.
        let unknown: DirtyBitmap = [Gpa(0xABC000).page()].into_iter().collect();
        let t2 = hv.ctx.now_ns();
        let miss1 =
            reverse_map_batch_cached(&mut hv, &kernel, pid, &unknown, &mut cache).unwrap();
        let cold_miss = hv.ctx.now_ns() - t2;
        let t3 = hv.ctx.now_ns();
        let miss2 =
            reverse_map_batch_cached(&mut hv, &kernel, pid, &unknown, &mut cache).unwrap();
        let warm_miss = hv.ctx.now_ns() - t3;
        assert!(miss1.is_empty() && miss2.is_empty());
        assert!(warm_miss < cold_miss);
    }

    /// Regression test for the stale-cache bug: munmap region A, mmap
    /// region B whose faults recycle A's freed frames, and reverse-map B's
    /// GPAs through a cache warmed on A. Before the map-generation check,
    /// the cache returned A's dead GVAs for the recycled frames, silently
    /// misattributing B's dirty pages.
    #[test]
    fn cache_invalidated_when_frames_are_recycled() {
        let mut hv = Hypervisor::new(MachineConfig::stock(4096 * PAGE_SIZE), SimCtx::new());
        let vm = hv.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();

        let a = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
        for g in a.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 1, Lane::Tracked).unwrap();
        }
        let gpas_a: DirtyBitmap = {
            let proc = kernel.process(pid).unwrap();
            a.iter_pages()
                .map(|g| proc.resident[&g.page()])
                .collect()
        };
        let mut cache = RevMapCache::new();
        let warm =
            reverse_map_batch_cached(&mut hv, &kernel, pid, &gpas_a, &mut cache).unwrap();
        assert_eq!(warm.len(), 4);

        // Recycle: free A's frames, let B's demand-zero faults reuse them.
        kernel.munmap(&mut hv, pid, a).unwrap();
        let b = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
        for g in b.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 2, Lane::Tracked).unwrap();
        }
        let gpas_b: DirtyBitmap = {
            let proc = kernel.process(pid).unwrap();
            b.iter_pages()
                .map(|g| proc.resident[&g.page()])
                .collect()
        };
        assert!(
            gpas_b.pages().any(|p| gpas_a.contains(p)),
            "test premise: at least one of A's frames must back B now"
        );

        let mapped =
            reverse_map_batch_cached(&mut hv, &kernel, pid, &gpas_b, &mut cache).unwrap();
        let expected: Vec<Gva> = b.iter_pages().map(|g| g.page_base()).collect();
        assert_eq!(
            mapped.iter().collect::<Vec<_>>(),
            expected,
            "recycled frames must resolve to B's GVAs, not A's cached ones"
        );
    }

    #[test]
    fn cost_scales_with_resident_set() {
        let ctx = SimCtx::new();
        let small = ctx.cost().reverse_map_lookup_ns(256);
        let large = ctx.cost().reverse_map_lookup_ns(262_144);
        assert!(large > 2 * small, "superlinear growth: {small} vs {large}");
    }
}
