//! High-level facade: the API an application developer sees.
//!
//! The paper ships OoH as "a kernel module plus a userspace template the
//! developer integrates". [`OohSession`] is that template: pick a
//! [`Technique`], point it at a PID, and fetch dirty pages per round.

use crate::dirtyset::DirtySet;
use crate::tracker::{make_tracker, DirtyPageTracker, TrackEnv, Technique};
use ooh_guest::{GuestError, GuestKernel, Pid};
use ooh_hypervisor::Hypervisor;
use ooh_sim::ScopeKind;

/// A live tracking session over one process.
pub struct OohSession {
    pid: Pid,
    tracker: Box<dyn DirtyPageTracker>,
    rounds: u64,
    active: bool,
}

impl OohSession {
    /// Start tracking `pid` with `technique`. Performs the technique's
    /// phase-1 initialization and opens the first round.
    pub fn start(
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
        technique: Technique,
    ) -> Result<Self, GuestError> {
        let ctx = hv.ctx.clone();
        let _technique = ctx.span(ScopeKind::Technique, technique.name(), 0);
        let _process = ctx.span(ScopeKind::Process, "pid", u64::from(pid.0));
        let _phase = ctx.span(ScopeKind::Phase, "init", 0);
        let mut tracker = make_tracker(technique);
        let mut env = TrackEnv::new(hv, kernel, pid);
        tracker.init(&mut env)?;
        tracker.begin_round(&mut env)?;
        Ok(Self {
            pid,
            tracker,
            rounds: 0,
            active: true,
        })
    }

    pub fn technique(&self) -> Technique {
        self.tracker.technique()
    }

    pub fn pid(&self) -> Pid {
        self.pid
    }

    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Enable cross-round collection caching (see
    /// [`DirtyPageTracker::enable_collection_cache`]). Boehm's integration
    /// turns this on; CRIU's does not.
    pub fn enable_collection_cache(&mut self) {
        self.tracker.enable_collection_cache();
    }

    /// End the current round, returning the pages dirtied since the last
    /// fetch (or since `start`), and open the next round.
    pub fn fetch_dirty(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
    ) -> Result<DirtySet, GuestError> {
        assert!(self.active, "session already stopped");
        let ctx = hv.ctx.clone();
        let _technique = ctx.span(ScopeKind::Technique, self.tracker.technique().name(), 0);
        let _process = ctx.span(ScopeKind::Process, "pid", u64::from(self.pid.0));
        let _phase = ctx.span(ScopeKind::Phase, "collect", 0);
        let mut env = TrackEnv::new(hv, kernel, self.pid);
        let set = self.tracker.collect(&mut env)?;
        self.tracker.begin_round(&mut env)?;
        self.rounds += 1;
        Ok(set)
    }

    /// Stop tracking and tear the mechanism down.
    pub fn stop(
        mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
    ) -> Result<(), GuestError> {
        self.active = false;
        let ctx = hv.ctx.clone();
        let _technique = ctx.span(ScopeKind::Technique, self.tracker.technique().name(), 0);
        let _process = ctx.span(ScopeKind::Process, "pid", u64::from(self.pid.0));
        let _phase = ctx.span(ScopeKind::Phase, "teardown", 0);
        let mut env = TrackEnv::new(hv, kernel, self.pid);
        self.tracker.finish(&mut env)
    }
}

impl std::fmt::Debug for OohSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OohSession")
            .field("pid", &self.pid)
            .field("technique", &self.tracker.technique())
            .field("rounds", &self.rounds)
            .finish()
    }
}
