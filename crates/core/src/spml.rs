//! The SPML tracker: hypervisor-emulated per-process PML.
//!
//! The hypervisor copies logged **GPAs** into the shared ring on every
//! schedule-out and buffer-full event; this tracker fetches the ring and
//! reverse-maps GPA→GVA — the step that dominates SPML's collection time
//! (Figure 3) and makes it the slowest technique for the Tracker.

use crate::dirtyset::DirtySet;
use crate::revmap::{reverse_map_batch, reverse_map_batch_cached, RevMapCache};
use crate::tracker::{DirtyPageTracker, TrackEnv, Technique};
use ooh_guest::{GuestError, OohMode, OohModule};
use ooh_machine::{DirtyBitmap, Gpa, GvaRange};

#[derive(Debug, Default)]
pub struct SpmlTracker {
    registered: Vec<GvaRange>,
    /// Entries fetched from the ring this round (raw GPAs, pre-revmap).
    pub raw_entries_last_round: u64,
    /// Ring drop count at the end of the previous round (overflow detector).
    last_dropped: u64,
    /// Rounds that had to fall back to a conservative full scan.
    pub overflow_fallbacks: u64,
    /// When set, GPA→GVA resolutions are cached across rounds (Boehm's
    /// integration, paper footnote 2: the first cycle pays the reverse
    /// mapping, later cycles reuse it). CRIU does not use this.
    cache: Option<RevMapCache>,
}

impl SpmlTracker {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Ensure the kernel has an OoH module loaded in `mode`; (re)loads if the
/// mode differs. Returns nothing — the module lives in `kernel.ooh`.
pub(crate) fn ensure_module(
    env: &mut TrackEnv<'_>,
    mode: OohMode,
) -> Result<(), GuestError> {
    let reload = match env.kernel.ooh.as_ref() {
        Some(m) => m.mode != mode,
        None => true,
    };
    if reload {
        if let Some(old) = env.kernel.ooh.take() {
            old.unload(env.kernel, env.hv)?;
        }
        let module = OohModule::load(env.kernel, env.hv, mode)?;
        env.kernel.ooh = Some(module);
    }
    Ok(())
}

/// Run `f` with the module temporarily taken out of the kernel (borrow
/// dance: the module's methods need `&mut GuestKernel`).
pub(crate) fn with_module<R>(
    env: &mut TrackEnv<'_>,
    f: impl FnOnce(&mut OohModule, &mut TrackEnv<'_>) -> Result<R, GuestError>,
) -> Result<R, GuestError> {
    let mut module = env
        .kernel
        .ooh
        .take()
        .expect("OoH module must be loaded first");
    let r = f(&mut module, env);
    env.kernel.ooh = Some(module);
    r
}

/// Drain the shared ring into a vector of raw entries.
pub(crate) fn drain_ring(env: &mut TrackEnv<'_>) -> Result<Vec<u64>, GuestError> {
    let ring = env
        .kernel
        .ooh
        .as_ref()
        .expect("OoH module must be loaded first")
        .ring()
        .clone();
    Ok(ring.drain(&mut env.hv.machine.phys)?)
}

/// Total entries ever dropped from the ring (overflow detector).
pub(crate) fn ring_dropped(env: &mut TrackEnv<'_>) -> Result<u64, GuestError> {
    let ring = env
        .kernel
        .ooh
        .as_ref()
        .expect("OoH module must be loaded first")
        .ring()
        .clone();
    Ok(ring.dropped(&env.hv.machine.phys)?)
}

/// Overflow fallback: entries were lost, so the only safe answer is "every
/// resident page in the registered region may be dirty". The library pays a
/// full pagemap walk (M16) for it, like any address-space scan.
pub(crate) fn conservative_full_scan(
    env: &mut TrackEnv<'_>,
    registered: &[GvaRange],
) -> Result<DirtySet, GuestError> {
    let mut set = DirtySet::new();
    for range in registered {
        for e in env
            .kernel
            .read_pagemap(env.hv, env.pid, *range, ooh_sim::Lane::Tracker)?
        {
            if e.present {
                set.insert(e.gva);
            }
        }
    }
    Ok(set)
}

impl DirtyPageTracker for SpmlTracker {
    fn technique(&self) -> Technique {
        Technique::Spml
    }

    fn init(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        ensure_module(env, OohMode::Spml)?;
        let pid = env.pid;
        with_module(env, |m, env| m.track(env.kernel, env.hv, pid))?;
        self.registered = env
            .kernel
            .vmas(env.pid)?
            .iter()
            .filter(|v| v.writable)
            .map(|v| v.range)
            .collect();
        Ok(())
    }

    fn begin_round(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        // Flush anything logged before this round into the ring, then
        // discard it: the round starts clean.
        with_module(env, |m, env| m.flush(env.kernel, env.hv))?;
        drain_ring(env)?;
        Ok(())
    }

    fn collect(&mut self, env: &mut TrackEnv<'_>) -> Result<DirtySet, GuestError> {
        // Refresh the registered region: VMAs mapped since init (heap
        // growth) are tracked too, as a real tracker re-reading
        // /proc/PID/maps would.
        //
        self.registered = env
            .kernel
            .vmas(env.pid)?
            .iter()
            .filter(|v| v.writable)
            .map(|v| v.range)
            .collect();
        with_module(env, |m, env| m.flush(env.kernel, env.hv))?;
        let raw = drain_ring(env)?;
        self.raw_entries_last_round = raw.len() as u64;

        // Ring overflow since last round: entries were lost; fall back to a
        // conservative full scan.
        let dropped = ring_dropped(env)?;
        if dropped != self.last_dropped {
            self.last_dropped = dropped;
            self.overflow_fallbacks += 1;
            // The fallback bypasses the ring and the reverse map entirely:
            // the pre-overflow raw count describes a round that never
            // completed, and the warm cache may hold translations for frames
            // whose logging we just lost track of. Neither may leak into the
            // next round.
            self.raw_entries_last_round = 0;
            if let Some(cache) = self.cache.as_mut() {
                cache.clear();
            }
            return conservative_full_scan(env, &self.registered);
        }

        // Build the library's address index by walking the process pagemap
        // (the paper's M16 "PT walk in userspace", Figure 3's second-largest
        // SPML collection component). Cached-revmap mode (Boehm) only pays
        // it while the cache is cold.
        if self.cache.as_ref().map(|c| c.is_empty()).unwrap_or(true) {
            for range in self.registered.clone() {
                let _ = env
                    .kernel
                    .read_pagemap(env.hv, env.pid, range, ooh_sim::Lane::Tracker)?;
            }
        }

        // Dedupe GPAs (a page re-logs once per scheduling quantum) by
        // packing them into a word bitmap — one bit set per logged page,
        // iterated ascending and unique, exactly the order the old
        // sort+dedup produced — then reverse-map, the expensive part.
        let gpa_pages: DirtyBitmap = raw.into_iter().map(|r| Gpa(r).page()).collect();
        let mut set = match self.cache.as_mut() {
            Some(cache) => {
                reverse_map_batch_cached(env.hv, env.kernel, env.pid, &gpa_pages, cache)?
            }
            None => reverse_map_batch(env.hv, env.kernel, env.pid, &gpa_pages)?,
        };
        set.retain_within(&self.registered);
        Ok(set)
    }

    fn finish(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        with_module(env, |m, env| m.untrack(env.kernel, env.hv))
    }

    fn enable_collection_cache(&mut self) {
        self.cache = Some(RevMapCache::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::{DirtyPageTracker, TrackEnv};
    use ooh_guest::{GuestKernel, VmaKind};
    use ooh_hypervisor::Hypervisor;
    use ooh_machine::{MachineConfig, PAGE_SIZE};
    use ooh_sim::{Lane, SimCtx};

    /// Regression test for the overflow-fallback reset: a 1-data-page ring
    /// (512 entries) overflows under a 600-page round, forcing the
    /// conservative full scan. Before the fix, `raw_entries_last_round`
    /// kept the pre-overflow count of a round that never completed, and the
    /// warm reverse-map cache survived into the next round.
    #[test]
    fn overflow_fallback_resets_raw_count_and_cache() {
        let mut hv = Hypervisor::new(MachineConfig::stock(64 * 1024 * PAGE_SIZE), SimCtx::new());
        let vm = hv.create_vm(16 * 1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        let pages = 600u64;
        let range = kernel.mmap(pid, pages, true, VmaKind::Anon).unwrap();

        // Preload the module with a tiny ring so one round overflows it;
        // the tracker's init reuses a module whose mode already matches.
        let module = OohModule::load_with(&mut kernel, &mut hv, OohMode::Spml, 1).unwrap();
        kernel.ooh = Some(module);

        let mut tracker = SpmlTracker::new();
        tracker.enable_collection_cache();
        let mut env = TrackEnv::new(&mut hv, &mut kernel, pid);
        tracker.init(&mut env).unwrap();
        tracker.begin_round(&mut env).unwrap();
        for gva in range.iter_pages().collect::<Vec<_>>() {
            env.kernel
                .write_u64(env.hv, pid, gva, 7, Lane::Tracked)
                .unwrap();
        }
        let set = tracker.collect(&mut env).unwrap();

        assert_eq!(tracker.overflow_fallbacks, 1, "the tiny ring must overflow");
        assert_eq!(
            tracker.raw_entries_last_round, 0,
            "pre-overflow raw count must not leak out of the failed round"
        );
        assert!(
            tracker.cache.as_ref().is_some_and(|c| c.is_empty()),
            "warm revmap cache must be dropped on fallback"
        );
        // The conservative scan still reports every written page.
        for gva in range.iter_pages() {
            assert!(set.contains(gva));
        }
    }
}
