//! The tracker abstraction: one trait, four techniques.
//!
//! The paper's Tracker loop has four phases — initialization, monitoring,
//! collection, exploitation. The trait maps them directly:
//! [`DirtyPageTracker::init`] (phase 1), the time between `begin_round` and
//! `collect` (phase 2, Tracked runs), [`DirtyPageTracker::collect`]
//! (phase 3), and the caller's own use of the returned [`DirtySet`]
//! (phase 4 — CRIU writes pages, the GC re-marks them).

use crate::dirtyset::DirtySet;
use ooh_guest::{GuestError, GuestKernel, Pid};
use ooh_hypervisor::Hypervisor;
use serde::Serialize;

/// The four techniques the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Technique {
    /// `/proc/PID/pagemap` soft-dirty (CRIU's and Boehm's default).
    Proc,
    /// userfaultfd in write-protect mode.
    Ufd,
    /// Shadow PML: hypervisor-emulated per-process PML (software-only OoH).
    Spml,
    /// Extended PML: the paper's hardware extension.
    Epml,
}

impl Technique {
    pub const ALL: [Technique; 4] =
        [Technique::Proc, Technique::Ufd, Technique::Spml, Technique::Epml];

    pub fn name(self) -> &'static str {
        match self {
            Technique::Proc => "/proc",
            Technique::Ufd => "ufd",
            Technique::Spml => "SPML",
            Technique::Epml => "EPML",
        }
    }

    /// Does this technique require the EPML hardware extension?
    pub fn needs_epml_hw(self) -> bool {
        self == Technique::Epml
    }
}

/// Everything a tracker operation needs: the stack plus the monitored PID.
pub struct TrackEnv<'a> {
    pub hv: &'a mut Hypervisor,
    pub kernel: &'a mut GuestKernel,
    pub pid: Pid,
}

impl<'a> TrackEnv<'a> {
    pub fn new(hv: &'a mut Hypervisor, kernel: &'a mut GuestKernel, pid: Pid) -> Self {
        Self { hv, kernel, pid }
    }
}

/// A dirty-page tracking technique, as used by CRIU and the GC.
pub trait DirtyPageTracker {
    /// Which technique this is.
    fn technique(&self) -> Technique;

    /// Phase 1: one-time setup (register the PID, arm the mechanism). Also
    /// begins the first round.
    fn init(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError>;

    /// Start a fresh round: from this point on, writes are recorded.
    /// (For `/proc` this is clear_refs; for ufd, re-protection; for the PML
    /// techniques it is implicit — the previous collect reset the state.)
    fn begin_round(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError>;

    /// End the round: return every page dirtied since `begin_round`.
    fn collect(&mut self, env: &mut TrackEnv<'_>) -> Result<DirtySet, GuestError>;

    /// Tear the mechanism down.
    fn finish(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError>;

    /// Opt into cross-round caching of collection work where the technique
    /// supports it. Today this is SPML's GPA→GVA cache (paper footnote 2:
    /// Boehm reverse-maps once and reuses the addresses); a no-op elsewhere.
    fn enable_collection_cache(&mut self) {}
}

/// Construct a tracker for `technique`.
pub fn make_tracker(technique: Technique) -> Box<dyn DirtyPageTracker> {
    match technique {
        Technique::Proc => Box::new(crate::proc_tracker::ProcTracker::new()),
        Technique::Ufd => Box::new(crate::ufd_tracker::UfdTracker::new()),
        Technique::Spml => Box::new(crate::spml::SpmlTracker::new()),
        Technique::Epml => Box::new(crate::epml::EpmlTracker::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technique_names() {
        assert_eq!(Technique::Proc.name(), "/proc");
        assert_eq!(Technique::Epml.name(), "EPML");
        assert!(Technique::Epml.needs_epml_hw());
        assert!(!Technique::Spml.needs_epml_hw());
    }

    #[test]
    fn factory_constructs_all() {
        for t in Technique::ALL {
            assert_eq!(make_tracker(t).technique(), t);
        }
    }
}
