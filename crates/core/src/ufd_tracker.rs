//! The userfaultfd technique, write-protect mode.
//!
//! The tracker registers the monitored VMAs, write-protects them, and gets a
//! synchronous notification on each first write — during which Tracked is
//! suspended for the full userspace round trip (the paper's dominant M6
//! cost). Collection is cheap (events were gathered during monitoring);
//! starting a new round re-protects the pages that were dirtied.

use crate::dirtyset::DirtySet;
use crate::tracker::{DirtyPageTracker, TrackEnv, Technique};
use ooh_guest::{GuestError, UfdId, UfdMode};
use ooh_machine::GvaRange;

#[derive(Debug, Default)]
pub struct UfdTracker {
    ufd: Option<UfdId>,
    registered: Vec<GvaRange>,
    /// Pages dirtied in the current round (accumulated from events).
    current: DirtySet,
}

impl UfdTracker {
    pub fn new() -> Self {
        Self::default()
    }

    // The drain is a plain buffer take: the tracker's `read(2)` round trip
    // was already charged at fault-delivery time (ufd.rs charges the full
    // M6 cost synchronously), so there is nothing left to account here.
    fn drain_into_current(&mut self, env: &mut TrackEnv<'_>) { // ooh-verify: allow(cost-coverage)
        if let Some(id) = self.ufd {
            for ev in env.kernel.ufd_read_events(id) {
                self.current.insert(ev.gva);
            }
        }
    }
}

impl DirtyPageTracker for UfdTracker {
    fn technique(&self) -> Technique {
        Technique::Ufd
    }

    fn init(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        let id = env.kernel.ufd_create(env.pid, UfdMode::WriteProtect);
        self.ufd = Some(id);
        Ok(())
    }

    fn begin_round(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        // Consume any leftover events and discard them, then re-protect the
        // whole registered region (the paper's per-round M2 ioctl — its cost
        // scales with the monitored memory size). A full-range sweep also
        // covers pages that became resident since the previous round.
        self.drain_into_current(env);
        self.current = DirtySet::new();
        let id = self.ufd.expect("init not called");
        // Register VMAs that appeared since the last round (the paper's
        // trackers call UFFDIO_REGISTER as the monitored region grows),
        // then re-protect the whole region.
        let current: Vec<GvaRange> = env
            .kernel
            .vmas(env.pid)?
            .iter()
            .filter(|v| v.writable)
            .map(|v| v.range)
            .collect();
        for range in &current {
            if !self.registered.contains(range) {
                env.kernel.ufd_register(env.hv, id, *range);
            }
        }
        self.registered = current;
        for range in self.registered.clone() {
            env.kernel.ufd_writeprotect(env.hv, id, range, true)?;
        }
        Ok(())
    }

    fn collect(&mut self, env: &mut TrackEnv<'_>) -> Result<DirtySet, GuestError> {
        self.drain_into_current(env);
        let mut out = self.current.clone();
        // Retain within the VMAs live *now*, not the begin-round snapshot:
        // events for a range unmapped mid-round describe translations that
        // no longer exist, and the pagemap- and PML-based collectors all
        // drop such pages too.
        let live: Vec<GvaRange> = env
            .kernel
            .vmas(env.pid)?
            .iter()
            .filter(|v| v.writable)
            .map(|v| v.range)
            .collect();
        out.retain_within(&live);
        Ok(out)
    }

    fn finish(&mut self, env: &mut TrackEnv<'_>) -> Result<(), GuestError> {
        // Unprotect everything still protected so Tracked runs free.
        if let Some(id) = self.ufd.take() {
            for range in self.registered.clone() {
                env.kernel.ufd_writeprotect(env.hv, id, range, false)?;
            }
        }
        Ok(())
    }
}
