//! Checkpoint (dump) side: iterative pre-dump + final dump, with the MD
//! (memory dump / collection) and MW (memory write) phases the paper times
//! separately (Figures 7 and 8).
//!
//! Phase structure per technique, following §VI-F:
//!
//! * `/proc` — CRIU walks the pagemap and writes each dirty page as it finds
//!   it: MD and MW are *merged*; we account the whole interleaved loop as MW
//!   (this is why the paper measures MW up to 5.7 s with /proc);
//! * SPML — MD = ring fetch + GPA→GVA reverse mapping (the dominant cost),
//!   MW = one batched sequential write of the collected pages;
//! * EPML — MD = ring fetch only, MW = batched write. Both PML techniques
//!   make MW "almost constant" because they write exactly the dirty list.

use crate::image::{CheckpointImage, VmaRecord};
use ooh_core::{DirtySet, OohSession, Technique};
use ooh_guest::{GuestError, GuestKernel, Pid};
use ooh_hypervisor::Hypervisor;
use ooh_sim::{Event, Lane};
use serde::Serialize;

/// Checkpointer tunables.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CriuConfig {
    pub technique: Technique,
    /// Sequential (batched) per-page dump cost: memory read + image write
    /// (≈3.9 µs/page reproduces the paper's E(C_p)=251 ms for the 253 MB
    /// `baby` workload).
    pub page_dump_ns: u64,
    /// Extra per-page overhead when pages are written unbatched, one
    /// write(2) at a time, as the /proc-interleaved path does.
    pub unbatched_overhead_ns: u64,
    /// Pages per batched write for the PML paths.
    pub write_batch_pages: u64,
    /// Number of pre-dump (pre-copy) rounds before the final dump.
    pub predump_rounds: u32,
}

impl CriuConfig {
    pub fn new(technique: Technique) -> Self {
        Self {
            technique,
            page_dump_ns: 3_900,
            unbatched_overhead_ns: 630, // two user/kernel crossings
            write_batch_pages: 512,
            predump_rounds: 0,
        }
    }
}

/// Wall-clock breakdown of one dump, in virtual nanoseconds.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct DumpStats {
    /// Tracking-technique initialization (phase 1).
    pub init_ns: u64,
    /// Memory-dump phase: collecting the dirty-page addresses.
    pub md_ns: u64,
    /// Memory-write phase: writing page contents to the image.
    pub mw_ns: u64,
    /// Pure page-write time regardless of phase attribution (the tracking
    /// routine C_p of the paper's Formula 1).
    pub write_ns: u64,
    /// Pages written to the image.
    pub pages_written: u64,
    /// Total checkpoint time (init excluded; the paper plots it once).
    pub total_ns: u64,
}

/// The checkpoint engine.
pub struct Criu {
    pub config: CriuConfig,
    session: Option<OohSession>,
    pub init_ns: u64,
}

impl Criu {
    /// Attach to `pid`: initializes the configured tracking technique.
    pub fn attach(
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
        config: CriuConfig,
    ) -> Result<Self, GuestError> {
        let t0 = hv.ctx.now_ns();
        let session = OohSession::start(hv, kernel, pid, config.technique)?;
        let init_ns = hv.ctx.now_ns() - t0;
        Ok(Self {
            config,
            session: Some(session),
            init_ns,
        })
    }

    fn vma_records(kernel: &GuestKernel, pid: Pid) -> Result<Vec<VmaRecord>, GuestError> {
        Ok(kernel
            .vmas(pid)?
            .iter()
            .map(|v| VmaRecord {
                start: v.range.start,
                pages: v.range.pages,
                writable: v.writable,
            })
            .collect())
    }

    /// Write the pages in `dirty` into `img`, charging the technique's MW
    /// pattern. Returns pages written.
    fn write_pages(
        &self,
        hv: &mut Hypervisor,
        kernel: &GuestKernel,
        pid: Pid,
        dirty: &DirtySet,
        img: &mut CheckpointImage,
    ) -> Result<u64, GuestError> {
        let ctx = hv.ctx.clone();
        let proc = kernel.process(pid)?;
        let mut written = 0u64;
        let batched = self.config.technique != Technique::Proc;
        for gva in dirty.iter() {
            let Some(&gpa_page) = proc.resident.get(&gva.page()) else {
                continue; // page vanished (unmapped) since collection
            };
            let hpa = hv
                .gpa_to_hpa(kernel.vm, ooh_machine::Gpa::from_page(gpa_page))?
                .expect("resident page must be mapped");
            let bytes = *hv.machine.phys.frame_bytes(hpa)?;
            img.put_page(gva.page(), &bytes);
            let mut cost = self.config.page_dump_ns;
            if !batched {
                cost += self.config.unbatched_overhead_ns;
                ctx.counters().add(Event::ContextSwitch, 1);
            } else if written.is_multiple_of(self.config.write_batch_pages) {
                ctx.charge(Lane::Tracker, Event::ContextSwitch);
            }
            ctx.advance(Lane::Tracker, cost);
            written += 1;
        }
        Ok(written)
    }

    /// One pre-dump (pre-copy) round: collect + write dirty pages while the
    /// application keeps running afterwards.
    pub fn pre_dump(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
    ) -> Result<(CheckpointImage, DumpStats), GuestError> {
        self.dump_round(hv, kernel, pid, true)
    }

    /// Final dump: the application is paused (nothing else runs in the
    /// simulation during this call), all remaining dirty pages are written,
    /// and VMA metadata is recorded.
    pub fn final_dump(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
    ) -> Result<(CheckpointImage, DumpStats), GuestError> {
        self.dump_round(hv, kernel, pid, false)
    }

    fn dump_round(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
        incremental: bool,
    ) -> Result<(CheckpointImage, DumpStats), GuestError> {
        let session = self.session.as_mut().expect("attach() first");
        let mut img = CheckpointImage::new(incremental);
        img.vmas = Self::vma_records(kernel, pid)?;

        let t0 = hv.ctx.now_ns();
        let dirty = session.fetch_dirty(hv, kernel)?;
        let t_collect = hv.ctx.now_ns();
        let written = self.write_pages(hv, kernel, pid, &dirty, &mut img)?;
        let t_write = hv.ctx.now_ns();

        // Phase attribution per technique (see module docs): /proc's
        // interleaved walk counts as MW; the PML designs separate MD.
        let (md_ns, mw_ns) = if self.config.technique == Technique::Proc {
            (0, t_write - t0)
        } else {
            (t_collect - t0, t_write - t_collect)
        };
        Ok((
            img,
            DumpStats {
                init_ns: self.init_ns,
                md_ns,
                mw_ns,
                write_ns: t_write - t_collect,
                pages_written: written,
                total_ns: t_write - t0,
            },
        ))
    }

    /// Convenience: checkpoint everything currently resident (first/full
    /// checkpoint — every resident page is "dirty" relative to nothing).
    pub fn full_dump(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
    ) -> Result<(CheckpointImage, DumpStats), GuestError> {
        let mut img = CheckpointImage::new(false);
        img.vmas = Self::vma_records(kernel, pid)?;
        let mut all = DirtySet::new();
        for &p in kernel.process(pid)?.resident.keys() {
            all.insert_page(p);
        }
        let t0 = hv.ctx.now_ns();
        let written = self.write_pages(hv, kernel, pid, &all, &mut img)?;
        let t1 = hv.ctx.now_ns();
        // Reset the tracking round: subsequent dumps are incremental.
        let session = self.session.as_mut().expect("attach() first");
        let _ = session.fetch_dirty(hv, kernel)?;
        Ok((
            img,
            DumpStats {
                init_ns: self.init_ns,
                md_ns: 0,
                mw_ns: t1 - t0,
                write_ns: t1 - t0,
                pages_written: written,
                total_ns: t1 - t0,
            },
        ))
    }

    /// Detach: tear down the tracking session.
    pub fn detach(
        mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
    ) -> Result<(), GuestError> {
        if let Some(s) = self.session.take() {
            s.stop(hv, kernel)?;
        }
        Ok(())
    }
}
