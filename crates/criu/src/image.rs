//! Checkpoint image format.
//!
//! A compact binary format (magic + version + VMA table + page records),
//! mirroring CRIU's split between `mm.img` (VMA metadata) and `pages.img`
//! (page contents). Incremental checkpoints chain: a later image's pages
//! overlay an earlier one's at restore.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ooh_machine::{DirtyBitmap, Gva, GvaRange, PAGE_SIZE};
use std::collections::BTreeMap;

const MAGIC: u32 = 0x4F4F_4843; // "OOHC"
const VERSION: u16 = 2;

/// Metadata for one VMA (CRIU's vma_entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmaRecord {
    pub start: Gva,
    pub pages: u64,
    pub writable: bool,
}

impl VmaRecord {
    pub fn range(&self) -> GvaRange {
        GvaRange::new(self.start, self.pages)
    }
}

/// One checkpoint image (full or incremental).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointImage {
    /// VMA table (present in full images; incremental images may reuse the
    /// parent's).
    pub vmas: Vec<VmaRecord>,
    /// Page contents, keyed by GVA page number.
    pub pages: BTreeMap<u64, Box<[u8]>>,
    /// Pages that were resident but entirely zero: recorded by number only
    /// (CRIU's zero-page deduplication; restore recreates them by demand
    /// paging, which hands out zeroed frames). Word-packed: one bit per
    /// page, iterated ascending — the wire format is unchanged.
    pub zero_pages: DirtyBitmap,
    /// Is this an incremental (pre-dump) image?
    pub incremental: bool,
}

#[derive(Debug, PartialEq, Eq)]
pub enum ImageError {
    BadMagic(u32),
    BadVersion(u16),
    Truncated,
    BadPageSize(usize),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::BadMagic(m) => write!(f, "bad image magic {m:#x}"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::Truncated => write!(f, "truncated image"),
            ImageError::BadPageSize(n) => write!(f, "page record of {n} bytes"),
        }
    }
}

impl std::error::Error for ImageError {}

impl CheckpointImage {
    pub fn new(incremental: bool) -> Self {
        Self {
            incremental,
            ..Self::default()
        }
    }

    /// Record one page's contents. All-zero pages are deduplicated into
    /// [`zero_pages`](Self::zero_pages) and cost 8 bytes on the wire instead
    /// of 4 KiB.
    pub fn put_page(&mut self, gva_page: u64, data: &[u8]) {
        debug_assert_eq!(data.len(), PAGE_SIZE as usize);
        if data.iter().all(|&b| b == 0) {
            self.pages.remove(&gva_page);
            self.zero_pages.insert(gva_page);
        } else {
            self.zero_pages.remove(gva_page);
            self.pages.insert(gva_page, data.into());
        }
    }

    /// Pages recorded, content-bearing plus zero.
    pub fn page_count(&self) -> usize {
        self.pages.len() + self.zero_pages.len()
    }

    /// Total serialized size estimate in bytes.
    pub fn byte_size(&self) -> usize {
        40 + self.vmas.len() * 24
            + self.pages.len() * (8 + PAGE_SIZE as usize)
            + self.zero_pages.len() * 8
    }

    /// Overlay `newer` on top of this image (pre-copy chains).
    pub fn apply(&mut self, newer: &CheckpointImage) {
        for (page, data) in &newer.pages {
            self.zero_pages.remove(*page);
            self.pages.insert(*page, data.clone());
        }
        for page in newer.zero_pages.pages() {
            self.pages.remove(&page);
            self.zero_pages.insert(page);
        }
        if !newer.vmas.is_empty() {
            self.vmas = newer.vmas.clone();
        }
    }

    /// Serialize to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.byte_size());
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        buf.put_u8(self.incremental as u8);
        buf.put_u8(0); // pad
        buf.put_u32(self.vmas.len() as u32);
        buf.put_u64(self.pages.len() as u64);
        buf.put_u64(self.zero_pages.len() as u64);
        for v in &self.vmas {
            buf.put_u64(v.start.raw());
            buf.put_u64(v.pages);
            buf.put_u8(v.writable as u8);
            buf.put_bytes(0, 7);
        }
        for (page, data) in &self.pages {
            buf.put_u64(*page);
            buf.put_slice(data);
        }
        for page in self.zero_pages.pages() {
            buf.put_u64(page);
        }
        buf.freeze()
    }

    /// Parse the wire format.
    pub fn decode(mut buf: Bytes) -> Result<Self, ImageError> {
        if buf.remaining() < 28 {
            return Err(ImageError::Truncated);
        }
        let magic = buf.get_u32();
        if magic != MAGIC {
            return Err(ImageError::BadMagic(magic));
        }
        let version = buf.get_u16();
        if version != VERSION {
            return Err(ImageError::BadVersion(version));
        }
        let incremental = buf.get_u8() != 0;
        let _pad = buf.get_u8();
        let n_vmas = buf.get_u32() as usize;
        let n_pages = buf.get_u64() as usize;
        let n_zero = buf.get_u64() as usize;

        let mut img = CheckpointImage::new(incremental);
        for _ in 0..n_vmas {
            if buf.remaining() < 24 {
                return Err(ImageError::Truncated);
            }
            let start = Gva(buf.get_u64());
            let pages = buf.get_u64();
            let writable = buf.get_u8() != 0;
            buf.advance(7);
            img.vmas.push(VmaRecord {
                start,
                pages,
                writable,
            });
        }
        for _ in 0..n_pages {
            if buf.remaining() < 8 + PAGE_SIZE as usize {
                return Err(ImageError::Truncated);
            }
            let page = buf.get_u64();
            let data = buf.copy_to_bytes(PAGE_SIZE as usize);
            img.pages.insert(page, data.to_vec().into_boxed_slice());
        }
        for _ in 0..n_zero {
            if buf.remaining() < 8 {
                return Err(ImageError::Truncated);
            }
            img.zero_pages.insert(buf.get_u64());
        }
        Ok(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE as usize]
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut img = CheckpointImage::new(false);
        img.vmas.push(VmaRecord {
            start: Gva(0x7f00_0000_0000),
            pages: 16,
            writable: true,
        });
        img.vmas.push(VmaRecord {
            start: Gva(0x7f00_1000_0000),
            pages: 2,
            writable: false,
        });
        img.put_page(0x7f000, &page_of(0xAB));
        img.put_page(0x7f001, &page_of(0xCD));
        let decoded = CheckpointImage::decode(img.encode()).unwrap();
        assert_eq!(decoded, img);
    }

    #[test]
    fn empty_image_roundtrip() {
        let img = CheckpointImage::new(true);
        let decoded = CheckpointImage::decode(img.encode()).unwrap();
        assert_eq!(decoded, img);
        assert!(decoded.incremental);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u32(0xDEADBEEF);
        raw.put_bytes(0, 24);
        assert!(matches!(
            CheckpointImage::decode(raw.freeze()),
            Err(ImageError::BadMagic(0xDEADBEEF))
        ));
    }

    #[test]
    fn truncated_rejected() {
        let mut img = CheckpointImage::new(false);
        img.put_page(1, &page_of(1));
        let full = img.encode();
        let cut = full.slice(0..full.len() - 100);
        assert_eq!(CheckpointImage::decode(cut), Err(ImageError::Truncated));
    }

    #[test]
    fn zero_pages_dedup_and_roundtrip() {
        let mut img = CheckpointImage::new(false);
        img.put_page(5, &page_of(0)); // all-zero: deduplicated
        img.put_page(6, &page_of(0x7E));
        assert_eq!(img.pages.len(), 1);
        assert_eq!(img.zero_pages.len(), 1);
        assert_eq!(img.page_count(), 2);
        // A zero page costs 8 wire bytes, not 4 KiB.
        assert!(img.byte_size() < 2 * 4096);
        let decoded = CheckpointImage::decode(img.encode()).unwrap();
        assert_eq!(decoded, img);
        // Rewriting a zero page with content moves it between the sets.
        img.put_page(5, &page_of(1));
        assert!(img.zero_pages.is_empty());
        assert_eq!(img.pages.len(), 2);
        // And back.
        img.put_page(6, &page_of(0));
        assert_eq!(img.zero_pages.len(), 1);
        assert_eq!(img.pages.len(), 1);
    }

    #[test]
    fn apply_moves_pages_between_zero_and_content() {
        let mut base = CheckpointImage::new(false);
        base.put_page(1, &page_of(0x11)); // content
        base.put_page(2, &page_of(0)); // zero
        let mut delta = CheckpointImage::new(true);
        delta.put_page(1, &page_of(0)); // content -> zero
        delta.put_page(2, &page_of(0x22)); // zero -> content
        base.apply(&delta);
        assert!(base.zero_pages.contains(1));
        assert_eq!(base.pages[&2][0], 0x22);
        assert_eq!(base.page_count(), 2);
    }

    #[test]
    fn apply_overlays_pages() {
        let mut base = CheckpointImage::new(false);
        base.put_page(1, &page_of(0x11));
        base.put_page(2, &page_of(0x22));
        let mut delta = CheckpointImage::new(true);
        delta.put_page(2, &page_of(0xFF));
        delta.put_page(3, &page_of(0x33));
        base.apply(&delta);
        assert_eq!(base.page_count(), 3);
        assert_eq!(base.pages[&2][0], 0xFF);
        assert_eq!(base.pages[&1][0], 0x11);
    }
}
