//! # ooh-criu — CRIU-style checkpoint/restore on OoH dirty-page tracking
//!
//! An iterative checkpointer with the same phase structure the paper
//! patches in CRIU:
//!
//! * **attach** — initialize the dirty-page tracking technique (with OoH,
//!   no `clear_refs` pause: PML activation is immediate);
//! * **pre-dump** rounds — collect + write dirty pages while the
//!   application runs (pre-copy);
//! * **final dump** — pause, write the remaining dirty set and VMA
//!   metadata;
//! * **restore** — rebuild the process and verify byte-identity.
//!
//! The MD (collect) and MW (write) phases are timed separately per
//! technique, reproducing Figures 7–9.

#![forbid(unsafe_code)]

pub mod dump;
pub mod image;
pub mod restore;
pub mod snapshot_chain;

pub use dump::{Criu, CriuConfig, DumpStats};
pub use image::{CheckpointImage, ImageError, VmaRecord};
pub use restore::{restore, verify};
pub use snapshot_chain::{ChainError, ChainLayer, LayerKind, SnapshotChain};

#[cfg(test)]
mod tests {
    use super::*;
    use ooh_core::Technique;
    use ooh_guest::{GuestKernel, Pid, VmaKind};
    use ooh_hypervisor::Hypervisor;
    use ooh_machine::{GvaRange, MachineConfig, PAGE_SIZE};
    use ooh_sim::{Lane, SimCtx};

    fn boot(pages: u64) -> (Hypervisor, GuestKernel, Pid, GvaRange) {
        let mut hv = Hypervisor::new(
            MachineConfig::epml(128 * 1024 * PAGE_SIZE),
            SimCtx::new(),
        );
        let vm = hv.create_vm(32 * 1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        let region = kernel.mmap(pid, pages, true, VmaKind::Anon).unwrap();
        for (i, g) in region.iter_pages().enumerate().collect::<Vec<_>>() {
            kernel
                .write_u64(&mut hv, pid, g, 0x1111_0000 + i as u64, Lane::Tracked)
                .unwrap();
        }
        (hv, kernel, pid, region)
    }

    #[test]
    fn full_checkpoint_then_restore_is_byte_identical() {
        for technique in Technique::ALL {
            let (mut hv, mut kernel, pid, _r) = boot(32);
            let mut criu =
                Criu::attach(&mut hv, &mut kernel, pid, CriuConfig::new(technique)).unwrap();
            let (img, stats) = criu.full_dump(&mut hv, &mut kernel, pid).unwrap();
            assert_eq!(stats.pages_written, 32, "{}", technique.name());
            criu.detach(&mut hv, &mut kernel).unwrap();

            // Wire round trip.
            let img = CheckpointImage::decode(img.encode()).unwrap();
            let new_pid = restore(&mut hv, &mut kernel, &img).unwrap();
            assert_ne!(new_pid, pid);
            let checked = verify(&mut hv, &mut kernel, new_pid, &img).unwrap();
            assert_eq!(checked, 32);
        }
    }

    #[test]
    fn incremental_dump_captures_only_new_writes() {
        for technique in Technique::ALL {
            let (mut hv, mut kernel, pid, region) = boot(16);
            let mut criu =
                Criu::attach(&mut hv, &mut kernel, pid, CriuConfig::new(technique)).unwrap();
            let (mut base, _) = criu.full_dump(&mut hv, &mut kernel, pid).unwrap();

            // Mutate 3 pages.
            for i in [2u64, 5, 11] {
                kernel
                    .write_u64(
                        &mut hv,
                        pid,
                        region.start.add(i * PAGE_SIZE),
                        0xAAAA_0000 + i,
                        Lane::Tracked,
                    )
                    .unwrap();
            }
            let (delta, stats) = criu.final_dump(&mut hv, &mut kernel, pid).unwrap();
            assert_eq!(
                stats.pages_written,
                3,
                "{}: expected exactly the 3 rewritten pages",
                technique.name()
            );
            criu.detach(&mut hv, &mut kernel).unwrap();

            base.apply(&delta);
            let new_pid = restore(&mut hv, &mut kernel, &base).unwrap();
            let checked = verify(&mut hv, &mut kernel, new_pid, &base).unwrap();
            assert_eq!(checked, 16);
            // And the live process matches the mutated original exactly.
            for i in 0..16u64 {
                let want = kernel
                    .read_u64(&mut hv, pid, region.start.add(i * PAGE_SIZE), Lane::Tracker)
                    .unwrap();
                let got = kernel
                    .read_u64(&mut hv, new_pid, region.start.add(i * PAGE_SIZE), Lane::Tracker)
                    .unwrap();
                assert_eq!(got, want, "{}: page {i}", technique.name());
            }
        }
    }

    /// Incremental checkpoints over a 2 MiB mapping. With split-on-dirty
    /// (or a 4K-granular technique, which demotes at attach), the delta is
    /// exactly the rewritten pages; a keep-huge PML technique must instead
    /// dump the full 512-page range its region-wide dirty bit vouches for —
    /// imprecise, but restore stays byte-identical either way.
    #[test]
    fn incremental_dump_with_huge_mappings() {
        use ooh_machine::HUGE_PAGE_PAGES;
        for (technique, split, expect_delta) in [
            (Technique::Epml, true, 3),
            (Technique::Spml, true, 3),
            (Technique::Proc, false, 3),
            (Technique::Ufd, false, 3),
            (Technique::Epml, false, HUGE_PAGE_PAGES),
            (Technique::Spml, false, HUGE_PAGE_PAGES),
        ] {
            let mut hv = Hypervisor::new(
                MachineConfig::epml(128 * 1024 * PAGE_SIZE),
                SimCtx::new(),
            );
            let vm = hv.create_vm(32 * 1024 * PAGE_SIZE, 1).unwrap();
            hv.set_split_on_dirty(vm, split);
            let mut kernel = GuestKernel::new(vm);
            kernel.huge_policy = true;
            let pid = kernel.spawn(&mut hv).unwrap();
            let region = kernel
                .mmap(pid, HUGE_PAGE_PAGES, true, VmaKind::Anon)
                .unwrap();
            for (i, g) in region.iter_pages().enumerate().collect::<Vec<_>>() {
                kernel
                    .write_u64(&mut hv, pid, g, 0x2222_0000 + i as u64, Lane::Tracked)
                    .unwrap();
            }

            let mut criu =
                Criu::attach(&mut hv, &mut kernel, pid, CriuConfig::new(technique)).unwrap();
            let (mut base, full) = criu.full_dump(&mut hv, &mut kernel, pid).unwrap();
            assert_eq!(full.pages_written, HUGE_PAGE_PAGES, "{}", technique.name());

            for i in [7u64, 130, 509] {
                kernel
                    .write_u64(
                        &mut hv,
                        pid,
                        region.start.add(i * PAGE_SIZE),
                        0xBBBB_0000 + i,
                        Lane::Tracked,
                    )
                    .unwrap();
            }
            let (delta, stats) = criu.final_dump(&mut hv, &mut kernel, pid).unwrap();
            assert_eq!(
                stats.pages_written,
                expect_delta,
                "{} (split_on_dirty={split})",
                technique.name()
            );
            criu.detach(&mut hv, &mut kernel).unwrap();

            base.apply(&delta);
            let new_pid = restore(&mut hv, &mut kernel, &base).unwrap();
            let checked = verify(&mut hv, &mut kernel, new_pid, &base).unwrap();
            assert_eq!(checked, HUGE_PAGE_PAGES);
            for i in [0u64, 7, 130, 509, 511] {
                let gva = region.start.add(i * PAGE_SIZE);
                let want = kernel.read_u64(&mut hv, pid, gva, Lane::Tracker).unwrap();
                let got = kernel.read_u64(&mut hv, new_pid, gva, Lane::Tracker).unwrap();
                assert_eq!(got, want, "{}: page {i}", technique.name());
            }
        }
    }

    #[test]
    fn precopy_chain_converges() {
        let (mut hv, mut kernel, pid, region) = boot(64);
        let mut criu =
            Criu::attach(&mut hv, &mut kernel, pid, CriuConfig::new(Technique::Epml)).unwrap();
        let (mut base, _) = criu.full_dump(&mut hv, &mut kernel, pid).unwrap();

        // Three rounds of app activity + pre-dump, shrinking working set.
        for (round, writes) in [(0u64, 32u64), (1, 8), (2, 2)] {
            for i in 0..writes {
                kernel
                    .write_u64(
                        &mut hv,
                        pid,
                        region.start.add(i * PAGE_SIZE),
                        round << 32 | i,
                        Lane::Tracked,
                    )
                    .unwrap();
            }
            let (delta, stats) = criu.pre_dump(&mut hv, &mut kernel, pid).unwrap();
            assert_eq!(stats.pages_written, writes);
            assert!(delta.incremental);
            base.apply(&delta);
        }
        let (fin, stats) = criu.final_dump(&mut hv, &mut kernel, pid).unwrap();
        assert_eq!(stats.pages_written, 0, "quiescent app: empty final dump");
        base.apply(&fin);
        criu.detach(&mut hv, &mut kernel).unwrap();

        let new_pid = restore(&mut hv, &mut kernel, &base).unwrap();
        verify(&mut hv, &mut kernel, new_pid, &base).unwrap();
    }

    #[test]
    fn md_mw_phase_attribution_differs_by_technique() {
        // /proc folds collection into MW; SPML has a heavy MD (revmap).
        let (mut hv, mut kernel, pid, region) = boot(64);
        let mut criu =
            Criu::attach(&mut hv, &mut kernel, pid, CriuConfig::new(Technique::Proc)).unwrap();
        for i in 0..8u64 {
            kernel
                .write_u64(&mut hv, pid, region.start.add(i * PAGE_SIZE), 9, Lane::Tracked)
                .unwrap();
        }
        let (_, proc_stats) = criu.final_dump(&mut hv, &mut kernel, pid).unwrap();
        criu.detach(&mut hv, &mut kernel).unwrap();
        assert_eq!(proc_stats.md_ns, 0);
        assert!(proc_stats.mw_ns > 0);

        let (mut hv, mut kernel, pid, region) = boot(64);
        let mut criu =
            Criu::attach(&mut hv, &mut kernel, pid, CriuConfig::new(Technique::Spml)).unwrap();
        for i in 0..8u64 {
            kernel
                .write_u64(&mut hv, pid, region.start.add(i * PAGE_SIZE), 9, Lane::Tracked)
                .unwrap();
        }
        let (_, spml_stats) = criu.final_dump(&mut hv, &mut kernel, pid).unwrap();
        criu.detach(&mut hv, &mut kernel).unwrap();
        assert!(spml_stats.md_ns > 0, "SPML MD holds the reverse mapping");
        assert!(
            spml_stats.md_ns > spml_stats.mw_ns,
            "revmap dominates batched writes for a small dirty set"
        );
    }

    #[test]
    fn restore_rejects_nothing_but_matches_readonly_vmas() {
        let (mut hv, mut kernel, pid, _r) = boot(4);
        // Add a read-only VMA with content (e.g. mapped file image).
        let ro = kernel.mmap(pid, 2, false, VmaKind::Anon).unwrap();
        kernel.read_u64(&mut hv, pid, ro.start, Lane::Tracked).unwrap(); // fault in

        let mut criu =
            Criu::attach(&mut hv, &mut kernel, pid, CriuConfig::new(Technique::Epml)).unwrap();
        let (img, _) = criu.full_dump(&mut hv, &mut kernel, pid).unwrap();
        criu.detach(&mut hv, &mut kernel).unwrap();

        let new_pid = restore(&mut hv, &mut kernel, &img).unwrap();
        verify(&mut hv, &mut kernel, new_pid, &img).unwrap();
        // The restored read-only VMA must still reject writes.
        let r = kernel.write_u64(&mut hv, new_pid, ro.start, 1, Lane::Tracked);
        assert!(r.is_err());
    }
}
