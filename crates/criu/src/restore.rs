//! Restore side: rebuild a process from a checkpoint image.

use crate::image::CheckpointImage;
use ooh_guest::{GuestError, GuestKernel, Pid, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::Gva;
use ooh_sim::Lane;

/// Restore `image` into a brand-new process. Returns its PID.
///
/// VMAs are recreated at their recorded addresses (our address-space layout
/// is deterministic, so re-reserving in recorded order lands identically —
/// asserted), then page contents are written through the normal guest write
/// path (demand-faulting the pages in, exactly like CRIU's restorer).
pub fn restore(
    hv: &mut Hypervisor,
    kernel: &mut GuestKernel,
    image: &CheckpointImage,
) -> Result<Pid, GuestError> {
    let pid = kernel.spawn(hv)?;
    for vma in &image.vmas {
        let got = kernel.mmap(pid, vma.pages, vma.writable, VmaKind::Anon)?;
        assert_eq!(
            got.start, vma.start,
            "deterministic layout must reproduce recorded VMA addresses"
        );
    }
    // Zero pages: demand-fault them in (the kernel hands out zeroed
    // frames), restoring residency without shipping 4 KiB of zeros.
    for page in image.zero_pages.pages() {
        kernel.read_u64(hv, pid, Gva::from_page(page), Lane::Tracker)?;
    }
    for (&page, data) in &image.pages {
        let gva = Gva::from_page(page);
        // Restoring into a read-only VMA still works: write the backing
        // page via kernel privilege after demand-faulting it in.
        let writable = image
            .vmas
            .iter()
            .find(|v| v.range().contains(gva))
            .map(|v| v.writable)
            .unwrap_or(true);
        if writable {
            kernel.write_bytes(hv, pid, gva, data, Lane::Tracker)?;
        } else {
            // Fault the page in with a read, then write the frame directly.
            kernel.read_u64(hv, pid, gva, Lane::Tracker)?;
            let gpa_page = kernel.process(pid)?.resident[&gva.page()];
            let hpa = hv
                .gpa_to_hpa(kernel.vm, ooh_machine::Gpa::from_page(gpa_page))?
                .expect("just faulted in");
            let mut frame = [0u8; ooh_machine::PAGE_SIZE as usize];
            frame.copy_from_slice(data);
            hv.machine.phys.set_frame_bytes(hpa, &frame)?;
        }
    }
    Ok(pid)
}

/// Compare a live process against an image: every recorded page must match
/// the process's memory byte-for-byte. Returns the number of pages checked.
pub fn verify(
    hv: &mut Hypervisor,
    kernel: &mut GuestKernel,
    pid: Pid,
    image: &CheckpointImage,
) -> Result<u64, GuestError> {
    let mut checked = 0;
    // Deduplicated zero pages must read back as zeros.
    for page in image.zero_pages.pages() {
        let gva = Gva::from_page(page);
        let mut buf = vec![0u8; ooh_machine::PAGE_SIZE as usize];
        kernel.read_bytes(hv, pid, gva, &mut buf, Lane::Tracker)?;
        if buf.iter().any(|&b| b != 0) {
            return Err(GuestError::Segfault { pid, gva });
        }
        checked += 1;
    }
    for (&page, data) in &image.pages {
        let gva = Gva::from_page(page);
        let mut buf = vec![0u8; ooh_machine::PAGE_SIZE as usize];
        kernel.read_bytes(hv, pid, gva, &mut buf, Lane::Tracker)?;
        if buf.as_slice() != &data[..] {
            return Err(GuestError::Segfault { pid, gva });
        }
        checked += 1;
    }
    Ok(checked)
}
