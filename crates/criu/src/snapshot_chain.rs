//! Incremental diff-snapshot chains — the fleet checkpoint format.
//!
//! A [`SnapshotChain`] is one **base** layer (a full checkpoint of every
//! resident page) followed by zero or more **diff** layers, each carrying
//! only the pages dirtied since the previous layer — Firecracker's
//! `track_dirty_pages` diff-snapshot model, for our process-level images.
//! Restore applies the base and replays the diffs in order; adjacent
//! layers can be *compacted* (merged) without changing the restored state.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! chain   := magic:u32 "OOHN" | version:u16 | n_layers:u16
//!            { layer_len:u64 | layer }*
//! layer   := seq:u32 | kind:u8 (0 base, 1 diff) | pad:u8
//!          | n_vmas:u32
//!          | { start:u64 | pages:u64 | writable:u8 | pad:[u8;7] }*
//!          | content_bitmap | zero_bitmap
//!          | { page_bytes:[u8;4096] }*          (ascending page order)
//! bitmap  := n_chunks:u32
//!          | { chunk_idx:u64 | presence:u64 | word:u64 * popcount }*
//! ```
//!
//! Page *numbers* never appear next to page *contents*: the word-packed
//! `content_bitmap` is the manifest, and the payload is the content pages'
//! bytes in ascending page order. A diff layer therefore costs
//! `O(words)` of manifest plus exactly its dirty payload; all-zero pages
//! ride in `zero_bitmap` for 0 payload bytes (CRIU zero-page dedup).
//!
//! ## Invariants (checked by [`SnapshotChain::validate`] and on decode)
//!
//! * layer 0 is the base (kind 0, non-incremental); layers 1.. are diffs;
//! * `seq` equals the layer's index (re-stamped by compaction);
//! * within a layer, the content and zero bitmaps are **disjoint** — one
//!   page has one kind of record. Across layers the same page may recur:
//!   later layers **supersede** earlier ones at restore;
//! * bitmaps are canonical: chunk indices strictly ascending, no zero
//!   words stored — so equal sets encode to equal bytes, which is what the
//!   fleet determinism tests byte-diff.

use crate::image::{CheckpointImage, VmaRecord};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ooh_guest::{GuestError, GuestKernel, Pid};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{DirtyBitmap, Gva, PAGE_SIZE};

const CHAIN_MAGIC: u32 = 0x4F4F_484E; // "OOHN"
const CHAIN_VERSION: u16 = 1;
const KIND_BASE: u8 = 0;
const KIND_DIFF: u8 = 1;

/// What a chain layer holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Full image: every page resident at snapshot time.
    Base,
    /// Incremental image: only pages dirtied since the previous layer.
    Diff,
}

/// One layer of a snapshot chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLayer {
    /// Position in the chain (0 = base). Re-stamped by compaction.
    pub seq: u32,
    pub kind: LayerKind,
    /// The pages (content + zero-deduplicated) and VMA table.
    pub image: CheckpointImage,
}

impl ChainLayer {
    /// Word-packed manifest of every page this layer records (content and
    /// zero pages alike).
    pub fn manifest(&self) -> DirtyBitmap {
        let mut m = self.content_bitmap();
        m.merge(&self.image.zero_pages);
        m
    }

    /// Word-packed bitmap of the content-bearing pages.
    pub fn content_bitmap(&self) -> DirtyBitmap {
        self.image.pages.keys().copied().collect()
    }

    /// Pages recorded by this layer (content + zero).
    pub fn page_count(&self) -> u64 {
        self.image.page_count() as u64
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32(self.seq);
        buf.put_u8(match self.kind {
            LayerKind::Base => KIND_BASE,
            LayerKind::Diff => KIND_DIFF,
        });
        buf.put_u8(0); // pad
        buf.put_u32(self.image.vmas.len() as u32);
        for v in &self.image.vmas {
            buf.put_u64(v.start.raw());
            buf.put_u64(v.pages);
            buf.put_u8(v.writable as u8);
            buf.put_bytes(0, 7);
        }
        encode_bitmap(&self.content_bitmap(), buf);
        encode_bitmap(&self.image.zero_pages, buf);
        for data in self.image.pages.values() {
            buf.put_slice(data);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, ChainError> {
        if buf.remaining() < 10 {
            return Err(ChainError::Truncated);
        }
        let seq = buf.get_u32();
        let kind = match buf.get_u8() {
            KIND_BASE => LayerKind::Base,
            KIND_DIFF => LayerKind::Diff,
            k => return Err(ChainError::BadLayerKind(k)),
        };
        let _pad = buf.get_u8();
        let n_vmas = buf.get_u32() as usize;
        let mut image = CheckpointImage::new(kind == LayerKind::Diff);
        for _ in 0..n_vmas {
            if buf.remaining() < 24 {
                return Err(ChainError::Truncated);
            }
            let start = Gva(buf.get_u64());
            let pages = buf.get_u64();
            let writable = buf.get_u8() != 0;
            buf.advance(7);
            image.vmas.push(VmaRecord {
                start,
                pages,
                writable,
            });
        }
        let content = decode_bitmap(buf)?;
        let zero = decode_bitmap(buf)?;
        if content.intersects(&zero) {
            let page = content
                .pages()
                .find(|&p| zero.contains(p))
                .unwrap_or_default();
            return Err(ChainError::ZeroContentOverlap { seq, page });
        }
        for page in content.pages() {
            if buf.remaining() < PAGE_SIZE as usize {
                return Err(ChainError::Truncated);
            }
            let data = buf.copy_to_bytes(PAGE_SIZE as usize);
            image.pages.insert(page, data.to_vec().into_boxed_slice());
        }
        image.zero_pages = zero;
        Ok(ChainLayer { seq, kind, image })
    }

    fn validate(&self, index: usize) -> Result<(), ChainError> {
        if self.seq as usize != index {
            return Err(ChainError::SeqMismatch {
                index,
                seq: self.seq,
            });
        }
        let expect_kind = if index == 0 {
            LayerKind::Base
        } else {
            LayerKind::Diff
        };
        if self.kind != expect_kind {
            return Err(ChainError::BaseNotFirst { index });
        }
        if self.image.incremental != (self.kind == LayerKind::Diff) {
            return Err(ChainError::BaseNotFirst { index });
        }
        let content = self.content_bitmap();
        if content.intersects(&self.image.zero_pages) {
            let page = content
                .pages()
                .find(|&p| self.image.zero_pages.contains(p))
                .unwrap_or_default();
            return Err(ChainError::ZeroContentOverlap {
                seq: self.seq,
                page,
            });
        }
        Ok(())
    }
}

/// Encode a word-packed bitmap in canonical form: chunk indices ascending,
/// a presence mask per chunk, only nonzero words stored.
fn encode_bitmap(bitmap: &DirtyBitmap, buf: &mut BytesMut) {
    let n_chunks = bitmap.chunk_iter().count() as u32;
    buf.put_u32(n_chunks);
    for (ci, words) in bitmap.chunk_iter() {
        let mut presence = 0u64;
        for (wi, &w) in words.iter().enumerate() {
            if w != 0 {
                presence |= 1u64 << wi;
            }
        }
        buf.put_u64(ci);
        buf.put_u64(presence);
        for &w in words.iter().filter(|&&w| w != 0) {
            buf.put_u64(w);
        }
    }
}

fn decode_bitmap(buf: &mut Bytes) -> Result<DirtyBitmap, ChainError> {
    if buf.remaining() < 4 {
        return Err(ChainError::Truncated);
    }
    let n_chunks = buf.get_u32();
    let mut out = DirtyBitmap::new();
    let mut last_chunk: Option<u64> = None;
    for _ in 0..n_chunks {
        if buf.remaining() < 16 {
            return Err(ChainError::Truncated);
        }
        let ci = buf.get_u64();
        if last_chunk.is_some_and(|prev| ci <= prev) {
            return Err(ChainError::NonCanonicalBitmap);
        }
        last_chunk = Some(ci);
        let presence = buf.get_u64();
        if presence == 0 {
            return Err(ChainError::NonCanonicalBitmap); // empty chunk stored
        }
        for wi in 0..64 {
            if presence & (1u64 << wi) == 0 {
                continue;
            }
            if buf.remaining() < 8 {
                return Err(ChainError::Truncated);
            }
            let w = buf.get_u64();
            if w == 0 {
                return Err(ChainError::NonCanonicalBitmap); // zero word stored
            }
            out.insert_word(ci, wi, w);
        }
    }
    Ok(out)
}

/// Chain format / integrity errors.
#[derive(Debug, PartialEq, Eq)]
pub enum ChainError {
    BadMagic(u32),
    BadVersion(u16),
    Truncated,
    BadLayerKind(u8),
    /// A page is recorded both as content and as zero in one layer.
    ZeroContentOverlap { seq: u32, page: u64 },
    /// Layer `seq` does not match its position in the chain.
    SeqMismatch { index: usize, seq: u32 },
    /// A base layer after index 0, or a diff layer at index 0.
    BaseNotFirst { index: usize },
    /// Bitmap encoding broke canonical form (unsorted chunks, zero words).
    NonCanonicalBitmap,
    /// Compaction range out of bounds or reversed.
    BadRange { from: usize, to: usize, len: usize },
    Empty,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::BadMagic(m) => write!(f, "bad chain magic {m:#x}"),
            ChainError::BadVersion(v) => write!(f, "unsupported chain version {v}"),
            ChainError::Truncated => write!(f, "truncated chain"),
            ChainError::BadLayerKind(k) => write!(f, "unknown layer kind {k}"),
            ChainError::ZeroContentOverlap { seq, page } => {
                write!(f, "layer {seq}: page {page:#x} is both content and zero")
            }
            ChainError::SeqMismatch { index, seq } => {
                write!(f, "layer at index {index} carries seq {seq}")
            }
            ChainError::BaseNotFirst { index } => {
                write!(f, "layer kind/position mismatch at index {index}")
            }
            ChainError::NonCanonicalBitmap => write!(f, "non-canonical bitmap encoding"),
            ChainError::BadRange { from, to, len } => {
                write!(f, "compaction range {from}..={to} invalid for {len} layers")
            }
            ChainError::Empty => write!(f, "empty chain"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A base image plus ordered incremental diffs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotChain {
    layers: Vec<ChainLayer>,
}

impl SnapshotChain {
    /// Start a chain from a full (base) checkpoint image.
    pub fn new(mut base: CheckpointImage) -> Self {
        base.incremental = false;
        Self {
            layers: vec![ChainLayer {
                seq: 0,
                kind: LayerKind::Base,
                image: base,
            }],
        }
    }

    /// Append a diff layer holding the pages dirtied since the previous
    /// layer.
    pub fn push_diff(&mut self, mut diff: CheckpointImage) {
        diff.incremental = true;
        self.layers.push(ChainLayer {
            seq: self.layers.len() as u32,
            kind: LayerKind::Diff,
            image: diff,
        });
    }

    pub fn layers(&self) -> &[ChainLayer] {
        &self.layers
    }

    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total page records across all layers — what the chain *shipped*.
    /// Compare with `layers × resident` for the repeated-full-snapshot cost.
    pub fn pages_shipped(&self) -> u64 {
        self.layers.iter().map(ChainLayer::page_count).sum()
    }

    /// Check every structural invariant (see module docs).
    pub fn validate(&self) -> Result<(), ChainError> {
        if self.layers.is_empty() {
            return Err(ChainError::Empty);
        }
        for (i, layer) in self.layers.iter().enumerate() {
            layer.validate(i)?;
        }
        Ok(())
    }

    /// Apply the base and replay the diffs in order: the single full image
    /// the chain denotes. Restoring `flatten()` is the chain's semantics.
    pub fn flatten(&self) -> CheckpointImage {
        let mut img = self.layers[0].image.clone();
        for layer in &self.layers[1..] {
            img.apply(&layer.image);
        }
        img
    }

    /// Merge the adjacent layers `from..=to` into one. The flattened image
    /// — and therefore the restored state — is unchanged; only the layer
    /// structure (and the pages shipped, for future transfers) changes.
    /// Merging a range that starts at 0 produces a new base.
    pub fn compact(&mut self, from: usize, to: usize) -> Result<(), ChainError> {
        let len = self.layers.len();
        if from > to || to >= len {
            return Err(ChainError::BadRange { from, to, len });
        }
        if from == to {
            return Ok(()); // single layer: nothing to merge
        }
        let mut merged = self.layers[from].image.clone();
        for layer in &self.layers[from + 1..=to] {
            merged.apply(&layer.image);
        }
        merged.incremental = from != 0;
        let kind = if from == 0 {
            LayerKind::Base
        } else {
            LayerKind::Diff
        };
        self.layers.splice(
            from..=to,
            [ChainLayer {
                seq: 0, // re-stamped below
                kind,
                image: merged,
            }],
        );
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.seq = i as u32;
        }
        Ok(())
    }

    /// Compact the whole chain into a single base layer.
    pub fn compact_all(&mut self) -> Result<(), ChainError> {
        if self.layers.is_empty() {
            return Err(ChainError::Empty);
        }
        self.compact(0, self.layers.len() - 1)
    }

    /// Serialize the chain to the version-1 wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(CHAIN_MAGIC);
        buf.put_u16(CHAIN_VERSION);
        buf.put_u16(self.layers.len() as u16);
        for layer in &self.layers {
            let mut lbuf = BytesMut::new();
            layer.encode_into(&mut lbuf);
            buf.put_u64(lbuf.len() as u64);
            buf.put_slice(lbuf.as_ref());
        }
        buf.freeze()
    }

    /// Parse and structurally validate a version-1 chain.
    pub fn decode(mut buf: Bytes) -> Result<Self, ChainError> {
        if buf.remaining() < 8 {
            return Err(ChainError::Truncated);
        }
        let magic = buf.get_u32();
        if magic != CHAIN_MAGIC {
            return Err(ChainError::BadMagic(magic));
        }
        let version = buf.get_u16();
        if version != CHAIN_VERSION {
            return Err(ChainError::BadVersion(version));
        }
        let n_layers = buf.get_u16() as usize;
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            if buf.remaining() < 8 {
                return Err(ChainError::Truncated);
            }
            let len = buf.get_u64() as usize;
            if buf.remaining() < len {
                return Err(ChainError::Truncated);
            }
            let mut lbuf = buf.copy_to_bytes(len);
            layers.push(ChainLayer::decode(&mut lbuf)?);
        }
        let chain = Self { layers };
        chain.validate()?;
        Ok(chain)
    }

    /// Restore the chain into a brand-new process: flatten, then run the
    /// ordinary image restorer. Returns the new PID.
    pub fn restore(
        &self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
    ) -> Result<Pid, GuestError> {
        crate::restore::restore(hv, kernel, &self.flatten())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE as usize]
    }

    fn base_image(pages: u64) -> CheckpointImage {
        let mut img = CheckpointImage::new(false);
        img.vmas.push(VmaRecord {
            start: Gva::from_page(0x10),
            pages,
            writable: true,
        });
        for p in 0..pages {
            img.put_page(0x10 + p, &page_of(p as u8 + 1));
        }
        img
    }

    #[test]
    fn chain_roundtrip_is_identity() {
        let mut chain = SnapshotChain::new(base_image(6));
        let mut d1 = CheckpointImage::new(true);
        d1.put_page(0x11, &page_of(0xAA));
        d1.put_page(0x13, &page_of(0)); // content -> zero
        chain.push_diff(d1);
        let mut d2 = CheckpointImage::new(true);
        d2.put_page(0x13, &page_of(0xBB)); // zero -> content again
        chain.push_diff(d2);

        chain.validate().unwrap();
        let decoded = SnapshotChain::decode(chain.encode()).unwrap();
        assert_eq!(decoded, chain);
        assert_eq!(decoded.flatten(), chain.flatten());
    }

    #[test]
    fn flatten_applies_diffs_in_order() {
        let mut chain = SnapshotChain::new(base_image(4));
        let mut d1 = CheckpointImage::new(true);
        d1.put_page(0x11, &page_of(0x22));
        chain.push_diff(d1);
        let mut d2 = CheckpointImage::new(true);
        d2.put_page(0x11, &page_of(0x33)); // supersedes d1
        chain.push_diff(d2);
        let flat = chain.flatten();
        assert_eq!(flat.pages[&0x11][0], 0x33);
        assert_eq!(flat.pages[&0x10][0], 1);
        assert_eq!(flat.page_count(), 4);
    }

    #[test]
    fn compaction_preserves_flatten() {
        let mut chain = SnapshotChain::new(base_image(8));
        for i in 0..4u8 {
            let mut d = CheckpointImage::new(true);
            d.put_page(0x10 + u64::from(i % 3), &page_of(0x40 + i));
            d.put_page(0x14, &page_of(if i % 2 == 0 { 0 } else { 0x99 }));
            chain.push_diff(d);
        }
        let before = chain.flatten();
        let mut middle = chain.clone();
        middle.compact(1, 3).unwrap();
        assert_eq!(middle.len(), 3);
        assert_eq!(middle.flatten(), before);
        middle.validate().unwrap();

        let mut all = chain.clone();
        all.compact_all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all.flatten(), before);
        all.validate().unwrap();
        // A compacted-to-base chain IS its flatten.
        assert_eq!(all.layers()[0].image, before);
    }

    #[test]
    fn compact_range_checks() {
        let mut chain = SnapshotChain::new(base_image(2));
        chain.push_diff(CheckpointImage::new(true));
        assert!(matches!(
            chain.compact(1, 2),
            Err(ChainError::BadRange { .. })
        ));
        assert!(matches!(
            chain.compact(2, 1),
            Err(ChainError::BadRange { .. })
        ));
        chain.compact(1, 1).unwrap(); // no-op
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn validate_rejects_malformed_chains() {
        // Diff first.
        let mut chain = SnapshotChain::new(base_image(2));
        chain.layers[0].kind = LayerKind::Diff;
        chain.layers[0].image.incremental = true;
        assert!(matches!(
            chain.validate(),
            Err(ChainError::BaseNotFirst { index: 0 })
        ));

        // Seq gap.
        let mut chain = SnapshotChain::new(base_image(2));
        chain.push_diff(CheckpointImage::new(true));
        chain.layers[1].seq = 7;
        assert!(matches!(
            chain.validate(),
            Err(ChainError::SeqMismatch { index: 1, seq: 7 })
        ));

        // Content/zero overlap smuggled past put_page.
        let mut chain = SnapshotChain::new(base_image(2));
        let mut d = CheckpointImage::new(true);
        d.put_page(0x11, &page_of(0x55));
        d.zero_pages.insert(0x11);
        chain.push_diff(d);
        assert!(matches!(
            chain.validate(),
            Err(ChainError::ZeroContentOverlap { seq: 1, page: 0x11 })
        ));
    }

    #[test]
    fn decode_rejects_corruption() {
        let chain = SnapshotChain::new(base_image(3));
        let good = chain.encode();

        let mut bad_magic = BytesMut::new();
        bad_magic.put_u32(0xDEAD_BEEF);
        bad_magic.put_slice(&good.as_ref()[4..]);
        assert!(matches!(
            SnapshotChain::decode(bad_magic.freeze()),
            Err(ChainError::BadMagic(0xDEAD_BEEF))
        ));

        let cut = good.slice(0..good.len() - 17);
        assert!(matches!(
            SnapshotChain::decode(cut),
            Err(ChainError::Truncated)
        ));

        let mut bad_version = BytesMut::new();
        bad_version.put_u32(CHAIN_MAGIC);
        bad_version.put_u16(99);
        bad_version.put_slice(&good.as_ref()[6..]);
        assert!(matches!(
            SnapshotChain::decode(bad_version.freeze()),
            Err(ChainError::BadVersion(99))
        ));
    }

    #[test]
    fn diff_layers_are_cheap_on_the_wire() {
        let mut chain = SnapshotChain::new(base_image(64));
        let mut d = CheckpointImage::new(true);
        d.put_page(0x20, &page_of(0x77));
        d.put_page(0x21, &page_of(0)); // zero page: manifest-only
        chain.push_diff(d);
        let total = chain.encode().len();
        let base_only = SnapshotChain::new(base_image(64)).encode().len();
        let diff_cost = total - base_only;
        // One content page + manifests + VMA table, far under two raw pages.
        assert!(
            diff_cost < PAGE_SIZE as usize + 512,
            "diff layer cost {diff_cost} bytes"
        );
    }

    #[test]
    fn zero_word_bitmap_rejected() {
        // Hand-build a layer whose bitmap stores a zero word: decode must
        // reject non-canonical form.
        let mut buf = BytesMut::new();
        buf.put_u32(CHAIN_MAGIC);
        buf.put_u16(CHAIN_VERSION);
        buf.put_u16(1);
        let mut layer = BytesMut::new();
        layer.put_u32(0); // seq
        layer.put_u8(KIND_BASE);
        layer.put_u8(0);
        layer.put_u32(0); // no vmas
        layer.put_u32(1); // content bitmap: 1 chunk
        layer.put_u64(0); // chunk 0
        layer.put_u64(1); // presence: word 0
        layer.put_u64(0); // ...but the word is zero
        layer.put_u32(0); // zero bitmap: empty
        buf.put_u64(layer.len() as u64);
        buf.put_slice(layer.as_ref());
        assert_eq!(
            SnapshotChain::decode(buf.freeze()),
            Err(ChainError::NonCanonicalBitmap)
        );
    }
}
