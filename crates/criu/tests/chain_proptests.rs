//! Property tests for the snapshot-chain format
//! (`criu/src/snapshot_chain.rs`).
//!
//! Three properties back the fleet control plane's use of chains:
//!
//! 1. **Compaction is invisible** — merging any adjacent layer range
//!    leaves the flattened (restored) image unchanged, so a fleet can
//!    garbage-collect chain history at will;
//! 2. **Layers are disjoint-or-superseding** — within one layer a page is
//!    content *or* zero, never both, and across layers the *last* layer
//!    recording a page decides its restored bytes;
//! 3. **The wire format is lossless and canonical** — decode(encode(c))
//!    is identity, and equal chains produce byte-equal encodings (what
//!    the fleet determinism tests byte-diff).

use ooh_criu::{CheckpointImage, ChainError, LayerKind, SnapshotChain, VmaRecord};
use ooh_machine::{Gva, PAGE_SIZE};
use proptest::prelude::*;

const PAGES: u64 = 48;

fn page_of(byte: u8) -> Vec<u8> {
    vec![byte; PAGE_SIZE as usize]
}

/// Build a chain from a generated script: a full base over `PAGES` pages,
/// then one diff layer per op-group. A `(page, byte)` op writes `byte`
/// into `page` (byte 0 makes it an all-zero page, exercising zero-dedup).
fn build_chain(diff_scripts: &[Vec<(u64, u8)>]) -> SnapshotChain {
    let mut base = CheckpointImage::new(false);
    base.vmas.push(VmaRecord {
        start: Gva::from_page(0x100),
        pages: PAGES,
        writable: true,
    });
    for p in 0..PAGES {
        base.put_page(0x100 + p, &page_of((p % 7) as u8));
    }
    let mut chain = SnapshotChain::new(base);
    for script in diff_scripts {
        let mut diff = CheckpointImage::new(true);
        for &(page, byte) in script {
            diff.put_page(0x100 + page % PAGES, &page_of(byte));
        }
        chain.push_diff(diff);
    }
    chain
}

/// The obviously-correct reference model: a flat map from page number to
/// its latest bytes, replayed write by write.
fn reference_pages(diff_scripts: &[Vec<(u64, u8)>]) -> Vec<(u64, u8)> {
    let mut model: std::collections::BTreeMap<u64, u8> =
        (0..PAGES).map(|p| (0x100 + p, (p % 7) as u8)).collect();
    for script in diff_scripts {
        for &(page, byte) in script {
            model.insert(0x100 + page % PAGES, byte);
        }
    }
    model.into_iter().collect()
}

fn assert_image_matches_model(
    img: &CheckpointImage,
    model: &[(u64, u8)],
) -> Result<(), String> {
    prop_assert_eq!(img.page_count() as u64, model.len() as u64);
    for &(page, byte) in model {
        if byte == 0 {
            prop_assert!(
                img.zero_pages.contains(page),
                "page {:#x} should be zero-deduplicated",
                page
            );
        } else {
            let data = img
                .pages
                .get(&page)
                .unwrap_or_else(|| panic!("page {page:#x} missing from image"));
            prop_assert!(
                data.iter().all(|&b| b == byte),
                "page {:#x} holds wrong bytes",
                page
            );
        }
    }
    Ok(())
}

proptest! {
    /// Compacting ANY adjacent layer range — including ranges touching the
    /// base — leaves the flattened image identical, and the compacted
    /// chain still validates.
    #[test]
    fn compaction_preserves_restore_state(
        scripts in proptest::collection::vec(
            proptest::collection::vec((0u64..PAGES, any::<u8>()), 0..12),
            1..6,
        ),
        pick in any::<u64>(),
    ) {
        let chain = build_chain(&scripts);
        let model = reference_pages(&scripts);
        let before = chain.flatten();
        assert_image_matches_model(&before, &model)?;

        // A pseudo-random adjacent range derived from `pick`.
        let len = chain.len() as u64;
        let from = (pick % len) as usize;
        let to = from + ((pick >> 32) % (len - from as u64)) as usize;
        let mut compacted = chain.clone();
        compacted.compact(from, to).unwrap();
        compacted.validate().unwrap();
        prop_assert_eq!(compacted.flatten(), before.clone());

        // Degenerate full compaction: a single base layer that IS the
        // flattened image.
        let mut all = chain.clone();
        all.compact_all().unwrap();
        prop_assert_eq!(all.len(), 1);
        prop_assert_eq!(all.layers()[0].kind, LayerKind::Base);
        prop_assert_eq!(&all.layers()[0].image, &before);
    }

    /// Within a layer, the content and zero bitmaps are disjoint; across
    /// layers, a page recorded several times is *superseded*: the last
    /// layer recording it decides the restored bytes.
    #[test]
    fn layers_are_disjoint_or_superseding(
        scripts in proptest::collection::vec(
            proptest::collection::vec((0u64..PAGES, any::<u8>()), 0..12),
            1..6,
        ),
    ) {
        let chain = build_chain(&scripts);
        chain.validate().unwrap();
        for layer in chain.layers() {
            prop_assert!(
                !layer.content_bitmap().intersects(&layer.image.zero_pages),
                "layer {}: a page is both content and zero",
                layer.seq
            );
            // The manifest is exactly content ∪ zero.
            prop_assert_eq!(
                layer.manifest().len() as u64,
                layer.page_count(),
                "layer {}: manifest over/under-counts",
                layer.seq
            );
        }
        // Supersession: walking layers in order and taking the last record
        // per page reproduces flatten() exactly.
        let flat = chain.flatten();
        let mut last: std::collections::BTreeMap<u64, Option<&[u8]>> =
            std::collections::BTreeMap::new();
        for layer in chain.layers() {
            for (&page, data) in &layer.image.pages {
                last.insert(page, Some(data));
            }
            for page in layer.image.zero_pages.pages() {
                last.insert(page, None);
            }
        }
        prop_assert_eq!(last.len() as u64, flat.page_count() as u64);
        for (page, data) in last {
            match data {
                Some(bytes) => prop_assert_eq!(
                    flat.pages.get(&page).map(|b| &b[..]),
                    Some(bytes),
                    "page {:#x} not superseded by the last layer",
                    page
                ),
                None => prop_assert!(
                    flat.zero_pages.contains(page),
                    "page {:#x} should flatten to zero",
                    page
                ),
            }
        }
    }

    /// decode(encode(chain)) is identity, and encoding is canonical: equal
    /// chains — however their bitmaps were populated — encode to equal
    /// bytes.
    #[test]
    fn encode_decode_roundtrip_identity(
        scripts in proptest::collection::vec(
            proptest::collection::vec((0u64..PAGES, any::<u8>()), 0..12),
            1..6,
        ),
    ) {
        let chain = build_chain(&scripts);
        let wire = chain.encode();
        let decoded = SnapshotChain::decode(wire.clone()).unwrap();
        prop_assert_eq!(&decoded, &chain);
        prop_assert_eq!(decoded.flatten(), chain.flatten());
        // Canonical: re-encoding the decoded chain is byte-identical.
        let rewire = decoded.encode();
        prop_assert_eq!(rewire.as_ref(), wire.as_ref());
        // And truncating anywhere strictly inside the wire must error, not
        // mis-parse.
        let cut = wire.slice(0..wire.len() - 1);
        prop_assert_eq!(SnapshotChain::decode(cut), Err(ChainError::Truncated));
    }
}
