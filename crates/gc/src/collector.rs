//! The Boehm-style conservative mark-sweep collector.
//!
//! Two modes:
//!
//! * **Stop-the-world** — every cycle scans the whole live graph from the
//!   roots.
//! * **Incremental/generational** — the mode the paper patches: the mark
//!   phase asks the dirty-page tracker which heap pages were written since
//!   the previous cycle, rescans only (a) the roots, (b) previously-live
//!   objects on *dirty* pages, and (c) the young-object graph. Old objects
//!   are never freed by a minor cycle (they wait for the periodic full
//!   cycle), the classic generational trade of floating garbage for pause
//!   time.
//!
//! All scanning is conservative: every payload word that is word-aligned
//! and falls inside the arena is treated as a pointer (interior pointers
//! resolve to their containing object), exactly Boehm's discipline.

use crate::heap::{GcHeap, WORD};
use ooh_core::{DirtySet, OohSession};
use ooh_guest::{GuestError, GuestKernel, Pid, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{Gva, GvaRange};
use ooh_sim::Lane;
use serde::Serialize;
use std::collections::BTreeSet;

/// Host-side cost of visiting one object during sweep (metadata only).
const SWEEP_NS_PER_OBJECT: u64 = 20;

/// Per-cycle statistics (Figure 5's data).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CycleStats {
    pub cycle: u32,
    /// Was this a minor (incremental) cycle?
    pub minor: bool,
    pub mark_ns: u64,
    pub sweep_ns: u64,
    pub total_ns: u64,
    /// Dirty heap pages reported by the tracker (minor cycles).
    pub dirty_pages: u64,
    pub objects_marked: u64,
    pub objects_freed: u64,
}

/// Collector mode.
pub enum GcMode {
    /// Full scan every cycle.
    StopTheWorld,
    /// Dirty-page-driven minor cycles with a full cycle every `major_every`.
    Incremental {
        session: OohSession,
        major_every: u32,
    },
}

/// The collector: heap + roots area + mode.
pub struct BoehmGc {
    pub heap: GcHeap,
    /// A small VMA holding root slots (the "static area"/stack stand-in).
    pub roots_area: GvaRange,
    root_slots: Vec<Gva>,
    mode: GcMode,
    /// Objects known live at the end of the previous cycle.
    old_live: BTreeSet<u64>,
    cycles: u32,
    pub stats: Vec<CycleStats>,
}

impl BoehmGc {
    /// Create a collector with a `heap_pages`-page heap and room for
    /// `max_roots` root slots.
    pub fn new(
        _hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
        heap_pages: u64,
        max_roots: u64,
        mode: GcMode,
    ) -> Result<Self, GuestError> {
        let heap = GcHeap::new(kernel, pid, heap_pages)?;
        let root_pages = (max_roots * WORD).div_ceil(ooh_machine::PAGE_SIZE).max(1);
        let roots_area = kernel.mmap(pid, root_pages, true, VmaKind::Anon)?;
        Ok(Self {
            heap,
            roots_area,
            root_slots: Vec::new(),
            mode,
            old_live: BTreeSet::new(),
            cycles: 0,
            stats: Vec::new(),
        })
    }

    pub fn pid(&self) -> Pid {
        self.heap.pid
    }

    /// Claim the next root slot; the mutator stores object pointers into it
    /// with ordinary guest writes.
    pub fn add_root_slot(&mut self) -> Gva {
        let slot = self.roots_area.start.add(self.root_slots.len() as u64 * WORD);
        assert!(
            self.roots_area.contains(slot),
            "root area exhausted; raise max_roots"
        );
        self.root_slots.push(slot);
        slot
    }

    /// Allocate `size_words`; collects (and retries once) on exhaustion.
    pub fn alloc(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        size_words: u32,
    ) -> Result<Option<Gva>, GuestError> {
        if let Some(g) = self.heap.alloc(hv, kernel, size_words)? {
            return Ok(Some(g));
        }
        self.collect(hv, kernel)?;
        self.heap.alloc(hv, kernel, size_words)
    }

    /// Run one collection cycle (minor or major depending on mode/phase).
    pub fn collect(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
    ) -> Result<CycleStats, GuestError> {
        self.cycles += 1;
        let cycle = self.cycles;
        // The cycle's clock starts before the dirty-page fetch: collecting
        // the addresses is part of the GC's mark phase (it is exactly where
        // the techniques differ — /proc's pagemap scan, SPML's reverse
        // mapping — and what Figure 5 measures).
        let t0 = hv.ctx.now_ns();
        let (minor, dirty) = match &mut self.mode {
            GcMode::StopTheWorld => (false, None),
            GcMode::Incremental {
                session,
                major_every,
            } => {
                let dirty = session.fetch_dirty(hv, kernel)?;
                if cycle.is_multiple_of(*major_every) || cycle == 1 {
                    // First and every Nth cycle: full scan (the first cycle
                    // establishes old_live; SPML pays reverse mapping here,
                    // the paper's Figure 5 highlight).
                    (false, Some(dirty))
                } else {
                    (true, Some(dirty))
                }
            }
        };
        let marked = if minor {
            self.mark_minor(hv, kernel, dirty.as_ref().expect("minor implies tracker"))?
        } else {
            self.mark_full(hv, kernel)?
        };
        let t_mark = hv.ctx.now_ns();

        // Sweep.
        let mut freed = 0u64;
        let victims: Vec<Gva> = self
            .heap
            .objects()
            .filter(|(g, meta)| {
                let is_marked = marked.contains(&g.raw());
                if minor {
                    // Minor cycles only reclaim unmarked *young* objects.
                    meta.young && !is_marked
                } else {
                    !is_marked
                }
            })
            .map(|(g, _)| g)
            .collect();
        let ctx = hv.ctx.clone();
        ctx.advance(Lane::Tracker, self.heap.object_count() as u64 * SWEEP_NS_PER_OBJECT);
        for v in victims {
            self.heap.release(v);
            freed += 1;
        }
        let t_sweep = hv.ctx.now_ns();

        // End of cycle: survivors become old; the live set is `marked`
        // plus, for minor cycles, all old objects (retained conservatively).
        if minor {
            self.old_live.extend(marked.iter().copied());
            self.old_live
                .retain(|g| self.heap.contains_object(Gva(*g)));
        } else {
            self.old_live = marked
                .iter()
                .copied()
                .filter(|g| self.heap.contains_object(Gva(*g)))
                .collect();
        }
        self.heap.age_all();

        let stats = CycleStats {
            cycle,
            minor,
            mark_ns: t_mark - t0,
            sweep_ns: t_sweep - t_mark,
            total_ns: t_sweep - t0,
            dirty_pages: dirty.map(|d| d.len() as u64).unwrap_or(0),
            objects_marked: marked.len() as u64,
            objects_freed: freed,
        };
        self.stats.push(stats);
        Ok(stats)
    }

    /// Full conservative mark from the roots.
    fn mark_full(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
    ) -> Result<BTreeSet<u64>, GuestError> {
        let mut marked = BTreeSet::new();
        let mut worklist: Vec<Gva> = Vec::new();
        for &slot in &self.root_slots {
            let v = kernel.read_u64(hv, self.heap.pid, slot, Lane::Tracker)?;
            if self.heap.looks_like_pointer(v) {
                if let Some((obj, _)) = self.heap.find_object(Gva(v)) {
                    worklist.push(obj);
                }
            }
        }
        self.mark_transitive(hv, kernel, worklist, &mut marked, &BTreeSet::new())?;
        Ok(marked)
    }

    /// Minor mark: roots + old-live objects on dirty pages, young graph.
    ///
    /// Old objects on *clean* pages are **black**: marked but not scanned —
    /// their fields cannot have changed since the full cycle that scanned
    /// them, so any pointer they hold targets something already old-live.
    /// This is the entire point of dirty-page-driven marking.
    fn mark_minor(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        dirty: &DirtySet,
    ) -> Result<BTreeSet<u64>, GuestError> {
        let mut marked: BTreeSet<u64> = self.old_live.clone();
        let mut worklist: Vec<Gva> = Vec::new();
        for &slot in &self.root_slots {
            let v = kernel.read_u64(hv, self.heap.pid, slot, Lane::Tracker)?;
            if self.heap.looks_like_pointer(v) {
                if let Some((obj, _)) = self.heap.find_object(Gva(v)) {
                    worklist.push(obj);
                }
            }
        }
        // Old-live objects whose pages were written may hold fresh pointers
        // (to young objects): rescan exactly those, treat the rest as black.
        let rescan: BTreeSet<u64> = self
            .old_live
            .iter()
            .copied()
            .filter(|&g| self.object_touches_dirty(Gva(g), dirty))
            .collect();
        let black: BTreeSet<u64> = self.old_live.difference(&rescan).copied().collect();
        worklist.extend(rescan.iter().map(|&g| Gva(g)));
        self.mark_transitive(hv, kernel, worklist, &mut marked, &black)?;
        Ok(marked)
    }

    fn object_touches_dirty(&self, obj: Gva, dirty: &DirtySet) -> bool {
        let Some((payload, meta)) = self.heap.find_object(obj) else {
            return false;
        };
        let first = payload.page();
        let last = payload.add(meta.size_words as u64 * WORD - 1).page();
        (first..=last).any(|p| dirty.contains(Gva::from_page(p)))
    }

    /// Transitive conservative scan from `worklist`, adding to `marked`.
    /// Already-marked entries are rescanned once if they arrived via the
    /// worklist (dirty rescan), but their targets short-circuit.
    fn mark_transitive(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        mut worklist: Vec<Gva>,
        marked: &mut BTreeSet<u64>,
        black: &BTreeSet<u64>,
    ) -> Result<(), GuestError> {
        let mut scanned: BTreeSet<u64> = BTreeSet::new();
        while let Some(obj) = worklist.pop() {
            if !scanned.insert(obj.raw()) {
                continue;
            }
            marked.insert(obj.raw());
            if black.contains(&obj.raw()) {
                continue; // clean old object: already scanned in a prior cycle
            }
            let Some((payload, meta)) = self.heap.find_object(obj) else {
                continue;
            };
            for i in 0..meta.size_words as u64 {
                let v = kernel.read_u64(hv, self.heap.pid, payload.add(i * WORD), Lane::Tracker)?;
                if self.heap.looks_like_pointer(v) {
                    if let Some((target, _)) = self.heap.find_object(Gva(v)) {
                        if !scanned.contains(&target.raw()) {
                            worklist.push(target);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Finish: stop the tracking session if incremental.
    pub fn shutdown(
        self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
    ) -> Result<Vec<CycleStats>, GuestError> {
        if let GcMode::Incremental { session, .. } = self.mode {
            session.stop(hv, kernel)?;
        }
        Ok(self.stats)
    }
}
