//! The GC heap: a guest-memory arena with a bump-plus-free-list allocator
//! and object metadata (Boehm keeps the equivalent in block headers and
//! mark bitmaps; we keep a host-side index over the same information).

use ooh_guest::{GuestError, GuestKernel, Pid, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{Gva, GvaRange};
use ooh_sim::Lane;
use std::collections::BTreeMap;

/// Bytes per heap word.
pub const WORD: u64 = 8;

/// Per-object metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjMeta {
    /// Payload size in words (header excluded).
    pub size_words: u32,
    /// Allocated since the last completed collection cycle.
    pub young: bool,
}

/// The heap arena.
pub struct GcHeap {
    pub pid: Pid,
    /// The heap VMA.
    pub range: GvaRange,
    /// Object index: payload GVA → metadata.
    objects: BTreeMap<u64, ObjMeta>,
    /// Free chunks: GVA → size in words (header included).
    free: BTreeMap<u64, u64>,
    /// Bump pointer for virgin space.
    bump: u64,
    /// Total words allocated over the heap's lifetime.
    pub words_allocated: u64,
}

impl GcHeap {
    /// Create a heap of `pages` pages inside `pid`'s address space.
    pub fn new(
        kernel: &mut GuestKernel,
        pid: Pid,
        pages: u64,
    ) -> Result<Self, GuestError> {
        let range = kernel.mmap(pid, pages, true, VmaKind::GcHeap)?;
        Ok(Self {
            pid,
            range,
            objects: BTreeMap::new(),
            free: BTreeMap::new(),
            bump: range.start.raw(),
            words_allocated: 0,
        })
    }

    /// Allocate an object with `size_words` payload words. Returns the
    /// payload GVA, or `None` if the heap is exhausted (caller collects and
    /// retries). The header word (size tag) is written through the guest
    /// path, dirtying the page like a real allocator's metadata store.
    pub fn alloc(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        size_words: u32,
    ) -> Result<Option<Gva>, GuestError> {
        let need = size_words as u64 + 1; // header + payload
        let start = if let Some((&at, &words)) = self.free.iter().find(|(_, &w)| w >= need) {
            self.free.remove(&at);
            if words > need {
                self.free.insert(at + need * WORD, words - need);
            }
            at
        } else {
            let at = self.bump;
            if at + need * WORD > self.range.end().raw() {
                return Ok(None);
            }
            self.bump = at + need * WORD;
            at
        };
        // Header: size tag, written to guest memory.
        kernel.write_u64(hv, self.pid, Gva(start), size_words as u64, Lane::Tracked)?;
        let payload = Gva(start + WORD);
        self.objects.insert(
            payload.raw(),
            ObjMeta {
                size_words,
                young: true,
            },
        );
        self.words_allocated += need;
        Ok(Some(payload))
    }

    /// Free an object (collector-internal).
    pub(crate) fn release(&mut self, payload: Gva) {
        let meta = self
            .objects
            .remove(&payload.raw())
            .expect("release of unknown object");
        let start = payload.raw() - WORD;
        let words = meta.size_words as u64 + 1;
        // Coalesce with an adjacent following free chunk if present.
        let end = start + words * WORD;
        if let Some(&next_words) = self.free.get(&end) {
            self.free.remove(&end);
            self.free.insert(start, words + next_words);
        } else {
            self.free.insert(start, words);
        }
    }

    /// The object (payload GVA + meta) containing address `addr`, if any —
    /// Boehm-style interior-pointer resolution.
    pub fn find_object(&self, addr: Gva) -> Option<(Gva, ObjMeta)> {
        let (&payload, &meta) = self.objects.range(..=addr.raw()).next_back()?;
        let end = payload + meta.size_words as u64 * WORD;
        (addr.raw() >= payload && addr.raw() < end).then_some((Gva(payload), meta))
    }

    /// Is `addr` a plausible heap pointer (word-aligned, inside the arena)?
    pub fn looks_like_pointer(&self, addr: u64) -> bool {
        addr.is_multiple_of(WORD) && self.range.contains(Gva(addr))
    }

    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    pub fn objects(&self) -> impl Iterator<Item = (Gva, ObjMeta)> + '_ {
        self.objects.iter().map(|(&g, &m)| (Gva(g), m))
    }

    pub fn contains_object(&self, payload: Gva) -> bool {
        self.objects.contains_key(&payload.raw())
    }

    /// Mark every object as old (end of a collection cycle).
    pub(crate) fn age_all(&mut self) {
        for meta in self.objects.values_mut() {
            meta.young = false;
        }
    }

    /// Live heap bytes (payload + headers).
    pub fn live_bytes(&self) -> u64 {
        self.objects
            .values()
            .map(|m| (m.size_words as u64 + 1) * WORD)
            .sum()
    }

    /// Fraction of the arena in use (bump high-water minus free space).
    pub fn utilization(&self) -> f64 {
        let used = self.bump - self.range.start.raw()
            - self.free.values().map(|w| w * WORD).sum::<u64>();
        used as f64 / self.range.len_bytes() as f64
    }
}

impl std::fmt::Debug for GcHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GcHeap")
            .field("range", &self.range)
            .field("objects", &self.objects.len())
            .field("free_chunks", &self.free.len())
            .field("live_bytes", &self.live_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooh_machine::{MachineConfig, PAGE_SIZE};
    use ooh_sim::SimCtx;

    fn boot() -> (Hypervisor, GuestKernel, Pid) {
        let mut hv = Hypervisor::new(MachineConfig::epml(64 * 1024 * PAGE_SIZE), SimCtx::new());
        let vm = hv.create_vm(16 * 1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        (hv, kernel, pid)
    }

    #[test]
    fn alloc_returns_disjoint_objects() {
        let (mut hv, mut kernel, pid) = boot();
        let mut heap = GcHeap::new(&mut kernel, pid, 16).unwrap();
        let a = heap.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
        let b = heap.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
        assert!(b.raw() >= a.raw() + 5 * WORD);
        assert_eq!(heap.object_count(), 2);
        // Header holds the size tag.
        let tag = kernel
            .read_u64(&mut hv, pid, Gva(a.raw() - WORD), Lane::Tracked)
            .unwrap();
        assert_eq!(tag, 4);
    }

    #[test]
    fn exhaustion_returns_none() {
        let (mut hv, mut kernel, pid) = boot();
        let mut heap = GcHeap::new(&mut kernel, pid, 1).unwrap();
        // 512 words per page; each alloc takes 9 words.
        let mut n = 0;
        while heap.alloc(&mut hv, &mut kernel, 8).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 512 / 9);
    }

    #[test]
    fn release_and_reuse() {
        let (mut hv, mut kernel, pid) = boot();
        let mut heap = GcHeap::new(&mut kernel, pid, 1).unwrap();
        let a = heap.alloc(&mut hv, &mut kernel, 8).unwrap().unwrap();
        let _b = heap.alloc(&mut hv, &mut kernel, 8).unwrap().unwrap();
        heap.release(a);
        assert_eq!(heap.object_count(), 1);
        let c = heap.alloc(&mut hv, &mut kernel, 8).unwrap().unwrap();
        assert_eq!(c, a, "freed chunk is reused");
    }

    #[test]
    fn coalescing_rebuilds_large_chunks() {
        let (mut hv, mut kernel, pid) = boot();
        let mut heap = GcHeap::new(&mut kernel, pid, 1).unwrap();
        let a = heap.alloc(&mut hv, &mut kernel, 100).unwrap().unwrap();
        let b = heap.alloc(&mut hv, &mut kernel, 100).unwrap().unwrap();
        let _c = heap.alloc(&mut hv, &mut kernel, 100).unwrap().unwrap();
        // Free a then b: they must coalesce into one 202-word chunk that can
        // host a 201-word object.
        heap.release(b);
        heap.release(a);
        let big = heap.alloc(&mut hv, &mut kernel, 201).unwrap();
        assert_eq!(big, Some(a));
    }

    #[test]
    fn find_object_handles_interior_pointers() {
        let (mut hv, mut kernel, pid) = boot();
        let mut heap = GcHeap::new(&mut kernel, pid, 4).unwrap();
        let a = heap.alloc(&mut hv, &mut kernel, 10).unwrap().unwrap();
        assert_eq!(heap.find_object(a).unwrap().0, a);
        assert_eq!(heap.find_object(a.add(9 * WORD)).unwrap().0, a);
        assert!(heap.find_object(a.add(10 * WORD)).is_none(), "one past end");
        assert!(heap.find_object(Gva(a.raw() - WORD)).is_none(), "header");
    }

    #[test]
    fn pointer_plausibility() {
        let (_hv, mut kernel, pid) = boot();
        let heap = GcHeap::new(&mut kernel, pid, 4).unwrap();
        assert!(heap.looks_like_pointer(heap.range.start.raw()));
        assert!(!heap.looks_like_pointer(heap.range.start.raw() + 1));
        assert!(!heap.looks_like_pointer(0x1000));
        assert!(!heap.looks_like_pointer(heap.range.end().raw()));
    }
}
