//! # ooh-gc — a Boehm-style conservative GC driven by OoH dirty tracking
//!
//! The paper's second Tracker use case. The collector ([`BoehmGc`]) is a
//! conservative mark-sweep over a guest-memory arena ([`GcHeap`]); its
//! incremental/generational mode re-scans only heap pages the dirty-page
//! tracker reports written since the previous cycle — the exact place the
//! paper patches Boehm (the *mark phase*), swapping `/proc` for SPML/EPML.

#![forbid(unsafe_code)]

pub mod collector;
pub mod heap;

pub use collector::{BoehmGc, CycleStats, GcMode};
pub use heap::{GcHeap, ObjMeta, WORD};

#[cfg(test)]
mod tests {
    use super::*;
    use ooh_core::{OohSession, Technique};
    use ooh_guest::{GuestKernel, Pid};
    use ooh_hypervisor::Hypervisor;
    use ooh_machine::{Gva, MachineConfig, PAGE_SIZE};
    use ooh_sim::{Lane, SimCtx};

    fn boot() -> (Hypervisor, GuestKernel, Pid) {
        let mut hv = Hypervisor::new(MachineConfig::epml(64 * 1024 * PAGE_SIZE), SimCtx::new());
        let vm = hv.create_vm(16 * 1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        (hv, kernel, pid)
    }

    fn stw_gc(hv: &mut Hypervisor, kernel: &mut GuestKernel, pid: Pid) -> BoehmGc {
        BoehmGc::new(hv, kernel, pid, 64, 64, GcMode::StopTheWorld).unwrap()
    }

    fn incr_gc(
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
        technique: Technique,
    ) -> BoehmGc {
        let session = OohSession::start(hv, kernel, pid, technique).unwrap();
        BoehmGc::new(
            hv,
            kernel,
            pid,
            64,
            64,
            GcMode::Incremental {
                session,
                major_every: 1000,
            },
        )
        .unwrap()
    }

    /// Store pointer `target` into `slot` as the mutator would.
    fn store(
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
        slot: Gva,
        target: u64,
    ) {
        kernel.write_u64(hv, pid, slot, target, Lane::Tracked).unwrap();
    }

    #[test]
    fn unreachable_objects_are_collected() {
        let (mut hv, mut kernel, pid) = boot();
        let mut gc = stw_gc(&mut hv, &mut kernel, pid);
        let root = gc.add_root_slot();
        let kept = gc.alloc(&mut hv, &mut kernel, 8).unwrap().unwrap();
        let _garbage1 = gc.alloc(&mut hv, &mut kernel, 8).unwrap().unwrap();
        let _garbage2 = gc.alloc(&mut hv, &mut kernel, 16).unwrap().unwrap();
        store(&mut hv, &mut kernel, pid, root, kept.raw());

        let stats = gc.collect(&mut hv, &mut kernel).unwrap();
        assert_eq!(stats.objects_freed, 2);
        assert_eq!(stats.objects_marked, 1);
        assert!(gc.heap.contains_object(kept));
        assert_eq!(gc.heap.object_count(), 1);
    }

    #[test]
    fn transitively_reachable_objects_survive() {
        let (mut hv, mut kernel, pid) = boot();
        let mut gc = stw_gc(&mut hv, &mut kernel, pid);
        let root = gc.add_root_slot();
        // root -> a -> b -> c, plus garbage d.
        let a = gc.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
        let b = gc.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
        let c = gc.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
        let _d = gc.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
        store(&mut hv, &mut kernel, pid, root, a.raw());
        store(&mut hv, &mut kernel, pid, a, b.raw());
        store(&mut hv, &mut kernel, pid, b.add(8), c.raw());

        let stats = gc.collect(&mut hv, &mut kernel).unwrap();
        assert_eq!(stats.objects_freed, 1);
        for obj in [a, b, c] {
            assert!(gc.heap.contains_object(obj));
        }
    }

    #[test]
    fn cycles_do_not_leak_or_loop() {
        let (mut hv, mut kernel, pid) = boot();
        let mut gc = stw_gc(&mut hv, &mut kernel, pid);
        let root = gc.add_root_slot();
        let a = gc.alloc(&mut hv, &mut kernel, 2).unwrap().unwrap();
        let b = gc.alloc(&mut hv, &mut kernel, 2).unwrap().unwrap();
        // a <-> b cycle, rooted.
        store(&mut hv, &mut kernel, pid, a, b.raw());
        store(&mut hv, &mut kernel, pid, b, a.raw());
        store(&mut hv, &mut kernel, pid, root, a.raw());
        let s1 = gc.collect(&mut hv, &mut kernel).unwrap();
        assert_eq!(s1.objects_freed, 0);
        // Unroot: the cycle is garbage and must go.
        store(&mut hv, &mut kernel, pid, root, 0);
        let s2 = gc.collect(&mut hv, &mut kernel).unwrap();
        assert_eq!(s2.objects_freed, 2);
        assert_eq!(gc.heap.object_count(), 0);
    }

    #[test]
    fn interior_pointers_keep_objects_alive() {
        let (mut hv, mut kernel, pid) = boot();
        let mut gc = stw_gc(&mut hv, &mut kernel, pid);
        let root = gc.add_root_slot();
        let a = gc.alloc(&mut hv, &mut kernel, 16).unwrap().unwrap();
        // Point into the middle of a.
        store(&mut hv, &mut kernel, pid, root, a.add(5 * WORD).raw());
        let stats = gc.collect(&mut hv, &mut kernel).unwrap();
        assert_eq!(stats.objects_freed, 0);
        assert!(gc.heap.contains_object(a));
    }

    #[test]
    fn conservative_scan_tolerates_non_pointer_words() {
        let (mut hv, mut kernel, pid) = boot();
        let mut gc = stw_gc(&mut hv, &mut kernel, pid);
        let root = gc.add_root_slot();
        let a = gc.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
        store(&mut hv, &mut kernel, pid, root, a.raw());
        // Fill with integers that are NOT heap pointers.
        for i in 0..4u64 {
            store(&mut hv, &mut kernel, pid, a.add(i * WORD), 0xDEAD_0000 + i);
        }
        let stats = gc.collect(&mut hv, &mut kernel).unwrap();
        assert_eq!(stats.objects_freed, 0);
        assert_eq!(stats.objects_marked, 1);
    }

    /// The generational invariant under dirty-page tracking: a young object
    /// reachable only through an *old* object survives a minor cycle,
    /// because the store that linked it dirtied the old object's page.
    #[test]
    fn minor_cycle_sees_pointers_stored_into_old_objects() {
        for technique in Technique::ALL {
            let (mut hv, mut kernel, pid) = boot();
            let mut gc = incr_gc(&mut hv, &mut kernel, pid, technique);
            let root = gc.add_root_slot();
            let old = gc.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
            store(&mut hv, &mut kernel, pid, root, old.raw());
            // Cycle 1 (full): `old` becomes old-generation.
            gc.collect(&mut hv, &mut kernel).unwrap();

            // Mutator: allocate young and hang it off `old`.
            let young = gc.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
            store(&mut hv, &mut kernel, pid, old, young.raw());
            // Also allocate young garbage.
            let _garbage = gc.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();

            let stats = gc.collect(&mut hv, &mut kernel).unwrap();
            assert!(stats.minor, "{}", technique.name());
            assert!(
                gc.heap.contains_object(young),
                "{}: young object linked from dirty old page must survive",
                technique.name()
            );
            assert_eq!(
                stats.objects_freed,
                1,
                "{}: young garbage must be reclaimed",
                technique.name()
            );
            gc.shutdown(&mut hv, &mut kernel).unwrap();
        }
    }

    /// Floating garbage: an old object that dies stays until a major cycle.
    #[test]
    fn minor_cycles_retain_old_garbage_until_major() {
        let (mut hv, mut kernel, pid) = boot();
        let session = OohSession::start(&mut hv, &mut kernel, pid, Technique::Epml).unwrap();
        let mut gc = BoehmGc::new(
            &mut hv,
            &mut kernel,
            pid,
            64,
            64,
            GcMode::Incremental {
                session,
                major_every: 3,
            },
        )
        .unwrap();
        let root = gc.add_root_slot();
        let a = gc.alloc(&mut hv, &mut kernel, 4).unwrap().unwrap();
        store(&mut hv, &mut kernel, pid, root, a.raw());
        gc.collect(&mut hv, &mut kernel).unwrap(); // cycle 1: full, a old+live
        store(&mut hv, &mut kernel, pid, root, 0); // a now dead
        let s2 = gc.collect(&mut hv, &mut kernel).unwrap(); // cycle 2: minor
        assert!(s2.minor);
        assert!(gc.heap.contains_object(a), "floating garbage retained");
        let s3 = gc.collect(&mut hv, &mut kernel).unwrap(); // cycle 3: major
        assert!(!s3.minor);
        assert!(!gc.heap.contains_object(a), "major cycle reclaims it");
    }

    /// The paper's payoff: a minor cycle's mark phase costs much less than a
    /// full cycle when only a few pages are dirty.
    #[test]
    fn minor_mark_is_cheaper_than_full_mark() {
        let (mut hv, mut kernel, pid) = boot();
        let mut gc = incr_gc(&mut hv, &mut kernel, pid, Technique::Epml);
        let root = gc.add_root_slot();
        // Big rooted linked list.
        let head = gc.alloc(&mut hv, &mut kernel, 32).unwrap().unwrap();
        store(&mut hv, &mut kernel, pid, root, head.raw());
        let mut prev = head;
        for _ in 0..500 {
            let node = gc.alloc(&mut hv, &mut kernel, 32).unwrap().unwrap();
            store(&mut hv, &mut kernel, pid, prev, node.raw());
            prev = node;
        }
        let full = gc.collect(&mut hv, &mut kernel).unwrap();
        assert!(!full.minor);

        // Touch one object only.
        store(&mut hv, &mut kernel, pid, prev.add(8), 0x1234);
        let minor = gc.collect(&mut hv, &mut kernel).unwrap();
        assert!(minor.minor);
        assert!(
            minor.mark_ns * 5 < full.mark_ns,
            "minor mark {} should be <20% of full mark {}",
            minor.mark_ns,
            full.mark_ns
        );
    }

    #[test]
    fn alloc_triggers_collection_on_pressure() {
        let (mut hv, mut kernel, pid) = boot();
        let mut gc = BoehmGc::new(&mut hv, &mut kernel, pid, 2, 8, GcMode::StopTheWorld).unwrap();
        let root = gc.add_root_slot();
        let keep = gc.alloc(&mut hv, &mut kernel, 64).unwrap().unwrap();
        store(&mut hv, &mut kernel, pid, root, keep.raw());
        // Allocate garbage until pressure forces collection; must not OOM.
        for _ in 0..100 {
            let g = gc.alloc(&mut hv, &mut kernel, 64).unwrap();
            assert!(g.is_some(), "collection must reclaim garbage");
        }
        assert!(!gc.stats.is_empty(), "at least one forced cycle");
        assert!(gc.heap.contains_object(keep));
    }
}
