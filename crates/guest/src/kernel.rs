//! The guest kernel: process lifecycle, page-table management, the page
//! fault handler (demand paging, soft-dirty re-protection, userfaultfd
//! delivery), and the memory-access API workloads run against.

use crate::ooh_module::OohModule;
use crate::process::{Pid, Process, Vma, VmaKind};
use crate::ufd::{Ufd, UfdEvent, UfdMode};
use ooh_hypervisor::{Hypervisor, VmId};
use ooh_machine::{
    Fault, Gpa, Gva, GvaRange, Hpa, MachineError, Pte, EPML_SELF_IPI_VECTOR, HUGE_PAGE_PAGES,
    HUGE_PAGE_SIZE, PAGE_SIZE,
};
use ooh_sim::{Event, Lane};

/// Guest-level errors.
#[derive(Debug)]
pub enum GuestError {
    /// Access outside any VMA or violating VMA permissions.
    Segfault { pid: Pid, gva: Gva },
    /// Write into a guarded region: a heap-overflow detection, either from
    /// an SPP sub-page guard or a classic guard page.
    GuardViolation {
        pid: Pid,
        gva: Gva,
        /// SPP sub-page index, or None for a whole guard page.
        subpage: Option<u32>,
    },
    /// No such process.
    NoProcess(Pid),
    /// A fault could not be resolved after repeated attempts (model bug).
    FaultLoop { pid: Pid, gva: Gva },
    /// Underlying machine error (OOM etc.).
    Machine(MachineError),
}

impl From<MachineError> for GuestError {
    fn from(e: MachineError) -> Self {
        GuestError::Machine(e)
    }
}

impl std::fmt::Display for GuestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuestError::Segfault { pid, gva } => write!(f, "segfault in {pid} at {gva}"),
            GuestError::GuardViolation { pid, gva, subpage } => match subpage {
                Some(s) => write!(f, "overflow into SPP sub-page guard in {pid} at {gva} (sub-page {s})"),
                None => write!(f, "overflow into guard page in {pid} at {gva}"),
            },
            GuestError::NoProcess(pid) => write!(f, "no such process {pid}"),
            GuestError::FaultLoop { pid, gva } => {
                write!(f, "unresolvable fault loop in {pid} at {gva}")
            }
            GuestError::Machine(e) => write!(f, "machine error: {e}"),
        }
    }
}

impl std::error::Error for GuestError {}

/// The guest operating system state for one VM.
///
/// SMP model: the kernel owns `n_vcpus` virtual CPUs. Every process gets a
/// *home vCPU* at spawn time (deterministic round-robin over spawn order)
/// and all of its user-mode execution — stores, loads, faults, procfs
/// syscalls — runs there, which is where its translations get cached and
/// its PML/EPML entries get logged. `vcpu` always names the vCPU currently
/// executing kernel code; syscall-style entry points switch it to the
/// calling process's home vCPU.
pub struct GuestKernel {
    pub vm: VmId,
    /// The vCPU currently executing (kernel or user) code.
    pub vcpu: u32,
    /// Number of vCPUs this kernel schedules across.
    n_vcpus: u32,
    processes: std::collections::BTreeMap<Pid, Process>,
    next_pid: u32,
    /// Open userfaultfd objects.
    pub ufds: Vec<Ufd>,
    /// The OoH kernel module, once loaded.
    pub ooh: Option<OohModule>,
    /// Per-vCPU currently scheduled process.
    current: Vec<Option<Pid>>,
    /// Home vCPU of every live process.
    placement: std::collections::BTreeMap<Pid, u32>,
    /// Round-robin cursor for spawn placement.
    next_placement: u32,
    /// Timer ticks delivered so far (drives the tick → vCPU rotation).
    timer_ticks: u64,
    /// Total context switches performed (the paper's N).
    pub context_switches: u64,
    /// Transparent-huge-page policy: when on, large writable anonymous
    /// mmaps become huge-eligible VMAs and not-present faults on them
    /// install 2M leaves. Off by default — all pre-existing behavior
    /// (including every logged address and cost) is unchanged.
    pub huge_policy: bool,
}

impl GuestKernel {
    /// A single-vCPU kernel (the paper's baseline setup).
    pub fn new(vm: VmId) -> Self {
        Self::with_vcpus(vm, 1)
    }

    /// An SMP kernel scheduling across `n_vcpus` vCPUs. The VM passed in
    /// must have been created with at least as many vCPUs.
    pub fn with_vcpus(vm: VmId, n_vcpus: u32) -> Self {
        let n = n_vcpus.max(1);
        Self {
            vm,
            vcpu: 0,
            n_vcpus: n,
            processes: std::collections::BTreeMap::new(),
            next_pid: 1,
            ufds: Vec::new(),
            ooh: None,
            current: vec![None; n as usize],
            placement: std::collections::BTreeMap::new(),
            next_placement: 0,
            timer_ticks: 0,
            context_switches: 0,
            huge_policy: false,
        }
    }

    /// Number of vCPUs this kernel schedules across.
    pub fn n_vcpus(&self) -> u32 {
        self.n_vcpus
    }

    /// The home vCPU `pid` was placed on at spawn (current vCPU if unknown).
    pub fn vcpu_of(&self, pid: Pid) -> u32 {
        self.placement.get(&pid).copied().unwrap_or(self.vcpu)
    }

    /// Switch execution to `pid`'s home vCPU (syscall entry on its core).
    fn run_on_home_vcpu(&mut self, pid: Pid) {
        self.vcpu = self.vcpu_of(pid);
    }

    // --- process lifecycle -------------------------------------------------

    /// Create a process: allocates its page-table root and places it on the
    /// next vCPU in deterministic round-robin order.
    pub fn spawn(&mut self, hv: &mut Hypervisor) -> Result<Pid, GuestError> {
        let vcpu = self.next_placement % self.n_vcpus;
        self.next_placement += 1;
        self.spawn_on(hv, vcpu)
    }

    /// Create a process pinned to `vcpu` (taskset-style explicit placement).
    pub fn spawn_on(&mut self, hv: &mut Hypervisor, vcpu: u32) -> Result<Pid, GuestError> {
        debug_assert!(vcpu < self.n_vcpus, "vCPU {vcpu} out of range");
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let cr3 = hv.alloc_guest_page(self.vm)?;
        let mut proc = Process::new(pid, cr3);
        proc.pt_pages.push(cr3);
        self.processes.insert(pid, proc);
        self.placement.insert(pid, vcpu);
        if self.current[vcpu as usize].is_none() {
            self.current[vcpu as usize] = Some(pid);
            let ctx = hv.ctx.clone();
            hv.vm_mut(self.vm).vcpus[vcpu as usize].set_cr3(&ctx, Lane::Kernel, cr3);
        }
        Ok(pid)
    }

    /// Tear a process down, freeing its data and page-table pages.
    pub fn exit(&mut self, hv: &mut Hypervisor, pid: Pid) -> Result<(), GuestError> {
        let proc = self
            .processes
            .remove(&pid)
            .ok_or(GuestError::NoProcess(pid))?;
        for (_, gpa_page) in proc.resident.iter() {
            hv.free_guest_page(self.vm, Gpa::from_page(*gpa_page))?;
        }
        for gpa in proc.pt_pages {
            hv.free_guest_page(self.vm, gpa)?;
        }
        self.placement.remove(&pid);
        for slot in self.current.iter_mut() {
            if *slot == Some(pid) {
                *slot = None;
            }
        }
        Ok(())
    }

    pub fn process(&self, pid: Pid) -> Result<&Process, GuestError> {
        self.processes.get(&pid).ok_or(GuestError::NoProcess(pid))
    }

    pub fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, GuestError> {
        self.processes
            .get_mut(&pid)
            .ok_or(GuestError::NoProcess(pid))
    }

    pub fn pids(&self) -> Vec<Pid> {
        self.processes.keys().copied().collect()
    }

    /// The process running on the currently executing vCPU.
    pub fn current(&self) -> Option<Pid> {
        self.current[self.vcpu as usize]
    }

    /// The process running on `vcpu`.
    pub fn current_on(&self, vcpu: u32) -> Option<Pid> {
        self.current.get(vcpu as usize).copied().flatten()
    }

    // --- memory mapping -----------------------------------------------------

    /// mmap: reserve `pages` pages (lazy; PTEs appear on first touch).
    ///
    /// Under [`Self::huge_policy`], writable anonymous/GC-heap mappings of
    /// at least one 2M region become huge-eligible: the reservation is
    /// 2M-aligned and faults install 2M leaves where a full region fits.
    /// Stacks stay 4K (they grow a page at a time and their guard
    /// interactions want page granularity).
    pub fn mmap(
        &mut self,
        pid: Pid,
        pages: u64,
        writable: bool,
        kind: VmaKind,
    ) -> Result<GvaRange, GuestError> {
        let huge = self.huge_policy
            && writable
            && pages >= HUGE_PAGE_PAGES
            && matches!(kind, VmaKind::Anon | VmaKind::GcHeap);
        let proc = self.process_mut(pid)?;
        Ok(if huge {
            proc.reserve_vma_huge(pages, writable, kind)
        } else {
            proc.reserve_vma(pages, writable, kind)
        })
    }

    /// munmap: drop the VMA and free its resident pages and PTEs, then
    /// shoot the stale translations down on *every* vCPU — the PTE teardown
    /// is globally visible, so a single-vCPU flush would leave other cores
    /// free to write through (and dirty-log against) dead translations.
    pub fn munmap(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        range: GvaRange,
    ) -> Result<(), GuestError> {
        self.run_on_home_vcpu(pid);
        let vm = self.vm;
        let vma = {
            let proc = self.process_mut(pid)?;
            let Some(vma) = proc.remove_vma(range) else {
                return Err(GuestError::Segfault {
                    pid,
                    gva: range.start,
                });
            };
            vma
        };
        let n_vcpus = self.n_vcpus;
        // Still-huge regions first. The level-1 leaf is ONE PTE covering 512
        // pages: its dirty bit speaks for every covered frame, so the shadow
        // must retire all of them before the slot is destroyed — clearing
        // only the faulting page (the pre-fix behavior of the 4K loop below,
        // which cannot even see a huge leaf) leaves 511 frames falsely
        // "already logged" when their GPAs are recycled.
        if vma.huge {
            let mut base = Gva(range.start.raw().next_multiple_of(HUGE_PAGE_SIZE));
            while base.add(HUGE_PAGE_SIZE).raw() <= range.end().raw() {
                if let Some((slot, hpte)) = self.huge_pte_lookup(hv, pid, base)? {
                    if hpte.is_dirty() {
                        for i in 0..HUGE_PAGE_PAGES {
                            let g = base.add(i * PAGE_SIZE);
                            for v in 0..n_vcpus {
                                hv.note_guest_pte_dirty_cleared(vm, v, g);
                            }
                        }
                    }
                    self.kernel_phys_write(hv, slot, Pte::empty().0)?;
                    for i in 0..HUGE_PAGE_PAGES {
                        let freed = self
                            .process_mut(pid)?
                            .unmap_resident(base.page() + i);
                        if let Some(gpa_page) = freed {
                            hv.free_guest_page(vm, Gpa::from_page(gpa_page))?;
                        }
                    }
                }
                base = base.add(HUGE_PAGE_SIZE);
            }
        }
        for gva in range.iter_pages().collect::<Vec<_>>() {
            if let Some((slot, pte)) = self.pte_lookup(hv, pid, gva)? {
                if pte.is_present() {
                    // The PTE (and with it any set dirty bit) is going away:
                    // tell every vCPU's PML shadow, or the page would
                    // false-panic as "logged twice" when the GVA/GPA is
                    // recycled and dirtied again under debug-invariants.
                    if pte.is_dirty() {
                        for v in 0..n_vcpus {
                            hv.note_guest_pte_dirty_cleared(vm, v, gva);
                        }
                    }
                    self.kernel_phys_write(hv, slot, Pte::empty().0)?;
                    let proc = self.process_mut(pid)?;
                    if let Some(gpa_page) = proc.unmap_resident(gva.page()) {
                        hv.free_guest_page(vm, Gpa::from_page(gpa_page))?;
                    }
                }
            }
        }
        self.shootdown_all(hv);
        Ok(())
    }

    // --- page-table plumbing (kernel privilege) ------------------------------

    /// Raw guest-physical read used for PTE access (kernel mapped the PT
    /// pages; cost is covered by the metric of whichever operation drives
    /// this — clear_refs, pagemap, fault handling).
    pub fn kernel_phys_read(&self, hv: &mut Hypervisor, gpa: Gpa) -> Result<u64, GuestError> {
        match hv.guest_phys_read_u64(self.vm, self.vcpu, gpa, Lane::Kernel)? {
            Ok(v) => Ok(v),
            Err(_) => Err(GuestError::Machine(MachineError::BadFrame {
                hpa: Hpa(gpa.raw()),
            })),
        }
    }

    /// Raw guest-physical write for PTE updates (goes through the PML
    /// circuit like real page-table stores do).
    pub fn kernel_phys_write(
        &self,
        hv: &mut Hypervisor,
        gpa: Gpa,
        value: u64,
    ) -> Result<(), GuestError> {
        match hv.guest_phys_write_u64(self.vm, self.vcpu, gpa, value, Lane::Kernel)? {
            Ok(()) => Ok(()),
            Err(_) => Err(GuestError::Machine(MachineError::BadFrame {
                hpa: Hpa(gpa.raw()),
            })),
        }
    }

    /// Walk to the leaf PTE slot for (`pid`, `gva`); when `alloc`, missing
    /// intermediate page-table pages are allocated (and recorded for
    /// teardown).
    fn pte_slot(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        alloc: bool,
    ) -> Result<Option<Gpa>, GuestError> {
        let cr3 = self.process(pid)?.cr3;
        let mut table = cr3;
        for level in (1..4).rev() {
            let slot = table.add(gva.pt_index(level) as u64 * 8);
            let entry = Pte(self.kernel_phys_read(hv, slot)?);
            if level == 1 && entry.is_present() && entry.is_huge() {
                // A 2M leaf terminates the walk: there is no level-0 slot
                // under it. Callers that understand huge mappings go through
                // [`Self::huge_pte_lookup`] instead.
                return Ok(None);
            }
            table = if entry.is_present() {
                entry.frame()
            } else if alloc {
                let page = hv.alloc_guest_page(self.vm)?;
                self.process_mut(pid)?.pt_pages.push(page);
                self.kernel_phys_write(hv, slot, Pte::table(page).0)?;
                page
            } else {
                return Ok(None);
            };
        }
        Ok(Some(table.add(gva.pt_index(0) as u64 * 8)))
    }

    /// Walk to the *level-1* slot for (`pid`, `gva`) — where a 2M leaf (or
    /// the pointer to its 4K table) lives. With `alloc`, missing level-3/2
    /// tables are allocated.
    fn huge_pte_slot(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        alloc: bool,
    ) -> Result<Option<Gpa>, GuestError> {
        let cr3 = self.process(pid)?.cr3;
        let mut table = cr3;
        for level in (2..4).rev() {
            let slot = table.add(gva.pt_index(level) as u64 * 8);
            let entry = Pte(self.kernel_phys_read(hv, slot)?);
            table = if entry.is_present() {
                entry.frame()
            } else if alloc {
                let page = hv.alloc_guest_page(self.vm)?;
                self.process_mut(pid)?.pt_pages.push(page);
                self.kernel_phys_write(hv, slot, Pte::table(page).0)?;
                page
            } else {
                return Ok(None);
            };
        }
        Ok(Some(table.add(gva.pt_index(1) as u64 * 8)))
    }

    /// Read the 2M leaf covering `gva` (level-1 slot address + value), if
    /// one is installed. Returns `None` when the region is unmapped or
    /// mapped through a 4K table.
    pub fn huge_pte_lookup(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
    ) -> Result<Option<(Gpa, Pte)>, GuestError> {
        match self.huge_pte_slot(hv, pid, gva, false)? {
            Some(slot) => {
                let pte = Pte(self.kernel_phys_read(hv, slot)?);
                if pte.is_present() && pte.is_huge() {
                    Ok(Some((slot, pte)))
                } else {
                    Ok(None)
                }
            }
            None => Ok(None),
        }
    }

    /// Read the leaf PTE for `gva` (slot address + value), if the table
    /// path exists.
    pub fn pte_lookup(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
    ) -> Result<Option<(Gpa, Pte)>, GuestError> {
        match self.pte_slot(hv, pid, gva, false)? {
            Some(slot) => {
                let pte = Pte(self.kernel_phys_read(hv, slot)?);
                Ok(Some((slot, pte)))
            }
            None => Ok(None),
        }
    }

    /// Install a leaf PTE, creating intermediate tables.
    pub fn install_pte(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        pte: Pte,
    ) -> Result<(), GuestError> {
        let slot = self
            .pte_slot(hv, pid, gva, true)?
            .expect("alloc=true yields a slot");
        self.kernel_phys_write(hv, slot, pte.0)
    }

    // --- the page fault handler ------------------------------------------------

    fn handle_fault(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        fault: Fault,
        lane: Lane,
    ) -> Result<(), GuestError> {
        match fault {
            Fault::NotPresent { gva, .. } => self.fault_not_present(hv, pid, gva, lane),
            Fault::WriteProtected { gva } => self.fault_write_protect(hv, pid, gva, lane),
            Fault::HugeDirtyWrite { gva, .. } => {
                // Split-on-dirty: the first logged write to a huge mapping
                // demotes it to 4K before any D bit is set or entry logged,
                // so the retried store logs a precise 4K address.
                self.demote_huge(hv, pid, gva)?;
                Ok(())
            }
            Fault::EptViolation { .. } => {
                // Guest RAM is pre-populated; an EPT violation means a model
                // bug, surface it hard.
                Err(GuestError::Machine(MachineError::BadFrame {
                    hpa: Hpa(0),
                }))
            }
            Fault::SppViolation { gva, subpage, .. } => {
                // Overflow detection: deliver synchronously to the owner
                // (the secure allocator's SIGSEGV handler analog).
                hv.ctx.charge(Lane::Kernel, Event::SppViolationFault);
                hv.ctx.charge(Lane::Kernel, Event::ContextSwitch);
                Err(GuestError::GuardViolation {
                    pid,
                    gva,
                    subpage: Some(subpage),
                })
            }
        }
    }

    fn fault_not_present(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        _lane: Lane,
    ) -> Result<(), GuestError> {
        let Some(vma) = self.process(pid)?.vma_for(gva).cloned() else {
            return Err(GuestError::Segfault { pid, gva });
        };

        // Huge-eligible fault: the region containing `gva` lies fully inside
        // a huge VMA (tails shorter than 2M stay 4K) and no missing-mode
        // userfaultfd wants page-granular notification for it.
        if vma.huge {
            let base = gva.huge_base();
            let region_end = base.add(HUGE_PAGE_SIZE);
            let fully_inside =
                base.raw() >= vma.range.start.raw() && region_end.raw() <= vma.range.end().raw();
            let ufd_covered = self
                .ufds
                .iter()
                .any(|u| u.pid == pid && u.mode == UfdMode::Missing && u.covers(gva));
            if fully_inside && !ufd_covered {
                return self.fault_huge_not_present(hv, pid, &vma, base);
            }
        }

        // userfaultfd missing-mode: the fault is resolved by the tracker in
        // userspace (UFFDIO_ZEROPAGE); Tracked pays the full round trip.
        let ufd_missing = self
            .ufds
            .iter_mut()
            .find(|u| u.pid == pid && u.mode == UfdMode::Missing && u.covers(gva));
        if let Some(ufd) = ufd_missing {
            ufd.deliver(UfdEvent {
                pid,
                gva: gva.page_base(),
                write: false,
            });
            hv.ctx.charge(Lane::Kernel, Event::UfdEventDelivered);
            hv.ctx.charge_n(Lane::Kernel, Event::ContextSwitch, 2);
            hv.ctx.charge(Lane::Tracker, Event::PageFaultUser);
        } else {
            // Ordinary demand-zero fault, handled in the kernel.
            hv.ctx.charge(Lane::Kernel, Event::PageFaultKernel);
            hv.ctx.charge(Lane::Kernel, Event::ContextSwitch);
        }

        let data = hv.alloc_guest_page(self.vm)?;
        let mut flags = Pte::USER | Pte::ACCESSED | Pte::SOFT_DIRTY;
        if vma.writable {
            flags |= Pte::WRITABLE;
        }
        self.install_pte(hv, pid, gva, Pte::leaf(data, flags))?;
        self.process_mut(pid)?
            .map_resident(gva.page(), data.page());
        Ok(())
    }

    /// Resolve a not-present fault with one 2M mapping: a single kernel
    /// fault populates 512 pages (the hugepage win — one fault, one PTE,
    /// one TLB entry per region).
    fn fault_huge_not_present(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        vma: &Vma,
        base: Gva,
    ) -> Result<(), GuestError> {
        hv.ctx.charge(Lane::Kernel, Event::PageFaultKernel);
        hv.ctx.charge(Lane::Kernel, Event::ContextSwitch);
        let data = hv.alloc_guest_huge_region(self.vm)?;
        let mut flags = Pte::USER | Pte::ACCESSED | Pte::SOFT_DIRTY;
        if vma.writable {
            flags |= Pte::WRITABLE;
        }
        let slot = self
            .huge_pte_slot(hv, pid, base, true)?
            .expect("alloc=true yields a slot");
        self.kernel_phys_write(hv, slot, Pte::huge_leaf(data, flags).0)?;
        // Residency is tracked per 4K page even under a huge mapping: the
        // backing GPAs are contiguous, so pagemap, reverse mapping, and
        // checkpointing see exactly what 512 individual faults would have
        // produced.
        let proc = self.process_mut(pid)?;
        for i in 0..HUGE_PAGE_PAGES {
            proc.map_resident(base.page() + i, data.page() + i);
        }
        Ok(())
    }

    /// Demote the 2M guest mapping covering `gva` to a freshly built 4K
    /// table (split-on-dirty, or a tracker needing page-granular
    /// protection). The 512 inherited leaves keep the huge leaf's flags and
    /// A/D state; the EPT side is demoted too if still huge. Ends with a
    /// cross-vCPU shootdown of the covering translation and a reverse-map
    /// generation bump. Idempotent: returns false if no huge mapping covers
    /// `gva`.
    pub fn demote_huge(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
    ) -> Result<bool, GuestError> {
        let base = gva.huge_base();
        let Some((slot, hpte)) = self.huge_pte_lookup(hv, pid, base)? else {
            return Ok(false);
        };
        let ctx = hv.ctx.clone();
        ctx.charge(Lane::Kernel, Event::PageFaultKernel);
        ctx.charge(Lane::Kernel, Event::ContextSwitch);
        // Build the 4K table: 512 leaves inheriting flags + A/D from the
        // huge leaf, each retargeted to its slice of the backing region.
        let table = hv.alloc_guest_page(self.vm)?;
        self.process_mut(pid)?.pt_pages.push(table);
        ctx.charge_n(Lane::Kernel, Event::ClearRefsPte, HUGE_PAGE_PAGES);
        let proto = hpte.without(Pte::PS);
        for i in 0..HUGE_PAGE_PAGES {
            let leaf = proto.retarget(hpte.frame().add(i * PAGE_SIZE));
            self.kernel_phys_write(hv, table.add(i * 8), leaf.0)?;
        }
        self.kernel_phys_write(hv, slot, Pte::table(table).0)?;
        // The EPT mapping demotes with us when still huge (its own fault
        // would otherwise fire on the retried write anyway).
        hv.demote_guest_region(self.vm, hpte.frame(), Lane::Kernel)?;
        // The edit replaces a live translation: every core must drop the
        // covering huge entry before anyone can walk the new table.
        self.shootdown_page(hv, base);
        // Reverse-map caches built while the region was huge are stale.
        self.process_mut(pid)?.bump_map_generation();
        Ok(true)
    }

    fn fault_write_protect(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        _lane: Lane,
    ) -> Result<(), GuestError> {
        let Some((slot, pte)) = self.pte_lookup(hv, pid, gva)? else {
            // A protection fault on a still-huge mapping resolves at 2M
            // granularity: restore write access on the one covering leaf
            // (soft-dirty keeps working — the region re-marks as a whole).
            if let Some((hslot, hpte)) = self.huge_pte_lookup(hv, pid, gva)? {
                let vma_writable = self
                    .process(pid)?
                    .vma_for(gva)
                    .map(|v| v.writable)
                    .unwrap_or(false);
                if !hpte.is_writable() && vma_writable && !hpte.is_uffd_wp() && !hpte.is_guard() {
                    hv.ctx.charge(Lane::Kernel, Event::PageFaultKernel);
                    hv.ctx.charge(Lane::Kernel, Event::ContextSwitch);
                    self.kernel_phys_write(
                        hv,
                        hslot,
                        hpte.with(Pte::WRITABLE | Pte::SOFT_DIRTY).0,
                    )?;
                    self.invlpg(hv, gva.huge_base());
                    return Ok(());
                }
            }
            return Err(GuestError::Segfault { pid, gva });
        };
        let vma_writable = self
            .process(pid)?
            .vma_for(gva)
            .map(|v| v.writable)
            .unwrap_or(false);

        // Classic guard page (heap canary): never fixed up.
        if pte.is_guard() {
            hv.ctx.charge(Lane::Kernel, Event::PageFaultKernel);
            hv.ctx.charge(Lane::Kernel, Event::ContextSwitch);
            return Err(GuestError::GuardViolation {
                pid,
                gva,
                subpage: None,
            });
        }

        // userfaultfd write-protect mode: deliver to the tracker, which
        // records the dirty address and write-unprotects (the paper's M6
        // path — the costly one).
        if pte.is_uffd_wp() {
            let ufd = self
                .ufds
                .iter_mut()
                .find(|u| u.pid == pid && u.mode == UfdMode::WriteProtect && u.covers(gva));
            if let Some(ufd) = ufd {
                ufd.deliver(UfdEvent {
                    pid,
                    gva: gva.page_base(),
                    write: true,
                });
                hv.ctx.charge(Lane::Kernel, Event::UfdEventDelivered);
                hv.ctx.charge_n(Lane::Kernel, Event::ContextSwitch, 2);
                hv.ctx.charge(Lane::Tracker, Event::PageFaultUser);
                hv.ctx.charge(Lane::Tracker, Event::UfdWriteUnprotectPage);
            }
            // Resolve: clear the WP marker (UFFDIO_WRITEPROTECT with
            // mode=0 from the tracker, or implicit if nobody listens).
            self.kernel_phys_write(hv, slot, pte.without(Pte::UFFD_WP).0)?;
            self.invlpg(hv, gva);
            return Ok(());
        }

        // Soft-dirty re-protection fault: the kernel restores write access
        // and marks the PTE soft-dirty (Linux's clear_refs machinery).
        if !pte.is_writable() && vma_writable {
            hv.ctx.charge(Lane::Kernel, Event::PageFaultKernel);
            hv.ctx.charge(Lane::Kernel, Event::ContextSwitch);
            self.kernel_phys_write(hv, slot, pte.with(Pte::WRITABLE | Pte::SOFT_DIRTY).0)?;
            self.invlpg(hv, gva);
            return Ok(());
        }

        Err(GuestError::Segfault { pid, gva })
    }

    /// Single-page TLB invalidation on the local vCPU.
    pub fn invlpg(&self, hv: &mut Hypervisor, gva: Gva) {
        let ctx = hv.ctx.clone();
        ctx.charge(Lane::Kernel, Event::TlbInvlpg);
        hv.vm_mut(self.vm).vcpus[self.vcpu as usize].tlb.invlpg(gva);
    }

    /// Full TLB flush on the local vCPU.
    pub fn flush_tlb(&self, hv: &mut Hypervisor) {
        let ctx = hv.ctx.clone();
        ctx.charge(Lane::Kernel, Event::TlbFlush);
        hv.vm_mut(self.vm).vcpus[self.vcpu as usize]
            .tlb
            .flush_all();
    }

    /// Cross-vCPU single-page TLB shootdown: invlpg locally, then send a
    /// shootdown IPI to every other vCPU. Each remote core drops the
    /// translation; the initiating kernel lane pays one calibrated IPI cost
    /// per remote core (send, remote handler, wait-for-ack). With one vCPU
    /// this degenerates to a plain local invlpg.
    pub fn shootdown_page(&self, hv: &mut Hypervisor, gva: Gva) {
        self.invlpg(hv, gva);
        let ctx = hv.ctx.clone();
        for v in 0..self.n_vcpus {
            if v == self.vcpu {
                continue;
            }
            ctx.charge(Lane::Kernel, Event::TlbShootdownIpi);
            hv.vm_mut(self.vm).vcpus[v as usize].tlb.shootdown_invlpg(gva);
        }
    }

    /// Cross-vCPU full-flush shootdown (munmap / clear_refs batches): flush
    /// locally, then IPI every other vCPU to flush too. With one vCPU this
    /// degenerates to a plain local flush.
    pub fn shootdown_all(&self, hv: &mut Hypervisor) {
        self.flush_tlb(hv);
        let ctx = hv.ctx.clone();
        for v in 0..self.n_vcpus {
            if v == self.vcpu {
                continue;
            }
            ctx.charge(Lane::Kernel, Event::TlbShootdownIpi);
            hv.vm_mut(self.vm).vcpus[v as usize].tlb.shootdown_flush_all();
        }
    }

    // --- the access path ----------------------------------------------------------

    /// Translate + access one byte address, resolving faults like a real
    /// kernel would, then service any pending interrupts (EPML self-IPIs).
    pub fn access(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        write: bool,
        lane: Lane,
    ) -> Result<Hpa, GuestError> {
        let hpa = self.access_no_irq(hv, pid, gva, write, lane)?;
        self.poll_interrupts(hv)?;
        Ok(hpa)
    }

    /// [`Self::access`] without the interrupt poll: the access completes and
    /// any posted self-IPI stays pending. This is the model checker's step
    /// surface — it lets the explorer schedule IPI delivery as its own step
    /// and so enumerate the store/IPI interleavings that `access` (which
    /// services interrupts immediately, like an interruptible kernel path)
    /// never produces. Normal workloads should use `access`.
    pub fn access_no_irq(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        write: bool,
        lane: Lane,
    ) -> Result<Hpa, GuestError> {
        self.run_on_home_vcpu(pid);
        let cr3 = self.process(pid)?.cr3;
        for _attempt in 0..8 {
            match hv.guest_access(self.vm, self.vcpu, cr3, gva, write, lane)? {
                Ok(acc) => return Ok(acc.hpa),
                Err(fault) => self.handle_fault(hv, pid, fault, lane)?,
            }
        }
        Err(GuestError::FaultLoop { pid, gva })
    }

    /// Service pending posted interrupts (the EPML buffer-full self-IPI) on
    /// every vCPU. Each vCPU drains its *own* guest-level PML buffer — the
    /// self-IPI is posted to the core whose buffer filled, and the handler
    /// runs there (`self.vcpu` is switched for the duration so the module
    /// drains the right buffer).
    pub fn poll_interrupts(&mut self, hv: &mut Hypervisor) -> Result<(), GuestError> {
        let entry_vcpu = self.vcpu;
        for v in 0..self.n_vcpus {
            loop {
                let vector = {
                    let vcpu = &mut hv.vm_mut(self.vm).vcpus[v as usize];
                    vcpu.take_interrupt()
                };
                match vector {
                    Some(EPML_SELF_IPI_VECTOR) => {
                        self.vcpu = v;
                        if let Some(mut ooh) = self.ooh.take() {
                            let r = ooh.handle_self_ipi(self, hv);
                            self.ooh = Some(ooh);
                            if let Err(e) = r {
                                self.vcpu = entry_vcpu;
                                return Err(e);
                            }
                        }
                    }
                    Some(_) => {} // spurious vector: ignore
                    None => break,
                }
            }
        }
        self.vcpu = entry_vcpu;
        Ok(())
    }

    // --- typed data access (what workloads use) -------------------------------------

    /// Write `bytes` at `gva`, splitting on page boundaries.
    pub fn write_bytes(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        bytes: &[u8],
        lane: Lane,
    ) -> Result<(), GuestError> {
        self.write_bytes_inner(hv, pid, gva, bytes, lane, true)
    }

    /// [`Self::write_bytes`] without the interrupt poll (see
    /// [`Self::access_no_irq`] for when that matters).
    pub fn write_bytes_no_irq(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        bytes: &[u8],
        lane: Lane,
    ) -> Result<(), GuestError> {
        self.write_bytes_inner(hv, pid, gva, bytes, lane, false)
    }

    fn write_bytes_inner(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        bytes: &[u8],
        lane: Lane,
        poll_irq: bool,
    ) -> Result<(), GuestError> {
        let ctx = hv.ctx.clone();
        let mut off = 0usize;
        while off < bytes.len() {
            let cur = gva.add(off as u64);
            let in_page = (PAGE_SIZE - cur.offset()) as usize;
            let n = in_page.min(bytes.len() - off);
            let hpa = if poll_irq {
                self.access(hv, pid, cur, true, lane)?
            } else {
                self.access_no_irq(hv, pid, cur, true, lane)?
            };
            hv.machine.phys.write(hpa, &bytes[off..off + n])?;
            ctx.charge_ns(
                lane,
                Event::GuestStore,
                (n as u64).div_ceil(8) * ctx.cost().guest_store_ns,
            );
            off += n;
        }
        Ok(())
    }

    /// Read `buf.len()` bytes at `gva`.
    pub fn read_bytes(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        buf: &mut [u8],
        lane: Lane,
    ) -> Result<(), GuestError> {
        let ctx = hv.ctx.clone();
        let mut off = 0usize;
        while off < buf.len() {
            let cur = gva.add(off as u64);
            let in_page = (PAGE_SIZE - cur.offset()) as usize;
            let n = in_page.min(buf.len() - off);
            let hpa = self.access(hv, pid, cur, false, lane)?;
            hv.machine.phys.read(hpa, &mut buf[off..off + n])?;
            ctx.charge_ns(
                lane,
                Event::GuestLoad,
                (n as u64).div_ceil(8) * ctx.cost().guest_load_ns,
            );
            off += n;
        }
        Ok(())
    }

    pub fn write_u64(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        value: u64,
        lane: Lane,
    ) -> Result<(), GuestError> {
        self.write_bytes(hv, pid, gva, &value.to_le_bytes(), lane)
    }

    /// [`Self::write_u64`] without the interrupt poll (model-checker step).
    pub fn write_u64_no_irq(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        value: u64,
        lane: Lane,
    ) -> Result<(), GuestError> {
        self.write_bytes_no_irq(hv, pid, gva, &value.to_le_bytes(), lane)
    }

    pub fn read_u64(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        lane: Lane,
    ) -> Result<u64, GuestError> {
        let mut b = [0u8; 8];
        self.read_bytes(hv, pid, gva, &mut b, lane)?;
        Ok(u64::from_le_bytes(b))
    }

    pub fn write_f64(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        value: f64,
        lane: Lane,
    ) -> Result<(), GuestError> {
        self.write_bytes(hv, pid, gva, &value.to_le_bytes(), lane)
    }

    pub fn read_f64(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        lane: Lane,
    ) -> Result<f64, GuestError> {
        let mut b = [0u8; 8];
        self.read_bytes(hv, pid, gva, &mut b, lane)?;
        Ok(f64::from_le_bytes(b))
    }

    // --- scheduling -------------------------------------------------------------------

    /// Context-switch `pid`'s home vCPU to `pid`: charges M1, loads CR3
    /// (TLB flush), and runs the OoH module's schedule hooks — per-vCPU
    /// SPML enable/disable hypercalls and per-vCPU EPML control vmwrites —
    /// for tracked processes, on that vCPU.
    pub fn context_switch(&mut self, hv: &mut Hypervisor, pid: Pid) -> Result<(), GuestError> {
        self.run_on_home_vcpu(pid);
        let slot = self.vcpu as usize;
        if self.current[slot] == Some(pid) {
            return Ok(());
        }
        let ctx = hv.ctx.clone();
        ctx.charge(Lane::Kernel, Event::ContextSwitch);
        self.context_switches += 1;

        let old = self.current[slot];
        // Schedule-out hook for the old process.
        if let Some(old_pid) = old {
            if let Some(mut ooh) = self.ooh.take() {
                if ooh.tracks(old_pid) {
                    ooh.sched_out(self, hv)?;
                }
                self.ooh = Some(ooh);
            }
        }

        let cr3 = self.process(pid)?.cr3;
        hv.vm_mut(self.vm).vcpus[slot].set_cr3(&ctx, Lane::Kernel, cr3);
        self.current[slot] = Some(pid);
        ctx.counters().add(Event::SchedIn, 1);
        if old.is_some() {
            ctx.counters().add(Event::SchedOut, 1);
        }

        // Schedule-in hook for the new process.
        if let Some(mut ooh) = self.ooh.take() {
            if ooh.tracks(pid) {
                ooh.sched_in(self, hv)?;
            }
            self.ooh = Some(ooh);
        }
        Ok(())
    }

    /// Model a timer tick that preempts the process on the current vCPU in
    /// favour of an idle kernel thread and comes back — two context switches
    /// and the OoH schedule hooks, exactly what perturbs SPML (hypercalls)
    /// and EPML (vmwrites) during the monitoring phase.
    pub fn preemption_round_trip(&mut self, hv: &mut Hypervisor) -> Result<(), GuestError> {
        let Some(pid) = self.current[self.vcpu as usize] else {
            return Ok(());
        };
        let ctx = hv.ctx.clone();
        ctx.charge_n(Lane::Kernel, Event::ContextSwitch, 2);
        self.context_switches += 2;
        if let Some(mut ooh) = self.ooh.take() {
            if ooh.tracks(pid) {
                ooh.sched_out(self, hv)?;
                ooh.sched_in(self, hv)?;
            }
            self.ooh = Some(ooh);
        }
        Ok(())
    }

    /// [`Self::preemption_round_trip`] on an explicit vCPU: the SMP timer
    /// tick, delivered to one core. Workload runners rotate this over all
    /// vCPUs to model per-core timer interrupts.
    pub fn preemption_round_trip_on(
        &mut self,
        hv: &mut Hypervisor,
        vcpu: u32,
    ) -> Result<(), GuestError> {
        debug_assert!(vcpu < self.n_vcpus, "vCPU {vcpu} out of range");
        self.vcpu = vcpu;
        self.preemption_round_trip(hv)
    }

    /// Deliver the next timer tick, rotating deterministically across the
    /// vCPUs so every core's scheduler hooks fire under SMP. At one vCPU
    /// this is exactly [`Self::preemption_round_trip`] on vCPU 0.
    pub fn timer_tick(&mut self, hv: &mut Hypervisor) -> Result<(), GuestError> {
        let target = (self.timer_ticks % u64::from(self.n_vcpus)) as u32;
        self.timer_ticks += 1;
        self.preemption_round_trip_on(hv, target)
    }

    // --- VMA helpers used by trackers ------------------------------------------------------

    /// All VMAs of `pid` (tracker-facing copy of /proc/PID/maps).
    pub fn vmas(&self, pid: Pid) -> Result<Vec<Vma>, GuestError> {
        Ok(self.process(pid)?.vmas.clone())
    }

    /// The process's GPA↔GVA map generation (see
    /// [`Process::map_generation`]): trackers caching reverse-map results
    /// across rounds must invalidate when this moves.
    pub fn map_generation(&self, pid: Pid) -> Result<u64, GuestError> {
        Ok(self.process(pid)?.map_generation())
    }
}

impl std::fmt::Debug for GuestKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuestKernel")
            .field("vm", &self.vm)
            .field("processes", &self.processes.len())
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}
