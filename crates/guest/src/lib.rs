//! # ooh-guest — the Linux slice the OoH paper runs inside the VM
//!
//! A guest kernel the size of exactly what the four dirty-page-tracking
//! techniques need:
//!
//! * processes with 4-level page tables in guest memory, VMAs, and demand
//!   paging ([`kernel::GuestKernel`], [`process::Process`]);
//! * the page fault handler covering demand-zero faults, soft-dirty
//!   re-protection faults (the `/proc` technique's engine), and userfaultfd
//!   delivery in missing and write-protect modes ([`ufd`]);
//! * `/proc/<PID>/pagemap` + `clear_refs` emulation ([`procfs`]);
//! * a scheduler surface (context switches with CR3 loads and TLB flushes)
//!   that invokes the OoH module's schedule hooks;
//! * the **OoH kernel module** ([`ooh_module::OohModule`]) — the guest half
//!   of the paper's UIO driver: per-process ring buffer, SPML hypercall
//!   hooks, EPML guest-level PML buffer management and the buffer-full
//!   self-IPI handler.

#![forbid(unsafe_code)]

pub mod kernel;
pub mod ooh_module;
pub mod process;
pub mod procfs;
pub mod spp_guard;
pub mod ufd;

pub use kernel::{GuestError, GuestKernel};
pub use ooh_module::{OohMode, OohModule, RING_DATA_PAGES};
pub use process::{Pid, Process, Vma, VmaKind, MMAP_BASE};
pub use procfs::PagemapEntry;
pub use spp_guard::{mask_protecting, subpages_for_bytes};
pub use ufd::{Ufd, UfdEvent, UfdId, UfdMode};

#[cfg(test)]
mod tests {
    use super::*;
    use ooh_hypervisor::Hypervisor;
    use ooh_machine::{Gva, MachineConfig, PAGE_SIZE};
    use ooh_sim::{Event, Lane, SimCtx};

    /// Boot a single-VM stack: hypervisor + guest kernel + one process.
    fn boot(epml: bool) -> (Hypervisor, GuestKernel, Pid) {
        let cfg = if epml {
            MachineConfig::epml(256 * 1024 * PAGE_SIZE)
        } else {
            MachineConfig::stock(256 * 1024 * PAGE_SIZE)
        };
        let mut hv = Hypervisor::new(cfg, SimCtx::new());
        let vm = hv.create_vm(64 * 1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        (hv, kernel, pid)
    }

    #[test]
    fn demand_paging_roundtrip() {
        let (mut hv, mut kernel, pid) = boot(false);
        let range = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
        kernel
            .write_u64(&mut hv, pid, range.start.add(16), 0xFEED, Lane::Tracked)
            .unwrap();
        let v = kernel
            .read_u64(&mut hv, pid, range.start.add(16), Lane::Tracked)
            .unwrap();
        assert_eq!(v, 0xFEED);
        assert_eq!(kernel.process(pid).unwrap().resident_pages(), 1);
        assert!(hv.ctx.counters().get(Event::PageFaultKernel) >= 1);
    }

    #[test]
    fn write_across_page_boundary() {
        let (mut hv, mut kernel, pid) = boot(false);
        let range = kernel.mmap(pid, 2, true, VmaKind::Anon).unwrap();
        let addr = range.start.add(PAGE_SIZE - 4);
        kernel
            .write_bytes(&mut hv, pid, addr, &[1, 2, 3, 4, 5, 6, 7, 8], Lane::Tracked)
            .unwrap();
        let mut buf = [0u8; 8];
        kernel
            .read_bytes(&mut hv, pid, addr, &mut buf, Lane::Tracked)
            .unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(kernel.process(pid).unwrap().resident_pages(), 2);
    }

    #[test]
    fn out_of_vma_access_segfaults() {
        let (mut hv, mut kernel, pid) = boot(false);
        let r = kernel.write_u64(&mut hv, pid, Gva(0x1000), 1, Lane::Tracked);
        assert!(matches!(r, Err(GuestError::Segfault { .. })));
    }

    #[test]
    fn read_only_vma_rejects_writes() {
        let (mut hv, mut kernel, pid) = boot(false);
        let range = kernel.mmap(pid, 1, false, VmaKind::Anon).unwrap();
        // Read works (demand-zero).
        let v = kernel
            .read_u64(&mut hv, pid, range.start, Lane::Tracked)
            .unwrap();
        assert_eq!(v, 0);
        let r = kernel.write_u64(&mut hv, pid, range.start, 1, Lane::Tracked);
        assert!(matches!(r, Err(GuestError::Segfault { .. })));
    }

    #[test]
    fn soft_dirty_cycle() {
        let (mut hv, mut kernel, pid) = boot(false);
        let range = kernel.mmap(pid, 8, true, VmaKind::Anon).unwrap();
        // Touch all pages (new pages are born soft-dirty).
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 1, Lane::Tracked).unwrap();
        }
        let dirty = kernel.soft_dirty_pages(&mut hv, pid, Lane::Tracker).unwrap();
        assert_eq!(dirty.len(), 8);

        // clear_refs: everything clean, writes re-fault and re-mark.
        let touched = kernel.clear_refs(&mut hv, pid, Lane::Tracker).unwrap();
        assert_eq!(touched, 8);
        assert!(kernel
            .soft_dirty_pages(&mut hv, pid, Lane::Tracker)
            .unwrap()
            .is_empty());

        let faults_before = hv.ctx.counters().get(Event::PageFaultKernel);
        kernel
            .write_u64(&mut hv, pid, range.start.add(2 * PAGE_SIZE), 7, Lane::Tracked)
            .unwrap();
        assert_eq!(
            hv.ctx.counters().get(Event::PageFaultKernel),
            faults_before + 1,
            "re-protected page must fault once"
        );
        let dirty = kernel.soft_dirty_pages(&mut hv, pid, Lane::Tracker).unwrap();
        assert_eq!(
            dirty.pages().collect::<Vec<_>>(),
            vec![range.start.add(2 * PAGE_SIZE).page()]
        );

        // Second write to the same page: no extra fault.
        kernel
            .write_u64(&mut hv, pid, range.start.add(2 * PAGE_SIZE + 8), 8, Lane::Tracked)
            .unwrap();
        assert_eq!(hv.ctx.counters().get(Event::PageFaultKernel), faults_before + 1);
    }

    #[test]
    fn ufd_write_protect_cycle() {
        let (mut hv, mut kernel, pid) = boot(false);
        let range = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 1, Lane::Tracked).unwrap();
        }
        let ufd = kernel.ufd_create(pid, UfdMode::WriteProtect);
        kernel.ufd_register(&mut hv, ufd, range);
        let protected = kernel.ufd_writeprotect(&mut hv, ufd, range, true).unwrap();
        assert_eq!(protected, 4);

        kernel
            .write_u64(&mut hv, pid, range.start.add(PAGE_SIZE), 2, Lane::Tracked)
            .unwrap();
        let events = kernel.ufd_read_events(ufd);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].gva, range.start.add(PAGE_SIZE));
        assert!(events[0].write);
        assert_eq!(hv.ctx.counters().get(Event::PageFaultUser), 1);

        // Unprotected after resolution: second write, no new event.
        kernel
            .write_u64(&mut hv, pid, range.start.add(PAGE_SIZE + 8), 3, Lane::Tracked)
            .unwrap();
        assert!(kernel.ufd_read_events(ufd).is_empty());
    }

    #[test]
    fn ufd_missing_mode_notifies_first_touch() {
        let (mut hv, mut kernel, pid) = boot(false);
        let range = kernel.mmap(pid, 2, true, VmaKind::Anon).unwrap();
        let ufd = kernel.ufd_create(pid, UfdMode::Missing);
        kernel.ufd_register(&mut hv, ufd, range);
        kernel
            .write_u64(&mut hv, pid, range.start, 1, Lane::Tracked)
            .unwrap();
        let events = kernel.ufd_read_events(ufd);
        assert_eq!(events.len(), 1);
        // Second touch of the now-present page: no event.
        kernel
            .write_u64(&mut hv, pid, range.start.add(8), 2, Lane::Tracked)
            .unwrap();
        assert!(kernel.ufd_read_events(ufd).is_empty());
    }

    #[test]
    fn spml_module_collects_dirty_gpas_into_ring() {
        let (mut hv, mut kernel, pid) = boot(false);
        let range = kernel.mmap(pid, 16, true, VmaKind::Anon).unwrap();
        // Pre-fault so PT allocations don't pollute the log window.
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 0, Lane::Tracked).unwrap();
        }

        let mut module = OohModule::load(&mut kernel, &mut hv, OohMode::Spml).unwrap();
        module.track(&mut kernel, &mut hv, pid).unwrap();
        kernel.ooh = Some(module);

        // Dirty 5 pages... but D bits are already set from pre-faulting, so
        // force a fresh round: schedule out (drains + clears) and back in.
        kernel.preemption_round_trip(&mut hv).unwrap();
        // Drain anything from the warm-up into the ring and discard it.
        let ring = kernel.ooh.as_ref().unwrap().ring().clone();
        ring.drain(&mut hv.machine.phys).unwrap();

        for i in [3u64, 7, 11] {
            kernel
                .write_u64(&mut hv, pid, range.start.add(i * PAGE_SIZE), i, Lane::Tracked)
                .unwrap();
        }
        // Schedule-out flushes the PML buffer into the ring via hypercall.
        kernel.preemption_round_trip(&mut hv).unwrap();

        let entries = ring.drain(&mut hv.machine.phys).unwrap();
        // Ring holds GPAs; translate expectations via the process map.
        let proc = kernel.process(pid).unwrap();
        for i in [3u64, 7, 11] {
            let gva_page = range.start.add(i * PAGE_SIZE).page();
            let gpa_page = proc.resident[&gva_page];
            assert!(
                entries.contains(&(gpa_page << 12)),
                "GPA of dirtied page {i} must be in the ring"
            );
        }
        assert!(hv.ctx.counters().get(Event::HypercallDisableLogging) >= 2);
    }

    #[test]
    fn epml_module_collects_dirty_gvas_into_ring() {
        let (mut hv, mut kernel, pid) = boot(true);
        let range = kernel.mmap(pid, 16, true, VmaKind::Anon).unwrap();
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 0, Lane::Tracked).unwrap();
        }

        let mut module = OohModule::load(&mut kernel, &mut hv, OohMode::Epml).unwrap();
        module.track(&mut kernel, &mut hv, pid).unwrap();
        kernel.ooh = Some(module);

        // Start a clean round (clears guest D bits via drain).
        kernel.preemption_round_trip(&mut hv).unwrap();
        let ring = kernel.ooh.as_ref().unwrap().ring().clone();
        ring.drain(&mut hv.machine.phys).unwrap();

        for i in [2u64, 9] {
            kernel
                .write_u64(&mut hv, pid, range.start.add(i * PAGE_SIZE), i, Lane::Tracked)
                .unwrap();
        }
        kernel.preemption_round_trip(&mut hv).unwrap();

        let entries = ring.drain(&mut hv.machine.phys).unwrap();
        for i in [2u64, 9] {
            let gva = range.start.add(i * PAGE_SIZE);
            assert!(
                entries.contains(&gva.raw()),
                "GVA of dirtied page {i} must be in the ring (got {entries:?})"
            );
        }
        // EPML's hot path is vmwrites, not hypercalls.
        assert!(hv.ctx.counters().get(Event::Vmwrite) >= 4);
        assert_eq!(hv.ctx.counters().get(Event::HypercallDisableLogging), 0);
    }

    #[test]
    fn epml_self_ipi_fires_on_buffer_full() {
        let (mut hv, mut kernel, pid) = boot(true);
        // > 512 pages so the guest-level buffer fills mid-run.
        let range = kernel.mmap(pid, 600, true, VmaKind::Anon).unwrap();
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 0, Lane::Tracked).unwrap();
        }
        let mut module = OohModule::load(&mut kernel, &mut hv, OohMode::Epml).unwrap();
        module.track(&mut kernel, &mut hv, pid).unwrap();
        kernel.ooh = Some(module);
        kernel.preemption_round_trip(&mut hv).unwrap();
        let ring = kernel.ooh.as_ref().unwrap().ring().clone();
        ring.drain(&mut hv.machine.phys).unwrap();

        // Dirty all 600 pages in one scheduling quantum.
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 1, Lane::Tracked).unwrap();
        }
        kernel.preemption_round_trip(&mut hv).unwrap();

        let module = kernel.ooh.as_ref().unwrap();
        assert!(module.self_ipis >= 1, "buffer must have filled at least once");
        assert!(hv.ctx.counters().get(Event::PmlSelfIpi) >= 1);
        let entries = ring.drain(&mut hv.machine.phys).unwrap();
        let unique: std::collections::BTreeSet<u64> = entries.iter().copied().collect();
        assert_eq!(unique.len(), 600, "every dirtied page logged exactly once");
    }

    #[test]
    fn process_exit_frees_guest_memory() {
        let (mut hv, mut kernel, pid) = boot(false);
        let range = kernel.mmap(pid, 8, true, VmaKind::Anon).unwrap();
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 1, Lane::Tracked).unwrap();
        }
        let allocated = hv.vm(kernel.vm).allocated_pages();
        assert!(allocated >= 9); // 8 data + PT pages
        kernel.exit(&mut hv, pid).unwrap();
        assert_eq!(hv.vm(kernel.vm).allocated_pages(), 0);
    }

    #[test]
    fn munmap_releases_pages_and_faults_after() {
        let (mut hv, mut kernel, pid) = boot(false);
        let range = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
        for g in range.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 1, Lane::Tracked).unwrap();
        }
        kernel.munmap(&mut hv, pid, range).unwrap();
        assert_eq!(kernel.process(pid).unwrap().resident_pages(), 0);
        let r = kernel.read_u64(&mut hv, pid, range.start, Lane::Tracked);
        assert!(matches!(r, Err(GuestError::Segfault { .. })));
    }

    #[test]
    fn context_switch_between_processes_isolates_address_spaces() {
        let (mut hv, mut kernel, pid_a) = boot(false);
        let pid_b = kernel.spawn(&mut hv).unwrap();
        let ra = kernel.mmap(pid_a, 1, true, VmaKind::Anon).unwrap();
        let rb = kernel.mmap(pid_b, 1, true, VmaKind::Anon).unwrap();
        // Same GVA in both processes (both start at MMAP_BASE).
        assert_eq!(ra.start, rb.start);
        kernel.context_switch(&mut hv, pid_a).unwrap();
        kernel.write_u64(&mut hv, pid_a, ra.start, 0xAAAA, Lane::Tracked).unwrap();
        kernel.context_switch(&mut hv, pid_b).unwrap();
        kernel.write_u64(&mut hv, pid_b, rb.start, 0xBBBB, Lane::Tracked).unwrap();
        kernel.context_switch(&mut hv, pid_a).unwrap();
        assert_eq!(
            kernel.read_u64(&mut hv, pid_a, ra.start, Lane::Tracked).unwrap(),
            0xAAAA
        );
    }
}
