//! The OoH kernel module — the guest-kernel half of the paper's UIO-style
//! library.
//!
//! Loaded once per guest; a tracker registers the PID it wants monitored via
//! the module's ioctl surface (wrapped by `ooh-core`'s userspace library).
//! The module:
//!
//! * allocates the **per-process ring buffer** in guest memory and shares it
//!   with userspace (and, under SPML, with the hypervisor);
//! * hooks the scheduler: on schedule-in/out of the tracked process it
//!   enables/disables address logging — via the `enable_logging` /
//!   `disable_logging` hypercalls under SPML, via a single shadow `vmwrite`
//!   under EPML;
//! * under EPML, owns the guest-level PML buffer (a guest page whose GPA it
//!   vmwrites into the `Guest PML Address` VMCS field) and handles the
//!   buffer-full virtual self-IPI by draining GVAs into the ring and
//!   clearing the guest PTE dirty bits so the next round re-logs.

use crate::kernel::{GuestError, GuestKernel};
use crate::process::Pid;
use ooh_hypervisor::{Hypercall, Hypervisor};
use ooh_machine::{Field, Gpa, Gva, Pte, RingView, PML_ENTRIES};
use ooh_sim::{Event, Lane};

/// Which OoH design the module operates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum OohMode {
    Spml,
    Epml,
}

/// Ring buffer size in data pages (512 entries each): 128 pages = the
/// paper's 512 KiB buffer, holding 65536 logged addresses (256 MiB of
/// distinct dirtied pages) between fetches.
pub const RING_DATA_PAGES: usize = 128;

/// The loaded module state.
pub struct OohModule {
    pub mode: OohMode,
    tracked: Option<Pid>,
    /// Guest pages backing the ring (header first), kept for teardown.
    ring_pages_gpa: Vec<Gpa>,
    /// The kernel's view of the ring (HPA-resolved at allocation time; ring
    /// pages are pinned, so the translation is stable).
    ring: RingView,
    /// EPML: per-vCPU guest-level PML buffer pages (GPA, module-owned),
    /// indexed by vCPU id. Each core logs into — and drains, via its own
    /// self-IPI — its own buffer; they are never shared across cores.
    guest_pml_gpas: Vec<Option<Gpa>>,
    /// Statistics: entries pushed into the ring by this module (EPML) or by
    /// the hypervisor on our behalf (SPML, counted at fetch).
    pub entries_logged: u64,
    /// Self-IPIs handled (EPML).
    pub self_ipis: u64,
    /// Drains at or below this entry count invalidate per page; above it,
    /// one full TLB flush (Linux's flush-threshold heuristic; ablatable).
    pub invlpg_threshold: u64,
    /// Seeded ordering mutation for the model checker's self-validation:
    /// the drain resets the hardware index *before* copying entries out
    /// (losing everything the buffer held). Never set in production paths.
    pub mutate_clear_before_drain: bool,
    /// Seeded ordering mutation: the schedule-out hook returns without
    /// disabling logging or draining, so writes of the *next* process keep
    /// logging into the tracked buffer. Never set in production paths.
    pub mutate_skip_disable_logging: bool,
}

impl OohModule {
    /// Load the module: allocates the shared ring in guest memory and
    /// performs the one-time hypervisor setup for `mode`. Charged as the
    /// paper's M3 wrapper around the M9/M10 hypercall.
    pub fn load(
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
        mode: OohMode,
    ) -> Result<OohModule, GuestError> {
        Self::load_with(kernel, hv, mode, RING_DATA_PAGES)
    }

    /// As [`load`](Self::load) with an explicit ring size (ablation knob).
    pub fn load_with(
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
        mode: OohMode,
        ring_data_pages: usize,
    ) -> Result<OohModule, GuestError> {
        let ctx = hv.ctx.clone();
        ctx.charge(Lane::Tracker, Event::IoctlInitPml);

        // Allocate the ring in guest memory: 1 header + N data pages.
        let mut ring_pages_gpa = Vec::with_capacity(1 + ring_data_pages);
        for _ in 0..1 + ring_data_pages {
            ring_pages_gpa.push(hv.alloc_guest_page(kernel.vm)?);
        }
        let header_hpa = hv
            .gpa_to_hpa(kernel.vm, ring_pages_gpa[0])?
            .expect("just mapped");
        let mut data_hpas = Vec::with_capacity(ring_data_pages);
        for g in &ring_pages_gpa[1..] {
            data_hpas.push(hv.gpa_to_hpa(kernel.vm, *g)?.expect("just mapped"));
        }
        let ring = RingView::create(&mut hv.machine.phys, header_hpa, data_hpas)?;

        let mut module = OohModule {
            mode,
            tracked: None,
            ring_pages_gpa,
            ring,
            guest_pml_gpas: vec![None; kernel.n_vcpus() as usize],
            entries_logged: 0,
            self_ipis: 0,
            invlpg_threshold: 64,
            mutate_clear_before_drain: false,
            mutate_skip_disable_logging: false,
        };

        match mode {
            OohMode::Spml => {
                let call = Hypercall::SpmlInit {
                    ring_header: module.ring_pages_gpa[0],
                    ring_data: module.ring_pages_gpa[1..].to_vec(),
                };
                hv.hypercall(kernel.vm, kernel.vcpu, call, Lane::Tracker)?;
            }
            OohMode::Epml => {
                // One-time, per vCPU: enable VMCS shadowing (the only
                // hypercall EPML ever makes), then give every core its own
                // guest-level buffer with vmexit-free vmwrites. The tracked
                // process executes on its home vCPU, but the buffer-full
                // self-IPI is delivered to whichever core logged, so each
                // core must own a drainable buffer.
                for v in 0..kernel.n_vcpus() {
                    hv.hypercall(kernel.vm, v, Hypercall::EpmlInit, Lane::Tracker)?;
                    let buf_gpa = hv.alloc_guest_page(kernel.vm)?;
                    module.guest_pml_gpas[v as usize] = Some(buf_gpa);
                    hv.guest_vmwrite(
                        kernel.vm,
                        v,
                        Field::GuestPmlAddress,
                        buf_gpa.raw(),
                        Lane::Tracker,
                    )?;
                    hv.guest_vmwrite(
                        kernel.vm,
                        v,
                        Field::GuestPmlIndex,
                        (PML_ENTRIES - 1) as u64,
                        Lane::Tracker,
                    )?;
                }
            }
        }
        Ok(module)
    }

    /// Register the PID to monitor. Logging starts at its next schedule-in
    /// (or immediately if it is current).
    pub fn track(
        &mut self,
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
        pid: Pid,
    ) -> Result<(), GuestError> {
        self.tracked = Some(pid);
        // The ioctl runs on the tracked process's home core; the logging
        // state the hooks toggle lives in that vCPU's VMCS.
        kernel.vcpu = kernel.vcpu_of(pid);
        if self.mode == OohMode::Epml {
            // Reset the process's accumulated guest-PT dirty state so only
            // writes from now on log (the SPML equivalent happens inside the
            // hypervisor's init hypercall). Cost is covered by the module
            // ioctl (M3/M10) the tracker already paid.
            let resident: Vec<u64> = kernel
                .process(pid)?
                .resident
                .keys()
                .copied()
                .collect();
            // Huge regions visited once: the 512 resident pages of a region
            // share one leaf (and one D bit).
            let mut huge_done = std::collections::BTreeSet::new();
            for gva_page in resident {
                let gva = ooh_machine::Gva::from_page(gva_page);
                if let Some((slot, pte)) = kernel.pte_lookup(hv, pid, gva)? {
                    if pte.is_dirty() {
                        kernel.kernel_phys_write(hv, slot, pte.without(Pte::DIRTY).0)?;
                        for v in 0..kernel.n_vcpus() {
                            hv.note_guest_pte_dirty_cleared(kernel.vm, v, gva);
                        }
                    }
                } else if huge_done.insert(gva.huge_page()) {
                    if let Some((slot, hpte)) = kernel.huge_pte_lookup(hv, pid, gva)? {
                        if hpte.is_dirty() {
                            kernel.kernel_phys_write(hv, slot, hpte.without(Pte::DIRTY).0)?;
                            let base = gva.huge_base();
                            for i in 0..ooh_machine::HUGE_PAGE_PAGES {
                                let g = base.add(i * ooh_machine::PAGE_SIZE);
                                for v in 0..kernel.n_vcpus() {
                                    hv.note_guest_pte_dirty_cleared(kernel.vm, v, g);
                                }
                            }
                        }
                    }
                }
            }
            // The D-bit clears must be visible on every core.
            kernel.shootdown_all(hv);
        }
        if kernel.current() == Some(pid) {
            self.sched_in(kernel, hv)?;
        }
        Ok(())
    }

    /// Stop monitoring (tracker detached).
    pub fn untrack(
        &mut self,
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
    ) -> Result<(), GuestError> {
        if let Some(pid) = self.tracked.take() {
            kernel.vcpu = kernel.vcpu_of(pid);
            self.disable_logging(kernel, hv)?;
        }
        Ok(())
    }

    pub fn tracks(&self, pid: Pid) -> bool {
        self.tracked == Some(pid)
    }

    pub fn tracked(&self) -> Option<Pid> {
        self.tracked
    }

    /// The ring view userspace attaches to (UIO mmap of the same pages).
    pub fn ring(&self) -> &RingView {
        &self.ring
    }

    /// Scheduler hook: tracked process scheduled in.
    pub fn sched_in(
        &mut self,
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
    ) -> Result<(), GuestError> {
        match self.mode {
            OohMode::Spml => {
                hv.hypercall(kernel.vm, kernel.vcpu, Hypercall::EnableLogging, Lane::Kernel)?;
            }
            OohMode::Epml => {
                hv.guest_vmwrite(kernel.vm, kernel.vcpu, Field::EpmlControl, 1, Lane::Kernel)?;
            }
        }
        Ok(())
    }

    /// Scheduler hook: tracked process scheduled out.
    pub fn sched_out(
        &mut self,
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
    ) -> Result<(), GuestError> {
        if self.mutate_skip_disable_logging {
            return Ok(());
        }
        self.disable_logging(kernel, hv)
    }

    fn disable_logging(
        &mut self,
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
    ) -> Result<(), GuestError> {
        match self.mode {
            OohMode::Spml => {
                // The hypervisor flushes the PML buffer into the ring as part
                // of the hypercall (the paper's M14).
                hv.hypercall(
                    kernel.vm,
                    kernel.vcpu,
                    Hypercall::DisableLogging,
                    Lane::Kernel,
                )?;
            }
            OohMode::Epml => {
                hv.guest_vmwrite(kernel.vm, kernel.vcpu, Field::EpmlControl, 0, Lane::Kernel)?;
                // Drain whatever the guest buffer holds so entries are not
                // misattributed to the next process.
                self.drain_guest_buffer(kernel, hv)?;
            }
        }
        Ok(())
    }

    /// Fetch-path flush: make sure everything logged so far is visible in
    /// the ring. Under SPML this is a `disable_logging`/`enable_logging`
    /// hypercall pair (the hypervisor drains the PML buffer as part of
    /// disable); under EPML the module drains its own guest-level buffer.
    pub fn flush(
        &mut self,
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
    ) -> Result<(), GuestError> {
        let Some(pid) = self.tracked else {
            return Ok(());
        };
        kernel.vcpu = kernel.vcpu_of(pid);
        match self.mode {
            OohMode::Spml => {
                let running = kernel.current() == Some(pid);
                hv.hypercall(
                    kernel.vm,
                    kernel.vcpu,
                    Hypercall::DisableLogging,
                    Lane::Tracker,
                )?;
                if running {
                    hv.hypercall(
                        kernel.vm,
                        kernel.vcpu,
                        Hypercall::EnableLogging,
                        Lane::Tracker,
                    )?;
                }
            }
            OohMode::Epml => {
                // The tracked process logs into its home vCPU's buffer, but
                // scheduling history may have left entries on other cores —
                // drain every per-vCPU buffer, then return to the home core.
                let entry_vcpu = kernel.vcpu;
                for v in 0..kernel.n_vcpus() {
                    kernel.vcpu = v;
                    self.drain_guest_buffer(kernel, hv)?;
                }
                kernel.vcpu = entry_vcpu;
            }
        }
        Ok(())
    }

    /// EPML buffer-full self-IPI handler.
    pub fn handle_self_ipi(
        &mut self,
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
    ) -> Result<(), GuestError> {
        self.self_ipis += 1;
        self.drain_guest_buffer(kernel, hv)
    }

    /// Drain the guest-level PML buffer: move logged GVAs into the ring,
    /// clear their guest PTE dirty bits, flush the TLB once, and reset the
    /// hardware index with a single vmwrite.
    fn drain_guest_buffer(
        &mut self,
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
    ) -> Result<(), GuestError> {
        if self.mode != OohMode::Epml {
            return Ok(());
        }
        // Each core drains its own buffer (the self-IPI handler runs on the
        // core whose buffer filled; `kernel.vcpu` names it here).
        let Some(buf_gpa) = self
            .guest_pml_gpas
            .get(kernel.vcpu as usize)
            .copied()
            .flatten()
        else {
            return Ok(());
        };
        let ctx = hv.ctx.clone();
        let _span = ctx.span(ooh_sim::ScopeKind::Op, "epml_drain", 0);

        // Read the hardware index (vmread — the paper's M7).
        let index = hv.guest_vmread(kernel.vm, kernel.vcpu, Field::GuestPmlIndex, Lane::Kernel)?;
        let count = if index >= PML_ENTRIES as u64 {
            PML_ENTRIES as u64 // wrapped: buffer full
        } else {
            (PML_ENTRIES - 1) as u64 - index
        };
        if count == 0 {
            return Ok(());
        }

        if self.mutate_clear_before_drain {
            // Seeded bug: reset the hardware index before copying anything
            // out — the logged GVAs are gone, and the pages' dirty bits stay
            // set so they never re-log either.
            hv.guest_vmwrite(
                kernel.vm,
                kernel.vcpu,
                Field::GuestPmlIndex,
                (PML_ENTRIES - 1) as u64,
                Lane::Kernel,
            )?;
            return Ok(());
        }

        let Some(pid) = self.tracked else {
            // Nothing to attribute entries to; just reset. Dropping the
            // logged GVAs is deliberate here: with no tracked process the
            // entries have no consumer, and their pages' D bits stay set so
            // nothing is lost for a later track().
            hv.guest_vmwrite( // ooh-verify: allow(drain-before-clear)
                kernel.vm,
                kernel.vcpu,
                Field::GuestPmlIndex,
                (PML_ENTRIES - 1) as u64,
                Lane::Kernel,
            )?;
            return Ok(());
        };

        // Entries were written top-down from slot 511. Small drains
        // invalidate per page (Linux's flush threshold heuristic); big
        // drains do one full flush instead of hundreds of invlpgs.
        let per_page_invalidate = count <= self.invlpg_threshold;
        for k in 0..count {
            let slot = (PML_ENTRIES as u64 - 1) - k;
            let gva_raw = kernel.kernel_phys_read(hv, buf_gpa.add(slot * 8))?;
            let gva = Gva(gva_raw);

            // Keep-huge expansion: the logged GVA is the precise faulting
            // page, but when the mapping is still a 2M leaf its one D bit
            // spoke for the whole region — sibling writes after the 0→1
            // transition never logged. Surface all 512 pages to the ring
            // (cost-charged per copied entry, like the hypervisor's SPML
            // drain) and retire the region's dirty state once.
            let huge = match kernel.pte_lookup(hv, pid, gva)? {
                Some(_) => None,
                None => kernel.huge_pte_lookup(hv, pid, gva)?,
            };
            if let Some((hslot, hpte)) = huge {
                let base = gva.huge_base();
                for i in 0..ooh_machine::HUGE_PAGE_PAGES {
                    let g = base.add(i * ooh_machine::PAGE_SIZE);
                    ctx.charge(Lane::Kernel, Event::RingBufferCopyEntry);
                    if !self.ring.push(&mut hv.machine.phys, g.raw())? {
                        ctx.counters().add(Event::RingBufferOverflow, 1);
                    }
                    self.entries_logged += 1;
                }
                if hpte.is_dirty() {
                    kernel.kernel_phys_write(hv, hslot, hpte.without(Pte::DIRTY).0)?;
                    for i in 0..ooh_machine::HUGE_PAGE_PAGES {
                        let g = base.add(i * ooh_machine::PAGE_SIZE);
                        for v in 0..kernel.n_vcpus() {
                            hv.note_guest_pte_dirty_cleared(kernel.vm, v, g);
                        }
                    }
                }
                if per_page_invalidate {
                    // One shootdown drops the covering huge translation on
                    // every core.
                    kernel.shootdown_page(hv, base);
                }
                continue;
            }

            ctx.charge(Lane::Kernel, Event::RingBufferCopyEntry);
            if !self.ring.push(&mut hv.machine.phys, gva_raw)? {
                ctx.counters().add(Event::RingBufferOverflow, 1);
            }
            self.entries_logged += 1;
            // Clear the guest PTE dirty bit so the next write re-logs. The
            // PTE is shared by every core, so every vCPU's shadow — and,
            // below, every vCPU's TLB — must forget it.
            if let Some((slot_gpa, pte)) = kernel.pte_lookup(hv, pid, gva)? {
                if pte.is_dirty() {
                    kernel.kernel_phys_write(hv, slot_gpa, pte.without(Pte::DIRTY).0)?;
                    for v in 0..kernel.n_vcpus() {
                        hv.note_guest_pte_dirty_cleared(kernel.vm, v, gva);
                    }
                }
            }
            if per_page_invalidate {
                kernel.shootdown_page(hv, gva);
            }
        }
        if !per_page_invalidate {
            kernel.shootdown_all(hv);
        }

        // Reset the hardware index (vmwrite — M8).
        hv.guest_vmwrite(
            kernel.vm,
            kernel.vcpu,
            Field::GuestPmlIndex,
            (PML_ENTRIES - 1) as u64,
            Lane::Kernel,
        )?;
        Ok(())
    }

    /// Unload: deactivate the hypervisor side and release pages. Charged as
    /// the paper's M4 wrapper around M11/M12.
    pub fn unload(
        mut self,
        kernel: &mut GuestKernel,
        hv: &mut Hypervisor,
    ) -> Result<(), GuestError> {
        let ctx = hv.ctx.clone();
        ctx.charge(Lane::Tracker, Event::IoctlDeactivatePml);
        self.untrack(kernel, hv)?;
        match self.mode {
            OohMode::Spml => {
                hv.hypercall(
                    kernel.vm,
                    kernel.vcpu,
                    Hypercall::SpmlDeactivate,
                    Lane::Tracker,
                )?;
            }
            OohMode::Epml => {
                hv.guest_vmwrite(kernel.vm, kernel.vcpu, Field::EpmlControl, 0, Lane::Tracker)?;
                for v in 0..kernel.n_vcpus() {
                    hv.hypercall(kernel.vm, v, Hypercall::EpmlDeactivate, Lane::Tracker)?;
                }
                for slot in self.guest_pml_gpas.iter_mut() {
                    if let Some(g) = slot.take() {
                        hv.free_guest_page(kernel.vm, g)?;
                    }
                }
            }
        }
        for g in self.ring_pages_gpa.drain(..) {
            hv.free_guest_page(kernel.vm, g)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for OohModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OohModule")
            .field("mode", &self.mode)
            .field("tracked", &self.tracked)
            .field("entries_logged", &self.entries_logged)
            .field("self_ipis", &self.self_ipis)
            .finish_non_exhaustive()
    }
}
