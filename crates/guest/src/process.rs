//! Guest processes and their virtual address spaces (VMAs).

use ooh_machine::{Gpa, Gva, GvaRange};
use serde::Serialize;

/// Process identifier inside a guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// What a mapping is for (reporting / checkpoint metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum VmaKind {
    /// Anonymous memory (malloc/mmap) — what the trackers monitor.
    Anon,
    /// Process stack.
    Stack,
    /// GC-managed heap.
    GcHeap,
}

/// One virtual memory area.
#[derive(Debug, Clone)]
pub struct Vma {
    pub range: GvaRange,
    /// VMA-level write permission (the PTE may be temporarily
    /// write-protected by soft-dirty or userfaultfd machinery; the VMA
    /// permission is what faults are resolved against).
    pub writable: bool,
    pub kind: VmaKind,
    /// Huge-page eligible: the VMA starts 2M-aligned and not-present
    /// faults on its fully-covered 2 MiB regions install 2M leaf PTEs
    /// (any tail shorter than a region stays 4K).
    pub huge: bool,
}

/// Base of the mmap region we hand out (mirrors the x86-64 mmap area).
pub const MMAP_BASE: Gva = Gva(0x7f00_0000_0000);
/// Guard gap between successive mappings, in pages.
const GUARD_PAGES: u64 = 1;

/// One guest process: an address space rooted at `cr3` plus its VMAs.
pub struct Process {
    pub pid: Pid,
    /// Guest-physical root of this process's page table hierarchy.
    pub cr3: Gpa,
    pub vmas: Vec<Vma>,
    /// Page-table pages allocated for this process (for teardown and
    /// accounting — the kernel frees them on exit).
    pub pt_pages: Vec<Gpa>,
    /// Data pages currently mapped (GVA page → GPA page), kept by the
    /// kernel for teardown, checkpointing, and pagemap reads. Mutate through
    /// [`Process::map_resident`] / [`Process::unmap_resident`] so the
    /// inverse index stays consistent.
    pub resident: std::collections::BTreeMap<u64, u64>,
    /// Inverse of `resident` (GPA page → GVA page), maintained incrementally
    /// on the kernel map/unmap path so reverse mapping is O(log n) per
    /// lookup in *wall* time. The *virtual-clock* cost of a reverse-map
    /// lookup is still the paper's pagemap-scan cost (charged in
    /// `ooh-core::revmap`); this index only removes the simulator's own
    /// rebuild-per-batch overhead.
    resident_inverse: std::collections::BTreeMap<u64, u64>,
    /// Bumped on every map/unmap of a resident page. Caches derived from
    /// the GPA↔GVA mapping (the SPML tracker's cross-round reverse-map
    /// cache) compare this against the generation they were built at: any
    /// change means a frame may have been recycled under them, so a cached
    /// translation — or a cached negative — can be stale.
    map_generation: u64,
    /// Next free mmap address.
    next_mmap: Gva,
}

impl Process {
    pub fn new(pid: Pid, cr3: Gpa) -> Self {
        Self {
            pid,
            cr3,
            vmas: Vec::new(),
            pt_pages: Vec::new(),
            resident: std::collections::BTreeMap::new(),
            resident_inverse: std::collections::BTreeMap::new(),
            map_generation: 0,
            next_mmap: MMAP_BASE,
        }
    }

    /// Reserve an address range for `pages` pages (the mmap syscall's VMA
    /// part; PTEs are installed lazily on first touch).
    pub fn reserve_vma(&mut self, pages: u64, writable: bool, kind: VmaKind) -> GvaRange {
        let range = GvaRange::new(self.next_mmap, pages);
        self.next_mmap = range.end().add(GUARD_PAGES * ooh_machine::PAGE_SIZE);
        self.vmas.push(Vma {
            range,
            writable,
            kind,
            huge: false,
        });
        range
    }

    /// Reserve a huge-eligible VMA: the start address is bumped to the next
    /// 2 MiB boundary so 2M regions of the mapping coincide with level-1
    /// page-table slots, and faults may install 2M leaves.
    pub fn reserve_vma_huge(&mut self, pages: u64, writable: bool, kind: VmaKind) -> GvaRange {
        let start = Gva(self.next_mmap.raw().next_multiple_of(ooh_machine::HUGE_PAGE_SIZE));
        let range = GvaRange::new(start, pages);
        self.next_mmap = range.end().add(GUARD_PAGES * ooh_machine::PAGE_SIZE);
        self.vmas.push(Vma {
            range,
            writable,
            kind,
            huge: true,
        });
        range
    }

    /// The VMA containing `gva`, if any.
    pub fn vma_for(&self, gva: Gva) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.range.contains(gva))
    }

    /// Remove a VMA exactly matching `range`; returns it if found.
    pub fn remove_vma(&mut self, range: GvaRange) -> Option<Vma> {
        let idx = self.vmas.iter().position(|v| v.range == range)?;
        Some(self.vmas.remove(idx))
    }

    /// Record that `gva_page` is now backed by `gpa_page`, keeping the
    /// inverse index in sync. Returns the previous backing, if any.
    pub fn map_resident(&mut self, gva_page: u64, gpa_page: u64) -> Option<u64> {
        let prev = self.resident.insert(gva_page, gpa_page);
        if let Some(old_gpa) = prev {
            self.resident_inverse.remove(&old_gpa);
        }
        self.resident_inverse.insert(gpa_page, gva_page);
        self.map_generation += 1;
        prev
    }

    /// Drop the mapping for `gva_page`, keeping the inverse index in sync.
    /// Returns the GPA page that backed it, if any.
    pub fn unmap_resident(&mut self, gva_page: u64) -> Option<u64> {
        let gpa_page = self.resident.remove(&gva_page)?;
        self.resident_inverse.remove(&gpa_page);
        self.map_generation += 1;
        Some(gpa_page)
    }

    /// Current map generation: changes whenever `resident` does. A cached
    /// negative matters as much as a cached positive here — a GPA that had
    /// no GVA last round may be a recycled frame backing a live page now —
    /// so both map *and* unmap bump it.
    pub fn map_generation(&self) -> u64 {
        self.map_generation
    }

    /// Force-invalidate caches keyed on the generation without changing
    /// `resident`. Demotion of a 2M mapping is such an event: the GPA↔GVA
    /// pairs survive, but cached reverse-map structure built while the
    /// region was huge (and any negative cached against it) may be stale.
    pub fn bump_map_generation(&mut self) {
        self.map_generation += 1;
    }

    /// The GVA page backed by `gpa_page`, if any — the incremental inverse
    /// of `resident`, O(log n) per call.
    pub fn gva_for_gpa_page(&self, gpa_page: u64) -> Option<u64> {
        debug_assert_eq!(self.resident.len(), self.resident_inverse.len());
        self.resident_inverse.get(&gpa_page).copied()
    }

    /// Number of resident (mapped) pages.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Total pages reserved across all VMAs.
    pub fn reserved_pages(&self) -> u64 {
        self.vmas.iter().map(|v| v.range.pages).sum()
    }
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("pid", &self.pid)
            .field("cr3", &self.cr3)
            .field("vmas", &self.vmas.len())
            .field("resident_pages", &self.resident_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_is_disjoint_with_guard_gap() {
        let mut p = Process::new(Pid(1), Gpa(0x1000));
        let a = p.reserve_vma(4, true, VmaKind::Anon);
        let b = p.reserve_vma(2, true, VmaKind::Anon);
        assert!(!a.overlaps(&b));
        assert!(b.start >= a.end().add(ooh_machine::PAGE_SIZE));
    }

    #[test]
    fn vma_lookup() {
        let mut p = Process::new(Pid(1), Gpa(0x1000));
        let a = p.reserve_vma(4, true, VmaKind::Anon);
        assert!(p.vma_for(a.start).is_some());
        assert!(p.vma_for(a.start.add(4 * 4096 - 1)).is_some());
        assert!(p.vma_for(a.end()).is_none());
        assert!(p.vma_for(Gva(0x1000)).is_none());
    }

    #[test]
    fn remove_vma_exact_match_only() {
        let mut p = Process::new(Pid(1), Gpa(0x1000));
        let a = p.reserve_vma(4, true, VmaKind::Anon);
        let wrong = GvaRange::new(a.start, 2);
        assert!(p.remove_vma(wrong).is_none());
        assert!(p.remove_vma(a).is_some());
        assert!(p.vma_for(a.start).is_none());
    }

    #[test]
    fn huge_reserve_is_2m_aligned_and_disjoint() {
        let mut p = Process::new(Pid(1), Gpa(0x1000));
        let a = p.reserve_vma(3, true, VmaKind::Anon);
        let h = p.reserve_vma_huge(512, true, VmaKind::Anon);
        assert!(h.start.is_huge_aligned());
        assert!(!a.overlaps(&h));
        assert!(p.vma_for(h.start).unwrap().huge);
        assert!(!p.vma_for(a.start).unwrap().huge);
        let g0 = p.map_generation();
        p.bump_map_generation();
        assert_eq!(p.map_generation(), g0 + 1);
    }

    #[test]
    fn page_accounting() {
        let mut p = Process::new(Pid(1), Gpa(0x1000));
        p.reserve_vma(8, true, VmaKind::Anon);
        assert_eq!(p.reserved_pages(), 8);
        assert_eq!(p.resident_pages(), 0);
        p.map_resident(0x7f000, 0x123);
        assert_eq!(p.resident_pages(), 1);
        assert_eq!(p.gva_for_gpa_page(0x123), Some(0x7f000));
    }

    #[test]
    fn inverse_index_tracks_map_and_unmap() {
        let mut p = Process::new(Pid(1), Gpa(0x1000));
        assert_eq!(p.map_resident(0x10, 0xa0), None);
        assert_eq!(p.map_resident(0x11, 0xa1), None);
        assert_eq!(p.gva_for_gpa_page(0xa0), Some(0x10));
        assert_eq!(p.gva_for_gpa_page(0xa1), Some(0x11));
        // Remapping a GVA to a new GPA retires the old inverse entry.
        assert_eq!(p.map_resident(0x10, 0xb0), Some(0xa0));
        assert_eq!(p.gva_for_gpa_page(0xa0), None);
        assert_eq!(p.gva_for_gpa_page(0xb0), Some(0x10));
        // Unmap drops both directions.
        assert_eq!(p.unmap_resident(0x11), Some(0xa1));
        assert_eq!(p.gva_for_gpa_page(0xa1), None);
        assert_eq!(p.unmap_resident(0x11), None);
        assert_eq!(p.resident_pages(), 1);
    }
}
