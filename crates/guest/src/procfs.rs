//! The `/proc/<PID>/pagemap` + `clear_refs` soft-dirty interface.
//!
//! This is the kernel half of the paper's baseline `/proc` technique:
//!
//! * `echo 4 > /proc/PID/clear_refs` — walk every present PTE, clear its
//!   soft-dirty bit and write-protect it, then flush the TLB (metric M15);
//! * read `/proc/PID/pagemap` — materialize one 64-bit entry per page
//!   (soft-dirty at bit 55, present at bit 63, PFN in the low bits), charged
//!   per entry plus per read(2) chunk (metric M16).

use crate::kernel::{GuestError, GuestKernel};
use crate::process::Pid;
use ooh_hypervisor::Hypervisor;
use ooh_machine::{DirtyBitmap, Gva, GvaRange, Pte};
use ooh_sim::{Event, Lane, PAGEMAP_CHUNK_ENTRIES};

/// One 64-bit pagemap entry, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagemapEntry {
    pub gva: Gva,
    pub present: bool,
    pub soft_dirty: bool,
    /// Guest frame number (pagemap's PFN field; a GPA page here).
    pub pfn: u64,
}

impl PagemapEntry {
    /// Encode in the kernel's pagemap bit layout.
    pub fn encode(&self) -> u64 {
        let mut v = self.pfn & 0x007F_FFFF_FFFF_FFFF;
        if self.soft_dirty {
            v |= 1 << 55;
        }
        if self.present {
            v |= 1 << 63;
        }
        v
    }

    /// Decode from the kernel bit layout.
    pub fn decode(gva: Gva, v: u64) -> Self {
        Self {
            gva,
            present: v & (1 << 63) != 0,
            soft_dirty: v & (1 << 55) != 0,
            pfn: v & 0x007F_FFFF_FFFF_FFFF,
        }
    }
}

impl GuestKernel {
    /// `echo 4 > /proc/PID/clear_refs`: clear soft-dirty bits and
    /// write-protect every present PTE of the process, so the next write to
    /// each page faults and re-marks it. Returns the number of PTEs touched.
    pub fn clear_refs(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        lane: Lane,
    ) -> Result<u64, GuestError> {
        self.vcpu = self.vcpu_of(pid);
        let ctx = hv.ctx.clone();
        let _span = ctx.span(ooh_sim::ScopeKind::Op, "clear_refs", u64::from(pid.0));
        // The write(2) syscall into procfs, served on the process's core.
        ctx.charge(lane, Event::ContextSwitch);

        let vmas = self.vmas(pid)?;
        let mut touched = 0u64;
        for vma in &vmas {
            // Soft-dirty write-protection is 4K-granular: split any huge
            // mapping left in the VMA before the PTE sweep (what Linux's
            // clear_refs does to THPs), or the sweep below would never see
            // — and never re-protect — the region's pages.
            if vma.huge {
                let mut base =
                    Gva(vma.range.start.raw().next_multiple_of(ooh_machine::HUGE_PAGE_SIZE));
                while base.add(ooh_machine::HUGE_PAGE_SIZE).raw() <= vma.range.end().raw() {
                    if self.huge_pte_lookup(hv, pid, base)?.is_some() {
                        self.demote_huge(hv, pid, base)?;
                    }
                    base = base.add(ooh_machine::HUGE_PAGE_SIZE);
                }
            }
            for gva in vma.range.iter_pages().collect::<Vec<_>>() {
                if let Some((slot, pte)) = self.pte_lookup(hv, pid, gva)? {
                    if pte.is_present() {
                        ctx.charge(lane, Event::ClearRefsPte);
                        let new = pte.without(Pte::SOFT_DIRTY | Pte::WRITABLE);
                        if new != pte {
                            self.kernel_phys_write(hv, slot, new.0)?;
                        }
                        touched += 1;
                    }
                }
            }
        }
        // One flush covers the whole sweep (Linux batches it) — and because
        // the write-protect must be visible on every core, it is a full
        // cross-vCPU shootdown, not a local flush.
        self.shootdown_all(hv);
        Ok(touched)
    }

    /// Read `/proc/PID/pagemap` over `range`: one entry per page, charged
    /// per entry plus per 64 KiB read chunk.
    pub fn read_pagemap(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        range: GvaRange,
        lane: Lane,
    ) -> Result<Vec<PagemapEntry>, GuestError> {
        self.vcpu = self.vcpu_of(pid);
        let ctx = hv.ctx.clone();
        let _span = ctx.span(ooh_sim::ScopeKind::Op, "read_pagemap", range.pages);
        let mut out = Vec::with_capacity(range.pages as usize);
        for (i, gva) in range.iter_pages().enumerate() {
            if i % PAGEMAP_CHUNK_ENTRIES == 0 {
                ctx.charge(lane, Event::PagemapReadChunk);
                ctx.charge(lane, Event::ContextSwitch);
            }
            ctx.charge(lane, Event::PagemapReadEntry);
            let entry = match self.pte_lookup(hv, pid, gva)? {
                Some((_, pte)) if pte.is_present() => PagemapEntry {
                    gva,
                    present: true,
                    soft_dirty: pte.is_soft_dirty(),
                    pfn: pte.frame().page(),
                },
                // Huge-mapped pages report the per-page PFN inside the
                // contiguous backing region, exactly as Linux's pagemap does
                // for THP-backed addresses.
                _ => match self.huge_pte_lookup(hv, pid, gva)? {
                    Some((_, hpte)) => PagemapEntry {
                        gva,
                        present: true,
                        soft_dirty: hpte.is_soft_dirty(),
                        pfn: hpte.frame().page()
                            + gva.page() % ooh_machine::HUGE_PAGE_PAGES,
                    },
                    None => PagemapEntry {
                        gva,
                        present: false,
                        soft_dirty: false,
                        pfn: 0,
                    },
                },
            };
            out.push(entry);
        }
        Ok(out)
    }

    /// Convenience: the soft-dirty pages of `pid` across all its VMAs
    /// (what a /proc-based tracker collects each round), packed into a
    /// word bitmap — one bit per dirty page, iterated ascending.
    pub fn soft_dirty_pages(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        lane: Lane,
    ) -> Result<DirtyBitmap, GuestError> {
        let vmas = self.vmas(pid)?;
        let mut dirty = DirtyBitmap::new();
        for vma in &vmas {
            for e in self.read_pagemap(hv, pid, vma.range, lane)? {
                if e.present && e.soft_dirty {
                    dirty.insert(e.gva.page());
                }
            }
        }
        Ok(dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagemap_entry_encode_decode_roundtrip() {
        let e = PagemapEntry {
            gva: Gva(0x7f00_0000_0000),
            present: true,
            soft_dirty: true,
            pfn: 0x12345,
        };
        let d = PagemapEntry::decode(e.gva, e.encode());
        assert_eq!(d, e);

        let n = PagemapEntry {
            gva: Gva(0x1000),
            present: false,
            soft_dirty: false,
            pfn: 0,
        };
        assert_eq!(PagemapEntry::decode(n.gva, n.encode()), n);
    }

    #[test]
    fn soft_dirty_bit_is_bit_55() {
        let e = PagemapEntry {
            gva: Gva(0),
            present: false,
            soft_dirty: true,
            pfn: 0,
        };
        assert_eq!(e.encode(), 1 << 55);
    }
}
