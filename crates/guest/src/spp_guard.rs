//! The OoH-SPP kernel surface: translate a process's guard requests from
//! GVAs to GPAs and program the hypervisor's sub-page permission table.
//!
//! Following the OoH methodology (§IV-A): a userspace library (the secure
//! allocator in `ooh-secheap`) talks to a small kernel module, which keeps
//! the privilege of multiplexing the feature and performs the hypercalls.
//! SPP needs no hot-path calls — masks change only on alloc/free — so the
//! software-only design is already efficient (no EPML-style extension
//! required, as the paper anticipates).

use crate::kernel::{GuestError, GuestKernel};
use crate::process::Pid;
use ooh_hypervisor::{Hypercall, HypercallResult, Hypervisor};
use ooh_machine::{Gpa, Gva, SppTable, SUBPAGES_PER_PAGE, SUBPAGE_SIZE};

impl GuestKernel {
    /// Resolve the guest-physical page backing `gva`, faulting it in first
    /// if needed (SPP masks attach to physical pages, so the page must
    /// exist and stay resident — the module pins it, like the ring buffer).
    fn resolve_spp_page(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
    ) -> Result<Gpa, GuestError> {
        if !self.process(pid)?.resident.contains_key(&gva.page()) {
            // Demand-fault the page in with a kernel-initiated touch.
            self.access(hv, pid, gva.page_base(), true, ooh_sim::Lane::Kernel)?;
        }
        let gpa_page = *self
            .process(pid)?
            .resident
            .get(&gva.page())
            .expect("just faulted in");
        Ok(Gpa::from_page(gpa_page))
    }

    /// Set the *writable* mask of the page containing `gva` (bit i =
    /// sub-page i writable). The mask is absolute; the userspace library
    /// accumulates its guard layout per page.
    pub fn spp_set_page_mask(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
        writable_mask: u32,
    ) -> Result<(), GuestError> {
        let gpa = self.resolve_spp_page(hv, pid, gva)?;
        match hv.hypercall(
            self.vm,
            self.vcpu,
            Hypercall::SppSetMask {
                gpa,
                mask: writable_mask,
            },
            ooh_sim::Lane::Tracked,
        )? {
            HypercallResult::Ok => Ok(()),
            _ => Err(GuestError::Segfault { pid, gva }),
        }
    }

    /// Remove sub-page protection from the page containing `gva`.
    pub fn spp_clear_page(
        &mut self,
        hv: &mut Hypervisor,
        pid: Pid,
        gva: Gva,
    ) -> Result<(), GuestError> {
        let Some(&gpa_page) = self.process(pid)?.resident.get(&gva.page()) else {
            return Ok(()); // never materialized: nothing to clear
        };
        hv.hypercall(
            self.vm,
            self.vcpu,
            Hypercall::SppClear {
                gpa: Gpa::from_page(gpa_page),
            },
            ooh_sim::Lane::Tracked,
        )?;
        Ok(())
    }

    /// The sub-page index covering `gva` within its page.
    pub fn spp_subpage_of(gva: Gva) -> u32 {
        (gva.offset() / SUBPAGE_SIZE) as u32
    }

    /// Sanity accessor for tests: the VM's current mask for `gva`'s page.
    pub fn spp_current_mask(
        &self,
        hv: &Hypervisor,
        pid: Pid,
        gva: Gva,
    ) -> Result<Option<u32>, GuestError> {
        let Some(&gpa_page) = self.process(pid)?.resident.get(&gva.page()) else {
            return Ok(None);
        };
        Ok(hv.vm(self.vm).spp_table.mask(Gpa::from_page(gpa_page)))
    }
}

/// Number of 128-byte sub-pages covering `bytes`.
pub fn subpages_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(SUBPAGE_SIZE)
}

/// Re-exported so userspace callers need not depend on ooh-machine.
pub use ooh_machine::spp::mask_protecting;

/// Compile-time sanity: the geometry constants agree.
const _: () = assert!(SUBPAGES_PER_PAGE * SUBPAGE_SIZE == ooh_machine::PAGE_SIZE);
const _: () = {
    let _ = SppTable::subpage_of;
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::VmaKind;
    use ooh_machine::{MachineConfig, PAGE_SIZE};
    use ooh_sim::{Lane, SimCtx};

    fn boot() -> (Hypervisor, GuestKernel, Pid) {
        let mut hv = Hypervisor::new(MachineConfig::epml(64 * 1024 * PAGE_SIZE), SimCtx::new());
        let vm = hv.create_vm(16 * 1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        (hv, kernel, pid)
    }

    #[test]
    fn spp_guard_blocks_exactly_the_masked_subpages() {
        let (mut hv, mut kernel, pid) = boot();
        let range = kernel.mmap(pid, 2, true, VmaKind::Anon).unwrap();
        let page = range.start;
        // Protect sub-pages 2..=3 of the first page.
        kernel
            .spp_set_page_mask(&mut hv, pid, page, mask_protecting(2, 3))
            .unwrap();
        // Sub-page 0/1 writable.
        kernel.write_u64(&mut hv, pid, page, 1, Lane::Tracked).unwrap();
        kernel
            .write_u64(&mut hv, pid, page.add(SUBPAGE_SIZE + 8), 2, Lane::Tracked)
            .unwrap();
        // Sub-page 2: blocked with the precise index reported.
        match kernel.write_u64(&mut hv, pid, page.add(2 * SUBPAGE_SIZE), 3, Lane::Tracked) {
            Err(GuestError::GuardViolation { subpage: Some(2), .. }) => {}
            other => panic!("expected SPP guard violation, got {other:?}"),
        }
        // Reads are never blocked by SPP.
        assert_eq!(
            kernel
                .read_u64(&mut hv, pid, page.add(2 * SUBPAGE_SIZE), Lane::Tracked)
                .unwrap(),
            0
        );
        // Second page untouched by the first page's mask.
        kernel
            .write_u64(&mut hv, pid, page.add(PAGE_SIZE), 4, Lane::Tracked)
            .unwrap();
    }

    #[test]
    fn spp_clear_restores_write_access() {
        let (mut hv, mut kernel, pid) = boot();
        let range = kernel.mmap(pid, 1, true, VmaKind::Anon).unwrap();
        kernel
            .spp_set_page_mask(&mut hv, pid, range.start, 0)
            .unwrap();
        assert!(kernel
            .write_u64(&mut hv, pid, range.start, 1, Lane::Tracked)
            .is_err());
        kernel.spp_clear_page(&mut hv, pid, range.start).unwrap();
        kernel
            .write_u64(&mut hv, pid, range.start, 1, Lane::Tracked)
            .unwrap();
    }

    #[test]
    fn tlb_cached_translations_do_not_bypass_new_masks() {
        let (mut hv, mut kernel, pid) = boot();
        let range = kernel.mmap(pid, 1, true, VmaKind::Anon).unwrap();
        // Warm the TLB with full write access (dirty bits set).
        kernel
            .write_u64(&mut hv, pid, range.start.add(256), 1, Lane::Tracked)
            .unwrap();
        kernel
            .write_u64(&mut hv, pid, range.start.add(256), 2, Lane::Tracked)
            .unwrap();
        // Now protect sub-page 2; the cached entry must not let writes slip.
        kernel
            .spp_set_page_mask(&mut hv, pid, range.start, mask_protecting(2, 2))
            .unwrap();
        assert!(matches!(
            kernel.write_u64(&mut hv, pid, range.start.add(2 * SUBPAGE_SIZE), 3, Lane::Tracked),
            Err(GuestError::GuardViolation { .. })
        ));
    }

    #[test]
    fn subpage_math() {
        assert_eq!(subpages_for_bytes(1), 1);
        assert_eq!(subpages_for_bytes(128), 1);
        assert_eq!(subpages_for_bytes(129), 2);
        assert_eq!(GuestKernel::spp_subpage_of(Gva(0x1000 + 300)), 2);
    }
}
