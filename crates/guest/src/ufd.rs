//! userfaultfd emulation (kernel side).
//!
//! Models the two modes the paper evaluates: **missing** (notify on first
//! touch of an unmapped page) and **write-protect** (notify on write to a
//! WP-marked page). Fault delivery is synchronous in the simulation: the
//! kernel fault path charges the full user-space round trip (the paper's M6
//! — two world switches, the tracker's `read(2)` on the fd, its handling,
//! and the resolving ioctl) and appends the event for the tracker to
//! consume, because in the paper's single-CPU setup Tracked is suspended for
//! exactly that long.

use crate::process::Pid;
use ooh_machine::{Gva, GvaRange};

/// Registration mode (UFFDIO_REGISTER_MODE_*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UfdMode {
    /// Notify on access to a not-present page.
    Missing,
    /// Notify on write to a write-protected page.
    WriteProtect,
}

/// One delivered fault event (struct uffd_msg analog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UfdEvent {
    pub pid: Pid,
    /// Faulting address (page-aligned, as the kernel reports for WP faults).
    pub gva: Gva,
    pub write: bool,
}

/// A userfaultfd object: registered ranges plus the pending event queue.
#[derive(Debug)]
pub struct Ufd {
    pub pid: Pid,
    pub mode: UfdMode,
    ranges: Vec<GvaRange>,
    events: Vec<UfdEvent>,
    total_delivered: u64,
}

impl Ufd {
    pub fn new(pid: Pid, mode: UfdMode) -> Self {
        Self {
            pid,
            mode,
            ranges: Vec::new(),
            events: Vec::new(),
            total_delivered: 0,
        }
    }

    /// Register a range (UFFDIO_REGISTER).
    pub fn register(&mut self, range: GvaRange) {
        self.ranges.push(range);
    }

    /// Is `gva` covered by a registration?
    pub fn covers(&self, gva: Gva) -> bool {
        self.ranges.iter().any(|r| r.contains(gva))
    }

    /// Registered ranges (for writeprotect sweeps).
    pub fn ranges(&self) -> &[GvaRange] {
        &self.ranges
    }

    /// Kernel fault path: queue an event for the tracker.
    pub fn deliver(&mut self, event: UfdEvent) {
        self.total_delivered += 1;
        self.events.push(event);
    }

    /// Tracker side: drain pending events (the `read(2)` loop).
    pub fn drain_events(&mut self) -> Vec<UfdEvent> {
        std::mem::take(&mut self.events)
    }

    /// Total events ever delivered.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    pub fn pending(&self) -> usize {
        self.events.len()
    }

    /// Non-destructive view of the queued events (model-checker state
    /// hashing; the tracker itself always uses [`Self::drain_events`]).
    pub fn pending_events(&self) -> &[UfdEvent] {
        &self.events
    }
}

/// Handle to an open userfaultfd (index into the kernel's table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UfdId(pub usize);

impl crate::kernel::GuestKernel {
    /// `userfaultfd(2)`: open a new uffd object for `pid`.
    pub fn ufd_create(&mut self, pid: Pid, mode: UfdMode) -> UfdId {
        self.ufds.push(Ufd::new(pid, mode));
        UfdId(self.ufds.len() - 1)
    }

    /// `UFFDIO_REGISTER`: register `range` on the fd.
    pub fn ufd_register(
        &mut self,
        hv: &mut ooh_hypervisor::Hypervisor,
        id: UfdId,
        range: GvaRange,
    ) {
        hv.ctx
            .charge(ooh_sim::Lane::Tracker, ooh_sim::Event::UfdRegister);
        self.ufds[id.0].register(range);
    }

    /// `UFFDIO_WRITEPROTECT`: set (or clear) the WP marker on every present
    /// PTE in `range`, one charged operation per page, then one TLB flush
    /// (the paper's M2 mechanism).
    pub fn ufd_writeprotect(
        &mut self,
        hv: &mut ooh_hypervisor::Hypervisor,
        id: UfdId,
        range: GvaRange,
        protect: bool,
    ) -> Result<u64, crate::kernel::GuestError> {
        use ooh_machine::Pte;
        use ooh_sim::{Event, Lane};
        let pid = self.ufds[id.0].pid;
        let ctx = hv.ctx.clone();
        ctx.charge(Lane::Tracker, Event::ContextSwitch); // the ioctl itself
        // The WP marker is per-4K-PTE: split any huge mapping the range
        // touches first (Linux's uffd-wp likewise works at PTE granularity
        // after splitting), or the sweep would skip its 512 pages entirely
        // and their writes would never notify.
        let mut base = range.start.huge_base();
        while base.raw() < range.end().raw() {
            if self.huge_pte_lookup(hv, pid, base)?.is_some() {
                self.demote_huge(hv, pid, base)?;
            }
            base = base.add(ooh_machine::HUGE_PAGE_SIZE);
        }
        let mut touched = 0u64;
        for gva in range.iter_pages().collect::<Vec<_>>() {
            if let Some((slot, pte)) = self.pte_lookup(hv, pid, gva)? {
                if pte.is_present() {
                    let ev = if protect {
                        Event::UfdWriteProtectPage
                    } else {
                        Event::UfdWriteUnprotectPage
                    };
                    ctx.charge(Lane::Tracker, ev);
                    let new = if protect {
                        pte.with(Pte::UFFD_WP)
                    } else {
                        pte.without(Pte::UFFD_WP)
                    };
                    if new != pte {
                        self.kernel_phys_write(hv, slot, new.0)?;
                    }
                    touched += 1;
                }
            }
        }
        // Tightening PTE permissions is globally visible: a core still
        // holding a writable translation would write through without
        // faulting and the event — the dirty page — would be lost. Shoot
        // the range's translations down on every vCPU, not just this one.
        self.shootdown_all(hv);
        Ok(touched)
    }

    /// `read(2)` on the uffd: drain pending fault events.
    pub fn ufd_read_events(&mut self, id: UfdId) -> Vec<UfdEvent> {
        self.ufds[id.0].drain_events()
    }

    /// Immutable view of an open uffd.
    pub fn ufd(&self, id: UfdId) -> &Ufd {
        &self.ufds[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_respects_ranges() {
        let mut u = Ufd::new(Pid(1), UfdMode::WriteProtect);
        u.register(GvaRange::new(Gva(0x10000), 4));
        assert!(u.covers(Gva(0x10000)));
        assert!(u.covers(Gva(0x13fff)));
        assert!(!u.covers(Gva(0x14000)));
        u.register(GvaRange::new(Gva(0x20000), 1));
        assert!(u.covers(Gva(0x20500)));
    }

    #[test]
    fn events_fifo_and_counted() {
        let mut u = Ufd::new(Pid(1), UfdMode::Missing);
        u.deliver(UfdEvent {
            pid: Pid(1),
            gva: Gva(0x1000),
            write: false,
        });
        u.deliver(UfdEvent {
            pid: Pid(1),
            gva: Gva(0x2000),
            write: true,
        });
        assert_eq!(u.pending(), 2);
        let evs = u.drain_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].gva, Gva(0x1000));
        assert_eq!(u.pending(), 0);
        assert_eq!(u.total_delivered(), 2);
    }
}
