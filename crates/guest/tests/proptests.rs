//! Property-based tests of the guest kernel's tracking machinery against
//! host-side reference models.

use ooh_guest::{GuestKernel, Pid, UfdMode, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{MachineConfig, PAGE_SIZE};
use ooh_sim::{Lane, SimCtx};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn boot() -> (Hypervisor, GuestKernel, Pid) {
    let mut hv = Hypervisor::new(
        MachineConfig::epml(256 * 1024 * PAGE_SIZE),
        SimCtx::new(),
    );
    let vm = hv.create_vm(64 * 1024 * PAGE_SIZE, 1).unwrap();
    let mut kernel = GuestKernel::new(vm);
    let pid = kernel.spawn(&mut hv).unwrap();
    (hv, kernel, pid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Memory is a memory: arbitrary interleaved writes then reads return
    /// the last value written per address, across page boundaries.
    #[test]
    fn guest_memory_is_linearizable(
        writes in proptest::collection::vec((0u64..16 * 4096 - 8, any::<u64>()), 1..120)
    ) {
        let (mut hv, mut kernel, pid) = boot();
        let region = kernel.mmap(pid, 16, true, VmaKind::Anon).unwrap();
        let mut reference: std::collections::HashMap<u64, u64> = Default::default();
        for &(off, val) in &writes {
            let addr = off & !7; // align
            kernel
                .write_u64(&mut hv, pid, region.start.add(addr), val, Lane::Tracked)
                .unwrap();
            reference.insert(addr, val);
        }
        for (&addr, &val) in &reference {
            prop_assert_eq!(
                kernel.read_u64(&mut hv, pid, region.start.add(addr), Lane::Tracked).unwrap(),
                val
            );
        }
    }

    /// soft-dirty agrees with a reference set across multiple
    /// clear_refs/write rounds: after each clear, exactly the pages written
    /// since are reported.
    #[test]
    fn soft_dirty_matches_reference(
        rounds in proptest::collection::vec(
            proptest::collection::vec(0u64..32, 0..20),
            1..4
        )
    ) {
        let (mut hv, mut kernel, pid) = boot();
        let region = kernel.mmap(pid, 32, true, VmaKind::Anon).unwrap();
        for g in region.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 0, Lane::Tracked).unwrap();
        }
        for pages in rounds {
            kernel.clear_refs(&mut hv, pid, Lane::Tracker).unwrap();
            let mut expected = BTreeSet::new();
            for &p in &pages {
                kernel
                    .write_u64(&mut hv, pid, region.start.add(p * PAGE_SIZE + 8 * (p % 7)), p, Lane::Tracked)
                    .unwrap();
                expected.insert(p);
            }
            let got: BTreeSet<u64> = kernel
                .soft_dirty_pages(&mut hv, pid, Lane::Tracker)
                .unwrap()
                .pages()
                .map(|p| p - region.start.page())
                .collect();
            prop_assert_eq!(got, expected);
        }
    }

    /// userfaultfd write-protect delivers exactly one event per protected
    /// page on its first write, none for repeats or reads.
    #[test]
    fn ufd_wp_event_model(
        accesses in proptest::collection::vec((0u64..16, any::<bool>()), 1..60)
    ) {
        let (mut hv, mut kernel, pid) = boot();
        let region = kernel.mmap(pid, 16, true, VmaKind::Anon).unwrap();
        for g in region.iter_pages().collect::<Vec<_>>() {
            kernel.write_u64(&mut hv, pid, g, 0, Lane::Tracked).unwrap();
        }
        let ufd = kernel.ufd_create(pid, UfdMode::WriteProtect);
        kernel.ufd_register(&mut hv, ufd, region);
        kernel.ufd_writeprotect(&mut hv, ufd, region, true).unwrap();

        let mut expected = BTreeSet::new();
        for &(page, is_write) in &accesses {
            let addr = region.start.add(page * PAGE_SIZE);
            if is_write {
                kernel.write_u64(&mut hv, pid, addr, 1, Lane::Tracked).unwrap();
                expected.insert(page);
            } else {
                kernel.read_u64(&mut hv, pid, addr, Lane::Tracked).unwrap();
            }
        }
        let events = kernel.ufd_read_events(ufd);
        let got: BTreeSet<u64> = events
            .iter()
            .map(|e| e.gva.page() - region.start.page())
            .collect();
        prop_assert_eq!(got, expected.clone());
        // Exactly one event per first-written page.
        prop_assert_eq!(events.len(), expected.len());
    }

    /// A process's page tables always resolve exactly its resident set:
    /// pte_lookup(present) ⇔ resident map entry, after arbitrary
    /// mmap/write/munmap traffic.
    #[test]
    fn page_tables_agree_with_resident_map(
        ops in proptest::collection::vec((0u8..3, 0u64..24), 1..60)
    ) {
        let (mut hv, mut kernel, pid) = boot();
        let region = kernel.mmap(pid, 24, true, VmaKind::Anon).unwrap();
        for (op, page) in ops {
            let addr = region.start.add(page * PAGE_SIZE);
            match op {
                0 | 1 => {
                    kernel.write_u64(&mut hv, pid, addr, page, Lane::Tracked).unwrap();
                }
                _ => {
                    kernel.read_u64(&mut hv, pid, addr, Lane::Tracked).unwrap();
                }
            }
        }
        let resident: BTreeSet<u64> = kernel
            .process(pid)
            .unwrap()
            .resident
            .keys()
            .copied()
            .collect();
        for page in region.iter_pages().collect::<Vec<_>>() {
            let present = kernel
                .pte_lookup(&mut hv, pid, page)
                .unwrap()
                .map(|(_, pte)| pte.is_present())
                .unwrap_or(false);
            prop_assert_eq!(present, resident.contains(&page.page()), "page {}", page);
        }
    }
}
