//! Regression tests for shadow-PML invalidation on PTE teardown.
//!
//! The debug-invariants shadow cross-checks that no page is dirty-logged
//! twice without an intervening dirty-clear. Before munmap (guest PTEs) and
//! `free_guest_page` (EPT + hyp shadow) notified the shadow about the
//! teardown, the dirty-log → unmap → remap → dirty sequence false-panicked
//! with "PML invariant violated: ... dirty-logged twice" the moment the
//! guest allocator recycled a freed frame.

#![cfg(feature = "debug-invariants")]

use ooh_guest::{GuestKernel, OohMode, OohModule, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{MachineConfig, PAGE_SIZE};
use ooh_sim::{Lane, SimCtx};

fn boot(config: MachineConfig) -> (Hypervisor, GuestKernel, ooh_guest::Pid) {
    let mut hv = Hypervisor::new(config, SimCtx::new());
    let vm = hv.create_vm(1024 * PAGE_SIZE, 1).unwrap();
    let mut kernel = GuestKernel::new(vm);
    let pid = kernel.spawn(&mut hv).unwrap();
    (hv, kernel, pid)
}

fn track(kernel: &mut GuestKernel, hv: &mut Hypervisor, mode: OohMode) {
    let pid = *kernel.pids().first().expect("one process spawned");
    let module = OohModule::load(kernel, hv, mode).unwrap();
    kernel.ooh = Some(module);
    let mut module = kernel.ooh.take().unwrap();
    module.track(kernel, hv, pid).unwrap();
    kernel.ooh = Some(module);
}

fn dirty_unmap_remap_dirty(mode: OohMode) {
    let config = match mode {
        OohMode::Epml => MachineConfig::epml(4096 * PAGE_SIZE),
        _ => MachineConfig::stock(4096 * PAGE_SIZE),
    };
    let (mut hv, mut kernel, pid) = boot(config);
    track(&mut kernel, &mut hv, mode);

    // Dirty-log a region while logging is armed.
    let a = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
    for gva in a.iter_pages().collect::<Vec<_>>() {
        kernel.write_u64(&mut hv, pid, gva, 1, Lane::Tracked).unwrap();
    }
    // Tear it down: the frames go back on the guest allocator's free list.
    kernel.munmap(&mut hv, pid, a).unwrap();
    // Dirty the recycled frames through a fresh mapping. Pre-fix, the hyp
    // shadow still remembered A's logs for those GPAs and the second log
    // panicked "dirty-logged twice".
    let b = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
    for gva in b.iter_pages().collect::<Vec<_>>() {
        kernel.write_u64(&mut hv, pid, gva, 2, Lane::Tracked).unwrap();
    }
}

#[test]
fn spml_dirty_log_unmap_remap_dirty_does_not_false_panic() {
    dirty_unmap_remap_dirty(OohMode::Spml);
}

#[test]
fn epml_dirty_log_unmap_remap_dirty_does_not_false_panic() {
    dirty_unmap_remap_dirty(OohMode::Epml);
}
