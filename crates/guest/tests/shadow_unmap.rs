//! Regression tests for shadow-PML invalidation on PTE teardown.
//!
//! The debug-invariants shadow cross-checks that no page is dirty-logged
//! twice without an intervening dirty-clear. Before munmap (guest PTEs) and
//! `free_guest_page` (EPT + hyp shadow) notified the shadow about the
//! teardown, the dirty-log → unmap → remap → dirty sequence false-panicked
//! with "PML invariant violated: ... dirty-logged twice" the moment the
//! guest allocator recycled a freed frame.

#![cfg(feature = "debug-invariants")]

use ooh_guest::{GuestKernel, OohMode, OohModule, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{MachineConfig, HUGE_PAGE_PAGES, PAGE_SIZE};
use ooh_sim::{Lane, SimCtx};

fn boot(config: MachineConfig) -> (Hypervisor, GuestKernel, ooh_guest::Pid) {
    let mut hv = Hypervisor::new(config, SimCtx::new());
    let vm = hv.create_vm(1024 * PAGE_SIZE, 1).unwrap();
    let mut kernel = GuestKernel::new(vm);
    let pid = kernel.spawn(&mut hv).unwrap();
    (hv, kernel, pid)
}

fn track(kernel: &mut GuestKernel, hv: &mut Hypervisor, mode: OohMode) {
    let pid = *kernel.pids().first().expect("one process spawned");
    let module = OohModule::load(kernel, hv, mode).unwrap();
    kernel.ooh = Some(module);
    let mut module = kernel.ooh.take().unwrap();
    module.track(kernel, hv, pid).unwrap();
    kernel.ooh = Some(module);
}

fn dirty_unmap_remap_dirty(mode: OohMode) {
    let config = match mode {
        OohMode::Epml => MachineConfig::epml(4096 * PAGE_SIZE),
        _ => MachineConfig::stock(4096 * PAGE_SIZE),
    };
    let (mut hv, mut kernel, pid) = boot(config);
    track(&mut kernel, &mut hv, mode);

    // Dirty-log a region while logging is armed.
    let a = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
    for gva in a.iter_pages().collect::<Vec<_>>() {
        kernel.write_u64(&mut hv, pid, gva, 1, Lane::Tracked).unwrap();
    }
    // Tear it down: the frames go back on the guest allocator's free list.
    kernel.munmap(&mut hv, pid, a).unwrap();
    // Dirty the recycled frames through a fresh mapping. Pre-fix, the hyp
    // shadow still remembered A's logs for those GPAs and the second log
    // panicked "dirty-logged twice".
    let b = kernel.mmap(pid, 4, true, VmaKind::Anon).unwrap();
    for gva in b.iter_pages().collect::<Vec<_>>() {
        kernel.write_u64(&mut hv, pid, gva, 2, Lane::Tracked).unwrap();
    }
}

#[test]
fn spml_dirty_log_unmap_remap_dirty_does_not_false_panic() {
    dirty_unmap_remap_dirty(OohMode::Spml);
}

#[test]
fn epml_dirty_log_unmap_remap_dirty_does_not_false_panic() {
    dirty_unmap_remap_dirty(OohMode::Epml);
}

/// Same sequence through a *partially-populated huge* VMA: 512 pages fault
/// in as one level-1 leaf whose single dirty bit speaks for every covered
/// frame, plus an 8-page 4K tail. munmap must retire the shadow state for
/// the whole 2M region (not just the one precisely-logged page) before the
/// leaf is destroyed and its frames are recycled.
///
/// The re-dirty leg runs in a *second process*: mmap never reuses virtual
/// addresses within one process (the VA allocator is a pure bump), but
/// every process starts at the same MMAP_BASE, so B's huge region lands on
/// the exact GVAs A just tore down — and B's faults recycle A's freed
/// frames. Pre-fix, B's first writes panicked "dirty-logged twice" on both
/// shadows: the GVA-keyed guest shadow (EPML) because munmap only retired
/// the one precisely-logged page of the region, and the GPA-keyed hyp
/// shadow (SPML) via the recycled frames.
fn huge_dirty_unmap_remap_dirty(mode: OohMode) {
    let config = match mode {
        OohMode::Epml => MachineConfig::epml(16384 * PAGE_SIZE),
        _ => MachineConfig::stock(16384 * PAGE_SIZE),
    };
    let mut hv = Hypervisor::new(config, SimCtx::new());
    let vm = hv.create_vm(4096 * PAGE_SIZE, 1).unwrap();
    let mut kernel = GuestKernel::new(vm);
    kernel.huge_policy = true;
    let pid_a = kernel.spawn(&mut hv).unwrap();
    track(&mut kernel, &mut hv, mode);

    let pages = HUGE_PAGE_PAGES + 8;
    let a = kernel.mmap(pid_a, pages, true, VmaKind::Anon).unwrap();
    // A few pages inside the huge region (only the first write logs — the
    // region-wide D bit swallows the rest) and one page in the 4K tail.
    for i in [0u64, 3, 261, 511, 513] {
        let gva = a.start.add(i * PAGE_SIZE);
        kernel.write_u64(&mut hv, pid_a, gva, 1, Lane::Tracked).unwrap();
    }
    kernel.munmap(&mut hv, pid_a, a).unwrap();

    // Process B: same GVAs, recycled GPAs.
    let pid_b = kernel.spawn(&mut hv).unwrap();
    let mut module = kernel.ooh.take().unwrap();
    module.track(&mut kernel, &mut hv, pid_b).unwrap();
    kernel.ooh = Some(module);
    let b = kernel.mmap(pid_b, pages, true, VmaKind::Anon).unwrap();
    assert_eq!(b.start, a.start, "fresh process reuses A's huge GVAs");
    for i in [0u64, 3, 261, 511, 513] {
        let gva = b.start.add(i * PAGE_SIZE);
        kernel.write_u64(&mut hv, pid_b, gva, 2, Lane::Tracked).unwrap();
    }
}

#[test]
fn spml_huge_dirty_log_unmap_remap_dirty_does_not_false_panic() {
    huge_dirty_unmap_remap_dirty(OohMode::Spml);
}

#[test]
fn epml_huge_dirty_log_unmap_remap_dirty_does_not_false_panic() {
    huge_dirty_unmap_remap_dirty(OohMode::Epml);
}
