//! The hypercall ABI between the guest (OoH kernel module) and the
//! hypervisor.
//!
//! SPML adds exactly two hot-path hypercalls (`enable_logging` /
//! `disable_logging`, invoked on every schedule-in/out of a tracked process)
//! plus one-time init/deactivate calls. EPML replaces the hot-path pair with
//! shadow `vmwrite`s and needs only the one-time VMCS-shadowing setup call.

use ooh_machine::Gpa;

/// Requests a guest may make of the hypervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hypercall {
    /// SPML one-time setup (paper metric M9): register the guest ring buffer
    /// (all addresses are GPAs of guest-owned pages) and arm PML service for
    /// this VM.
    SpmlInit {
        ring_header: Gpa,
        ring_data: Vec<Gpa>,
    },
    /// SPML one-time teardown (M11).
    SpmlDeactivate,
    /// SPML hot path (M13): tracked process scheduled in — start logging.
    EnableLogging,
    /// SPML hot path (M14): tracked process scheduled out — flush the PML
    /// buffer to the ring and stop logging.
    DisableLogging,
    /// EPML one-time setup (M10): enable VMCS shadowing and whitelist the
    /// guest-owned PML fields, so every subsequent toggle is a vmexit-free
    /// `vmwrite`. This is the *only* hypercall EPML ever makes.
    EpmlInit,
    /// EPML one-time teardown (M12).
    EpmlDeactivate,
    /// OoH-SPP (§III-D): set the sub-page write mask of a guest page.
    /// Bit i set = sub-page i (128 bytes) writable.
    SppSetMask { gpa: Gpa, mask: u32 },
    /// OoH-SPP: remove sub-page protection from a guest page.
    SppClear { gpa: Gpa },
}

impl Hypercall {
    /// Stable short name, used as the trace-scope label for the call.
    pub fn name(&self) -> &'static str {
        match self {
            Hypercall::SpmlInit { .. } => "spml_init",
            Hypercall::SpmlDeactivate => "spml_deactivate",
            Hypercall::EnableLogging => "enable_logging",
            Hypercall::DisableLogging => "disable_logging",
            Hypercall::EpmlInit => "epml_init",
            Hypercall::EpmlDeactivate => "epml_deactivate",
            Hypercall::SppSetMask { .. } => "spp_set_mask",
            Hypercall::SppClear { .. } => "spp_clear",
        }
    }
}

/// Hypercall return values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HypercallResult {
    Ok,
    /// The request conflicts with the other level's use of PML (the paper's
    /// two-flag coordination: e.g. the hypervisor refuses to deactivate PML
    /// while the guest has it enabled, and vice versa).
    Busy,
    /// Request malformed (bad GPA, wrong machine capability, …).
    Invalid,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypercall_variants_are_distinguishable() {
        let a = Hypercall::EnableLogging;
        let b = Hypercall::DisableLogging;
        assert_ne!(a, b);
        let init = Hypercall::SpmlInit {
            ring_header: Gpa(0x1000),
            ring_data: vec![Gpa(0x2000)],
        };
        assert!(matches!(init, Hypercall::SpmlInit { .. }));
    }
}
