//! The hypervisor proper: VM lifecycle, the guest memory-access entry point
//! (with PML event dispatch), the hypercall handler, and the PML-full vmexit
//! handler — the Xen slice the paper modifies, in ~its entirety.

use crate::hypercall::{Hypercall, HypercallResult};
use crate::vm::{SpmlState, Vm, VmId};
use ooh_machine::{
    AccessOk, DirtyBitmap, Fault, Field, Gpa, Gva, Hpa, Machine, MachineConfig, MachineError, Mmu,
    PmlEvent, RingView, StateHasher, VmxMode, EPML_SELF_IPI_VECTOR, PML_ENTRIES,
};
use ooh_sim::{Event, Lane, SimCtx};

/// Result of a successful guest access through the hypervisor entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestAccess {
    pub hpa: Hpa,
    pub gpa: Gpa,
}

/// The hypervisor: owns the machine and all VMs.
pub struct Hypervisor {
    pub machine: Machine,
    pub ctx: SimCtx,
    vms: Vec<Vm>,
}

impl Hypervisor {
    pub fn new(config: MachineConfig, ctx: SimCtx) -> Self {
        Self {
            machine: Machine::new(config),
            ctx,
            vms: Vec::new(),
        }
    }

    /// Does the underlying machine implement the EPML extension?
    pub fn epml_hw(&self) -> bool {
        self.machine.config.epml
    }

    /// Create a VM with `ram_bytes` of guest RAM and `n_vcpus` vCPUs. Each
    /// vCPU gets a hypervisor-level PML buffer page, with the PML address
    /// programmed into its VMCS (logging stays disabled until someone —
    /// guest registration or migration — needs it).
    pub fn create_vm(&mut self, ram_bytes: u64, n_vcpus: u32) -> Result<VmId, MachineError> {
        let id = VmId(self.vms.len() as u32);
        let mut vm = Vm::new(id, &mut self.machine.phys, ram_bytes, n_vcpus)?;
        for vcpu in &mut vm.vcpus {
            let pml_page = self.machine.phys.alloc_frame()?;
            vcpu.epml_hw = self.machine.config.epml;
            if let Some(cap) = self.machine.config.tlb_capacity {
                vcpu.tlb = ooh_machine::Tlb::with_capacity(cap);
            }
            vcpu.vmcs
                .vmwrite(VmxMode::Root, Field::PmlAddress, pml_page.raw())?;
            vcpu.sync_pml_from_vmcs();
        }
        self.vms.push(vm);
        Ok(id)
    }

    pub fn vm(&self, id: VmId) -> &Vm {
        &self.vms[id.0 as usize]
    }

    pub fn vm_mut(&mut self, id: VmId) -> &mut Vm {
        &mut self.vms[id.0 as usize]
    }

    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Split borrow: one VM plus the physical memory, for callers that walk
    /// the VM's EPT while touching frames.
    pub fn vm_and_phys_mut(&mut self, id: VmId) -> (&mut Vm, &mut ooh_machine::HostPhys) {
        (&mut self.vms[id.0 as usize], &mut self.machine.phys)
    }

    /// Allocate a page of guest RAM for `vm`.
    pub fn alloc_guest_page(&mut self, vm: VmId) -> Result<Gpa, MachineError> {
        self.vms[vm.0 as usize].alloc_guest_page(&mut self.machine.phys)
    }

    /// Allocate a 2 MiB guest region for `vm` (huge EPT mapping).
    pub fn alloc_guest_huge_region(&mut self, vm: VmId) -> Result<Gpa, MachineError> {
        self.vms[vm.0 as usize].alloc_guest_huge_region(&mut self.machine.phys)
    }

    /// Split-on-dirty demotion of the huge EPT mapping covering `gpa`:
    /// demote to a 4K subtree, shoot down every covering translation, and
    /// charge the demotion's fault + per-entry + IPI costs. Returns whether
    /// a huge mapping was present.
    pub fn demote_guest_region(
        &mut self,
        vm: VmId,
        gpa: Gpa,
        lane: Lane,
    ) -> Result<bool, MachineError> {
        let vmref = &mut self.vms[vm.0 as usize];
        if !vmref.demote_region(&mut self.machine.phys, gpa)? {
            return Ok(false);
        }
        // A demotion is a vmexit-priced fault plus a 512-entry table fill,
        // fenced by a shootdown IPI round to the sibling vCPUs.
        self.ctx.charge(lane, Event::PageFaultKernel);
        self.ctx
            .charge_n(lane, Event::ClearRefsPte, ooh_machine::HUGE_PAGE_PAGES);
        if vmref.vcpus.len() > 1 {
            self.ctx.charge(lane, Event::TlbShootdownIpi);
        }
        Ok(true)
    }

    /// Is the EPT mapping covering `gpa` still a 2 MiB leaf?
    pub fn is_huge_mapped(&self, vm: VmId, gpa: Gpa) -> Result<bool, MachineError> {
        self.vms[vm.0 as usize]
            .ept
            .is_huge_mapped(&self.machine.phys, gpa)
    }

    /// Toggle the split-on-dirty policy for `vm` (see [`Vm::split_on_dirty`]).
    pub fn set_split_on_dirty(&mut self, vm: VmId, on: bool) {
        self.vms[vm.0 as usize].split_on_dirty = on;
    }

    /// Free a page of guest RAM.
    pub fn free_guest_page(&mut self, vm: VmId, gpa: Gpa) -> Result<(), MachineError> {
        self.vms[vm.0 as usize].free_guest_page(&mut self.machine.phys, gpa)
    }

    /// Hypervisor-internal GPA→HPA translation (no architectural effects).
    pub fn gpa_to_hpa(&mut self, vm: VmId, gpa: Gpa) -> Result<Option<Hpa>, MachineError> {
        self.vms[vm.0 as usize].gpa_to_hpa(&self.machine.phys, gpa)
    }

    fn mmu_parts(
        &mut self,
        vm: VmId,
        vcpu: u32,
    ) -> (Mmu<'_>, &mut SpmlState, &mut DirtyBitmap) {
        let epml_hw = self.machine.config.epml;
        let vm = &mut self.vms[vm.0 as usize];
        let split_on_dirty = vm.split_on_dirty;
        let vcpu = &mut vm.vcpus[vcpu as usize];
        (
            Mmu {
                phys: &mut self.machine.phys,
                ept: &mut vm.ept,
                tlb: &mut vcpu.tlb,
                pml: &mut vcpu.pml,
                ctx: &self.ctx,
                lane: Lane::Tracked, // callers override via the lane argument
                epml_hw,
                spp: Some(&vm.spp_table),
                split_on_dirty,
            },
            &mut vm.spml,
            &mut vm.hyp_dirty,
        )
    }

    /// The guest data-access entry point: performs the nested walk and
    /// dispatches any PML events (hypervisor-buffer-full vmexit handled
    /// here; guest-buffer-full delivered as a virtual self-IPI).
    pub fn guest_access(
        &mut self,
        vm: VmId,
        vcpu: u32,
        cr3: Gpa,
        gva: Gva,
        write: bool,
        lane: Lane,
    ) -> Result<Result<GuestAccess, Fault>, MachineError> {
        let (mut mmu, _, _) = self.mmu_parts(vm, vcpu);
        mmu.lane = lane;
        let outcome = mmu.access(cr3, gva, write)?;
        match outcome {
            Ok(AccessOk { hpa, gpa, events }) => {
                self.dispatch_pml_events(vm, vcpu, &events, lane)?;
                Ok(Ok(GuestAccess { hpa, gpa }))
            }
            // EPT-side split-on-dirty: a logged write hit a still-clean huge
            // EPT leaf. On real hardware this is an EPT-violation vmexit the
            // guest never sees — demote, fence, and retry the access. If the
            // retry faults again the fault is guest-PTE-side (a huge guest
            // leaf under EPML) and the guest kernel owns the demotion.
            Err(Fault::HugeDirtyWrite { gpa, .. })
                if self.is_huge_mapped(vm, gpa)? =>
            {
                self.demote_guest_region(vm, gpa, Lane::Hypervisor)?;
                let (mut mmu, _, _) = self.mmu_parts(vm, vcpu);
                mmu.lane = lane;
                match mmu.access(cr3, gva, write)? {
                    Ok(AccessOk { hpa, gpa, events }) => {
                        self.dispatch_pml_events(vm, vcpu, &events, lane)?;
                        Ok(Ok(GuestAccess { hpa, gpa }))
                    }
                    Err(fault) => Ok(Err(fault)),
                }
            }
            Err(fault) => Ok(Err(fault)),
        }
    }

    /// Guest-kernel-initiated guest-physical read (e.g. PTE reads).
    pub fn guest_phys_read_u64(
        &mut self,
        vm: VmId,
        vcpu: u32,
        gpa: Gpa,
        lane: Lane,
    ) -> Result<Result<u64, Fault>, MachineError> {
        let (mut mmu, _, _) = self.mmu_parts(vm, vcpu);
        mmu.lane = lane;
        mmu.read_guest_phys_u64(gpa)
    }

    /// Guest-kernel-initiated guest-physical write (e.g. PTE updates, ring
    /// buffer pushes) — goes through the PML circuit like any other store.
    pub fn guest_phys_write_u64(
        &mut self,
        vm: VmId,
        vcpu: u32,
        gpa: Gpa,
        value: u64,
        lane: Lane,
    ) -> Result<Result<(), Fault>, MachineError> {
        let mut events = Vec::new();
        let (mut mmu, _, _) = self.mmu_parts(vm, vcpu);
        mmu.lane = lane;
        let r = mmu.write_guest_phys_u64(gpa, value, &mut events)?;
        if r.is_ok() {
            self.dispatch_pml_events(vm, vcpu, &events, lane)?;
        }
        Ok(r)
    }

    fn dispatch_pml_events(
        &mut self,
        vm: VmId,
        vcpu: u32,
        events: &[PmlEvent],
        lane: Lane,
    ) -> Result<(), MachineError> {
        for &ev in events {
            match ev {
                PmlEvent::HypBufferFull => self.handle_pml_full(vm, vcpu, lane)?,
                PmlEvent::GuestBufferFull => {
                    // EPML: the hardware posts a virtual self-IPI straight to
                    // the guest; the hypervisor never runs.
                    self.ctx.charge(Lane::Kernel, Event::PmlSelfIpi);
                    let v = &mut self.vms[vm.0 as usize].vcpus[vcpu as usize];
                    v.post_interrupt(&self.ctx, Lane::Kernel, EPML_SELF_IPI_VECTOR);
                }
            }
        }
        Ok(())
    }

    /// The page-modification-log-full vmexit handler (the paper's modified
    /// Xen handler): drain the hardware buffer; route GPAs to the guest ring
    /// (if the guest registered) and/or the hypervisor's migration dirty set
    /// (if the hypervisor enabled PML for itself); clear the EPT dirty bits
    /// and stale TLB translations so the next write re-logs.
    pub fn handle_pml_full(
        &mut self,
        vm: VmId,
        vcpu: u32,
        lane: Lane,
    ) -> Result<(), MachineError> {
        let _span = self
            .ctx
            .span(ooh_sim::ScopeKind::Op, "pml_full_exit", u64::from(vcpu));
        self.ctx.charge(Lane::Hypervisor, Event::PmlBufferFullExit);
        self.drain_hyp_pml(vm, vcpu)?;
        self.ctx.charge(Lane::Hypervisor, Event::VmEntry);
        let _ = lane;
        Ok(())
    }

    /// Drain the hypervisor PML buffer of `vcpu`, routing entries per the
    /// coordination flags. Returns the number of entries processed.
    pub fn drain_hyp_pml(&mut self, vm: VmId, vcpu: u32) -> Result<u64, MachineError> {
        let phys = &mut self.machine.phys;
        let vmref = &mut self.vms[vm.0 as usize];
        let entries = {
            let vc = &mut vmref.vcpus[vcpu as usize];
            let Some(buf) = vc.pml.hyp.as_mut() else {
                return Ok(0);
            };
            buf.drain(phys)?
        };
        let n = entries.len() as u64;
        if n == 0 {
            return Ok(0);
        }
        let to_guest = vmref.spml.enabled_by_guest && vmref.spml.guest_logging_on;
        for &raw in &entries {
            let gpa = Gpa(raw);
            // Keep-huge expansion: the logged GPA is 4K-precise (real PML
            // logs precise addresses even under 2M mappings), but the D bit
            // lives on the region-wide entry — sibling pages written after
            // the 0→1 transition never logged. If the mapping is still huge
            // at drain time, the only sound reading is "the whole region is
            // dirty": route all 512 pages and reset the region once.
            let entry_dirty = vmref.ept.lookup(phys, gpa)?.map(|(_, e)| e);
            let huge = entry_dirty.is_some_and(|e| e.is_huge());
            let (first_page, page_count) = if huge {
                (gpa.huge_base().page(), ooh_machine::HUGE_PAGE_PAGES)
            } else {
                (gpa.page(), 1)
            };
            for page in first_page..first_page + page_count {
                if to_guest {
                    if let Some(ring) = vmref.spml.guest_ring.as_ref() {
                        self.ctx
                            .charge(Lane::Hypervisor, Event::RingBufferCopyEntry);
                        if !ring.push(phys, Gpa::from_page(page).raw())? {
                            self.ctx.charge(Lane::Hypervisor, Event::RingBufferOverflow);
                        }
                    }
                }
                if vmref.spml.enabled_by_hyp {
                    vmref.hyp_dirty.insert(page);
                }
                if vmref.wss_active {
                    vmref.wss_accessed.insert(page);
                    // Access entries and dirty entries share the log; consult
                    // the EPT D bit to classify.
                    if entry_dirty.is_some_and(|e| e.is_dirty()) {
                        vmref.wss_dirty.insert(page);
                    }
                }
            }
            // Reset per-round dirty state. The EPT D bit is VM-global: once
            // cleared, the next write from *any* vCPU must re-log, so every
            // vCPU — not just the one whose buffer filled — forgets the page
            // in both its TLB and its PML shadow. A remote core writing
            // through a stale dirty-marked translation would silently skip
            // the log. (For a huge entry this clears the region-wide bit
            // once but retires all 512 shadow pages.)
            vmref.ept.clear_dirty(phys, gpa)?;
            for vc in &mut vmref.vcpus {
                for page in first_page..first_page + page_count {
                    vc.pml.note_hyp_dirty_cleared(page);
                    vc.tlb.invalidate_gpa_page(page);
                }
            }
        }
        Ok(n)
    }

    /// Handle a hypercall from `vcpu` of `vm` (the guest OoH module is the
    /// only caller). Charges the Table-Va-calibrated costs.
    pub fn hypercall(
        &mut self,
        vm: VmId,
        vcpu: u32,
        call: Hypercall,
        lane: Lane,
    ) -> Result<HypercallResult, MachineError> {
        let _span = self
            .ctx
            .span(ooh_sim::ScopeKind::Op, call.name(), u64::from(vcpu));
        self.ctx.counters().add(Event::Hypercall, 1);
        match call {
            Hypercall::SpmlInit {
                ring_header,
                ring_data,
            } => {
                self.ctx.charge(lane, Event::HypercallInitPml);
                // Translate the guest-owned ring pages once; the hypervisor
                // writes through its HPA view from then on.
                let Some(header) = self.gpa_to_hpa(vm, ring_header)? else {
                    return Ok(HypercallResult::Invalid);
                };
                let mut data = Vec::with_capacity(ring_data.len());
                for g in ring_data {
                    match self.gpa_to_hpa(vm, g)? {
                        Some(h) => data.push(h),
                        None => return Ok(HypercallResult::Invalid),
                    }
                }
                let ring = RingView::attach(&self.machine.phys, header, data)?;
                let vmref = &mut self.vms[vm.0 as usize];
                vmref.spml.guest_ring = Some(ring);
                vmref.spml.enabled_by_guest = true;
                // Entering log-dirty service: reset accumulated EPT dirty
                // state so only *new* writes log (Xen does the same when it
                // begins a log-dirty epoch; the sweep is part of M9's cost).
                vmref.ept.clear_all_dirty(&mut self.machine.phys)?;
                for vc in &mut vmref.vcpus {
                    vc.tlb.flush_all();
                    vc.pml.shadow_reset_hyp();
                }
                vmref.sync_logging();
                Ok(HypercallResult::Ok)
            }
            Hypercall::SpmlDeactivate => {
                self.ctx.charge(lane, Event::HypercallDeactivatePml);
                let vmref = &mut self.vms[vm.0 as usize];
                vmref.spml.enabled_by_guest = false;
                vmref.spml.guest_logging_on = false;
                vmref.spml.guest_ring = None;
                for vc in &mut vmref.vcpus {
                    vc.pml.shadow_reset_hyp();
                }
                vmref.sync_logging();
                Ok(HypercallResult::Ok)
            }
            Hypercall::EnableLogging => {
                self.ctx.charge(lane, Event::HypercallEnableLogging);
                let vmref = &mut self.vms[vm.0 as usize];
                if !vmref.spml.enabled_by_guest {
                    return Ok(HypercallResult::Invalid);
                }
                vmref.spml.guest_logging_on = true;
                vmref.sync_logging();
                Ok(HypercallResult::Ok)
            }
            Hypercall::DisableLogging => {
                self.ctx.charge(lane, Event::HypercallDisableLogging);
                if !self.vms[vm.0 as usize].spml.enabled_by_guest {
                    return Ok(HypercallResult::Invalid);
                }
                // Flush whatever the buffer holds into the ring, then stop.
                self.drain_hyp_pml(vm, vcpu)?;
                let vmref = &mut self.vms[vm.0 as usize];
                vmref.spml.guest_logging_on = false;
                vmref.sync_logging();
                Ok(HypercallResult::Ok)
            }
            Hypercall::EpmlInit => {
                if !self.machine.config.epml {
                    return Ok(HypercallResult::Invalid);
                }
                self.ctx.charge(lane, Event::HypercallInitPmlShadow);
                let vc = &mut self.vms[vm.0 as usize].vcpus[vcpu as usize];
                vc.vmcs.attach_shadow(&[
                    Field::GuestPmlAddress,
                    Field::GuestPmlIndex,
                    Field::EpmlControl,
                ]);
                Ok(HypercallResult::Ok)
            }
            Hypercall::SppSetMask { gpa, mask } => {
                if !self.machine.config.spp {
                    return Ok(HypercallResult::Invalid);
                }
                self.ctx.charge(lane, Event::SppUpdate);
                let vmref = &mut self.vms[vm.0 as usize];
                // The page must be guest RAM of this VM.
                if vmref.ept.translate(&self.machine.phys, gpa)?.is_none() {
                    return Ok(HypercallResult::Invalid);
                }
                vmref.spp_table.set_mask(gpa, mask);
                // Cached translations must re-walk so the new mask applies.
                for vc in &mut vmref.vcpus {
                    vc.tlb.invalidate_gpa_page(gpa.page());
                }
                Ok(HypercallResult::Ok)
            }
            Hypercall::SppClear { gpa } => {
                self.ctx.charge(lane, Event::SppUpdate);
                let vmref = &mut self.vms[vm.0 as usize];
                vmref.spp_table.clear(gpa);
                for vc in &mut vmref.vcpus {
                    vc.tlb.invalidate_gpa_page(gpa.page());
                }
                Ok(HypercallResult::Ok)
            }
            Hypercall::EpmlDeactivate => {
                self.ctx.charge(lane, Event::HypercallDeactivateShadow);
                let vc = &mut self.vms[vm.0 as usize].vcpus[vcpu as usize];
                vc.vmcs.detach_shadow();
                vc.sync_pml_from_vmcs();
                // Undrained guest-buffer entries die with the session; the
                // shadow must not outlive them (debug-invariants only).
                vc.pml.shadow_reset_guest();
                Ok(HypercallResult::Ok)
            }
        }
    }

    /// Execute a guest-mode `vmwrite` on `vcpu` (the OoH module's EPML hot
    /// path). Goes through the EPML-extended instruction semantics.
    pub fn guest_vmwrite(
        &mut self,
        vm: VmId,
        vcpu: u32,
        field: Field,
        value: u64,
        lane: Lane,
    ) -> Result<(), MachineError> {
        let vmref = &mut self.vms[vm.0 as usize];
        let vc = &mut vmref.vcpus[vcpu as usize];
        vc.vmwrite(
            &self.ctx,
            lane,
            field,
            value,
            &mut self.machine.phys,
            &mut vmref.ept,
        )
    }

    /// `debug-invariants` hook: the guest OoH module cleared the D bit of the
    /// guest PTE mapping `gva` (track-reset or guest-buffer drain). Keeps the
    /// PML shadow's "already logged" set in sync so a later 0→1 transition is
    /// not mistaken for a double-log. No-op unless the feature is enabled.
    pub fn note_guest_pte_dirty_cleared(&mut self, vm: VmId, vcpu: u32, gva: Gva) {
        self.vms[vm.0 as usize].vcpus[vcpu as usize]
            .pml
            .note_guest_dirty_cleared(gva.page());
    }

    /// Fold the model-observable state of one vCPU (plus its VM's SPML
    /// coordination flags and guest ring) into `h`. This is the machine half
    /// of the `ooh-model` explorer's state-hash deduplication key; clocks,
    /// event counters, and TLB hit/miss statistics are deliberately excluded
    /// because they never feed back into protocol decisions.
    pub fn hash_vm_state(
        &self,
        vm: VmId,
        vcpu: u32,
        h: &mut StateHasher,
    ) -> Result<(), MachineError> {
        let vmref = &self.vms[vm.0 as usize];
        let vc = &vmref.vcpus[vcpu as usize];
        h.write_u64(vc.cr3.raw());
        h.write_u64(vc.pending_vectors.len() as u64);
        for &vector in &vc.pending_vectors {
            h.write_u64(u64::from(vector));
        }
        h.write_bool(vmref.spml.enabled_by_guest);
        h.write_bool(vmref.spml.guest_logging_on);
        h.write_bool(vmref.spml.enabled_by_hyp);
        h.write_bool(vc.pml.hyp_logging);
        h.write_bool(vc.pml.guest_logging);
        match &vc.pml.hyp {
            Some(buf) => {
                h.write_bool(true);
                buf.hash_state(&self.machine.phys, h)?;
            }
            None => h.write_bool(false),
        }
        match &vc.pml.guest {
            Some(buf) => {
                h.write_bool(true);
                buf.hash_state(&self.machine.phys, h)?;
            }
            None => h.write_bool(false),
        }
        vc.tlb.hash_state(h);
        match vmref.spml.guest_ring.as_ref() {
            Some(ring) => {
                h.write_bool(true);
                ring.hash_state(&self.machine.phys, h)?;
            }
            None => h.write_bool(false),
        }
        Ok(())
    }

    /// Ring accessors through the hypervisor's physical view, so guest-side
    /// crates (which hold `RingView`s but must not touch host frames
    /// directly) can observe queue state for model properties.
    pub fn ring_len(&self, ring: &RingView) -> Result<u64, MachineError> {
        ring.len(&self.machine.phys)
    }

    /// Total entries the ring has dropped (see [`Self::ring_len`]).
    pub fn ring_dropped(&self, ring: &RingView) -> Result<u64, MachineError> {
        ring.dropped(&self.machine.phys)
    }

    /// Fold a ring's observable state into `h` (see [`Self::ring_len`]).
    pub fn hash_ring(&self, ring: &RingView, h: &mut StateHasher) -> Result<(), MachineError> {
        ring.hash_state(&self.machine.phys, h)
    }

    /// Interrupt vectors queued on `vcpu` but not yet delivered. The model
    /// checker uses this to decide whether an IPI-delivery step is enabled.
    pub fn pending_vector_count(&self, vm: VmId, vcpu: u32) -> usize {
        self.vms[vm.0 as usize].vcpus[vcpu as usize]
            .pending_vectors
            .len()
    }

    /// Discard every queued vector without delivering it, returning how many
    /// were dropped. This is a *fault injection* hook for the model checker's
    /// self-validation (the "lost IPI" mutation); production code never drops
    /// posted interrupts.
    pub fn discard_pending_interrupts(&mut self, vm: VmId, vcpu: u32) -> usize {
        let vc = &mut self.vms[vm.0 as usize].vcpus[vcpu as usize];
        let n = vc.pending_vectors.len();
        vc.pending_vectors.clear();
        n
    }

    /// Free entry slots in the EPML guest buffer (`None` when EPML is not
    /// active on the vcpu). `Some(0)` means the next logged write takes the
    /// buffer-full path.
    pub fn guest_pml_free_slots(&self, vm: VmId, vcpu: u32) -> Option<u64> {
        let vc = &self.vms[vm.0 as usize].vcpus[vcpu as usize];
        vc.pml
            .guest
            .as_ref()
            .map(|buf| u64::from(PML_ENTRIES) - u64::from(buf.len()))
    }

    /// Free entry slots in the hypervisor PML buffer (`None` when absent).
    pub fn hyp_pml_free_slots(&self, vm: VmId, vcpu: u32) -> Option<u64> {
        let vc = &self.vms[vm.0 as usize].vcpus[vcpu as usize];
        vc.pml
            .hyp
            .as_ref()
            .map(|buf| u64::from(PML_ENTRIES) - u64::from(buf.len()))
    }

    /// Execute a guest-mode `vmread` on `vcpu`.
    pub fn guest_vmread(
        &mut self,
        vm: VmId,
        vcpu: u32,
        field: Field,
        lane: Lane,
    ) -> Result<u64, MachineError> {
        let vc = &mut self.vms[vm.0 as usize].vcpus[vcpu as usize];
        vc.vmread(&self.ctx, lane, field)
    }
}

impl std::fmt::Debug for Hypervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hypervisor")
            .field("vms", &self.vms.len())
            .field("config", &self.machine.config)
            .finish_non_exhaustive()
    }
}
