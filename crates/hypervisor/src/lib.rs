//! # ooh-hypervisor — the Xen slice the OoH paper modifies
//!
//! A hypervisor the size of exactly what the experiments need:
//!
//! * VM lifecycle with per-VM [`ooh_machine::Ept`] and Xen-style
//!   pre-populated guest RAM ([`vm::Vm`]);
//! * the guest memory-access entry point, which runs the nested walker and
//!   dispatches PML events ([`hypervisor::Hypervisor::guest_access`]);
//! * the page-modification-log-full vmexit handler, extended as in the
//!   paper's Xen patch to copy GPAs into a ring buffer shared with the
//!   guest when the guest has registered (SPML);
//! * the OoH hypercall ABI — `enable_logging`/`disable_logging` for SPML's
//!   hot path, plus one-time init/deactivate calls and the EPML
//!   VMCS-shadowing setup ([`hypercall::Hypercall`]);
//! * the `enabled_by_guest` / `enabled_by_hyp` coordination flags that let
//!   the guest's per-process tracking coexist with the hypervisor's own PML
//!   consumer, pre-copy live migration ([`migration::PreCopyMigration`]).

#![forbid(unsafe_code)]

pub mod hypercall;
pub mod hypervisor;
pub mod migration;
pub mod vm;
pub mod wss;

pub use hypercall::{Hypercall, HypercallResult};
pub use hypervisor::{GuestAccess, Hypervisor};
pub use migration::{MigrationConfig, MigrationReport, PreCopyMigration, RoundControl, RoundStats};
pub use vm::{SpmlState, Vm, VmId};
pub use wss::{WssEstimator, WssSample};

#[cfg(test)]
mod tests {
    use super::*;
    use ooh_machine::{Fault, Gva, MachineConfig, PAGE_SIZE};
    use ooh_sim::{Lane, SimCtx};

    fn hv(epml: bool) -> Hypervisor {
        let cfg = if epml {
            MachineConfig::epml(64 * 1024 * PAGE_SIZE)
        } else {
            MachineConfig::stock(64 * 1024 * PAGE_SIZE)
        };
        Hypervisor::new(cfg, SimCtx::new())
    }

    #[test]
    fn create_vm_allocates_pml_buffers() {
        let mut h = hv(false);
        let vm = h.create_vm(1024 * PAGE_SIZE, 2).unwrap();
        let v = h.vm(vm);
        assert_eq!(v.vcpus.len(), 2);
        for vc in &v.vcpus {
            assert!(vc.pml.hyp.is_some());
            assert!(!vc.pml.hyp_logging, "logging off until someone enables it");
        }
    }

    #[test]
    fn unmapped_guest_access_is_ept_violation() {
        let mut h = hv(false);
        let vm = h.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        // No guest page tables: the CR3 read itself hits an unmapped GPA.
        let r = h
            .guest_access(vm, 0, ooh_machine::Gpa(0x1000), Gva(0x4000), false, Lane::Tracked)
            .unwrap();
        assert!(matches!(r, Err(Fault::EptViolation { .. })));
    }

    #[test]
    fn spml_enable_requires_registration() {
        let mut h = hv(false);
        let vm = h.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        let r = h
            .hypercall(vm, 0, Hypercall::EnableLogging, Lane::Kernel)
            .unwrap();
        assert_eq!(r, HypercallResult::Invalid);
    }

    #[test]
    fn epml_init_rejected_on_stock_hardware() {
        let mut h = hv(false);
        let vm = h.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        let r = h.hypercall(vm, 0, Hypercall::EpmlInit, Lane::Kernel).unwrap();
        assert_eq!(r, HypercallResult::Invalid);
    }

    #[test]
    fn epml_init_attaches_shadow_on_epml_hardware() {
        let mut h = hv(true);
        let vm = h.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        let r = h.hypercall(vm, 0, Hypercall::EpmlInit, Lane::Kernel).unwrap();
        assert_eq!(r, HypercallResult::Ok);
        assert!(h.vm(vm).vcpus[0].vmcs.shadowing_enabled());
        // The guest can now toggle its logging bit without vmexits.
        h.guest_vmwrite(vm, 0, ooh_machine::Field::EpmlControl, 1, Lane::Kernel)
            .unwrap();
        assert_eq!(
            h.guest_vmread(vm, 0, ooh_machine::Field::EpmlControl, Lane::Kernel)
                .unwrap(),
            1
        );
    }

    #[test]
    fn migration_converges_only_when_dirtying_stops() {
        use ooh_machine::{EptEntry, Gpa};
        let mut h = hv(false);
        let vm = h.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        // Give the VM some RAM.
        let mut gpas = Vec::new();
        for _ in 0..200 {
            gpas.push(h.alloc_guest_page(vm).unwrap());
        }
        let config = MigrationConfig {
            page_copy_ns: 1_000,
            stop_threshold_pages: 8,
            max_rounds: 6,
        };
        let mut mig = PreCopyMigration::start(&mut h, vm, config);

        // A writer that keeps dirtying 64 pages per round (more than the
        // stop threshold): mark EPT D bits directly, as guest stores would.
        let dirty_pages = |h: &mut Hypervisor, n: usize| {
            let (vmref, phys) = h.vm_and_phys_mut(vm);
            for g in gpas.iter().take(n) {
                let (slot, e) = vmref.ept.lookup(phys, *g).unwrap().unwrap();
                phys.write_u64(slot, e.with(EptEntry::DIRTY).0).unwrap();
            }
        };

        // While the writer is hot, rounds keep sending ≥64 pages.
        for _ in 0..3 {
            dirty_pages(&mut h, 64);
            // Simulate the PML path: harvest dirty EPT bits into hyp_dirty.
            {
                let (vmref, phys) = h.vm_and_phys_mut(vm);
                let dirty: Vec<Gpa> = vmref.ept.collect_dirty(phys).unwrap();
                for g in &dirty {
                    vmref.hyp_dirty.insert(g.page());
                }
                vmref.ept.clear_all_dirty(phys).unwrap();
            }
            let sent = mig.round(&mut h).unwrap();
            assert!(sent >= 64, "hot writer keeps the dirty set large: {sent}");
            assert!(!mig.converged(sent));
        }
        // Writer stops: the next round is small and convergence follows.
        let sent = mig.round(&mut h).unwrap();
        assert!(mig.converged(sent), "quiescent guest must converge ({sent})");
        let report = mig.finalize(&mut h).unwrap();
        assert!(report.converged);
        assert_eq!(report.downtime_pages, 0);
    }

    #[test]
    fn run_with_control_throttles_a_hot_writer_to_convergence() {
        use ooh_machine::{EptEntry, Gpa};
        let mut h = hv(false);
        let vm = h.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        let mut gpas = Vec::new();
        for _ in 0..200 {
            gpas.push(h.alloc_guest_page(vm).unwrap());
        }
        let config = MigrationConfig {
            page_copy_ns: 1_000,
            stop_threshold_pages: 8,
            max_rounds: 10,
        };
        let mig = PreCopyMigration::start(&mut h, vm, config);
        let report = mig
            .run_with_control(
                &mut h,
                |h, throttle_level| {
                    // An auto-converge-style writer: each throttle step
                    // halves its per-round dirtying. The guest runs for a
                    // quantum of virtual time, so dirty rates are finite.
                    h.ctx.advance(ooh_sim::Lane::Tracked, 1_000_000);
                    let n = 64usize >> throttle_level.min(4);
                    let (vmref, phys) = h.vm_and_phys_mut(vm);
                    for g in gpas.iter().take(n) {
                        let (slot, e) = vmref.ept.lookup(phys, *g).unwrap().unwrap();
                        phys.write_u64(slot, e.with(EptEntry::DIRTY).0).unwrap();
                    }
                    let dirty: Vec<Gpa> = vmref.ept.collect_dirty(phys).unwrap();
                    for g in &dirty {
                        vmref.hyp_dirty.insert(g.page());
                    }
                    vmref.ept.clear_all_dirty(phys).unwrap();
                    Ok(())
                },
                |stats| {
                    if stats.pages_sent > 8 {
                        RoundControl::Throttle
                    } else {
                        RoundControl::Continue
                    }
                },
            )
            .unwrap();
        assert!(report.converged, "throttling must force convergence");
        assert_eq!(report.throttled_rounds, 3, "rounds at 32/16/8 pages ran throttled");
        // 64 → 32 → 16 → 8 pages: the halving shows up in the round log.
        let sent: Vec<u64> = report.rounds.iter().map(|r| r.pages_sent).collect();
        assert_eq!(&sent[1..5], &[64, 32, 16, 8]);
        // Guest intervals are observable, so dirty rates are computable.
        assert!(report.rounds[1].interval_ns > 0);
        assert!(report.rounds[1].dirty_pps() > 0);
    }

    #[test]
    fn run_with_control_stop_cuts_precopy_short() {
        let mut h = hv(false);
        let vm = h.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        for _ in 0..100 {
            h.alloc_guest_page(vm).unwrap();
        }
        let mig = PreCopyMigration::start(&mut h, vm, MigrationConfig::default());
        let report = mig
            .run_with_control(&mut h, |_, _| Ok(()), |_| RoundControl::Stop)
            .unwrap();
        // Quiescent guest: round 1 is empty, which converges before the
        // controller is even consulted — Stop is the backstop for hot
        // guests, exercised by making round 1 non-empty elsewhere. Here we
        // just pin the shape: full copy + one drain, nothing throttled.
        assert_eq!(report.throttled_rounds, 0);
        assert!(report.rounds.len() <= 3);
    }

    #[test]
    fn spp_hypercall_validates_gpa_ownership() {
        let mut h = hv(false);
        let vm = h.create_vm(64 * PAGE_SIZE, 1).unwrap();
        // Unmapped GPA: rejected.
        let r = h
            .hypercall(
                vm,
                0,
                Hypercall::SppSetMask {
                    gpa: ooh_machine::Gpa(0x5000_0000),
                    mask: 0,
                },
                ooh_sim::Lane::Kernel,
            )
            .unwrap();
        assert_eq!(r, HypercallResult::Invalid);
        // Mapped GPA: accepted.
        let g = h.alloc_guest_page(vm).unwrap();
        let r = h
            .hypercall(
                vm,
                0,
                Hypercall::SppSetMask { gpa: g, mask: 0 },
                ooh_sim::Lane::Kernel,
            )
            .unwrap();
        assert_eq!(r, HypercallResult::Ok);
        assert_eq!(h.vm(vm).spp_table.mask(g), Some(0));
        // Clearing restores.
        h.hypercall(vm, 0, Hypercall::SppClear { gpa: g }, ooh_sim::Lane::Kernel)
            .unwrap();
        assert_eq!(h.vm(vm).spp_table.mask(g), None);
    }

    #[test]
    fn migration_flags_do_not_clobber_guest_registration() {
        let mut h = hv(false);
        let vm = h.create_vm(1024 * PAGE_SIZE, 1).unwrap();
        // Fake a guest registration without a ring (flags only).
        h.vm_mut(vm).spml.enabled_by_guest = true;
        h.vm_mut(vm).spml.guest_logging_on = true;
        h.vm_mut(vm).sync_logging();
        assert!(h.vm(vm).vcpus[0].pml.hyp_logging);

        let mig = PreCopyMigration::start(&mut h, vm, MigrationConfig::default());
        assert!(h.vm(vm).spml.enabled_by_hyp);
        let report = mig.finalize(&mut h).unwrap();
        assert!(!h.vm(vm).spml.enabled_by_hyp);
        // Guest's logging survives the hypervisor's deactivation (§IV-C(3)).
        assert!(h.vm(vm).vcpus[0].pml.hyp_logging);
        assert!(report.rounds.len() >= 2);
    }
}
