//! Pre-copy live migration — the hypervisor's *own* PML consumer.
//!
//! PML was introduced for exactly this: during the pre-copy phase the
//! hypervisor repeatedly sends pages dirtied since the previous round, and
//! PML tells it which those are without write-protecting the guest. We
//! implement the standard iterative algorithm so we can (a) demonstrate the
//! paper's guest/hypervisor PML *coexistence* (the `enabled_by_guest` /
//! `enabled_by_hyp` flags) and (b) provide the hypervisor-side baseline the
//! "Alternative" of §III-C alludes to (checkpoint the whole VM instead of
//! the process).

use crate::hypervisor::Hypervisor;
use crate::vm::VmId;
use ooh_machine::MachineError;
use ooh_sim::{Event, Lane};
use serde::Serialize;

/// Tunables of the pre-copy loop.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MigrationConfig {
    /// Simulated time to transfer one page to the destination (4 KiB over
    /// ~10 Gb/s plus protocol overhead ≈ 4 µs).
    pub page_copy_ns: u64,
    /// Stop-and-copy threshold: switch to the final round when the dirty set
    /// falls at or below this many pages.
    pub stop_threshold_pages: u64,
    /// Hard cap on pre-copy rounds (guests can dirty faster than we copy).
    pub max_rounds: u32,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        Self {
            page_copy_ns: 4_000,
            stop_threshold_pages: 64,
            max_rounds: 30,
        }
    }
}

/// Per-round record.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RoundStats {
    pub round: u64,
    pub pages_sent: u64,
    /// Virtual time spent copying this round's pages.
    pub ns: u64,
    /// Virtual time the guest ran between the previous drain and this one —
    /// the denominator of the dirty rate. Round 0 (the initial full copy)
    /// has no preceding drain and reports 0.
    pub interval_ns: u64,
}

impl RoundStats {
    /// Dirty rate observed this round, in pages per virtual second. A zero
    /// interval with dirty pages counts as unbounded (the guest out-dirtied
    /// an instantaneous drain).
    pub fn dirty_pps(&self) -> u64 {
        if self.interval_ns == 0 {
            return if self.pages_sent == 0 { 0 } else { u64::MAX };
        }
        u128::from(self.pages_sent)
            .saturating_mul(1_000_000_000)
            .checked_div(u128::from(self.interval_ns))
            .map_or(u64::MAX, |r| u64::try_from(r).unwrap_or(u64::MAX))
    }
}

/// What an external convergence controller tells the pre-copy loop to do
/// after seeing a round's stats. The hypervisor deliberately carries no
/// policy of its own beyond the built-in threshold/round-cap — richer
/// policies (`ooh_core::ConvergencePolicy`) live above it and drive the
/// loop through [`PreCopyMigration::run_with_control`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundControl {
    /// Run another pre-copy round.
    Continue,
    /// Run another round, but the controller has throttled the writer
    /// (the between-rounds callback sees the raised throttle level).
    Throttle,
    /// Give up on pre-copy now: pause and stop-and-copy.
    Stop,
}

/// Final report.
#[derive(Debug, Clone, Serialize)]
pub struct MigrationReport {
    pub rounds: Vec<RoundStats>,
    pub total_pages_sent: u64,
    pub downtime_pages: u64,
    pub total_ns: u64,
    pub converged: bool,
    /// Rounds that ran with a controller-imposed writer throttle in force
    /// (always 0 under the policy-free [`run_to_completion`] driver).
    ///
    /// [`run_to_completion`]: PreCopyMigration::run_to_completion
    pub throttled_rounds: u32,
}

/// Driver object for one in-flight migration.
#[derive(Debug)]
pub struct PreCopyMigration {
    vm: VmId,
    config: MigrationConfig,
    rounds: Vec<RoundStats>,
    /// Virtual instant the previous round's copy finished (dirty-rate
    /// denominator for the next round).
    last_drain_ns: u64,
    throttled_rounds: u32,
}

impl PreCopyMigration {
    /// Begin migrating `vm`: raises `enabled_by_hyp` (PML on for the whole
    /// VM, coexisting with any guest-level use) and queues the initial
    /// full-RAM copy as round 0.
    pub fn start(hv: &mut Hypervisor, vm: VmId, config: MigrationConfig) -> Self {
        {
            let vmref = hv.vm_mut(vm);
            vmref.spml.enabled_by_hyp = true;
            vmref.sync_logging();
        }
        let mut this = Self {
            vm,
            config,
            rounds: Vec::new(),
            last_drain_ns: hv.ctx.now_ns(),
            throttled_rounds: 0,
        };
        // Round 0: everything currently allocated.
        let pages = hv.vm(vm).allocated_pages();
        this.record_round(hv, pages);
        this
    }

    fn record_round(&mut self, hv: &Hypervisor, pages: u64) {
        // Guest-run time since the previous drain; round 0 has none.
        let interval_ns = if self.rounds.is_empty() {
            0
        } else {
            hv.ctx.now_ns() - self.last_drain_ns
        };
        let ns = pages * self.config.page_copy_ns;
        if pages > 0 {
            // Counted per page so cost-coverage and the fleet's per-VM
            // attribution see the copy channel as a mechanism, not dead time.
            hv.ctx
                .charge_n_ns(Lane::Hypervisor, Event::MigrationPageCopy, pages, ns);
        }
        self.last_drain_ns = hv.ctx.now_ns();
        // The round counter is architectural (it lands in serialized
        // reports), so it is wide enough to never truncate — the old
        // `as u32` would have wrapped silently.
        self.rounds.push(RoundStats {
            round: self.rounds.len() as u64,
            pages_sent: pages,
            ns,
            interval_ns,
        });
    }

    /// One pre-copy round: drain PML on every vCPU, take the dirty set, and
    /// "send" it. Returns the number of pages sent this round.
    pub fn round(&mut self, hv: &mut Hypervisor) -> Result<u64, MachineError> {
        // Saturating, not truncating: an `as u32` cast here would silently
        // skip the upper vCPUs' buffers if the count ever exceeded u32
        // (unreachable today — create_vm takes the count as u32).
        let n_vcpus = u32::try_from(hv.vm(self.vm).vcpus.len()).unwrap_or(u32::MAX);
        for v in 0..n_vcpus {
            hv.drain_hyp_pml(self.vm, v)?;
        }
        let pages = {
            let vmref = hv.vm_mut(self.vm);
            let dirty = vmref.hyp_dirty.take();
            dirty.len() as u64
        };
        self.record_round(hv, pages);
        Ok(pages)
    }

    /// Stats of the most recent round (round 0 exists from `start`).
    pub fn last_round(&self) -> Option<&RoundStats> {
        self.rounds.last()
    }

    /// Should we give up on convergence (dirty rate too high)?
    pub fn rounds_exhausted(&self) -> bool {
        // Compare in usize: a truncating `as u32` on the count would let a
        // (pathological) >2^32-round migration sail past the cap.
        self.rounds.len() >= self.config.max_rounds as usize
    }

    /// Has the dirty set shrunk enough for stop-and-copy?
    pub fn converged(&self, last_round_pages: u64) -> bool {
        last_round_pages <= self.config.stop_threshold_pages
    }

    /// Final stop-and-copy round: the VM is paused, the remaining dirty set
    /// is sent (this is the downtime), PML is released, flags cleared.
    pub fn finalize(mut self, hv: &mut Hypervisor) -> Result<MigrationReport, MachineError> {
        // Saturating, not truncating: an `as u32` cast here would silently
        // skip the upper vCPUs' buffers if the count ever exceeded u32
        // (unreachable today — create_vm takes the count as u32).
        let n_vcpus = u32::try_from(hv.vm(self.vm).vcpus.len()).unwrap_or(u32::MAX);
        for v in 0..n_vcpus {
            hv.drain_hyp_pml(self.vm, v)?;
        }
        let remaining: u64 = {
            let vmref = hv.vm_mut(self.vm);
            let n = vmref.hyp_dirty.len() as u64;
            vmref.hyp_dirty.clear();
            n
        };
        let converged = self.converged(remaining);
        self.record_round(hv, remaining);
        {
            // Paper §IV-C(3): before deactivating PML for its own use, the
            // hypervisor checks the guest flag — if the guest still has PML
            // enabled, only the hypervisor's interest is dropped and logging
            // stays on for the guest.
            let vmref = hv.vm_mut(self.vm);
            vmref.spml.enabled_by_hyp = false;
            vmref.sync_logging();
        }
        let total_pages_sent = self.rounds.iter().map(|r| r.pages_sent).sum();
        let total_ns = self.rounds.iter().map(|r| r.ns).sum();
        Ok(MigrationReport {
            downtime_pages: remaining,
            total_pages_sent,
            total_ns,
            converged,
            throttled_rounds: self.throttled_rounds,
            rounds: self.rounds,
        })
    }

    /// Run the whole loop to completion.
    pub fn run_to_completion(
        mut self,
        hv: &mut Hypervisor,
        mut between_rounds: impl FnMut(&mut Hypervisor) -> Result<(), MachineError>,
    ) -> Result<MigrationReport, MachineError> {
        loop {
            between_rounds(hv)?;
            let sent = self.round(hv)?;
            if self.converged(sent) || self.rounds_exhausted() {
                return self.finalize(hv);
            }
        }
    }

    /// Run the loop under an external convergence controller.
    ///
    /// After each round, `control` sees the round's [`RoundStats`] (pages,
    /// copy time, guest interval — enough to compute the dirty rate) and
    /// answers with a [`RoundControl`]. `between_rounds` runs the guest
    /// writer before each round and receives the current throttle level
    /// (0 = unthrottled; each [`RoundControl::Throttle`] raises it by one) —
    /// the conventional auto-converge contract: the controller decides,
    /// the driver slows the writer.
    ///
    /// The built-in threshold and round cap still apply as backstops, so a
    /// buggy controller cannot spin the loop forever.
    pub fn run_with_control(
        mut self,
        hv: &mut Hypervisor,
        mut between_rounds: impl FnMut(&mut Hypervisor, u32) -> Result<(), MachineError>,
        mut control: impl FnMut(&RoundStats) -> RoundControl,
    ) -> Result<MigrationReport, MachineError> {
        let mut throttle_level = 0u32;
        loop {
            between_rounds(hv, throttle_level)?;
            let sent = self.round(hv)?;
            if throttle_level > 0 {
                self.throttled_rounds += 1;
            }
            if self.converged(sent) || self.rounds_exhausted() {
                return self.finalize(hv);
            }
            // Round 0 is recorded in `start`, so the log is never empty here.
            if let Some(stats) = self.last_round() {
                match control(stats) {
                    RoundControl::Continue => {}
                    RoundControl::Throttle => throttle_level += 1,
                    RoundControl::Stop => return self.finalize(hv),
                }
            }
        }
    }
}
