//! Per-VM state: EPT, vCPUs, guest frame allocation, SPML coordination flags.

use ooh_machine::{
    exec_controls, DirtyBitmap, Ept, Field, Gpa, Hpa, HostPhys, MachineError, RingView, SppTable,
    Vcpu, VmxMode, HUGE_PAGE_PAGES, PAGE_SIZE,
};

/// VM identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize)]
pub struct VmId(pub u32);

/// The SPML coordination state the paper adds to the hypervisor: which level
/// (guest / hypervisor) currently has PML enabled, and where the guest ring
/// buffer lives.
#[derive(Debug, Default)]
pub struct SpmlState {
    /// The guest (OoH module) has registered for per-process PML service.
    pub enabled_by_guest: bool,
    /// The guest's logging is *currently on* (tracked process scheduled in).
    pub guest_logging_on: bool,
    /// The hypervisor itself is using PML (live migration in progress).
    pub enabled_by_hyp: bool,
    /// The hypervisor's view of the ring buffer shared with the guest. The
    /// ring lives in *guest* memory (the paper's §V isolation argument);
    /// the hypervisor caches the translated frame addresses at init time.
    pub guest_ring: Option<RingView>,
}

/// One virtual machine.
pub struct Vm {
    pub id: VmId,
    pub ept: Ept,
    pub vcpus: Vec<Vcpu>,
    pub spml: SpmlState,
    /// Sub-page write permissions for this VM's guest-physical pages
    /// (the OoH-SPP service of §III-D).
    pub spp_table: SppTable,
    /// Dirty GPA pages collected for the hypervisor's own use (migration),
    /// word-packed (one bit per guest-physical page).
    pub hyp_dirty: DirtyBitmap,
    /// Working-set estimation (PML-R) state: distinct pages accessed and
    /// written during the current sampling interval, word-packed.
    pub wss_accessed: DirtyBitmap,
    pub wss_dirty: DirtyBitmap,
    pub wss_active: bool,
    /// Split-on-dirty policy: the first logged write to a still-huge mapping
    /// takes a demotion fault instead of setting the region-wide D bit, so
    /// dirty tracking stays 4K-precise. Off by default — with it off, huge
    /// mappings log once per region per round and drains expand them
    /// conservatively to all 512 pages.
    pub split_on_dirty: bool,
    /// Next guest-physical page to hand out.
    next_gpa_page: u64,
    /// Reusable freed guest pages.
    free_gpa_pages: Vec<u64>,
    /// Configured guest RAM ceiling, in pages.
    ram_pages: u64,
    /// Currently allocated guest pages.
    allocated_pages: u64,
}

impl Vm {
    pub fn new(
        id: VmId,
        phys: &mut HostPhys,
        ram_bytes: u64,
        n_vcpus: u32,
    ) -> Result<Self, MachineError> {
        let ept = Ept::new(phys)?;
        let vcpus = (0..n_vcpus).map(Vcpu::new).collect();
        Ok(Self {
            id,
            ept,
            vcpus,
            spml: SpmlState::default(),
            spp_table: SppTable::new(),
            hyp_dirty: DirtyBitmap::new(),
            wss_accessed: DirtyBitmap::new(),
            wss_dirty: DirtyBitmap::new(),
            wss_active: false,
            split_on_dirty: false,
            // GPA 0 is reserved (null) — hand out pages from 1.
            next_gpa_page: 1,
            free_gpa_pages: Vec::new(),
            ram_pages: ram_bytes / PAGE_SIZE,
            allocated_pages: 0,
        })
    }

    /// Allocate one page of guest RAM: grabs a host frame and maps it into
    /// the EPT. (Xen-style pre-populated guest memory; no demand EPT faults
    /// on the hot path.)
    pub fn alloc_guest_page(&mut self, phys: &mut HostPhys) -> Result<Gpa, MachineError> {
        if self.allocated_pages >= self.ram_pages {
            return Err(MachineError::OutOfMemory {
                requested_frames: 1,
                free_frames: 0,
            });
        }
        let gpa_page = self.free_gpa_pages.pop().unwrap_or_else(|| {
            let p = self.next_gpa_page;
            self.next_gpa_page += 1;
            p
        });
        let hpa = phys.alloc_frame()?;
        let gpa = Gpa::from_page(gpa_page);
        self.ept.map(phys, gpa, hpa)?;
        self.allocated_pages += 1;
        Ok(gpa)
    }

    /// Allocate a 2 MiB guest region: 512 contiguous, 2M-aligned GPA pages
    /// backed by 512 contiguous, 2M-aligned host frames, mapped by a single
    /// huge EPT leaf. GPA pages skipped for alignment go on the free list so
    /// later 4K allocations recycle them. Freeing is still per-4K-page via
    /// [`Self::free_guest_page`] — the EPT auto-demotes on the first unmap
    /// inside the region.
    pub fn alloc_guest_huge_region(
        &mut self,
        phys: &mut HostPhys,
    ) -> Result<Gpa, MachineError> {
        if self.allocated_pages + HUGE_PAGE_PAGES > self.ram_pages {
            return Err(MachineError::OutOfMemory {
                requested_frames: HUGE_PAGE_PAGES,
                free_frames: self.ram_pages - self.allocated_pages,
            });
        }
        let base_page = self.next_gpa_page.next_multiple_of(HUGE_PAGE_PAGES);
        for p in self.next_gpa_page..base_page {
            self.free_gpa_pages.push(p);
        }
        self.next_gpa_page = base_page + HUGE_PAGE_PAGES;
        let hpa = phys.alloc_frames_contiguous(HUGE_PAGE_PAGES, HUGE_PAGE_PAGES)?;
        let gpa = Gpa::from_page(base_page);
        self.ept.map_huge(phys, gpa, hpa)?;
        self.allocated_pages += HUGE_PAGE_PAGES;
        Ok(gpa)
    }

    /// Demote the huge EPT mapping covering `gpa` to a 4K subtree and drop
    /// every covering translation from every vCPU's TLB (a real demotion is
    /// an EPT edit and must be fenced by an EPT-wide invalidation). Returns
    /// whether a huge mapping was actually present.
    pub fn demote_region(
        &mut self,
        phys: &mut HostPhys,
        gpa: Gpa,
    ) -> Result<bool, MachineError> {
        if !self.ept.demote(phys, gpa)? {
            return Ok(false);
        }
        let base = gpa.huge_base().page();
        for vcpu in &mut self.vcpus {
            for p in base..base + HUGE_PAGE_PAGES {
                vcpu.tlb.invalidate_gpa_page(p);
            }
        }
        Ok(true)
    }

    /// Release one page of guest RAM.
    pub fn free_guest_page(&mut self, phys: &mut HostPhys, gpa: Gpa) -> Result<(), MachineError> {
        if let Some(hpa) = self.ept.unmap(phys, gpa)? {
            phys.free_frame(hpa)?;
            self.free_gpa_pages.push(gpa.page());
            self.allocated_pages -= 1;
            // Stale translations must not survive the unmap — and neither
            // may the PML shadow's memory of the frame: the GPA goes back on
            // the free list and its next owner starts with a clean dirty
            // history, or a recycled frame would false-panic as "logged
            // twice" under debug-invariants.
            for vcpu in &mut self.vcpus {
                vcpu.tlb.invalidate_gpa_page(gpa.page());
                vcpu.pml.note_hyp_dirty_cleared(gpa.page());
            }
        }
        Ok(())
    }

    /// Guest pages currently allocated.
    pub fn allocated_pages(&self) -> u64 {
        self.allocated_pages
    }

    /// Translate GPA→HPA without side effects (hypervisor-internal).
    pub fn gpa_to_hpa(&mut self, phys: &HostPhys, gpa: Gpa) -> Result<Option<Hpa>, MachineError> {
        self.ept.translate(phys, gpa)
    }

    /// Effective hypervisor-level PML logging: on iff either level wants it.
    /// (The paper's two-flag coordination — neither level may starve the
    /// other.)
    pub fn effective_hyp_logging(&self) -> bool {
        (self.spml.enabled_by_guest && self.spml.guest_logging_on)
            || self.spml.enabled_by_hyp
            || self.wss_active
    }

    /// Recompute each vCPU's PML enable from the coordination flags: writes
    /// the ENABLE_PML execution control and re-syncs hardware state, so the
    /// VMCS stays the single source of truth.
    pub fn sync_logging(&mut self) {
        let on = self.effective_hyp_logging();
        for vcpu in &mut self.vcpus {
            let ctrl = vcpu
                .vmcs
                .vmread(VmxMode::Root, Field::SecondaryExecControls)
                .unwrap_or(0);
            let new = if on {
                ctrl | exec_controls::ENABLE_PML
            } else {
                ctrl & !exec_controls::ENABLE_PML
            };
            vcpu.vmcs
                .vmwrite(VmxMode::Root, Field::SecondaryExecControls, new)
                .expect("root vmwrite cannot fail");
            vcpu.sync_pml_from_vmcs();
        }
    }
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("id", &self.id)
            .field("vcpus", &self.vcpus.len())
            .field("allocated_pages", &self.allocated_pages)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_ram_limit() {
        let mut phys = HostPhys::new(64 * PAGE_SIZE);
        let mut vm = Vm::new(VmId(0), &mut phys, 2 * PAGE_SIZE, 1).unwrap();
        vm.alloc_guest_page(&mut phys).unwrap();
        vm.alloc_guest_page(&mut phys).unwrap();
        assert!(vm.alloc_guest_page(&mut phys).is_err());
        assert_eq!(vm.allocated_pages(), 2);
    }

    #[test]
    fn free_recycles_gpa_and_host_frame() {
        let mut phys = HostPhys::new(64 * PAGE_SIZE);
        let mut vm = Vm::new(VmId(0), &mut phys, 8 * PAGE_SIZE, 1).unwrap();
        let g = vm.alloc_guest_page(&mut phys).unwrap();
        let frames_before = phys.allocated_frames();
        vm.free_guest_page(&mut phys, g).unwrap();
        assert_eq!(phys.allocated_frames(), frames_before - 1);
        let g2 = vm.alloc_guest_page(&mut phys).unwrap();
        assert_eq!(g2, g, "freed GPA page is reused");
    }

    #[test]
    fn gpa_zero_is_never_handed_out() {
        let mut phys = HostPhys::new(64 * PAGE_SIZE);
        let mut vm = Vm::new(VmId(0), &mut phys, 16 * PAGE_SIZE, 1).unwrap();
        for _ in 0..4 {
            assert_ne!(vm.alloc_guest_page(&mut phys).unwrap(), Gpa::NULL);
        }
    }

    #[test]
    fn huge_region_alloc_aligns_and_recycles_gpa_gap() {
        let mut phys = HostPhys::new(2048 * PAGE_SIZE);
        let mut vm = Vm::new(VmId(0), &mut phys, 1024 * PAGE_SIZE, 1).unwrap();
        let small = vm.alloc_guest_page(&mut phys).unwrap();
        let huge = vm.alloc_guest_huge_region(&mut phys).unwrap();
        assert!(huge.is_huge_aligned());
        assert!(vm.ept.is_huge_mapped(&phys, huge).unwrap());
        assert!(vm
            .ept
            .is_huge_mapped(&phys, huge.add((HUGE_PAGE_PAGES - 1) * PAGE_SIZE))
            .unwrap());
        assert_eq!(vm.allocated_pages(), 1 + HUGE_PAGE_PAGES);
        // GPA pages skipped by the 2M alignment bump are recycled for 4K use.
        let next = vm.alloc_guest_page(&mut phys).unwrap();
        assert!(next.page() > small.page() && next.page() < huge.page());
        // Contiguous GPA→HPA inside the region (single huge leaf).
        let h0 = vm.gpa_to_hpa(&phys, huge).unwrap().unwrap();
        let h5 = vm
            .gpa_to_hpa(&phys, huge.add(5 * PAGE_SIZE))
            .unwrap()
            .unwrap();
        assert_eq!(h5.raw() - h0.raw(), 5 * PAGE_SIZE);
    }

    #[test]
    fn demote_region_breaks_huge_and_frees_per_page() {
        let mut phys = HostPhys::new(2048 * PAGE_SIZE);
        let mut vm = Vm::new(VmId(0), &mut phys, 1024 * PAGE_SIZE, 2).unwrap();
        let huge = vm.alloc_guest_huge_region(&mut phys).unwrap();
        let h3 = vm
            .gpa_to_hpa(&phys, huge.add(3 * PAGE_SIZE))
            .unwrap()
            .unwrap();
        assert!(vm.demote_region(&mut phys, huge.add(PAGE_SIZE)).unwrap());
        assert!(!vm.ept.is_huge_mapped(&phys, huge).unwrap());
        assert!(!vm.demote_region(&mut phys, huge).unwrap(), "idempotent");
        // Translations survive demotion bit-for-bit.
        assert_eq!(
            vm.gpa_to_hpa(&phys, huge.add(3 * PAGE_SIZE)).unwrap(),
            Some(h3)
        );
        // Per-4K free works on the demoted subtree.
        vm.free_guest_page(&mut phys, huge.add(3 * PAGE_SIZE)).unwrap();
        assert_eq!(vm.allocated_pages(), HUGE_PAGE_PAGES - 1);
        assert_eq!(vm.gpa_to_hpa(&phys, huge.add(3 * PAGE_SIZE)).unwrap(), None);
    }

    #[test]
    fn logging_coordination_flags() {
        let mut phys = HostPhys::new(64 * PAGE_SIZE);
        let mut vm = Vm::new(VmId(0), &mut phys, 8 * PAGE_SIZE, 1).unwrap();
        assert!(!vm.effective_hyp_logging());
        vm.spml.enabled_by_guest = true;
        assert!(!vm.effective_hyp_logging(), "registered but not scheduled in");
        vm.spml.guest_logging_on = true;
        assert!(vm.effective_hyp_logging());
        vm.spml.guest_logging_on = false;
        vm.spml.enabled_by_hyp = true;
        assert!(vm.effective_hyp_logging(), "migration keeps PML on");
    }
}
