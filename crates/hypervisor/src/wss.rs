//! Working-set-size estimation over PML-R (access logging).
//!
//! The paper's related work (§VII) cites the authors' prior extension of
//! PML to "log read pages in order to efficiently estimate VM working set
//! size". With the PML-R machine extension
//! ([`ooh_machine::MachineConfig::pml_read_logging`]), the logging circuit
//! also appends GPAs on EPT *accessed*-bit transitions; the estimator
//! periodically clears accessed bits and counts distinct logged pages per
//! interval — a WSS sample, without write-protecting or pausing the guest.

use crate::hypervisor::Hypervisor;
use crate::vm::VmId;
use ooh_machine::MachineError;
use serde::Serialize;

/// One sampling interval's result.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct WssSample {
    pub interval: u32,
    /// Distinct guest-physical pages touched during the interval.
    pub accessed_pages: u64,
    /// ...of which written.
    pub dirty_pages: u64,
}

/// A running working-set-size estimation session.
#[derive(Debug)]
pub struct WssEstimator {
    vm: VmId,
    pub samples: Vec<WssSample>,
}

impl WssEstimator {
    /// Begin estimating `vm`'s working set. Requires PML-R hardware. Resets
    /// accessed/dirty state so the first interval starts clean.
    pub fn start(hv: &mut Hypervisor, vm: VmId) -> Result<Self, MachineError> {
        if !hv.machine.config.pml_read_logging {
            return Err(MachineError::EpmlNotSupported);
        }
        {
            let (vmref, phys) = hv.vm_and_phys_mut(vm);
            vmref.ept.clear_all_accessed(phys)?;
            vmref.ept.clear_all_dirty(phys)?;
            vmref.spml.enabled_by_hyp = true;
            vmref.wss_accessed.clear();
            vmref.wss_dirty.clear();
            vmref.wss_active = true;
            for vc in &mut vmref.vcpus {
                vc.tlb.flush_all();
                vc.pml.shadow_reset_hyp();
                vc.pml.log_accesses = true;
            }
            vmref.sync_logging();
            // sync_logging rewrites PML state from the VMCS; re-arm PML-R.
            for vc in &mut vmref.vcpus {
                vc.pml.log_accesses = true;
            }
        }
        Ok(Self {
            vm,
            samples: Vec::new(),
        })
    }

    /// Close the current interval: drain the buffers, report distinct
    /// accessed/dirty pages, and reset A/D state for the next interval.
    pub fn sample(&mut self, hv: &mut Hypervisor) -> Result<WssSample, MachineError> {
        let n_vcpus = hv.vm(self.vm).vcpus.len() as u32;
        for v in 0..n_vcpus {
            hv.drain_hyp_pml(self.vm, v)?;
        }
        let sample = {
            let (vmref, phys) = hv.vm_and_phys_mut(self.vm);
            let s = WssSample {
                interval: 0,
                accessed_pages: vmref.wss_accessed.len() as u64,
                dirty_pages: vmref.wss_dirty.len() as u64,
            };
            vmref.wss_accessed.clear();
            vmref.wss_dirty.clear();
            vmref.ept.clear_all_accessed(phys)?;
            vmref.ept.clear_all_dirty(phys)?;
            for vc in &mut vmref.vcpus {
                vc.tlb.flush_all();
                vc.pml.shadow_reset_hyp();
            }
            s
        };
        let sample = WssSample {
            interval: self.samples.len() as u32,
            ..sample
        };
        self.samples.push(sample);
        Ok(sample)
    }

    /// Stop estimating; PML returns to its previous users.
    pub fn stop(self, hv: &mut Hypervisor) -> Result<Vec<WssSample>, MachineError> {
        let vmref = hv.vm_mut(self.vm);
        vmref.wss_active = false;
        vmref.spml.enabled_by_hyp = false;
        for vc in &mut vmref.vcpus {
            vc.pml.log_accesses = false;
        }
        vmref.sync_logging();
        Ok(self.samples)
    }

    /// The peak sample — the usual WSS summary statistic.
    pub fn peak_accessed(&self) -> u64 {
        self.samples.iter().map(|s| s.accessed_pages).max().unwrap_or(0)
    }
}
