//! Address-space newtypes.
//!
//! Three address spaces exist in a virtualized x86 machine and the OoH paper
//! is careful about which one each mechanism sees:
//!
//! * [`Gva`] — guest virtual address. What userspace processes (and the
//!   paper's Trackers) manipulate. EPML logs these.
//! * [`Gpa`] — guest physical address. What the guest kernel sees as "RAM";
//!   PML logs these at the hypervisor level.
//! * [`Hpa`] — host physical address. Only the hypervisor ever sees these
//!   (the paper's security argument relies on this).
//!
//! Newtypes make it a type error to hand a GPA to something expecting a GVA —
//! exactly the confusion SPML's reverse mapping exists to resolve.

use serde::{Deserialize, Serialize};

/// Bytes per page (4 KiB).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Entries per page-table page (512 × 8 bytes = 4 KiB).
pub const PT_ENTRIES: u64 = 512;
/// Bits of index per page-table level.
pub const PT_INDEX_BITS: u32 = 9;
/// Bytes per 2 MiB huge page (one level-1 leaf entry).
pub const HUGE_PAGE_SIZE: u64 = PAGE_SIZE * PT_ENTRIES;
/// log2 of the huge-page size.
pub const HUGE_PAGE_SHIFT: u32 = PAGE_SHIFT + PT_INDEX_BITS;
/// 4 KiB pages covered by one 2 MiB huge page.
pub const HUGE_PAGE_PAGES: u64 = PT_ENTRIES;

macro_rules! addr_type {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// The zero address.
            pub const NULL: $name = $name(0);

            /// Raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Page number (address >> 12).
            #[inline]
            pub const fn page(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// Offset within the page.
            #[inline]
            pub const fn offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Address of the start of the containing page.
            #[inline]
            pub const fn page_base(self) -> $name {
                $name(self.0 & !(PAGE_SIZE - 1))
            }

            /// Construct from a page number.
            #[inline]
            pub const fn from_page(page: u64) -> $name {
                $name(page << PAGE_SHIFT)
            }

            /// Is this address page-aligned?
            #[inline]
            pub const fn is_page_aligned(self) -> bool {
                self.0 & (PAGE_SIZE - 1) == 0
            }

            /// Huge-page number (address >> 21).
            #[inline]
            pub const fn huge_page(self) -> u64 {
                self.0 >> HUGE_PAGE_SHIFT
            }

            /// Offset within the containing 2 MiB huge page.
            #[inline]
            pub const fn huge_offset(self) -> u64 {
                self.0 & (HUGE_PAGE_SIZE - 1)
            }

            /// Address of the start of the containing 2 MiB huge page.
            #[inline]
            pub const fn huge_base(self) -> $name {
                $name(self.0 & !(HUGE_PAGE_SIZE - 1))
            }

            /// Is this address 2 MiB-aligned?
            #[inline]
            pub const fn is_huge_aligned(self) -> bool {
                self.0 & (HUGE_PAGE_SIZE - 1) == 0
            }

            /// Add a byte offset (the pointer-arithmetic idiom used all
            /// over the codebase; deliberately not `std::ops::Add`, which
            /// would suggest address+address makes sense).
            #[allow(clippy::should_implement_trait)]
            #[inline]
            pub fn add(self, bytes: u64) -> $name {
                $name(self.0 + bytes)
            }

            /// The 9-bit page-table index at `level` (3 = top / PML4-analog,
            /// 0 = leaf level).
            #[inline]
            pub const fn pt_index(self, level: u32) -> usize {
                ((self.0 >> (PAGE_SHIFT + level * PT_INDEX_BITS)) & (PT_ENTRIES - 1)) as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({:#x})", stringify!($name), self.0)
            }
        }
    };
}

addr_type! {
    /// Guest virtual address.
    Gva
}
addr_type! {
    /// Guest physical address.
    Gpa
}
addr_type! {
    /// Host physical address.
    Hpa
}

/// A half-open page-aligned GVA range `[start, start + pages·4K)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GvaRange {
    pub start: Gva,
    pub pages: u64,
}

impl GvaRange {
    pub fn new(start: Gva, pages: u64) -> Self {
        debug_assert!(start.is_page_aligned(), "GvaRange must be page-aligned");
        Self { start, pages }
    }

    /// Build the smallest page-aligned range covering `[start, start+len)`.
    pub fn covering(start: Gva, len: u64) -> Self {
        let first = start.page();
        let last = if len == 0 {
            first
        } else {
            (start.raw() + len - 1) >> PAGE_SHIFT
        };
        Self {
            start: Gva::from_page(first),
            pages: last - first + 1,
        }
    }

    pub fn end(&self) -> Gva {
        self.start.add(self.pages * PAGE_SIZE)
    }

    pub fn len_bytes(&self) -> u64 {
        self.pages * PAGE_SIZE
    }

    pub fn contains(&self, gva: Gva) -> bool {
        gva >= self.start && gva < self.end()
    }

    /// Iterate the page-base addresses of every page in the range.
    pub fn iter_pages(&self) -> impl Iterator<Item = Gva> + '_ {
        let first = self.start.page();
        (first..first + self.pages).map(Gva::from_page)
    }

    /// Does this range overlap another?
    pub fn overlaps(&self, other: &GvaRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let a = Gva(0x1234_5678);
        assert_eq!(a.page(), 0x12345);
        assert_eq!(a.offset(), 0x678);
        assert_eq!(a.page_base(), Gva(0x1234_5000));
        assert_eq!(Gva::from_page(a.page()).raw(), 0x1234_5000);
        assert!(!a.is_page_aligned());
        assert!(a.page_base().is_page_aligned());
    }

    #[test]
    fn huge_page_math() {
        let a = Gva(0x7f83_4567_8123);
        assert_eq!(a.huge_page(), a.raw() >> 21);
        assert_eq!(a.huge_offset(), a.raw() & (HUGE_PAGE_SIZE - 1));
        assert_eq!(a.huge_base().raw(), a.raw() & !(HUGE_PAGE_SIZE - 1));
        assert!(a.huge_base().is_huge_aligned());
        assert!(!a.is_huge_aligned());
        // A huge page covers exactly PT_ENTRIES 4K pages.
        assert_eq!(HUGE_PAGE_SIZE, 2 * 1024 * 1024);
        assert_eq!(HUGE_PAGE_PAGES, 512);
        assert_eq!(a.huge_base().page() + a.page() % HUGE_PAGE_PAGES, a.page());
    }

    #[test]
    fn pt_indices_decompose_the_address() {
        // 0x0000_7f83_4567_8123:
        let a = Gva(0x0000_7f83_4567_8123);
        let reconstructed: u64 = ((a.pt_index(3) as u64) << 39)
            | ((a.pt_index(2) as u64) << 30)
            | ((a.pt_index(1) as u64) << 21)
            | ((a.pt_index(0) as u64) << 12)
            | a.offset();
        assert_eq!(reconstructed, a.raw());
        for lvl in 0..4 {
            assert!(a.pt_index(lvl) < PT_ENTRIES as usize);
        }
    }

    #[test]
    fn range_covering() {
        let r = GvaRange::covering(Gva(0x1001), 0x2000);
        assert_eq!(r.start, Gva(0x1000));
        assert_eq!(r.pages, 3); // 0x1001..0x3001 touches pages 1,2,3
        assert!(r.contains(Gva(0x1000)));
        assert!(r.contains(Gva(0x3fff)));
        assert!(!r.contains(Gva(0x4000)));
    }

    #[test]
    fn range_covering_zero_len() {
        let r = GvaRange::covering(Gva(0x5000), 0);
        assert_eq!(r.pages, 1);
    }

    #[test]
    fn range_iter_and_overlap() {
        let r = GvaRange::new(Gva(0x10000), 4);
        let pages: Vec<u64> = r.iter_pages().map(|g| g.page()).collect();
        assert_eq!(pages, vec![0x10, 0x11, 0x12, 0x13]);

        let s = GvaRange::new(Gva(0x13000), 2);
        assert!(r.overlaps(&s));
        let t = GvaRange::new(Gva(0x14000), 1);
        assert!(!r.overlaps(&t));
    }

    #[test]
    fn distinct_address_spaces_do_not_unify() {
        // This is a compile-time property; the test documents intent.
        fn takes_gpa(_: Gpa) {}
        takes_gpa(Gpa(4096));
        // takes_gpa(Gva(4096)); // <- must not compile
    }
}
