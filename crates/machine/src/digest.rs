//! Deterministic state hashing for the model checker.
//!
//! The interleaving explorer (`ooh-model`) deduplicates search nodes by a
//! digest of the *behaviorally observable* machine state. The hasher is a
//! plain FNV-1a over `u64` words: deterministic across runs and platforms
//! (no `RandomState`), cheap, and order-sensitive — callers that want a
//! multiset digest (e.g. buffer contents whose drain order is unobservable)
//! sort before feeding.

/// 64-bit FNV-1a accumulator.
#[derive(Debug, Clone)]
pub struct StateHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

impl StateHasher {
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Fold one 64-bit word into the digest, byte by byte.
    pub fn write_u64(&mut self, value: u64) {
        let mut s = self.state;
        for b in value.to_le_bytes() {
            s ^= b as u64;
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Fold a boolean as a full word (keeps adjacent bools from aliasing).
    pub fn write_bool(&mut self, value: bool) {
        self.write_u64(if value { 0x1 } else { 0x2 });
    }

    /// Fold a slice of words after sorting a copy — use for contents whose
    /// internal order is not observable (log buffers drained into sets).
    pub fn write_sorted(&mut self, values: &[u64]) {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        self.write_u64(sorted.len() as u64);
        for v in sorted {
            self.write_u64(v);
        }
    }

    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = StateHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StateHasher::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = StateHasher::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn sorted_write_ignores_order() {
        let mut a = StateHasher::new();
        a.write_sorted(&[3, 1, 2]);
        let mut b = StateHasher::new();
        b.write_sorted(&[2, 3, 1]);
        assert_eq!(a.finish(), b.finish());
        // ...but not multiplicity.
        let mut c = StateHasher::new();
        c.write_sorted(&[1, 2, 3, 3]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn bools_do_not_alias() {
        let mut a = StateHasher::new();
        a.write_bool(true);
        a.write_bool(false);
        let mut b = StateHasher::new();
        b.write_bool(false);
        b.write_bool(true);
        assert_ne!(a.finish(), b.finish());
    }
}
