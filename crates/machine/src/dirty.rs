//! Word-packed dirty-page bitmap — the hot data structure of the dirty
//! data path.
//!
//! Every tracking technique ultimately produces "a set of dirty page
//! numbers", and the simulator used to shuttle those through
//! `BTreeSet<u64>` — one tree node walk per page on every insert, merge,
//! difference and retain. Production trackers (Firecracker's diff
//! snapshots, aero's `DirtyTracker`) pack the set into u64 words instead:
//! one bit per page, `trailing_zeros` to iterate, wordwise OR/ANDNOT for
//! merge/difference — O(words) instead of O(pages · log pages).
//!
//! Guest-virtual page numbers are sparse over a 52-bit space, so a flat
//! `Vec<u64>` indexed from zero is not an option. [`DirtyBitmap`] therefore
//! shards the page-number space into fixed-size *chunks* of
//! [`CHUNK_PAGES`] pages (one boxed `[u64; CHUNK_WORDS]` each, 512 B)
//! keyed by chunk index in a `BTreeMap` — dense regions cost one
//! allocation per 16 MiB of address space, isolated pages cost one chunk,
//! and iteration stays ascending (the property every determinism test and
//! wire format in the workspace relies on).
//!
//! Invariant: no stored chunk is all-zero. `merge`/`insert` only ever set
//! bits; `difference`/`retain_within`/`remove` prune emptied chunks — so
//! the derived `PartialEq` is semantic set equality, and `len` can be
//! maintained incrementally by popcount deltas.

use crate::addr::{Gva, GvaRange};
use std::collections::BTreeMap;

/// u64 words per chunk (512 bytes of bitmap).
pub const CHUNK_WORDS: usize = 64;
/// Pages covered by one chunk (4096 pages = 16 MiB of address space).
pub const CHUNK_PAGES: u64 = (CHUNK_WORDS as u64) * 64;

type Chunk = Box<[u64; CHUNK_WORDS]>;

fn new_chunk() -> Chunk {
    Box::new([0u64; CHUNK_WORDS])
}

/// A set of page numbers, stored one bit per page in u64-packed chunks.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct DirtyBitmap {
    chunks: BTreeMap<u64, Chunk>,
    len: usize,
}

impl DirtyBitmap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set the bit for `page`. Returns true if it was newly set.
    #[inline]
    pub fn insert(&mut self, page: u64) -> bool {
        let chunk = self
            .chunks
            .entry(page / CHUNK_PAGES)
            .or_insert_with(new_chunk);
        let bit_in_chunk = page % CHUNK_PAGES;
        let word = &mut chunk[(bit_in_chunk / 64) as usize];
        let mask = 1u64 << (bit_in_chunk % 64);
        let newly = *word & mask == 0;
        *word |= mask;
        self.len += newly as usize;
        newly
    }

    /// Clear the bit for `page`. Returns true if it was set.
    pub fn remove(&mut self, page: u64) -> bool {
        let key = page / CHUNK_PAGES;
        let Some(chunk) = self.chunks.get_mut(&key) else {
            return false;
        };
        let bit_in_chunk = page % CHUNK_PAGES;
        let word = &mut chunk[(bit_in_chunk / 64) as usize];
        let mask = 1u64 << (bit_in_chunk % 64);
        if *word & mask == 0 {
            return false;
        }
        *word &= !mask;
        self.len -= 1;
        if chunk.iter().all(|&w| w == 0) {
            self.chunks.remove(&key);
        }
        true
    }

    #[inline]
    pub fn contains(&self, page: u64) -> bool {
        match self.chunks.get(&(page / CHUNK_PAGES)) {
            Some(chunk) => {
                let bit_in_chunk = page % CHUNK_PAGES;
                chunk[(bit_in_chunk / 64) as usize] & (1u64 << (bit_in_chunk % 64)) != 0
            }
            None => false,
        }
    }

    /// Set every bit in `[first_page, first_page + pages)` — O(words).
    pub fn insert_range(&mut self, first_page: u64, pages: u64) {
        if pages == 0 {
            return;
        }
        let last = first_page + pages; // exclusive
        let mut chunk_idx = first_page / CHUNK_PAGES;
        while chunk_idx * CHUNK_PAGES < last {
            let chunk_base = chunk_idx * CHUNK_PAGES;
            let lo = first_page.max(chunk_base) - chunk_base;
            let hi = last.min(chunk_base + CHUNK_PAGES) - chunk_base;
            let chunk = self.chunks.entry(chunk_idx).or_insert_with(new_chunk);
            for w in (lo / 64)..hi.div_ceil(64) {
                let word_base = w * 64;
                let from = lo.max(word_base) - word_base;
                let to = hi.min(word_base + 64) - word_base;
                let mask = word_mask(from, to);
                let slot = &mut chunk[w as usize];
                self.len += (mask & !*slot).count_ones() as usize;
                *slot |= mask;
            }
            chunk_idx += 1;
        }
    }

    /// Iterate the set pages in ascending order (`trailing_zeros` per word).
    pub fn pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.chunks.iter().flat_map(|(&ci, chunk)| {
            let chunk_base = ci * CHUNK_PAGES;
            chunk
                .iter()
                .enumerate()
                .filter(|(_, &w)| w != 0)
                .flat_map(move |(wi, &w)| BitIter {
                    word: w,
                    base: chunk_base + (wi as u64) * 64,
                })
        })
    }

    /// Union with `other` — O(words of `other`).
    pub fn merge(&mut self, other: &DirtyBitmap) {
        for (&ci, src) in &other.chunks {
            let dst = self.chunks.entry(ci).or_insert_with(new_chunk);
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                self.len += (s & !*d).count_ones() as usize;
                *d |= s;
            }
        }
    }

    /// Pages in `self` but not in `other` — O(words of `self`).
    pub fn difference(&self, other: &DirtyBitmap) -> DirtyBitmap {
        let mut out = DirtyBitmap::new();
        for (&ci, chunk) in &self.chunks {
            let masked: Chunk = match other.chunks.get(&ci) {
                Some(o) => {
                    let mut m = new_chunk();
                    for (d, (&a, &b)) in m.iter_mut().zip(chunk.iter().zip(o.iter())) {
                        *d = a & !b;
                    }
                    m
                }
                None => chunk.clone(),
            };
            let ones: usize = masked.iter().map(|w| w.count_ones() as usize).sum();
            if ones > 0 {
                out.len += ones;
                out.chunks.insert(ci, masked);
            }
        }
        out
    }

    /// Keep only pages inside `ranges` — O(words overlapping the ranges),
    /// not O(pages × ranges). Ranges may overlap; the result is the union
    /// of the per-range intersections.
    pub fn retain_within(&mut self, ranges: &[GvaRange]) {
        let mut kept = DirtyBitmap::new();
        for range in ranges {
            let first = range.start.page();
            let last = first + range.pages; // exclusive
            if range.pages == 0 {
                continue;
            }
            // Walk only the stored chunks that overlap this range.
            for (&ci, chunk) in self.chunks.range(first / CHUNK_PAGES..=(last - 1) / CHUNK_PAGES) {
                let chunk_base = ci * CHUNK_PAGES;
                let lo = first.max(chunk_base) - chunk_base;
                let hi = last.min(chunk_base + CHUNK_PAGES) - chunk_base;
                let mut masked = [0u64; CHUNK_WORDS];
                let mut ones = 0usize;
                for w in (lo / 64)..hi.div_ceil(64) {
                    let word_base = w * 64;
                    let from = lo.max(word_base) - word_base;
                    let to = hi.min(word_base + 64) - word_base;
                    let v = chunk[w as usize] & word_mask(from, to);
                    masked[w as usize] = v;
                    ones += v.count_ones() as usize;
                }
                if ones == 0 {
                    continue;
                }
                match kept.chunks.get_mut(&ci) {
                    Some(dst) => {
                        for (d, &s) in dst.iter_mut().zip(masked.iter()) {
                            kept.len += (s & !*d).count_ones() as usize;
                            *d |= s;
                        }
                    }
                    None => {
                        kept.len += ones;
                        kept.chunks.insert(ci, Box::new(masked));
                    }
                }
            }
        }
        *self = kept;
    }

    /// Bulk-insert a stream of page numbers with chunk-local write
    /// combining: bits for the currently-streamed chunk accumulate in a
    /// stack buffer and hit the `BTreeMap` once per chunk *switch*, not
    /// once per page. PML rings log writes in program order, so real drain
    /// streams run through a chunk for thousands of entries before leaving
    /// it — the map lookup amortizes to near zero. Fully random streams
    /// degrade gracefully: the flush only walks the word span the buffer
    /// actually touched, so a one-page visit costs one word, not 64.
    pub fn extend_pages<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        let mut cur_key = u64::MAX; // sentinel: no chunk buffered
        let mut buf = [0u64; CHUNK_WORDS];
        let mut lo = CHUNK_WORDS; // touched word span [lo, hi]; lo > hi = empty
        let mut hi = 0usize;
        for page in iter {
            let key = page / CHUNK_PAGES;
            if key != cur_key {
                if lo <= hi {
                    self.flush_words(cur_key, &mut buf, lo, hi);
                }
                cur_key = key;
                lo = CHUNK_WORDS;
                hi = 0;
            }
            let bit_in_chunk = page % CHUNK_PAGES;
            let w = (bit_in_chunk / 64) as usize;
            buf[w] |= 1u64 << (bit_in_chunk % 64);
            lo = lo.min(w);
            hi = hi.max(w);
        }
        if lo <= hi {
            self.flush_words(cur_key, &mut buf, lo, hi);
        }
    }

    /// OR words `[lo, hi]` of `buf` into chunk `key`, zeroing them in `buf`
    /// on the way out (so the caller's buffer is clean for reuse).
    fn flush_words(&mut self, key: u64, buf: &mut [u64; CHUNK_WORDS], lo: usize, hi: usize) {
        let chunk = self.chunks.entry(key).or_insert_with(new_chunk);
        let mut added = 0usize;
        for w in lo..=hi {
            let b = buf[w];
            buf[w] = 0;
            let slot = &mut chunk[w];
            added += (b & !*slot).count_ones() as usize;
            *slot |= b;
        }
        self.len += added;
    }

    /// Clear every bit in `[first_page, first_page + pages)` — O(words
    /// overlapping the range). Returns how many pages were cleared. A range
    /// that starts or ends mid-word must leave the other bits of the shared
    /// boundary word untouched (the 512-page huge-entry expansions lean on
    /// this), and emptied chunks are pruned so `PartialEq` stays semantic.
    pub fn clear_range(&mut self, first_page: u64, pages: u64) -> usize {
        if pages == 0 {
            return 0;
        }
        let last = first_page + pages; // exclusive
        let mut removed = 0usize;
        let mut emptied = Vec::new();
        for (&ci, chunk) in self
            .chunks
            .range_mut(first_page / CHUNK_PAGES..=(last - 1) / CHUNK_PAGES)
        {
            let chunk_base = ci * CHUNK_PAGES;
            let lo = first_page.max(chunk_base) - chunk_base;
            let hi = last.min(chunk_base + CHUNK_PAGES) - chunk_base;
            for w in (lo / 64)..hi.div_ceil(64) {
                let word_base = w * 64;
                let from = lo.max(word_base) - word_base;
                let to = hi.min(word_base + 64) - word_base;
                let mask = word_mask(from, to);
                let slot = &mut chunk[w as usize];
                removed += (*slot & mask).count_ones() as usize;
                *slot &= !mask;
            }
            if chunk.iter().all(|&w| w == 0) {
                emptied.push(ci);
            }
        }
        for ci in emptied {
            self.chunks.remove(&ci);
        }
        self.len -= removed;
        removed
    }

    /// Remove and return the pages in `[first_page, first_page + pages)` —
    /// the range-scoped counterpart of [`take`](Self::take), O(words
    /// overlapping the range). Same boundary contract as
    /// [`clear_range`](Self::clear_range).
    pub fn take_range(&mut self, first_page: u64, pages: u64) -> DirtyBitmap {
        let mut out = DirtyBitmap::new();
        if pages == 0 {
            return out;
        }
        let last = first_page + pages; // exclusive
        let mut emptied = Vec::new();
        for (&ci, chunk) in self
            .chunks
            .range_mut(first_page / CHUNK_PAGES..=(last - 1) / CHUNK_PAGES)
        {
            let chunk_base = ci * CHUNK_PAGES;
            let lo = first_page.max(chunk_base) - chunk_base;
            let hi = last.min(chunk_base + CHUNK_PAGES) - chunk_base;
            let mut taken = new_chunk();
            let mut ones = 0usize;
            for w in (lo / 64)..hi.div_ceil(64) {
                let word_base = w * 64;
                let from = lo.max(word_base) - word_base;
                let to = hi.min(word_base + 64) - word_base;
                let mask = word_mask(from, to);
                let slot = &mut chunk[w as usize];
                let v = *slot & mask;
                if v != 0 {
                    taken[w as usize] = v;
                    ones += v.count_ones() as usize;
                    *slot &= !mask;
                }
            }
            if ones > 0 {
                out.len += ones;
                out.chunks.insert(ci, taken);
            }
            if chunk.iter().all(|&w| w == 0) {
                emptied.push(ci);
            }
        }
        for ci in emptied {
            self.chunks.remove(&ci);
        }
        self.len -= out.len;
        out
    }

    /// Take the whole set, leaving `self` empty — O(1).
    pub fn take(&mut self) -> DirtyBitmap {
        std::mem::take(self)
    }

    /// True when the two sets share at least one page — O(words of the
    /// smaller chunk overlap), no allocation.
    pub fn intersects(&self, other: &DirtyBitmap) -> bool {
        let (small, big) = if self.chunks.len() <= other.chunks.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.chunks.iter().any(|(ci, a)| {
            big.chunks
                .get(ci)
                .is_some_and(|b| a.iter().zip(b.iter()).any(|(&x, &y)| x & y != 0))
        })
    }

    /// The stored chunks in ascending chunk-index order, as
    /// `(chunk_index, words)` pairs (`words` is [`CHUNK_WORDS`] long; the
    /// chunk covers pages `[index * CHUNK_PAGES, (index + 1) * CHUNK_PAGES)`).
    /// This is the raw word-packed view wire formats serialize.
    pub fn chunk_iter(&self) -> impl Iterator<Item = (u64, &[u64])> + '_ {
        self.chunks.iter().map(|(&ci, c)| (ci, &c[..]))
    }

    /// OR one raw word into the bitmap at `(chunk_index, word_index)` — the
    /// decode-side counterpart of [`chunk_iter`](Self::chunk_iter). Length
    /// bookkeeping is by popcount delta; an all-zero word is a no-op (the
    /// no-empty-chunk invariant is preserved).
    pub fn insert_word(&mut self, chunk_index: u64, word_index: usize, word: u64) {
        assert!(word_index < CHUNK_WORDS, "word index {word_index} out of chunk");
        if word == 0 {
            return;
        }
        let chunk = self.chunks.entry(chunk_index).or_insert_with(new_chunk);
        let slot = &mut chunk[word_index];
        self.len += (word & !*slot).count_ones() as usize;
        *slot |= word;
    }

    /// Drop every bit — O(chunks).
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }
}

/// Mask with bits `[from, to)` set (`to` ≤ 64).
#[inline]
fn word_mask(from: u64, to: u64) -> u64 {
    debug_assert!(from <= to && to <= 64);
    if to == 64 {
        u64::MAX << from
    } else {
        (u64::MAX << from) & !(u64::MAX << to)
    }
}

/// Iterator over the set bits of one word via `trailing_zeros`.
struct BitIter {
    word: u64,
    base: u64,
}

impl Iterator for BitIter {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as u64;
        self.word &= self.word - 1; // clear lowest set bit
        Some(self.base + bit)
    }
}

impl std::fmt::Debug for DirtyBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Full page lists would swamp assertion output on big sets.
        const DEBUG_MAX: usize = 64;
        let mut s = f.debug_struct("DirtyBitmap");
        s.field("len", &self.len);
        if self.len <= DEBUG_MAX {
            s.field("pages", &self.pages().collect::<Vec<_>>());
        } else {
            let head: Vec<u64> = self.pages().take(DEBUG_MAX).collect();
            s.field("first_pages", &head);
        }
        s.finish()
    }
}

impl FromIterator<u64> for DirtyBitmap {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut b = DirtyBitmap::new();
        b.extend_pages(iter);
        b
    }
}

impl Extend<u64> for DirtyBitmap {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.extend_pages(iter);
    }
}

impl FromIterator<Gva> for DirtyBitmap {
    fn from_iter<I: IntoIterator<Item = Gva>>(iter: I) -> Self {
        iter.into_iter().map(|g| g.page()).collect()
    }
}

impl<'a> IntoIterator for &'a DirtyBitmap {
    type Item = u64;
    type IntoIter = Box<dyn Iterator<Item = u64> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.pages())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn bulk_extend_matches_per_insert() {
        // Duplicates, chunk hops, and out-of-order arrivals: the buffered
        // bulk path must agree with one-at-a-time insert exactly.
        let stream: Vec<u64> = [
            5,
            5,
            CHUNK_PAGES + 1,
            3,
            CHUNK_PAGES - 1,
            CHUNK_PAGES,
            7 * CHUNK_PAGES + 63,
            3,
            64,
            65,
            63,
            7 * CHUNK_PAGES + 63,
            1 << 40,
        ]
        .into_iter()
        .collect();
        let mut by_insert = DirtyBitmap::new();
        for &p in &stream {
            by_insert.insert(p);
        }
        let by_bulk: DirtyBitmap = stream.iter().copied().collect();
        assert_eq!(by_bulk, by_insert);
        assert_eq!(by_bulk.len(), by_insert.len());
        // A second extend over an overlapping stream only adds the new page.
        let mut b = by_bulk.clone();
        b.extend([5u64, 6, CHUNK_PAGES + 1]);
        assert_eq!(b.len(), by_insert.len() + 1);
        assert!(b.contains(6));
    }

    #[test]
    fn insert_contains_remove_len() {
        let mut b = DirtyBitmap::new();
        assert!(b.insert(5));
        assert!(!b.insert(5));
        assert!(b.insert(CHUNK_PAGES * 3 + 7)); // far chunk
        assert_eq!(b.len(), 2);
        assert!(b.contains(5));
        assert!(!b.contains(6));
        assert!(b.remove(5));
        assert!(!b.remove(5));
        assert_eq!(b.len(), 1);
        assert!(b.chunks.len() == 1, "emptied chunk must be pruned");
    }

    #[test]
    fn pages_iterate_ascending_across_chunks() {
        let pages = [CHUNK_PAGES + 1, 0, 63, 64, CHUNK_PAGES - 1, 9 * CHUNK_PAGES];
        let b: DirtyBitmap = pages.iter().copied().collect();
        let mut sorted = pages.to_vec();
        sorted.sort_unstable();
        assert_eq!(b.pages().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn insert_range_spans_words_and_chunks() {
        let mut b = DirtyBitmap::new();
        b.insert_range(CHUNK_PAGES - 70, 140); // straddles a chunk boundary
        assert_eq!(b.len(), 140);
        let want: Vec<u64> = (CHUNK_PAGES - 70..CHUNK_PAGES + 70).collect();
        assert_eq!(b.pages().collect::<Vec<_>>(), want);
        b.insert_range(CHUNK_PAGES - 70, 140); // idempotent
        assert_eq!(b.len(), 140);
        b.insert_range(10, 0); // empty range is a no-op
        assert_eq!(b.len(), 140);
    }

    #[test]
    fn merge_difference_model() {
        let a: DirtyBitmap = [1u64, 63, 64, CHUNK_PAGES, CHUNK_PAGES + 1].into_iter().collect();
        let b: DirtyBitmap = [63u64, CHUNK_PAGES, 5000 * CHUNK_PAGES].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        let ra: BTreeSet<u64> = a.pages().collect();
        let rb: BTreeSet<u64> = b.pages().collect();
        let union: Vec<u64> = ra.union(&rb).copied().collect();
        assert_eq!(m.pages().collect::<Vec<_>>(), union);
        assert_eq!(m.len(), union.len());

        let d = a.difference(&b);
        let diff: Vec<u64> = ra.difference(&rb).copied().collect();
        assert_eq!(d.pages().collect::<Vec<_>>(), diff);
        assert_eq!(d.len(), diff.len());
        // Difference must prune empty chunks so Eq stays semantic.
        let nothing = a.difference(&a);
        assert!(nothing.is_empty());
        assert_eq!(nothing, DirtyBitmap::new());
    }

    #[test]
    fn retain_within_clips_word_bounds() {
        let mut b: DirtyBitmap = (0..300u64).collect();
        b.insert(CHUNK_PAGES + 5);
        let keep = [
            GvaRange::new(Gva::from_page(10), 3),   // 10..13
            GvaRange::new(Gva::from_page(62), 4),   // 62..66 (word boundary)
            GvaRange::new(Gva::from_page(CHUNK_PAGES), 16),
        ];
        b.retain_within(&keep);
        let want = vec![10, 11, 12, 62, 63, 64, 65, CHUNK_PAGES + 5];
        assert_eq!(b.pages().collect::<Vec<_>>(), want);
        assert_eq!(b.len(), want.len());
    }

    #[test]
    fn retain_within_overlapping_ranges_do_not_double_count() {
        let mut b: DirtyBitmap = (0..20u64).collect();
        let keep = [
            GvaRange::new(Gva::from_page(0), 10),
            GvaRange::new(Gva::from_page(5), 10), // overlaps 5..10
        ];
        b.retain_within(&keep);
        assert_eq!(b.len(), 15);
        assert_eq!(b.pages().collect::<Vec<_>>(), (0..15u64).collect::<Vec<_>>());
    }

    #[test]
    fn clear_range_mid_word_boundaries() {
        // A range ending mid-word must not clear the rest of the shared word,
        // and one starting mid-word must not clear the bits below it.
        let mut b: DirtyBitmap = (0..128u64).collect();
        assert_eq!(b.clear_range(3, 60), 60); // clears 3..63, keeps 0..3 and 63
        let mut want: Vec<u64> = (0..3u64).collect();
        want.extend(63..128);
        assert_eq!(b.pages().collect::<Vec<_>>(), want);
        assert_eq!(b.len(), want.len());
        // Empty range and a range over no set bits are no-ops.
        assert_eq!(b.clear_range(70, 0), 0);
        assert_eq!(b.clear_range(3, 10), 0);
        // Clearing the whole chunk prunes it.
        let mut c: DirtyBitmap = [5u64].into_iter().collect();
        assert_eq!(c.clear_range(0, CHUNK_PAGES), 1);
        assert_eq!(c, DirtyBitmap::new());
    }

    #[test]
    fn take_range_splits_shared_words() {
        // 512-page huge expansion starting mid-word: taken bits move, the
        // shared-word neighbours stay.
        let start = 100u64; // mid-word (100 % 64 == 36)
        let mut b: DirtyBitmap = (start - 4..start + 512 + 4).collect();
        let taken = b.take_range(start, 512);
        assert_eq!(taken.len(), 512);
        assert_eq!(
            taken.pages().collect::<Vec<_>>(),
            (start..start + 512).collect::<Vec<_>>()
        );
        let mut want: Vec<u64> = (start - 4..start).collect();
        want.extend(start + 512..start + 516);
        assert_eq!(b.pages().collect::<Vec<_>>(), want);
        assert_eq!(b.len(), want.len());
        // Taking an empty span yields an empty bitmap and changes nothing.
        assert!(b.take_range(start, 512).is_empty());
        assert_eq!(b.len(), want.len());
    }

    #[test]
    fn take_and_clear() {
        let mut b: DirtyBitmap = (0..10u64).collect();
        let t = b.take();
        assert_eq!(t.len(), 10);
        assert!(b.is_empty());
        let mut c: DirtyBitmap = (0..10u64).collect();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c, DirtyBitmap::new());
    }

    #[test]
    fn word_mask_edges() {
        assert_eq!(word_mask(0, 64), u64::MAX);
        assert_eq!(word_mask(0, 1), 1);
        assert_eq!(word_mask(63, 64), 1 << 63);
        assert_eq!(word_mask(4, 4), 0);
    }

    #[test]
    fn intersects_matches_reference() {
        let a: DirtyBitmap = [1u64, 64, CHUNK_PAGES + 3].into_iter().collect();
        let b: DirtyBitmap = [2u64, CHUNK_PAGES + 3].into_iter().collect();
        let c: DirtyBitmap = [0u64, 63, CHUNK_PAGES + 4].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&a));
        assert!(!a.intersects(&DirtyBitmap::new()));
        assert!(!DirtyBitmap::new().intersects(&a));
    }

    #[test]
    fn chunk_iter_insert_word_roundtrip() {
        let pages = [0u64, 1, 63, 64, 65, CHUNK_PAGES - 1, CHUNK_PAGES, 9 * CHUNK_PAGES + 17];
        let src: DirtyBitmap = pages.into_iter().collect();
        let mut dst = DirtyBitmap::new();
        for (ci, words) in src.chunk_iter() {
            for (wi, &w) in words.iter().enumerate() {
                dst.insert_word(ci, wi, w);
            }
        }
        assert_eq!(dst, src);
        assert_eq!(dst.len(), src.len());
        // Duplicated words are idempotent, zero words change nothing.
        for (ci, words) in src.chunk_iter() {
            for (wi, &w) in words.iter().enumerate() {
                dst.insert_word(ci, wi, w);
            }
        }
        dst.insert_word(1234, 0, 0);
        assert_eq!(dst, src);
    }

    proptest::proptest! {
        /// The bitmap behaves exactly like a BTreeSet<u64> model under
        /// random insert/remove/merge/difference/retain/range sequences.
        #[test]
        fn matches_btreeset_model(
            a in proptest::collection::vec(0u64..(3 * CHUNK_PAGES), 0..80),
            b in proptest::collection::vec(0u64..(3 * CHUNK_PAGES), 0..80),
            rm in proptest::collection::vec(0u64..(3 * CHUNK_PAGES), 0..20),
            range_lo in 0u64..(2 * CHUNK_PAGES),
            range_pages in 1u64..200,
        ) {
            let mut bm: DirtyBitmap = a.iter().copied().collect();
            let mut rf: BTreeSet<u64> = a.iter().copied().collect();
            let ob: DirtyBitmap = b.iter().copied().collect();
            let rb: BTreeSet<u64> = b.iter().copied().collect();

            for &p in &rm {
                proptest::prop_assert_eq!(bm.remove(p), rf.remove(&p));
            }
            proptest::prop_assert_eq!(bm.len(), rf.len());

            bm.merge(&ob);
            rf.extend(rb.iter().copied());
            proptest::prop_assert_eq!(bm.pages().collect::<Vec<_>>(),
                                      rf.iter().copied().collect::<Vec<_>>());

            let d = bm.difference(&ob);
            let rd: Vec<u64> = rf.difference(&rb).copied().collect();
            proptest::prop_assert_eq!(d.pages().collect::<Vec<_>>(), rd);

            bm.retain_within(&[GvaRange::new(Gva::from_page(range_lo), range_pages)]);
            rf.retain(|&p| p >= range_lo && p < range_lo + range_pages);
            proptest::prop_assert_eq!(bm.pages().collect::<Vec<_>>(),
                                      rf.iter().copied().collect::<Vec<_>>());
            proptest::prop_assert_eq!(bm.len(), rf.len());
        }

        /// Range ops at deliberately word-misaligned boundaries behave like
        /// the BTreeSet model: ranges start/end mid-word (offsets drawn from
        /// 0..64, sizes not multiples of 64, including 512-page huge spans)
        /// and must neither clear nor leak bits in the shared words.
        #[test]
        fn range_ops_match_model_at_word_boundaries(
            seed in proptest::collection::vec(0u64..(3 * CHUNK_PAGES), 0..200),
            word_off in 0u64..64,
            base_word in 0u64..((3 * CHUNK_PAGES) / 64),
            pages in 1u64..131,
            take_side in 0u8..2,
        ) {
            // Map the top draw onto a full 512-page huge span so both
            // mid-word slivers and region-sized ranges are exercised.
            let pages = if pages == 130 { 512 } else { pages };
            let take_side = take_side == 1;
            let lo = base_word * 64 + word_off;
            let mut bm: DirtyBitmap = seed.iter().copied().collect();
            let mut rf: BTreeSet<u64> = seed.iter().copied().collect();

            if take_side {
                let taken = bm.take_range(lo, pages);
                let rtaken: Vec<u64> =
                    rf.iter().copied().filter(|&p| p >= lo && p < lo + pages).collect();
                proptest::prop_assert_eq!(taken.pages().collect::<Vec<_>>(), rtaken.clone());
                proptest::prop_assert_eq!(taken.len(), rtaken.len());
                rf.retain(|&p| p < lo || p >= lo + pages);
            } else {
                let n = bm.clear_range(lo, pages);
                let before = rf.len();
                rf.retain(|&p| p < lo || p >= lo + pages);
                proptest::prop_assert_eq!(n, before - rf.len());
            }
            proptest::prop_assert_eq!(bm.pages().collect::<Vec<_>>(),
                                      rf.iter().copied().collect::<Vec<_>>());
            proptest::prop_assert_eq!(bm.len(), rf.len());
            // The no-empty-chunk invariant (semantic Eq) must hold after
            // range clears: rebuild from pages and compare structurally.
            let rebuilt: DirtyBitmap = bm.pages().collect();
            proptest::prop_assert_eq!(bm, rebuilt);
        }
    }
}
