//! Extended Page Tables: the hypervisor-managed GPA→HPA mapping.
//!
//! A real 4-level radix tree stored in host physical frames. The hypervisor
//! owns one `Ept` per VM; the nested walker reads it on every TLB miss, and
//! PML triggers on leaf dirty-bit transitions inside it.

use crate::addr::{Gpa, Hpa, PAGE_SIZE, PT_ENTRIES};
use crate::error::MachineError;
use crate::phys::HostPhys;
use crate::pte::EptEntry;

/// What the radix walk found for a GPA: a level-0 slot (which may hold a
/// non-present entry), or a present 2 MiB leaf at level 1 covering it.
enum LeafRef {
    Slot4k(Hpa),
    Huge { slot: Hpa, entry: EptEntry },
}

/// One VM's extended page table.
#[derive(Debug)]
pub struct Ept {
    root: Hpa,
    /// Number of table pages (incl. root) — accounting for tests/reports.
    table_pages: u64,
    /// Number of leaf mappings installed.
    mapped_pages: u64,
}

impl Ept {
    /// Allocate an empty EPT (one zeroed root page).
    pub fn new(phys: &mut HostPhys) -> Result<Self, MachineError> {
        let root = phys.alloc_frame()?;
        Ok(Self {
            root,
            table_pages: 1,
            mapped_pages: 0,
        })
    }

    /// The EPTP-analog: root table pointer.
    pub fn root(&self) -> Hpa {
        self.root
    }

    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    pub fn table_pages(&self) -> u64 {
        self.table_pages
    }

    /// Host-physical address of the leaf entry slot for `gpa`, creating
    /// intermediate tables if `alloc`.
    fn leaf_slot(
        &mut self,
        phys: &mut HostPhys,
        gpa: Gpa,
        alloc: bool,
    ) -> Result<Option<Hpa>, MachineError> {
        let mut table = self.root;
        for level in (1..4).rev() {
            let slot = table.add(gpa.pt_index(level) as u64 * 8);
            let mut entry = EptEntry(phys.read_u64(slot)?);
            if level == 1 && entry.is_present() && entry.is_huge() {
                if !alloc {
                    // No 4K slot exists under a huge leaf.
                    return Ok(None);
                }
                // A 4K mapping is being installed inside a huge region:
                // demote it so the walk reaches a real level-0 table.
                self.demote_slot(phys, slot, entry)?;
                entry = EptEntry(phys.read_u64(slot)?);
            }
            table = if entry.is_present() {
                entry.frame()
            } else if alloc {
                let next = phys.alloc_frame()?;
                self.table_pages += 1;
                phys.write_u64(slot, EptEntry::table(next).0)?;
                next
            } else {
                return Ok(None);
            };
        }
        Ok(Some(table.add(gpa.pt_index(0) as u64 * 8)))
    }

    /// Read-only walk distinguishing a 4K slot from a covering huge leaf.
    fn find_leaf(&self, phys: &HostPhys, gpa: Gpa) -> Result<Option<LeafRef>, MachineError> {
        let mut table = self.root;
        for level in (1..4).rev() {
            let slot = table.add(gpa.pt_index(level) as u64 * 8);
            let entry = EptEntry(phys.read_u64(slot)?);
            if !entry.is_present() {
                return Ok(None);
            }
            if level == 1 && entry.is_huge() {
                return Ok(Some(LeafRef::Huge { slot, entry }));
            }
            table = entry.frame();
        }
        Ok(Some(LeafRef::Slot4k(table.add(gpa.pt_index(0) as u64 * 8))))
    }

    /// Replace a present level-1 huge leaf with a level-0 table of 512
    /// inherited 4K leaves (same permissions, same A/D bits, frames
    /// `base + i·4K`). Pure page-table surgery: the caller owns the TLB
    /// shootdown and any revmap-generation bump.
    fn demote_slot(
        &mut self,
        phys: &mut HostPhys,
        slot: Hpa,
        entry: EptEntry,
    ) -> Result<(), MachineError> {
        debug_assert!(entry.is_huge());
        let table = phys.alloc_frame()?;
        self.table_pages += 1;
        let proto = entry.without(EptEntry::HUGE);
        let base = entry.frame();
        for i in 0..PT_ENTRIES {
            let e = proto.retarget(base.add(i * PAGE_SIZE));
            phys.write_u64(table.add(i * 8), e.0)?;
        }
        phys.write_u64(slot, EptEntry::table(table).0)
    }

    /// Demote the huge mapping covering `gpa` (if any) to a 4K subtree.
    /// Returns whether a demotion happened. `mapped_pages` is unchanged —
    /// the same 512 pages stay mapped, just through one more table level.
    pub fn demote(&mut self, phys: &mut HostPhys, gpa: Gpa) -> Result<bool, MachineError> {
        match self.find_leaf(phys, gpa)? {
            Some(LeafRef::Huge { slot, entry }) => {
                self.demote_slot(phys, slot, entry)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Install a 2 MiB mapping `gpa → hpa` (both 2 MiB-aligned) as a single
    /// level-1 leaf with RWX rights. The region must not already be mapped.
    pub fn map_huge(&mut self, phys: &mut HostPhys, gpa: Gpa, hpa: Hpa) -> Result<(), MachineError> {
        debug_assert!(gpa.is_huge_aligned() && hpa.is_huge_aligned());
        let mut table = self.root;
        for level in (2..4).rev() {
            let slot = table.add(gpa.pt_index(level) as u64 * 8);
            let entry = EptEntry(phys.read_u64(slot)?);
            table = if entry.is_present() {
                entry.frame()
            } else {
                let next = phys.alloc_frame()?;
                self.table_pages += 1;
                phys.write_u64(slot, EptEntry::table(next).0)?;
                next
            };
        }
        let slot = table.add(gpa.pt_index(1) as u64 * 8);
        let old = EptEntry(phys.read_u64(slot)?);
        debug_assert!(!old.is_present(), "map_huge over an existing mapping");
        if !old.is_present() {
            self.mapped_pages += PT_ENTRIES;
        }
        phys.write_u64(slot, EptEntry::huge_leaf_rwx(hpa).0)
    }

    /// Is `gpa` covered by a still-huge level-1 leaf?
    pub fn is_huge_mapped(&self, phys: &HostPhys, gpa: Gpa) -> Result<bool, MachineError> {
        Ok(matches!(
            self.find_leaf(phys, gpa)?,
            Some(LeafRef::Huge { .. })
        ))
    }

    /// Install (or replace) the leaf mapping `gpa → hpa` with RWX rights.
    pub fn map(&mut self, phys: &mut HostPhys, gpa: Gpa, hpa: Hpa) -> Result<(), MachineError> {
        let slot = self
            .leaf_slot(phys, gpa.page_base(), true)?
            .expect("alloc=true always yields a slot");
        let old = EptEntry(phys.read_u64(slot)?);
        if !old.is_present() {
            self.mapped_pages += 1;
        }
        phys.write_u64(slot, EptEntry::leaf_rwx(hpa.page_base()).0)
    }

    /// Remove the 4K leaf mapping for `gpa`, returning the HPA it pointed
    /// to. A huge leaf covering `gpa` is auto-demoted first so partially
    /// unmapping a 2 MiB region keeps the other 511 pages mapped — the
    /// alternative (descending a huge leaf as if it were a table) would
    /// treat data frames as page tables.
    pub fn unmap(&mut self, phys: &mut HostPhys, gpa: Gpa) -> Result<Option<Hpa>, MachineError> {
        if let Some(LeafRef::Huge { slot, entry }) = self.find_leaf(phys, gpa)? {
            self.demote_slot(phys, slot, entry)?;
        }
        match self.leaf_slot(phys, gpa.page_base(), false)? {
            Some(slot) => {
                let e = EptEntry(phys.read_u64(slot)?);
                if e.is_present() {
                    phys.write_u64(slot, EptEntry::empty().0)?;
                    self.mapped_pages -= 1;
                    Ok(Some(e.frame()))
                } else {
                    Ok(None)
                }
            }
            None => Ok(None),
        }
    }

    /// Read the leaf entry for `gpa`, if mapped. Returns the entry *slot*
    /// (so callers can update A/D bits architecturally) and its value. A
    /// GPA covered by a 2 MiB leaf returns the *level-1* slot and the huge
    /// entry itself (`is_huge()` distinguishes): A/D updates there are
    /// per-region, which is exactly the granularity question split-on-dirty
    /// exists to answer.
    pub fn lookup(
        &mut self,
        phys: &HostPhys,
        gpa: Gpa,
    ) -> Result<Option<(Hpa, EptEntry)>, MachineError> {
        match self.find_leaf(phys, gpa)? {
            Some(LeafRef::Huge { slot, entry }) => Ok(Some((slot, entry))),
            Some(LeafRef::Slot4k(slot)) => {
                let entry = EptEntry(phys.read_u64(slot)?);
                Ok(entry.is_present().then_some((slot, entry)))
            }
            None => Ok(None),
        }
    }

    /// Pure translation (no A/D side effects).
    pub fn translate(&mut self, phys: &HostPhys, gpa: Gpa) -> Result<Option<Hpa>, MachineError> {
        Ok(self.lookup(phys, gpa)?.map(|(_, e)| {
            if e.is_huge() {
                Hpa(e.frame().raw() | gpa.huge_offset())
            } else {
                Hpa(e.frame().raw() | gpa.offset())
            }
        }))
    }

    /// Clear the dirty bit of `gpa`'s leaf entry (done by the PML drain path
    /// so the next write re-logs). Returns whether the bit was set.
    pub fn clear_dirty(&mut self, phys: &mut HostPhys, gpa: Gpa) -> Result<bool, MachineError> {
        if let Some((slot, e)) = self.lookup(phys, gpa)? {
            if e.is_dirty() {
                phys.write_u64(slot, e.without(EptEntry::DIRTY).0)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Clear dirty bits on *all* leaf entries (hypervisor live-migration
    /// round start). Returns how many were cleared.
    pub fn clear_all_dirty(&mut self, phys: &mut HostPhys) -> Result<u64, MachineError> {
        let mut cleared = 0;
        let mapped = self.collect_mapped(phys)?;
        for (gpa, _) in mapped {
            if self.clear_dirty(phys, gpa)? {
                cleared += 1;
            }
        }
        Ok(cleared)
    }

    /// Enumerate every mapped `(gpa, entry)` pair by walking the radix tree.
    pub fn collect_mapped(
        &self,
        phys: &HostPhys,
    ) -> Result<Vec<(Gpa, EptEntry)>, MachineError> {
        let mut out = Vec::new();
        self.walk_table(phys, self.root, 3, 0, &mut out)?;
        Ok(out)
    }

    fn walk_table(
        &self,
        phys: &HostPhys,
        table: Hpa,
        level: u32,
        prefix: u64,
        out: &mut Vec<(Gpa, EptEntry)>,
    ) -> Result<(), MachineError> {
        for idx in 0..PT_ENTRIES {
            let entry = EptEntry(phys.read_u64(table.add(idx * 8))?);
            if !entry.is_present() {
                continue;
            }
            let page = (prefix << 9) | idx;
            if level == 0 {
                out.push((Gpa::from_page(page), entry));
            } else if level == 1 && entry.is_huge() {
                // Expand a huge leaf into its 512 constituent 4K pages.
                // Each synthesized entry keeps the region's flags (incl.
                // HUGE, so consumers can tell region-granularity A/D from
                // page-granularity) and points at the per-page frame.
                for sub in 0..PT_ENTRIES {
                    out.push((
                        Gpa::from_page((page << 9) | sub),
                        entry.retarget(entry.frame().add(sub * PAGE_SIZE)),
                    ));
                }
            } else {
                self.walk_table(phys, entry.frame(), level - 1, page, out)?;
            }
        }
        Ok(())
    }

    /// Clear accessed bits on all leaf entries (working-set sampling round
    /// start). Returns how many were cleared.
    pub fn clear_all_accessed(&mut self, phys: &mut HostPhys) -> Result<u64, MachineError> {
        let mut cleared = 0;
        for (gpa, e) in self.collect_mapped(phys)? {
            if e.is_accessed() {
                if let Some((slot, cur)) = self.lookup(phys, gpa)? {
                    // Under a huge leaf the 512 expanded pages share one
                    // slot: only the first clear counts (and writes).
                    if cur.is_accessed() {
                        phys.write_u64(slot, cur.without(EptEntry::ACCESSED).0)?;
                        cleared += 1;
                    }
                }
            }
        }
        Ok(cleared)
    }

    /// Enumerate mapped GPAs whose dirty bit is set (migration's dirty scan).
    pub fn collect_dirty(&self, phys: &HostPhys) -> Result<Vec<Gpa>, MachineError> {
        Ok(self
            .collect_mapped(phys)?
            .into_iter()
            .filter(|(_, e)| e.is_dirty())
            .map(|(g, _)| g)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    fn mk() -> (HostPhys, Ept) {
        let mut phys = HostPhys::new(1024 * PAGE_SIZE);
        let ept = Ept::new(&mut phys).unwrap();
        (phys, ept)
    }

    #[test]
    fn map_translate_roundtrip() {
        let (mut phys, mut ept) = mk();
        let frame = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), frame).unwrap();
        let hpa = ept.translate(&phys, Gpa(0x5123)).unwrap().unwrap();
        assert_eq!(hpa, frame.add(0x123));
        assert_eq!(ept.mapped_pages(), 1);
    }

    #[test]
    fn unmapped_translates_to_none() {
        let (phys, mut ept) = mk();
        assert_eq!(ept.translate(&phys, Gpa(0x9000)).unwrap(), None);
    }

    #[test]
    fn unmap_removes() {
        let (mut phys, mut ept) = mk();
        let frame = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), frame).unwrap();
        assert_eq!(ept.unmap(&mut phys, Gpa(0x5000)).unwrap(), Some(frame));
        assert_eq!(ept.translate(&phys, Gpa(0x5000)).unwrap(), None);
        assert_eq!(ept.mapped_pages(), 0);
        assert_eq!(ept.unmap(&mut phys, Gpa(0x5000)).unwrap(), None);
    }

    #[test]
    fn remap_does_not_double_count() {
        let (mut phys, mut ept) = mk();
        let a = phys.alloc_frame().unwrap();
        let b = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), a).unwrap();
        ept.map(&mut phys, Gpa(0x5000), b).unwrap();
        assert_eq!(ept.mapped_pages(), 1);
        assert_eq!(
            ept.translate(&phys, Gpa(0x5000)).unwrap(),
            Some(b)
        );
    }

    #[test]
    fn dirty_bit_lifecycle() {
        let (mut phys, mut ept) = mk();
        let frame = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x7000), frame).unwrap();
        // Simulate the walker setting D.
        let (slot, e) = ept.lookup(&phys, Gpa(0x7000)).unwrap().unwrap();
        phys.write_u64(slot, e.with(EptEntry::DIRTY).0).unwrap();
        assert_eq!(ept.collect_dirty(&phys).unwrap(), vec![Gpa(0x7000)]);
        assert!(ept.clear_dirty(&mut phys, Gpa(0x7000)).unwrap());
        assert!(ept.collect_dirty(&phys).unwrap().is_empty());
        assert!(!ept.clear_dirty(&mut phys, Gpa(0x7000)).unwrap());
    }

    #[test]
    fn collect_mapped_enumerates_sparse_space() {
        let (mut phys, mut ept) = mk();
        // Map pages scattered across different top-level indices.
        let gpas = [Gpa(0x1000), Gpa(0x40000000), Gpa(0x7f_ffff_f000)];
        for &g in &gpas {
            let f = phys.alloc_frame().unwrap();
            ept.map(&mut phys, g, f).unwrap();
        }
        let mut got: Vec<Gpa> = ept
            .collect_mapped(&phys)
            .unwrap()
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        got.sort();
        let mut want = gpas.to_vec();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn huge_map_translate_and_expand() {
        let mut phys = HostPhys::new(2048 * PAGE_SIZE);
        let mut ept = Ept::new(&mut phys).unwrap();
        let hpa = phys.alloc_frames_contiguous(512, 512).unwrap();
        let gpa = Gpa(512 * 4 * PAGE_SIZE); // 2M-aligned (page 2048)
        ept.map_huge(&mut phys, gpa, hpa).unwrap();
        assert_eq!(ept.mapped_pages(), 512);
        assert!(ept.is_huge_mapped(&phys, gpa.add(0x1234)).unwrap());
        // Translation uses the 21-bit huge offset.
        let probe = gpa.add(37 * PAGE_SIZE + 0x123);
        assert_eq!(
            ept.translate(&phys, probe).unwrap().unwrap(),
            hpa.add(37 * PAGE_SIZE + 0x123)
        );
        // lookup for any covered 4K GPA returns the level-1 huge entry.
        let (_, e) = ept.lookup(&phys, probe).unwrap().unwrap();
        assert!(e.is_huge());
        assert_eq!(e.frame(), hpa);
        // collect_mapped expands to 512 per-page entries with HUGE kept.
        let mapped = ept.collect_mapped(&phys).unwrap();
        assert_eq!(mapped.len(), 512);
        assert_eq!(mapped[0].0, gpa);
        assert_eq!(mapped[511].1.frame(), hpa.add(511 * PAGE_SIZE));
        assert!(mapped[37].1.is_huge());
    }

    #[test]
    fn huge_demote_preserves_ad_and_translations() {
        let mut phys = HostPhys::new(2048 * PAGE_SIZE);
        let mut ept = Ept::new(&mut phys).unwrap();
        let hpa = phys.alloc_frames_contiguous(512, 512).unwrap();
        let gpa = Gpa::from_page(2048);
        ept.map_huge(&mut phys, gpa, hpa).unwrap();
        // Simulate the walker setting A+D on the huge leaf.
        let (slot, e) = ept.lookup(&phys, gpa).unwrap().unwrap();
        phys.write_u64(slot, e.with(EptEntry::ACCESSED | EptEntry::DIRTY).0)
            .unwrap();
        let tables_before = ept.table_pages();
        assert!(ept.demote(&mut phys, gpa.add(5 * PAGE_SIZE)).unwrap());
        assert_eq!(ept.table_pages(), tables_before + 1);
        assert_eq!(ept.mapped_pages(), 512);
        // Every 4K leaf inherited perms and A/D; translation unchanged.
        for i in [0u64, 5, 511] {
            let probe = gpa.add(i * PAGE_SIZE);
            let (_, le) = ept.lookup(&phys, probe).unwrap().unwrap();
            assert!(!le.is_huge());
            assert!(le.is_dirty() && le.is_accessed() && le.is_writable());
            assert_eq!(le.frame(), hpa.add(i * PAGE_SIZE));
            assert_eq!(ept.translate(&phys, probe).unwrap(), Some(hpa.add(i * PAGE_SIZE)));
        }
        // A second demote is a no-op.
        assert!(!ept.demote(&mut phys, gpa).unwrap());
    }

    #[test]
    fn unmap_inside_huge_region_auto_demotes() {
        let mut phys = HostPhys::new(2048 * PAGE_SIZE);
        let mut ept = Ept::new(&mut phys).unwrap();
        let hpa = phys.alloc_frames_contiguous(512, 512).unwrap();
        let gpa = Gpa::from_page(2048);
        ept.map_huge(&mut phys, gpa, hpa).unwrap();
        let victim = gpa.add(9 * PAGE_SIZE);
        assert_eq!(
            ept.unmap(&mut phys, victim).unwrap(),
            Some(hpa.add(9 * PAGE_SIZE))
        );
        assert_eq!(ept.mapped_pages(), 511);
        assert_eq!(ept.translate(&phys, victim).unwrap(), None);
        // Neighbours survive the partial teardown.
        assert_eq!(
            ept.translate(&phys, gpa.add(8 * PAGE_SIZE)).unwrap(),
            Some(hpa.add(8 * PAGE_SIZE))
        );
        assert!(!ept.is_huge_mapped(&phys, gpa).unwrap());
    }

    #[test]
    fn map_4k_over_huge_region_demotes_first() {
        let mut phys = HostPhys::new(2048 * PAGE_SIZE);
        let mut ept = Ept::new(&mut phys).unwrap();
        let hpa = phys.alloc_frames_contiguous(512, 512).unwrap();
        let gpa = Gpa::from_page(2048);
        ept.map_huge(&mut phys, gpa, hpa).unwrap();
        let other = phys.alloc_frame().unwrap();
        ept.map(&mut phys, gpa.add(3 * PAGE_SIZE), other).unwrap();
        assert_eq!(ept.mapped_pages(), 512); // replace, not grow
        assert_eq!(
            ept.translate(&phys, gpa.add(3 * PAGE_SIZE)).unwrap(),
            Some(other)
        );
        assert_eq!(
            ept.translate(&phys, gpa.add(4 * PAGE_SIZE)).unwrap(),
            Some(hpa.add(4 * PAGE_SIZE))
        );
    }

    #[test]
    fn huge_dirty_clears_once() {
        let mut phys = HostPhys::new(2048 * PAGE_SIZE);
        let mut ept = Ept::new(&mut phys).unwrap();
        let hpa = phys.alloc_frames_contiguous(512, 512).unwrap();
        let gpa = Gpa::from_page(2048);
        ept.map_huge(&mut phys, gpa, hpa).unwrap();
        let (slot, e) = ept.lookup(&phys, gpa).unwrap().unwrap();
        phys.write_u64(slot, e.with(EptEntry::DIRTY | EptEntry::ACCESSED).0)
            .unwrap();
        // The region-wide D bit shows on every expanded page...
        assert_eq!(ept.collect_dirty(&phys).unwrap().len(), 512);
        // ...but clearing via any covered GPA clears the one real bit.
        assert!(ept.clear_dirty(&mut phys, gpa.add(17 * PAGE_SIZE)).unwrap());
        assert!(ept.collect_dirty(&phys).unwrap().is_empty());
        // clear_all_accessed counts the region once, not 512 times.
        let (slot, e) = ept.lookup(&phys, gpa).unwrap().unwrap();
        phys.write_u64(slot, e.with(EptEntry::ACCESSED).0).unwrap();
        assert_eq!(ept.clear_all_accessed(&mut phys).unwrap(), 1);
    }

    #[test]
    fn clear_all_dirty_counts() {
        let (mut phys, mut ept) = mk();
        for i in 0..4u64 {
            let f = phys.alloc_frame().unwrap();
            ept.map(&mut phys, Gpa::from_page(0x100 + i), f).unwrap();
        }
        for i in 0..2u64 {
            let (slot, e) = ept
                .lookup(&phys, Gpa::from_page(0x100 + i))
                .unwrap()
                .unwrap();
            phys.write_u64(slot, e.with(EptEntry::DIRTY).0).unwrap();
        }
        assert_eq!(ept.clear_all_dirty(&mut phys).unwrap(), 2);
        assert_eq!(ept.clear_all_dirty(&mut phys).unwrap(), 0);
    }
}
