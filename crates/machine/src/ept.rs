//! Extended Page Tables: the hypervisor-managed GPA→HPA mapping.
//!
//! A real 4-level radix tree stored in host physical frames. The hypervisor
//! owns one `Ept` per VM; the nested walker reads it on every TLB miss, and
//! PML triggers on leaf dirty-bit transitions inside it.

use crate::addr::{Gpa, Hpa, PT_ENTRIES};
use crate::error::MachineError;
use crate::phys::HostPhys;
use crate::pte::EptEntry;

/// One VM's extended page table.
#[derive(Debug)]
pub struct Ept {
    root: Hpa,
    /// Number of table pages (incl. root) — accounting for tests/reports.
    table_pages: u64,
    /// Number of leaf mappings installed.
    mapped_pages: u64,
}

impl Ept {
    /// Allocate an empty EPT (one zeroed root page).
    pub fn new(phys: &mut HostPhys) -> Result<Self, MachineError> {
        let root = phys.alloc_frame()?;
        Ok(Self {
            root,
            table_pages: 1,
            mapped_pages: 0,
        })
    }

    /// The EPTP-analog: root table pointer.
    pub fn root(&self) -> Hpa {
        self.root
    }

    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    pub fn table_pages(&self) -> u64 {
        self.table_pages
    }

    /// Host-physical address of the leaf entry slot for `gpa`, creating
    /// intermediate tables if `alloc`.
    fn leaf_slot(
        &mut self,
        phys: &mut HostPhys,
        gpa: Gpa,
        alloc: bool,
    ) -> Result<Option<Hpa>, MachineError> {
        let mut table = self.root;
        for level in (1..4).rev() {
            let slot = table.add(gpa.pt_index(level) as u64 * 8);
            let entry = EptEntry(phys.read_u64(slot)?);
            table = if entry.is_present() {
                entry.frame()
            } else if alloc {
                let next = phys.alloc_frame()?;
                self.table_pages += 1;
                phys.write_u64(slot, EptEntry::table(next).0)?;
                next
            } else {
                return Ok(None);
            };
        }
        Ok(Some(table.add(gpa.pt_index(0) as u64 * 8)))
    }

    /// Install (or replace) the leaf mapping `gpa → hpa` with RWX rights.
    pub fn map(&mut self, phys: &mut HostPhys, gpa: Gpa, hpa: Hpa) -> Result<(), MachineError> {
        let slot = self
            .leaf_slot(phys, gpa.page_base(), true)?
            .expect("alloc=true always yields a slot");
        let old = EptEntry(phys.read_u64(slot)?);
        if !old.is_present() {
            self.mapped_pages += 1;
        }
        phys.write_u64(slot, EptEntry::leaf_rwx(hpa.page_base()).0)
    }

    /// Remove the leaf mapping for `gpa`, returning the HPA it pointed to.
    pub fn unmap(&mut self, phys: &mut HostPhys, gpa: Gpa) -> Result<Option<Hpa>, MachineError> {
        match self.leaf_slot(phys, gpa.page_base(), false)? {
            Some(slot) => {
                let e = EptEntry(phys.read_u64(slot)?);
                if e.is_present() {
                    phys.write_u64(slot, EptEntry::empty().0)?;
                    self.mapped_pages -= 1;
                    Ok(Some(e.frame()))
                } else {
                    Ok(None)
                }
            }
            None => Ok(None),
        }
    }

    /// Read the leaf entry for `gpa`, if mapped. Returns the entry *slot*
    /// (so callers can update A/D bits architecturally) and its value.
    pub fn lookup(
        &mut self,
        phys: &HostPhys,
        gpa: Gpa,
    ) -> Result<Option<(Hpa, EptEntry)>, MachineError> {
        let mut table = self.root;
        for level in (1..4).rev() {
            let slot = table.add(gpa.pt_index(level) as u64 * 8);
            let entry = EptEntry(phys.read_u64(slot)?);
            if !entry.is_present() {
                return Ok(None);
            }
            table = entry.frame();
        }
        let slot = table.add(gpa.pt_index(0) as u64 * 8);
        let entry = EptEntry(phys.read_u64(slot)?);
        Ok(entry.is_present().then_some((slot, entry)))
    }

    /// Pure translation (no A/D side effects).
    pub fn translate(&mut self, phys: &HostPhys, gpa: Gpa) -> Result<Option<Hpa>, MachineError> {
        Ok(self
            .lookup(phys, gpa)?
            .map(|(_, e)| Hpa(e.frame().raw() | gpa.offset())))
    }

    /// Clear the dirty bit of `gpa`'s leaf entry (done by the PML drain path
    /// so the next write re-logs). Returns whether the bit was set.
    pub fn clear_dirty(&mut self, phys: &mut HostPhys, gpa: Gpa) -> Result<bool, MachineError> {
        if let Some((slot, e)) = self.lookup(phys, gpa)? {
            if e.is_dirty() {
                phys.write_u64(slot, e.without(EptEntry::DIRTY).0)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Clear dirty bits on *all* leaf entries (hypervisor live-migration
    /// round start). Returns how many were cleared.
    pub fn clear_all_dirty(&mut self, phys: &mut HostPhys) -> Result<u64, MachineError> {
        let mut cleared = 0;
        let mapped = self.collect_mapped(phys)?;
        for (gpa, _) in mapped {
            if self.clear_dirty(phys, gpa)? {
                cleared += 1;
            }
        }
        Ok(cleared)
    }

    /// Enumerate every mapped `(gpa, entry)` pair by walking the radix tree.
    pub fn collect_mapped(
        &self,
        phys: &HostPhys,
    ) -> Result<Vec<(Gpa, EptEntry)>, MachineError> {
        let mut out = Vec::new();
        self.walk_table(phys, self.root, 3, 0, &mut out)?;
        Ok(out)
    }

    fn walk_table(
        &self,
        phys: &HostPhys,
        table: Hpa,
        level: u32,
        prefix: u64,
        out: &mut Vec<(Gpa, EptEntry)>,
    ) -> Result<(), MachineError> {
        for idx in 0..PT_ENTRIES {
            let entry = EptEntry(phys.read_u64(table.add(idx * 8))?);
            if !entry.is_present() {
                continue;
            }
            let page = (prefix << 9) | idx;
            if level == 0 {
                out.push((Gpa::from_page(page), entry));
            } else {
                self.walk_table(phys, entry.frame(), level - 1, page, out)?;
            }
        }
        Ok(())
    }

    /// Clear accessed bits on all leaf entries (working-set sampling round
    /// start). Returns how many were cleared.
    pub fn clear_all_accessed(&mut self, phys: &mut HostPhys) -> Result<u64, MachineError> {
        let mut cleared = 0;
        for (gpa, e) in self.collect_mapped(phys)? {
            if e.is_accessed() {
                if let Some((slot, cur)) = self.lookup(phys, gpa)? {
                    phys.write_u64(slot, cur.without(EptEntry::ACCESSED).0)?;
                    cleared += 1;
                }
            }
        }
        Ok(cleared)
    }

    /// Enumerate mapped GPAs whose dirty bit is set (migration's dirty scan).
    pub fn collect_dirty(&self, phys: &HostPhys) -> Result<Vec<Gpa>, MachineError> {
        Ok(self
            .collect_mapped(phys)?
            .into_iter()
            .filter(|(_, e)| e.is_dirty())
            .map(|(g, _)| g)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    fn mk() -> (HostPhys, Ept) {
        let mut phys = HostPhys::new(1024 * PAGE_SIZE);
        let ept = Ept::new(&mut phys).unwrap();
        (phys, ept)
    }

    #[test]
    fn map_translate_roundtrip() {
        let (mut phys, mut ept) = mk();
        let frame = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), frame).unwrap();
        let hpa = ept.translate(&phys, Gpa(0x5123)).unwrap().unwrap();
        assert_eq!(hpa, frame.add(0x123));
        assert_eq!(ept.mapped_pages(), 1);
    }

    #[test]
    fn unmapped_translates_to_none() {
        let (phys, mut ept) = mk();
        assert_eq!(ept.translate(&phys, Gpa(0x9000)).unwrap(), None);
    }

    #[test]
    fn unmap_removes() {
        let (mut phys, mut ept) = mk();
        let frame = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), frame).unwrap();
        assert_eq!(ept.unmap(&mut phys, Gpa(0x5000)).unwrap(), Some(frame));
        assert_eq!(ept.translate(&phys, Gpa(0x5000)).unwrap(), None);
        assert_eq!(ept.mapped_pages(), 0);
        assert_eq!(ept.unmap(&mut phys, Gpa(0x5000)).unwrap(), None);
    }

    #[test]
    fn remap_does_not_double_count() {
        let (mut phys, mut ept) = mk();
        let a = phys.alloc_frame().unwrap();
        let b = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), a).unwrap();
        ept.map(&mut phys, Gpa(0x5000), b).unwrap();
        assert_eq!(ept.mapped_pages(), 1);
        assert_eq!(
            ept.translate(&phys, Gpa(0x5000)).unwrap(),
            Some(b)
        );
    }

    #[test]
    fn dirty_bit_lifecycle() {
        let (mut phys, mut ept) = mk();
        let frame = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x7000), frame).unwrap();
        // Simulate the walker setting D.
        let (slot, e) = ept.lookup(&phys, Gpa(0x7000)).unwrap().unwrap();
        phys.write_u64(slot, e.with(EptEntry::DIRTY).0).unwrap();
        assert_eq!(ept.collect_dirty(&phys).unwrap(), vec![Gpa(0x7000)]);
        assert!(ept.clear_dirty(&mut phys, Gpa(0x7000)).unwrap());
        assert!(ept.collect_dirty(&phys).unwrap().is_empty());
        assert!(!ept.clear_dirty(&mut phys, Gpa(0x7000)).unwrap());
    }

    #[test]
    fn collect_mapped_enumerates_sparse_space() {
        let (mut phys, mut ept) = mk();
        // Map pages scattered across different top-level indices.
        let gpas = [Gpa(0x1000), Gpa(0x40000000), Gpa(0x7f_ffff_f000)];
        for &g in &gpas {
            let f = phys.alloc_frame().unwrap();
            ept.map(&mut phys, g, f).unwrap();
        }
        let mut got: Vec<Gpa> = ept
            .collect_mapped(&phys)
            .unwrap()
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        got.sort();
        let mut want = gpas.to_vec();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn clear_all_dirty_counts() {
        let (mut phys, mut ept) = mk();
        for i in 0..4u64 {
            let f = phys.alloc_frame().unwrap();
            ept.map(&mut phys, Gpa::from_page(0x100 + i), f).unwrap();
        }
        for i in 0..2u64 {
            let (slot, e) = ept
                .lookup(&phys, Gpa::from_page(0x100 + i))
                .unwrap()
                .unwrap();
            phys.write_u64(slot, e.with(EptEntry::DIRTY).0).unwrap();
        }
        assert_eq!(ept.clear_all_dirty(&mut phys).unwrap(), 2);
        assert_eq!(ept.clear_all_dirty(&mut phys).unwrap(), 0);
    }
}
