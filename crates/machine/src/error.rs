//! Machine-level error and fault types.

use crate::addr::{Gpa, Gva, Hpa};

/// Hard errors: misuse of the machine model (bugs, resource exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Physical memory exhausted.
    OutOfMemory {
        requested_frames: u64,
        free_frames: u64,
    },
    /// Access to an unallocated or out-of-range frame.
    BadFrame { hpa: Hpa },
    /// A byte access crossed a page boundary (the MMU splits these; raw
    /// physical accessors do not).
    CrossPageAccess { hpa: Hpa, len: usize },
    /// vmread/vmwrite of a field that does not exist.
    BadVmcsField { encoding: u32 },
    /// vmread/vmwrite executed in a mode that is not allowed to touch the
    /// field (and shadowing did not authorize it) — real hardware would
    /// vmexit; the model surfaces it for the hypervisor to handle.
    VmcsAccessDenied { encoding: u32, non_root: bool },
    /// Operation requires the EPML hardware extension but the machine was
    /// configured without it (`MachineConfig::epml = false`).
    EpmlNotSupported,
    /// No shadow VMCS is linked but a shadowed access was attempted.
    NoShadowVmcs,
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::OutOfMemory {
                requested_frames,
                free_frames,
            } => write!(
                f,
                "out of physical memory: requested {requested_frames} frame(s), {free_frames} free"
            ),
            MachineError::BadFrame { hpa } => write!(f, "access to unallocated frame at {hpa}"),
            MachineError::CrossPageAccess { hpa, len } => {
                write!(f, "{len}-byte access at {hpa} crosses a page boundary")
            }
            MachineError::BadVmcsField { encoding } => {
                write!(f, "unknown VMCS field encoding {encoding:#x}")
            }
            MachineError::VmcsAccessDenied { encoding, non_root } => write!(
                f,
                "VMCS field {encoding:#x} not accessible from {} mode",
                if *non_root { "vmx non-root" } else { "vmx root" }
            ),
            MachineError::EpmlNotSupported => {
                write!(f, "EPML extension not present on this machine")
            }
            MachineError::NoShadowVmcs => write!(f, "no shadow VMCS linked"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Architectural faults raised by the MMU during a guest access. These are
/// *events*, not errors: the guest kernel (or the hypervisor, for EPT
/// violations) handles them and the access is retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Guest page-table entry not present at `level` (3..=0) — a guest #PF.
    /// The guest kernel's fault handler decides: demand-zero, lazy mmap, or
    /// segfault.
    NotPresent { gva: Gva, level: u32 },
    /// Write to a non-writable guest mapping — a guest #PF with W=1.
    /// This is the mechanism under /proc soft-dirty re-protection and
    /// userfaultfd write-protect mode.
    WriteProtected { gva: Gva },
    /// GPA not mapped (or insufficient rights) in the EPT — handled by the
    /// hypervisor, invisible to the guest.
    EptViolation { gpa: Gpa, write: bool },
    /// Write to a sub-page whose SPP write bit is clear. Delivered to the
    /// guard's owner (the secure allocator) as an overflow detection.
    SppViolation { gva: Gva, gpa: Gpa, subpage: u32 },
    /// First logged write to a still-clean 2 MiB mapping while the
    /// split-on-dirty policy is armed. Raised *before* any A/D bit is set or
    /// PML entry written, so after the kernel demotes the mapping to a 4K
    /// subtree the retried access logs at page granularity — nothing is
    /// lost, nothing is logged twice. `gpa` is the 2 MiB-aligned base of the
    /// covering guest-physical region.
    HugeDirtyWrite { gva: Gva, gpa: Gpa },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::NotPresent { gva, level } => {
                write!(f, "#PF not-present at {gva} (level {level})")
            }
            Fault::WriteProtected { gva } => write!(f, "#PF write-protect at {gva}"),
            Fault::EptViolation { gpa, write } => {
                write!(f, "EPT violation at {gpa} (write={write})")
            }
            Fault::SppViolation { gva, subpage, .. } => {
                write!(f, "SPP write violation at {gva} (sub-page {subpage})")
            }
            Fault::HugeDirtyWrite { gva, gpa } => {
                write!(f, "split-on-dirty demotion fault at {gva} (huge region {gpa})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MachineError::OutOfMemory {
            requested_frames: 3,
            free_frames: 1,
        };
        assert!(e.to_string().contains("3 frame"));
        let f = Fault::WriteProtected { gva: Gva(0x1000) };
        assert!(f.to_string().contains("write-protect"));
    }
}
