//! # ooh-machine — a software model of the VT-x MMU path
//!
//! The OoH paper needs hardware we do not have: Intel PML, VMCS shadowing,
//! posted interrupts, and the paper's proposed **EPML** ISA extension (which
//! exists only in the authors' modified BOCHS). This crate is our BOCHS: an
//! architectural model of exactly the slice of an x86/VT-x machine the
//! paper's mechanisms exercise —
//!
//! * physical memory as real 4 KiB frames ([`phys::HostPhys`]);
//! * 4-level guest page tables living **in guest memory** and a 4-level EPT
//!   ([`ept::Ept`]) living in host memory, both with architectural
//!   accessed/dirty semantics;
//! * a nested page walker ([`walker::Mmu`]) that performs the guest-PT+EPT
//!   walk, updates A/D bits, and implements the PML logging circuit
//!   (GPA→hypervisor buffer) plus the paper's EPML extension
//!   (GVA→guest buffer, virtual self-IPI on full);
//! * a per-vCPU TLB ([`tlb::Tlb`]) whose caching is what makes PML cheap and
//!   whose flushes are what make /proc and ufd expensive;
//! * VMCS state with shadowing ([`vmcs::Vmcs`]) and the extended `vmwrite`
//!   that translates the guest PML buffer address GPA→HPA ([`vcpu::Vcpu`]).
//!
//! Timing is charged to a shared [`ooh_sim::SimCtx`] with unit costs
//! calibrated to the paper's Table V; see `ooh-sim` for the calibration.

#![forbid(unsafe_code)]

pub mod addr;
pub mod digest;
pub mod dirty;
pub mod ept;
pub mod error;
pub mod machine;
pub mod phys;
pub mod pml;
pub mod pte;
pub mod ring;
pub mod spp;
pub mod tlb;
pub mod vcpu;
pub mod vmcs;
pub mod walker;

pub use addr::{
    Gpa, Gva, GvaRange, Hpa, HUGE_PAGE_PAGES, HUGE_PAGE_SHIFT, HUGE_PAGE_SIZE, PAGE_SHIFT,
    PAGE_SIZE, PT_ENTRIES,
};
pub use digest::StateHasher;
pub use dirty::DirtyBitmap;
pub use ept::Ept;
pub use error::{Fault, MachineError};
pub use machine::{Machine, MachineConfig};
pub use phys::HostPhys;
pub use pml::{LogOutcome, PmlBuffer, PmlEvent, PmlState, PML_ENTRIES};
pub use pte::{EptEntry, Pte};
pub use ring::{RingView, RING_ENTRIES_PER_PAGE};
pub use spp::{mask_protecting, SppTable, SUBPAGES_PER_PAGE, SUBPAGE_SIZE};
pub use tlb::{Tlb, TlbEntry};
pub use vcpu::{Vcpu, EPML_SELF_IPI_VECTOR};
pub use vmcs::{exec_controls, Field, Vmcs, VmxMode};
pub use walker::{AccessOk, Mmu};
