//! The physical machine: installed RAM plus the hardware feature set.

use crate::phys::HostPhys;

/// Hardware configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Installed RAM in bytes.
    pub ram_bytes: u64,
    /// Standard PML present (all our machines have it; the paper's i7-8565U
    /// does).
    pub pml: bool,
    /// VMCS shadowing present.
    pub vmcs_shadowing: bool,
    /// Posted interrupts present.
    pub posted_interrupts: bool,
    /// The paper's proposed EPML extension present (true for the
    /// BOCHS-analog emulated machine, false for the stock machine).
    pub epml: bool,
    /// Intel SPP (sub-page write permission) present — the paper's §III-D
    /// second OoH candidate, used by `ooh-secheap`.
    pub spp: bool,
    /// Optional TLB capacity per vCPU (None = unbounded, the default model;
    /// see `tlb` module docs). Bounding changes walk counts — useful for
    /// studying baseline sensitivity — but never logging semantics.
    pub tlb_capacity: Option<usize>,
    /// PML-R: the accessed-bit logging extension (working-set estimation).
    pub pml_read_logging: bool,
}

impl MachineConfig {
    /// The paper's real testbed: PML + shadowing + posted interrupts, no
    /// EPML (SPML experiments run here).
    pub fn stock(ram_bytes: u64) -> Self {
        Self {
            ram_bytes,
            pml: true,
            vmcs_shadowing: true,
            posted_interrupts: true,
            epml: false,
            spp: true,
            tlb_capacity: None,
            pml_read_logging: true,
        }
    }

    /// The paper's extended (BOCHS-emulated) machine with EPML.
    pub fn epml(ram_bytes: u64) -> Self {
        Self {
            epml: true,
            ..Self::stock(ram_bytes)
        }
    }
}

/// The machine: RAM plus config. vCPUs are owned by the hypervisor's VMs.
pub struct Machine {
    pub phys: HostPhys,
    pub config: MachineConfig,
}

impl Machine {
    pub fn new(config: MachineConfig) -> Self {
        Self {
            phys: HostPhys::new(config.ram_bytes),
            config,
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.config)
            .field("phys", &self.phys)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    #[test]
    fn stock_has_no_epml() {
        let c = MachineConfig::stock(1 << 30);
        assert!(c.pml && c.vmcs_shadowing && c.posted_interrupts && !c.epml);
        let e = MachineConfig::epml(1 << 30);
        assert!(e.epml);
    }

    #[test]
    fn machine_allocates_configured_ram() {
        let m = Machine::new(MachineConfig::stock(64 * PAGE_SIZE));
        assert_eq!(m.phys.total_frames(), 64);
    }
}
