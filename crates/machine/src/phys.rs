//! Host physical memory: the machine's RAM.
//!
//! Frames are allocated lazily (a `Vec<Option<Box<Frame>>>` indexed by frame
//! number) so a "16 GiB" machine costs only what the workloads actually
//! touch. All page-table structures — EPT pages, guest page-table pages, PML
//! buffers, ring buffers — live in these frames and are read/written through
//! this interface, which is what makes the simulation architectural rather
//! than a bookkeeping shortcut.

use crate::addr::{Hpa, PAGE_SIZE};
use crate::error::MachineError;

/// One 4 KiB physical frame.
pub type Frame = [u8; PAGE_SIZE as usize];

/// The machine's physical memory with a bump-plus-free-list frame allocator.
pub struct HostPhys {
    frames: Vec<Option<Box<Frame>>>,
    free_list: Vec<u64>,
    next_never_allocated: u64,
    allocated: u64,
}

impl HostPhys {
    /// A machine with `bytes` of installed RAM (rounded down to whole pages).
    pub fn new(bytes: u64) -> Self {
        let nframes = (bytes / PAGE_SIZE) as usize;
        let mut frames = Vec::new();
        frames.resize_with(nframes, || None);
        Self {
            frames,
            free_list: Vec::new(),
            next_never_allocated: 0,
            allocated: 0,
        }
    }

    /// Total installed frames.
    pub fn total_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.allocated
    }

    /// Allocate one zeroed frame, returning its base HPA.
    pub fn alloc_frame(&mut self) -> Result<Hpa, MachineError> {
        let fno = if let Some(f) = self.free_list.pop() {
            f
        } else {
            let f = self.next_never_allocated;
            if f >= self.total_frames() {
                return Err(MachineError::OutOfMemory {
                    requested_frames: 1,
                    free_frames: 0,
                });
            }
            self.next_never_allocated += 1;
            f
        };
        self.frames[fno as usize] = Some(Box::new([0u8; PAGE_SIZE as usize]));
        self.allocated += 1;
        Ok(Hpa::from_page(fno))
    }

    /// Allocate `count` physically-contiguous zeroed frames whose base frame
    /// number is aligned to `align_frames` (a power of two). Contiguous runs
    /// are carved only from never-allocated space — the free list is
    /// fragmented by definition — and the frames skipped to reach alignment
    /// are donated to the free list so they are not wasted. Each frame of
    /// the run can later be freed individually with
    /// [`free_frame`](Self::free_frame) (demotion tears huge regions down
    /// 4 KiB at a time).
    pub fn alloc_frames_contiguous(
        &mut self,
        count: u64,
        align_frames: u64,
    ) -> Result<Hpa, MachineError> {
        debug_assert!(align_frames.is_power_of_two());
        debug_assert!(count > 0);
        let base = self.next_never_allocated.next_multiple_of(align_frames);
        if base + count > self.total_frames() {
            return Err(MachineError::OutOfMemory {
                requested_frames: count,
                free_frames: self
                    .total_frames()
                    .saturating_sub(self.next_never_allocated)
                    + self.free_list.len() as u64,
            });
        }
        for f in self.next_never_allocated..base {
            self.free_list.push(f);
        }
        for f in base..base + count {
            self.frames[f as usize] = Some(Box::new([0u8; PAGE_SIZE as usize]));
        }
        self.allocated += count;
        self.next_never_allocated = base + count;
        Ok(Hpa::from_page(base))
    }

    /// Free a frame previously returned by [`alloc_frame`](Self::alloc_frame).
    pub fn free_frame(&mut self, hpa: Hpa) -> Result<(), MachineError> {
        let fno = hpa.page();
        match self.frames.get_mut(fno as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.free_list.push(fno);
                self.allocated -= 1;
                Ok(())
            }
            _ => Err(MachineError::BadFrame { hpa }),
        }
    }

    /// Is `hpa`'s frame currently allocated?
    pub fn is_allocated(&self, hpa: Hpa) -> bool {
        self.frames
            .get(hpa.page() as usize)
            .map(|f| f.is_some())
            .unwrap_or(false)
    }

    fn frame(&self, hpa: Hpa) -> Result<&Frame, MachineError> {
        self.frames
            .get(hpa.page() as usize)
            .and_then(|f| f.as_deref())
            .ok_or(MachineError::BadFrame { hpa })
    }

    fn frame_mut(&mut self, hpa: Hpa) -> Result<&mut Frame, MachineError> {
        self.frames
            .get_mut(hpa.page() as usize)
            .and_then(|f| f.as_deref_mut())
            .ok_or(MachineError::BadFrame { hpa })
    }

    /// Read `buf.len()` bytes at `hpa`. The access must not cross a page
    /// boundary (callers split accesses, as the MMU does).
    pub fn read(&self, hpa: Hpa, buf: &mut [u8]) -> Result<(), MachineError> {
        let off = hpa.offset() as usize;
        check_in_page(off, buf.len(), hpa)?;
        let frame = self.frame(hpa)?;
        buf.copy_from_slice(&frame[off..off + buf.len()]);
        Ok(())
    }

    /// Write `buf` at `hpa` (same single-page constraint as [`read`](Self::read)).
    pub fn write(&mut self, hpa: Hpa, buf: &[u8]) -> Result<(), MachineError> {
        let off = hpa.offset() as usize;
        check_in_page(off, buf.len(), hpa)?;
        let frame = self.frame_mut(hpa)?;
        frame[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Read a little-endian u64 at `hpa` (must be 8-byte aligned — this is
    /// how page-table entries are accessed).
    pub fn read_u64(&self, hpa: Hpa) -> Result<u64, MachineError> {
        debug_assert_eq!(hpa.raw() % 8, 0, "unaligned PTE access");
        let mut b = [0u8; 8];
        self.read(hpa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian u64 at `hpa`.
    pub fn write_u64(&mut self, hpa: Hpa, value: u64) -> Result<(), MachineError> {
        debug_assert_eq!(hpa.raw() % 8, 0, "unaligned PTE access");
        self.write(hpa, &value.to_le_bytes())
    }

    /// Copy one whole frame to another (used by checkpoint/migration copies).
    pub fn copy_frame(&mut self, from: Hpa, to: Hpa) -> Result<(), MachineError> {
        let src = *self.frame(from.page_base())?;
        let dst = self.frame_mut(to.page_base())?;
        *dst = src;
        Ok(())
    }

    /// Borrow a whole frame's bytes (for checkpoint image writes).
    pub fn frame_bytes(&self, hpa: Hpa) -> Result<&[u8; PAGE_SIZE as usize], MachineError> {
        self.frame(hpa.page_base())
    }

    /// Overwrite a whole frame's bytes (for restore).
    pub fn set_frame_bytes(
        &mut self,
        hpa: Hpa,
        bytes: &[u8; PAGE_SIZE as usize],
    ) -> Result<(), MachineError> {
        let frame = self.frame_mut(hpa.page_base())?;
        *frame = *bytes;
        Ok(())
    }
}

fn check_in_page(offset: usize, len: usize, hpa: Hpa) -> Result<(), MachineError> {
    if offset + len > PAGE_SIZE as usize {
        return Err(MachineError::CrossPageAccess { hpa, len });
    }
    Ok(())
}

impl std::fmt::Debug for HostPhys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostPhys")
            .field("total_frames", &self.total_frames())
            .field("allocated_frames", &self.allocated)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_zeroed_distinct_frames() {
        let mut m = HostPhys::new(16 * PAGE_SIZE);
        let a = m.alloc_frame().unwrap();
        let b = m.alloc_frame().unwrap();
        assert_ne!(a, b);
        let mut buf = [0xffu8; 16];
        m.read(a, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.allocated_frames(), 2);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = HostPhys::new(4 * PAGE_SIZE);
        let f = m.alloc_frame().unwrap();
        m.write(f.add(100), b"hello").unwrap();
        let mut buf = [0u8; 5];
        m.read(f.add(100), &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = HostPhys::new(4 * PAGE_SIZE);
        let f = m.alloc_frame().unwrap();
        m.write_u64(f.add(8), 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(f.add(8)).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn oom_when_exhausted() {
        let mut m = HostPhys::new(2 * PAGE_SIZE);
        m.alloc_frame().unwrap();
        m.alloc_frame().unwrap();
        assert!(matches!(
            m.alloc_frame(),
            Err(MachineError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn free_and_reuse_rezeroes() {
        let mut m = HostPhys::new(2 * PAGE_SIZE);
        let a = m.alloc_frame().unwrap();
        m.write(a, &[7u8; 8]).unwrap();
        m.free_frame(a).unwrap();
        assert!(!m.is_allocated(a));
        let b = m.alloc_frame().unwrap();
        // frame number reused, contents zeroed
        assert_eq!(b, a);
        let mut buf = [0xffu8; 8];
        m.read(b, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn double_free_rejected() {
        let mut m = HostPhys::new(2 * PAGE_SIZE);
        let a = m.alloc_frame().unwrap();
        m.free_frame(a).unwrap();
        assert!(m.free_frame(a).is_err());
    }

    #[test]
    fn unallocated_access_rejected() {
        let m = HostPhys::new(4 * PAGE_SIZE);
        let mut buf = [0u8; 1];
        assert!(m.read(Hpa(0), &mut buf).is_err());
    }

    #[test]
    fn cross_page_access_rejected() {
        let mut m = HostPhys::new(4 * PAGE_SIZE);
        let f = m.alloc_frame().unwrap();
        let mut buf = [0u8; 16];
        assert!(matches!(
            m.read(f.add(PAGE_SIZE - 8), &mut buf),
            Err(MachineError::CrossPageAccess { .. })
        ));
    }

    #[test]
    fn contiguous_alloc_aligns_and_recycles_the_gap() {
        let mut m = HostPhys::new(32 * PAGE_SIZE);
        m.alloc_frame().unwrap(); // frame 0: forces an alignment gap
        let base = m.alloc_frames_contiguous(8, 8).unwrap();
        assert_eq!(base.page() % 8, 0);
        assert_eq!(base.page(), 8);
        // The run is allocated and zeroed.
        for i in 0..8 {
            assert!(m.is_allocated(base.add(i * PAGE_SIZE)));
        }
        // Frames 1..8 (the alignment gap) went to the free list: the next
        // single-frame alloc reuses one instead of bumping past the run.
        let single = m.alloc_frame().unwrap();
        assert!(single.page() < 8, "gap frame should be recycled");
        // Individual frames of the run can be freed (demotion teardown).
        m.free_frame(base).unwrap();
        assert!(!m.is_allocated(base));
    }

    #[test]
    fn contiguous_alloc_oom() {
        let mut m = HostPhys::new(8 * PAGE_SIZE);
        assert!(matches!(
            m.alloc_frames_contiguous(16, 8),
            Err(MachineError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn copy_frame_copies_contents() {
        let mut m = HostPhys::new(4 * PAGE_SIZE);
        let a = m.alloc_frame().unwrap();
        let b = m.alloc_frame().unwrap();
        m.write(a.add(12), b"payload").unwrap();
        m.copy_frame(a, b).unwrap();
        let mut buf = [0u8; 7];
        m.read(b.add(12), &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
    }
}
