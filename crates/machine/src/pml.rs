//! Page Modification Logging hardware state.
//!
//! Faithful to the SDM semantics: the PML index starts at 511 and counts
//! down; the CPU writes the logged address at `base + index*8` *then*
//! decrements; if a log is attempted while the index is out of the 0..=511
//! range, a page-modification-log-full event fires **before** the write and
//! the entry is not lost (the write retries after the handler resets the
//! index).
//!
//! The EPML extension adds a second, guest-level buffer with identical
//! mechanics, except the full event is delivered as a virtual self-IPI via
//! posted interrupts instead of a vmexit.

use crate::addr::Hpa;
use crate::digest::StateHasher;
use crate::error::MachineError;
use crate::phys::HostPhys;

/// Number of entries in a PML buffer (one 4 KiB page of u64s).
pub const PML_ENTRIES: u16 = 512;

/// Index value meaning "buffer full" (decremented past 0 wraps to 0xFFFF).
const FULL_SENTINEL: u16 = u16::MAX;

/// One PML buffer: a base pointer plus the architectural index register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmlBuffer {
    /// Host-physical base of the 4 KiB log page.
    pub base: Hpa,
    /// The PML index (a guest-state VMCS field on real hardware).
    pub index: u16,
}

/// Outcome of attempting to log one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOutcome {
    /// Entry written; buffer has room for more.
    Logged,
    /// Entry written into the last slot; the *next* attempt will be Full.
    LoggedLastSlot,
    /// Buffer is full; nothing was written. The caller must raise the full
    /// event (vmexit / self-IPI), have the handler drain + reset, and retry.
    Full,
}

impl PmlBuffer {
    /// A fresh buffer over the page at `base`, index at 511.
    pub fn new(base: Hpa) -> Self {
        debug_assert!(base.is_page_aligned());
        Self {
            base,
            index: PML_ENTRIES - 1,
        }
    }

    /// Is the index out of logging range (full)?
    pub fn is_full(&self) -> bool {
        self.index >= PML_ENTRIES
    }

    /// Number of entries currently held.
    pub fn len(&self) -> u16 {
        if self.is_full() {
            PML_ENTRIES
        } else {
            PML_ENTRIES - 1 - self.index
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempt to log `value` (a page-aligned GPA or GVA).
    pub fn log(&mut self, phys: &mut HostPhys, value: u64) -> Result<LogOutcome, MachineError> {
        if self.is_full() {
            return Ok(LogOutcome::Full);
        }
        phys.write_u64(self.base.add(self.index as u64 * 8), value)?;
        if self.index == 0 {
            self.index = FULL_SENTINEL;
            Ok(LogOutcome::LoggedLastSlot)
        } else {
            self.index -= 1;
            Ok(LogOutcome::Logged)
        }
    }

    /// Fold the observable buffer state into `h`: fullness, entry count, and
    /// the logged addresses as a sorted multiset (the drain turns them into
    /// a set, so their in-buffer order is not behaviorally observable).
    pub fn hash_state(&self, phys: &HostPhys, h: &mut StateHasher) -> Result<(), MachineError> {
        h.write_bool(self.is_full());
        let n = self.len();
        let mut entries = Vec::with_capacity(n as usize);
        for i in (0..n).map(|k| PML_ENTRIES - 1 - k) {
            entries.push(phys.read_u64(self.base.add(i as u64 * 8))?);
        }
        h.write_sorted(&entries);
        Ok(())
    }

    /// Drain all logged entries (oldest first) and reset the index to 511.
    /// This is what the hypervisor's PML-full handler (or the guest's
    /// self-IPI handler under EPML) does.
    pub fn drain(&mut self, phys: &HostPhys) -> Result<Vec<u64>, MachineError> {
        let n = self.len();
        let mut out = Vec::with_capacity(n as usize);
        // Entries were written at 511, 510, … downwards; oldest first means
        // reading from 511 down to index+1.
        for i in (0..n).map(|k| PML_ENTRIES - 1 - k) {
            out.push(phys.read_u64(self.base.add(i as u64 * 8))?);
        }
        self.index = PML_ENTRIES - 1;
        Ok(out)
    }
}

/// The PML-related hardware state of one vCPU: the hypervisor-level buffer
/// (standard PML) and, when the EPML extension is present and configured,
/// the guest-level buffer.
#[derive(Debug, Default)]
pub struct PmlState {
    /// Standard PML: logs **GPAs**, managed by the hypervisor.
    pub hyp: Option<PmlBuffer>,
    /// Whether hypervisor-level logging is currently active (the
    /// "enable PML" secondary execution control).
    pub hyp_logging: bool,
    /// EPML: logs **GVAs**, managed by the guest OS (OoH Module).
    pub guest: Option<PmlBuffer>,
    /// Whether guest-level logging is currently active (the EPML enable bit
    /// the OoH module flips with `vmwrite` on schedule-in/out).
    pub guest_logging: bool,
    /// PML-R extension (Bitchebe et al.): also log guest-physical addresses
    /// on EPT *accessed*-bit transitions, so the hypervisor can estimate
    /// working-set size without write-protecting the guest. Only meaningful
    /// while `hyp_logging` is on.
    pub log_accesses: bool,
    /// Shadow bookkeeping for the `debug-invariants` feature. Stays empty
    /// (and costs one pointer-sized struct) when the feature is off.
    pub shadow: PmlShadow,
}

/// Shadow tracking behind the `debug-invariants` feature: the set of pages
/// whose 0→1 dirty-bit transition has been logged and whose dirty bit has
/// not been cleared since. The architectural invariant is *exactly one log
/// entry per transition per round*: a second log for the same page without
/// an intervening clear means the walker double-logged; a missing clear
/// notification means a drain path forgot to reset per-round state.
#[derive(Debug, Default)]
pub struct PmlShadow {
    /// GPA pages dirty-logged into the hypervisor-level buffer.
    hyp_logged: std::collections::BTreeSet<u64>,
    /// GVA pages dirty-logged into the guest-level (EPML) buffer.
    guest_logged: std::collections::BTreeSet<u64>,
}

impl PmlState {
    /// The walker logged a 0→1 EPT dirty transition for `gpa_page` into the
    /// hypervisor buffer. Panics (feature `debug-invariants` only) if the
    /// page was already logged this round.
    pub fn note_hyp_dirty_logged(&mut self, gpa_page: u64) {
        if cfg!(feature = "debug-invariants") {
            assert!(
                self.shadow.hyp_logged.insert(gpa_page),
                "PML invariant violated: GPA page {gpa_page:#x} dirty-logged twice \
                 without an intervening EPT dirty-bit clear"
            );
        }
    }

    /// The drain path cleared the EPT dirty bit of `gpa_page`; it may log
    /// again. No-op without `debug-invariants`.
    pub fn note_hyp_dirty_cleared(&mut self, gpa_page: u64) {
        if cfg!(feature = "debug-invariants") {
            self.shadow.hyp_logged.remove(&gpa_page);
        }
    }

    /// The walker logged a 0→1 guest-PTE dirty transition for `gva_page`
    /// into the guest-level (EPML) buffer.
    pub fn note_guest_dirty_logged(&mut self, gva_page: u64) {
        if cfg!(feature = "debug-invariants") {
            assert!(
                self.shadow.guest_logged.insert(gva_page),
                "PML invariant violated: GVA page {gva_page:#x} dirty-logged twice \
                 without an intervening guest-PTE dirty-bit clear"
            );
        }
    }

    /// The OoH module cleared the dirty bit of the guest PTE mapping
    /// `gva_page` (drain or track-reset); it may log again.
    pub fn note_guest_dirty_cleared(&mut self, gva_page: u64) {
        if cfg!(feature = "debug-invariants") {
            self.shadow.guest_logged.remove(&gva_page);
        }
    }

    /// Bulk reset of the hypervisor-side shadow — paired with
    /// `Ept::clear_all_dirty` (SPML init, WSS intervals).
    pub fn shadow_reset_hyp(&mut self) {
        if cfg!(feature = "debug-invariants") {
            self.shadow.hyp_logged.clear();
        }
    }

    /// Bulk reset of the guest-side shadow — paired with EPML deactivation.
    pub fn shadow_reset_guest(&mut self) {
        if cfg!(feature = "debug-invariants") {
            self.shadow.guest_logged.clear();
        }
    }
}

/// Events produced by a single logged store, to be dispatched by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmlEvent {
    /// The hypervisor-level buffer filled: page-modification-log-full vmexit.
    HypBufferFull,
    /// The guest-level buffer filled: virtual self-IPI to the guest.
    GuestBufferFull,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    fn mk() -> (HostPhys, PmlBuffer) {
        let mut phys = HostPhys::new(8 * PAGE_SIZE);
        let page = phys.alloc_frame().unwrap();
        (phys, PmlBuffer::new(page))
    }

    #[test]
    fn index_starts_at_511() {
        let (_, b) = mk();
        assert_eq!(b.index, 511);
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert!(!b.is_full());
    }

    #[test]
    fn log_writes_at_descending_slots() {
        let (mut phys, mut b) = mk();
        assert_eq!(b.log(&mut phys, 0xA000).unwrap(), LogOutcome::Logged);
        assert_eq!(b.log(&mut phys, 0xB000).unwrap(), LogOutcome::Logged);
        assert_eq!(b.len(), 2);
        // First entry landed at slot 511, second at 510.
        assert_eq!(phys.read_u64(b.base.add(511 * 8)).unwrap(), 0xA000);
        assert_eq!(phys.read_u64(b.base.add(510 * 8)).unwrap(), 0xB000);
    }

    #[test]
    fn fills_after_512_entries_then_rejects() {
        let (mut phys, mut b) = mk();
        for i in 0..511u64 {
            assert_eq!(b.log(&mut phys, i << 12).unwrap(), LogOutcome::Logged);
        }
        assert_eq!(
            b.log(&mut phys, 511 << 12).unwrap(),
            LogOutcome::LoggedLastSlot
        );
        assert!(b.is_full());
        assert_eq!(b.len(), 512);
        // Full: nothing written, value preserved for retry by caller.
        assert_eq!(b.log(&mut phys, 0xDEAD000).unwrap(), LogOutcome::Full);
    }

    #[test]
    fn drain_returns_oldest_first_and_resets() {
        let (mut phys, mut b) = mk();
        for v in [0x1000u64, 0x2000, 0x3000] {
            b.log(&mut phys, v).unwrap();
        }
        let drained = b.drain(&phys).unwrap();
        assert_eq!(drained, vec![0x1000, 0x2000, 0x3000]);
        assert_eq!(b.index, 511);
        assert!(b.is_empty());
    }

    #[test]
    fn drain_full_buffer_returns_512() {
        let (mut phys, mut b) = mk();
        for i in 0..512u64 {
            b.log(&mut phys, i << 12).unwrap();
        }
        let drained = b.drain(&phys).unwrap();
        assert_eq!(drained.len(), 512);
        assert_eq!(drained[0], 0);
        assert_eq!(drained[511], 511 << 12);
        // usable again after drain
        assert_eq!(b.log(&mut phys, 0x7000).unwrap(), LogOutcome::Logged);
    }

    #[test]
    fn drain_empty_is_empty() {
        let (phys, mut b) = mk();
        assert!(b.drain(&phys).unwrap().is_empty());
    }

    #[cfg(feature = "debug-invariants")]
    mod invariant_tests {
        use super::super::PmlState;

        #[test]
        fn log_clear_log_is_legal() {
            let mut s = PmlState::default();
            s.note_hyp_dirty_logged(0x40);
            s.note_hyp_dirty_cleared(0x40);
            s.note_hyp_dirty_logged(0x40);
            s.note_guest_dirty_logged(0x99);
            s.note_guest_dirty_cleared(0x99);
            s.note_guest_dirty_logged(0x99);
        }

        #[test]
        #[should_panic(expected = "PML invariant violated")]
        fn double_hyp_log_without_clear_panics() {
            let mut s = PmlState::default();
            s.note_hyp_dirty_logged(0x40);
            s.note_hyp_dirty_logged(0x40);
        }

        #[test]
        #[should_panic(expected = "PML invariant violated")]
        fn double_guest_log_without_clear_panics() {
            let mut s = PmlState::default();
            s.note_guest_dirty_logged(0x7);
            s.note_guest_dirty_logged(0x7);
        }

        #[test]
        fn bulk_reset_forgives_everything() {
            let mut s = PmlState::default();
            s.note_hyp_dirty_logged(1);
            s.note_hyp_dirty_logged(2);
            s.shadow_reset_hyp();
            s.note_hyp_dirty_logged(1);
            s.note_guest_dirty_logged(3);
            s.shadow_reset_guest();
            s.note_guest_dirty_logged(3);
        }
    }

    #[test]
    fn log_retry_after_drain_succeeds() {
        let (mut phys, mut b) = mk();
        for i in 0..512u64 {
            b.log(&mut phys, i << 12).unwrap();
        }
        assert_eq!(b.log(&mut phys, 0xFEED000).unwrap(), LogOutcome::Full);
        b.drain(&phys).unwrap();
        assert_eq!(b.log(&mut phys, 0xFEED000).unwrap(), LogOutcome::Logged);
        assert_eq!(b.drain(&phys).unwrap(), vec![0xFEED000]);
    }
}
