//! Page-table entry layouts: guest PTEs (x86-64 layout, including Linux's
//! software bits) and EPT entries (VT-x layout with the accessed/dirty bits
//! that PML keys off).

use crate::addr::{Gpa, Hpa};

/// A guest page-table entry, laid out like a real x86-64 PTE.
///
/// Hardware bits: P(0) RW(1) US(2) A(5) D(6). Software bits follow Linux's
/// x86 assignments: `UFFD_WP` at bit 10 (`_PAGE_BIT_SOFTW2`) and
/// `SOFT_DIRTY` at bit 11 (`_PAGE_BIT_SOFTW3`); the pagemap interface
/// re-exports soft-dirty at bit 55 of the *pagemap entry*, not the PTE.
/// The physical frame number occupies bits 12..=51.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pte(pub u64);

impl Pte {
    pub const PRESENT: u64 = 1 << 0;
    pub const WRITABLE: u64 = 1 << 1;
    pub const USER: u64 = 1 << 2;
    pub const ACCESSED: u64 = 1 << 5;
    pub const DIRTY: u64 = 1 << 6;
    /// x86 PS (page-size) bit: this level-1 entry is a 2 MiB leaf, not a
    /// pointer to a level-0 table. Only meaningful at level 1; the walker
    /// terminates there when it sees PS set.
    pub const PS: u64 = 1 << 7;
    /// Software guard marker (`_PAGE_SOFTW1`): the page is a heap guard —
    /// write faults on it are overflow detections, never fixed up.
    pub const GUARD: u64 = 1 << 9;
    /// Linux `_PAGE_UFFD_WP`: page is write-protected by userfaultfd.
    pub const UFFD_WP: u64 = 1 << 10;
    /// Linux `_PAGE_SOFT_DIRTY`: set by the #PF handler after clear_refs.
    pub const SOFT_DIRTY: u64 = 1 << 11;

    const PFN_MASK: u64 = 0x000F_FFFF_FFFF_F000;

    /// An empty (not-present) entry.
    pub const fn empty() -> Self {
        Pte(0)
    }

    /// Build a present leaf entry pointing at `frame` with `flags`
    /// (PRESENT is implied).
    pub fn leaf(frame: Gpa, flags: u64) -> Self {
        debug_assert!(frame.is_page_aligned());
        Pte((frame.raw() & Self::PFN_MASK) | flags | Self::PRESENT)
    }

    /// Build a present non-leaf entry pointing at the next-level table.
    pub fn table(next: Gpa) -> Self {
        // Non-leaf entries carry permissive RW/US so leaf bits govern.
        Pte::leaf(next, Self::WRITABLE | Self::USER)
    }

    /// Build a present 2 MiB leaf entry (level-1, PS set) pointing at a
    /// 2 MiB-aligned `frame`.
    pub fn huge_leaf(frame: Gpa, flags: u64) -> Self {
        debug_assert!(frame.is_huge_aligned(), "2M leaf frame must be 2M-aligned");
        Pte::leaf(frame, flags | Self::PS)
    }

    pub fn is_present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }

    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE != 0
    }

    pub fn is_user(self) -> bool {
        self.0 & Self::USER != 0
    }

    pub fn is_accessed(self) -> bool {
        self.0 & Self::ACCESSED != 0
    }

    pub fn is_dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    pub fn is_soft_dirty(self) -> bool {
        self.0 & Self::SOFT_DIRTY != 0
    }

    pub fn is_uffd_wp(self) -> bool {
        self.0 & Self::UFFD_WP != 0
    }

    pub fn is_guard(self) -> bool {
        self.0 & Self::GUARD != 0
    }

    /// Is this a 2 MiB leaf (PS bit)?
    pub fn is_huge(self) -> bool {
        self.0 & Self::PS != 0
    }

    /// The guest-physical frame this entry points to (leaf: data page;
    /// non-leaf: next table page).
    pub fn frame(self) -> Gpa {
        Gpa(self.0 & Self::PFN_MASK)
    }

    pub fn with(self, flags: u64) -> Self {
        Pte(self.0 | flags)
    }

    pub fn without(self, flags: u64) -> Self {
        Pte(self.0 & !flags)
    }

    /// Rebuild this entry pointing at `frame`, keeping every flag bit —
    /// how demotion derives each inherited 4K leaf from a 2 MiB one.
    pub fn retarget(self, frame: Gpa) -> Self {
        debug_assert!(frame.is_page_aligned());
        Pte((frame.raw() & Self::PFN_MASK) | (self.0 & !Self::PFN_MASK))
    }
}

/// An EPT entry (VT-x "extended page table" format): R(0) W(1) X(2),
/// A(8), D(9); host frame number in bits 12..=51.
///
/// PML's architectural trigger is precisely "a write sets bit 9 of a leaf
/// EPT entry during a page walk" — the walker in [`crate::walker`] logs on
/// that transition and nowhere else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EptEntry(pub u64);

impl EptEntry {
    pub const READ: u64 = 1 << 0;
    pub const WRITE: u64 = 1 << 1;
    pub const EXEC: u64 = 1 << 2;
    pub const ACCESSED: u64 = 1 << 8;
    pub const DIRTY: u64 = 1 << 9;
    /// EPT large-page bit (bit 7, as on real VT-x): this level-1 entry maps
    /// a whole 2 MiB host region.
    pub const HUGE: u64 = 1 << 7;

    const PFN_MASK: u64 = 0x000F_FFFF_FFFF_F000;
    const PERM_MASK: u64 = Self::READ | Self::WRITE | Self::EXEC;

    pub const fn empty() -> Self {
        EptEntry(0)
    }

    /// Leaf entry mapping to host frame `hpa` with full RWX permissions.
    pub fn leaf_rwx(hpa: Hpa) -> Self {
        debug_assert!(hpa.is_page_aligned());
        EptEntry((hpa.raw() & Self::PFN_MASK) | Self::PERM_MASK)
    }

    /// Non-leaf entry pointing at the next-level EPT table page.
    pub fn table(next: Hpa) -> Self {
        EptEntry::leaf_rwx(next)
    }

    /// Level-1 2 MiB leaf mapping to a 2 MiB-aligned host frame with full
    /// RWX permissions.
    pub fn huge_leaf_rwx(hpa: Hpa) -> Self {
        debug_assert!(hpa.is_huge_aligned(), "2M EPT leaf must be 2M-aligned");
        EptEntry(EptEntry::leaf_rwx(hpa).0 | Self::HUGE)
    }

    /// "Present" in EPT terms: any permission bit set.
    pub fn is_present(self) -> bool {
        self.0 & Self::PERM_MASK != 0
    }

    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITE != 0
    }

    pub fn is_accessed(self) -> bool {
        self.0 & Self::ACCESSED != 0
    }

    pub fn is_dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    /// Is this a 2 MiB leaf (large-page bit)?
    pub fn is_huge(self) -> bool {
        self.0 & Self::HUGE != 0
    }

    pub fn frame(self) -> Hpa {
        Hpa(self.0 & Self::PFN_MASK)
    }

    pub fn with(self, flags: u64) -> Self {
        EptEntry(self.0 | flags)
    }

    pub fn without(self, flags: u64) -> Self {
        EptEntry(self.0 & !flags)
    }

    /// Rebuild this entry pointing at `frame`, keeping every flag bit
    /// (permissions and A/D survive demotion into the inherited 4K leaves).
    pub fn retarget(self, frame: Hpa) -> Self {
        debug_assert!(frame.is_page_aligned());
        EptEntry((frame.raw() & Self::PFN_MASK) | (self.0 & !Self::PFN_MASK))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pte_leaf_roundtrip() {
        let p = Pte::leaf(Gpa(0x1234_5000), Pte::WRITABLE | Pte::USER);
        assert!(p.is_present());
        assert!(p.is_writable());
        assert!(p.is_user());
        assert!(!p.is_dirty());
        assert_eq!(p.frame(), Gpa(0x1234_5000));
    }

    #[test]
    fn pte_flag_set_clear() {
        let p = Pte::leaf(Gpa(0x1000), Pte::WRITABLE)
            .with(Pte::DIRTY | Pte::SOFT_DIRTY)
            .with(Pte::ACCESSED);
        assert!(p.is_dirty() && p.is_soft_dirty() && p.is_accessed());
        let q = p.without(Pte::DIRTY);
        assert!(!q.is_dirty());
        assert!(q.is_soft_dirty(), "clearing D must not clear soft-dirty");
        assert_eq!(q.frame(), Gpa(0x1000));
    }

    #[test]
    fn pte_software_bits_do_not_clobber_pfn() {
        let p = Pte::leaf(Gpa(0x000F_FFFF_FFFF_F000), 0)
            .with(Pte::UFFD_WP | Pte::SOFT_DIRTY);
        assert_eq!(p.frame(), Gpa(0x000F_FFFF_FFFF_F000));
        assert!(p.is_uffd_wp());
    }

    #[test]
    fn ept_leaf_roundtrip() {
        let e = EptEntry::leaf_rwx(Hpa(0x9_F000));
        assert!(e.is_present());
        assert!(e.is_writable());
        assert!(!e.is_dirty());
        assert_eq!(e.frame(), Hpa(0x9_F000));
        let d = e.with(EptEntry::DIRTY | EptEntry::ACCESSED);
        assert!(d.is_dirty() && d.is_accessed());
        assert_eq!(d.without(EptEntry::DIRTY).frame(), Hpa(0x9_F000));
    }

    #[test]
    fn ept_empty_not_present() {
        assert!(!EptEntry::empty().is_present());
        assert!(!Pte::empty().is_present());
    }

    #[test]
    fn huge_leaf_roundtrip() {
        let p = Pte::huge_leaf(Gpa(0x40_0000), Pte::WRITABLE | Pte::USER);
        assert!(p.is_present() && p.is_huge() && p.is_writable());
        assert_eq!(p.frame(), Gpa(0x40_0000));
        assert!(!p.without(Pte::PS).is_huge());
        assert!(!Pte::leaf(Gpa(0x1000), Pte::WRITABLE).is_huge());

        let e = EptEntry::huge_leaf_rwx(Hpa(0x80_0000));
        assert!(e.is_present() && e.is_huge() && e.is_writable());
        assert_eq!(e.frame(), Hpa(0x80_0000));
        assert!(e.with(EptEntry::DIRTY).is_huge(), "A/D updates keep HUGE");
        assert!(!EptEntry::leaf_rwx(Hpa(0x1000)).is_huge());
    }
}
