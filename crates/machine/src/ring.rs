//! Shared ring buffer over physical frames.
//!
//! OoH's data path is a single-producer/single-consumer ring of 64-bit
//! address entries living in *guest* memory (allocated by the OoH kernel
//! module, mmapped by the tracker — the UIO pattern). Under SPML the
//! producer is the hypervisor (writing through its HPA view); under EPML it
//! is the guest kernel's self-IPI handler. The consumer is always the
//! userspace OoH library.
//!
//! Layout: a header page (head at offset 0, tail at offset 8, capacity at
//! 16, dropped-entry count at 24) followed by `N` data pages of u64 entries.
//! `head` counts pops, `tail` counts pushes; both are free-running and
//! reduced mod capacity on access, the classic power-of-two-free protocol.

use crate::addr::{Hpa, PAGE_SIZE};
use crate::digest::StateHasher;
use crate::error::MachineError;
use crate::phys::HostPhys;

const OFF_HEAD: u64 = 0;
const OFF_TAIL: u64 = 8;
const OFF_CAP: u64 = 16;
const OFF_DROPPED: u64 = 24;

/// Entries per data page.
pub const RING_ENTRIES_PER_PAGE: u64 = PAGE_SIZE / 8;

/// A view of the ring through host-physical frame addresses. Both sides
/// (hypervisor and guest kernel / userspace) construct their own `RingView`
/// over the same frames; all state lives in the frames themselves.
#[derive(Debug, Clone)]
pub struct RingView {
    header: Hpa,
    data: Vec<Hpa>,
    capacity: u64,
}

impl RingView {
    /// Create a ring over `header` + `data` frames, initializing the header.
    /// Call once (producer side at setup).
    pub fn create(
        phys: &mut HostPhys,
        header: Hpa,
        data: Vec<Hpa>,
    ) -> Result<Self, MachineError> {
        let capacity = data.len() as u64 * RING_ENTRIES_PER_PAGE;
        phys.write_u64(header.add(OFF_HEAD), 0)?;
        phys.write_u64(header.add(OFF_TAIL), 0)?;
        phys.write_u64(header.add(OFF_CAP), capacity)?;
        phys.write_u64(header.add(OFF_DROPPED), 0)?;
        Ok(Self {
            header,
            data,
            capacity,
        })
    }

    /// Attach to an already-created ring (consumer side).
    pub fn attach(
        phys: &HostPhys,
        header: Hpa,
        data: Vec<Hpa>,
    ) -> Result<Self, MachineError> {
        let capacity = phys.read_u64(header.add(OFF_CAP))?;
        debug_assert_eq!(capacity, data.len() as u64 * RING_ENTRIES_PER_PAGE);
        Ok(Self {
            header,
            data,
            capacity,
        })
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    fn head(&self, phys: &HostPhys) -> Result<u64, MachineError> {
        phys.read_u64(self.header.add(OFF_HEAD))
    }

    fn tail(&self, phys: &HostPhys) -> Result<u64, MachineError> {
        phys.read_u64(self.header.add(OFF_TAIL))
    }

    /// Entries currently queued.
    pub fn len(&self, phys: &HostPhys) -> Result<u64, MachineError> {
        Ok(self.tail(phys)? - self.head(phys)?)
    }

    pub fn is_empty(&self, phys: &HostPhys) -> Result<bool, MachineError> {
        Ok(self.len(phys)? == 0)
    }

    /// Total entries dropped because the ring was full.
    pub fn dropped(&self, phys: &HostPhys) -> Result<u64, MachineError> {
        phys.read_u64(self.header.add(OFF_DROPPED))
    }

    fn slot(&self, index: u64) -> Hpa {
        let i = index % self.capacity;
        let page = (i / RING_ENTRIES_PER_PAGE) as usize;
        let off = (i % RING_ENTRIES_PER_PAGE) * 8;
        self.data[page].add(off)
    }

    /// `debug-invariants` only: structural SPSC checks on the shared header.
    /// `head` must never run past `tail` (FIFO: pops consume pushes), the
    /// queue depth must never exceed capacity (wraparound must not overwrite
    /// unconsumed entries), and the header capacity must match this view's
    /// (attach/create disagreement corrupts slot arithmetic).
    fn check_invariants(&self, phys: &HostPhys, head: u64, tail: u64) -> Result<(), MachineError> {
        if cfg!(feature = "debug-invariants") {
            let cap = phys.read_u64(self.header.add(OFF_CAP))?;
            assert_eq!(
                cap, self.capacity,
                "ring invariant violated: header capacity {cap} != view capacity {}",
                self.capacity
            );
            assert!(
                head <= tail,
                "ring invariant violated: head {head} ran past tail {tail} (pop without push)"
            );
            assert!(
                tail - head <= self.capacity,
                "ring invariant violated: {} queued entries exceed capacity {} \
                 (producer wrapped over unconsumed entries)",
                tail - head,
                self.capacity
            );
        }
        Ok(())
    }

    /// Push one entry. Returns `false` (and bumps the dropped counter) if
    /// the ring is full — the consumer will detect drops and fall back to a
    /// full rescan, as the OoH library does.
    pub fn push(&self, phys: &mut HostPhys, value: u64) -> Result<bool, MachineError> {
        let head = self.head(phys)?;
        let tail = self.tail(phys)?;
        self.check_invariants(phys, head, tail)?;
        if tail - head >= self.capacity {
            let d = self.dropped(phys)?;
            phys.write_u64(self.header.add(OFF_DROPPED), d + 1)?;
            return Ok(false);
        }
        phys.write_u64(self.slot(tail), value)?;
        phys.write_u64(self.header.add(OFF_TAIL), tail + 1)?;
        Ok(true)
    }

    /// Pop the oldest entry, if any.
    pub fn pop(&self, phys: &mut HostPhys) -> Result<Option<u64>, MachineError> {
        let head = self.head(phys)?;
        let tail = self.tail(phys)?;
        self.check_invariants(phys, head, tail)?;
        if head == tail {
            return Ok(None);
        }
        let v = phys.read_u64(self.slot(head))?;
        phys.write_u64(self.header.add(OFF_HEAD), head + 1)?;
        Ok(Some(v))
    }

    /// Fold the observable ring state into `h`: queue depth, drop count, and
    /// the queued entries as a sorted multiset. The absolute head/tail
    /// positions are excluded — they are free-running, so two histories with
    /// identical queued contents but different push totals would otherwise
    /// never deduplicate in the model checker.
    pub fn hash_state(&self, phys: &HostPhys, h: &mut StateHasher) -> Result<(), MachineError> {
        let head = self.head(phys)?;
        let tail = self.tail(phys)?;
        h.write_u64(tail - head);
        h.write_u64(self.dropped(phys)?);
        let mut queued = Vec::with_capacity((tail - head) as usize);
        for i in head..tail {
            queued.push(phys.read_u64(self.slot(i))?);
        }
        h.write_sorted(&queued);
        Ok(())
    }

    /// Drain everything currently queued.
    pub fn drain(&self, phys: &mut HostPhys) -> Result<Vec<u64>, MachineError> {
        let mut out = Vec::with_capacity(self.len(phys)? as usize);
        while let Some(v) = self.pop(phys)? {
            out.push(v);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(pages: usize) -> (HostPhys, RingView) {
        let mut phys = HostPhys::new(64 * PAGE_SIZE);
        let header = phys.alloc_frame().unwrap();
        let data: Vec<Hpa> = (0..pages).map(|_| phys.alloc_frame().unwrap()).collect();
        let ring = RingView::create(&mut phys, header, data).unwrap();
        (phys, ring)
    }

    #[test]
    fn fifo_order() {
        let (mut phys, ring) = mk(1);
        for v in [10u64, 20, 30] {
            assert!(ring.push(&mut phys, v).unwrap());
        }
        assert_eq!(ring.len(&phys).unwrap(), 3);
        assert_eq!(ring.pop(&mut phys).unwrap(), Some(10));
        assert_eq!(ring.pop(&mut phys).unwrap(), Some(20));
        assert_eq!(ring.pop(&mut phys).unwrap(), Some(30));
        assert_eq!(ring.pop(&mut phys).unwrap(), None);
    }

    #[test]
    fn wraparound_many_times() {
        let (mut phys, ring) = mk(1);
        let cap = ring.capacity();
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for _ in 0..5 {
            while next_push - next_pop < cap {
                assert!(ring.push(&mut phys, next_push).unwrap());
                next_push += 1;
            }
            for _ in 0..cap / 2 {
                assert_eq!(ring.pop(&mut phys).unwrap(), Some(next_pop));
                next_pop += 1;
            }
        }
        let drained = ring.drain(&mut phys).unwrap();
        assert_eq!(drained, (next_pop..next_push).collect::<Vec<_>>());
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let (mut phys, ring) = mk(1);
        for i in 0..ring.capacity() {
            assert!(ring.push(&mut phys, i).unwrap());
        }
        assert!(!ring.push(&mut phys, 999).unwrap());
        assert!(!ring.push(&mut phys, 998).unwrap());
        assert_eq!(ring.dropped(&phys).unwrap(), 2);
        // Oldest entries intact.
        assert_eq!(ring.pop(&mut phys).unwrap(), Some(0));
    }

    #[test]
    fn multi_page_ring_spans_frames() {
        let (mut phys, ring) = mk(3);
        assert_eq!(ring.capacity(), 3 * RING_ENTRIES_PER_PAGE);
        for i in 0..ring.capacity() {
            assert!(ring.push(&mut phys, i * 7).unwrap());
        }
        for i in 0..ring.capacity() {
            assert_eq!(ring.pop(&mut phys).unwrap(), Some(i * 7));
        }
    }

    #[cfg(feature = "debug-invariants")]
    mod invariant_tests {
        use super::*;

        #[test]
        #[should_panic(expected = "ring invariant violated")]
        fn corrupted_head_past_tail_panics() {
            let (mut phys, ring) = mk(1);
            ring.push(&mut phys, 1).unwrap();
            // Corrupt the shared header the way a buggy consumer would:
            // advance head beyond tail.
            phys.write_u64(ring.header.add(super::super::OFF_HEAD), 5).unwrap();
            let _ = ring.pop(&mut phys);
        }

        #[test]
        #[should_panic(expected = "ring invariant violated")]
        fn corrupted_overfull_ring_panics() {
            let (mut phys, ring) = mk(1);
            // A producer that wrapped over unconsumed entries: tail - head
            // exceeds capacity.
            phys.write_u64(
                ring.header.add(super::super::OFF_TAIL),
                ring.capacity() + 1,
            )
            .unwrap();
            let _ = ring.push(&mut phys, 1);
        }

        #[test]
        #[should_panic(expected = "ring invariant violated")]
        fn capacity_mismatch_panics() {
            let (mut phys, ring) = mk(2);
            phys.write_u64(ring.header.add(super::super::OFF_CAP), 8).unwrap();
            let _ = ring.push(&mut phys, 1);
        }
    }

    #[test]
    fn attach_sees_same_state() {
        let (mut phys, ring) = mk(2);
        ring.push(&mut phys, 42).unwrap();
        let header = ring.header;
        let data = ring.data.clone();
        let view2 = RingView::attach(&phys, header, data).unwrap();
        assert_eq!(view2.len(&phys).unwrap(), 1);
        assert_eq!(view2.pop(&mut phys).unwrap(), Some(42));
        // The original view observes the pop (shared state in frames).
        assert!(ring.is_empty(&phys).unwrap());
    }
}
