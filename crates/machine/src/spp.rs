//! Intel SPP (Sub-Page write Permission) model.
//!
//! SPP lets the hypervisor refine EPT write permission to 128-byte
//! sub-pages: each guarded guest-physical page carries a 32-bit mask, one
//! bit per sub-page (bit set = writable). Writes to a cleared sub-page
//! fault to the hypervisor.
//!
//! The paper names SPP as the next OoH candidate (§III-D): exposing it to
//! the guest lets secure heap allocators replace whole guard *pages* with
//! guard *sub-pages*, cutting the memory overhead by up to 32×. The
//! `ooh-secheap` crate builds exactly that on this model.

use crate::addr::Gpa;
use std::collections::BTreeMap;

/// Bytes per sub-page.
pub const SUBPAGE_SIZE: u64 = 128;
/// Sub-pages per 4 KiB page.
pub const SUBPAGES_PER_PAGE: u64 = 32;

/// The sub-page permission table (the SPPTP-rooted structure, modeled as a
/// map: only guarded pages have entries; unguarded pages behave as before).
#[derive(Debug, Default)]
pub struct SppTable {
    masks: BTreeMap<u64, u32>,
}

impl SppTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the write mask for `gpa`'s page. Bit `i` set
    /// means sub-page `i` (bytes `i*128..(i+1)*128`) is writable.
    pub fn set_mask(&mut self, gpa: Gpa, mask: u32) {
        self.masks.insert(gpa.page(), mask);
    }

    /// Remove SPP protection from a page entirely.
    pub fn clear(&mut self, gpa: Gpa) -> bool {
        self.masks.remove(&gpa.page()).is_some()
    }

    /// Current mask for a page, if guarded.
    pub fn mask(&self, gpa: Gpa) -> Option<u32> {
        self.masks.get(&gpa.page()).copied()
    }

    /// Is this page under SPP control at all?
    pub fn is_guarded(&self, gpa: Gpa) -> bool {
        self.masks.contains_key(&gpa.page())
    }

    /// May a write to `gpa` (byte address) proceed?
    pub fn write_allowed(&self, gpa: Gpa) -> bool {
        match self.masks.get(&gpa.page()) {
            None => true,
            Some(mask) => {
                let sub = (gpa.offset() / SUBPAGE_SIZE) as u32;
                mask & (1 << sub) != 0
            }
        }
    }

    /// Number of guarded pages (reporting).
    pub fn guarded_pages(&self) -> usize {
        self.masks.len()
    }

    /// The sub-page index of a byte address.
    pub fn subpage_of(gpa: Gpa) -> u32 {
        (gpa.offset() / SUBPAGE_SIZE) as u32
    }
}

/// Build a mask with sub-pages `[first, last]` (inclusive) *cleared*
/// (write-protected) and everything else writable.
pub fn mask_protecting(first: u32, last: u32) -> u32 {
    debug_assert!(first <= last && last < SUBPAGES_PER_PAGE as u32);
    let mut m = u32::MAX;
    for i in first..=last {
        m &= !(1 << i);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_pages_allow_all_writes() {
        let t = SppTable::new();
        assert!(t.write_allowed(Gpa(0x1234)));
        assert!(!t.is_guarded(Gpa(0x1000)));
    }

    #[test]
    fn mask_controls_subpage_writes() {
        let mut t = SppTable::new();
        // Protect sub-pages 1 and 2 of page 5.
        t.set_mask(Gpa::from_page(5), mask_protecting(1, 2));
        let base = Gpa::from_page(5);
        assert!(t.write_allowed(base)); // sub-page 0
        assert!(!t.write_allowed(base.add(128))); // sub-page 1
        assert!(!t.write_allowed(base.add(2 * 128 + 64))); // sub-page 2
        assert!(t.write_allowed(base.add(3 * 128))); // sub-page 3
        assert!(t.write_allowed(base.add(4095))); // sub-page 31
        // Other pages unaffected.
        assert!(t.write_allowed(Gpa::from_page(6)));
    }

    #[test]
    fn clear_restores_full_write_access() {
        let mut t = SppTable::new();
        t.set_mask(Gpa::from_page(9), 0);
        assert!(!t.write_allowed(Gpa::from_page(9)));
        assert!(t.clear(Gpa::from_page(9)));
        assert!(t.write_allowed(Gpa::from_page(9)));
        assert!(!t.clear(Gpa::from_page(9)));
    }

    #[test]
    fn mask_protecting_bounds() {
        assert_eq!(mask_protecting(0, 31), 0);
        assert_eq!(mask_protecting(0, 0), !1u32);
        assert_eq!(mask_protecting(31, 31), !(1u32 << 31));
    }

    #[test]
    fn subpage_of_maps_offsets() {
        assert_eq!(SppTable::subpage_of(Gpa(0x1000)), 0);
        assert_eq!(SppTable::subpage_of(Gpa(0x1000 + 127)), 0);
        assert_eq!(SppTable::subpage_of(Gpa(0x1000 + 128)), 1);
        assert_eq!(SppTable::subpage_of(Gpa(0x1FFF)), 31);
    }
}
