//! TLB model.
//!
//! The TLB is what makes PML cheap: once a page's dirty bits are set and its
//! translation cached, further stores to it hit the TLB and log nothing.
//! Conversely, every dirty-tracking technique's per-round cost starts with a
//! TLB flush (clear_refs, write-protect updates, PML drain), which is why we
//! model the flush/invlpg traffic explicitly.
//!
//! Capacity is unbounded: a bounded TLB would evict entries and cause extra
//! *walks*, but never extra *logs* (a re-walk of an already-dirty page sees
//! no 0→1 transition), so dirty-tracking semantics are unaffected while the
//! model stays deterministic. Walk counts are therefore a lower bound, which
//! we note in EXPERIMENTS.md.

use crate::addr::{Gpa, Gva, Hpa};
use crate::digest::StateHasher;
use std::collections::BTreeMap;

/// A cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Guest-physical page the GVA maps to.
    pub gpa_page: u64,
    /// Host-physical page behind it.
    pub hpa_page: u64,
    /// Guest PTE was writable at fill time.
    pub writable: bool,
    /// Guest PTE D bit was set at fill time — a store through an entry with
    /// `guest_dirty && ept_dirty` needs no walk and cannot log.
    pub guest_dirty: bool,
    /// EPT leaf D bit was set at fill time.
    pub ept_dirty: bool,
    /// The backing page is under SPP control: stores must always take the
    /// walk path so the sub-page permission check runs (real SPP caches
    /// sub-page rights in the TLB; the conservative model re-walks).
    pub spp_guarded: bool,
    /// This entry caches a 2 MiB translation: `gpa_page`/`hpa_page` are the
    /// 2 MiB-aligned *base* pages and the entry covers 512 consecutive 4K
    /// pages (real TLBs keep large-page translations in a separate array;
    /// so do we).
    pub huge: bool,
}

impl TlbEntry {
    /// Can a store use this entry without a (logging) micro-walk?
    pub fn store_fast_path(&self) -> bool {
        self.writable && self.guest_dirty && self.ept_dirty && !self.spp_guarded
    }

    pub fn hpa(&self, gva: Gva) -> Hpa {
        if self.huge {
            Hpa::from_page(self.hpa_page).add(gva.huge_offset())
        } else {
            Hpa::from_page(self.hpa_page).add(gva.offset())
        }
    }

    pub fn gpa(&self, gva: Gva) -> Gpa {
        if self.huge {
            Gpa::from_page(self.gpa_page).add(gva.huge_offset())
        } else {
            Gpa::from_page(self.gpa_page).add(gva.offset())
        }
    }
}

/// Per-vCPU TLB. Tagged by the CR3 that filled it; switching CR3 flushes
/// (we model a pre-PCID kernel, matching the paper's Linux 4.15 guest).
///
/// Capacity is unbounded by default (see the module docs for why that
/// never changes logging semantics); [`Tlb::with_capacity`] bounds it with
/// FIFO eviction for studies of walk-count sensitivity.
#[derive(Debug, Default)]
pub struct Tlb {
    entries: BTreeMap<u64, TlbEntry>,
    /// 2 MiB translations, keyed by `gva.huge_page()` — the separate
    /// large-page array of a real TLB. Exempt from the 4K capacity bound
    /// (huge entries are few and cover 512× the space each).
    huge_entries: BTreeMap<u64, TlbEntry>,
    /// FIFO of filled pages, used only when `capacity` is set (kept exact:
    /// stale keys are skipped at eviction).
    fill_order: std::collections::VecDeque<u64>,
    capacity: Option<usize>,
    cr3_tag: u64,
    hits: u64,
    misses: u64,
    flushes: u64,
    invlpgs: u64,
    evictions: u64,
    shootdowns: u64,
}

impl Tlb {
    pub fn new() -> Self {
        Self::default()
    }

    /// A TLB bounded to `capacity` translations, FIFO-evicted.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Look up the translation for `gva` under `cr3`.
    pub fn lookup(&mut self, cr3: Gpa, gva: Gva) -> Option<TlbEntry> {
        if self.cr3_tag != cr3.raw() {
            self.misses += 1;
            return None;
        }
        match self
            .entries
            .get(&gva.page())
            .or_else(|| self.huge_entries.get(&gva.huge_page()))
        {
            Some(e) => {
                self.hits += 1;
                Some(*e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-counting lookup: what `lookup` would return, without perturbing
    /// the hit/miss statistics. Used by the model checker's invariant and
    /// digest passes, which must observe without disturbing.
    pub fn peek(&self, cr3: Gpa, gva: Gva) -> Option<TlbEntry> {
        if self.cr3_tag != cr3.raw() {
            return None;
        }
        self.entries
            .get(&gva.page())
            .or_else(|| self.huge_entries.get(&gva.huge_page()))
            .copied()
    }

    /// Fold the behaviorally relevant TLB state (CR3 tag + cached
    /// translations with their permission/dirty flags) into `h`. Hit/miss
    /// statistics are deliberately excluded: they never feed back into
    /// logging decisions. BTreeMap iteration keeps the order deterministic.
    pub fn hash_state(&self, h: &mut StateHasher) {
        h.write_u64(self.cr3_tag);
        h.write_u64(self.entries.len() as u64);
        for (gva_page, e) in &self.entries {
            h.write_u64(*gva_page);
            h.write_u64(e.gpa_page);
            h.write_bool(e.writable);
            h.write_bool(e.guest_dirty);
            h.write_bool(e.ept_dirty);
            h.write_bool(e.spp_guarded);
        }
        // The large-page array is hashed only when populated so digests of
        // huge-free runs stay identical to the pre-huge-page format.
        if !self.huge_entries.is_empty() {
            h.write_u64(u64::MAX); // section marker, not a valid entry count
            h.write_u64(self.huge_entries.len() as u64);
            for (huge_page, e) in &self.huge_entries {
                h.write_u64(*huge_page);
                h.write_u64(e.gpa_page);
                h.write_bool(e.writable);
                h.write_bool(e.guest_dirty);
                h.write_bool(e.ept_dirty);
                h.write_bool(e.spp_guarded);
            }
        }
    }

    /// Install a translation (called by the walker after a successful walk).
    pub fn fill(&mut self, cr3: Gpa, gva: Gva, entry: TlbEntry) {
        if self.cr3_tag != cr3.raw() {
            // Different address space than the cached one: implicit flush.
            self.entries.clear();
            self.huge_entries.clear();
            self.fill_order.clear();
            self.cr3_tag = cr3.raw();
        }
        if entry.huge {
            self.huge_entries.insert(gva.huge_page(), entry);
            return;
        }
        if let Some(cap) = self.capacity {
            while self.entries.len() >= cap {
                // Evict the oldest still-resident fill.
                match self.fill_order.pop_front() {
                    Some(victim) => {
                        if self.entries.remove(&victim).is_some() {
                            self.evictions += 1;
                        }
                    }
                    None => break, // bookkeeping drained: nothing to evict
                }
            }
            self.fill_order.push_back(gva.page());
        }
        self.entries.insert(gva.page(), entry);
    }

    /// Full flush (mov-to-CR3 / clear_refs / PML drain).
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.huge_entries.clear();
        self.fill_order.clear();
        self.flushes += 1;
    }

    /// Single-page invalidation. As on real x86, invlpg drops *any* cached
    /// translation for the address — the covering 2 MiB entry included, so
    /// a demotion's invalidation cannot leave the stale huge translation
    /// serving the other 511 pages.
    pub fn invlpg(&mut self, gva: Gva) {
        self.entries.remove(&gva.page());
        self.huge_entries.remove(&gva.huge_page());
        self.invlpgs += 1;
    }

    /// Invalidate every cached translation pointing at `gpa_page`
    /// (used when the hypervisor changes an EPT mapping). A huge entry is
    /// dropped when the page falls anywhere in its 512-page span.
    pub fn invalidate_gpa_page(&mut self, gpa_page: u64) {
        self.entries.retain(|_, e| e.gpa_page != gpa_page);
        self.huge_entries
            .retain(|_, e| !(e.gpa_page..e.gpa_page + 512).contains(&gpa_page));
    }

    /// Remote half of a cross-vCPU TLB shootdown: invalidate one page on
    /// behalf of another vCPU's IPI. Same architectural effect as
    /// [`Tlb::invlpg`], but counted separately — the *initiator* charges the
    /// IPI cost, this vCPU only records that it serviced a shootdown.
    pub fn shootdown_invlpg(&mut self, gva: Gva) {
        self.entries.remove(&gva.page());
        self.huge_entries.remove(&gva.huge_page());
        self.shootdowns += 1;
    }

    /// Remote half of a full-flush shootdown (munmap / clear_refs batches).
    pub fn shootdown_flush_all(&mut self) {
        self.entries.clear();
        self.huge_entries.clear();
        self.fill_order.clear();
        self.shootdowns += 1;
    }

    /// Shootdown requests this TLB serviced on behalf of other vCPUs.
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }

    /// Cached 4K translations (the large-page array is counted separately
    /// by [`huge_len`](Self::huge_len), mirroring real TLB organisation).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Cached 2 MiB translations.
    pub fn huge_len(&self) -> usize {
        self.huge_entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.huge_entries.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(hpa_page: u64) -> TlbEntry {
        TlbEntry {
            gpa_page: 0x42,
            hpa_page,
            writable: true,
            guest_dirty: false,
            ept_dirty: false,
            spp_guarded: false,
            huge: false,
        }
    }

    fn huge_entry(gpa_page: u64, hpa_page: u64) -> TlbEntry {
        TlbEntry {
            gpa_page,
            hpa_page,
            writable: true,
            guest_dirty: true,
            ept_dirty: true,
            spp_guarded: false,
            huge: true,
        }
    }

    #[test]
    fn fill_then_hit() {
        let mut t = Tlb::new();
        let cr3 = Gpa(0x1000);
        assert!(t.lookup(cr3, Gva(0x7000)).is_none());
        t.fill(cr3, Gva(0x7000), entry(0x99));
        let e = t.lookup(cr3, Gva(0x7123)).unwrap();
        assert_eq!(e.hpa(Gva(0x7123)), Hpa((0x99 << 12) | 0x123));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn cr3_change_is_implicit_flush() {
        let mut t = Tlb::new();
        t.fill(Gpa(0x1000), Gva(0x7000), entry(1));
        assert!(t.lookup(Gpa(0x2000), Gva(0x7000)).is_none());
        t.fill(Gpa(0x2000), Gva(0x8000), entry(2));
        // old entry gone even if we switch back
        assert!(t.lookup(Gpa(0x1000), Gva(0x7000)).is_none());
    }

    #[test]
    fn flush_and_invlpg() {
        let mut t = Tlb::new();
        let cr3 = Gpa(0x1000);
        t.fill(cr3, Gva(0x1000), entry(1));
        t.fill(cr3, Gva(0x2000), entry(2));
        t.invlpg(Gva(0x1000));
        assert!(t.lookup(cr3, Gva(0x1000)).is_none());
        assert!(t.lookup(cr3, Gva(0x2000)).is_some());
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.flushes(), 1);
    }

    #[test]
    fn store_fast_path_requires_all_bits() {
        let mut e = entry(1);
        assert!(!e.store_fast_path());
        e.guest_dirty = true;
        assert!(!e.store_fast_path());
        e.ept_dirty = true;
        assert!(e.store_fast_path());
        e.spp_guarded = true;
        assert!(!e.store_fast_path(), "SPP pages never take the fast path");
        e.spp_guarded = false;
        e.writable = false;
        assert!(!e.store_fast_path());
    }

    #[test]
    fn bounded_tlb_evicts_fifo() {
        let mut t = Tlb::with_capacity(2);
        let cr3 = Gpa(0x1000);
        t.fill(cr3, Gva(0x1000), entry(1));
        t.fill(cr3, Gva(0x2000), entry(2));
        t.fill(cr3, Gva(0x3000), entry(3)); // evicts 0x1000
        assert!(t.lookup(cr3, Gva(0x1000)).is_none());
        assert!(t.lookup(cr3, Gva(0x2000)).is_some());
        assert!(t.lookup(cr3, Gva(0x3000)).is_some());
        assert_eq!(t.evictions(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn bounded_tlb_refill_after_invlpg() {
        let mut t = Tlb::with_capacity(2);
        let cr3 = Gpa(0x1000);
        t.fill(cr3, Gva(0x1000), entry(1));
        t.invlpg(Gva(0x1000));
        t.fill(cr3, Gva(0x2000), entry(2));
        t.fill(cr3, Gva(0x3000), entry(3));
        // 0x1000 is a stale FIFO key; eviction must skip it without error.
        t.fill(cr3, Gva(0x4000), entry(4));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn peek_does_not_count() {
        let mut t = Tlb::new();
        let cr3 = Gpa(0x1000);
        t.fill(cr3, Gva(0x7000), entry(0x99));
        assert!(t.peek(cr3, Gva(0x7000)).is_some());
        assert!(t.peek(cr3, Gva(0x8000)).is_none());
        assert!(t.peek(Gpa(0x2000), Gva(0x7000)).is_none());
        assert_eq!(t.hits(), 0);
        assert_eq!(t.misses(), 0);
    }

    #[test]
    fn hash_state_reflects_entries_not_stats() {
        let mut a = Tlb::new();
        let mut b = Tlb::new();
        let cr3 = Gpa(0x1000);
        a.fill(cr3, Gva(0x7000), entry(0x99));
        b.fill(cr3, Gva(0x7000), entry(0x99));
        // Different stats, same entries.
        let _ = a.lookup(cr3, Gva(0x7000));
        let digest = |t: &Tlb| {
            let mut h = StateHasher::new();
            t.hash_state(&mut h);
            h.finish()
        };
        assert_eq!(digest(&a), digest(&b));
        b.fill(cr3, Gva(0x8000), entry(0x77));
        assert_ne!(digest(&a), digest(&b));
    }

    #[test]
    fn shootdowns_invalidate_and_count_separately() {
        let mut t = Tlb::new();
        let cr3 = Gpa(0x1000);
        t.fill(cr3, Gva(0x1000), entry(1));
        t.fill(cr3, Gva(0x2000), entry(2));
        t.shootdown_invlpg(Gva(0x1000));
        assert!(t.peek(cr3, Gva(0x1000)).is_none());
        assert!(t.peek(cr3, Gva(0x2000)).is_some());
        t.shootdown_flush_all();
        assert!(t.is_empty());
        assert_eq!(t.shootdowns(), 2);
        // Local-flush and invlpg statistics are untouched by remote work.
        assert_eq!(t.flushes(), 0);
    }

    #[test]
    fn huge_fill_covers_512_pages() {
        let mut t = Tlb::new();
        let cr3 = Gpa(0x1000);
        // GVA 2M-region 3 → GPA pages 1024.., HPA pages 4096..
        let base = Gva(3 << 21);
        t.fill(cr3, base, huge_entry(1024, 4096));
        assert_eq!(t.huge_len(), 1);
        assert_eq!(t.len(), 0);
        // Any address inside the 2M region hits, with the huge offset.
        let probe = base.add(200 * 4096 + 0x321);
        let e = t.lookup(cr3, probe).unwrap();
        assert!(e.huge);
        assert_eq!(e.hpa(probe), Hpa::from_page(4096 + 200).add(0x321));
        assert_eq!(e.gpa(probe), Gpa::from_page(1024 + 200).add(0x321));
        // Just past the region misses.
        assert!(t.lookup(cr3, base.add(512 * 4096)).is_none());
    }

    #[test]
    fn invlpg_drops_covering_huge_entry() {
        let mut t = Tlb::new();
        let cr3 = Gpa(0x1000);
        let base = Gva(3 << 21);
        t.fill(cr3, base, huge_entry(1024, 4096));
        // invlpg of *any* covered page (the demotion protocol invalidates
        // the faulting page) must drop the whole huge translation.
        t.invlpg(base.add(77 * 4096));
        assert!(t.peek(cr3, base).is_none());
        t.fill(cr3, base, huge_entry(1024, 4096));
        t.shootdown_invlpg(base.add(9 * 4096));
        assert!(t.peek(cr3, base).is_none());
        assert_eq!(t.shootdowns(), 1);
    }

    #[test]
    fn invalidate_gpa_inside_huge_span() {
        let mut t = Tlb::new();
        let cr3 = Gpa(0x1000);
        t.fill(cr3, Gva(3 << 21), huge_entry(1024, 4096));
        t.fill(cr3, Gva(0x1000), entry(1)); // gpa_page 0x42
        t.invalidate_gpa_page(1024 + 511); // last page of the huge span
        assert_eq!(t.huge_len(), 0);
        assert!(t.peek(cr3, Gva(0x1000)).is_some());
        // A page just past the span leaves the entry alone.
        t.fill(cr3, Gva(3 << 21), huge_entry(1024, 4096));
        t.invalidate_gpa_page(1024 + 512);
        assert_eq!(t.huge_len(), 1);
    }

    #[test]
    fn flushes_clear_huge_entries_and_digest_gates_on_them() {
        let mut t = Tlb::new();
        let cr3 = Gpa(0x1000);
        let digest = |t: &Tlb| {
            let mut h = StateHasher::new();
            t.hash_state(&mut h);
            h.finish()
        };
        let empty = digest(&t);
        t.fill(cr3, Gva(3 << 21), huge_entry(1024, 4096));
        assert_ne!(digest(&t), empty, "huge entries must be digest-visible");
        t.flush_all();
        assert!(t.is_empty());
        t.fill(cr3, Gva(3 << 21), huge_entry(1024, 4096));
        t.shootdown_flush_all();
        assert!(t.is_empty());
        // CR3 switch implicitly flushes the large-page array too.
        t.fill(cr3, Gva(3 << 21), huge_entry(1024, 4096));
        t.fill(Gpa(0x2000), Gva(0x5000), entry(7));
        assert_eq!(t.huge_len(), 0);
    }

    #[test]
    fn invalidate_by_gpa() {
        let mut t = Tlb::new();
        let cr3 = Gpa(0x1000);
        t.fill(cr3, Gva(0x1000), entry(1));
        t.fill(
            cr3,
            Gva(0x2000),
            TlbEntry {
                gpa_page: 0x55,
                hpa_page: 2,
                writable: true,
                guest_dirty: true,
                ept_dirty: true,
                spp_guarded: false,
                huge: false,
            },
        );
        t.invalidate_gpa_page(0x42);
        assert!(t.lookup(cr3, Gva(0x1000)).is_none());
        assert!(t.lookup(cr3, Gva(0x2000)).is_some());
    }
}
