//! Virtual CPU state: VMX mode, VMCS, TLB, PML state, posted interrupts,
//! and the vmread/vmwrite instruction surface (including the EPML-extended
//! `vmwrite` that translates the guest PML buffer address through the EPT).

use crate::addr::{Gpa, Hpa};
use crate::ept::Ept;
use crate::error::MachineError;
use crate::phys::HostPhys;
use crate::pml::{PmlBuffer, PmlState};
use crate::vmcs::{exec_controls, Field, Vmcs, VmxMode};
use ooh_sim::{Event, Lane, SimCtx};
use std::collections::VecDeque;

/// The interrupt vector EPML uses for its virtual self-IPI, chosen in the
/// dynamic-IRQ range of the guest's IDT (the paper patches the guest
/// interrupt table to handle it).
pub const EPML_SELF_IPI_VECTOR: u8 = 0xEC;

/// One virtual CPU.
pub struct Vcpu {
    pub id: u32,
    /// Current execution mode (the hypervisor toggles this on exit/entry).
    pub mode: VmxMode,
    /// Guest page-table root currently loaded.
    pub cr3: Gpa,
    pub vmcs: Vmcs,
    pub tlb: crate::tlb::Tlb,
    pub pml: PmlState,
    /// Pending guest interrupt vectors (posted interrupts land here and the
    /// guest kernel drains them at its next interrupt window).
    pub pending_vectors: VecDeque<u8>,
    /// Whether the machine this vCPU runs on implements the EPML extension
    /// (set by the hypervisor at VM creation).
    pub epml_hw: bool,
}

impl Vcpu {
    pub fn new(id: u32) -> Self {
        Self {
            id,
            mode: VmxMode::NonRoot,
            cr3: Gpa::NULL,
            vmcs: Vmcs::new(),
            tlb: crate::tlb::Tlb::new(),
            pml: PmlState::default(),
            pending_vectors: VecDeque::new(),
            epml_hw: false,
        }
    }

    /// Load a new guest CR3 (address-space switch): flushes the TLB, as a
    /// pre-PCID kernel would.
    pub fn set_cr3(&mut self, ctx: &SimCtx, lane: Lane, cr3: Gpa) {
        if self.cr3 != cr3 {
            self.cr3 = cr3;
            self.tlb.flush_all();
            ctx.charge(lane, Event::TlbFlush);
        }
    }

    /// `vmread`, charging the shadowing fast-path cost when executed from
    /// the guest (paper metric M7).
    pub fn vmread(
        &mut self,
        ctx: &SimCtx,
        lane: Lane,
        field: Field,
    ) -> Result<u64, MachineError> {
        if self.mode == VmxMode::NonRoot {
            ctx.charge(lane, Event::Vmread);
        }
        // The PML index fields are live hardware state: reads observe the
        // logging circuit's current index, not the last value software wrote.
        let result = match field {
            Field::GuestPmlIndex if self.pml.guest.is_some() => {
                // Validate access rights through the normal path first.
                self.vmcs
                    .vmread(self.mode, field)
                    .map(|_| self.pml.guest.as_ref().expect("checked").index as u64)
            }
            Field::PmlIndex if self.pml.hyp.is_some() && self.mode == VmxMode::Root => {
                Ok(self.pml.hyp.as_ref().expect("checked").index as u64)
            }
            _ => self.vmcs.vmread(self.mode, field),
        };
        self.charge_denied_exit(ctx, lane, &result);
        result
    }

    /// A non-root vmread/vmwrite to a field outside the shadow permission
    /// bitmaps is not a shadow fast path: real hardware takes a vmexit so
    /// the hypervisor can emulate or inject a fault. Charge the exit/entry
    /// round trip before the error propagates, so the cost model reflects
    /// that denied fields pay the full trap price.
    fn charge_denied_exit<T>(&self, ctx: &SimCtx, lane: Lane, result: &Result<T, MachineError>) {
        if self.mode == VmxMode::NonRoot {
            if let Err(MachineError::VmcsAccessDenied { .. }) = result {
                ctx.charge(lane, Event::VmExit);
                ctx.charge(lane, Event::VmEntry);
            }
        }
    }

    /// `vmwrite`, with the two EPML microcode extensions:
    ///
    /// 1. a non-root write to [`Field::GuestPmlAddress`] carries a **GPA**;
    ///    the instruction translates it to an HPA through the EPT before
    ///    storing (so the guest never learns host physical addresses);
    /// 2. writes that change PML-related fields re-sync the hardware
    ///    [`PmlState`] (real hardware consults the VMCS directly; our model
    ///    caches the configuration in `PmlState` for the walker).
    pub fn vmwrite(
        &mut self,
        ctx: &SimCtx,
        lane: Lane,
        field: Field,
        value: u64,
        phys: &mut HostPhys,
        ept: &mut Ept,
    ) -> Result<(), MachineError> {
        if self.mode == VmxMode::NonRoot {
            ctx.charge(lane, Event::Vmwrite);
        }
        let value = if field == Field::GuestPmlAddress && self.mode == VmxMode::NonRoot {
            if !self.epml_hw {
                return Err(MachineError::EpmlNotSupported);
            }
            let gpa = Gpa(value);
            let hpa = ept
                .translate(phys, gpa)?
                .ok_or(MachineError::BadFrame { hpa: Hpa(value) })?;
            hpa.raw()
        } else {
            value
        };
        let result = self.vmcs.vmwrite(self.mode, field, value);
        self.charge_denied_exit(ctx, lane, &result);
        result?;
        self.sync_pml_from_vmcs();
        // Writes to the index fields program the live logging circuit (the
        // drain path resets the index to 511 this way).
        match field {
            Field::GuestPmlIndex => {
                if let Some(buf) = self.pml.guest.as_mut() {
                    buf.index = value as u16;
                }
            }
            Field::PmlIndex => {
                if let Some(buf) = self.pml.hyp.as_mut() {
                    buf.index = value as u16;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Mirror the VMCS PML configuration into the walker-facing [`PmlState`].
    pub fn sync_pml_from_vmcs(&mut self) {
        let controls = self.vmcs.effective(Field::SecondaryExecControls);

        // Hypervisor-level PML.
        let hyp_on = controls & exec_controls::ENABLE_PML != 0;
        let hyp_addr = self.vmcs.effective(Field::PmlAddress);
        self.pml.hyp_logging = hyp_on && hyp_addr != 0;
        match (&mut self.pml.hyp, hyp_addr) {
            (slot, 0) => *slot = None,
            (Some(buf), addr) if buf.base.raw() != addr => *buf = PmlBuffer::new(Hpa(addr)),
            (slot @ None, addr) => *slot = Some(PmlBuffer::new(Hpa(addr))),
            _ => {}
        }

        // Guest-level (EPML) PML — enabled via the guest-ownable EpmlControl
        // field, not the hypervisor-owned execution controls.
        let guest_on = self.epml_hw && self.vmcs.effective(Field::EpmlControl) != 0;
        let guest_addr = if self.epml_hw {
            self.vmcs.effective(Field::GuestPmlAddress)
        } else {
            0
        };
        self.pml.guest_logging = guest_on && guest_addr != 0;
        match (&mut self.pml.guest, guest_addr) {
            (slot, 0) => *slot = None,
            (Some(buf), addr) if buf.base.raw() != addr => *buf = PmlBuffer::new(Hpa(addr)),
            (slot @ None, addr) => *slot = Some(PmlBuffer::new(Hpa(addr))),
            _ => {}
        }
    }

    /// Post a virtual interrupt directly to the running guest (posted
    /// interrupts: no vmexit). Used by the EPML buffer-full self-IPI.
    pub fn post_interrupt(&mut self, ctx: &SimCtx, lane: Lane, vector: u8) {
        ctx.charge(lane, Event::PostedInterrupt);
        self.pending_vectors.push_back(vector);
    }

    /// Guest kernel: take the next pending interrupt vector, if any.
    pub fn take_interrupt(&mut self) -> Option<u8> {
        self.pending_vectors.pop_front()
    }
}

impl std::fmt::Debug for Vcpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vcpu")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("cr3", &self.cr3)
            .field("pending_vectors", &self.pending_vectors.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    fn rig() -> (HostPhys, Ept, Vcpu, SimCtx) {
        let mut phys = HostPhys::new(64 * PAGE_SIZE);
        let ept = Ept::new(&mut phys).unwrap();
        (phys, ept, Vcpu::new(0), SimCtx::new())
    }

    #[test]
    fn root_vmwrite_configures_hyp_pml() {
        let (mut phys, mut ept, mut vcpu, ctx) = rig();
        let buf = phys.alloc_frame().unwrap();
        vcpu.mode = VmxMode::Root;
        vcpu.vmwrite(&ctx, Lane::Hypervisor, Field::PmlAddress, buf.raw(), &mut phys, &mut ept)
            .unwrap();
        vcpu.vmwrite(
            &ctx,
            Lane::Hypervisor,
            Field::SecondaryExecControls,
            exec_controls::ENABLE_PML,
            &mut phys,
            &mut ept,
        )
        .unwrap();
        assert!(vcpu.pml.hyp_logging);
        assert_eq!(vcpu.pml.hyp.unwrap().base, buf);
        // Root-mode vmwrite charges nothing (it's ordinary hypervisor work).
        assert_eq!(ctx.counters().get(Event::Vmwrite), 0);
    }

    #[test]
    fn guest_vmwrite_to_guest_pml_address_translates_gpa() {
        let (mut phys, mut ept, mut vcpu, ctx) = rig();
        // Guest page at GPA 0x5000 backed by some host frame.
        let host = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), host).unwrap();
        vcpu.vmcs
            .attach_shadow(&[Field::GuestPmlAddress, Field::SecondaryExecControls]);
        vcpu.mode = VmxMode::NonRoot;
        vcpu.epml_hw = true;
        vcpu.vmwrite(&ctx, Lane::Kernel, Field::GuestPmlAddress, 0x5000, &mut phys, &mut ept)
            .unwrap();
        // The stored value is the HPA, not the GPA the guest provided.
        assert_eq!(
            vcpu.vmcs.effective(Field::GuestPmlAddress),
            host.raw()
        );
        assert_eq!(ctx.counters().get(Event::Vmwrite), 1);
    }

    #[test]
    fn guest_vmwrite_without_epml_hw_rejected() {
        let (mut phys, mut ept, mut vcpu, ctx) = rig();
        vcpu.vmcs.attach_shadow(&[Field::GuestPmlAddress]);
        vcpu.mode = VmxMode::NonRoot;
        assert!(matches!(
            vcpu.vmwrite(&ctx, Lane::Kernel, Field::GuestPmlAddress, 0x5000, &mut phys, &mut ept),
            Err(MachineError::EpmlNotSupported)
        ));
    }

    #[test]
    fn guest_toggles_epml_enable_via_shadow() {
        let (mut phys, mut ept, mut vcpu, ctx) = rig();
        let host = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), host).unwrap();
        vcpu.vmcs
            .attach_shadow(&[Field::GuestPmlAddress, Field::EpmlControl]);
        vcpu.mode = VmxMode::NonRoot;
        vcpu.epml_hw = true;
        vcpu.vmwrite(&ctx, Lane::Kernel, Field::GuestPmlAddress, 0x5000, &mut phys, &mut ept)
            .unwrap();
        vcpu.vmwrite(&ctx, Lane::Kernel, Field::EpmlControl, 1, &mut phys, &mut ept)
            .unwrap();
        assert!(vcpu.pml.guest_logging);
        vcpu.vmwrite(&ctx, Lane::Kernel, Field::EpmlControl, 0, &mut phys, &mut ept)
            .unwrap();
        assert!(!vcpu.pml.guest_logging);
        // Two sched toggles = 3 vmwrites total so far... count them exactly:
        assert_eq!(ctx.counters().get(Event::Vmwrite), 3);
    }

    /// The VMCS-shadowing permission contract (paper metric M7): fields in
    /// the shadow bitmaps are serviced by the shadow VMCS with no vmexit;
    /// everything else traps. `Guest PML Address` is the interesting one —
    /// EPML whitelists it so the OoH module can program the buffer base
    /// exit-free, but only after the hypervisor attaches the shadow.
    #[test]
    fn whitelisted_shadow_fields_avoid_vmexit() {
        let (mut phys, mut ept, mut vcpu, ctx) = rig();
        let host = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), host).unwrap();
        vcpu.vmcs.attach_shadow(&[
            Field::GuestPmlAddress,
            Field::GuestPmlIndex,
            Field::EpmlControl,
        ]);
        vcpu.mode = VmxMode::NonRoot;
        vcpu.epml_hw = true;
        vcpu.vmwrite(&ctx, Lane::Kernel, Field::GuestPmlAddress, 0x5000, &mut phys, &mut ept)
            .unwrap();
        vcpu.vmwrite(&ctx, Lane::Kernel, Field::GuestPmlIndex, 511, &mut phys, &mut ept)
            .unwrap();
        assert_eq!(
            vcpu.vmread(&ctx, Lane::Kernel, Field::GuestPmlIndex).unwrap(),
            511
        );
        // Shadow fast path: instruction costs only, never an exit/entry.
        assert_eq!(ctx.counters().get(Event::Vmwrite), 2);
        assert_eq!(ctx.counters().get(Event::Vmread), 1);
        assert_eq!(ctx.counters().get(Event::VmExit), 0);
        assert_eq!(ctx.counters().get(Event::VmEntry), 0);
    }

    #[test]
    fn denied_vmread_charges_the_vmexit_path() {
        let (_, _, mut vcpu, ctx) = rig();
        vcpu.mode = VmxMode::NonRoot;
        // No shadow attached: every non-root VMCS access is denied.
        assert!(matches!(
            vcpu.vmread(&ctx, Lane::Kernel, Field::PmlAddress),
            Err(MachineError::VmcsAccessDenied { non_root: true, .. })
        ));
        assert_eq!(ctx.counters().get(Event::Vmread), 1);
        assert_eq!(ctx.counters().get(Event::VmExit), 1);
        assert_eq!(ctx.counters().get(Event::VmEntry), 1);
    }

    #[test]
    fn denied_vmwrite_charges_the_vmexit_path() {
        let (mut phys, mut ept, mut vcpu, ctx) = rig();
        // Shadow attached, but SecondaryExecControls stays hypervisor-owned.
        vcpu.vmcs
            .attach_shadow(&[Field::GuestPmlAddress, Field::GuestPmlIndex]);
        vcpu.mode = VmxMode::NonRoot;
        assert!(matches!(
            vcpu.vmwrite(
                &ctx,
                Lane::Kernel,
                Field::SecondaryExecControls,
                exec_controls::ENABLE_PML,
                &mut phys,
                &mut ept,
            ),
            Err(MachineError::VmcsAccessDenied { non_root: true, .. })
        ));
        assert_eq!(ctx.counters().get(Event::VmExit), 1);
        assert_eq!(ctx.counters().get(Event::VmEntry), 1);
    }

    #[test]
    fn guest_pml_address_denied_without_shadow_whitelist() {
        let (mut phys, mut ept, mut vcpu, ctx) = rig();
        let host = phys.alloc_frame().unwrap();
        ept.map(&mut phys, Gpa(0x5000), host).unwrap();
        vcpu.mode = VmxMode::NonRoot;
        vcpu.epml_hw = true;
        // EPML hardware exists and the GPA translates, but the hypervisor
        // never whitelisted the field: the write must trap, not fast-path.
        assert!(matches!(
            vcpu.vmwrite(&ctx, Lane::Kernel, Field::GuestPmlAddress, 0x5000, &mut phys, &mut ept),
            Err(MachineError::VmcsAccessDenied { non_root: true, .. })
        ));
        assert_eq!(ctx.counters().get(Event::VmExit), 1);
        assert_eq!(ctx.counters().get(Event::VmEntry), 1);
        // Root-mode writes are ordinary hypervisor work: allowed, no charge.
        vcpu.mode = VmxMode::Root;
        vcpu.vmwrite(&ctx, Lane::Hypervisor, Field::GuestPmlAddress, host.raw(), &mut phys, &mut ept)
            .unwrap();
        assert_eq!(ctx.counters().get(Event::VmExit), 1);
    }

    #[test]
    fn posted_interrupt_queue() {
        let (_, _, mut vcpu, ctx) = rig();
        assert!(vcpu.take_interrupt().is_none());
        vcpu.post_interrupt(&ctx, Lane::Kernel, EPML_SELF_IPI_VECTOR);
        assert_eq!(vcpu.take_interrupt(), Some(EPML_SELF_IPI_VECTOR));
        assert!(vcpu.take_interrupt().is_none());
        assert_eq!(ctx.counters().get(Event::PostedInterrupt), 1);
    }

    #[test]
    fn set_cr3_flushes_tlb_once() {
        let (_, _, mut vcpu, ctx) = rig();
        vcpu.set_cr3(&ctx, Lane::Kernel, Gpa(0x1000));
        vcpu.set_cr3(&ctx, Lane::Kernel, Gpa(0x1000)); // no-op
        vcpu.set_cr3(&ctx, Lane::Kernel, Gpa(0x2000));
        assert_eq!(ctx.counters().get(Event::TlbFlush), 2);
    }
}
