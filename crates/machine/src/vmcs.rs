//! Virtual Machine Control Structure, with VMCS shadowing.
//!
//! We model the subset of VMCS state the OoH designs touch:
//!
//! * the PML execution control and its `PML Address` / `PML Index` fields;
//! * the EPML extension's `Guest PML Address` / `Guest PML Index` fields and
//!   its enable bit (new secondary execution control);
//! * VMCS shadowing: an ordinary VMCS may link a shadow VMCS; `vmread` /
//!   `vmwrite` executed in vmx non-root mode are served from the shadow for
//!   fields whitelisted in the read/write bitmaps, without a vmexit — the
//!   mechanism EPML rides to keep the hypervisor off the critical path;
//! * the posted-interrupt notification vector used for EPML's self-IPI.

use crate::error::MachineError;
use std::collections::BTreeMap;

/// VMCS field identifiers (a curated subset; encodings are symbolic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Field {
    /// Secondary processor-based execution controls (bit flags below).
    SecondaryExecControls = 0x401E,
    /// 64-bit HPA of the hypervisor-level PML buffer.
    PmlAddress = 0x200E,
    /// 16-bit guest-state PML index.
    PmlIndex = 0x0812,
    /// EPML: 64-bit address of the guest-level PML buffer. Written by the
    /// guest as a **GPA**; the extended `vmwrite` microcode translates it to
    /// an HPA through the EPT before storing (see the paper §IV-D).
    GuestPmlAddress = 0x2F00,
    /// EPML: 16-bit guest-level PML index.
    GuestPmlIndex = 0x2F02,
    /// EPML: guest-level logging enable (nonzero = on). A separate field —
    /// not a bit in [`Field::SecondaryExecControls`] — so the hypervisor can
    /// whitelist it for shadow `vmwrite` without also handing the guest the
    /// hypervisor-owned PML/shadowing enables (the §V isolation argument).
    EpmlControl = 0x2F04,
    /// Link pointer to the shadow VMCS (sentinel ~0 when none).
    VmcsLinkPointer = 0x2800,
    /// Posted-interrupt notification vector.
    PostedIntVector = 0x0002,
    /// Posted-interrupt descriptor address.
    PostedIntDescAddr = 0x2016,
}

impl Field {
    pub const ALL: &'static [Field] = &[
        Field::SecondaryExecControls,
        Field::PmlAddress,
        Field::PmlIndex,
        Field::GuestPmlAddress,
        Field::GuestPmlIndex,
        Field::EpmlControl,
        Field::VmcsLinkPointer,
        Field::PostedIntVector,
        Field::PostedIntDescAddr,
    ];

    pub fn encoding(self) -> u32 {
        self as u32
    }
}

/// Bits of [`Field::SecondaryExecControls`].
pub mod exec_controls {
    /// Enable hypervisor-level PML (real VT-x bit 17).
    pub const ENABLE_PML: u64 = 1 << 17;
    /// Enable VMCS shadowing (real VT-x bit 14).
    pub const VMCS_SHADOWING: u64 = 1 << 14;
    /// Posted interrupts enabled.
    pub const POSTED_INTERRUPTS: u64 = 1 << 31;
}

/// Link-pointer sentinel for "no shadow VMCS".
pub const NO_SHADOW: u64 = u64::MAX;

/// One VMCS region's field storage.
#[derive(Debug, Clone, Default)]
pub struct VmcsData {
    fields: BTreeMap<u32, u64>,
}

impl VmcsData {
    pub fn read(&self, field: Field) -> u64 {
        if field == Field::VmcsLinkPointer {
            return *self.fields.get(&field.encoding()).unwrap_or(&NO_SHADOW);
        }
        *self.fields.get(&field.encoding()).unwrap_or(&0)
    }

    pub fn write(&mut self, field: Field, value: u64) {
        self.fields.insert(field.encoding(), value);
    }
}

/// An ordinary VMCS plus (optionally) its linked shadow VMCS and the
/// shadow-access bitmaps.
#[derive(Debug, Default)]
pub struct Vmcs {
    /// The ordinary VMCS — only vmx-root software may touch it directly.
    pub ordinary: VmcsData,
    /// The linked shadow VMCS, if shadowing is configured.
    pub shadow: Option<Box<VmcsData>>,
    /// Fields the guest may `vmread` from the shadow without a vmexit.
    shadow_read: Vec<Field>,
    /// Fields the guest may `vmwrite` to the shadow without a vmexit.
    shadow_write: Vec<Field>,
}

/// Which CPU mode is executing the vmread/vmwrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmxMode {
    /// vmx root (the hypervisor).
    Root,
    /// vmx non-root (the guest).
    NonRoot,
}

impl Vmcs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Is VMCS shadowing currently enabled in the execution controls?
    pub fn shadowing_enabled(&self) -> bool {
        self.ordinary.read(Field::SecondaryExecControls) & exec_controls::VMCS_SHADOWING != 0
            && self.shadow.is_some()
    }

    /// Hypervisor: create/attach a shadow VMCS and whitelist `fields` for
    /// guest access. (In hardware this is: allocate the shadow region, point
    /// the link pointer at it, and program the vmread/vmwrite bitmaps.)
    pub fn attach_shadow(&mut self, fields: &[Field]) {
        self.shadow = Some(Box::default());
        self.shadow_read = fields.to_vec();
        self.shadow_write = fields.to_vec();
        let ctrl = self.ordinary.read(Field::SecondaryExecControls);
        self.ordinary.write(
            Field::SecondaryExecControls,
            ctrl | exec_controls::VMCS_SHADOWING,
        );
        self.ordinary.write(Field::VmcsLinkPointer, 0x1000); // symbolic, non-sentinel
    }

    /// Hypervisor: detach the shadow (deactivating shadowing).
    pub fn detach_shadow(&mut self) {
        self.shadow = None;
        self.shadow_read.clear();
        self.shadow_write.clear();
        let ctrl = self.ordinary.read(Field::SecondaryExecControls);
        self.ordinary.write(
            Field::SecondaryExecControls,
            ctrl & !exec_controls::VMCS_SHADOWING,
        );
        self.ordinary.write(Field::VmcsLinkPointer, NO_SHADOW);
    }

    /// `vmread` with mode semantics. Root mode reads the ordinary VMCS;
    /// non-root mode reads the shadow if the field is whitelisted, else the
    /// access is denied (real hardware: vmexit).
    pub fn vmread(&self, mode: VmxMode, field: Field) -> Result<u64, MachineError> {
        match mode {
            VmxMode::Root => Ok(self.ordinary.read(field)),
            VmxMode::NonRoot => {
                if self.shadowing_enabled() && self.shadow_read.contains(&field) {
                    Ok(self
                        .shadow
                        .as_ref()
                        .expect("shadowing_enabled implies shadow")
                        .read(field))
                } else {
                    Err(MachineError::VmcsAccessDenied {
                        encoding: field.encoding(),
                        non_root: true,
                    })
                }
            }
        }
    }

    /// `vmwrite` with mode semantics (see [`vmread`](Self::vmread)).
    pub fn vmwrite(
        &mut self,
        mode: VmxMode,
        field: Field,
        value: u64,
    ) -> Result<(), MachineError> {
        match mode {
            VmxMode::Root => {
                self.ordinary.write(field, value);
                Ok(())
            }
            VmxMode::NonRoot => {
                if self.shadowing_enabled() && self.shadow_write.contains(&field) {
                    self.shadow
                        .as_mut()
                        .expect("shadowing_enabled implies shadow")
                        .write(field, value);
                    Ok(())
                } else {
                    Err(MachineError::VmcsAccessDenied {
                        encoding: field.encoding(),
                        non_root: true,
                    })
                }
            }
        }
    }

    /// The value the *hardware* uses for `field` while executing the guest:
    /// guest-owned (shadow-whitelisted) fields are taken from the shadow
    /// VMCS when shadowing is on — this is how the EPML enable bit and the
    /// guest PML buffer address become guest-controlled without vmexits.
    pub fn effective(&self, field: Field) -> u64 {
        if self.shadowing_enabled() && self.shadow_write.contains(&field) {
            self.shadow
                .as_ref()
                .expect("shadowing_enabled implies shadow")
                .read(field)
        } else {
            self.ordinary.read(field)
        }
    }

    /// Hardware-internal update of an effective field (e.g. the PML index
    /// after a log): writes to wherever `effective` reads from.
    pub fn hw_write(&mut self, field: Field, value: u64) {
        if self.shadowing_enabled() && self.shadow_write.contains(&field) {
            self.shadow
                .as_mut()
                .expect("shadowing_enabled implies shadow")
                .write(field, value);
        } else {
            self.ordinary.write(field, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_accesses_ordinary() {
        let mut v = Vmcs::new();
        v.vmwrite(VmxMode::Root, Field::PmlAddress, 0xABC000).unwrap();
        assert_eq!(v.vmread(VmxMode::Root, Field::PmlAddress).unwrap(), 0xABC000);
    }

    #[test]
    fn non_root_denied_without_shadowing() {
        let v = Vmcs::new();
        assert!(matches!(
            v.vmread(VmxMode::NonRoot, Field::PmlIndex),
            Err(MachineError::VmcsAccessDenied { non_root: true, .. })
        ));
    }

    #[test]
    fn shadow_whitelist_grants_non_root_access() {
        let mut v = Vmcs::new();
        v.attach_shadow(&[Field::GuestPmlAddress, Field::GuestPmlIndex]);
        v.vmwrite(VmxMode::NonRoot, Field::GuestPmlAddress, 0x7000)
            .unwrap();
        assert_eq!(
            v.vmread(VmxMode::NonRoot, Field::GuestPmlAddress).unwrap(),
            0x7000
        );
        // Non-whitelisted field still denied.
        assert!(v.vmread(VmxMode::NonRoot, Field::PmlAddress).is_err());
    }

    #[test]
    fn shadow_and_ordinary_are_distinct_regions() {
        let mut v = Vmcs::new();
        v.attach_shadow(&[Field::GuestPmlAddress]);
        v.vmwrite(VmxMode::Root, Field::GuestPmlAddress, 1).unwrap();
        v.vmwrite(VmxMode::NonRoot, Field::GuestPmlAddress, 2).unwrap();
        assert_eq!(v.vmread(VmxMode::Root, Field::GuestPmlAddress).unwrap(), 1);
        assert_eq!(
            v.vmread(VmxMode::NonRoot, Field::GuestPmlAddress).unwrap(),
            2
        );
        // Hardware sees the guest-owned (shadow) value.
        assert_eq!(v.effective(Field::GuestPmlAddress), 2);
    }

    #[test]
    fn effective_falls_back_to_ordinary() {
        let mut v = Vmcs::new();
        v.vmwrite(VmxMode::Root, Field::PmlAddress, 0x123000).unwrap();
        assert_eq!(v.effective(Field::PmlAddress), 0x123000);
    }

    #[test]
    fn detach_restores_denial() {
        let mut v = Vmcs::new();
        v.attach_shadow(&[Field::GuestPmlIndex]);
        v.vmwrite(VmxMode::NonRoot, Field::GuestPmlIndex, 500).unwrap();
        v.detach_shadow();
        assert!(v.vmread(VmxMode::NonRoot, Field::GuestPmlIndex).is_err());
        assert!(!v.shadowing_enabled());
        assert_eq!(v.ordinary.read(Field::VmcsLinkPointer), NO_SHADOW);
    }

    #[test]
    fn hw_write_targets_effective_location() {
        let mut v = Vmcs::new();
        v.attach_shadow(&[Field::GuestPmlIndex]);
        v.hw_write(Field::GuestPmlIndex, 42);
        assert_eq!(v.vmread(VmxMode::NonRoot, Field::GuestPmlIndex).unwrap(), 42);
        v.detach_shadow();
        v.hw_write(Field::PmlIndex, 7);
        assert_eq!(v.vmread(VmxMode::Root, Field::PmlIndex).unwrap(), 7);
    }

    #[test]
    fn link_pointer_defaults_to_sentinel() {
        let v = Vmcs::new();
        assert_eq!(v.ordinary.read(Field::VmcsLinkPointer), NO_SHADOW);
    }
}
