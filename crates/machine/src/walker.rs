//! The MMU: nested (guest PT + EPT) page walks with architectural A/D-bit
//! side effects and the PML logging circuit.
//!
//! This is the component the EPML hardware extension modifies, and the one
//! whose event stream everything else in the reproduction hangs off:
//!
//! * a store that sets a **leaf EPT dirty bit 0→1** appends the *GPA* to the
//!   hypervisor-level PML buffer (standard PML);
//! * under EPML, a store that sets the **guest leaf PTE dirty bit 0→1**
//!   additionally appends the *GVA* to the guest-level PML buffer (the
//!   paper's modified page-walk circuit);
//! * a buffer filling produces a [`PmlEvent`] — a vmexit for the hypervisor
//!   buffer, a virtual self-IPI for the guest buffer — which the caller
//!   dispatches to the appropriate handler.
//!
//! Guest page-table pages live in guest physical memory, so the walker's own
//! A/D-bit updates are guest-physical *writes* that themselves set EPT dirty
//! bits and can be PML-logged (true of real hardware; the OoH library
//! filters such addresses out, and our reproduction keeps that noise).

use crate::addr::{Gpa, Gva, Hpa, HUGE_PAGE_PAGES};
use crate::ept::Ept;
use crate::error::{Fault, MachineError};
use crate::phys::HostPhys;
use crate::pml::{LogOutcome, PmlEvent, PmlState};
use crate::pte::{EptEntry, Pte};
use crate::spp::SppTable;
use crate::tlb::{Tlb, TlbEntry};
use ooh_sim::{Event, Lane, SimCtx};

/// Result of a successful guest access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOk {
    /// Final host-physical address of the byte addressed by the GVA.
    pub hpa: Hpa,
    /// The guest-physical address it went through.
    pub gpa: Gpa,
    /// PML events raised by this access (at most one per buffer).
    pub events: Vec<PmlEvent>,
}

/// Mutable view of everything a page walk touches.
pub struct Mmu<'a> {
    pub phys: &'a mut HostPhys,
    pub ept: &'a mut Ept,
    pub tlb: &'a mut Tlb,
    pub pml: &'a mut PmlState,
    pub ctx: &'a SimCtx,
    /// Lane charged for MMU time (whoever is executing).
    pub lane: Lane,
    /// Machine supports the EPML extension (GVA logging + guest buffer).
    pub epml_hw: bool,
    /// The VM's sub-page permission table (None = SPP not in use).
    pub spp: Option<&'a SppTable>,
    /// Split-on-dirty policy armed: the first *logged* write to a still-clean
    /// 2 MiB mapping raises [`Fault::HugeDirtyWrite`] instead of setting any
    /// A/D bit, so the kernel can demote the region to 4K before the write
    /// retries and logs at page granularity. Off (the default) preserves
    /// pre-huge-page behaviour bit-for-bit.
    pub split_on_dirty: bool,
}

impl Mmu<'_> {
    /// Perform a guest data access at `gva` under page-table root `cr3`.
    ///
    /// Outer `Err` = model misuse; inner `Err` = architectural fault to be
    /// handled by the guest kernel / hypervisor and retried.
    pub fn access(
        &mut self,
        cr3: Gpa,
        gva: Gva,
        write: bool,
    ) -> Result<Result<AccessOk, Fault>, MachineError> {
        // --- TLB fast path ------------------------------------------------
        if let Some(entry) = self.tlb.lookup(cr3, gva) {
            let usable = if write {
                entry.store_fast_path()
            } else {
                true
            };
            if usable {
                if write {
                    self.check_write_fast_path(cr3, gva, &entry)?;
                }
                self.ctx.charge(self.lane, Event::TlbHit);
                return Ok(Ok(AccessOk {
                    hpa: entry.hpa(gva),
                    gpa: entry.gpa(gva),
                    events: Vec::new(),
                }));
            }
        }

        // --- full nested walk ----------------------------------------------
        let _span = self
            .ctx
            .span(ooh_sim::ScopeKind::Op, "page_walk", gva.page());
        self.ctx.charge(self.lane, Event::PageWalk);
        let mut events = Vec::new();

        // Walk the guest page table (each PTE read is a guest-physical read).
        let mut table = cr3;
        let mut leaf_slot_gpa = Gpa::NULL;
        let mut pte = Pte::empty();
        for level in (0..4).rev() {
            let slot = table.add(gva.pt_index(level) as u64 * 8);
            let raw = match self.read_guest_phys_u64(slot)? {
                Ok(v) => v,
                Err(f) => return Ok(Err(f)),
            };
            let entry = Pte(raw);
            if !entry.is_present() {
                return Ok(Err(Fault::NotPresent { gva, level }));
            }
            if level == 1 && entry.is_huge() {
                // PS bit: this level-1 entry is a 2 MiB leaf; the walk
                // terminates here, one level early.
                leaf_slot_gpa = slot;
                pte = entry;
                break;
            }
            if level == 0 {
                leaf_slot_gpa = slot;
                pte = entry;
            } else {
                table = entry.frame();
            }
        }

        // Permission check at the leaf. userfaultfd write-protection is
        // modeled as Linux does it: the UFFD_WP software bit forces the
        // write fault even though the VMA is writable.
        if write && (!pte.is_writable() || pte.is_uffd_wp()) {
            return Ok(Err(Fault::WriteProtected { gva }));
        }

        // SPP: sub-page write permission check. It must precede the A/D
        // updates — a denied write leaves no architectural trace, otherwise
        // a pre-set dirty bit would suppress PML logging of a later
        // legitimate write to the same page.
        let data_gpa = if pte.is_huge() {
            pte.frame().add(gva.huge_offset())
        } else {
            pte.frame().add(gva.offset())
        };
        if write {
            if let Some(spp) = self.spp {
                if !spp.write_allowed(data_gpa) {
                    return Ok(Err(Fault::SppViolation {
                        gva,
                        gpa: data_gpa,
                        subpage: SppTable::subpage_of(data_gpa),
                    }));
                }
            }
        }

        // Split-on-dirty pre-check. It must run BEFORE any architectural
        // mutation: once a D bit is set (or a PML entry written) the 0→1
        // transition is consumed and the retried access after demotion
        // would neither re-log nor re-fault — the write would be lost to
        // every tracker. A logged write is about to happen at 2 MiB
        // granularity iff a still-clean huge entry sits on an armed logging
        // path; fault out so the kernel can demote first.
        if write && self.split_on_dirty {
            if pte.is_huge() && !pte.is_dirty() && self.epml_hw && self.pml.guest_logging {
                return Ok(Err(Fault::HugeDirtyWrite {
                    gva,
                    gpa: data_gpa.huge_base(),
                }));
            }
            if self.pml.hyp_logging {
                // Read-only peek — ept.lookup sets no A/D bits.
                if let Some((_, e)) = self.ept.lookup(self.phys, data_gpa)? {
                    if e.is_huge() && !e.is_dirty() {
                        return Ok(Err(Fault::HugeDirtyWrite {
                            gva,
                            gpa: data_gpa.huge_base(),
                        }));
                    }
                }
            }
        }

        // Guest A/D update (hardware sets A always, D on write).
        let guest_d_transition = write && !pte.is_dirty();
        let mut new_pte = pte.with(Pte::ACCESSED);
        if write {
            new_pte = new_pte.with(Pte::DIRTY);
        }
        if new_pte != pte {
            if let Err(f) = self.write_guest_phys_u64(leaf_slot_gpa, new_pte.0, &mut events)? {
                return Ok(Err(f));
            }
        }

        // EPT leaf for the data page.
        let Some((ept_slot, ept_entry)) = self.ept.lookup(self.phys, data_gpa)? else {
            return Ok(Err(Fault::EptViolation {
                gpa: data_gpa,
                write,
            }));
        };

        let ept_a_transition = !ept_entry.is_accessed();
        let ept_d_transition = write && !ept_entry.is_dirty();
        let mut new_ept = ept_entry.with(EptEntry::ACCESSED);
        if write {
            new_ept = new_ept.with(EptEntry::DIRTY);
        }
        if new_ept != ept_entry {
            self.phys.write_u64(ept_slot, new_ept.0)?;
        }

        // --- the PML circuit --------------------------------------------------
        if ept_d_transition {
            self.log_hyp(data_gpa.page_base(), true, &mut events)?;
        } else if ept_a_transition && self.pml.log_accesses {
            // PML-R: access logging for working-set estimation (a dirty
            // transition already logged above; don't double-log).
            self.log_hyp(data_gpa.page_base(), false, &mut events)?;
        }
        if guest_d_transition && self.epml_hw {
            self.log_guest(gva.page_base(), &mut events)?;
        }

        // Host-physical 4K frame of the data page (a huge EPT leaf maps the
        // whole 2 MiB region; index the covered frame).
        let hpa_page = if ept_entry.is_huge() {
            ept_entry.frame().page() + data_gpa.page() % HUGE_PAGE_PAGES
        } else {
            ept_entry.frame().page()
        };

        // TLB fill with post-access state. A translation is cached at 2 MiB
        // only when BOTH levels still map it huge — after a one-sided
        // demotion the region's frames may diverge page by page, so the
        // smaller granularity governs what may be cached.
        let cache_huge = pte.is_huge() && ept_entry.is_huge();
        self.tlb.fill(
            cr3,
            gva,
            TlbEntry {
                gpa_page: if cache_huge {
                    data_gpa.huge_base().page()
                } else {
                    data_gpa.page()
                },
                hpa_page: if cache_huge {
                    ept_entry.frame().page()
                } else {
                    hpa_page
                },
                writable: pte.is_writable() && !pte.is_uffd_wp(),
                guest_dirty: new_pte.is_dirty(),
                ept_dirty: new_ept.is_dirty(),
                spp_guarded: self
                    .spp
                    .map(|s| s.is_guarded(data_gpa))
                    .unwrap_or(false),
                huge: cache_huge,
            },
        );

        Ok(Ok(AccessOk {
            hpa: Hpa::from_page(hpa_page).add(gva.offset()),
            gpa: data_gpa,
            events,
        }))
    }

    /// Guest-physical read (kernel or MMU initiated): translates through the
    /// EPT, setting the accessed bit.
    pub fn read_guest_phys_u64(&mut self, gpa: Gpa) -> Result<Result<u64, Fault>, MachineError> {
        let Some((slot, entry)) = self.ept.lookup(self.phys, gpa)? else {
            return Ok(Err(Fault::EptViolation { gpa, write: false }));
        };
        if !entry.is_accessed() {
            self.phys
                .write_u64(slot, entry.with(EptEntry::ACCESSED).0)?;
        }
        let fa = if entry.is_huge() {
            entry.frame().add(gpa.huge_offset())
        } else {
            entry.frame().add(gpa.offset())
        };
        let v = self.phys.read_u64(fa)?;
        Ok(Ok(v))
    }

    /// Guest-physical write: translates through the EPT, sets A/D, and logs
    /// the GPA through PML on a dirty transition (page-table pages and other
    /// kernel-touched guest memory are logged exactly like data pages).
    pub fn write_guest_phys_u64(
        &mut self,
        gpa: Gpa,
        value: u64,
        events: &mut Vec<PmlEvent>,
    ) -> Result<Result<(), Fault>, MachineError> {
        let Some((slot, entry)) = self.ept.lookup(self.phys, gpa)? else {
            return Ok(Err(Fault::EptViolation { gpa, write: true }));
        };
        let d_transition = !entry.is_dirty();
        let new = entry.with(EptEntry::ACCESSED | EptEntry::DIRTY);
        if new != entry {
            self.phys.write_u64(slot, new.0)?;
        }
        let fa = if entry.is_huge() {
            entry.frame().add(gpa.huge_offset())
        } else {
            entry.frame().add(gpa.offset())
        };
        self.phys.write_u64(fa, value)?;
        if d_transition {
            self.log_hyp(gpa.page_base(), true, events)?;
        }
        Ok(Ok(()))
    }

    /// `dirty_transition` distinguishes D-bit logs from PML-R A-bit logs:
    /// only the former feed the one-log-per-transition shadow invariant.
    fn log_hyp(
        &mut self,
        gpa: Gpa,
        dirty_transition: bool,
        events: &mut Vec<PmlEvent>,
    ) -> Result<(), MachineError> {
        if !self.pml.hyp_logging {
            return Ok(());
        }
        let Some(buf) = self.pml.hyp.as_mut() else {
            return Ok(());
        };
        self.ctx.charge(self.lane, Event::PmlLogGpa);
        let outcome = buf.log(self.phys, gpa.raw())?;
        match outcome {
            LogOutcome::Logged => {}
            LogOutcome::LoggedLastSlot | LogOutcome::Full => {
                events.push(PmlEvent::HypBufferFull);
            }
        }
        // A Full outcome wrote nothing, so it does not count as "logged".
        if dirty_transition && outcome != LogOutcome::Full {
            self.pml.note_hyp_dirty_logged(gpa.page());
        }
        Ok(())
    }

    fn log_guest(&mut self, gva: Gva, events: &mut Vec<PmlEvent>) -> Result<(), MachineError> {
        if !self.pml.guest_logging {
            return Ok(());
        }
        let Some(buf) = self.pml.guest.as_mut() else {
            return Ok(());
        };
        self.ctx.charge(self.lane, Event::PmlLogGva);
        let outcome = buf.log(self.phys, gva.raw())?;
        match outcome {
            LogOutcome::Logged => {}
            LogOutcome::LoggedLastSlot | LogOutcome::Full => {
                events.push(PmlEvent::GuestBufferFull);
            }
        }
        if outcome != LogOutcome::Full {
            self.pml.note_guest_dirty_logged(gva.page());
        }
        Ok(())
    }

    /// `debug-invariants` only: a TLB hit is about to let a store complete
    /// without a walk, on the cached claim that both dirty bits are already
    /// set (`store_fast_path`). Verify the claim against the architectural
    /// state — if a PML drain cleared a dirty bit but left this translation
    /// cached, the store would go unlogged and the tracker would miss the
    /// page. Reads raw PTE/EPT words only (no A/D side effects, no charges).
    fn check_write_fast_path(
        &mut self,
        cr3: Gpa,
        gva: Gva,
        entry: &TlbEntry,
    ) -> Result<(), MachineError> {
        if !cfg!(feature = "debug-invariants") {
            return Ok(());
        }
        let data_gpa = entry.gpa(gva);
        match self.ept.lookup(self.phys, data_gpa)? {
            Some((_, e)) => assert!(
                e.is_dirty(),
                "TLB invariant violated: write fast path for {gva:?} -> {data_gpa:?}, but the \
                 EPT dirty bit is clear — a drain flushed this page and the stale TLB entry \
                 would suppress PML re-logging"
            ),
            None => panic!(
                "TLB invariant violated: cached translation for unmapped GPA {data_gpa:?}"
            ),
        }
        // Guest-PTE side (the EPML guest buffer's log trigger).
        let mut table = cr3;
        for level in (0..4).rev() {
            let slot = table.add(gva.pt_index(level) as u64 * 8);
            let Some(hslot) = self.ept.translate(self.phys, slot)? else {
                return Ok(());
            };
            let e = Pte(self.phys.read_u64(hslot)?);
            if !e.is_present() {
                return Ok(());
            }
            if level == 0 || (level == 1 && e.is_huge()) {
                assert!(
                    e.is_dirty(),
                    "TLB invariant violated: write fast path for {gva:?}, but the guest PTE \
                     dirty bit is clear — the OoH module drained this page and the stale TLB \
                     entry would suppress guest-buffer re-logging"
                );
                return Ok(());
            }
            table = e.frame();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;
    use crate::pml::PmlBuffer;

    /// Build a tiny "guest": identity-ish EPT, one guest page table mapping
    /// `GVA 0x40000000+n*4K → GPA 0x1000*n (data region)`.
    struct Rig {
        phys: HostPhys,
        ept: Ept,
        tlb: Tlb,
        pml: PmlState,
        ctx: SimCtx,
        cr3: Gpa,
        next_gpa: u64,
    }

    impl Rig {
        fn new() -> Self {
            let mut phys = HostPhys::new(4096 * PAGE_SIZE);
            let mut ept = Ept::new(&mut phys).unwrap();
            let mut next_gpa = 0x100; // guest frame numbers
            // Allocate + map the guest's root page table page.
            let cr3_gpa = Gpa::from_page(next_gpa);
            next_gpa += 1;
            let f = phys.alloc_frame().unwrap();
            ept.map(&mut phys, cr3_gpa, f).unwrap();
            Self {
                phys,
                ept,
                tlb: Tlb::new(),
                pml: PmlState::default(),
                ctx: SimCtx::new(),
                cr3: cr3_gpa,
                next_gpa,
            }
        }

        fn alloc_guest_page(&mut self) -> Gpa {
            let gpa = Gpa::from_page(self.next_gpa);
            self.next_gpa += 1;
            let f = self.phys.alloc_frame().unwrap();
            self.ept.map(&mut self.phys, gpa, f).unwrap();
            gpa
        }

        /// Map `gva → data gpa` in the guest PT, allocating table pages.
        fn map_gva(&mut self, gva: Gva, flags: u64) -> Gpa {
            let data = self.alloc_guest_page();
            let mut table = self.cr3;
            for level in (1..4).rev() {
                let slot = table.add(gva.pt_index(level) as u64 * 8);
                let hslot = self.ept.translate(&self.phys, slot).unwrap().unwrap();
                let raw = self.phys.read_u64(hslot).unwrap();
                let e = Pte(raw);
                table = if e.is_present() {
                    e.frame()
                } else {
                    let t = self.alloc_guest_page();
                    self.phys.write_u64(hslot, Pte::table(t).0).unwrap();
                    t
                };
            }
            let slot = table.add(gva.pt_index(0) as u64 * 8);
            let hslot = self.ept.translate(&self.phys, slot).unwrap().unwrap();
            self.phys
                .write_u64(hslot, Pte::leaf(data, flags).0)
                .unwrap();
            data
        }

        /// Map a 2 MiB-aligned `gva` as a guest 2M leaf over a fresh
        /// 2M-aligned 512-page GPA region; the EPT side is mapped as one
        /// huge leaf when `ept_huge`, else 512 individual 4K leaves.
        fn map_gva_huge(&mut self, gva: Gva, flags: u64, ept_huge: bool) -> Gpa {
            assert!(gva.is_huge_aligned());
            let base_page = self.next_gpa.next_multiple_of(512);
            self.next_gpa = base_page + 512;
            let gpa = Gpa::from_page(base_page);
            if ept_huge {
                let hpa = self.phys.alloc_frames_contiguous(512, 512).unwrap();
                self.ept.map_huge(&mut self.phys, gpa, hpa).unwrap();
            } else {
                for i in 0..512u64 {
                    let f = self.phys.alloc_frame().unwrap();
                    self.ept
                        .map(&mut self.phys, gpa.add(i * PAGE_SIZE), f)
                        .unwrap();
                }
            }
            let mut table = self.cr3;
            for level in (2..4).rev() {
                let slot = table.add(gva.pt_index(level) as u64 * 8);
                let hslot = self.ept.translate(&self.phys, slot).unwrap().unwrap();
                let e = Pte(self.phys.read_u64(hslot).unwrap());
                table = if e.is_present() {
                    e.frame()
                } else {
                    let t = self.alloc_guest_page();
                    self.phys.write_u64(hslot, Pte::table(t).0).unwrap();
                    t
                };
            }
            let slot = table.add(gva.pt_index(1) as u64 * 8);
            let hslot = self.ept.translate(&self.phys, slot).unwrap().unwrap();
            self.phys
                .write_u64(hslot, Pte::huge_leaf(gpa, flags).0)
                .unwrap();
            gpa
        }

        fn mmu(&mut self) -> Mmu<'_> {
            Mmu {
                phys: &mut self.phys,
                ept: &mut self.ept,
                tlb: &mut self.tlb,
                pml: &mut self.pml,
                ctx: &self.ctx,
                lane: Lane::Tracked,
                epml_hw: true,
                spp: None,
                split_on_dirty: false,
            }
        }

        fn enable_hyp_pml(&mut self) {
            let page = self.phys.alloc_frame().unwrap();
            self.pml.hyp = Some(PmlBuffer::new(page));
            self.pml.hyp_logging = true;
        }

        fn enable_guest_pml(&mut self) {
            let page = self.phys.alloc_frame().unwrap();
            self.pml.guest = Some(PmlBuffer::new(page));
            self.pml.guest_logging = true;
        }
    }

    const BASE: Gva = Gva(0x4000_0000);

    #[cfg(feature = "debug-invariants")]
    mod invariant_tests {
        use super::*;

        /// A drain that clears the EPT dirty bit but forgets to invalidate
        /// the TLB is exactly the missed-logging bug the fast-path check
        /// exists to catch.
        #[test]
        #[should_panic(expected = "TLB invariant violated")]
        fn stale_tlb_entry_after_drain_panics() {
            let mut rig = Rig::new();
            rig.map_gva(BASE, Pte::WRITABLE | Pte::USER);
            rig.enable_hyp_pml();
            let cr3 = rig.cr3;
            let mut mmu = rig.mmu();
            let gpa = mmu.access(cr3, BASE, true).unwrap().unwrap().gpa;
            // Buggy drain: clear the EPT D bit *without* invalidating the TLB.
            mmu.ept.clear_dirty(mmu.phys, gpa).unwrap();
            let _ = mmu.access(cr3, BASE, true);
        }

        /// The correct drain sequence (reset buffer, clear D, note, flush
        /// the translation) lets the page re-log without tripping anything.
        #[test]
        fn drain_then_rewrite_relogs_cleanly() {
            let mut rig = Rig::new();
            rig.map_gva(BASE, Pte::WRITABLE | Pte::USER);
            rig.enable_hyp_pml();
            let cr3 = rig.cr3;
            let mut mmu = rig.mmu();
            let gpa = mmu.access(cr3, BASE, true).unwrap().unwrap().gpa;
            mmu.pml.hyp.as_mut().unwrap().drain(mmu.phys).unwrap();
            mmu.ept.clear_dirty(mmu.phys, gpa).unwrap();
            mmu.pml.note_hyp_dirty_cleared(gpa.page());
            mmu.tlb.invalidate_gpa_page(gpa.page());
            mmu.access(cr3, BASE, true).unwrap().unwrap();
        }
    }

    #[test]
    fn read_write_through_translation() {
        let mut rig = Rig::new();
        rig.map_gva(BASE, Pte::WRITABLE | Pte::USER);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        let ok = mmu.access(cr3, BASE.add(0x10), true).unwrap().unwrap();
        mmu.phys.write(ok.hpa, b"xyz").unwrap();
        let ok2 = mmu.access(cr3, BASE.add(0x10), false).unwrap().unwrap();
        let mut buf = [0u8; 3];
        mmu.phys.read(ok2.hpa, &mut buf).unwrap();
        assert_eq!(&buf, b"xyz");
    }

    #[test]
    fn not_present_faults() {
        let mut rig = Rig::new();
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        match mmu.access(cr3, BASE, false).unwrap() {
            Err(Fault::NotPresent { gva, .. }) => assert_eq!(gva, BASE),
            other => panic!("expected NotPresent, got {other:?}"),
        }
    }

    #[test]
    fn write_protect_faults_only_on_write() {
        let mut rig = Rig::new();
        rig.map_gva(BASE, Pte::USER); // not writable
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        assert!(mmu.access(cr3, BASE, false).unwrap().is_ok());
        assert!(matches!(
            mmu.access(cr3, BASE, true).unwrap(),
            Err(Fault::WriteProtected { .. })
        ));
    }

    #[test]
    fn uffd_wp_bit_forces_write_fault() {
        let mut rig = Rig::new();
        rig.map_gva(BASE, Pte::WRITABLE | Pte::USER | Pte::UFFD_WP);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        assert!(mmu.access(cr3, BASE, false).unwrap().is_ok());
        assert!(matches!(
            mmu.access(cr3, BASE, true).unwrap(),
            Err(Fault::WriteProtected { .. })
        ));
    }

    #[test]
    fn store_sets_guest_and_ept_dirty_and_logs_gpa() {
        let mut rig = Rig::new();
        rig.enable_hyp_pml();
        let data_gpa = rig.map_gva(BASE, Pte::WRITABLE | Pte::USER);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        let ok = mmu.access(cr3, BASE.add(8), true).unwrap().unwrap();
        assert_eq!(ok.gpa, data_gpa.add(8));
        assert!(ok.events.is_empty());
        // GPA of the data page is in the hypervisor PML buffer; the A/D
        // update to the leaf PT page was also logged (hardware-faithful).
        let logged = rig.pml.hyp.as_mut().unwrap().drain(&rig.phys).unwrap();
        assert!(logged.contains(&data_gpa.raw()));
        assert!(rig.ctx.counters().get(Event::PmlLogGpa) >= 1);
    }

    #[test]
    fn second_store_to_same_page_does_not_relog() {
        let mut rig = Rig::new();
        rig.enable_hyp_pml();
        rig.map_gva(BASE, Pte::WRITABLE | Pte::USER);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        mmu.access(cr3, BASE, true).unwrap().unwrap();
        let n1 = rig.ctx.counters().get(Event::PmlLogGpa);
        let mut mmu = rig.mmu();
        mmu.access(cr3, BASE.add(64), true).unwrap().unwrap();
        mmu.access(cr3, BASE.add(128), true).unwrap().unwrap();
        assert_eq!(rig.ctx.counters().get(Event::PmlLogGpa), n1);
        // And those stores hit the TLB fast path.
        assert!(rig.ctx.counters().get(Event::TlbHit) >= 2);
    }

    #[test]
    fn epml_logs_gva_to_guest_buffer() {
        let mut rig = Rig::new();
        rig.enable_guest_pml();
        rig.map_gva(BASE, Pte::WRITABLE | Pte::USER);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        mmu.access(cr3, BASE.add(4), true).unwrap().unwrap();
        let logged = rig.pml.guest.as_mut().unwrap().drain(&rig.phys).unwrap();
        assert_eq!(logged, vec![BASE.raw()]);
        assert_eq!(rig.ctx.counters().get(Event::PmlLogGva), 1);
    }

    #[test]
    fn epml_disabled_hw_logs_nothing_to_guest_buffer() {
        let mut rig = Rig::new();
        rig.enable_guest_pml();
        rig.map_gva(BASE, Pte::WRITABLE | Pte::USER);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        mmu.epml_hw = false;
        mmu.access(cr3, BASE, true).unwrap().unwrap();
        assert!(rig.pml.guest.as_mut().unwrap().is_empty());
    }

    #[test]
    fn buffer_full_event_is_raised() {
        let mut rig = Rig::new();
        rig.enable_guest_pml();
        // Map 512 pages and dirty them all: the 512th log fills the buffer.
        for i in 0..512u64 {
            rig.map_gva(BASE.add(i * PAGE_SIZE), Pte::WRITABLE | Pte::USER);
        }
        let cr3 = rig.cr3;
        let mut full_events = 0;
        for i in 0..512u64 {
            let mut mmu = rig.mmu();
            let ok = mmu.access(cr3, BASE.add(i * PAGE_SIZE), true).unwrap().unwrap();
            full_events += ok
                .events
                .iter()
                .filter(|e| **e == PmlEvent::GuestBufferFull)
                .count();
        }
        assert_eq!(full_events, 1);
        assert_eq!(rig.pml.guest.as_ref().unwrap().len(), 512);
    }

    #[test]
    fn dirty_clear_plus_tlb_flush_relogs() {
        let mut rig = Rig::new();
        rig.enable_guest_pml();
        rig.map_gva(BASE, Pte::WRITABLE | Pte::USER);
        let cr3 = rig.cr3;
        {
            let mut mmu = rig.mmu();
            mmu.access(cr3, BASE, true).unwrap().unwrap();
        }
        // Drain + clear guest D bit + flush TLB = start of a new round.
        rig.pml.guest.as_mut().unwrap().drain(&rig.phys).unwrap();
        // Clear the guest PTE dirty bit by hand (the OoH module does this).
        {
            let mut table = rig.cr3;
            for level in (1..4).rev() {
                let slot = table.add(BASE.pt_index(level) as u64 * 8);
                let h = rig.ept.translate(&rig.phys, slot).unwrap().unwrap();
                table = Pte(rig.phys.read_u64(h).unwrap()).frame();
            }
            let slot = table.add(BASE.pt_index(0) as u64 * 8);
            let h = rig.ept.translate(&rig.phys, slot).unwrap().unwrap();
            let pte = Pte(rig.phys.read_u64(h).unwrap());
            rig.phys.write_u64(h, pte.without(Pte::DIRTY).0).unwrap();
            // The OoH module pairs the D-bit clear with this shadow note
            // (see Hypervisor::note_guest_pte_dirty_cleared).
            rig.pml.note_guest_dirty_cleared(BASE.page());
        }
        rig.tlb.flush_all();
        {
            let mut mmu = rig.mmu();
            mmu.access(cr3, BASE.add(12), true).unwrap().unwrap();
        }
        let logged = rig.pml.guest.as_mut().unwrap().drain(&rig.phys).unwrap();
        assert_eq!(logged, vec![BASE.raw()], "new round must re-log the page");
    }

    const HUGE_BASE: Gva = Gva(0x4000_0000); // 2M-aligned

    #[test]
    fn huge_walk_translates_and_logs_precise_gpa() {
        let mut rig = Rig::new();
        rig.enable_hyp_pml();
        let gpa = rig.map_gva_huge(HUGE_BASE, Pte::WRITABLE | Pte::USER, true);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        // Store into page 37 of the region.
        let probe = HUGE_BASE.add(37 * PAGE_SIZE + 0x18);
        let ok = mmu.access(cr3, probe, true).unwrap().unwrap();
        assert_eq!(ok.gpa, gpa.add(37 * PAGE_SIZE + 0x18));
        // PML logs the precise 4K-aligned GPA, as real PML does even under
        // a 2M EPT leaf.
        let logged = rig.pml.hyp.as_mut().unwrap().drain(&rig.phys).unwrap();
        assert!(logged.contains(&gpa.add(37 * PAGE_SIZE).raw()));
        // The region-wide D bit suppresses logging for the other 511 pages.
        let n1 = rig.ctx.counters().get(Event::PmlLogGpa);
        let mut mmu = rig.mmu();
        mmu.access(cr3, HUGE_BASE.add(300 * PAGE_SIZE), true)
            .unwrap()
            .unwrap();
        assert_eq!(rig.ctx.counters().get(Event::PmlLogGpa), n1);
        // One huge TLB entry serves the whole region.
        assert_eq!(rig.tlb.huge_len(), 1);
        let mut mmu = rig.mmu();
        mmu.access(cr3, HUGE_BASE.add(511 * PAGE_SIZE), true)
            .unwrap()
            .unwrap();
        assert!(rig.ctx.counters().get(Event::TlbHit) >= 1);
    }

    #[test]
    fn epml_huge_logs_gva_once_per_region() {
        let mut rig = Rig::new();
        rig.enable_guest_pml();
        rig.map_gva_huge(HUGE_BASE, Pte::WRITABLE | Pte::USER, true);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        mmu.access(cr3, HUGE_BASE.add(5 * PAGE_SIZE + 4), true)
            .unwrap()
            .unwrap();
        mmu.access(cr3, HUGE_BASE.add(6 * PAGE_SIZE), true)
            .unwrap()
            .unwrap();
        let logged = rig.pml.guest.as_mut().unwrap().drain(&rig.phys).unwrap();
        // One log for the whole region (D set once), at the precise 4K GVA.
        assert_eq!(logged, vec![HUGE_BASE.add(5 * PAGE_SIZE).raw()]);
    }

    #[test]
    fn split_on_dirty_faults_before_any_mutation() {
        let mut rig = Rig::new();
        rig.enable_hyp_pml();
        let gpa = rig.map_gva_huge(HUGE_BASE, Pte::WRITABLE | Pte::USER, true);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        mmu.split_on_dirty = true;
        match mmu.access(cr3, HUGE_BASE.add(9 * PAGE_SIZE), true).unwrap() {
            Err(Fault::HugeDirtyWrite { gva, gpa: region }) => {
                assert_eq!(gva, HUGE_BASE.add(9 * PAGE_SIZE));
                assert_eq!(region, gpa);
            }
            other => panic!("expected HugeDirtyWrite, got {other:?}"),
        }
        // Nothing was mutated: no PML entry, EPT D clear, guest D clear.
        assert!(rig.pml.hyp.as_ref().unwrap().is_empty());
        let (_, e) = rig.ept.lookup(&rig.phys, gpa).unwrap().unwrap();
        assert!(!e.is_dirty());
        // Reads are unaffected by the armed policy.
        let mut mmu = rig.mmu();
        mmu.split_on_dirty = true;
        mmu.access(cr3, HUGE_BASE, false).unwrap().unwrap();
        // Hypervisor demotes the EPT side; the retried write then succeeds
        // and logs the precise 4K GPA.
        rig.ept.demote(&mut rig.phys, gpa).unwrap();
        rig.tlb.flush_all();
        let mut mmu = rig.mmu();
        mmu.split_on_dirty = true;
        // Guest PT is still a (clean) huge leaf, but guest logging is off,
        // so only the EPT side gates — and it is 4K now.
        mmu.access(cr3, HUGE_BASE.add(9 * PAGE_SIZE), true)
            .unwrap()
            .unwrap();
        let logged = rig.pml.hyp.as_mut().unwrap().drain(&rig.phys).unwrap();
        assert!(logged.contains(&gpa.add(9 * PAGE_SIZE).raw()));
    }

    #[test]
    fn split_on_dirty_guest_side_faults_with_epml() {
        let mut rig = Rig::new();
        rig.enable_guest_pml();
        // EPT side 4K from the start: only the guest PT is huge.
        let gpa = rig.map_gva_huge(HUGE_BASE, Pte::WRITABLE | Pte::USER, false);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        mmu.split_on_dirty = true;
        assert!(matches!(
            mmu.access(cr3, HUGE_BASE.add(3 * PAGE_SIZE), true).unwrap(),
            Err(Fault::HugeDirtyWrite { .. })
        ));
        assert!(rig.pml.guest.as_ref().unwrap().is_empty());
        // With the policy off the same write proceeds (keep-huge mode) and
        // the region logs once at the faulting GVA.
        let mut mmu = rig.mmu();
        mmu.access(cr3, HUGE_BASE.add(3 * PAGE_SIZE), true)
            .unwrap()
            .unwrap();
        let logged = rig.pml.guest.as_mut().unwrap().drain(&rig.phys).unwrap();
        assert_eq!(logged, vec![HUGE_BASE.add(3 * PAGE_SIZE).raw()]);
        let _ = gpa;
    }

    #[test]
    fn loads_never_log() {
        let mut rig = Rig::new();
        rig.enable_hyp_pml();
        rig.enable_guest_pml();
        rig.map_gva(BASE, Pte::WRITABLE | Pte::USER);
        let cr3 = rig.cr3;
        let mut mmu = rig.mmu();
        for i in 0..10 {
            mmu.access(cr3, BASE.add(i * 8), false).unwrap().unwrap();
        }
        // Only the PT-page A-bit updates may have logged GPAs; the *data*
        // page must not appear, and the guest (GVA) buffer must be empty.
        assert!(rig.pml.guest.as_ref().unwrap().is_empty());
        assert_eq!(rig.ctx.counters().get(Event::PmlLogGva), 0);
    }
}
