//! Property-based tests of the machine substrate against reference models.

use ooh_machine::{
    mask_protecting, Ept, Gpa, Gva, HostPhys, PmlBuffer, RingView, SppTable, PAGE_SIZE,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The EPT behaves exactly like a HashMap<gpa_page, hpa> under an
    /// arbitrary interleaving of map / unmap / translate.
    #[test]
    fn ept_matches_reference_map(
        ops in proptest::collection::vec((0u8..3, 0u64..512), 1..200)
    ) {
        let mut phys = HostPhys::new(4096 * PAGE_SIZE);
        let mut ept = Ept::new(&mut phys).unwrap();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // Spread gpa pages across the radix tree's levels, staying inside
        // the 48-bit space a 4-level table covers (36-bit page numbers).
        let spread = |p: u64| p.wrapping_mul(0x9E3779B97F4A7C15) >> 28;

        for (op, raw_page) in ops {
            let page = spread(raw_page);
            let gpa = Gpa::from_page(page);
            match op {
                0 => {
                    let hpa = phys.alloc_frame().unwrap();
                    ept.map(&mut phys, gpa, hpa).unwrap();
                    reference.insert(page, hpa.raw());
                }
                1 => {
                    let got = ept.unmap(&mut phys, gpa).unwrap().map(|h| h.raw());
                    prop_assert_eq!(got, reference.remove(&page));
                }
                _ => {
                    let got = ept.translate(&phys, gpa).unwrap().map(|h| h.raw());
                    prop_assert_eq!(got, reference.get(&page).copied());
                }
            }
        }
        prop_assert_eq!(ept.mapped_pages() as usize, reference.len());
        // Full enumeration agrees too.
        let mut got: Vec<u64> = ept
            .collect_mapped(&phys)
            .unwrap()
            .into_iter()
            .map(|(g, _)| g.page())
            .collect();
        got.sort_unstable();
        let mut want: Vec<u64> = reference.keys().copied().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The shared ring preserves FIFO order and capacity semantics against
    /// a VecDeque model, under arbitrary push/pop interleavings.
    #[test]
    fn ring_matches_vecdeque(
        ops in proptest::collection::vec(any::<bool>(), 1..2000)
    ) {
        let mut phys = HostPhys::new(16 * PAGE_SIZE);
        let header = phys.alloc_frame().unwrap();
        let data = vec![phys.alloc_frame().unwrap()];
        let ring = RingView::create(&mut phys, header, data).unwrap();
        let cap = ring.capacity() as usize;
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        let mut dropped = 0u64;

        for push in ops {
            if push {
                let ok = ring.push(&mut phys, next).unwrap();
                if model.len() < cap {
                    prop_assert!(ok);
                    model.push_back(next);
                } else {
                    prop_assert!(!ok);
                    dropped += 1;
                }
                next += 1;
            } else {
                prop_assert_eq!(ring.pop(&mut phys).unwrap(), model.pop_front());
            }
        }
        prop_assert_eq!(ring.len(&phys).unwrap() as usize, model.len());
        prop_assert_eq!(ring.dropped(&phys).unwrap(), dropped);
    }

    /// A PML buffer drains exactly what was logged, oldest-first, across
    /// arbitrary log/drain interleavings, and never exceeds 512 entries.
    #[test]
    fn pml_buffer_matches_log_model(
        ops in proptest::collection::vec(proptest::option::of(0u64..1_000_000), 1..1500)
    ) {
        let mut phys = HostPhys::new(8 * PAGE_SIZE);
        let page = phys.alloc_frame().unwrap();
        let mut buf = PmlBuffer::new(page);
        let mut model: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Some(v) => {
                    let value = v << 12;
                    let outcome = buf.log(&mut phys, value).unwrap();
                    if model.len() < 512 {
                        prop_assert_ne!(outcome, ooh_machine::LogOutcome::Full);
                        model.push(value);
                    } else {
                        prop_assert_eq!(outcome, ooh_machine::LogOutcome::Full);
                    }
                }
                None => {
                    let drained = buf.drain(&phys).unwrap();
                    prop_assert_eq!(&drained, &model);
                    model.clear();
                }
            }
            prop_assert!(buf.len() <= 512);
            prop_assert_eq!(buf.len() as usize, model.len());
        }
    }

    /// SPP masks partition every page exactly: a write is allowed iff its
    /// sub-page bit is set, independent of any other page's mask.
    #[test]
    fn spp_masks_are_exact_and_independent(
        entries in proptest::collection::vec((0u64..64, 0u32..32, 0u32..32), 1..40),
        probes in proptest::collection::vec((0u64..64, 0u64..4096), 1..100),
    ) {
        let mut table = SppTable::new();
        let mut reference: HashMap<u64, u32> = HashMap::new();
        for (page, a, b) in entries {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let mask = mask_protecting(lo, hi);
            table.set_mask(Gpa::from_page(page), mask);
            reference.insert(page, mask);
        }
        for (page, offset) in probes {
            let gpa = Gpa::from_page(page).add(offset);
            let want = match reference.get(&page) {
                None => true,
                Some(mask) => mask & (1 << (offset / 128)) != 0,
            };
            prop_assert_eq!(table.write_allowed(gpa), want);
        }
    }
}

/// Deterministic regression: a page mapped at the radix extremes.
#[test]
fn ept_handles_address_space_extremes() {
    let mut phys = HostPhys::new(256 * PAGE_SIZE);
    let mut ept = Ept::new(&mut phys).unwrap();
    for gpa in [Gpa(0), Gpa(0x0000_7FFF_FFFF_F000)] {
        let f = phys.alloc_frame().unwrap();
        ept.map(&mut phys, gpa, f).unwrap();
        assert_eq!(ept.translate(&phys, gpa).unwrap(), Some(f));
    }
    assert_eq!(ept.mapped_pages(), 2);
}

/// Deterministic regression: GvaRange::covering edge alignment.
#[test]
fn gva_range_covering_edges() {
    use ooh_machine::GvaRange;
    let r = GvaRange::covering(Gva(0x1FFF), 2);
    assert_eq!(r.start, Gva(0x1000));
    assert_eq!(r.pages, 2);
}
