//! Property tests for the SPSC ring (`machine/src/ring.rs`) against a
//! `VecDeque` reference model.
//!
//! The ring is OoH's data path: the hypervisor (SPML) or guest kernel
//! (EPML) produces logged addresses into it, the userspace library consumes
//! them. The properties below drive randomized push/pop/drain schedules —
//! including wraparound, full-buffer overflow, and drain-while-push — and
//! require the ring to agree with the obviously-correct model at every
//! step: same FIFO contents, same length, same dropped count, and a
//! full-buffer push that leaves state untouched.

use ooh_machine::{HostPhys, Hpa, RingView, PAGE_SIZE, RING_ENTRIES_PER_PAGE};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A booted ring over `pages` data pages plus its backing memory and model.
struct Harness {
    phys: HostPhys,
    ring: RingView,
    model: VecDeque<u64>,
    model_dropped: u64,
}

impl Harness {
    fn new(pages: usize) -> Self {
        let mut phys = HostPhys::new(64 * PAGE_SIZE);
        let header = phys.alloc_frame().unwrap();
        let data: Vec<Hpa> = (0..pages).map(|_| phys.alloc_frame().unwrap()).collect();
        let ring = RingView::create(&mut phys, header, data).unwrap();
        Harness {
            phys,
            ring,
            model: VecDeque::new(),
            model_dropped: 0,
        }
    }

    fn push(&mut self, value: u64) -> Result<(), String> {
        let accepted = self.ring.push(&mut self.phys, value).unwrap();
        if self.model.len() as u64 >= self.ring.capacity() {
            prop_assert!(!accepted, "push into a full ring must be rejected");
            self.model_dropped += 1;
        } else {
            prop_assert!(accepted, "push into a non-full ring must succeed");
            self.model.push_back(value);
        }
        Ok(())
    }

    fn pop(&mut self) -> Result<(), String> {
        let got = self.ring.pop(&mut self.phys).unwrap();
        prop_assert_eq!(got, self.model.pop_front());
        Ok(())
    }

    fn check_counters(&self) -> Result<(), String> {
        prop_assert_eq!(
            self.ring.len(&self.phys).unwrap(),
            self.model.len() as u64
        );
        prop_assert_eq!(
            self.ring.is_empty(&self.phys).unwrap(),
            self.model.is_empty()
        );
        prop_assert_eq!(self.ring.dropped(&self.phys).unwrap(), self.model_dropped);
        Ok(())
    }
}

proptest! {
    /// Random interleavings of push/pop/drain, biased toward pushes so the
    /// ring fills and wraps. Every operation's result must match the model.
    #[test]
    fn ring_matches_vecdeque_model(
        pages in 1usize..4,
        ops in proptest::collection::vec((0u8..8, any::<u64>()), 100..400),
    ) {
        let mut h = Harness::new(pages);
        for (op, value) in ops {
            match op {
                // 5/8 push, 2/8 pop, 1/8 drain: fills, wraps, and drains.
                0..=4 => h.push(value)?,
                5 | 6 => h.pop()?,
                _ => {
                    let drained = h.ring.drain(&mut h.phys).unwrap();
                    let expected: Vec<u64> = h.model.drain(..).collect();
                    prop_assert_eq!(drained, expected);
                }
            }
            h.check_counters()?;
        }
    }

    /// Fill the ring completely, then keep pushing: every extra push must be
    /// rejected, counted, and must not disturb the queued entries.
    #[test]
    fn full_buffer_rejects_and_preserves_state(
        extra in 1u64..64,
        seed in any::<u64>(),
    ) {
        let mut h = Harness::new(1);
        let cap = h.ring.capacity();
        for i in 0..cap {
            h.push(seed.wrapping_add(i))?;
        }
        for i in 0..extra {
            h.push(seed.wrapping_mul(31).wrapping_add(i))?;
            h.check_counters()?;
        }
        prop_assert_eq!(h.ring.dropped(&h.phys).unwrap(), extra);
        // FIFO contents intact: exactly the first `cap` accepted values.
        let drained = h.ring.drain(&mut h.phys).unwrap();
        let expected: Vec<u64> = (0..cap).map(|i| seed.wrapping_add(i)).collect();
        prop_assert_eq!(drained, expected);
    }

    /// Drain-while-push: a consumer that interleaves partial drains with an
    /// active producer (the OoH library's steady state). The ring wraps its
    /// free-running indices many times; order and counts must survive.
    #[test]
    fn drain_while_push_wraps_correctly(
        bursts in proptest::collection::vec((1u64..700, 0u64..700), 4..16),
    ) {
        let mut h = Harness::new(1);
        prop_assert_eq!(h.ring.capacity(), RING_ENTRIES_PER_PAGE);
        let mut next = 0u64;
        for (push_n, pop_n) in bursts {
            for _ in 0..push_n {
                h.push(next)?;
                next += 1;
            }
            for _ in 0..pop_n {
                h.pop()?;
            }
            h.check_counters()?;
        }
        // Final drain empties both ring and model identically.
        let drained = h.ring.drain(&mut h.phys).unwrap();
        let expected: Vec<u64> = h.model.drain(..).collect();
        prop_assert_eq!(drained, expected);
        h.check_counters()?;
    }
}
