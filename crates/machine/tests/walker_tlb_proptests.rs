//! Property tests for the page walker (`machine/src/walker.rs`) + TLB
//! (`machine/src/tlb.rs`) interaction.
//!
//! Random map / unmap / write / drain schedules are driven against a small
//! guest address space while a reference model tracks the architectural
//! dirty-bit state. The properties:
//!
//! * **A/D-bit semantics**: the guest (EPML, GVA) buffer receives exactly
//!   one entry per guest-PTE dirty 0→1 transition, and the hypervisor
//!   (SPML, GPA) buffer one entry per EPT-leaf dirty 0→1 transition, in
//!   program order — never more, never fewer, across remaps and drains.
//! * **No stale TLB entry ever suppresses PML re-logging**: whenever a
//!   cached translation would let a store skip the walk
//!   ([`TlbEntry::store_fast_path`]), the model must agree that both dirty
//!   bits are genuinely set, i.e. the store has already been logged this
//!   round. This promotes the `debug-invariants` fast-path check in the
//!   walker into a generative test that runs in every build.
//!
//! Both drain protocols are exercised: the broad `flush_all` (mov-to-CR3
//! analog the techniques use) and targeted per-page invalidation
//! (`invlpg` / `invalidate_gpa_page`).

use ooh_machine::{
    Ept, Fault, Gpa, Gva, HostPhys, Mmu, PmlBuffer, PmlState, Pte, HUGE_PAGE_PAGES, PAGE_SIZE,
};
use ooh_sim::{Lane, SimCtx};
use proptest::prelude::*;

const BASE: Gva = Gva(0x4000_0000);
const NUM_PAGES: u64 = 8;

fn gva_of(idx: u64) -> Gva {
    BASE.add(idx * PAGE_SIZE)
}

/// Per-page reference model of the architectural dirty state.
#[derive(Clone, Copy, Default)]
struct PageModel {
    mapped: bool,
    /// Current data GPA (meaningful only while mapped).
    data_gpa: Gpa,
    /// Guest leaf PTE dirty bit.
    pte_dirty: bool,
    /// EPT leaf dirty bit of the current data page.
    ept_dirty: bool,
}

/// The guest from the walker's in-crate test rig, rebuilt over the crate's
/// public API, plus the reference model.
struct Rig {
    phys: HostPhys,
    ept: Ept,
    tlb: ooh_machine::Tlb,
    pml: PmlState,
    ctx: SimCtx,
    cr3: Gpa,
    next_gpa: u64,
    pages: [PageModel; NUM_PAGES as usize],
    /// Expected guest (GVA) buffer contents since the last guest drain.
    expected_guest: Vec<u64>,
    /// Expected *data-page* GPA log sequence since the last hyp drain. The
    /// real buffer interleaves page-table-page A/D writes; those are
    /// filtered out via `all_data_gpas` before comparing.
    expected_hyp: Vec<u64>,
    /// Every GPA ever handed out as a data page (never reused).
    all_data_gpas: std::collections::BTreeSet<u64>,
    /// Split-on-dirty knob threaded into [`Rig::mmu`] (default off, so
    /// the pre-huge tests run against the exact pre-PR walker behaviour).
    split: bool,
}

impl Rig {
    fn new() -> Self {
        let mut phys = HostPhys::new(1024 * PAGE_SIZE);
        let mut ept = Ept::new(&mut phys).unwrap();
        let mut next_gpa = 0x100u64;
        let cr3 = Gpa::from_page(next_gpa);
        next_gpa += 1;
        let f = phys.alloc_frame().unwrap();
        ept.map(&mut phys, cr3, f).unwrap();
        let pml = PmlState {
            hyp: Some(PmlBuffer::new(phys.alloc_frame().unwrap())),
            hyp_logging: true,
            guest: Some(PmlBuffer::new(phys.alloc_frame().unwrap())),
            guest_logging: true,
            ..Default::default()
        };
        Rig {
            phys,
            ept,
            tlb: ooh_machine::Tlb::new(),
            pml,
            ctx: SimCtx::new(),
            cr3,
            next_gpa,
            pages: [PageModel::default(); NUM_PAGES as usize],
            expected_guest: Vec::new(),
            expected_hyp: Vec::new(),
            all_data_gpas: std::collections::BTreeSet::new(),
            split: false,
        }
    }

    fn alloc_guest_page(&mut self) -> Gpa {
        let gpa = Gpa::from_page(self.next_gpa);
        self.next_gpa += 1;
        let f = self.phys.alloc_frame().unwrap();
        self.ept.map(&mut self.phys, gpa, f).unwrap();
        gpa
    }

    /// Host-physical slot of the leaf PTE mapping `gva` (tables must exist).
    fn leaf_slot(&mut self, gva: Gva) -> ooh_machine::Hpa {
        let mut table = self.cr3;
        for level in (1..4).rev() {
            let slot = table.add(gva.pt_index(level) as u64 * 8);
            let h = self.ept.translate(&self.phys, slot).unwrap().unwrap();
            table = Pte(self.phys.read_u64(h).unwrap()).frame();
        }
        let slot = table.add(gva.pt_index(0) as u64 * 8);
        self.ept.translate(&self.phys, slot).unwrap().unwrap()
    }

    /// Map `gva_of(idx)` to a freshly allocated data page (allocating guest
    /// page-table pages as needed, exactly like the walker's private rig).
    fn map(&mut self, idx: u64) {
        let gva = gva_of(idx);
        let data = self.alloc_guest_page();
        let mut table = self.cr3;
        for level in (1..4).rev() {
            let slot = table.add(gva.pt_index(level) as u64 * 8);
            let hslot = self.ept.translate(&self.phys, slot).unwrap().unwrap();
            let e = Pte(self.phys.read_u64(hslot).unwrap());
            table = if e.is_present() {
                e.frame()
            } else {
                let t = self.alloc_guest_page();
                self.phys.write_u64(hslot, Pte::table(t).0).unwrap();
                t
            };
        }
        let slot = table.add(gva.pt_index(0) as u64 * 8);
        let hslot = self.ept.translate(&self.phys, slot).unwrap().unwrap();
        self.phys
            .write_u64(hslot, Pte::leaf(data, Pte::WRITABLE | Pte::USER).0)
            .unwrap();
        self.all_data_gpas.insert(data.raw());
        self.pages[idx as usize] = PageModel {
            mapped: true,
            data_gpa: data,
            pte_dirty: false,
            ept_dirty: false,
        };
    }

    /// Unmap `gva_of(idx)`: clear the leaf PTE and invalidate the
    /// translation, the way a kernel munmap does.
    fn unmap(&mut self, idx: u64) {
        let gva = gva_of(idx);
        let hslot = self.leaf_slot(gva);
        self.phys.write_u64(hslot, Pte::empty().0).unwrap();
        self.tlb.invlpg(gva);
        // Destroying the PTE destroys its dirty bit: retire the shadow
        // entry so a future mapping may log the GVA again.
        if self.pages[idx as usize].pte_dirty {
            self.pml.note_guest_dirty_cleared(gva.page());
        }
        self.pages[idx as usize].mapped = false;
    }

    fn mmu(&mut self) -> Mmu<'_> {
        Mmu {
            phys: &mut self.phys,
            ept: &mut self.ept,
            tlb: &mut self.tlb,
            pml: &mut self.pml,
            ctx: &self.ctx,
            lane: Lane::Tracked,
            epml_hw: true,
            spp: None,
            split_on_dirty: self.split,
        }
    }

    /// Access `gva_of(idx)`; on a write, first run the promoted fast-path
    /// invariant, then update the model with the expected log traffic.
    fn access(&mut self, idx: u64, write: bool, offset: u64) -> Result<(), String> {
        let gva = gva_of(idx).add(offset % PAGE_SIZE);
        let m = self.pages[idx as usize];

        if write {
            // The promoted PR-2 fast-path check: if the TLB would let this
            // store complete without a walk, the model must agree both
            // dirty bits are set — otherwise a drain left a stale entry
            // behind and the store would go unlogged.
            if let Some(e) = self.tlb.lookup(self.cr3, gva) {
                if e.store_fast_path() {
                    prop_assert!(
                        m.mapped && m.pte_dirty && m.ept_dirty,
                        "stale TLB entry would suppress PML re-logging of page {}: \
                         model mapped={} pte_dirty={} ept_dirty={}",
                        idx,
                        m.mapped,
                        m.pte_dirty,
                        m.ept_dirty
                    );
                }
            }
        }

        let cr3 = self.cr3;
        let res = self.mmu().access(cr3, gva, write).unwrap();
        if !m.mapped {
            prop_assert!(
                matches!(res, Err(Fault::NotPresent { .. })),
                "access to unmapped page {} must fault NotPresent",
                idx
            );
            return Ok(());
        }
        let ok = match res {
            Ok(ok) => ok,
            Err(f) => return Err(format!("unexpected fault on mapped page {idx}: {f:?}")),
        };
        prop_assert_eq!(ok.gpa.page(), m.data_gpa.page());
        if write {
            let page = &mut self.pages[idx as usize];
            if !page.pte_dirty {
                page.pte_dirty = true;
                self.expected_guest.push(gva_of(idx).raw());
            }
            if !page.ept_dirty {
                page.ept_dirty = true;
                self.expected_hyp.push(page.data_gpa.raw());
            }
        }
        Ok(())
    }

    /// Drain the guest (EPML) buffer and start a new round: clear every
    /// mapped dirty PTE, note the clears, and invalidate translations via
    /// `flush_all` or per-page `invlpg` depending on `broad_flush`.
    fn drain_guest(&mut self, broad_flush: bool) -> Result<(), String> {
        let drained = self.pml.guest.as_mut().unwrap().drain(&self.phys).unwrap();
        prop_assert_eq!(
            &drained,
            &self.expected_guest,
            "guest (GVA) buffer diverged from the model"
        );
        self.expected_guest.clear();
        for idx in 0..NUM_PAGES {
            if !(self.pages[idx as usize].mapped && self.pages[idx as usize].pte_dirty) {
                continue;
            }
            let gva = gva_of(idx);
            let hslot = self.leaf_slot(gva);
            let pte = Pte(self.phys.read_u64(hslot).unwrap());
            self.phys.write_u64(hslot, pte.without(Pte::DIRTY).0).unwrap();
            self.pml.note_guest_dirty_cleared(gva.page());
            self.pages[idx as usize].pte_dirty = false;
            if !broad_flush {
                self.tlb.invlpg(gva);
            }
        }
        if broad_flush {
            self.tlb.flush_all();
        }
        Ok(())
    }

    /// Drain the hypervisor buffer and clear the EPT dirty bits of every
    /// mapped data page (what SPML's collection round does).
    fn drain_hyp(&mut self, broad_flush: bool) -> Result<(), String> {
        let drained = self.pml.hyp.as_mut().unwrap().drain(&self.phys).unwrap();
        // Filter out the page-table-page A/D-update logs (real PML traffic
        // the OoH library also filters); data-page order is preserved.
        let data_only: Vec<u64> = drained
            .into_iter()
            .filter(|v| self.all_data_gpas.contains(v))
            .collect();
        prop_assert_eq!(
            &data_only,
            &self.expected_hyp,
            "hyp (GPA) buffer diverged from the model"
        );
        self.expected_hyp.clear();
        for idx in 0..NUM_PAGES {
            let m = self.pages[idx as usize];
            if !(m.mapped && m.ept_dirty) {
                continue;
            }
            self.ept.clear_dirty(&mut self.phys, m.data_gpa).unwrap();
            self.pml.note_hyp_dirty_cleared(m.data_gpa.page());
            self.pages[idx as usize].ept_dirty = false;
            if !broad_flush {
                self.tlb.invalidate_gpa_page(m.data_gpa.page());
            }
        }
        if broad_flush {
            self.tlb.flush_all();
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random map/unmap/write/read/drain schedules: the PML buffers must
    /// match the model's expected log sequences at every drain, and no
    /// fast-path-eligible TLB entry may ever disagree with the
    /// architectural dirty bits.
    #[test]
    fn ad_bits_and_tlb_survive_random_schedules(
        ops in proptest::collection::vec((0u8..16, 0u64..NUM_PAGES, any::<u64>()), 60..150),
    ) {
        let mut rig = Rig::new();
        for (op, idx, arg) in ops {
            match op {
                // 8/16 write (the interesting op), 2/16 read, 2/16 map,
                // 2/16 unmap, 1/16 guest drain, 1/16 hyp drain.
                0..=7 => rig.access(idx, true, arg)?,
                8 | 9 => rig.access(idx, false, arg)?,
                10 | 11 => {
                    if !rig.pages[idx as usize].mapped {
                        rig.map(idx);
                    }
                }
                12 | 13 => {
                    if rig.pages[idx as usize].mapped {
                        rig.unmap(idx);
                    }
                }
                14 => rig.drain_guest(arg % 2 == 0)?,
                _ => rig.drain_hyp(arg % 2 == 0)?,
            }
        }
        // Closing drains: everything still pending must be in the buffers.
        rig.drain_guest(true)?;
        rig.drain_hyp(true)?;
    }

    /// Remap churn on a single GVA: every map→write cycle is a fresh PTE
    /// whose first store must re-log the same GVA (A/D state does not leak
    /// across mappings).
    #[test]
    fn remap_relogs_same_gva(cycles in 2u64..12, offsets in any::<u64>()) {
        let mut rig = Rig::new();
        for c in 0..cycles {
            rig.map(0);
            rig.access(0, true, offsets.wrapping_add(c))?;
            // Second store to the same fresh page must not re-log.
            rig.access(0, true, offsets.wrapping_mul(7).wrapping_add(c))?;
            rig.unmap(0);
        }
        let drained = rig.pml.guest.as_mut().unwrap().drain(&rig.phys).unwrap();
        prop_assert_eq!(drained.len() as u64, cycles, "one GVA log per mapping cycle");
        prop_assert!(drained.iter().all(|v| *v == BASE.raw()));
        rig.expected_guest.clear();
        rig.expected_hyp.clear();
    }

    /// Alternating rounds: write a random subset, drain (randomly choosing
    /// the broad or targeted invalidation protocol), repeat. Every round's
    /// buffer must contain exactly that round's newly dirtied pages.
    #[test]
    fn per_round_logging_is_exact(
        rounds in proptest::collection::vec((any::<u64>(), any::<u64>()), 3..10),
    ) {
        let mut rig = Rig::new();
        for idx in 0..NUM_PAGES {
            rig.map(idx);
        }
        for (mask, coin) in rounds {
            let mut expect: Vec<u64> = Vec::new();
            for idx in 0..NUM_PAGES {
                if mask & (1 << idx) != 0 {
                    rig.access(idx, true, mask)?;
                    expect.push(gva_of(idx).raw());
                }
            }
            prop_assert_eq!(&rig.expected_guest, &expect);
            rig.drain_guest(coin % 2 == 0)?;
            rig.drain_hyp(coin % 3 == 0)?;
        }
    }
}

// --- huge pages (2M) -------------------------------------------------------

/// One 2M region mapped huge at both levels (guest PS leaf + huge EPT
/// entry), sharing the [`Rig`]'s page tables, buffers and model vectors so
/// mixed 4K/2M schedules interleave in one PML stream.
const HUGE_BASE: Gva = Gva(0x8000_0000);

struct HugeRig {
    rig: Rig,
    /// Region base GPA (contiguous 512-page backing).
    region_gpa: Gpa,
    /// Host slot of the level-1 entry (huge leaf, or the table pointer
    /// after demotion).
    huge_slot: ooh_machine::Hpa,
    /// Guest-physical table page installed by [`Self::demote`].
    table_gpa: Option<Gpa>,
    /// Model: covered pages whose guest-PTE D bit is set (pre-demotion a
    /// region-wide bit — all covered pages or none).
    pte_dirty: std::collections::BTreeSet<u64>,
    /// Same for the EPT side.
    ept_dirty: std::collections::BTreeSet<u64>,
    /// Precise addresses the buffers logged this round (for the clear
    /// notifications — the shadow only saw these).
    logged_gvas: Vec<Gva>,
    logged_gpas: Vec<Gpa>,
}

impl HugeRig {
    fn new() -> Self {
        let mut rig = Rig::new();
        // Contiguous, 2M-aligned GPA + HPA backing, mapped huge in EPT.
        let base_page = rig.next_gpa.next_multiple_of(HUGE_PAGE_PAGES);
        rig.next_gpa = base_page + HUGE_PAGE_PAGES;
        let region_gpa = Gpa::from_page(base_page);
        let hpa = rig
            .phys
            .alloc_frames_contiguous(HUGE_PAGE_PAGES, HUGE_PAGE_PAGES)
            .unwrap();
        rig.ept.map_huge(&mut rig.phys, region_gpa, hpa).unwrap();
        for i in 0..HUGE_PAGE_PAGES {
            rig.all_data_gpas.insert(region_gpa.add(i * PAGE_SIZE).raw());
        }
        // Guest tables down to level 2, then the PS leaf at level 1.
        let mut table = rig.cr3;
        for level in (2..4).rev() {
            let slot = table.add(HUGE_BASE.pt_index(level) as u64 * 8);
            let hslot = rig.ept.translate(&rig.phys, slot).unwrap().unwrap();
            let e = Pte(rig.phys.read_u64(hslot).unwrap());
            table = if e.is_present() {
                e.frame()
            } else {
                let t = rig.alloc_guest_page();
                rig.phys.write_u64(hslot, Pte::table(t).0).unwrap();
                t
            };
        }
        let slot = table.add(HUGE_BASE.pt_index(1) as u64 * 8);
        let huge_slot = rig.ept.translate(&rig.phys, slot).unwrap().unwrap();
        rig.phys
            .write_u64(
                huge_slot,
                Pte::huge_leaf(region_gpa, Pte::WRITABLE | Pte::USER).0,
            )
            .unwrap();
        HugeRig {
            rig,
            region_gpa,
            huge_slot,
            table_gpa: None,
            pte_dirty: std::collections::BTreeSet::new(),
            ept_dirty: std::collections::BTreeSet::new(),
            logged_gvas: Vec::new(),
            logged_gpas: Vec::new(),
        }
    }

    fn demoted(&self) -> bool {
        self.table_gpa.is_some()
    }

    /// Access page `page_idx` (0..512) of the region; on writes, update
    /// the shared model vectors with the expected precise log entries.
    fn access(&mut self, page_idx: u64, write: bool, offset: u64) -> Result<(), String> {
        let page_idx = page_idx % HUGE_PAGE_PAGES;
        let gva = HUGE_BASE.add(page_idx * PAGE_SIZE + offset % PAGE_SIZE);
        let cr3 = self.rig.cr3;
        let res = self.rig.mmu().access(cr3, gva, write).unwrap();
        let ok = match res {
            Ok(ok) => ok,
            Err(f) => return Err(format!("unexpected fault in huge region: {f:?}")),
        };
        prop_assert_eq!(ok.gpa.page(), self.region_gpa.page() + page_idx);
        if write {
            // Pre-demotion one D bit covers the region: the first write
            // logs its precise address and marks every covered page dirty.
            // Post-demotion each 4K leaf logs independently.
            if !self.pte_dirty.contains(&page_idx) {
                let lg = HUGE_BASE.add(page_idx * PAGE_SIZE);
                self.rig.expected_guest.push(lg.raw());
                self.logged_gvas.push(lg);
                self.mark_dirty(page_idx, true);
            }
            if !self.ept_dirty.contains(&page_idx) {
                let lp = self.region_gpa.add(page_idx * PAGE_SIZE);
                self.rig.expected_hyp.push(lp.raw());
                self.logged_gpas.push(lp);
                self.mark_dirty(page_idx, false);
            }
        }
        Ok(())
    }

    fn mark_dirty(&mut self, page_idx: u64, guest_side: bool) {
        let demoted = self.demoted();
        let set = if guest_side {
            &mut self.pte_dirty
        } else {
            &mut self.ept_dirty
        };
        if demoted {
            set.insert(page_idx);
        } else {
            set.extend(0..HUGE_PAGE_PAGES);
        }
    }

    /// Host slot of the (post-demotion) 4K leaf for `page_idx`.
    fn leaf_slot_4k(&mut self, page_idx: u64) -> ooh_machine::Hpa {
        let table = self.table_gpa.expect("demoted");
        self.rig
            .ept
            .translate(&self.rig.phys, table.add(page_idx * 8))
            .unwrap()
            .unwrap()
    }

    /// Split the region into a 4K subtree the way the kernel's
    /// `demote_huge` does: 512 leaves inheriting the huge leaf's flags and
    /// A/D bits, EPT demoted alongside, translations flushed. The model's
    /// dirty sets carry over untouched — demotion must not perturb
    /// architectural A/D state.
    fn demote(&mut self) {
        assert!(!self.demoted());
        let hpte = Pte(self.rig.phys.read_u64(self.huge_slot).unwrap());
        let table = self.rig.alloc_guest_page();
        let proto = hpte.without(Pte::PS);
        for i in 0..HUGE_PAGE_PAGES {
            let leaf = proto.retarget(hpte.frame().add(i * PAGE_SIZE));
            let hslot = self
                .rig
                .ept
                .translate(&self.rig.phys, table.add(i * 8))
                .unwrap()
                .unwrap();
            self.rig.phys.write_u64(hslot, leaf.0).unwrap();
        }
        self.rig
            .phys
            .write_u64(self.huge_slot, Pte::table(table).0)
            .unwrap();
        self.rig
            .ept
            .demote(&mut self.rig.phys, self.region_gpa)
            .unwrap();
        self.rig.tlb.flush_all();
        self.table_gpa = Some(table);
    }

    /// Region-aware guest drain: delegate the buffer comparison + the 4K
    /// pages to [`Rig::drain_guest`], then clear the region's guest D
    /// state (one huge leaf, or every dirty 4K leaf after demotion).
    fn drain_guest(&mut self, broad_flush: bool) -> Result<(), String> {
        self.rig.drain_guest(broad_flush)?;
        if self.demoted() {
            let dirty: Vec<u64> = self.pte_dirty.iter().copied().collect();
            for page_idx in dirty {
                let hslot = self.leaf_slot_4k(page_idx);
                let pte = Pte(self.rig.phys.read_u64(hslot).unwrap());
                self.rig
                    .phys
                    .write_u64(hslot, pte.without(Pte::DIRTY).0)
                    .unwrap();
                if !broad_flush {
                    self.rig.tlb.invlpg(HUGE_BASE.add(page_idx * PAGE_SIZE));
                }
            }
        } else if !self.pte_dirty.is_empty() {
            let pte = Pte(self.rig.phys.read_u64(self.huge_slot).unwrap());
            self.rig
                .phys
                .write_u64(self.huge_slot, pte.without(Pte::DIRTY).0)
                .unwrap();
            if !broad_flush {
                // invlpg of any covered address drops the covering entry.
                self.rig.tlb.invlpg(HUGE_BASE);
            }
        }
        // The shadow only saw the precisely-logged addresses.
        for gva in self.logged_gvas.drain(..) {
            self.rig.pml.note_guest_dirty_cleared(gva.page());
        }
        self.pte_dirty.clear();
        Ok(())
    }

    /// Region-aware hypervisor drain, mirroring [`Self::drain_guest`].
    fn drain_hyp(&mut self, broad_flush: bool) -> Result<(), String> {
        self.rig.drain_hyp(broad_flush)?;
        if self.demoted() {
            let dirty: Vec<u64> = self.ept_dirty.iter().copied().collect();
            for page_idx in dirty {
                let gpa = self.region_gpa.add(page_idx * PAGE_SIZE);
                self.rig.ept.clear_dirty(&mut self.rig.phys, gpa).unwrap();
                if !broad_flush {
                    self.rig.tlb.invalidate_gpa_page(gpa.page());
                }
            }
        } else if !self.ept_dirty.is_empty() {
            // clear_dirty resolves through the huge-aware lookup.
            self.rig
                .ept
                .clear_dirty(&mut self.rig.phys, self.region_gpa)
                .unwrap();
            if !broad_flush {
                self.rig.tlb.invalidate_gpa_page(self.region_gpa.page());
            }
        }
        for gpa in self.logged_gpas.drain(..) {
            self.rig.pml.note_hyp_dirty_cleared(gpa.page());
        }
        self.ept_dirty.clear();
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mixed 4K/2M schedules: random writes/reads/drains over the eight 4K
    /// pages AND a 2M region sharing one PML stream. The buffers must match
    /// the interleaved model exactly — 4K pages log per page, the huge
    /// region logs one precise address per region per round.
    #[test]
    fn mixed_4k_and_2m_schedules(
        ops in proptest::collection::vec((0u8..20, 0u64..512, any::<u64>()), 40..120),
    ) {
        let mut rig = HugeRig::new();
        for idx in 0..NUM_PAGES {
            rig.rig.map(idx);
        }
        for (op, idx, arg) in ops {
            match op {
                // 6/20 huge write, 2/20 huge read, 6/20 4K write,
                // 2/20 4K read, 2/20 guest drain, 2/20 hyp drain.
                0..=5 => rig.access(idx, true, arg)?,
                6 | 7 => rig.access(idx, false, arg)?,
                8..=13 => rig.rig.access(idx % NUM_PAGES, true, arg)?,
                14 | 15 => rig.rig.access(idx % NUM_PAGES, false, arg)?,
                16 | 17 => rig.drain_guest(arg % 2 == 0)?,
                _ => rig.drain_hyp(arg % 2 == 0)?,
            }
        }
        rig.drain_guest(true)?;
        rig.drain_hyp(true)?;
    }

    /// Demotion mid-run: writes before the split set the region-wide D
    /// bits; the split inherits them onto all 512 leaves (so post-split
    /// writes to an inherited-dirty region stay silent until a drain), and
    /// after a drain each 4K leaf logs independently at full precision.
    #[test]
    fn demotion_mid_run_preserves_ad_state(
        pre in proptest::collection::vec((0u64..512, any::<u64>()), 0..6),
        post in proptest::collection::vec((0u64..512, any::<u64>()), 1..8),
        drain_between in any::<bool>(),
    ) {
        let mut rig = HugeRig::new();
        for &(p, a) in &pre {
            rig.access(p, true, a)?;
        }
        rig.demote();
        // Demotion must not perturb A/D state: the model's sets carried
        // over, and the hardware view agrees (checked on first re-access
        // via the expected-log comparison below).
        if drain_between {
            rig.drain_guest(true)?;
            rig.drain_hyp(true)?;
        }
        for &(p, a) in &post {
            rig.access(p, true, a)?;
        }
        if drain_between {
            // Post-drain, post-demotion: every distinct written page must
            // have logged precisely, in first-write order.
            let mut seen = std::collections::BTreeSet::new();
            let expect: Vec<u64> = post
                .iter()
                .filter(|(p, _)| seen.insert(*p))
                .map(|(p, _)| HUGE_BASE.add(p * PAGE_SIZE).raw())
                .collect();
            prop_assert_eq!(&rig.rig.expected_guest, &expect);
        } else if !pre.is_empty() {
            // Inherited-dirty leaves stay silent: nothing new logged.
            prop_assert_eq!(rig.rig.expected_guest.len(), 1, "only the pre-split log");
        }
        rig.drain_guest(true)?;
        rig.drain_hyp(true)?;
    }

    /// Split-on-dirty at the walker level: with the knob armed, the first
    /// write to a clean huge region faults `HugeDirtyWrite` carrying the
    /// 2M region base, BEFORE any A/D mutation or log entry; after a
    /// (modelled) demotion the retried write logs at 4K precision.
    #[test]
    fn split_on_dirty_faults_then_logs_precise(
        page_idx in 0u64..512,
        offset in any::<u64>(),
    ) {
        let mut rig = HugeRig::new();
        rig.rig.split = true;
        let gva = HUGE_BASE.add(page_idx * PAGE_SIZE + offset % PAGE_SIZE);
        let cr3 = rig.rig.cr3;
        let region_gpa = rig.region_gpa;
        let res = rig.rig.mmu().access(cr3, gva, true).unwrap();
        match res {
            Err(Fault::HugeDirtyWrite { gva: fgva, gpa }) => {
                prop_assert_eq!(fgva, gva);
                prop_assert_eq!(gpa, region_gpa);
            }
            other => return Err(format!("expected HugeDirtyWrite, got {other:?}")),
        }
        // Pre-mutation guarantee: the fault left the huge leaf untouched.
        let hpte = Pte(rig.rig.phys.read_u64(rig.huge_slot).unwrap());
        prop_assert!(!hpte.is_dirty() && !hpte.is_accessed());
        prop_assert!(rig.rig.pml.guest.as_mut().unwrap().drain(&rig.rig.phys).unwrap().is_empty());

        rig.demote();
        rig.access(page_idx, true, offset)?;
        prop_assert_eq!(
            &rig.rig.expected_guest,
            &vec![HUGE_BASE.add(page_idx * PAGE_SIZE).raw()]
        );
        rig.drain_guest(true)?;
        rig.drain_hyp(true)?;
    }
}

/// A/D bits live on the level-1 PS leaf: reads set A only, the first write
/// adds D (and logs), and the bits are readable on the one huge entry.
#[test]
fn level1_leaf_carries_ad_bits() {
    let mut rig = HugeRig::new();
    let cr3 = rig.rig.cr3;
    rig.rig
        .mmu()
        .access(cr3, HUGE_BASE.add(9 * PAGE_SIZE), false)
        .unwrap()
        .unwrap();
    let pte = Pte(rig.rig.phys.read_u64(rig.huge_slot).unwrap());
    assert!(pte.is_huge() && pte.is_accessed() && !pte.is_dirty());

    rig.access(41, true, 8).unwrap();
    let pte = Pte(rig.rig.phys.read_u64(rig.huge_slot).unwrap());
    assert!(pte.is_huge() && pte.is_accessed() && pte.is_dirty());

    rig.drain_guest(true).unwrap();
    rig.drain_hyp(true).unwrap();
    let pte = Pte(rig.rig.phys.read_u64(rig.huge_slot).unwrap());
    assert!(pte.is_huge() && !pte.is_dirty(), "drain clears the region D bit");
}
