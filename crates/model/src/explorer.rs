//! Depth-first interleaving exploration with sleep-set pruning and
//! state-hash deduplication.
//!
//! [`ModelSession`] deliberately has no `Clone` (it owns a whole simulated
//! machine), so the search is *replay-based*: descending applies a step to
//! the live session, and returning to a node for its next sibling re-boots
//! and replays the path prefix. Every boot and replay is deterministic, so
//! the restored state is bit-identical to the one left behind.

use ooh_core::{ModelError, ModelPort, ModelSession, ModelViolation, Mutation, Scenario, Step};
use ooh_core::{technique_token, Technique};
use ooh_machine::StateHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One bootable system-under-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ModelConfig {
    pub technique: Technique,
    pub scenario: Scenario,
    pub mutation: Mutation,
    /// vCPUs the guest boots with (1 = the classic single-core model; more
    /// exercise the cross-vCPU shootdown and per-vCPU shadow paths).
    pub vcpus: u32,
}

impl ModelConfig {
    pub fn boot(&self) -> Result<ModelSession, ModelError> {
        ModelSession::boot_with_vcpus(self.technique, self.scenario, self.mutation, self.vcpus)
    }

    /// `scenario/technique` label used in summaries and file names (with a
    /// `smpN` leg when the guest is multi-vCPU).
    pub fn label(&self) -> String {
        let base = format!(
            "{}/{}",
            self.scenario.token(),
            technique_token(self.technique)
        );
        if self.vcpus > 1 {
            format!("{base}/smp{}", self.vcpus)
        } else {
            base
        }
    }
}

/// Exploration parameters: which system, how deep.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    pub model: ModelConfig,
    pub depth: usize,
}

/// Search-effort accounting. All counts are deterministic for a given
/// configuration, so two runs must produce byte-identical summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Interleaving tree nodes visited (dedup hits not included).
    pub nodes: u64,
    /// Paths followed to the full depth bound.
    pub paths: u64,
    /// Nodes skipped because an equal (state, sleep-set) pair was already
    /// explored at least as deeply.
    pub dedup_hits: u64,
    /// Steps skipped by the sleep-set rule.
    pub sleep_skips: u64,
    /// Sessions booted (initial + prefix replays).
    pub boots: u64,
}

/// A violating interleaving: the step sequence from the initial state, whose
/// final step tripped `violation`.
#[derive(Debug, Clone)]
pub struct Counterexample {
    pub schedule: Vec<Step>,
    pub violation: ModelViolation,
}

/// The result of one bounded-exhaustive run.
#[derive(Debug)]
pub struct ExploreReport {
    pub stats: ExploreStats,
    /// First violation found in deterministic search order, if any.
    pub counterexample: Option<Counterexample>,
}

/// Explore all interleavings of `cfg.model` to depth `cfg.depth`, stopping
/// at the first violation.
pub fn explore(cfg: &ExploreConfig) -> Result<ExploreReport, ModelError> {
    let mut dfs = Dfs {
        cfg: *cfg,
        stats: ExploreStats::default(),
        seen: BTreeMap::new(),
    };
    let session = dfs.boot()?;
    let mut prefix = Vec::new();
    let counterexample = dfs.visit(session, cfg.depth, &mut prefix, &BTreeSet::new())?;
    Ok(ExploreReport {
        stats: dfs.stats,
        counterexample,
    })
}

struct Dfs {
    cfg: ExploreConfig,
    stats: ExploreStats,
    /// (state digest, sleep-set digest) → deepest remaining bound already
    /// explored from that pair.
    seen: BTreeMap<(u64, u64), usize>,
}

impl Dfs {
    fn boot(&mut self) -> Result<ModelSession, ModelError> {
        self.stats.boots += 1;
        self.cfg.model.boot()
    }

    /// Re-create the session at the state reached by `prefix`.
    fn replay_prefix(&mut self, prefix: &[Step]) -> Result<ModelSession, ModelError> {
        let mut session = self.boot()?;
        for &step in prefix {
            session
                .apply(step)
                .expect("deterministic replay of a previously clean prefix cannot violate");
        }
        Ok(session)
    }

    fn visit(
        &mut self,
        session: ModelSession,
        depth_left: usize,
        prefix: &mut Vec<Step>,
        sleep: &BTreeSet<Step>,
    ) -> Result<Option<Counterexample>, ModelError> {
        self.stats.nodes += 1;
        let mut session = session;

        let key = (session.digest(), sleep_digest(sleep));
        if let Some(&explored) = self.seen.get(&key) {
            if explored >= depth_left {
                self.stats.dedup_hits += 1;
                return Ok(None);
            }
        }
        self.seen.insert(key, depth_left);

        if depth_left == 0 {
            self.stats.paths += 1;
            return Ok(None);
        }

        let enabled = session.enabled_steps();
        let mut explored_here: Vec<Step> = Vec::new();
        // The live session is valid for the first child only; later
        // siblings restore the node state by replaying the prefix.
        let mut at_node = Some(session);

        for step in enabled {
            if sleep.contains(&step) {
                self.stats.sleep_skips += 1;
                continue;
            }
            let mut s = match at_node.take() {
                Some(s) => s,
                None => self.replay_prefix(prefix)?,
            };
            // Sleep set for the child: every already-dismissed step that
            // commutes with `step` stays asleep (exploring it after `step`
            // would only permute two independent actions).
            let child_sleep: BTreeSet<Step> = sleep
                .iter()
                .chain(explored_here.iter())
                .copied()
                .filter(|&u| s.commutes(u, step))
                .collect();

            prefix.push(step);
            match catch_unwind(AssertUnwindSafe(|| s.apply(step))) {
                Err(payload) => {
                    return Ok(Some(Counterexample {
                        schedule: prefix.clone(),
                        violation: ModelViolation::InvariantPanic {
                            message: panic_message(payload.as_ref()),
                        },
                    }));
                }
                Ok(Err(violation)) => {
                    return Ok(Some(Counterexample {
                        schedule: prefix.clone(),
                        violation,
                    }));
                }
                Ok(Ok(())) => {
                    if let Some(cx) = self.visit(s, depth_left - 1, prefix, &child_sleep)? {
                        return Ok(Some(cx));
                    }
                }
            }
            prefix.pop();
            explored_here.push(step);
        }
        Ok(None)
    }
}

fn sleep_digest(sleep: &BTreeSet<Step>) -> u64 {
    let mut h = StateHasher::new();
    for &s in sleep {
        h.write_u64(step_code(s));
    }
    h.finish()
}

fn step_code(s: Step) -> u64 {
    let (tag, arg) = match s {
        Step::WriteTracked(k) => (0, k),
        Step::WriteOther(k) => (1, k),
        Step::SchedOut => (2, 0),
        Step::SchedIn => (3, 0),
        Step::DeliverIpi => (4, 0),
        Step::FlushTlb => (5, 0),
        Step::FetchDirty => (6, 0),
    };
    (tag << 32) | arg
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of replaying a serialized schedule against a fresh boot.
#[derive(Debug)]
pub enum ReplayOutcome {
    /// Every applicable step ran without tripping a property. Steps not
    /// enabled in the state they were reached in are skipped (this keeps
    /// ddmin candidates and slightly-stale corpus files replayable).
    Passed { applied: usize, skipped: usize },
    /// Step `at` (0-based index into the schedule) tripped `violation`.
    Violated {
        at: usize,
        violation: ModelViolation,
    },
}

/// Boot `model` and run `schedule` through it, step by step.
pub fn replay(model: &ModelConfig, schedule: &[Step]) -> Result<ReplayOutcome, ModelError> {
    let mut session = model.boot()?;
    let mut applied = 0;
    let mut skipped = 0;
    for (at, &step) in schedule.iter().enumerate() {
        if !session.enabled_steps().contains(&step) {
            skipped += 1;
            continue;
        }
        match catch_unwind(AssertUnwindSafe(|| session.apply(step))) {
            Err(payload) => {
                return Ok(ReplayOutcome::Violated {
                    at,
                    violation: ModelViolation::InvariantPanic {
                        message: panic_message(payload.as_ref()),
                    },
                });
            }
            Ok(Err(violation)) => return Ok(ReplayOutcome::Violated { at, violation }),
            Ok(Ok(())) => applied += 1,
        }
    }
    Ok(ReplayOutcome::Passed { applied, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_epml(mutation: Mutation, depth: usize) -> ExploreConfig {
        ExploreConfig {
            model: ModelConfig {
                technique: Technique::Epml,
                scenario: Scenario::Small,
                mutation,
                vcpus: 1,
            },
            depth,
        }
    }

    /// Smoke: a shallow clean exploration finds no violation and its
    /// summary numbers are reproducible. (The full-depth sweep runs in
    /// release mode via the `ooh-model` binary; this keeps `cargo test`
    /// fast.)
    #[test]
    fn shallow_exploration_is_clean_and_deterministic() {
        let cfg = small_epml(Mutation::None, 2);
        let a = explore(&cfg).unwrap();
        assert!(
            a.counterexample.is_none(),
            "clean config must verify: {:?}",
            a.counterexample
        );
        assert!(a.stats.nodes > 0 && a.stats.paths > 0);
        let b = explore(&cfg).unwrap();
        assert_eq!(a.stats, b.stats, "exploration must be deterministic");
    }

    /// Sleep sets and dedup must prune something even at tiny depth: with
    /// three independent write targets the permutation space collapses.
    #[test]
    fn pruning_actually_prunes() {
        let cfg = small_epml(Mutation::None, 3);
        let r = explore(&cfg).unwrap();
        assert!(
            r.stats.sleep_skips > 0 || r.stats.dedup_hits > 0,
            "no pruning at depth 3: {:?}",
            r.stats
        );
    }

    /// The clear-before-drain mutation must be caught quickly.
    #[test]
    fn clear_before_drain_is_caught() {
        let cfg = small_epml(Mutation::ClearBeforeDrain, 3);
        let r = explore(&cfg).unwrap();
        let cx = r.counterexample.expect("mutation must be detected");
        assert!(cx.schedule.len() <= 3, "{:?}", cx.schedule);
    }

    /// Replaying a counterexample trips the same class of violation;
    /// replaying it against the unmutated system passes.
    #[test]
    fn counterexamples_replay() {
        let cfg = small_epml(Mutation::ClearBeforeDrain, 3);
        let cx = explore(&cfg).unwrap().counterexample.unwrap();
        match replay(&cfg.model, &cx.schedule).unwrap() {
            ReplayOutcome::Violated { .. } => {}
            other => panic!("expected violation, got {other:?}"),
        }
        let clean = ModelConfig {
            mutation: Mutation::None,
            ..cfg.model
        };
        match replay(&clean, &cx.schedule).unwrap() {
            ReplayOutcome::Passed { .. } => {}
            other => panic!("clean system must pass, got {other:?}"),
        }
    }
}
