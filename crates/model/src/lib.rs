//! # ooh-model — bounded-exhaustive interleaving model checker
//!
//! The simulator executes one interleaving of the OoH protocols per run; the
//! tests hand-pick a few. This crate explores *all* interleavings of the
//! schedulable atomic actions ([`ooh_core::Step`]) up to a configurable
//! depth, checking safety properties on every path:
//!
//! * **P1 — no lost or ghost dirty page**: every collect is compared against
//!   a ground-truth oracle of written pages (exact equality; a superset is
//!   tolerated only across a recorded ring overflow).
//! * **P2 — one log entry per 0→1 dirty transition**: the machine's shadow
//!   accounting panics under `debug-invariants`; the explorer catches the
//!   panic and reports the path.
//! * **P3 — the ring never silently overflows**: queue depth stays within
//!   capacity and every drop is matched by an overflow event.
//! * **P4 — no logging-suppressing stale TLB entry** after a drain
//!   (`debug-invariants` builds).
//! * **P5 — per-lane virtual clocks are monotone**.
//!
//! State explosion is tamed with sleep-set partial-order reduction (over the
//! conservative [`ooh_core::ModelPort::commutes`] relation) and state-hash
//! deduplication. On a violation the [`shrink`] module minimizes the
//! schedule with a greedy ddmin pass and [`schedule`] serializes it to a
//! replayable text file (see `tests/model_corpus/` at the workspace root).

#![forbid(unsafe_code)]

pub mod explorer;
pub mod schedule;
pub mod shrink;

pub use explorer::{
    explore, replay, Counterexample, ExploreConfig, ExploreReport, ExploreStats, ModelConfig,
    ReplayOutcome,
};
pub use schedule::{ParseError, ScheduleFile};
pub use shrink::{shrink, ShrinkOutcome};
