//! `ooh-model` CLI: bounded-exhaustive interleaving checking of the OoH
//! protocols.
//!
//! * default: sweep every supported (scenario, technique) pair at the
//!   scenario's default depth and fail on the first property violation;
//! * `--self-validate`: arm each seeded mutation and prove the explorer
//!   catches it with a shrunk counterexample of at most ten steps;
//! * `--replay FILE`: re-run a serialized schedule and report its outcome.
//!
//! All output is deterministic (no wall-clock, no randomness): two runs of
//! the same binary print byte-identical reports, which CI checks.

#![allow(clippy::print_stdout)]

use ooh_core::{Mutation, Scenario, Technique};
use ooh_model::{
    explore, replay, shrink, Counterexample, ExploreConfig, ModelConfig, ReplayOutcome,
    ScheduleFile, ShrinkOutcome,
};
use std::process::ExitCode;

struct Args {
    depth: Option<usize>,
    technique: Option<Technique>,
    vcpus: u32,
    out: Option<std::path::PathBuf>,
    self_validate: bool,
    replay: Option<std::path::PathBuf>,
}

const USAGE: &str = "usage: ooh-model [--depth N] [--technique soft-dirty|ufd|spml|epml] \
[--vcpus N] [--out DIR] [--self-validate | --replay FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        depth: None,
        technique: None,
        vcpus: 1,
        out: None,
        self_validate: false,
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--depth" => {
                let v = it.next().ok_or("--depth needs a value")?;
                args.depth = Some(v.parse().map_err(|_| format!("bad depth {v:?}"))?);
            }
            "--technique" => {
                let v = it.next().ok_or("--technique needs a value")?;
                args.technique = Some(
                    ooh_core::technique_from_token(&v)
                        .ok_or(format!("unknown technique {v:?}"))?,
                );
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                args.out = Some(v.into());
            }
            "--vcpus" => {
                let v = it.next().ok_or("--vcpus needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad vcpu count {v:?}"))?;
                if n == 0 {
                    return Err("--vcpus must be at least 1".into());
                }
                args.vcpus = n;
            }
            "--self-validate" => args.self_validate = true,
            "--replay" => {
                let v = it.next().ok_or("--replay needs a value")?;
                args.replay = Some(v.into());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.self_validate && args.replay.is_some() {
        return Err("--self-validate and --replay are mutually exclusive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ooh-model: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // Expected panics (debug-invariants assertions on mutated paths) are
    // caught and reported as violations; the default hook's stderr spew
    // would only obscure the deterministic report.
    std::panic::set_hook(Box::new(|_| {}));

    let result = if let Some(path) = &args.replay {
        run_replay(path)
    } else if args.self_validate {
        run_self_validate(&args)
    } else {
        run_sweep(&args)
    };
    match result {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("ooh-model: {e}");
            ExitCode::from(2)
        }
    }
}

fn format_schedule(steps: &[ooh_core::Step]) -> String {
    steps
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn write_counterexample(
    args: &Args,
    file_stem: &str,
    model: ModelConfig,
    cx: &Counterexample,
) -> Result<(), String> {
    let Some(dir) = &args.out else {
        return Ok(());
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let file = ScheduleFile {
        model,
        property: Some(cx.violation.to_string()),
        steps: cx.schedule.clone(),
    };
    let path = dir.join(format!("{file_stem}.sched"));
    std::fs::write(&path, file.serialize())
        .map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("      wrote {}", path.display());
    Ok(())
}

/// The supported (scenario, technique) pairs: every technique handles the
/// small shape; the near-full shape pre-fills a PML buffer, which only the
/// PML techniques have.
fn sweep_configs(vcpus: u32) -> Vec<ModelConfig> {
    let mut configs = Vec::new();
    for technique in Technique::ALL {
        configs.push(ModelConfig {
            technique,
            scenario: Scenario::Small,
            mutation: Mutation::None,
            vcpus,
        });
    }
    for technique in [Technique::Spml, Technique::Epml] {
        configs.push(ModelConfig {
            technique,
            scenario: Scenario::NearFull,
            mutation: Mutation::None,
            vcpus,
        });
    }
    configs
}

fn run_sweep(args: &Args) -> Result<bool, String> {
    println!("ooh-model: bounded-exhaustive interleaving check");
    match args.depth {
        Some(d) => println!("depth: {d}"),
        None => println!(
            "depth: default (small={}, near-full={})",
            Scenario::Small.default_depth(),
            Scenario::NearFull.default_depth()
        ),
    }
    if args.vcpus > 1 {
        println!("vcpus: {}", args.vcpus);
    }
    let mut checked = 0usize;
    let mut violations = 0usize;
    for model in sweep_configs(args.vcpus) {
        if let Some(t) = args.technique {
            if model.technique != t {
                continue;
            }
        }
        let depth = args.depth.unwrap_or(model.scenario.default_depth());
        let report = explore(&ExploreConfig { model, depth })
            .map_err(|e| format!("{}: {e}", model.label()))?;
        checked += 1;
        let s = report.stats;
        match report.counterexample {
            None => println!(
                "  {:<22} ok  nodes={} paths={} dedup={} sleep={} boots={}",
                model.label(),
                s.nodes,
                s.paths,
                s.dedup_hits,
                s.sleep_skips,
                s.boots
            ),
            Some(cx) => {
                violations += 1;
                println!("  {:<22} VIOLATION", model.label());
                println!("      schedule: {}", format_schedule(&cx.schedule));
                println!("      violation: {}", cx.violation);
                let shrunk = match shrink(&model, &cx.schedule).map_err(|e| e.to_string())? {
                    ShrinkOutcome::Shrunk {
                        schedule,
                        violation,
                    } => Counterexample { schedule, violation },
                    ShrinkOutcome::VanishedViolation => cx,
                };
                println!("      shrunk: {}", format_schedule(&shrunk.schedule));
                let mut stem = format!(
                    "violation-{}-{}",
                    model.scenario.token(),
                    ooh_core::technique_token(model.technique)
                );
                if model.vcpus > 1 {
                    stem.push_str(&format!("-smp{}", model.vcpus));
                }
                write_counterexample(args, &stem, model, &shrunk)?;
            }
        }
    }
    println!("result: {checked} configs checked, {violations} violations");
    Ok(violations == 0)
}

/// The three seeded protocol bugs and the shape each is detected in.
fn mutation_configs(vcpus: u32) -> [(Mutation, ModelConfig); 3] {
    [
        (
            Mutation::DropIpi,
            ModelConfig {
                technique: Technique::Epml,
                scenario: Scenario::NearFull,
                mutation: Mutation::DropIpi,
                vcpus,
            },
        ),
        (
            Mutation::ClearBeforeDrain,
            ModelConfig {
                technique: Technique::Epml,
                scenario: Scenario::Small,
                mutation: Mutation::ClearBeforeDrain,
                vcpus,
            },
        ),
        (
            Mutation::SkipDisableLogging,
            ModelConfig {
                technique: Technique::Epml,
                scenario: Scenario::Small,
                mutation: Mutation::SkipDisableLogging,
                vcpus,
            },
        ),
    ]
}

fn run_self_validate(args: &Args) -> Result<bool, String> {
    println!("ooh-model: mutation self-validation");
    let mut caught = 0usize;
    let total = mutation_configs(args.vcpus).len();
    for (mutation, model) in mutation_configs(args.vcpus) {
        let depth = args.depth.unwrap_or(model.scenario.default_depth());
        let label = format!("{} ({})", mutation.token(), model.label());
        let report = explore(&ExploreConfig { model, depth })
            .map_err(|e| format!("{label}: {e}"))?;
        let Some(cx) = report.counterexample else {
            println!("  {label}: NOT CAUGHT at depth {depth}");
            continue;
        };
        let shrunk = match shrink(&model, &cx.schedule).map_err(|e| e.to_string())? {
            ShrinkOutcome::Shrunk {
                schedule,
                violation,
            } => Counterexample { schedule, violation },
            ShrinkOutcome::VanishedViolation => {
                println!("  {label}: counterexample did not replay (shrinker)");
                continue;
            }
        };
        if shrunk.schedule.len() > 10 {
            println!(
                "  {label}: caught, but the shrunk schedule has {} steps (> 10): {}",
                shrunk.schedule.len(),
                format_schedule(&shrunk.schedule)
            );
            continue;
        }
        caught += 1;
        println!(
            "  {label}: caught in {} steps: {}",
            shrunk.schedule.len(),
            format_schedule(&shrunk.schedule)
        );
        println!("      violation: {}", shrunk.violation);
        write_counterexample(args, mutation.token(), model, &shrunk)?;
    }
    println!("result: {caught}/{total} mutations caught");
    Ok(caught == total)
}

fn run_replay(path: &std::path::Path) -> Result<bool, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let file = ScheduleFile::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "ooh-model: replaying {} ({} steps, mutation {})",
        path.display(),
        file.steps.len(),
        file.model.mutation.token()
    );
    if let Some(p) = &file.property {
        println!("  recorded property: {p}");
    }
    match replay(&file.model, &file.steps).map_err(|e| e.to_string())? {
        ReplayOutcome::Passed { applied, skipped } => {
            println!("  passed ({applied} steps applied, {skipped} skipped)");
            Ok(true)
        }
        ReplayOutcome::Violated { at, violation } => {
            println!("  violated at step {at} ({}): {violation}", file.steps[at]);
            Ok(false)
        }
    }
}
