//! Serialized counterexample schedules.
//!
//! A schedule file is plain text so it can live in the regression corpus
//! (`tests/model_corpus/`), be read in a code review, and be replayed with
//! `cargo run -p ooh-model -- --replay <file>`. Format:
//!
//! ```text
//! # free-form comments
//! technique = epml
//! scenario = near-full
//! mutation = drop-ipi
//! property = lost dirty page 0x7f0000001ff
//! step write-tracked 0
//! step deliver-ipi
//! step write-tracked 1
//! step fetch-dirty
//! ```
//!
//! `technique` and `scenario` are mandatory; `mutation` defaults to `none`;
//! `vcpus` defaults to 1 (and is only serialized when the model is
//! multi-vCPU, so single-core corpus files stay byte-stable); `property` is
//! informational (it records what the explorer saw — replay re-derives the
//! actual violation). Step tokens are defined by [`Step::token`] and carry
//! an argument only for the write steps.

use crate::explorer::ModelConfig;
use ooh_core::{technique_from_token, technique_token, Mutation, Scenario, Step};

/// A parsed (or to-be-serialized) schedule file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFile {
    pub model: ModelConfig,
    /// Human-readable description of the violation this schedule tripped.
    pub property: Option<String>,
    pub steps: Vec<Step>,
}

/// A schedule-file syntax error, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ScheduleFile {
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("# ooh-model counterexample schedule\n");
        out.push_str("# replay: cargo run -p ooh-model -- --replay <this file>\n");
        out.push_str(&format!(
            "technique = {}\n",
            technique_token(self.model.technique)
        ));
        out.push_str(&format!("scenario = {}\n", self.model.scenario.token()));
        out.push_str(&format!("mutation = {}\n", self.model.mutation.token()));
        if self.model.vcpus != 1 {
            out.push_str(&format!("vcpus = {}\n", self.model.vcpus));
        }
        if let Some(p) = &self.property {
            out.push_str(&format!("property = {p}\n"));
        }
        for step in &self.steps {
            out.push_str(&format!("step {step}\n"));
        }
        out
    }

    pub fn parse(text: &str) -> Result<ScheduleFile, ParseError> {
        let mut technique = None;
        let mut scenario = None;
        let mut mutation = Mutation::None;
        let mut vcpus = 1u32;
        let mut property = None;
        let mut steps = Vec::new();
        let err = |line: usize, message: String| ParseError { line, message };

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("step ") {
                let mut parts = rest.split_whitespace();
                let token = parts
                    .next()
                    .ok_or_else(|| err(lineno, "missing step token".into()))?;
                let arg = match parts.next() {
                    Some(a) => Some(a.parse::<u64>().map_err(|_| {
                        err(lineno, format!("step argument {a:?} is not a number"))
                    })?),
                    None => None,
                };
                if parts.next().is_some() {
                    return Err(err(lineno, "trailing tokens after step".into()));
                }
                let step = Step::from_parts(token, arg)
                    .ok_or_else(|| err(lineno, format!("unknown step {line:?}")))?;
                steps.push(step);
            } else if let Some((key, value)) = line.split_once('=') {
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "technique" => {
                        technique = Some(technique_from_token(value).ok_or_else(|| {
                            err(lineno, format!("unknown technique {value:?}"))
                        })?);
                    }
                    "scenario" => {
                        scenario = Some(Scenario::from_token(value).ok_or_else(|| {
                            err(lineno, format!("unknown scenario {value:?}"))
                        })?);
                    }
                    "mutation" => {
                        mutation = Mutation::from_token(value).ok_or_else(|| {
                            err(lineno, format!("unknown mutation {value:?}"))
                        })?;
                    }
                    "vcpus" => {
                        vcpus = value.parse::<u32>().ok().filter(|&n| n >= 1).ok_or_else(
                            || err(lineno, format!("bad vcpu count {value:?}")),
                        )?;
                    }
                    "property" => property = Some(value.to_string()),
                    other => {
                        return Err(err(lineno, format!("unknown header key {other:?}")));
                    }
                }
            } else {
                return Err(err(lineno, format!("unparseable line {line:?}")));
            }
        }

        let technique =
            technique.ok_or_else(|| err(0, "missing `technique =` header".into()))?;
        let scenario = scenario.ok_or_else(|| err(0, "missing `scenario =` header".into()))?;
        Ok(ScheduleFile {
            model: ModelConfig {
                technique,
                scenario,
                mutation,
                vcpus,
            },
            property,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooh_core::Technique;

    fn sample() -> ScheduleFile {
        ScheduleFile {
            model: ModelConfig {
                technique: Technique::Epml,
                scenario: Scenario::NearFull,
                mutation: Mutation::DropIpi,
                vcpus: 1,
            },
            property: Some("lost dirty page 0x7f00000001ff".to_string()),
            steps: vec![
                Step::WriteTracked(0),
                Step::DeliverIpi,
                Step::WriteTracked(1),
                Step::FetchDirty,
            ],
        }
    }

    #[test]
    fn serialize_parse_round_trip() {
        let f = sample();
        assert_eq!(ScheduleFile::parse(&f.serialize()).unwrap(), f);
        // Single-vCPU files never carry the header (corpus byte-stability).
        assert!(!f.serialize().contains("vcpus"));
    }

    #[test]
    fn vcpus_header_round_trips_and_defaults_to_one() {
        let mut f = sample();
        f.model.vcpus = 4;
        let text = f.serialize();
        assert!(text.contains("vcpus = 4"));
        assert_eq!(ScheduleFile::parse(&text).unwrap(), f);

        let parsed = ScheduleFile::parse("technique = spml\nscenario = small\n").unwrap();
        assert_eq!(parsed.model.vcpus, 1);
        let e = ScheduleFile::parse("technique = spml\nscenario = small\nvcpus = 0\n")
            .unwrap_err();
        assert!(e.message.contains("bad vcpu count"));
    }

    #[test]
    fn mutation_defaults_to_none_and_comments_are_ignored() {
        let f = ScheduleFile::parse(
            "# hi\ntechnique = spml\nscenario = small\n\nstep sched-out\nstep sched-in\n",
        )
        .unwrap();
        assert_eq!(f.model.mutation, Mutation::None);
        assert_eq!(f.steps, vec![Step::SchedOut, Step::SchedIn]);
        assert_eq!(f.property, None);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = ScheduleFile::parse("technique = epml\nscenario = small\nstep warp-ten\n")
            .unwrap_err();
        assert_eq!(e.line, 3);
        let e = ScheduleFile::parse("scenario = small\n").unwrap_err();
        assert!(e.message.contains("technique"));
        let e = ScheduleFile::parse("technique = EPML\nscenario = small\n").unwrap_err();
        assert!(e.message.contains("unknown technique"));
        let e = ScheduleFile::parse("technique = epml\nscenario = small\nstep fetch-dirty 3\n")
            .unwrap_err();
        assert!(e.message.contains("unknown step"));
    }
}
