//! Greedy ddmin counterexample shrinking.
//!
//! Violating schedules come out of the explorer with incidental steps mixed
//! in (extra writes, flushes, scheduler noise on the way to the bug). The
//! shrinker repeatedly replays the schedule with one step removed and keeps
//! any removal that still trips a violation — not necessarily the *same*
//! violation, which is the standard ddmin relaxation: any failing schedule
//! is a valid, and smaller, counterexample. Replay skips steps that are not
//! enabled, so removing a step never makes a candidate un-runnable.

use crate::explorer::{replay, ModelConfig, ReplayOutcome};
use ooh_core::{ModelError, ModelViolation, Step};

/// Result of a shrink run.
#[derive(Debug)]
pub enum ShrinkOutcome {
    /// A (locally) 1-minimal schedule and the violation its replay trips.
    Shrunk {
        schedule: Vec<Step>,
        violation: ModelViolation,
    },
    /// The input schedule did not trip any violation on replay — the caller
    /// handed over something that was never (or is no longer) failing.
    VanishedViolation,
}

/// Shrink `schedule` to 1-minimality: the result still violates, but no
/// single-step removal of it does.
pub fn shrink(model: &ModelConfig, schedule: &[Step]) -> Result<ShrinkOutcome, ModelError> {
    let mut best: Vec<Step> = schedule.to_vec();
    match replay(model, &best)? {
        ReplayOutcome::Passed { .. } => return Ok(ShrinkOutcome::VanishedViolation),
        ReplayOutcome::Violated { .. } => {}
    }
    loop {
        let mut improved = false;
        for i in 0..best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if let ReplayOutcome::Violated { .. } = replay(model, &candidate)? {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    match replay(model, &best)? {
        ReplayOutcome::Violated { violation, .. } => Ok(ShrinkOutcome::Shrunk {
            schedule: best,
            violation,
        }),
        // Unreachable in a deterministic simulator (the loop only ever
        // keeps violating candidates), but fail soft rather than assert.
        ReplayOutcome::Passed { .. } => Ok(ShrinkOutcome::VanishedViolation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{explore, ExploreConfig};
    use ooh_core::{Mutation, Scenario, Technique};

    #[test]
    fn shrinks_clear_before_drain_to_two_steps() {
        let model = ModelConfig {
            technique: Technique::Epml,
            scenario: Scenario::Small,
            mutation: Mutation::ClearBeforeDrain,
            vcpus: 1,
        };
        let cx = explore(&ExploreConfig { model, depth: 3 })
            .unwrap()
            .counterexample
            .unwrap();
        match shrink(&model, &cx.schedule).unwrap() {
            ShrinkOutcome::Shrunk { schedule, .. } => {
                assert_eq!(schedule.len(), 2, "1-minimal schedule: {schedule:?}");
                assert!(matches!(schedule[0], Step::WriteTracked(_)), "{schedule:?}");
                assert_eq!(schedule[1], Step::FetchDirty, "{schedule:?}");
            }
            ShrinkOutcome::VanishedViolation => panic!("violation must reproduce"),
        }
    }

    #[test]
    fn non_violating_schedule_is_reported_as_vanished() {
        let model = ModelConfig {
            technique: Technique::Epml,
            scenario: Scenario::Small,
            mutation: Mutation::None,
            vcpus: 1,
        };
        let r = shrink(&model, &[Step::WriteTracked(0), Step::FetchDirty]).unwrap();
        assert!(matches!(r, ShrinkOutcome::VanishedViolation));
    }
}
