//! The classic secure allocator: every allocation gets its own page(s)
//! followed by an inaccessible **guard page**, so a sequential overflow
//! faults synchronously. This is the design the paper's §III-D criticizes:
//! a 16-byte allocation costs two whole pages (≥256× overhead).

use crate::{AllocStats, OverflowDetect, SecureAllocator};
use ooh_guest::{GuestError, GuestKernel, Pid, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{Gva, GvaRange, Pte, PAGE_SIZE};
use ooh_sim::Lane;

/// Guard-page allocator over one large VMA.
pub struct GuardPageAllocator {
    pid: Pid,
    arena: GvaRange,
    /// Next free page index within the arena.
    next_page: u64,
    stats: AllocStats,
}

impl GuardPageAllocator {
    /// Create over a fresh `arena_pages`-page VMA.
    pub fn new(
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
        arena_pages: u64,
    ) -> Result<Self, GuestError> {
        let arena = kernel.mmap(pid, arena_pages, true, VmaKind::Anon)?;
        let _ = hv;
        Ok(Self {
            pid,
            arena,
            next_page: 0,
            stats: AllocStats::default(),
        })
    }

    /// Turn `page` into a guard: fault it in, then mark the PTE with the
    /// GUARD software bit and clear write access (mprotect(PROT_NONE)-like).
    fn install_guard(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        page: Gva,
    ) -> Result<(), GuestError> {
        kernel.write_u64(hv, self.pid, page, 0, Lane::Tracked)?; // materialize
        let (slot, pte) = kernel
            .pte_lookup(hv, self.pid, page)?
            .expect("just materialized");
        kernel.kernel_phys_write(
            hv,
            slot,
            pte.with(Pte::GUARD).without(Pte::WRITABLE).0,
        )?;
        kernel.invlpg(hv, page);
        Ok(())
    }
}

impl SecureAllocator for GuardPageAllocator {
    fn name(&self) -> &'static str {
        "guard-page"
    }

    fn alloc(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        bytes: u64,
    ) -> Result<Option<Gva>, GuestError> {
        let data_pages = bytes.div_ceil(PAGE_SIZE).max(1);
        let need = data_pages + 1; // + trailing guard page
        if self.next_page + need > self.arena.pages {
            return Ok(None);
        }
        let base = self.arena.start.add(self.next_page * PAGE_SIZE);
        let guard = base.add(data_pages * PAGE_SIZE);
        self.install_guard(hv, kernel, guard)?;
        self.next_page += need;
        self.stats.allocations += 1;
        self.stats.payload_bytes += bytes;
        self.stats.reserved_bytes += need * PAGE_SIZE;
        Ok(Some(base))
    }

    fn check_overflow(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        addr: Gva,
    ) -> Result<OverflowDetect, GuestError> {
        match kernel.write_u64(hv, self.pid, addr, 0xDEAD, Lane::Tracked) {
            Ok(()) => Ok(OverflowDetect::Undetected),
            Err(GuestError::GuardViolation { subpage, .. }) => {
                Ok(OverflowDetect::Detected { subpage })
            }
            Err(e) => Err(e),
        }
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::boot;

    #[test]
    fn overflow_past_allocation_is_detected() {
        let (mut hv, mut kernel, pid) = boot();
        let mut a = GuardPageAllocator::new(&mut hv, &mut kernel, pid, 64).unwrap();
        let p = a.alloc(&mut hv, &mut kernel, 100).unwrap().unwrap();
        // Inside the allocation (and its slack up to the page end): fine.
        assert_eq!(
            a.check_overflow(&mut hv, &mut kernel, p.add(96)).unwrap(),
            OverflowDetect::Undetected
        );
        // First byte past the data page: guard page fires.
        assert_eq!(
            a.check_overflow(&mut hv, &mut kernel, p.add(PAGE_SIZE)).unwrap(),
            OverflowDetect::Detected { subpage: None }
        );
    }

    #[test]
    fn page_granularity_slack_is_the_weakness() {
        // The classic allocator cannot detect overflows that stay within
        // the allocation's final page — the motivation for SPP.
        let (mut hv, mut kernel, pid) = boot();
        let mut a = GuardPageAllocator::new(&mut hv, &mut kernel, pid, 64).unwrap();
        let p = a.alloc(&mut hv, &mut kernel, 16).unwrap().unwrap();
        assert_eq!(
            a.check_overflow(&mut hv, &mut kernel, p.add(24)).unwrap(),
            OverflowDetect::Undetected,
            "16-byte object, overflow at +24 sails through"
        );
    }

    #[test]
    fn memory_overhead_is_pages_per_allocation() {
        let (mut hv, mut kernel, pid) = boot();
        let mut a = GuardPageAllocator::new(&mut hv, &mut kernel, pid, 256).unwrap();
        for _ in 0..100 {
            a.alloc(&mut hv, &mut kernel, 64).unwrap().unwrap();
        }
        let s = a.stats();
        assert_eq!(s.allocations, 100);
        assert_eq!(s.reserved_bytes, 100 * 2 * PAGE_SIZE);
        assert!(s.overhead_factor() > 100.0);
    }

    #[test]
    fn arena_exhaustion_returns_none() {
        let (mut hv, mut kernel, pid) = boot();
        let mut a = GuardPageAllocator::new(&mut hv, &mut kernel, pid, 4).unwrap();
        assert!(a.alloc(&mut hv, &mut kernel, 1).unwrap().is_some());
        assert!(a.alloc(&mut hv, &mut kernel, 1).unwrap().is_some());
        assert!(a.alloc(&mut hv, &mut kernel, 1).unwrap().is_none());
    }
}
