//! # ooh-secheap — secure heap allocators over OoH-SPP
//!
//! The paper's §III-D sketches the *second* OoH use case: expose Intel SPP
//! (Sub-Page write Permission) to the guest so secure heap allocators can
//! replace whole guard pages with 128-byte guard sub-pages, "reducing that
//! overhead by a factor of 32". This crate implements both designs against
//! the simulated stack and demonstrates the claim:
//!
//! * [`GuardPageAllocator`] — the classic design: one inaccessible page
//!   after every allocation. Synchronous detection, massive waste, and a
//!   blind spot for overflows that stay within the final data page.
//! * [`SppAllocator`] — the OoH design: allocations packed at sub-page
//!   granularity, one guard *sub-page* each, masks programmed through the
//!   OoH-SPP kernel surface (one hypercall per affected page, no hot-path
//!   cost).

#![forbid(unsafe_code)]

pub mod guard_page;
pub mod spp_heap;

pub use guard_page::GuardPageAllocator;
pub use spp_heap::SppAllocator;

use ooh_guest::{GuestError, GuestKernel};
use ooh_hypervisor::Hypervisor;
use ooh_machine::Gva;
use serde::Serialize;

/// Outcome of probing an address for overflow detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowDetect {
    /// The write went through — the overflow was missed.
    Undetected,
    /// A guard fired (sub-page index for SPP, None for a guard page).
    Detected { subpage: Option<u32> },
}

/// Footprint accounting.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct AllocStats {
    pub allocations: u64,
    /// Bytes the caller asked for.
    pub payload_bytes: u64,
    /// Bytes actually consumed (payload + padding + guards).
    pub reserved_bytes: u64,
}

impl AllocStats {
    /// reserved / payload — the memory overhead factor.
    pub fn overhead_factor(&self) -> f64 {
        if self.payload_bytes == 0 {
            return 0.0;
        }
        self.reserved_bytes as f64 / self.payload_bytes as f64
    }
}

/// A guarded allocator: hand out memory, detect sequential overflows.
pub trait SecureAllocator {
    fn name(&self) -> &'static str;

    /// Allocate `bytes`, returning the payload address, or `None` when the
    /// arena is exhausted.
    fn alloc(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        bytes: u64,
    ) -> Result<Option<Gva>, GuestError>;

    /// Probe a write at `addr` (the overflow-simulation hook used by tests
    /// and the demo): reports whether a guard caught it.
    fn check_overflow(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        addr: Gva,
    ) -> Result<OverflowDetect, GuestError>;

    fn stats(&self) -> AllocStats;
}

#[cfg(test)]
pub(crate) mod tests_support {
    use ooh_guest::{GuestKernel, Pid};
    use ooh_hypervisor::Hypervisor;
    use ooh_machine::{MachineConfig, PAGE_SIZE};
    use ooh_sim::SimCtx;

    pub fn boot() -> (Hypervisor, GuestKernel, Pid) {
        let mut hv = Hypervisor::new(
            MachineConfig::stock(64 * 1024 * PAGE_SIZE),
            SimCtx::new(),
        );
        let vm = hv.create_vm(16 * 1024 * PAGE_SIZE, 1).unwrap();
        let mut kernel = GuestKernel::new(vm);
        let pid = kernel.spawn(&mut hv).unwrap();
        (hv, kernel, pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tests_support::boot;

    /// The §III-D detection-coverage comparison: SPP catches small
    /// overflows the guard-page design structurally cannot.
    #[test]
    fn spp_detects_what_guard_pages_miss() {
        let (mut hv, mut kernel, pid) = boot();
        let mut gp = GuardPageAllocator::new(&mut hv, &mut kernel, pid, 64).unwrap();
        let mut spp = SppAllocator::new(&mut hv, &mut kernel, pid, 64).unwrap();

        let a = gp.alloc(&mut hv, &mut kernel, 64).unwrap().unwrap();
        let b = spp.alloc(&mut hv, &mut kernel, 64).unwrap().unwrap();

        // Overflow 100 bytes past a 64-byte object.
        let gp_result = gp.check_overflow(&mut hv, &mut kernel, a.add(164)).unwrap();
        let spp_result = spp.check_overflow(&mut hv, &mut kernel, b.add(164)).unwrap();
        assert_eq!(gp_result, OverflowDetect::Undetected);
        assert!(matches!(spp_result, OverflowDetect::Detected { .. }));
    }

    #[test]
    fn overhead_factor_accounting() {
        let s = AllocStats {
            allocations: 10,
            payload_bytes: 640,
            reserved_bytes: 81920,
        };
        assert!((s.overhead_factor() - 128.0).abs() < 1e-9);
        assert_eq!(AllocStats::default().overhead_factor(), 0.0);
    }
}
