//! The OoH-SPP secure allocator: allocations are packed at 128-byte
//! sub-page granularity with one guard *sub-page* after each — the §III-D
//! design, cutting guard overhead by up to the 32 sub-pages per page.

use crate::{AllocStats, OverflowDetect, SecureAllocator};
use ooh_guest::{mask_protecting, GuestError, GuestKernel, Pid, VmaKind};
use ooh_hypervisor::Hypervisor;
use ooh_machine::{Gva, GvaRange, SUBPAGES_PER_PAGE, SUBPAGE_SIZE};
use std::collections::HashMap;

/// SPP-guarded allocator over one large VMA.
pub struct SppAllocator {
    pid: Pid,
    arena: GvaRange,
    /// Next free sub-page index within the arena.
    next_subpage: u64,
    /// Per-page guard layout: gva page → protected (write-denied) bits.
    guards: HashMap<u64, u32>,
    stats: AllocStats,
}

impl SppAllocator {
    pub fn new(
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        pid: Pid,
        arena_pages: u64,
    ) -> Result<Self, GuestError> {
        let arena = kernel.mmap(pid, arena_pages, true, VmaKind::Anon)?;
        let _ = hv;
        Ok(Self {
            pid,
            arena,
            next_subpage: 0,
            guards: HashMap::new(),
            stats: AllocStats::default(),
        })
    }

    /// Mark one sub-page as a guard, updating the page's SPP mask through
    /// the kernel module (one hypercall per affected page).
    fn install_guard(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        subpage_index: u64,
    ) -> Result<(), GuestError> {
        let gva = self.arena.start.add(subpage_index * SUBPAGE_SIZE);
        let in_page = (subpage_index % SUBPAGES_PER_PAGE) as u32;
        let protected = self.guards.entry(gva.page()).or_insert(0);
        *protected |= mask_protecting(in_page, in_page) ^ u32::MAX;
        let writable_mask = !*protected;
        kernel.spp_set_page_mask(hv, self.pid, gva, writable_mask)?;
        Ok(())
    }

    /// Sub-pages currently consumed (allocations + guards).
    pub fn subpages_used(&self) -> u64 {
        self.next_subpage
    }
}

impl SecureAllocator for SppAllocator {
    fn name(&self) -> &'static str {
        "spp-subpage"
    }

    fn alloc(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        bytes: u64,
    ) -> Result<Option<Gva>, GuestError> {
        let data_subpages = bytes.div_ceil(SUBPAGE_SIZE).max(1);
        let need = data_subpages + 1; // + trailing guard sub-page
        if (self.next_subpage + need) * SUBPAGE_SIZE > self.arena.len_bytes() {
            return Ok(None);
        }
        let base = self.arena.start.add(self.next_subpage * SUBPAGE_SIZE);
        let guard_index = self.next_subpage + data_subpages;
        self.install_guard(hv, kernel, guard_index)?;
        self.next_subpage += need;
        self.stats.allocations += 1;
        self.stats.payload_bytes += bytes;
        self.stats.reserved_bytes += need * SUBPAGE_SIZE;
        Ok(Some(base))
    }

    fn check_overflow(
        &mut self,
        hv: &mut Hypervisor,
        kernel: &mut GuestKernel,
        addr: Gva,
    ) -> Result<OverflowDetect, GuestError> {
        match kernel.write_u64(hv, self.pid, addr, 0xDEAD, ooh_sim::Lane::Tracked) {
            Ok(()) => Ok(OverflowDetect::Undetected),
            Err(GuestError::GuardViolation { subpage, .. }) => {
                Ok(OverflowDetect::Detected { subpage })
            }
            Err(e) => Err(e),
        }
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::boot;

    #[test]
    fn overflow_at_subpage_granularity_is_detected() {
        let (mut hv, mut kernel, pid) = boot();
        let mut a = SppAllocator::new(&mut hv, &mut kernel, pid, 16).unwrap();
        let p = a.alloc(&mut hv, &mut kernel, 100).unwrap().unwrap();
        // Within the 128-byte sub-page: fine.
        assert_eq!(
            a.check_overflow(&mut hv, &mut kernel, p.add(96)).unwrap(),
            OverflowDetect::Undetected
        );
        // 28 bytes past the allocation (next sub-page): detected — the
        // overflow the guard-page design misses entirely.
        assert!(matches!(
            a.check_overflow(&mut hv, &mut kernel, p.add(SUBPAGE_SIZE)).unwrap(),
            OverflowDetect::Detected { subpage: Some(_) }
        ));
    }

    #[test]
    fn allocations_across_page_boundaries_work() {
        let (mut hv, mut kernel, pid) = boot();
        let mut a = SppAllocator::new(&mut hv, &mut kernel, pid, 16).unwrap();
        // Allocate enough 200-byte objects to cross several pages.
        let mut ptrs = Vec::new();
        for _ in 0..40 {
            ptrs.push(a.alloc(&mut hv, &mut kernel, 200).unwrap().unwrap());
        }
        // Every allocation is writable over its full span...
        for (i, &p) in ptrs.iter().enumerate() {
            kernel
                .write_u64(&mut hv, pid, p, i as u64, ooh_sim::Lane::Tracked)
                .unwrap();
            kernel
                .write_u64(&mut hv, pid, p.add(192), i as u64, ooh_sim::Lane::Tracked)
                .unwrap();
        }
        // ...and every trailing guard fires.
        for &p in &ptrs {
            assert!(matches!(
                a.check_overflow(&mut hv, &mut kernel, p.add(2 * SUBPAGE_SIZE)).unwrap(),
                OverflowDetect::Detected { .. }
            ));
        }
    }

    #[test]
    fn memory_overhead_beats_guard_pages_by_an_order_of_magnitude() {
        let (mut hv, mut kernel, pid) = boot();
        let mut spp = SppAllocator::new(&mut hv, &mut kernel, pid, 64).unwrap();
        let mut gp =
            crate::guard_page::GuardPageAllocator::new(&mut hv, &mut kernel, pid, 512).unwrap();
        use crate::SecureAllocator as _;
        for _ in 0..100 {
            spp.alloc(&mut hv, &mut kernel, 64).unwrap().unwrap();
            gp.alloc(&mut hv, &mut kernel, 64).unwrap().unwrap();
        }
        let ratio = gp.stats().reserved_bytes as f64 / spp.stats().reserved_bytes as f64;
        assert!(
            ratio >= 16.0,
            "SPP must cut reserved memory by ≥16x (paper: up to 32x); got {ratio:.1}x"
        );
    }

    #[test]
    fn exhaustion_returns_none() {
        let (mut hv, mut kernel, pid) = boot();
        let mut a = SppAllocator::new(&mut hv, &mut kernel, pid, 1).unwrap();
        // One page = 32 sub-pages; each 1-byte alloc takes 2.
        for _ in 0..16 {
            assert!(a.alloc(&mut hv, &mut kernel, 1).unwrap().is_some());
        }
        assert!(a.alloc(&mut hv, &mut kernel, 1).unwrap().is_none());
        assert_eq!(a.subpages_used(), 32);
    }

    #[test]
    fn guards_on_same_page_accumulate() {
        let (mut hv, mut kernel, pid) = boot();
        let mut a = SppAllocator::new(&mut hv, &mut kernel, pid, 4).unwrap();
        let p1 = a.alloc(&mut hv, &mut kernel, 1).unwrap().unwrap(); // sub 0, guard 1
        let p2 = a.alloc(&mut hv, &mut kernel, 1).unwrap().unwrap(); // sub 2, guard 3
        assert_eq!(p2.raw() - p1.raw(), 2 * SUBPAGE_SIZE);
        // Both guards on the same page fire independently.
        assert!(matches!(
            a.check_overflow(&mut hv, &mut kernel, p1.add(SUBPAGE_SIZE)).unwrap(),
            OverflowDetect::Detected { .. }
        ));
        assert!(matches!(
            a.check_overflow(&mut hv, &mut kernel, p2.add(SUBPAGE_SIZE)).unwrap(),
            OverflowDetect::Detected { .. }
        ));
        // And both payloads still writable.
        kernel.write_u64(&mut hv, pid, p1, 1, ooh_sim::Lane::Tracked).unwrap();
        kernel.write_u64(&mut hv, pid, p2, 2, ooh_sim::Lane::Tracked).unwrap();
    }

    #[test]
    fn works_on_page_spanning_allocation() {
        let (mut hv, mut kernel, pid) = boot();
        let mut a = SppAllocator::new(&mut hv, &mut kernel, pid, 8).unwrap();
        // 5000 bytes = 40 sub-pages: spans two pages.
        let p = a.alloc(&mut hv, &mut kernel, 5000).unwrap().unwrap();
        kernel
            .write_u64(&mut hv, pid, p.add(4992), 7, ooh_sim::Lane::Tracked)
            .unwrap();
        assert!(matches!(
            a.check_overflow(&mut hv, &mut kernel, p.add(40 * SUBPAGE_SIZE)).unwrap(),
            OverflowDetect::Detected { .. }
        ));
    }
}
