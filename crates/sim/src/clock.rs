//! Virtual nanosecond clock with per-lane time attribution.
//!
//! The simulated machine is single-vCPU (as in the paper's evaluation setup:
//! "the VM has 1 vCPU"), so everything — Tracked, Tracker, the guest kernel,
//! and the hypervisor — serializes on one timeline. The global clock is that
//! timeline; each *lane* records how much of it a given actor consumed, which
//! is exactly what the paper's Formulas 1–4 decompose.

use std::sync::atomic::{AtomicU64, Ordering};

/// Who consumed a slice of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The monitored application (the paper's *Tracked*).
    Tracked,
    /// The monitoring system — CRIU, the GC, or a raw tracker (*Tracker*).
    Tracker,
    /// Guest-kernel work: fault handling, pagemap walks, the OoH module.
    Kernel,
    /// Hypervisor work: vmexit handling, hypercalls, PML buffer copies.
    Hypervisor,
}

impl Lane {
    /// All lanes, in display order.
    pub const ALL: [Lane; 4] = [Lane::Tracked, Lane::Tracker, Lane::Kernel, Lane::Hypervisor];

    fn index(self) -> usize {
        match self {
            Lane::Tracked => 0,
            Lane::Tracker => 1,
            Lane::Kernel => 2,
            Lane::Hypervisor => 3,
        }
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Lane::Tracked => "tracked",
            Lane::Tracker => "tracker",
            Lane::Kernel => "kernel",
            Lane::Hypervisor => "hypervisor",
        }
    }
}

/// Monotonic virtual clock. All updates use relaxed atomics: the simulation
/// is logically single-threaded per scenario, and cross-scenario parallelism
/// never shares a clock, so no ordering stronger than `Relaxed` is needed
/// (we only ever read totals after the scenario quiesces).
#[derive(Debug)]
pub struct SimClock {
    total_ns: AtomicU64,
    lanes: [AtomicU64; 4],
}

impl SimClock {
    pub fn new() -> Self {
        Self {
            total_ns: AtomicU64::new(0),
            lanes: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    /// Advance the global clock by `ns`, attributing the time to `lane`.
    pub fn advance(&self, lane: Lane, ns: u64) {
        if ns == 0 {
            return;
        }
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.lanes[lane.index()].fetch_add(ns, Ordering::Relaxed);
    }

    /// Current virtual time in nanoseconds since scenario start.
    pub fn now_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Time consumed by one lane.
    pub fn lane_ns(&self, lane: Lane) -> u64 {
        self.lanes[lane.index()].load(Ordering::Relaxed)
    }

    /// Snapshot of all lane times (tracked, tracker, kernel, hypervisor).
    pub fn snapshot(&self) -> ClockSnapshot {
        ClockSnapshot {
            total_ns: self.now_ns(),
            tracked_ns: self.lane_ns(Lane::Tracked),
            tracker_ns: self.lane_ns(Lane::Tracker),
            kernel_ns: self.lane_ns(Lane::Kernel),
            hypervisor_ns: self.lane_ns(Lane::Hypervisor),
        }
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of the clock, used to compute phase durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct ClockSnapshot {
    pub total_ns: u64,
    pub tracked_ns: u64,
    pub tracker_ns: u64,
    pub kernel_ns: u64,
    pub hypervisor_ns: u64,
}

impl ClockSnapshot {
    /// Elementwise difference `self - earlier` (phase duration).
    pub fn since(&self, earlier: &ClockSnapshot) -> ClockSnapshot {
        ClockSnapshot {
            total_ns: self.total_ns - earlier.total_ns,
            tracked_ns: self.tracked_ns - earlier.tracked_ns,
            tracker_ns: self.tracker_ns - earlier.tracker_ns,
            kernel_ns: self.kernel_ns - earlier.kernel_ns,
            hypervisor_ns: self.hypervisor_ns - earlier.hypervisor_ns,
        }
    }

    /// Time *not* spent in the Tracked lane: the disruption the tracking
    /// machinery imposed on the application's timeline.
    pub fn non_tracked_ns(&self) -> u64 {
        self.total_ns - self.tracked_ns
    }
}

/// Pretty-print a nanosecond quantity with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_accumulate_independently() {
        let c = SimClock::new();
        c.advance(Lane::Tracked, 10);
        c.advance(Lane::Tracker, 20);
        c.advance(Lane::Tracked, 5);
        assert_eq!(c.now_ns(), 35);
        assert_eq!(c.lane_ns(Lane::Tracked), 15);
        assert_eq!(c.lane_ns(Lane::Tracker), 20);
        assert_eq!(c.lane_ns(Lane::Kernel), 0);
    }

    #[test]
    fn snapshot_difference() {
        let c = SimClock::new();
        c.advance(Lane::Kernel, 100);
        let a = c.snapshot();
        c.advance(Lane::Kernel, 50);
        c.advance(Lane::Tracked, 7);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!(d.total_ns, 57);
        assert_eq!(d.kernel_ns, 50);
        assert_eq!(d.tracked_ns, 7);
        assert_eq!(d.non_tracked_ns(), 50);
    }

    #[test]
    fn zero_advance_is_noop() {
        let c = SimClock::new();
        c.advance(Lane::Tracked, 0);
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(15), "15ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_000_000), "2.000ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.500s");
    }
}
