//! Unit-cost model, calibrated against the paper's Table V measurements.
//!
//! Table Va gives size-agnostic unit costs (context switch 0.315 µs, vmread
//! 0.936 µs, vmwrite 0.801 µs, the one-time PML/VMCS-shadowing hypercalls,
//! …). Table Vb gives the *totals* of the size-dependent mechanisms for a
//! Listing-1 array parser at 1 MB–1 GB; dividing by the number of pages (or
//! entries, or faults) involved yields the per-unit costs encoded here. The
//! derivations are spelled out next to each constant.
//!
//! Two mechanisms are not a flat per-unit charge:
//!
//! * pagemap reads pay a per-open/syscall overhead plus a per-entry cost
//!   ([`CostModel::pagemap_scan_ns`]);
//! * SPML reverse mapping pays a per-lookup base plus a component
//!   proportional to the process's resident set, because each GPA lookup
//!   rescans pagemap state ([`CostModel::reverse_map_lookup_ns`]). This
//!   reproduces Table Vb's superlinear M17 curve (6.2 ms at 1 MB → 15.7 s at
//!   1 GB).

use crate::counters::Event;
use serde::Serialize;

/// Nanosecond unit costs for every chargeable mechanism.
#[derive(Debug, Clone, Serialize)]
pub struct CostModel {
    /// M1: user↔kernel context switch: 0.315 µs.
    pub context_switch_ns: u64,
    /// Guest→hypervisor vmexit (save guest state, dispatch): ~1.2 µs, the
    /// commonly cited VT-x round-trip half on Skylake-class parts.
    pub vmexit_ns: u64,
    /// Hypervisor→guest vmentry.
    pub vmentry_ns: u64,
    /// M5 unit: kernel-space page-fault handling. Table Vb: 33.58 ms total
    /// for 262144 faults at 1 GB → ≈128 ns/fault.
    pub page_fault_kernel_ns: u64,
    /// M6 unit: userspace (uffd) fault handling. Table Vb: 3483 ms total for
    /// 262144 faults at 1 GB → ≈13.3 µs/fault (two world switches, a read(2)
    /// on the uffd fd, tracker logic, and a write-unprotect ioctl).
    pub page_fault_user_ns: u64,
    /// EPT violation handled by the hypervisor (demand map of guest RAM).
    pub ept_violation_ns: u64,
    /// M7: vmread via VMCS shadowing: 0.936 µs.
    pub vmread_ns: u64,
    /// M8: vmwrite via VMCS shadowing: 0.801 µs.
    pub vmwrite_ns: u64,
    /// Generic hypercall round trip (vmcall + dispatch + return): ~1.8 µs.
    pub hypercall_ns: u64,
    /// M13: SPML `enable_logging` fast path: 0.3 µs (the paper implements it
    /// as a pre-armed flag flip on the scheduler path).
    pub enable_logging_ns: u64,
    /// M14 base: SPML `disable_logging` excluding the per-entry PML flush
    /// (Table Vb M14 grows from 42 µs to 208 µs with memory size; the growth
    /// is the flush, charged separately per entry).
    pub disable_logging_base_ns: u64,
    /// M9: one-time PML init hypercall: 5495 µs.
    pub hypercall_init_pml_ns: u64,
    /// M10: one-time PML + VMCS shadowing init: 5878 µs.
    pub hypercall_init_pml_shadow_ns: u64,
    /// M11: PML deactivation: 2060 µs.
    pub hypercall_deactivate_pml_ns: u64,
    /// M12: PML + VMCS shadowing deactivation: 2755 µs.
    pub hypercall_deactivate_shadow_ns: u64,
    /// M3 wrapper: the OoH-module ioctl cost *excluding* the init hypercall
    /// it performs (paper M3 = 5651 µs total = M9 5495 µs + this 156 µs of
    /// module-side work: ring allocation, registration bookkeeping).
    pub ioctl_init_pml_ns: u64,
    /// M4 wrapper: deactivation ioctl minus the M11 hypercall
    /// (2816 − 2060 = 756 µs).
    pub ioctl_deactivate_pml_ns: u64,
    /// PML hardware logging of one GPA during a page walk: ~10 ns (a single
    /// cached store by the page-miss handler circuit, per the PML whitepaper).
    pub pml_log_ns: u64,
    /// EPML guest-buffer GVA log: same circuit, same cost.
    pub pml_log_gva_ns: u64,
    /// Virtual self-IPI delivery via posted interrupts (no vmexit): ~0.5 µs.
    pub self_ipi_ns: u64,
    /// M18 unit: one 8-byte entry copied PML buffer → ring buffer. Table Vb:
    /// 0.671 ms for 262144 entries at 1 GB → ≈2.6 ns/entry.
    pub ring_copy_entry_ns: u64,
    /// M15 unit: one PTE cleared by clear_refs. Table Vb: 2.234 ms for
    /// 262144 PTEs at 1 GB → ≈8.5 ns/PTE.
    pub clear_refs_pte_ns: u64,
    /// M16 per-entry: pagemap entry materialization. Table Vb: 594 ms for
    /// 262144 entries at 1 GB, minus per-chunk overhead → ≈2.2 µs/entry
    /// (each entry requires a PTE walk plus copy_to_user).
    pub pagemap_entry_ns: u64,
    /// M16 per-chunk: fixed cost of each pagemap read(2) syscall
    /// (seek + chunk setup). With 512-entry chunks this reproduces the
    /// small-size end of Table Vb (1.9 ms at 1 MB).
    pub pagemap_chunk_ns: u64,
    /// Full TLB flush: ~2 µs (flush + refill pressure amortized).
    pub tlb_flush_ns: u64,
    /// Single-page invalidation: ~0.2 µs.
    pub tlb_invlpg_ns: u64,
    /// One cross-vCPU TLB shootdown IPI: send + remote ack + remote
    /// invalidation, ~1.2 µs per remote core (Amit, arXiv:1701.07517,
    /// report 2–4 µs end-to-end for small shootdowns split across the
    /// sender's wait and the remote handler; we charge the per-remote half
    /// to the initiating kernel lane).
    pub tlb_shootdown_ipi_ns: u64,
    /// UFFDIO_REGISTER ioctl.
    pub ufd_register_ns: u64,
    /// M2 unit: one page write-(un)protected via UFFDIO_WRITEPROTECT.
    pub ufd_wp_page_ns: u64,
    /// One uffd event read by the tracker (excludes handling, charged as M6).
    pub ufd_event_ns: u64,
    /// M17 base: per-GPA reverse-map lookup fixed cost (≈24 µs: open/seek of
    /// pagemap plus the maps scan to find the owning VMA).
    pub revmap_base_ns: u64,
    /// M17 scaling: extra nanoseconds per resident page, per lookup
    /// (Table Vb fit: (60 µs − 24 µs) / 262144 ≈ 0.14 ns·page⁻¹ per lookup).
    pub revmap_per_resident_page_ps: u64,
    /// TLB-hit access (the MMU fast path).
    pub tlb_hit_ns: u64,
    /// Two-level (guest PT + EPT) page walk on a TLB miss: ~20 ns — the
    /// paging-structure caches keep upper levels hot, so a refill is one or
    /// two cached memory references, not the worst-case 24.
    pub page_walk_ns: u64,
    /// Workload-visible cost of one retired store to simulated memory.
    pub guest_store_ns: u64,
    /// Workload-visible cost of one retired load.
    pub guest_load_ns: u64,
    /// Posted interrupt delivery.
    pub posted_interrupt_ns: u64,
    /// OoH-SPP hypercall updating one page's sub-page mask.
    pub spp_update_ns: u64,
}

impl CostModel {
    /// The model calibrated against the paper's Table V (see field docs).
    pub fn paper_calibrated() -> Self {
        Self {
            context_switch_ns: 315,
            vmexit_ns: 1_200,
            vmentry_ns: 800,
            page_fault_kernel_ns: 128,
            page_fault_user_ns: 13_300,
            ept_violation_ns: 2_400,
            vmread_ns: 936,
            vmwrite_ns: 801,
            hypercall_ns: 1_800,
            enable_logging_ns: 300,
            disable_logging_base_ns: 500,
            hypercall_init_pml_ns: 5_495_000,
            hypercall_init_pml_shadow_ns: 5_878_000,
            hypercall_deactivate_pml_ns: 2_060_000,
            hypercall_deactivate_shadow_ns: 2_755_000,
            ioctl_init_pml_ns: 156_000,
            ioctl_deactivate_pml_ns: 756_000,
            pml_log_ns: 10,
            pml_log_gva_ns: 10,
            self_ipi_ns: 500,
            ring_copy_entry_ns: 3,
            clear_refs_pte_ns: 9,
            pagemap_entry_ns: 2_200,
            pagemap_chunk_ns: 500_000,
            tlb_flush_ns: 2_000,
            tlb_invlpg_ns: 200,
            tlb_shootdown_ipi_ns: 1_200,
            ufd_register_ns: 2_500,
            ufd_wp_page_ns: 110,
            ufd_event_ns: 1_100,
            revmap_base_ns: 24_000,
            revmap_per_resident_page_ps: 140,
            tlb_hit_ns: 1,
            page_walk_ns: 20,
            guest_store_ns: 2,
            guest_load_ns: 2,
            posted_interrupt_ns: 500,
            spp_update_ns: 1_800,
        }
    }

    /// An all-zero model: mechanisms still count events but consume no time.
    /// Used by unit tests that check *behaviour*, not timing.
    pub fn zero() -> Self {
        Self {
            context_switch_ns: 0,
            vmexit_ns: 0,
            vmentry_ns: 0,
            page_fault_kernel_ns: 0,
            page_fault_user_ns: 0,
            ept_violation_ns: 0,
            vmread_ns: 0,
            vmwrite_ns: 0,
            hypercall_ns: 0,
            enable_logging_ns: 0,
            disable_logging_base_ns: 0,
            hypercall_init_pml_ns: 0,
            hypercall_init_pml_shadow_ns: 0,
            hypercall_deactivate_pml_ns: 0,
            hypercall_deactivate_shadow_ns: 0,
            ioctl_init_pml_ns: 0,
            ioctl_deactivate_pml_ns: 0,
            pml_log_ns: 0,
            pml_log_gva_ns: 0,
            self_ipi_ns: 0,
            ring_copy_entry_ns: 0,
            clear_refs_pte_ns: 0,
            pagemap_entry_ns: 0,
            pagemap_chunk_ns: 0,
            tlb_flush_ns: 0,
            tlb_invlpg_ns: 0,
            tlb_shootdown_ipi_ns: 0,
            ufd_register_ns: 0,
            ufd_wp_page_ns: 0,
            ufd_event_ns: 0,
            revmap_base_ns: 0,
            revmap_per_resident_page_ps: 0,
            tlb_hit_ns: 0,
            page_walk_ns: 0,
            guest_store_ns: 0,
            guest_load_ns: 0,
            posted_interrupt_ns: 0,
            spp_update_ns: 0,
        }
    }

    /// The flat unit cost of one occurrence of `event`.
    ///
    /// Mechanisms with state-dependent costs (pagemap scans, reverse-map
    /// lookups) return their *base* component here; callers add the variable
    /// component via [`SimCtx::charge_ns`](crate::SimCtx::charge_ns) using
    /// the helpers below.
    pub fn unit_ns(&self, event: Event) -> u64 {
        match event {
            Event::ContextSwitch => self.context_switch_ns,
            Event::VmExit => self.vmexit_ns,
            Event::VmEntry => self.vmentry_ns,
            Event::PageFaultKernel => self.page_fault_kernel_ns,
            Event::PageFaultUser => self.page_fault_user_ns,
            Event::EptViolation => self.ept_violation_ns,
            Event::Vmread => self.vmread_ns,
            Event::Vmwrite => self.vmwrite_ns,
            Event::Hypercall => self.hypercall_ns,
            Event::HypercallEnableLogging => self.enable_logging_ns,
            Event::HypercallDisableLogging => self.disable_logging_base_ns,
            Event::HypercallInitPml => self.hypercall_init_pml_ns,
            Event::HypercallInitPmlShadow => self.hypercall_init_pml_shadow_ns,
            Event::HypercallDeactivatePml => self.hypercall_deactivate_pml_ns,
            Event::HypercallDeactivateShadow => self.hypercall_deactivate_shadow_ns,
            Event::PmlLogGpa => self.pml_log_ns,
            Event::PmlLogGva => self.pml_log_gva_ns,
            Event::PmlBufferFullExit => self.vmexit_ns,
            Event::PmlSelfIpi => self.self_ipi_ns,
            Event::RingBufferCopyEntry => self.ring_copy_entry_ns,
            Event::RingBufferOverflow => 0,
            Event::ClearRefsPte => self.clear_refs_pte_ns,
            Event::PagemapReadEntry => self.pagemap_entry_ns,
            Event::PagemapReadChunk => self.pagemap_chunk_ns,
            Event::TlbFlush => self.tlb_flush_ns,
            Event::TlbInvlpg => self.tlb_invlpg_ns,
            Event::TlbShootdownIpi => self.tlb_shootdown_ipi_ns,
            Event::UfdRegister => self.ufd_register_ns,
            Event::UfdWriteProtectPage => self.ufd_wp_page_ns,
            Event::UfdWriteUnprotectPage => self.ufd_wp_page_ns,
            Event::UfdEventDelivered => self.ufd_event_ns,
            Event::ReverseMapLookup => self.revmap_base_ns,
            Event::IoctlInitPml => self.ioctl_init_pml_ns,
            Event::IoctlDeactivatePml => self.ioctl_deactivate_pml_ns,
            Event::SchedIn | Event::SchedOut => 0,
            Event::PageWalk => self.page_walk_ns,
            Event::TlbHit => self.tlb_hit_ns,
            Event::GuestStore => self.guest_store_ns,
            Event::GuestLoad => self.guest_load_ns,
            Event::PostedInterrupt => self.posted_interrupt_ns,
            Event::SppUpdate => self.spp_update_ns,
            Event::SppViolationFault => self.page_fault_kernel_ns,
            // Channel-dependent: the migration driver charges its configured
            // per-page cost through `charge_n_ns`.
            Event::MigrationPageCopy => 0,
        }
    }

    /// Cost of reading `entries` pagemap entries in `chunk`-entry read(2)
    /// calls (the /proc M16 mechanism).
    pub fn pagemap_scan_ns(&self, entries: u64, chunk: u64) -> u64 {
        let chunks = entries.div_ceil(chunk.max(1));
        chunks * self.pagemap_chunk_ns + entries * self.pagemap_entry_ns
    }

    /// Cost of one SPML reverse-map (GPA→GVA) lookup against a process with
    /// `resident_pages` mapped pages (the M17 mechanism).
    pub fn reverse_map_lookup_ns(&self, resident_pages: u64) -> u64 {
        self.revmap_base_ns + (resident_pages * self.revmap_per_resident_page_ps) / 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGEMAP_CHUNK_ENTRIES;

    const GIB_PAGES: u64 = (1u64 << 30) / 4096; // 262144

    /// Every event must have a defined (possibly zero) unit cost — this is a
    /// compile-time-ish exhaustiveness check via the match in `unit_ns`.
    #[test]
    fn unit_costs_defined_for_all_events() {
        let m = CostModel::paper_calibrated();
        for &e in Event::ALL {
            let _ = m.unit_ns(e);
        }
    }

    /// M15 at 1 GB should land near the paper's 2.234 ms.
    #[test]
    fn clear_refs_matches_table_vb() {
        let m = CostModel::paper_calibrated();
        let total_ms = (GIB_PAGES * m.clear_refs_pte_ns) as f64 / 1e6;
        assert!((1.5..3.5).contains(&total_ms), "{total_ms} ms");
    }

    /// M16 at 1 GB should land near the paper's 594 ms; at 1 MB near 1.9 ms.
    #[test]
    fn pagemap_scan_matches_table_vb() {
        let m = CostModel::paper_calibrated();
        let at_1gb = m.pagemap_scan_ns(GIB_PAGES, PAGEMAP_CHUNK_ENTRIES as u64) as f64 / 1e6;
        assert!((500.0..700.0).contains(&at_1gb), "{at_1gb} ms");
        let at_1mb = m.pagemap_scan_ns(256, PAGEMAP_CHUNK_ENTRIES as u64) as f64 / 1e6;
        assert!((0.5..3.0).contains(&at_1mb), "{at_1mb} ms");
    }

    /// M17 at 1 GB (one lookup per resident page) should land near 15.7 s,
    /// and at 1 MB near 6.2 ms — the superlinear curve the paper measures.
    #[test]
    fn reverse_map_matches_table_vb() {
        let m = CostModel::paper_calibrated();
        let at_1gb = GIB_PAGES as f64 * m.reverse_map_lookup_ns(GIB_PAGES) as f64 / 1e9;
        assert!((10.0..22.0).contains(&at_1gb), "{at_1gb} s");
        let at_1mb = 256.0 * m.reverse_map_lookup_ns(256) as f64 / 1e6;
        assert!((4.0..9.0).contains(&at_1mb), "{at_1mb} ms");
    }

    /// M6 at 1 GB (one uffd fault per page) should land near 3.48 s.
    #[test]
    fn ufd_fault_matches_table_vb() {
        let m = CostModel::paper_calibrated();
        let total_s = (GIB_PAGES * m.page_fault_user_ns) as f64 / 1e9;
        assert!((2.5..4.5).contains(&total_s), "{total_s} s");
    }

    /// M18 at 1 GB should land near 0.671 ms.
    #[test]
    fn ring_copy_matches_table_vb() {
        let m = CostModel::paper_calibrated();
        let total_ms = (GIB_PAGES * m.ring_copy_entry_ns) as f64 / 1e6;
        assert!((0.4..1.2).contains(&total_ms), "{total_ms} ms");
    }
}
