//! Mechanism event counters.
//!
//! Each low-level mechanism in the simulated stack records an [`Event`] when
//! it fires. The benchmark harness reads these to validate the paper's
//! analytical model (Table IV uses event counts × unit costs) and to explain
//! *why* a technique is slow (e.g. SPML's hypercall count).

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! events {
    ($(#[$ea:meta])* pub enum Event { $( $(#[$va:meta])* $name:ident ),+ $(,)? }) => {
        $(#[$ea])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
        #[repr(usize)]
        pub enum Event {
            $( $(#[$va])* $name ),+
        }

        impl Event {
            /// All event kinds, in declaration order.
            pub const ALL: &'static [Event] = &[ $(Event::$name),+ ];

            /// Stable snake_case name used in reports.
            pub fn name(self) -> &'static str {
                match self {
                    $( Event::$name => stringify!($name) ),+
                }
            }
        }

        const EVENT_COUNT: usize = Event::ALL.len();
    };
}

events! {
    /// Every countable mechanism in the simulated stack.
    pub enum Event {
        // --- world transitions -------------------------------------------
        /// User↔kernel context switch inside the guest (paper metric M1).
        ContextSwitch,
        /// Guest→hypervisor transition (any vmexit).
        VmExit,
        /// Hypervisor→guest transition (vmentry / resume).
        VmEntry,

        // --- faults -------------------------------------------------------
        /// Page fault resolved entirely in the guest kernel (M5; /proc
        /// soft-dirty re-protection faults, demand-zero faults).
        PageFaultKernel,
        /// Page fault forwarded to userspace via userfaultfd (M6).
        PageFaultUser,
        /// EPT violation taken by the hypervisor (demand mapping of guest RAM).
        EptViolation,

        // --- VMX instructions ----------------------------------------------
        /// `vmread` executed without vmexit thanks to VMCS shadowing (M7).
        Vmread,
        /// `vmwrite` executed without vmexit thanks to VMCS shadowing (M8).
        Vmwrite,

        // --- hypercalls -----------------------------------------------------
        /// Any hypercall (guest → hypervisor request).
        Hypercall,
        /// SPML `enable_logging` fast hypercall on schedule-in (M13).
        HypercallEnableLogging,
        /// SPML `disable_logging` hypercall on schedule-out, including the
        /// PML-buffer flush it performs (M14).
        HypercallDisableLogging,
        /// One-time PML initialization hypercall (M9).
        HypercallInitPml,
        /// One-time PML + VMCS-shadowing initialization (EPML; M10).
        HypercallInitPmlShadow,
        /// PML deactivation hypercall (M11).
        HypercallDeactivatePml,
        /// PML + VMCS shadowing deactivation (EPML; M12).
        HypercallDeactivateShadow,

        // --- PML hardware ----------------------------------------------------
        /// One GPA appended to the hypervisor-level PML buffer.
        PmlLogGpa,
        /// One GVA appended to the guest-level (EPML) PML buffer.
        PmlLogGva,
        /// PML-buffer-full vmexit taken by the hypervisor.
        PmlBufferFullExit,
        /// Guest-level PML buffer full: virtual self-IPI posted to the guest.
        PmlSelfIpi,

        // --- buffers & copies ---------------------------------------------
        /// One entry copied between a PML buffer and a ring buffer (M18 unit).
        RingBufferCopyEntry,
        /// Ring-buffer overflow: producer found the ring full (entry dropped
        /// and fall back to full-scan on next collect).
        RingBufferOverflow,

        // --- /proc machinery --------------------------------------------------
        /// One PTE cleared during `echo 4 > /proc/PID/clear_refs` (M15 unit).
        ClearRefsPte,
        /// One pagemap entry materialized for a userspace reader (M16 unit).
        PagemapReadEntry,
        /// One `read(2)`-sized chunk of /proc/PID/pagemap served.
        PagemapReadChunk,
        /// Full TLB flush (after clear_refs or write-protect changes).
        TlbFlush,
        /// Single-page TLB shootdown (invlpg-equivalent).
        TlbInvlpg,
        /// Cross-vCPU TLB shootdown IPI: one remote vCPU told to invalidate
        /// a translation on a PTE teardown (munmap, drain dirty-clear,
        /// clear_refs). Charged once per remote vCPU per teardown batch.
        TlbShootdownIpi,

        // --- userfaultfd machinery ------------------------------------------
        /// `UFFDIO_REGISTER` ioctl.
        UfdRegister,
        /// One page write-protected via `UFFDIO_WRITEPROTECT` (M2 unit).
        UfdWriteProtectPage,
        /// One page write-unprotected by the tracker to resume Tracked.
        UfdWriteUnprotectPage,
        /// One fault event delivered through the uffd file descriptor.
        UfdEventDelivered,

        // --- reverse mapping (SPML) -------------------------------------------
        /// One GPA→GVA reverse-map lookup performed by OoH Lib (M17 unit).
        ReverseMapLookup,

        // --- ioctls to the OoH module (UIO driver) ----------------------------
        /// OoH module ioctl: initialize PML tracking for a PID (M3).
        IoctlInitPml,
        /// OoH module ioctl: deactivate PML tracking (M4).
        IoctlDeactivatePml,

        // --- scheduler ----------------------------------------------------------
        /// A tracked process was scheduled in.
        SchedIn,
        /// A tracked process was scheduled out.
        SchedOut,

        // --- memory accesses (workload-visible) ---------------------------------
        /// Guest page-table walk performed by the MMU (TLB miss).
        PageWalk,
        /// TLB hit (no walk needed).
        TlbHit,
        /// A store instruction retired by the workload.
        GuestStore,
        /// A load instruction retired by the workload.
        GuestLoad,

        // --- interrupts -----------------------------------------------------------
        /// Posted interrupt delivered directly to a running guest.
        PostedInterrupt,

        // --- SPP (the §III-D extension) ---------------------------------------------
        /// Sub-page permission mask updated via the OoH-SPP hypercall.
        SppUpdate,
        /// Write blocked by a sub-page guard (overflow detected).
        SppViolationFault,

        // --- migration / checkpoint transport ----------------------------------------
        /// One page shipped over the migration/checkpoint copy channel
        /// during a pre-copy round. The cost is channel-dependent
        /// (`MigrationConfig::page_copy_ns`), charged explicitly via
        /// `SimCtx::charge_n_ns`, so the flat unit cost here is zero.
        MigrationPageCopy,
    }
}

/// A fixed array of relaxed atomic counters, one per [`Event`].
pub struct EventCounters {
    counts: [AtomicU64; EVENT_COUNT],
}

impl EventCounters {
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Add `n` occurrences of `event`.
    pub fn add(&self, event: Event, n: u64) {
        self.counts[event as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current count for `event`.
    pub fn get(&self, event: Event) -> u64 {
        self.counts[event as usize].load(Ordering::Relaxed)
    }

    /// Snapshot all non-zero counters as `(event, count)` pairs.
    pub fn snapshot(&self) -> Vec<(Event, u64)> {
        Event::ALL
            .iter()
            .filter_map(|&e| {
                let n = self.get(e);
                (n != 0).then_some((e, n))
            })
            .collect()
    }
}

impl Default for EventCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EventCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.snapshot().iter().map(|(e, n)| (e.name(), n)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let c = EventCounters::new();
        for &e in Event::ALL {
            assert_eq!(c.get(e), 0, "{}", e.name());
        }
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn add_and_snapshot() {
        let c = EventCounters::new();
        c.add(Event::Vmread, 3);
        c.add(Event::Hypercall, 1);
        c.add(Event::Vmread, 2);
        assert_eq!(c.get(Event::Vmread), 5);
        let snap = c.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.contains(&(Event::Vmread, 5)));
        assert!(snap.contains(&(Event::Hypercall, 1)));
    }

    #[test]
    fn event_names_are_unique() {
        let mut names: Vec<_> = Event::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
