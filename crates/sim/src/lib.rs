//! # ooh-sim — simulation substrate for Out of Hypervisor
//!
//! Every other crate in the workspace runs *mechanisms* (page walks, vmexits,
//! hypercalls, ring-buffer drains) against a shared [`SimCtx`]: a virtual
//! nanosecond clock, a per-mechanism [`CostModel`] calibrated against the
//! paper's measured Table V, and a set of [`Event`] counters.
//!
//! The design principle is that *costs emerge from mechanism counts × unit
//! costs*: nothing in the benchmark harness hard-codes "SPML is slow"; SPML
//! is slow because it executes many hypercalls and a quadratic-ish reverse
//! mapping, each of which charges its unit cost to the clock.
//!
//! Time can be attributed to one of four [`Lane`]s (Tracked application,
//! Tracker, guest kernel, hypervisor) so the harness can report both
//! "overhead on Tracked" and "overhead on Tracker" as the paper does.

#![forbid(unsafe_code)]

pub mod clock;
pub mod cost;
pub mod counters;
pub mod rng;
pub mod stats;
pub mod table;
pub mod trace;

pub use clock::{Lane, SimClock};
pub use cost::CostModel;
pub use counters::{Event, EventCounters};
pub use rng::SimRng;
pub use stats::{overhead_pct, percentile, speedup, Summary};
pub use table::TextTable;
pub use trace::{ScopeKind, TraceRecord, TraceSink, TraceSpan};

use std::sync::Arc;

/// Shared simulation context: clock + counters + cost model.
///
/// Cloning is cheap (`Arc` internally); all state is updated with relaxed
/// atomics, so a context can be shared across threads when the bench harness
/// runs independent scenarios in parallel (each scenario owns its own ctx).
#[derive(Clone)]
pub struct SimCtx {
    inner: Arc<SimCtxInner>,
}

struct SimCtxInner {
    clock: SimClock,
    counters: EventCounters,
    cost: CostModel,
    /// Installed trace sink, if any. `OnceLock` keeps the disabled path to a
    /// single relaxed load, and install-once matches the determinism
    /// contract (a sink appearing mid-run would see a partial timeline).
    #[cfg(feature = "trace")]
    tracer: std::sync::OnceLock<Arc<dyn TraceSink>>,
}

impl SimCtx {
    /// A fresh context with the paper-calibrated default cost model.
    pub fn new() -> Self {
        Self::with_cost_model(CostModel::paper_calibrated())
    }

    /// A fresh context with an explicit cost model (used by ablation benches
    /// and by tests that want zero-cost mechanisms).
    pub fn with_cost_model(cost: CostModel) -> Self {
        Self {
            inner: Arc::new(SimCtxInner {
                clock: SimClock::new(),
                counters: EventCounters::new(),
                cost,
                #[cfg(feature = "trace")]
                tracer: std::sync::OnceLock::new(),
            }),
        }
    }

    /// Install a trace sink. Every subsequent charge is forwarded to it as a
    /// [`TraceRecord`]. Returns `false` if a sink was already installed (the
    /// existing one stays). Install *before* the first charge if the sink is
    /// to account for the full timeline (conservation checks require this).
    #[cfg(feature = "trace")]
    pub fn install_tracer(&self, sink: Arc<dyn TraceSink>) -> bool {
        self.inner.tracer.set(sink).is_ok()
    }

    /// The installed trace sink, if any.
    #[cfg(feature = "trace")]
    pub(crate) fn trace_sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.inner.tracer.get()
    }

    /// Open a trace scope (technique / phase / op / process / vcpu) that
    /// closes when the returned guard drops. Inert when tracing is compiled
    /// out or no sink is installed, so call sites need no feature gates.
    #[cfg(feature = "trace")]
    pub fn span(&self, kind: ScopeKind, label: &'static str, arg: u64) -> TraceSpan {
        match self.inner.tracer.get() {
            Some(sink) => {
                sink.push_scope(kind, label, arg, self.now_ns());
                TraceSpan {
                    ctx: Some(self.clone()),
                }
            }
            None => TraceSpan::inert(),
        }
    }

    /// Open a trace scope — no-op build (the `trace` feature is disabled).
    #[cfg(not(feature = "trace"))]
    pub fn span(&self, kind: ScopeKind, label: &'static str, arg: u64) -> TraceSpan {
        let _ = (kind, label, arg);
        TraceSpan::inert()
    }

    /// Advance the clock, forwarding the charge to the trace sink if one is
    /// installed. The single chokepoint for all virtual time: `charge`,
    /// `charge_n`, `charge_ns` and `advance` all land here, which is what
    /// makes the per-lane conservation invariant (attributed ns == lane
    /// totals) checkable at all.
    fn advance_traced(&self, lane: Lane, event: Option<Event>, count: u64, ns: u64) {
        #[cfg(feature = "trace")]
        if let Some(sink) = self.inner.tracer.get() {
            let start_ns = self.inner.clock.now_ns();
            self.inner.clock.advance(lane, ns);
            sink.record(TraceRecord {
                start_ns,
                lane,
                event,
                count,
                ns,
            });
            return;
        }
        let _ = (event, count);
        self.inner.clock.advance(lane, ns);
    }

    /// The virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The event counters.
    pub fn counters(&self) -> &EventCounters {
        &self.inner.counters
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Record one occurrence of `event`, charging its unit cost to `lane`.
    ///
    /// Returns the nanoseconds charged so callers can aggregate phase times.
    pub fn charge(&self, lane: Lane, event: Event) -> u64 {
        let ns = self.inner.cost.unit_ns(event);
        self.charge_ns(lane, event, ns)
    }

    /// Record `n` occurrences of `event` at once (e.g. a batched buffer copy).
    pub fn charge_n(&self, lane: Lane, event: Event, n: u64) -> u64 {
        let ns = self.inner.cost.unit_ns(event).saturating_mul(n);
        self.inner.counters.add(event, n);
        self.advance_traced(lane, Some(event), n, ns);
        ns
    }

    /// Record `n` occurrences of `event` with an explicit *total* cost —
    /// for batches whose unit cost is not in the [`CostModel`], e.g. a
    /// migration round shipping `n` pages over a configured copy channel.
    pub fn charge_n_ns(&self, lane: Lane, event: Event, n: u64, ns: u64) -> u64 {
        self.inner.counters.add(event, n);
        self.advance_traced(lane, Some(event), n, ns);
        ns
    }

    /// Record one occurrence of `event` with an explicit cost (for costs
    /// computed from mechanism state, e.g. a pagemap scan proportional to
    /// resident pages).
    pub fn charge_ns(&self, lane: Lane, event: Event, ns: u64) -> u64 {
        self.inner.counters.add(event, 1);
        self.advance_traced(lane, Some(event), 1, ns);
        ns
    }

    /// Advance the clock without recording an event (plain computation time,
    /// e.g. the Tracked application's own work between memory operations).
    pub fn advance(&self, lane: Lane, ns: u64) {
        if ns == 0 {
            return; // mirrors SimClock::advance; nothing to attribute either
        }
        self.advance_traced(lane, None, 1, ns);
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }
}

impl Default for SimCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCtx")
            .field("now_ns", &self.now_ns())
            .finish_non_exhaustive()
    }
}

/// Size of a simulated page, in bytes (x86-64 4 KiB pages).
pub const PAGE_SIZE: usize = 4096;

/// log2(PAGE_SIZE), the page shift.
pub const PAGE_SHIFT: u32 = 12;

/// Number of guest-physical-address entries a hardware PML buffer holds
/// (one 4 KiB page of 64-bit entries, per the Intel SDM).
pub const PML_BUFFER_ENTRIES: usize = 512;

/// Number of 64-bit pagemap entries a reader consumes per `read(2)` call
/// (a 64 KiB buffer, the chunking CRIU and our /proc tracker use).
pub const PAGEMAP_CHUNK_ENTRIES: usize = 8192;

/// Convert a byte count to a number of whole pages (rounding up).
pub fn pages_for_bytes(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_advances_clock_and_counter() {
        let ctx = SimCtx::new();
        assert_eq!(ctx.now_ns(), 0);
        let ns = ctx.charge(Lane::Kernel, Event::ContextSwitch);
        assert!(ns > 0);
        assert_eq!(ctx.now_ns(), ns);
        assert_eq!(ctx.counters().get(Event::ContextSwitch), 1);
        assert_eq!(ctx.clock().lane_ns(Lane::Kernel), ns);
        assert_eq!(ctx.clock().lane_ns(Lane::Tracked), 0);
    }

    #[test]
    fn charge_n_batches() {
        let ctx = SimCtx::new();
        let unit = ctx.cost().unit_ns(Event::RingBufferCopyEntry);
        let ns = ctx.charge_n(Lane::Hypervisor, Event::RingBufferCopyEntry, 512);
        assert_eq!(ns, unit * 512);
        assert_eq!(ctx.counters().get(Event::RingBufferCopyEntry), 512);
    }

    #[test]
    fn pages_for_bytes_rounds_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn zero_cost_model_charges_nothing() {
        let ctx = SimCtx::with_cost_model(CostModel::zero());
        ctx.charge(Lane::Tracker, Event::Hypercall);
        assert_eq!(ctx.now_ns(), 0);
        assert_eq!(ctx.counters().get(Event::Hypercall), 1);
    }
}
