//! # ooh-sim — simulation substrate for Out of Hypervisor
//!
//! Every other crate in the workspace runs *mechanisms* (page walks, vmexits,
//! hypercalls, ring-buffer drains) against a shared [`SimCtx`]: a virtual
//! nanosecond clock, a per-mechanism [`CostModel`] calibrated against the
//! paper's measured Table V, and a set of [`Event`] counters.
//!
//! The design principle is that *costs emerge from mechanism counts × unit
//! costs*: nothing in the benchmark harness hard-codes "SPML is slow"; SPML
//! is slow because it executes many hypercalls and a quadratic-ish reverse
//! mapping, each of which charges its unit cost to the clock.
//!
//! Time can be attributed to one of four [`Lane`]s (Tracked application,
//! Tracker, guest kernel, hypervisor) so the harness can report both
//! "overhead on Tracked" and "overhead on Tracker" as the paper does.

#![forbid(unsafe_code)]

pub mod clock;
pub mod cost;
pub mod counters;
pub mod rng;
pub mod stats;
pub mod table;

pub use clock::{Lane, SimClock};
pub use cost::CostModel;
pub use counters::{Event, EventCounters};
pub use rng::SimRng;
pub use stats::{overhead_pct, percentile, speedup, Summary};
pub use table::TextTable;

use std::sync::Arc;

/// Shared simulation context: clock + counters + cost model.
///
/// Cloning is cheap (`Arc` internally); all state is updated with relaxed
/// atomics, so a context can be shared across threads when the bench harness
/// runs independent scenarios in parallel (each scenario owns its own ctx).
#[derive(Clone)]
pub struct SimCtx {
    inner: Arc<SimCtxInner>,
}

struct SimCtxInner {
    clock: SimClock,
    counters: EventCounters,
    cost: CostModel,
}

impl SimCtx {
    /// A fresh context with the paper-calibrated default cost model.
    pub fn new() -> Self {
        Self::with_cost_model(CostModel::paper_calibrated())
    }

    /// A fresh context with an explicit cost model (used by ablation benches
    /// and by tests that want zero-cost mechanisms).
    pub fn with_cost_model(cost: CostModel) -> Self {
        Self {
            inner: Arc::new(SimCtxInner {
                clock: SimClock::new(),
                counters: EventCounters::new(),
                cost,
            }),
        }
    }

    /// The virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The event counters.
    pub fn counters(&self) -> &EventCounters {
        &self.inner.counters
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Record one occurrence of `event`, charging its unit cost to `lane`.
    ///
    /// Returns the nanoseconds charged so callers can aggregate phase times.
    pub fn charge(&self, lane: Lane, event: Event) -> u64 {
        let ns = self.inner.cost.unit_ns(event);
        self.charge_ns(lane, event, ns)
    }

    /// Record `n` occurrences of `event` at once (e.g. a batched buffer copy).
    pub fn charge_n(&self, lane: Lane, event: Event, n: u64) -> u64 {
        let ns = self.inner.cost.unit_ns(event).saturating_mul(n);
        self.inner.counters.add(event, n);
        self.inner.clock.advance(lane, ns);
        ns
    }

    /// Record one occurrence of `event` with an explicit cost (for costs
    /// computed from mechanism state, e.g. a pagemap scan proportional to
    /// resident pages).
    pub fn charge_ns(&self, lane: Lane, event: Event, ns: u64) -> u64 {
        self.inner.counters.add(event, 1);
        self.inner.clock.advance(lane, ns);
        ns
    }

    /// Advance the clock without recording an event (plain computation time,
    /// e.g. the Tracked application's own work between memory operations).
    pub fn advance(&self, lane: Lane, ns: u64) {
        self.inner.clock.advance(lane, ns);
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }
}

impl Default for SimCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SimCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCtx")
            .field("now_ns", &self.now_ns())
            .finish_non_exhaustive()
    }
}

/// Size of a simulated page, in bytes (x86-64 4 KiB pages).
pub const PAGE_SIZE: usize = 4096;

/// log2(PAGE_SIZE), the page shift.
pub const PAGE_SHIFT: u32 = 12;

/// Number of guest-physical-address entries a hardware PML buffer holds
/// (one 4 KiB page of 64-bit entries, per the Intel SDM).
pub const PML_BUFFER_ENTRIES: usize = 512;

/// Number of 64-bit pagemap entries a reader consumes per `read(2)` call
/// (a 64 KiB buffer, the chunking CRIU and our /proc tracker use).
pub const PAGEMAP_CHUNK_ENTRIES: usize = 8192;

/// Convert a byte count to a number of whole pages (rounding up).
pub fn pages_for_bytes(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_advances_clock_and_counter() {
        let ctx = SimCtx::new();
        assert_eq!(ctx.now_ns(), 0);
        let ns = ctx.charge(Lane::Kernel, Event::ContextSwitch);
        assert!(ns > 0);
        assert_eq!(ctx.now_ns(), ns);
        assert_eq!(ctx.counters().get(Event::ContextSwitch), 1);
        assert_eq!(ctx.clock().lane_ns(Lane::Kernel), ns);
        assert_eq!(ctx.clock().lane_ns(Lane::Tracked), 0);
    }

    #[test]
    fn charge_n_batches() {
        let ctx = SimCtx::new();
        let unit = ctx.cost().unit_ns(Event::RingBufferCopyEntry);
        let ns = ctx.charge_n(Lane::Hypervisor, Event::RingBufferCopyEntry, 512);
        assert_eq!(ns, unit * 512);
        assert_eq!(ctx.counters().get(Event::RingBufferCopyEntry), 512);
    }

    #[test]
    fn pages_for_bytes_rounds_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE), 1);
        assert_eq!(pages_for_bytes(PAGE_SIZE + 1), 2);
    }

    #[test]
    fn zero_cost_model_charges_nothing() {
        let ctx = SimCtx::with_cost_model(CostModel::zero());
        ctx.charge(Lane::Tracker, Event::Hypercall);
        assert_eq!(ctx.now_ns(), 0);
        assert_eq!(ctx.counters().get(Event::Hypercall), 1);
    }
}
