//! Deterministic PRNG for workloads and tests.
//!
//! The simulator must be bit-for-bit reproducible across runs and across the
//! rayon-parallelized benchmark sweep, so workloads derive every random
//! stream from an explicit seed rather than global entropy. The generator is
//! xoshiro256** seeded through SplitMix64 — the standard, statistically
//! solid, dependency-free choice.

/// xoshiro256** generator with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is fine;
    /// SplitMix64 expansion guarantees a non-degenerate state.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Derive an independent child stream (for per-thread / per-workload
    /// streams in the sweep). Uses the long-jump-free "seed with next_u64"
    /// approach, which is sufficient for our stream counts.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)`. Uses Lemire's multiply-shift rejection-free
    /// approximation, which is unbiased enough for workload generation.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_stays_in_bounds() {
        let mut r = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "100-element identity shuffle is cosmically unlikely");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SimRng::new(5);
        let mut child = a.fork();
        let overlap = (0..64).filter(|_| a.next_u64() == child.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn mean_roughly_uniform() {
        let mut r = SimRng::new(11);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((0.48..0.52).contains(&mean), "{mean}");
    }
}
