//! Streaming statistics and overhead reporting.
//!
//! The paper reports means of 5 runs, overhead percentages relative to an
//! untracked baseline, and speedup factors. [`Summary`] accumulates samples
//! with Welford's online algorithm (numerically stable, single pass) and
//! [`overhead_pct`]/[`speedup`] implement the paper's derived metrics.

use serde::Serialize;

/// Online mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Default, Serialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build a summary from an iterator of samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut s = Self::new();
        for x in samples {
            s.add(x);
        }
        s
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Relative standard deviation in percent (coefficient of variation).
    pub fn rsd_pct(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            100.0 * self.stddev() / self.mean().abs()
        }
    }
}

/// Overhead of `measured` relative to `baseline`, in percent — the paper's
/// "overhead (%)" metric: 100·(measured − baseline)/baseline.
pub fn overhead_pct(measured: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        return f64::NAN;
    }
    100.0 * (measured - baseline) / baseline
}

/// Speedup of `fast` over `slow` — the paper's "N× speedup" metric.
pub fn speedup(slow: f64, fast: f64) -> f64 {
    if fast <= 0.0 {
        return f64::NAN;
    }
    slow / fast
}

/// Exact percentile of a sample set (nearest-rank). Sorts a scratch copy;
/// intended for end-of-run reporting, not hot paths.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p));
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        // population stddev is 2.0; sample stddev = sqrt(32/7)
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples([3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn overhead_and_speedup() {
        assert!((overhead_pct(200.0, 100.0) - 100.0).abs() < 1e-12);
        assert!((overhead_pct(104.0, 100.0) - 4.0).abs() < 1e-12);
        assert!((speedup(130.0, 10.0) - 13.0).abs() < 1e-12);
        assert!(overhead_pct(1.0, 0.0).is_nan());
        assert!(speedup(1.0, 0.0).is_nan());
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn welford_matches_naive_on_random_data() {
        let mut rng = crate::SimRng::new(123);
        let xs: Vec<f64> = (0..5000).map(|_| rng.next_f64() * 100.0).collect();
        let s = Summary::from_samples(xs.iter().copied());
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let naive_var =
            xs.iter().map(|x| (x - naive_mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - naive_mean).abs() < 1e-9);
        assert!((s.stddev() - naive_var.sqrt()).abs() < 1e-9);
    }
}
