//! Minimal text-table rendering for benchmark output.
//!
//! Every `table*`/`fig*` binary in `ooh-bench` prints its result as an
//! aligned text table mirroring the paper's layout, plus one JSON line per
//! row for machine checking. This module provides the text part.

/// A simple left-padded column table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; shorter rows are padded with empty cells, longer rows
    /// extend the header with empty column names.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        while self.header.len() < row.len() {
            self.header.push(String::new());
        }
        self.rows.push(row);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with single-space-padded `|` separators and a rule under the
    /// header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&format!("{cell:>width$}"));
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 3 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with `prec` decimals, trimming "-0.0" artifacts.
pub fn fnum(x: f64, prec: usize) -> String {
    let s = format!("{x:.prec$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_string()
    } else {
        s
    }
}

/// Format a ratio as the paper does: "13.2x".
pub fn fx(x: f64) -> String {
    format!("{x:.1}x")
}

/// Format a percentage: "102.4%".
pub fn fpct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // every rendered row has the same width
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = TextTable::new(["a"]);
        t.row(["1", "2", "3"]);
        let s = t.render();
        assert!(s.contains('3'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(-0.0001, 2), "0.00");
        assert_eq!(fx(13.25), "13.2x");
        assert_eq!(fpct(102.4), "102.4%");
    }
}
