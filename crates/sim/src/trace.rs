//! Trace hooks: the contract between the simulation context and an external
//! trace consumer (the `ooh-trace` crate).
//!
//! `ooh-sim` itself stores nothing: when the `trace` cargo feature is enabled
//! and a [`TraceSink`] has been installed on a [`SimCtx`](crate::SimCtx),
//! every virtual-clock charge is forwarded as a [`TraceRecord`], and scoped
//! context (technique / phase / operation / process) is forwarded as
//! push/pop of [`ScopeKind`]-tagged frames. Everything is keyed by the
//! *virtual* clock — no wall-clock time enters here, so the det-time lints
//! and the byte-identical determinism contract are unaffected.
//!
//! With the feature disabled, or with no sink installed, the hooks are inert:
//! `span()` returns an empty guard and the charge paths skip straight to the
//! clock.

use crate::clock::Lane;
use crate::counters::Event;

/// One virtual-clock charge, as seen by a sink.
///
/// `event` is `None` for plain [`SimCtx::advance`](crate::SimCtx::advance)
/// calls (computation time with no mechanism event). `count` is the number
/// of mechanism occurrences batched into this record (`charge_n`), so sinks
/// can regenerate event counters exactly; `ns` is the total time charged for
/// the whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time immediately *before* the clock advanced.
    pub start_ns: u64,
    /// Lane the time was attributed to.
    pub lane: Lane,
    /// Mechanism event, if any.
    pub event: Option<Event>,
    /// Occurrences batched into this charge (matches the counter increment).
    pub count: u64,
    /// Total nanoseconds charged.
    pub ns: u64,
}

/// What a scope frame describes. Sinks use the innermost frame of each kind
/// to attribute records (technique → phase → op), and `Process`/`Vcpu`
/// frames carry the pid/vcpu id in their `arg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScopeKind {
    /// A tracking technique ("/proc", "ufd", "SPML", "EPML").
    Technique,
    /// A tracker phase ("init", "collect", "teardown") or a bench metric.
    Phase,
    /// A mechanism-level operation ("page_walk", "clear_refs", ...).
    Op,
    /// The guest process being operated on (`arg` = pid).
    Process,
    /// The vCPU executing (`arg` = vcpu index).
    Vcpu,
}

impl ScopeKind {
    /// Short label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            ScopeKind::Technique => "technique",
            ScopeKind::Phase => "phase",
            ScopeKind::Op => "op",
            ScopeKind::Process => "process",
            ScopeKind::Vcpu => "vcpu",
        }
    }
}

/// A consumer of trace records and scope frames. Implemented by
/// `ooh_trace::Tracer`; `ooh-sim` only ever talks to the trait object.
///
/// All methods take `&self`: the sink is shared behind an `Arc` and must do
/// its own interior locking. Timestamps are virtual nanoseconds read off the
/// owning context's clock.
pub trait TraceSink: Send + Sync {
    /// A virtual-clock charge happened.
    fn record(&self, rec: TraceRecord);
    /// A scope opened at virtual time `now_ns`.
    fn push_scope(&self, kind: ScopeKind, label: &'static str, arg: u64, now_ns: u64);
    /// The innermost scope closed at virtual time `now_ns`.
    fn pop_scope(&self, now_ns: u64);
}

/// RAII guard for a scope frame: pops on drop. Inert (zero fields beyond a
/// context handle) when tracing is disabled or no sink is installed.
#[must_use = "a span guard pops its scope when dropped; binding it to `_` pops immediately"]
pub struct TraceSpan {
    #[cfg(feature = "trace")]
    pub(crate) ctx: Option<crate::SimCtx>,
}

impl TraceSpan {
    /// An inert span (no scope was pushed; drop is a no-op).
    pub(crate) fn inert() -> Self {
        Self {
            #[cfg(feature = "trace")]
            ctx: None,
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        if let Some(ctx) = self.ctx.take() {
            if let Some(sink) = ctx.trace_sink() {
                sink.pop_scope(ctx.now_ns());
            }
        }
    }
}

impl std::fmt::Debug for TraceSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSpan").finish_non_exhaustive()
    }
}
