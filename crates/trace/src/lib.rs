//! # ooh-trace — deterministic cost attribution over the virtual clock
//!
//! The simulator charges every mechanism to a virtual nanosecond clock
//! (`SimCtx::charge*`), but that attribution is write-only: the clock says
//! *how much* time passed, not *where* it went. This crate is the read side.
//! Install a [`Tracer`] on a `SimCtx` (built with the `trace` feature) and
//! every charge is journaled as a structured record — lane, event kind,
//! vCPU, pid, technique, nanoseconds — keyed **only by the virtual clock**,
//! so tracing never perturbs the determinism contract: the same seeded
//! scenario produces the same journal, byte for byte, and the virtual clocks
//! are identical with tracing on or off.
//!
//! Three views come out of the journal:
//!
//! * an **attribution tree** (technique → phase → op → event) with
//!   count/sum/min/max/p50/p99 per node — [`Tracer::profile_rows`] /
//!   [`Tracer::text_profile`];
//! * **folded stacks** for flamegraph tooling — [`Tracer::folded`];
//! * **Chrome `trace_event` JSON** on the virtual timebase —
//!   [`Tracer::chrome_trace`].
//!
//! The load-bearing property is **conservation**: the per-lane sums of
//! attributed nanoseconds equal the lane totals on the `SimClock`, exactly
//! ([`Tracer::check_conservation`]). That is what lets `table5` be
//! regenerated from the trace and cross-checked against the hand-wired
//! counters (see `crates/bench/src/bin/table5.rs`). It holds because every
//! clock advance goes through the single `SimCtx` chokepoint, provided the
//! tracer is installed *before the first charge*.
//!
//! Aggregates (attribution tree, per-label scope sums, lane totals) are
//! exact for runs of any length; only the per-instance timeline kept for the
//! Chrome export is capped, with drops counted and reported. When no tracer
//! is installed the hooks cost one relaxed load per charge; when `ooh-sim`
//! is built without the `trace` feature they compile out entirely
//! (DESIGN.md §8).

#![forbid(unsafe_code)]

use ooh_sim::clock::fmt_ns;
use ooh_sim::trace::{ScopeKind, TraceRecord, TraceSink};
use ooh_sim::{Event, Lane, SimClock, SimCtx};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Label used when a record falls outside any scope of a given kind.
const UNSCOPED: &str = "-";
/// Event-name stand-in for `SimCtx::advance` records (no mechanism event).
const ADVANCE: &str = "(advance)";

/// Default cap on journal records and closed-scope instances kept verbatim
/// for the Chrome export. Aggregates are always exact; only the timeline
/// view is truncated, with the drop counted and reported.
const DEFAULT_TIMELINE_CAP: usize = 65_536;

fn lane_index(lane: Lane) -> usize {
    match lane {
        Lane::Tracked => 0,
        Lane::Tracker => 1,
        Lane::Kernel => 2,
        Lane::Hypervisor => 3,
    }
}

/// Attribution-tree coordinates of one journal record:
/// technique → phase → op → event, plus the lane it charged.
type NodeKey = (
    &'static str, // technique
    &'static str, // phase
    &'static str, // op
    &'static str, // event
    &'static str, // lane label
);

/// Aggregate statistics for one attribution-tree node.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Journal records that landed on this node.
    pub records: u64,
    /// Mechanism occurrences (sum of per-record `count`; equals the event
    /// counter increment for this node's slice of the run).
    pub units: u64,
    /// Total nanoseconds charged.
    pub sum_ns: u64,
    /// Smallest / largest single-record charge.
    pub min_ns: u64,
    pub max_ns: u64,
    /// Exact per-record-ns histogram (value → occurrences). Charges are
    /// model-derived so the value set is tiny; this gives exact percentiles
    /// without keeping the records themselves.
    hist: BTreeMap<u64, u64>,
}

impl NodeStats {
    fn add(&mut self, count: u64, ns: u64) {
        if self.records == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.records += 1;
        self.units += count;
        self.sum_ns += ns;
        *self.hist.entry(ns).or_insert(0) += 1;
    }

    /// Exact percentile over per-record charges (`p` in 0..=100).
    pub fn percentile_ns(&self, p: u32) -> u64 {
        if self.records == 0 {
            return 0;
        }
        // Nearest-rank on the histogram's cumulative counts.
        let rank = ((u128::from(self.records) * u128::from(p)).div_ceil(100)).max(1) as u64;
        let mut seen = 0u64;
        for (&ns, &n) in &self.hist {
            seen += n;
            if seen >= rank {
                return ns;
            }
        }
        self.max_ns
    }
}

/// An open scope frame on the stack, accumulating while open.
#[derive(Debug, Clone)]
struct OpenScope {
    kind: ScopeKind,
    label: &'static str,
    arg: u64,
    start_ns: u64,
    depth: usize,
    /// Nanoseconds charged while this scope was open (descendants included).
    total_ns: u64,
    /// Per-event occurrence counts charged while open.
    event_units: BTreeMap<&'static str, u64>,
}

/// Per-label aggregate over all (closed and open) scope instances. Exact
/// regardless of how many instances there were.
#[derive(Debug, Clone, Default)]
struct ScopeAgg {
    instances: u64,
    total_ns: u64,
    event_units: BTreeMap<&'static str, u64>,
}

/// One closed scope instance retained for the timeline export (capped).
#[derive(Debug, Clone)]
struct ClosedScope {
    kind: ScopeKind,
    label: &'static str,
    arg: u64,
    start_ns: u64,
    end_ns: u64,
    depth: usize,
    total_ns: u64,
}

/// One record kept verbatim for the timeline export (capped).
#[derive(Debug, Clone, Copy)]
struct JournalRecord {
    start_ns: u64,
    ns: u64,
    count: u64,
    lane: usize,
    event: &'static str,
    pid: u64,
    vcpu: u64,
}

#[derive(Debug, Default)]
struct TracerInner {
    stack: Vec<OpenScope>,
    scope_totals: BTreeMap<&'static str, ScopeAgg>,
    closed: Vec<ClosedScope>,
    closed_dropped: u64,
    nodes: BTreeMap<NodeKey, NodeStats>,
    lane_ns: [u64; 4],
    records: u64,
    journal: Vec<JournalRecord>,
    journal_dropped: u64,
    timeline_cap: usize,
}

/// One attribution-tree node, flattened for the `#json` report convention.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileRow {
    pub technique: &'static str,
    pub phase: &'static str,
    pub op: &'static str,
    pub event: &'static str,
    pub lane: &'static str,
    pub records: u64,
    pub units: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
}

/// The journal + attribution tree. Install on a `SimCtx` with
/// [`Tracer::install`] *before the first charge*, run the scenario, then
/// query/export. Interior locking makes it shareable behind the `Arc` the
/// sink registration requires; the simulator is logically single-threaded
/// per scenario, so the lock is uncontended.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Mutex<TracerInner>,
}

impl Tracer {
    pub fn new() -> Self {
        Self::with_timeline_cap(DEFAULT_TIMELINE_CAP)
    }

    /// A tracer keeping at most `cap` verbatim journal records and `cap`
    /// closed-scope instances for the timeline export (aggregates are
    /// unaffected by the cap).
    pub fn with_timeline_cap(cap: usize) -> Self {
        Self {
            inner: Mutex::new(TracerInner {
                timeline_cap: cap,
                ..TracerInner::default()
            }),
        }
    }

    /// Create a tracer and install it on `ctx`. Panics if `ctx` already has
    /// a sink — a second tracer would silently observe nothing.
    pub fn install(ctx: &SimCtx) -> Arc<Tracer> {
        let tracer = Arc::new(Tracer::new());
        let installed = ctx.install_tracer(tracer.clone());
        assert!(installed, "SimCtx already has a trace sink installed");
        tracer
    }

    fn lock(&self) -> MutexGuard<'_, TracerInner> {
        // The sink never panics while holding the lock, but be lenient:
        // a poisoned journal is still readable.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    // --- queries ---------------------------------------------------------

    /// Total records journaled (aggregated; unaffected by the timeline cap).
    pub fn records(&self) -> u64 {
        self.lock().records
    }

    /// Nanoseconds attributed to `lane` across the whole journal.
    pub fn lane_attributed_ns(&self, lane: Lane) -> u64 {
        self.lock().lane_ns[lane_index(lane)]
    }

    /// Nanoseconds attributed across all lanes.
    pub fn total_attributed_ns(&self) -> u64 {
        self.lock().lane_ns.iter().sum()
    }

    /// Total occurrences of `event` across the journal (equals the event
    /// counter delta since the tracer was installed, for events charged via
    /// `charge`/`charge_n`/`charge_ns`).
    pub fn event_units(&self, event: Event) -> u64 {
        let name = event.name();
        self.lock()
            .nodes
            .iter()
            .filter(|((_, _, _, e, _), _)| *e == name)
            .map(|(_, s)| s.units)
            .sum()
    }

    /// Nanoseconds charged while scopes labeled `label` were open
    /// (descendant scopes included). Sums across every scope instance with
    /// that label, including still-open ones; same-label scopes must not
    /// nest or time double-counts.
    pub fn scope_ns(&self, label: &str) -> u64 {
        let inner = self.lock();
        let closed: u64 = inner
            .scope_totals
            .get(label)
            .map(|a| a.total_ns)
            .unwrap_or(0);
        let open: u64 = inner
            .stack
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.total_ns)
            .sum();
        closed + open
    }

    /// Occurrences of `event` charged while scopes labeled `label` were open.
    pub fn scope_event_units(&self, label: &str, event: Event) -> u64 {
        let name = event.name();
        let inner = self.lock();
        let closed: u64 = inner
            .scope_totals
            .get(label)
            .and_then(|a| a.event_units.get(name).copied())
            .unwrap_or(0);
        let open: u64 = inner
            .stack
            .iter()
            .filter(|s| s.label == label)
            .map(|s| s.event_units.get(name).copied().unwrap_or(0))
            .sum();
        closed + open
    }

    /// Number of scope instances (closed or open) with this label.
    pub fn scope_instances(&self, label: &str) -> u64 {
        let inner = self.lock();
        let closed = inner
            .scope_totals
            .get(label)
            .map(|a| a.instances)
            .unwrap_or(0);
        closed + inner.stack.iter().filter(|s| s.label == label).count() as u64
    }

    /// The attribution tree, flattened to rows in key order
    /// (technique, phase, op, event, lane).
    pub fn profile_rows(&self) -> Vec<ProfileRow> {
        self.lock()
            .nodes
            .iter()
            .map(|(&(technique, phase, op, event, lane), s)| ProfileRow {
                technique,
                phase,
                op,
                event,
                lane,
                records: s.records,
                units: s.units,
                sum_ns: s.sum_ns,
                min_ns: s.min_ns,
                max_ns: s.max_ns,
                p50_ns: s.percentile_ns(50),
                p99_ns: s.percentile_ns(99),
            })
            .collect()
    }

    // --- invariants ------------------------------------------------------

    /// The conservation invariant: for every lane, the nanoseconds this
    /// journal attributes equal the lane's total on `clock`. Exact equality
    /// — the journal sees every charge (it sits on the `SimCtx` chokepoint),
    /// so any difference means a charge bypassed the chokepoint or the
    /// tracer was installed after time had already passed.
    pub fn check_conservation(&self, clock: &SimClock) -> Result<(), String> {
        let inner = self.lock();
        for lane in Lane::ALL {
            let attributed = inner.lane_ns[lane_index(lane)];
            let total = clock.lane_ns(lane);
            if attributed != total {
                return Err(format!(
                    "trace conservation violated on lane {}: journal attributes {attributed}ns \
                     but the virtual clock holds {total}ns (was the tracer installed before \
                     the first charge?)",
                    lane.label()
                ));
            }
        }
        #[cfg(feature = "debug-invariants")]
        {
            let node_sum: u64 = inner.nodes.values().map(|s| s.sum_ns).sum();
            let lane_sum: u64 = inner.lane_ns.iter().sum();
            assert_eq!(
                node_sum, lane_sum,
                "trace self-consistency violated: attribution tree sums {node_sum}ns \
                 but lane accumulators hold {lane_sum}ns"
            );
        }
        Ok(())
    }

    // --- exports ---------------------------------------------------------

    /// Human-readable attribution tree: technique → phase → op → event,
    /// each line with units / record count / sum / p50 / p99.
    pub fn text_profile(&self) -> String {
        let rows = self.profile_rows();
        let mut out = String::new();
        let (mut tech, mut phase, mut op) = ("\0", "\0", "\0");
        for r in &rows {
            if r.technique != tech {
                tech = r.technique;
                out.push_str(&format!("technique {tech}\n"));
                (phase, op) = ("\0", "\0");
            }
            if r.phase != phase {
                phase = r.phase;
                out.push_str(&format!("  phase {phase}\n"));
                op = "\0";
            }
            if r.op != op {
                op = r.op;
                out.push_str(&format!("    op {op}\n"));
            }
            out.push_str(&format!(
                "      {:<24} [{}] units {:>10}  sum {:>12}  p50 {:>9}  p99 {:>9}\n",
                r.event,
                r.lane,
                r.units,
                fmt_ns(r.sum_ns),
                fmt_ns(r.p50_ns),
                fmt_ns(r.p99_ns),
            ));
        }
        out
    }

    /// Folded-stack output (`lane;technique;phase;op;event value-in-ns` per
    /// line), consumable by `flamegraph.pl` / inferno / speedscope.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for r in self.profile_rows() {
            if r.sum_ns == 0 {
                continue;
            }
            out.push_str(&format!(
                "{};{};{};{};{} {}\n",
                r.lane, r.technique, r.phase, r.op, r.event, r.sum_ns
            ));
        }
        out
    }

    /// Chrome `trace_event` JSON (the "JSON array format") on the virtual
    /// timebase: `ts`/`dur` are virtual **nanoseconds**, not the wall-clock
    /// microseconds viewers assume — divide by 1000 mentally or load into a
    /// tool that honors `displayTimeUnit`. Scopes render on tid 0; journal
    /// records render on tid 1–4 (one thread per lane). If the timeline cap
    /// truncated either view, a final metadata event reports the drop counts
    /// (aggregates are never truncated).
    pub fn chrome_trace(&self) -> String {
        let inner = self.lock();
        let mut events: Vec<String> = Vec::new();
        for (i, name) in ["scopes", "tracked", "tracker", "kernel", "hypervisor"]
            .iter()
            .enumerate()
        {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        for s in &inner.closed {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{},\"dur\":{},\
                 \"cat\":\"{}\",\"name\":\"{}\",\
                 \"args\":{{\"arg\":{},\"depth\":{},\"charged_ns\":{}}}}}",
                s.start_ns,
                s.end_ns.saturating_sub(s.start_ns),
                s.kind.label(),
                s.label,
                s.arg,
                s.depth,
                s.total_ns
            ));
        }
        // Still-open scopes render with their charged time as the duration.
        for s in &inner.stack {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{},\"dur\":{},\
                 \"cat\":\"{}\",\"name\":\"{}\",\
                 \"args\":{{\"arg\":{},\"depth\":{},\"charged_ns\":{},\"open\":1}}}}",
                s.start_ns, s.total_ns, s.kind.label(), s.label, s.arg, s.depth, s.total_ns
            ));
        }
        for r in &inner.journal {
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"cat\":\"event\",\"name\":\"{}\",\
                 \"args\":{{\"count\":{},\"pid\":{},\"vcpu\":{}}}}}",
                r.lane + 1,
                r.start_ns,
                r.ns,
                r.event,
                r.count,
                r.pid,
                r.vcpu
            ));
        }
        if inner.journal_dropped > 0 || inner.closed_dropped > 0 {
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"timeline_truncated\",\
                 \"args\":{{\"dropped_records\":{},\"dropped_scopes\":{}}}}}",
                inner.journal_dropped, inner.closed_dropped
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}",
            events.join(",")
        )
    }
}

impl TracerInner {
    fn innermost(&self, kind: ScopeKind) -> Option<&OpenScope> {
        self.stack.iter().rev().find(|s| s.kind == kind)
    }
}

impl TraceSink for Tracer {
    fn record(&self, rec: TraceRecord) {
        let mut inner = self.lock();
        let event = rec.event.map(Event::name).unwrap_or(ADVANCE);
        let key: NodeKey = (
            inner
                .innermost(ScopeKind::Technique)
                .map(|s| s.label)
                .unwrap_or(UNSCOPED),
            inner
                .innermost(ScopeKind::Phase)
                .map(|s| s.label)
                .unwrap_or(UNSCOPED),
            inner
                .innermost(ScopeKind::Op)
                .map(|s| s.label)
                .unwrap_or(UNSCOPED),
            event,
            rec.lane.label(),
        );
        let pid = inner.innermost(ScopeKind::Process).map(|s| s.arg);
        let vcpu = inner.innermost(ScopeKind::Vcpu).map(|s| s.arg);

        inner.records += 1;
        inner.lane_ns[lane_index(rec.lane)] += rec.ns;
        inner.nodes.entry(key).or_default().add(rec.count, rec.ns);
        for scope in &mut inner.stack {
            scope.total_ns += rec.ns;
            *scope.event_units.entry(event).or_insert(0) += rec.count;
        }
        if inner.journal.len() < inner.timeline_cap {
            let r = JournalRecord {
                start_ns: rec.start_ns,
                ns: rec.ns,
                count: rec.count,
                lane: lane_index(rec.lane),
                event,
                pid: pid.unwrap_or(0),
                vcpu: vcpu.unwrap_or(0),
            };
            inner.journal.push(r);
        } else {
            inner.journal_dropped += 1;
        }
    }

    fn push_scope(&self, kind: ScopeKind, label: &'static str, arg: u64, now_ns: u64) {
        let mut inner = self.lock();
        let depth = inner.stack.len();
        inner.stack.push(OpenScope {
            kind,
            label,
            arg,
            start_ns: now_ns,
            depth,
            total_ns: 0,
            event_units: BTreeMap::new(),
        });
    }

    fn pop_scope(&self, now_ns: u64) {
        let mut inner = self.lock();
        let Some(scope) = inner.stack.pop() else {
            return;
        };
        let agg = inner.scope_totals.entry(scope.label).or_default();
        agg.instances += 1;
        agg.total_ns += scope.total_ns;
        for (ev, n) in &scope.event_units {
            *agg.event_units.entry(ev).or_insert(0) += n;
        }
        if inner.closed.len() < inner.timeline_cap {
            let c = ClosedScope {
                kind: scope.kind,
                label: scope.label,
                arg: scope.arg,
                start_ns: scope.start_ns,
                end_ns: now_ns,
                depth: scope.depth,
                total_ns: scope.total_ns,
            };
            inner.closed.push(c);
        } else {
            inner.closed_dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooh_sim::ScopeKind;

    #[test]
    fn records_land_in_innermost_scopes() {
        let ctx = SimCtx::new();
        let tracer = Tracer::install(&ctx);
        {
            let _t = ctx.span(ScopeKind::Technique, "SPML", 0);
            let _p = ctx.span(ScopeKind::Phase, "collect", 0);
            ctx.charge(Lane::Tracker, Event::ReverseMapLookup);
            {
                let _o = ctx.span(ScopeKind::Op, "drain", 0);
                ctx.charge_n(Lane::Hypervisor, Event::RingBufferCopyEntry, 3);
            }
        }
        ctx.charge(Lane::Kernel, Event::ContextSwitch); // outside all scopes

        let rows = tracer.profile_rows();
        let find = |ev: &str| rows.iter().find(|r| r.event == ev).unwrap().clone();
        let rm = find("ReverseMapLookup");
        assert_eq!(
            (rm.technique, rm.phase, rm.op, rm.lane),
            ("SPML", "collect", "-", "tracker")
        );
        let rb = find("RingBufferCopyEntry");
        assert_eq!((rb.technique, rb.phase, rb.op), ("SPML", "collect", "drain"));
        assert_eq!(rb.units, 3);
        assert_eq!(rb.records, 1);
        let cs = find("ContextSwitch");
        assert_eq!((cs.technique, cs.phase, cs.op), ("-", "-", "-"));
    }

    #[test]
    fn conservation_holds_and_detects_late_install() {
        let ctx = SimCtx::new();
        let tracer = Tracer::install(&ctx);
        ctx.charge(Lane::Kernel, Event::PageFaultKernel);
        ctx.charge_n(Lane::Hypervisor, Event::RingBufferCopyEntry, 100);
        ctx.advance(Lane::Tracked, 12345);
        tracer.check_conservation(ctx.clock()).unwrap();
        assert_eq!(tracer.total_attributed_ns(), ctx.now_ns());

        // A tracer installed after charges cannot reconcile.
        let late_ctx = SimCtx::new();
        late_ctx.charge(Lane::Kernel, Event::ContextSwitch);
        let late = Tracer::install(&late_ctx);
        late_ctx.charge(Lane::Kernel, Event::ContextSwitch);
        assert!(late.check_conservation(late_ctx.clock()).is_err());
    }

    #[test]
    fn event_units_match_counters() {
        let ctx = SimCtx::new();
        let tracer = Tracer::install(&ctx);
        ctx.charge_n(Lane::Hypervisor, Event::RingBufferCopyEntry, 512);
        ctx.charge(Lane::Hypervisor, Event::RingBufferCopyEntry);
        ctx.charge(Lane::Kernel, Event::TlbFlush);
        assert_eq!(
            tracer.event_units(Event::RingBufferCopyEntry),
            ctx.counters().get(Event::RingBufferCopyEntry)
        );
        assert_eq!(tracer.event_units(Event::TlbFlush), 1);
        assert_eq!(tracer.event_units(Event::Hypercall), 0);
    }

    #[test]
    fn scope_sums_include_descendants() {
        let ctx = SimCtx::new();
        let tracer = Tracer::install(&ctx);
        let outer_ns;
        {
            let _m = ctx.span(ScopeKind::Phase, "M15", 0);
            let a = ctx.charge(Lane::Tracker, Event::ClearRefsPte);
            let b = {
                let _o = ctx.span(ScopeKind::Op, "flush", 0);
                ctx.charge(Lane::Kernel, Event::TlbFlush)
            };
            outer_ns = a + b;
        }
        ctx.charge(Lane::Kernel, Event::TlbFlush); // outside
        assert_eq!(tracer.scope_ns("M15"), outer_ns);
        assert_eq!(tracer.scope_event_units("M15", Event::TlbFlush), 1);
        assert_eq!(tracer.scope_event_units("M15", Event::ClearRefsPte), 1);
        assert_eq!(tracer.scope_instances("M15"), 1);
    }

    #[test]
    fn repeated_scope_labels_aggregate() {
        let ctx = SimCtx::new();
        let tracer = Tracer::install(&ctx);
        let mut total = 0;
        for i in 0..100 {
            let _s = ctx.span(ScopeKind::Op, "page_walk", i);
            total += ctx.charge(Lane::Kernel, Event::PageWalk);
        }
        assert_eq!(tracer.scope_ns("page_walk"), total);
        assert_eq!(tracer.scope_instances("page_walk"), 100);
        assert_eq!(tracer.scope_event_units("page_walk", Event::PageWalk), 100);
    }

    #[test]
    fn percentiles_are_exact_on_skewed_histograms() {
        let mut s = NodeStats::default();
        for _ in 0..99 {
            s.add(1, 10);
        }
        s.add(1, 1000);
        assert_eq!(s.percentile_ns(50), 10);
        assert_eq!(s.percentile_ns(99), 10);
        assert_eq!(s.percentile_ns(100), 1000);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 1000);
    }

    #[test]
    fn folded_and_chrome_exports_are_well_formed() {
        let ctx = SimCtx::new();
        let tracer = Tracer::install(&ctx);
        {
            let _t = ctx.span(ScopeKind::Technique, "EPML", 0);
            let _p = ctx.span(ScopeKind::Process, "pid", 7);
            ctx.charge(Lane::Kernel, Event::PmlLogGva);
        }
        let folded = tracer.folded();
        assert!(folded.contains("kernel;EPML;-;-;PmlLogGva "));
        let chrome = tracer.chrome_trace();
        // Structurally sound JSON (balanced braces/brackets — no string in the
        // output contains either, so naive counting is exact) with our
        // virtual-timebase marker and the pid arg.
        let balance = |open: char, close: char| {
            chrome.matches(open).count() as i64 - chrome.matches(close).count() as i64
        };
        assert_eq!(balance('{', '}'), 0);
        assert_eq!(balance('[', ']'), 0);
        assert!(chrome.starts_with("{\"displayTimeUnit\":\"ns\""));
        assert!(chrome.contains("\"vcpu\":0"));
        assert!(chrome.contains("\"pid\":7"));
        let text = tracer.text_profile();
        assert!(text.contains("technique EPML"));
    }

    #[test]
    fn timeline_cap_truncates_timeline_but_not_aggregates() {
        let ctx = SimCtx::new();
        let tracer = Arc::new(Tracer::with_timeline_cap(4));
        assert!(ctx.install_tracer(tracer.clone()));
        for i in 0..10 {
            let _s = ctx.span(ScopeKind::Op, "tick", i);
            ctx.charge(Lane::Kernel, Event::ContextSwitch);
        }
        assert_eq!(tracer.records(), 10);
        assert_eq!(tracer.event_units(Event::ContextSwitch), 10);
        assert_eq!(tracer.scope_instances("tick"), 10);
        tracer.check_conservation(ctx.clock()).unwrap();
        let chrome = tracer.chrome_trace();
        assert!(chrome.contains("\"dropped_records\":6"));
        assert!(chrome.contains("\"dropped_scopes\":6"));
    }

    #[test]
    fn tracing_does_not_change_the_clock() {
        let plain = SimCtx::new();
        let traced = SimCtx::new();
        let _t = Tracer::install(&traced);
        for ctx in [&plain, &traced] {
            ctx.charge(Lane::Kernel, Event::PageFaultKernel);
            ctx.charge_n(Lane::Hypervisor, Event::RingBufferCopyEntry, 17);
            ctx.advance(Lane::Tracked, 999);
        }
        assert_eq!(plain.clock().snapshot(), traced.clock().snapshot());
    }
}
