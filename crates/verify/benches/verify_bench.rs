//! Wall-clock benchmarks of the analyzer itself (host time): the cost of
//! a full workspace scan, its layers (lex/parse, call graph, typestate
//! protocols), and the content-hash cache's warm-replay path. The
//! committed numbers live in `bench_results/verify_bench.txt`; CI's
//! `verify-v3` job re-runs this bench so a rule that regresses the scan
//! from milliseconds to seconds is caught as a perf diff, not discovered
//! when `cargo test -q` starts crawling.
//!
//! The analyzer runs inside tier-1 (`tests/verify_lint.rs`) on every
//! `cargo test`, so its wall-clock *is* developer-loop latency.

#![allow(clippy::print_stdout)] // bench binaries print their results

use std::hint::black_box;
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use ooh_verify::ast::ParsedFile;
use ooh_verify::callgraph::CallGraph;

fn workspace_inputs() -> Vec<(String, String, String)> {
    let root = ooh_verify::workspace_root();
    ooh_verify::collect_inputs(&root).expect("collect workspace sources")
}

fn bench_layers(c: &mut Criterion) {
    let inputs = workspace_inputs();
    let mut g = c.benchmark_group("verify_layers");

    g.bench_function("lex_parse_workspace", |b| {
        b.iter(|| {
            let parsed: Vec<ParsedFile> = inputs
                .iter()
                .map(|(cr, rel, src)| ParsedFile::parse(cr, rel, src))
                .collect();
            black_box(parsed.len())
        })
    });

    let parsed: Vec<ParsedFile> = inputs
        .iter()
        .map(|(cr, rel, src)| ParsedFile::parse(cr, rel, src))
        .collect();
    g.bench_function("callgraph_build", |b| {
        b.iter(|| black_box(CallGraph::build(&parsed).nodes.len()))
    });

    let graph = CallGraph::build(&parsed);
    g.bench_function("typestate_protocols", |b| {
        b.iter(|| black_box(ooh_verify::typestate::check(&parsed, &graph).len()))
    });

    g.bench_function("full_scan", |b| {
        b.iter(|| {
            let report =
                ooh_verify::scan_files(&inputs, &ooh_verify::Allowlist::parse(""));
            black_box(report.files_scanned)
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let root = ooh_verify::workspace_root();
    let dir = std::env::temp_dir().join("ooh-verify-bench-cache");
    std::fs::create_dir_all(&dir).expect("temp cache dir");
    let cache = dir.join(format!("bench-{}.cache", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    // Populate once so the timed loop measures the warm replay.
    let (_, warm) = ooh_verify::cache::run_cached(&root, &cache).expect("cold populate");
    assert!(!warm);

    let mut g = c.benchmark_group("verify_cache");
    g.bench_function("warm_replay", |b| {
        b.iter(|| {
            let (report, warm) =
                ooh_verify::cache::run_cached(&root, &cache).expect("warm run");
            assert!(warm);
            black_box(report.files_scanned)
        })
    });
    g.finish();
    let _ = std::fs::remove_file(&cache);
}

criterion_group!(benches, bench_layers, bench_cache);

/// Explicit cold-vs-warm report — the lines committed to
/// `bench_results/verify_bench.txt`.
fn best_of<F: FnMut() -> usize>(reps: u32, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn cache_report() {
    let root = ooh_verify::workspace_root();
    let inputs = workspace_inputs();
    let files = inputs.len();
    let dir = std::env::temp_dir().join("ooh-verify-bench-cache");
    std::fs::create_dir_all(&dir).expect("temp cache dir");
    let cache = dir.join(format!("report-{}.cache", std::process::id()));

    println!("cache report: full workspace, {files} files (best of 5)");
    let cold = best_of(5, || {
        let _ = std::fs::remove_file(&cache);
        let (r, warm) = ooh_verify::cache::run_cached(&root, &cache).expect("cold");
        assert!(!warm);
        r.files_scanned
    });
    let warm = best_of(5, || {
        let (r, w) = ooh_verify::cache::run_cached(&root, &cache).expect("warm");
        assert!(w);
        r.files_scanned
    });
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!("  cold scan:   {cold:?}");
    println!("  warm replay: {warm:?}");
    println!("  speedup:     {speedup:.1}x");
    let _ = std::fs::remove_file(&cache);
}

fn main() {
    benches();
    cache_report();
}
