//! A lightweight item parser over the [`crate::lexer`] token stream.
//!
//! This is not a Rust parser — it recognizes exactly the shapes the flow
//! rules need: `fn` items with their name, span, and body token range;
//! balanced-delimiter matching; `#[cfg(test)]` regions; and the calls,
//! method calls, and macro invocations inside each body. Everything else
//! (types, generics, expressions) flows through as raw tokens that the
//! rules pattern-match directly.
//!
//! The parse is linear and total: malformed input degrades to "fewer items
//! recognized", never to an error, so one broken file cannot take down the
//! workspace scan.

use crate::lexer::{self, Lexed, Tok, TokKind};

/// Sentinel for "no matching delimiter" in [`ParsedFile::matching`].
pub const NO_MATCH: usize = usize::MAX;

/// One `fn` item. Nested fns are recorded as their own items (their tokens
/// also sit inside the enclosing fn's body range; the over-approximation is
/// deliberate and documented in DESIGN.md §12).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name (raw-identifier prefix stripped).
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token range of the body including both braces, `None` for bodyless
    /// trait-method declarations. `body = (open, close)` are token indices
    /// with `toks[open].is_open('{')` and `toks[close].is_close('}')`.
    pub body: Option<(usize, usize)>,
    /// 1-based source line of the `fn` keyword.
    pub line: usize,
    /// 1-based column of the `fn` keyword.
    pub col: usize,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One call-shaped site inside a token range: a plain call `name(..)`, a
/// method call `.name(..)`, or a macro `name!(..)` / `name![..]` /
/// `name! {..}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    Call,
    Method,
    Macro,
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub kind: CallKind,
    /// Index of the name token.
    pub tok: usize,
}

/// A fully lexed and item-parsed source file — the unit the flow rules and
/// the call graph consume.
#[derive(Debug)]
pub struct ParsedFile {
    pub crate_name: String,
    pub rel_path: String,
    pub source: String,
    /// Masked source as chars (comments/literals blanked) — the substrate
    /// for the ported v1 token rules.
    pub masked_chars: Vec<char>,
    /// Per-char `#[cfg(test)]` region mask over the masked source.
    pub in_test: Vec<bool>,
    pub toks: Vec<Tok>,
    /// `matching[i]` = index of the delimiter token matching `toks[i]`
    /// (both directions), or [`NO_MATCH`].
    pub matching: Vec<usize>,
    pub fns: Vec<FnItem>,
}

impl ParsedFile {
    pub fn parse(crate_name: &str, rel_path: &str, source: &str) -> ParsedFile {
        let Lexed { toks, masked } = lexer::lex(source);
        let masked_chars: Vec<char> = masked.chars().collect();
        let in_test = crate::test_regions(&masked);
        let matching = match_delims(&toks);
        let fns = parse_fns(&toks, &matching, &in_test);
        ParsedFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            source: source.to_string(),
            masked_chars,
            in_test,
            toks,
            matching,
            fns,
        }
    }

    /// The trimmed raw source line `line` (1-based), for excerpts.
    pub fn raw_line(&self, line: usize) -> String {
        self.source.lines().nth(line - 1).unwrap_or("").trim().to_string()
    }

    /// Call-shaped sites in the half-open token range `lo..hi`.
    pub fn calls_in(&self, lo: usize, hi: usize) -> Vec<CallSite> {
        calls_in(&self.toks, lo, hi)
    }

    /// Body token range of `f` *excluding* the braces, or `None`.
    pub fn body_inner(&self, f: &FnItem) -> Option<(usize, usize)> {
        f.body.map(|(open, close)| (open + 1, close))
    }
}

/// Computes the delimiter match table. Unbalanced delimiters get
/// [`NO_MATCH`]; the stack discipline means one stray close cannot corrupt
/// matches before it.
pub fn match_delims(toks: &[Tok]) -> Vec<usize> {
    let mut matching = vec![NO_MATCH; toks.len()];
    let mut stack: Vec<(usize, char)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open => {
                stack.push((i, t.text.chars().next().unwrap_or('{')));
            }
            TokKind::Close => {
                let close = t.text.chars().next().unwrap_or('}');
                let want = match close {
                    '}' => '{',
                    ')' => '(',
                    _ => '[',
                };
                if let Some(&(j, open)) = stack.last() {
                    if open == want {
                        stack.pop();
                        matching[i] = j;
                        matching[j] = i;
                    }
                }
            }
            _ => {}
        }
    }
    matching
}

/// Finds every `fn` item: the `fn` keyword token, the name, and the body
/// block (first `{` before a `;` at the same nesting level — return types
/// and where clauses flow through; a `;` first means a bodyless trait
/// declaration). Function *pointer types* (`fn(u64) -> u64`) have no name
/// ident after `fn` and are skipped.
fn parse_fns(toks: &[Tok], matching: &[usize], in_test: &[bool]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let fn_tok = i;
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok
            .text
            .strip_prefix("r#")
            .unwrap_or(&name_tok.text)
            .to_string();
        // Scan for the body `{`, skipping balanced groups (parameter list,
        // bracketed generics in defaults) so a `;` inside them doesn't read
        // as end-of-declaration.
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Open => {
                    if toks[j].is_open('{') {
                        let close = matching[j];
                        if close != NO_MATCH {
                            body = Some((j, close));
                        }
                        break;
                    }
                    // Skip (..) / [..] groups.
                    let m = matching[j];
                    if m == NO_MATCH {
                        break;
                    }
                    j = m + 1;
                }
                TokKind::Punct if toks[j].is_punct(';') => break,
                _ => j += 1,
            }
        }
        let pos = toks[fn_tok].pos;
        fns.push(FnItem {
            name,
            fn_tok,
            body,
            line: toks[fn_tok].line,
            col: toks[fn_tok].col,
            in_test: in_test.get(pos).copied().unwrap_or(false),
        });
        i += 2;
    }
    fns
}

/// See [`ParsedFile::calls_in`]. A name token counts as a call when it is
/// directly followed by `(` (plain call / method call, disambiguated by a
/// preceding `.`), or by `!` + an open delimiter (macro). Definition sites
/// (`fn name(`) are excluded.
pub fn calls_in(toks: &[Tok], lo: usize, hi: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let hi = hi.min(toks.len());
    for i in lo..hi {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let prev_fn = i > 0 && toks[i - 1].is_ident("fn");
        if prev_fn {
            continue;
        }
        let next = toks.get(i + 1);
        if next.is_some_and(|t| t.is_open('(')) {
            let kind = if i > 0 && toks[i - 1].is_punct('.') {
                CallKind::Method
            } else {
                CallKind::Call
            };
            out.push(CallSite { kind, tok: i });
        } else if next.is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Open)
        {
            out.push(CallSite {
                kind: CallKind::Macro,
                tok: i,
            });
        }
    }
    out
}

/// True when the token sequence `Pte :: <member>` occurs anywhere in
/// `lo..hi` (used by the shootdown rule for `Pte::empty`).
pub fn has_path_seq(toks: &[Tok], lo: usize, hi: usize, ty: &str, member: &str) -> bool {
    let hi = hi.min(toks.len());
    for i in lo..hi {
        if toks[i].is_ident(ty)
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident(member))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse("x", "crates/x/src/lib.rs", src)
    }

    #[test]
    fn finds_fns_with_bodies_and_names() {
        let p = parse("impl T {\n    pub fn alpha(&self) -> u64 { self.beta() }\n}\nfn beta() {}\ntrait Q { fn decl(&self); }\n");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "decl"]);
        assert!(p.fns[0].body.is_some());
        assert!(p.fns[1].body.is_some());
        assert!(p.fns[2].body.is_none(), "trait decl has no body");
        assert_eq!(p.fns[0].line, 2);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse("fn real(cb: fn(u64) -> u64) -> u64 { cb(1) }");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn body_detection_skips_param_groups() {
        // A `;` inside the parameter list must not end the declaration.
        let p = parse("fn f(x: [u8; 4]) { g() }");
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let p = parse("fn live() {}\n#[cfg(test)]\nmod t {\n    fn helper() {}\n}\n");
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }

    #[test]
    fn calls_methods_and_macros_are_classified() {
        let p = parse("fn f() { g(); x.h(); println!(\"{}\", 1); let v = vec![1]; }");
        let f = &p.fns[0];
        let (lo, hi) = p.body_inner(f).unwrap();
        let calls = p.calls_in(lo, hi);
        let got: Vec<(CallKind, &str)> = calls
            .iter()
            .map(|c| (c.kind, p.toks[c.tok].text.as_str()))
            .collect();
        assert_eq!(
            got,
            vec![
                (CallKind::Call, "g"),
                (CallKind::Method, "h"),
                (CallKind::Macro, "println"),
                (CallKind::Macro, "vec"),
            ]
        );
    }

    #[test]
    fn delimiter_matching_is_balanced() {
        let p = parse("fn f() { if a { b(c[1]); } }");
        for (i, t) in p.toks.iter().enumerate() {
            if t.kind == TokKind::Open {
                let m = p.matching[i];
                assert_ne!(m, NO_MATCH);
                assert_eq!(p.matching[m], i);
            }
        }
    }

    #[test]
    fn path_seq_matcher() {
        let p = parse("fn f() { w(Pte::empty().0); }");
        assert!(has_path_seq(&p.toks, 0, p.toks.len(), "Pte", "empty"));
        assert!(!has_path_seq(&p.toks, 0, p.toks.len(), "Pte", "DIRTY"));
    }
}
